// Ablation A: block-oriented slack computation (Hitchcock's method, the
// paper's choice) versus exact path enumeration (the method it rejects:
// "Such a path enumeration procedure is computationally expensive").
//
// google-benchmark micro-benchmark over random clustered networks of
// growing size.  Counters: paths = paths the enumerator walks; the block
// method's work is linear in arcs, the enumerator's in path count, which
// grows combinatorially with reconvergence depth.
#include <benchmark/benchmark.h>

#include "baseline/path_enum.hpp"
#include "gen/random_network.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"

namespace {

struct Fixture {
  hb::Design design;
  hb::ClockSet clocks;
  std::unique_ptr<hb::Hummingbird> analyser;

  explicit Fixture(int gates) : design("empty", hb::make_standard_library()) {
    hb::RandomNetworkSpec spec;
    spec.num_clocks = 2;
    spec.banks = 3;
    spec.bank_width = 4;
    spec.gates_per_stage = gates;
    spec.transparent_prob = 0.5;
    spec.seed = 99;
    auto net = hb::make_random_network(hb::make_standard_library(), spec);
    design = std::move(net.design);
    clocks = std::move(net.clocks);
    analyser = std::make_unique<hb::Hummingbird>(design, clocks);
    analyser->analyze();
  }
};

void BM_BlockMethod(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    f.analyser->engine_mut().compute();
    benchmark::DoNotOptimize(f.analyser->engine().worst_terminal_slack());
  }
  state.counters["arcs"] = static_cast<double>(f.analyser->stats().graph_arcs);
}

void BM_PathEnumeration(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)));
  std::size_t paths = 0;
  for (auto _ : state) {
    const auto res = hb::enumerate_path_slacks(f.analyser->engine());
    paths = res.paths_enumerated;
    benchmark::DoNotOptimize(res.capture_slack.data());
  }
  state.counters["paths"] = static_cast<double>(paths);
}

}  // namespace

BENCHMARK(BM_BlockMethod)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PathEnumeration)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
