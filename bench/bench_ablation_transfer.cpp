// Ablation B: what does latch-awareness buy?  Minimum workable clock period
// of a two-phase pipeline as stage imbalance grows, under three analyses:
//   transfer - Hummingbird's Algorithm 1 (transparent latches, slack
//              transfer / cycle stealing);
//   rigid    - same netlist, latches frozen at the trailing edge
//              (McWilliams-style baseline);
//   dff      - the netlist rebuilt with edge-triggered latches.
//
// Expected shape: with balanced stages all three coincide; as imbalance
// grows, transfer tracks the *average* stage delay while rigid/dff track
// the *maximum* stage delay.
#include <cstdio>

#include "gen/pipeline.hpp"
#include "netlist/stdcells.hpp"
#include "sta/search.hpp"

namespace {

hb::TimePs min_period(const hb::Design& design, bool rigid) {
  hb::MinPeriodOptions options;
  options.lo = hb::ns(1);
  options.hi = hb::ns(80);
  options.rigid = rigid;
  return hb::find_min_period(
      design, [](hb::TimePs p) { return hb::make_two_phase_clocks(p); }, options);
}

}  // namespace

int main() {
  using namespace hb;
  auto lib = make_standard_library();

  const int total_depth = 120;
  std::printf("%-12s %-18s %-18s %-18s\n", "imbalance", "transfer", "rigid", "dff");
  for (int heavy = 60; heavy <= 110; heavy += 10) {
    PipelineSpec spec;
    spec.stage_depths = {heavy, total_depth - heavy};
    spec.width = 1;
    spec.seed = 13;

    spec.latch_cell = "TLATCH";
    const Design latch_design = make_pipeline(lib, spec);
    spec.latch_cell = "DFFT";
    const Design dff_design = make_pipeline(lib, spec);

    std::printf("%3d:%-8d %-18s %-18s %-18s\n", heavy, total_depth - heavy,
                format_time(min_period(latch_design, false)).c_str(),
                format_time(min_period(latch_design, true)).c_str(),
                format_time(min_period(dff_design, false)).c_str());
  }
  return 0;
}
