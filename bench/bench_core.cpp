// Core pass-evaluation throughput of the CSR-flattened engine.
//
// Compares the levelized wavefront kernels over the flat CSR layout
// (sta/analysis_pass) against a faithful reimplementation of the pre-CSR
// engine: vector-of-vectors adjacency in arc-creation order and
// std::optional<RiseFall> ready/required arrays, evaluated pass by pass with
// global-to-local index translation — exactly the layout this benchmark's
// kernels replaced.  Both engines are held bit-identical here before any
// timing is taken, so the speedup is a pure data-layout/scheduling delta.
//
// Also counts heap allocations (global operator new hook, this binary only)
// around steady-state compute() and update() loops: warm caches and
// workspaces are reused in place, so both loops must allocate nothing.
//
// Writes BENCH_core.json; `--quick` restricts to the small networks with few
// reps (the CI perf-smoke job runs this mode and schema-checks the JSON).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "gen/des.hpp"
#include "gen/filter.hpp"
#include "gen/pipeline.hpp"
#include "gen/random_network.hpp"
#include "netlist/blif_io.hpp"
#include "netlist/stdcells.hpp"
#include "scenario/corner_analysis.hpp"
#include "sta/analysis_pass.hpp"
#include "sta/cluster.hpp"
#include "sta/slack_engine.hpp"
#include "util/thread_pool.hpp"
#include "util/time.hpp"

// ---------------------------------------------------------------------------
// Allocation counting hook: every operator new in this process bumps the
// counter.  Defined here so only the benchmark binary pays for it.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void* operator new(std::size_t sz, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (sz + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz, std::align_val_t al) {
  return ::operator new(sz, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace hb {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Best-of-5 wall time of `reps` calls to `body`, in microseconds per call.
/// Minimum over repetitions is the standard noise filter for short kernels.
template <class Body>
double time_us(int reps, Body body) {
  double best = 1e30;
  for (int round = 0; round < 5; ++round) {
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) body();
    best = std::min(best, 1e6 * seconds_since(start) / reps);
  }
  return best;
}

/// Best-of-7 for a pair of bodies with the rounds interleaved A/B/A/B...,
/// so slow drift in host load (shared runners, noisy containers) hits both
/// sides alike instead of skewing their ratio.  Used for the headline
/// reference-vs-CSR comparison.
template <class A, class B>
std::pair<double, double> time_pair_us(int reps, A a, B b) {
  std::pair<double, double> best{1e30, 1e30};
  for (int round = 0; round < 7; ++round) {
    auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) a();
    best.first = std::min(best.first, 1e6 * seconds_since(start) / reps);
    start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) b();
    best.second = std::min(best.second, 1e6 * seconds_since(start) / reps);
  }
  return best;
}

struct Workload {
  std::string name;
  Design design;
  ClockSet clocks;
};

// -- Reference engine: the pre-CSR data layout -----------------------------

struct RefPassResult {
  std::vector<std::optional<RiseFall>> ready;
  std::vector<std::optional<RiseFall>> required;
};

// The pre-change propagation rules, switch-based as the old engine compiled
// them (delay_model.hpp is branchless now; the reference must not inherit
// that).
RiseFall ref_propagate_forward(RiseFall in, const TArcRec& arc, RiseFall d) {
  switch (arc.unate) {
    case Unate::kPositive:
      return {in.rise + d.rise, in.fall + d.fall};
    case Unate::kNegative:
      return {in.fall + d.rise, in.rise + d.fall};
    case Unate::kNone: {
      const TimePs worst = std::max(in.rise, in.fall);
      return {worst + d.rise, worst + d.fall};
    }
  }
  return {};
}

RiseFall ref_propagate_backward(RiseFall out, const TArcRec& arc, RiseFall d) {
  switch (arc.unate) {
    case Unate::kPositive:
      return {out.rise - d.rise, out.fall - d.fall};
    case Unate::kNegative:
      return {out.fall - d.fall, out.rise - d.rise};
    case Unate::kNone: {
      const TimePs worst = std::min(out.rise - d.rise, out.fall - d.fall);
      return {worst, worst};
    }
  }
  return {};
}

/// Pre-CSR pass evaluation: Cluster::nodes traversal with per-node
/// global->local translation through `local_index`, adjacency as
/// vector-of-vectors over an arc array in creation-like order,
/// optional<RiseFall> results.
RefPassResult run_reference_pass(
    const TimingGraph& graph, const SyncModel& sync, const Cluster& cluster,
    const std::vector<TArcRec>& arcs,
    const std::vector<std::vector<std::uint32_t>>& fanout,
    const std::vector<std::uint32_t>& local_index, const ClockEdgeGraph& edges,
    std::size_t break_node, const std::vector<SyncId>& capture_insts,
    const std::vector<bool>& assigned) {
  RefPassResult res;
  res.ready.resize(cluster.nodes.size());
  res.required.resize(cluster.nodes.size());

  for (TNodeId n : cluster.source_nodes) {
    TimePs latest = -kInfinitePs;
    for (SyncId id : sync.launches_at(n)) {
      const SyncInstance& si = sync.at(id);
      const TimePs a = edges.linear_assert(si.ideal_assert, break_node) +
                       si.assert_offset();
      latest = std::max(latest, a);
    }
    res.ready[local_index[n.index()]] = RiseFall{latest, latest};
  }

  for (TNodeId n : cluster.nodes) {
    const auto& in = res.ready[local_index[n.index()]];
    if (!in) continue;
    const NodeRole role = graph.node(n).role;
    if (role == NodeRole::kSyncDataIn || role == NodeRole::kSyncControl) continue;
    for (std::uint32_t ai : fanout[n.index()]) {
      const TArcRec& arc = arcs.at(ai);
      const RiseFall cand = ref_propagate_forward(*in, arc, arc.delay);
      auto& slot = res.ready[local_index[arc.to.index()]];
      slot = slot ? rf_max(*slot, cand) : cand;
    }
  }

  for (std::size_t k = 0; k < capture_insts.size(); ++k) {
    if (!assigned[k]) continue;
    const SyncInstance& si = sync.at(capture_insts[k]);
    const TimePs c = edges.linear_close(si.ideal_close, break_node) +
                     si.close_offset();
    auto& slot = res.required[local_index[si.data_in.index()]];
    slot = slot ? rf_min(*slot, RiseFall{c, c}) : RiseFall{c, c};
  }

  for (auto it = cluster.nodes.rbegin(); it != cluster.nodes.rend(); ++it) {
    const TNodeId n = *it;
    const NodeRole role = graph.node(n).role;
    if (role == NodeRole::kSyncDataIn || role == NodeRole::kSyncControl) continue;
    for (std::uint32_t ai : fanout[n.index()]) {
      const TArcRec& arc = arcs.at(ai);
      const auto& out = res.required[local_index[arc.to.index()]];
      if (!out) continue;
      const RiseFall cand = ref_propagate_backward(*out, arc, arc.delay);
      auto& slot = res.required[local_index[n.index()]];
      slot = slot ? rf_min(*slot, cand) : cand;
    }
  }

  return res;
}

struct CoreReport {
  std::size_t cells = 0;
  std::size_t nodes = 0;
  std::size_t arcs = 0;
  std::size_t passes = 0;
  std::size_t levels = 0;
  std::size_t node_evals = 0;        // sum of cluster sizes over passes
  double full_analysis_us = 0;       // warm engine.compute(), incl. accumulate
  double pass_eval_us = 0;           // CSR kernels, all passes
  double reference_pass_eval_us = 0; // pre-CSR kernels, all passes
  double node_evals_per_sec = 0;
  double allocs_per_pass = 0;        // steady-state compute()
  double update_allocs = 0;          // steady-state update(), per update
  double parallel_allocs = 0;        // steady-state pooled sweeps, per pass
  double pass_eval_scalar_us = 0;    // 1-thread kForceScalar CSR sweep
  std::string kernel;                // auto-dispatched variant ("avx2"/"scalar")
  std::vector<std::pair<int, double>> scaling;  // (threads, pass_eval_us)
  bool bit_identical = false;
};

CoreReport measure(Workload& w, int reps, const std::vector<int>& thread_counts) {
  DelayCalculator calc(w.design);
  TimingGraph graph(w.design, calc);
  SyncModel sync(graph, w.clocks, calc);
  ClusterSet clusters(graph, sync);
  SlackEngine engine(graph, clusters, sync);

  CoreReport rep;
  rep.cells = w.design.total_cell_count();
  rep.nodes = graph.num_nodes();
  rep.arcs = graph.num_arcs();
  rep.passes = engine.num_passes_total();
  rep.levels = graph.num_levels();

  // Pre-CSR arc storage and adjacency.  The old engine kept arcs in
  // creation order -- component arcs grouped by instance (ascending pin
  // ids), net arcs after them -- and per-node fanout lists in that order.
  // Reconstruct the equivalent layout: records sorted by (tail id, head id),
  // which tracks pin-creation order rather than the sweep order the current
  // graph stores, in the reference's own array so the comparison reflects
  // the old memory behaviour, not the new one.
  std::vector<TArcRec> ref_arcs(graph.arcs_data(),
                                graph.arcs_data() + graph.num_arcs());
  std::sort(ref_arcs.begin(), ref_arcs.end(),
            [](const TArcRec& a, const TArcRec& b) {
              if (a.from != b.from) return a.from.value() < b.from.value();
              return a.to.value() < b.to.value();
            });
  std::vector<std::vector<std::uint32_t>> ref_fanout(graph.num_nodes());
  for (std::uint32_t ai = 0; ai < ref_arcs.size(); ++ai) {
    ref_fanout[ref_arcs[ai].from.index()].push_back(ai);
  }
  std::vector<std::uint32_t> local_index(graph.num_nodes(), 0);
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    const Cluster& cl = clusters.cluster(ClusterId(c));
    for (std::uint32_t i = 0; i < cl.nodes.size(); ++i) {
      local_index[cl.nodes[i].index()] = i;
    }
  }

  // Differential check first: every pass bit-identical between layouts.
  rep.bit_identical = true;
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    const Cluster& cl = clusters.cluster(ClusterId(c));
    for (std::size_t p = 0; p < engine.num_passes(ClusterId(c)); ++p) {
      rep.node_evals += cl.nodes.size();
      const RefPassResult ref = run_reference_pass(
          graph, sync, cl, ref_arcs, ref_fanout, local_index,
          engine.edge_graph(ClusterId(c)), engine.breaks(ClusterId(c))[p],
          engine.capture_insts(ClusterId(c)),
          engine.assigned_mask(ClusterId(c), p));
      const PassResult csr = engine.run_pass(ClusterId(c), p);
      for (std::size_t i = 0; i < cl.nodes.size(); ++i) {
        const bool rh = ref.ready[i].has_value(), ch = csr.ready.has(i);
        const bool qh = ref.required[i].has_value(), dh = csr.required.has(i);
        if (rh != ch || qh != dh ||
            (rh && !(*ref.ready[i] == csr.ready.at(i))) ||
            (qh && !(*ref.required[i] == csr.required.at(i)))) {
          rep.bit_identical = false;
        }
      }
    }
  }

  // Reference vs CSR pass-evaluation throughput, rounds interleaved so the
  // speedup ratio is robust against drifting host load.  The reference pays
  // its per-pass result allocation (that is what the pre-CSR engine's
  // run_pass did); the CSR side reuses caller-owned buffers in place.
  {
    std::vector<std::vector<PassResult>> out(clusters.num_clusters());
    for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
      out[c].resize(engine.num_passes(ClusterId(c)));
    }
    const auto [ref_us, csr_us] = time_pair_us(
        reps,
        [&] {
          for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
            for (std::size_t p = 0; p < engine.num_passes(ClusterId(c)); ++p) {
              const RefPassResult ref = run_reference_pass(
                  graph, sync, clusters.cluster(ClusterId(c)), ref_arcs,
                  ref_fanout, local_index, engine.edge_graph(ClusterId(c)),
                  engine.breaks(ClusterId(c))[p],
                  engine.capture_insts(ClusterId(c)),
                  engine.assigned_mask(ClusterId(c), p));
              (void)ref;
            }
          }
        },
        [&] {
          for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
            for (std::size_t p = 0; p < engine.num_passes(ClusterId(c)); ++p) {
              engine.run_pass_into(ClusterId(c), p, out[c][p]);
            }
          }
        });
    rep.reference_pass_eval_us = ref_us;
    rep.pass_eval_us = csr_us;
    if (rep.pass_eval_us > 0) {
      rep.node_evals_per_sec =
          1e6 * static_cast<double>(rep.node_evals) / rep.pass_eval_us;
    }
  }

  // Kernel variant and thread-scaling curve.  The 1-thread forced-scalar
  // sweep is the baseline; each curve entry then times the auto-dispatched
  // kernels with a pool of `t` workers.  The size gate is lowered so every
  // cluster takes the level-parallel path -- the curve measures kernel
  // scaling, not the cost model.  Chunk boundaries are a pure function of
  // (level size, grain), so every entry computes bit-identical results.
  rep.kernel = active_kernel_name();
  {
    std::vector<std::vector<PassResult>> out(clusters.num_clusters());
    for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
      out[c].resize(engine.num_passes(ClusterId(c)));
    }
    const auto sweep_all = [&](ThreadPool* pool) {
      for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
        for (std::size_t p = 0; p < engine.num_passes(ClusterId(c)); ++p) {
          engine.run_pass_into(ClusterId(c), p, out[c][p], pool);
        }
      }
    };
    set_kernel_mode(KernelMode::kForceScalar);
    rep.pass_eval_scalar_us = time_us(reps, [&] { sweep_all(nullptr); });
    set_kernel_mode(KernelMode::kAuto);

    const SweepTuning saved = sweep_tuning();
    set_sweep_tuning({1, 64});
    for (int t : thread_counts) {
      if (t <= 1) {
        rep.scaling.emplace_back(1, time_us(reps, [&] { sweep_all(nullptr); }));
      } else {
        ThreadPool pool(t);
        rep.scaling.emplace_back(t, time_us(reps, [&] { sweep_all(&pool); }));
      }
    }

    // Pooled sweeps must be allocation-free in steady state too: chunk
    // dispatch erases the level callable to a function pointer and the
    // per-worker workspace slots are reused after first touch.
    {
      ThreadPool pool(thread_counts.back());
      sweep_all(&pool);
      sweep_all(&pool);  // warm workspace slots and chunk state
      const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
      for (int r = 0; r < 10; ++r) sweep_all(&pool);
      const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
      rep.parallel_allocs = rep.passes == 0
                                ? 0.0
                                : static_cast<double>(after - before) /
                                      (10.0 * static_cast<double>(rep.passes));
    }
    set_sweep_tuning(saved);
  }

  // Full analysis (compute + checksums + accumulation), warm.
  engine.compute();
  rep.full_analysis_us = time_us(reps, [&] { engine.compute(); });

  // Steady-state allocation counts.  compute() over a warm cache and
  // update() over warm workspaces must both be allocation-free.
  {
    engine.compute();  // warm
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (int r = 0; r < 10; ++r) engine.compute();
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    rep.allocs_per_pass = rep.passes == 0
                              ? 0.0
                              : static_cast<double>(after - before) /
                                    (10.0 * static_cast<double>(rep.passes));
  }
  if (graph.num_nodes() > 0) {
    // A fixed mid-graph dirty node, warmed once so every persistent buffer
    // has reached steady-state capacity.
    const TNodeId probe = clusters.num_clusters() > 0
                              ? clusters.cluster(ClusterId(0)).nodes.front()
                              : TNodeId(0);
    engine.invalidate_node(probe);
    engine.update();
    engine.invalidate_node(probe);
    engine.update();  // warm twice: first update grows task slots
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (int r = 0; r < 10; ++r) {
      engine.invalidate_node(probe);
      engine.update();
    }
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    rep.update_allocs = static_cast<double>(after - before) / 10.0;
  }

  return rep;
}

}  // namespace
}  // namespace hb

int main(int argc, char** argv) {
  using namespace hb;
  bool quick = false;
  int threads = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    }
  }
  const int hardware =
      static_cast<int>(std::thread::hardware_concurrency());
  if (threads <= 0) threads = hardware > 0 ? hardware : 1;
  std::vector<int> thread_counts = {1, 2, 4, 8};
  if (std::find(thread_counts.begin(), thread_counts.end(), threads) ==
      thread_counts.end()) {
    thread_counts.push_back(threads);
    std::sort(thread_counts.begin(), thread_counts.end());
  }
  auto lib = make_standard_library();

  std::vector<Workload> workloads;
  {
    PipelineSpec spec;
    spec.stage_depths = {8, 8, 8, 8};
    spec.width = 8;
    workloads.push_back({"pipeline_8x4x8", make_pipeline(lib, spec),
                         make_two_phase_clocks(ns(6))});
  }
  {
    FilterSpec spec;
    spec.width = 12;
    spec.taps = 6;
    spec.reg_cell = "TLATCH";
    workloads.push_back({"filter_12b_6tap", make_multirate_filter(lib, spec),
                         make_multirate_clocks(ns(8))});
  }
  for (const auto& [name, banks, width, gates] :
       {std::tuple<const char*, int, int, int>{"random_small", 3, 3, 12},
        {"random_medium", 5, 6, 60},
        {"random_large", 8, 10, 220}}) {
    if (quick && std::strcmp(name, "random_large") == 0) continue;
    RandomNetworkSpec spec;
    spec.seed = 7;
    spec.num_clocks = 2;
    spec.banks = banks;
    spec.bank_width = width;
    spec.gates_per_stage = gates;
    RandomNetwork net = make_random_network(lib, spec);
    workloads.push_back({name, std::move(net.design), std::move(net.clocks)});
  }
  // Scaled workloads (skipped under --quick): a pipeline ~16x the small one
  // and a DES-like datapath past the 100k-cell mark — the 10-100x scale-ups
  // that exercise allocation behaviour and kernel scheduling for real.
  if (!quick) {
    PipelineSpec spec;
    spec.stage_depths.assign(16, 10);
    spec.width = 64;
    workloads.push_back({"pipeline_16x10x64", make_pipeline(lib, spec),
                         make_two_phase_clocks(ns(8))});
    DesSpec des;
    des.rounds = 56;
    des.half_width = 256;  // 103264 cells
    workloads.push_back({"des_100k", make_des(lib, des),
                         make_single_clock(ns(6), ps(2400))});
  }

  const int reps = quick ? 10 : 100;
  std::printf("%-16s %8s %8s %7s %7s | %10s %10s %8s | %12s %9s %9s\n",
              "network", "nodes", "arcs", "passes", "levels", "ref us",
              "csr us", "speedup", "node-evals/s", "allocs/p", "upd alloc");

  FILE* json = std::fopen("BENCH_core.json", "w");
  std::fprintf(json,
               "{\n  \"quick\": %s,\n  \"threads_used\": %d,\n"
               "  \"hardware_threads\": %d,\n  \"networks\": [\n",
               quick ? "true" : "false", threads, hardware);

  bool all_identical = true;
  bool zero_alloc = true;
  double large_speedup = 0;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    Workload& w = workloads[i];
    // The 100k-cell class sweeps in milliseconds, not microseconds; fewer
    // reps keep the full run's wall time sane without hurting best-of-N.
    const int wreps =
        w.design.total_cell_count() > 20000 ? std::max(1, reps / 20) : reps;
    const CoreReport rep = measure(w, wreps, thread_counts);
    all_identical = all_identical && rep.bit_identical;
    zero_alloc = zero_alloc && rep.allocs_per_pass == 0 &&
                 rep.update_allocs == 0 && rep.parallel_allocs == 0;
    const double speedup =
        rep.pass_eval_us > 0 ? rep.reference_pass_eval_us / rep.pass_eval_us : 0;
    if (w.name == "random_large") large_speedup = speedup;
    std::printf("%-16s %8zu %8zu %7zu %7zu | %10.1f %10.1f %7.2fx | %12.0f %9.2f %9.2f\n",
                w.name.c_str(), rep.nodes, rep.arcs, rep.passes, rep.levels,
                rep.reference_pass_eval_us, rep.pass_eval_us, speedup,
                rep.node_evals_per_sec, rep.allocs_per_pass, rep.update_allocs);
    std::printf("  kernel=%s scalar-1t %.1fus | scaling:", rep.kernel.c_str(),
                rep.pass_eval_scalar_us);
    for (const auto& [t, us] : rep.scaling) {
      std::printf("  %dt %.1fus (%.2fx)", t, us,
                  us > 0 ? rep.pass_eval_scalar_us / us : 0.0);
    }
    std::printf("  | par allocs/p %.2f\n", rep.parallel_allocs);
    if (!rep.bit_identical) {
      std::fprintf(stderr, "%s: CSR and reference engines DIVERGED\n",
                   w.name.c_str());
    }
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"cells\": %zu, \"nodes\": %zu, "
                 "\"arcs\": %zu, "
                 "\"passes\": %zu, \"levels\": %zu,\n"
                 "     \"bit_identical_to_reference\": %s,\n"
                 "     \"full_analysis_us\": %.2f, \"pass_eval_us\": %.2f, "
                 "\"reference_pass_eval_us\": %.2f, "
                 "\"speedup_vs_reference\": %.2f,\n"
                 "     \"node_evals_per_sec\": %.0f, "
                 "\"steady_state_allocs_per_pass\": %.2f, "
                 "\"steady_state_allocs_per_update\": %.2f,\n"
                 "     \"kernel\": \"%s\", \"pass_eval_scalar_1t_us\": %.2f, "
                 "\"parallel_allocs_per_pass\": %.2f,\n"
                 "     \"scaling\": [",
                 w.name.c_str(), rep.cells, rep.nodes, rep.arcs, rep.passes,
                 rep.levels,
                 rep.bit_identical ? "true" : "false", rep.full_analysis_us,
                 rep.pass_eval_us, rep.reference_pass_eval_us, speedup,
                 rep.node_evals_per_sec, rep.allocs_per_pass, rep.update_allocs,
                 rep.kernel.c_str(), rep.pass_eval_scalar_us,
                 rep.parallel_allocs);
    for (std::size_t k = 0; k < rep.scaling.size(); ++k) {
      const auto& [t, us] = rep.scaling[k];
      std::fprintf(json,
                   "{\"threads\": %d, \"pass_eval_us\": %.2f, "
                   "\"speedup_vs_1t_scalar\": %.2f}%s",
                   t, us, us > 0 ? rep.pass_eval_scalar_us / us : 0.0,
                   k + 1 < rep.scaling.size() ? ", " : "");
    }
    std::fprintf(json, "]}%s\n", i + 1 < workloads.size() ? "," : "");
  }

  // BLIF load path: serialise every workload, time the full parse+elaborate
  // (the fail-fast one-call loader), and require the round trip to close —
  // re-serialising the re-read design must reproduce the text byte for byte.
  std::fprintf(json, "  ],\n  \"blif_load\": [\n");
  std::printf("\n%-18s %10s %10s %10s %12s %9s\n", "blif load", "bytes",
              "emit us", "load us", "cells/s", "roundtrip");
  bool blif_roundtrip = true;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    Workload& w = workloads[i];
    const std::string text = blif_to_string(w.design);
    const int blif_reps = text.size() > (1u << 20) ? 1 : (quick ? 3 : 10);
    const double emit_us =
        time_us(blif_reps, [&] { (void)blif_to_string(w.design); });
    const double load_us =
        time_us(blif_reps, [&] { (void)blif_design_from_string(text, lib); });
    const Design rt = blif_design_from_string(text, lib);
    const bool ok = blif_to_string(rt) == text &&
                    rt.total_cell_count() == w.design.total_cell_count();
    blif_roundtrip = blif_roundtrip && ok;
    const std::size_t cells = w.design.total_cell_count();
    const double cells_per_sec =
        load_us > 0 ? 1e6 * static_cast<double>(cells) / load_us : 0;
    std::printf("%-18s %10zu %10.1f %10.1f %12.0f %9s\n", w.name.c_str(),
                text.size(), emit_us, load_us, cells_per_sec,
                ok ? "yes" : "NO");
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"cells\": %zu, \"bytes\": %zu, "
                 "\"emit_us\": %.2f, \"load_us\": %.2f, "
                 "\"cells_per_sec\": %.0f, \"roundtrip_ok\": %s}%s\n",
                 w.name.c_str(), cells, text.size(), emit_us, load_us,
                 cells_per_sec, ok ? "true" : "false",
                 i + 1 < workloads.size() ? "," : "");
  }

  // Multi-corner lane amortisation: one K=4 corner-lane sweep vs a K=1
  // identity sweep over the same engine.  The graph walk is paid once per
  // sweep regardless of K, so K=4 must cost well under 4x K=1 — that ratio
  // is the whole case for the lane layout (docs/SCENARIOS.md).  The K=1
  // identity lane is also held byte-identical to the engine's own cache,
  // which IS deterministic and gates the exit code; the timing ratio is
  // informational (shared CI runners make wall-clock flaky).
  std::fprintf(json, "  ],\n  \"corners\": [\n");
  std::printf("\n%-18s %10s %10s %12s %9s %9s\n", "corners (K=4)", "k1 us",
              "k4 us", "percorner us", "amort", "k1 ident");
  bool corner_identity = true;
  bool corner_amortised = true;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    Workload& w = workloads[i];
    DelayCalculator calc(w.design);
    TimingGraph graph(w.design, calc);
    SyncModel sync(graph, w.clocks, calc);
    ClusterSet clusters(graph, sync);
    SlackEngine engine(graph, clusters, sync);
    engine.compute();

    CornerSet k4;
    k4.add(Corner{"typical", kIdentityPm, kIdentityPm, {}});
    k4.add(Corner{"slow", 1250, 1300, {}});
    k4.add(Corner{"fast", 800, 780, {}});
    k4.add(Corner{"cold", 1100, 1050, {}});
    CornerAnalysis ca1(engine, CornerSet::identity());
    CornerAnalysis ca4(engine, k4);
    ca1.compute();
    ca4.compute();

    // K=1 identity lane byte-identical to the engine's own cached passes.
    bool identical = true;
    for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
      for (std::size_t p = 0; p < engine.num_passes(ClusterId(c)); ++p) {
        const PassResult& ref = engine.cached_pass(ClusterId(c), p);
        const CornerPassResult& got = ca1.cached_pass(ClusterId(c), p);
        identical = identical &&
                    got.ready.flat_size() == ref.ready.flat_size() &&
                    std::memcmp(got.ready.data(), ref.ready.data(),
                                ref.ready.flat_size() * sizeof(RiseFall)) == 0 &&
                    std::memcmp(got.required.data(), ref.required.data(),
                                ref.required.flat_size() * sizeof(RiseFall)) == 0;
      }
    }
    corner_identity = corner_identity && identical;

    const int creps = w.design.total_cell_count() > 20000
                          ? std::max(1, (quick ? 3 : 10) / 5)
                          : (quick ? 3 : 10);
    const auto [k1_us, k4_us] = time_pair_us(
        creps, [&] { ca1.compute(); }, [&] { ca4.compute(); });
    const double amort = k1_us > 0 ? k4_us / k1_us : 0;
    corner_amortised = corner_amortised && amort < 4.0;
    std::printf("%-18s %10.1f %10.1f %12.1f %8.2fx %9s\n", w.name.c_str(),
                k1_us, k4_us, k4_us / 4.0, amort, identical ? "yes" : "NO");
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"corners\": 4, "
                 "\"pass_eval_k1_us\": %.2f, \"pass_eval_k4_us\": %.2f, "
                 "\"per_corner_us\": %.2f, \"amortisation_vs_k1\": %.2f, "
                 "\"k1_identity_bit_identical\": %s}%s\n",
                 w.name.c_str(), k1_us, k4_us, k4_us / 4.0, amort,
                 identical ? "true" : "false",
                 i + 1 < workloads.size() ? "," : "");
  }

  std::fprintf(json,
               "  ],\n  \"all_bit_identical\": %s,\n"
               "  \"zero_alloc_steady_state\": %s,\n"
               "  \"blif_roundtrip_ok\": %s,\n"
               "  \"corner_k1_identity_ok\": %s,\n"
               "  \"corner_amortisation_ok\": %s,\n"
               "  \"random_large_speedup_vs_reference\": %.2f\n}\n",
               all_identical ? "true" : "false", zero_alloc ? "true" : "false",
               blif_roundtrip ? "true" : "false",
               corner_identity ? "true" : "false",
               corner_amortised ? "true" : "false", large_speedup);
  std::fclose(json);
  std::printf("\nwrote BENCH_core.json (random_large speedup vs pre-CSR "
              "reference: %.2fx; bit-identical: %s; zero-alloc: %s; "
              "blif round trip: %s; corner K=1 identity: %s; "
              "K=4 amortised: %s)\n",
              large_speedup, all_identical ? "yes" : "NO",
              zero_alloc ? "yes" : "NO", blif_roundtrip ? "yes" : "NO",
              corner_identity ? "yes" : "NO", corner_amortised ? "yes" : "NO");
  return all_identical && blif_roundtrip && corner_identity ? 0 : 1;
}
