// Figure 1 reproduction: the time-multiplexed gate configuration.  For a
// sweep of phase arrangements this bench reports how many analysis passes
// the Section 7 pre-processing selects and the resulting settling-time
// counts — the paper's "minimum number of settling times are evaluated for
// the nodes of combinational networks with input transitions controlled by
// different clock signals".
//
// Expected shape: when both data streams are captured before the other is
// launched (disjoint windows) one pass suffices; the crosswise Figure 1
// arrangement needs two; nodes private to one stream settle once even then.
#include <cstdio>

#include "baseline/edge_trace.hpp"
#include "gen/fig1.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"

int main() {
  using namespace hb;
  auto lib = make_standard_library();

  struct Arrangement {
    const char* name;
    TimePs starts[4];
  };
  const Arrangement arrangements[] = {
      // Launch A (phi1), capture A (phi2), launch B (phi3), capture B (phi4):
      // the paper's crosswise case - stream B's capture wraps past stream
      // A's launch.
      {"fig1 crosswise", {0, ns(10), ns(20), ns(30)}},
      // Both launches precede both captures: a single broken-open period
      // can order every launch before every closure -> one pass.
      {"disjoint", {0, ns(24), ns(8), ns(30)}},
      // Tighter crosswise variant: stream A captured just before stream B
      // launches, stream B's capture wrapping past stream A's next launch.
      {"crosswise tight", {0, ns(9), ns(21), ns(31)}},
  };

  std::printf("%-18s %8s %10s %16s %20s\n", "arrangement", "passes", "max settle",
              "shared (ours)", "shared (per-edge)");
  for (const Arrangement& a : arrangements) {
    Fig1Config cfg;
    for (int i = 0; i < 4; ++i) cfg.phase_start[i] = a.starts[i];
    const Design design = make_fig1_design(lib, cfg);
    const ClockSet clocks = make_fig1_clocks(cfg);
    Hummingbird analyser(design, clocks);
    analyser.analyze();
    const EdgeTraceResult per_edge = per_edge_settling_counts(analyser.engine());

    int max_settle = 0;
    int shared_settle = 0;
    int shared_per_edge = 0;
    const TimingGraph& graph = analyser.graph();
    for (std::uint32_t n = 0; n < graph.num_nodes(); ++n) {
      const NodeTiming& nt = analyser.engine().node_timing(TNodeId(n));
      max_settle = std::max(max_settle, nt.settling_count);
      if (graph.node_name(TNodeId(n)) == "shared.Y") {
        shared_settle = nt.settling_count;
        shared_per_edge = per_edge.settling_counts[n];
      }
    }
    std::printf("%-18s %8zu %10d %16d %20d\n", a.name,
                analyser.stats().analysis_passes, max_settle, shared_settle,
                shared_per_edge);
  }
  std::printf("\n\"per-edge\" = settling times a per-clock-edge attribution\n"
              "analyser (Wallace/Sequin, Szymanski) evaluates; the broken-open\n"
              "period needs the minimum instead (paper Section 7).\n");
  return 0;
}
