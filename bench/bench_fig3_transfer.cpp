// Figure 3 reproduction: the transparent-element offset geometry
// O_zd = W + O_dz + D_dz.  The transferable slack across a latch is bounded
// by the control pulse width, so the minimum workable period of an
// unbalanced latch pipeline falls as the duty cycle grows — until the
// pipeline's total delay, not the transfer headroom, binds.
//
// Series: duty cycle (pulse width / period) vs minimum workable period for
// a 2-stage pipeline with a 3:1 stage imbalance, transparent vs rigid.
#include <cstdio>

#include "gen/pipeline.hpp"
#include "netlist/stdcells.hpp"
#include "sta/search.hpp"

namespace {

hb::TimePs min_period(const hb::Design& design, int duty_permille, bool rigid) {
  hb::MinPeriodOptions options;
  options.lo = hb::ns(1);
  options.hi = hb::ns(60);
  options.rigid = rigid;
  return hb::find_min_period(
      design,
      [duty_permille](hb::TimePs p) {
        return hb::make_two_phase_clocks(p, duty_permille);
      },
      options);
}

}  // namespace

int main() {
  using namespace hb;
  auto lib = make_standard_library();

  PipelineSpec spec;
  spec.stage_depths = {90, 30};
  spec.width = 1;
  spec.latch_cell = "TLATCH";
  const Design design = make_pipeline(lib, spec);

  std::printf("duty%%   min period (transfer)   min period (rigid)\n");
  for (int duty = 150; duty <= 450; duty += 50) {
    const TimePs with_transfer = min_period(design, duty, /*rigid=*/false);
    const TimePs rigid = min_period(design, duty, /*rigid=*/true);
    std::printf("%4.1f    %-22s  %-22s\n", duty / 10.0,
                format_time(with_transfer).c_str(), format_time(rigid).c_str());
  }
  std::printf("\nwider pulses give the transfer more headroom (O_zd <= W), so the\n"
              "transparent analysis tolerates shorter periods; the rigid model\n"
              "cannot exploit the pulse at all.\n");
  return 0;
}
