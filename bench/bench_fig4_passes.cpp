// Figure 4 reproduction: the directed graph of clock edges and the minimum
// break-open set.  For growing numbers of clock phases and random
// launch/capture pairings, this bench reports the minimum number of
// analysis passes found by the exhaustive search.
//
// Expected shape (paper): "The graphs are usually small and very seldom is
// it necessary to remove more than two arcs" — pass counts stay at 1-2 for
// realistic phase counts, approaching larger values only with adversarial
// all-to-all crosswise pairings.
#include <cstdio>

#include "clocks/edge_graph.hpp"
#include "util/rng.hpp"

int main() {
  using namespace hb;
  const TimePs T = ns(64);

  std::printf("%-8s %-10s %-14s %-12s\n", "phases", "pairings", "avg passes",
              "max passes");
  for (int phases = 2; phases <= 8; ++phases) {
    for (int pairings : {2, 4, 8, 16}) {
      double sum = 0;
      std::size_t worst = 0;
      const int trials = 50;
      for (int t = 0; t < trials; ++t) {
        Rng rng(static_cast<std::uint64_t>(phases * 1000 + pairings * 10 + t));
        // Edge times: two edges per phase, evenly spread with jitter.
        std::vector<TimePs> times;
        for (int p = 0; p < phases; ++p) {
          const TimePs base = T * p / phases;
          times.push_back(base);
          times.push_back(base + T / (2 * phases) + rng.uniform(0, 500));
        }
        ClockEdgeGraph g(times, T);
        for (int k = 0; k < pairings; ++k) {
          const TimePs a = times[rng.pick(times.size())];
          const TimePs c = times[rng.pick(times.size())];
          g.add_requirement(a, c);
        }
        const std::size_t n = g.solve_min_breaks().size();
        sum += static_cast<double>(n);
        worst = std::max(worst, n);
      }
      std::printf("%-8d %-10d %-14.2f %-12zu\n", phases, pairings, sum / trials, worst);
    }
  }

  // The paper's concrete Figure 4 example: requirement "E before C" over
  // eight edges is satisfied by a single removal (break at C, D or E).
  {
    ClockEdgeGraph g({0, 1, 2, 3, 4, 5, 6, 7}, 8);
    g.add_requirement(/*E=*/4, /*C=*/2);
    std::printf("\npaper Fig.4 example: %zu pass(es); breaking at edge E gives order "
                "E F G H A B C D\n",
                g.solve_min_breaks().size());
  }
  return 0;
}
