// Cost of the resilient-runtime guardrails on the hot paths.
//
// Three guardrails ride along with every analysis and must stay (nearly)
// free when nothing goes wrong:
//   * structured diagnostics in the parsers (recovery machinery vs the
//     legacy fail-fast path on clean input);
//   * watchdog budgets (BudgetTimer checks between relaxation sweeps);
//   * cache self-checking (write-time checksums always; paranoid read-back
//     verification when enabled).
//
// Writes BENCH_guardrails.json with the measured overheads; the target is
// <5% for everything that is on by default (parse recovery, budget checks,
// write-time checksums are part of the baseline), with the paranoid
// verification reported separately since it is opt-in.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gen/random_network.hpp"
#include "netlist/netlist_io.hpp"
#include "netlist/stdcells.hpp"
#include "sta/cluster.hpp"
#include "sta/hummingbird.hpp"
#include "sta/slack_engine.hpp"
#include "util/cancel.hpp"
#include "util/diagnostics.hpp"

namespace hb {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

template <typename Fn>
double time_us(int reps, Fn&& fn) {
  fn(0);  // warm caches so first-run cost doesn't skew the comparison
  const auto start = std::chrono::steady_clock::now();
  for (int k = 0; k < reps; ++k) fn(k);
  return seconds_since(start) * 1e6 / reps;
}

// Time a baseline/guarded pair with the rounds interleaved A/B/A/B and take
// the per-side minima, so host-load drift during the run lands on both sides
// of the overhead ratio instead of skewing one window.
template <typename A, typename B>
std::pair<double, double> time_pair_us(int reps, A&& a, B&& b) {
  std::pair<double, double> best{1e30, 1e30};
  for (int round = 0; round < 5; ++round) {
    best.first = std::min(best.first, time_us(reps, a));
    best.second = std::min(best.second, time_us(reps, b));
  }
  return best;
}

double pct_over(double base_us, double with_us) {
  return base_us > 0 ? (with_us - base_us) / base_us * 100.0 : 0.0;
}

RandomNetwork make_workload(std::shared_ptr<const Library> lib) {
  RandomNetworkSpec spec;
  spec.seed = 7;
  spec.num_clocks = 2;
  spec.banks = 6;
  spec.bank_width = 8;
  spec.gates_per_stage = 120;
  return make_random_network(lib, spec);
}

}  // namespace
}  // namespace hb

int main() {
  using namespace hb;
  auto lib = make_standard_library();
  RandomNetwork net = make_workload(lib);
  const std::string text = netlist_to_string(net.design);

  // -- Parse: legacy fail-fast vs recovering parser on clean input --------
  const int parse_reps = 30;
  const auto [parse_legacy_us, parse_sink_us] = time_pair_us(
      parse_reps, [&](int) { netlist_from_string(text, lib); },
      [&](int) {
        DiagnosticSink sink;
        netlist_from_string(text, lib, sink);
      });
  const double parse_pct = pct_over(parse_legacy_us, parse_sink_us);

  // -- Analysis: no budget vs an (unexhausted) budget + cancel token ------
  const int analyze_reps = 20;
  Hummingbird plain_analyser(net.design, net.clocks);
  CancelToken cancel;
  HummingbirdOptions budget_opt;
  budget_opt.alg1.budget.wall_seconds = 3600;
  budget_opt.alg1.budget.max_total_cycles = 1 << 30;
  budget_opt.alg1.budget.cancel = &cancel;
  Hummingbird budget_analyser(net.design, net.clocks, budget_opt);
  const auto [analyze_plain_us, analyze_budget_us] = time_pair_us(
      analyze_reps, [&](int) { plain_analyser.analyze(); },
      [&](int) { budget_analyser.analyze(); });
  const double budget_pct = pct_over(analyze_plain_us, analyze_budget_us);

  // -- Incremental updates: default (write-time checksums only) vs the
  //    opt-in paranoid read-back verification --------------------------------
  DelayCalculator calc(net.design);
  TimingGraph graph(net.design, calc);
  SyncModel sync(graph, net.clocks, calc);
  ClusterSet clusters(graph, sync);
  SlackEngine engine(graph, clusters, sync);

  std::vector<SyncId> latches;
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    const SyncInstance& si = sync.at(SyncId(i));
    if (si.transparent && !si.is_virtual && si.width >= 4) {
      latches.push_back(SyncId(i));
    }
  }

  const int update_reps = 400;
  auto run_updates = [&](bool paranoid) {
    engine.set_self_check(paranoid);
    sync.reset_offsets();
    sync.drain_changed_offsets();
    engine.invalidate_all();
    engine.compute();
    return time_us(update_reps, [&](int k) {
      const SyncId id = latches[static_cast<std::size_t>(k) % latches.size()];
      SyncInstance& si = sync.at_mut(id);
      si.shift((k % 2 == 0) ? -std::min<TimePs>(si.max_decrease(), 2)
                            : std::min<TimePs>(si.max_increase(), 2));
      engine.invalidate_offsets(sync.drain_changed_offsets());
      engine.update();
    });
  };
  double update_default_us = 1e30, update_paranoid_us = 1e30;
  for (int round = 0; round < 5; ++round) {
    update_default_us = std::min(update_default_us, run_updates(false));
    update_paranoid_us = std::min(update_paranoid_us, run_updates(true));
  }
  const double paranoid_pct = pct_over(update_default_us, update_paranoid_us);

  std::printf("guardrail overheads (target < 5%% for defaults):\n");
  std::printf("  parse      %10.1f -> %10.1f us  (%+.2f%%)\n", parse_legacy_us,
              parse_sink_us, parse_pct);
  std::printf("  budget     %10.1f -> %10.1f us  (%+.2f%%)\n", analyze_plain_us,
              analyze_budget_us, budget_pct);
  std::printf("  paranoid   %10.1f -> %10.1f us  (%+.2f%%, opt-in)\n",
              update_default_us, update_paranoid_us, paranoid_pct);

  FILE* json = std::fopen("BENCH_guardrails.json", "w");
  std::fprintf(json,
               "{\n"
               "  \"hardware_threads\": %u,\n"
               "  \"threads_used\": 1,\n"
               "  \"target_default_overhead_pct\": 5.0,\n"
               "  \"parse\": {\"legacy_us\": %.1f, \"recovering_us\": %.1f, "
               "\"overhead_pct\": %.2f},\n"
               "  \"budget\": {\"plain_us\": %.1f, \"budgeted_us\": %.1f, "
               "\"overhead_pct\": %.2f},\n"
               "  \"paranoid_self_check\": {\"default_us\": %.1f, "
               "\"paranoid_us\": %.1f, \"overhead_pct\": %.2f, \"opt_in\": true}\n"
               "}\n",
               std::thread::hardware_concurrency(),
               parse_legacy_us, parse_sink_us, parse_pct, analyze_plain_us,
               analyze_budget_us, budget_pct, update_default_us,
               update_paranoid_us, paranoid_pct);
  std::fclose(json);
  std::printf("wrote BENCH_guardrails.json\n");
  return 0;
}
