// Incremental vs full slack re-evaluation.
//
// Scenario: a local change — one synchronising element's offsets shifted, or
// one combinational instance's delays adjusted — followed by a re-analysis.
// Full mode recomputes every pass of every cluster; incremental mode
// re-propagates only the affected cones and re-accumulates only the dirty
// clusters; parallel-incremental additionally spreads dirty passes over a
// thread pool.  All three produce bit-identical results (asserted here and
// in tests/incremental_test.cpp); only the work differs.
//
// Writes BENCH_incremental.json with per-network timings; the headline
// figure is the incremental speedup for single-instance offset
// perturbations on the largest generated network.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gen/filter.hpp"
#include "gen/pipeline.hpp"
#include "gen/random_network.hpp"
#include "netlist/stdcells.hpp"
#include "sta/cluster.hpp"
#include "sta/slack_engine.hpp"
#include "util/thread_pool.hpp"
#include "util/time.hpp"

namespace hb {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct Workload {
  std::string name;
  Design design;
  ClockSet clocks;
};

struct Timings {
  double full_us = 0;        // full compute() per perturbation
  double incremental_us = 0; // serial update() per perturbation
  double parallel_us = 0;    // pooled update() per perturbation
  double speedup() const { return full_us / incremental_us; }
  double parallel_speedup() const { return full_us / parallel_us; }
};

// Offset perturbation targets: non-virtual transparent instances.
std::vector<SyncId> transparent_instances(const SyncModel& sync) {
  std::vector<SyncId> out;
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    const SyncInstance& si = sync.at(SyncId(i));
    if (si.transparent && !si.is_virtual && si.width >= 4) out.push_back(SyncId(i));
  }
  return out;
}

// Shift one latch a few ps, alternating direction so offsets stay in range.
void perturb_offset(SyncModel& sync, const std::vector<SyncId>& latches, int k) {
  const SyncId id = latches[static_cast<std::size_t>(k) % latches.size()];
  SyncInstance& si = sync.at_mut(id);
  const TimePs delta = (k % 2 == 0) ? -std::min<TimePs>(si.max_decrease(), 2)
                                    : std::min<TimePs>(si.max_increase(), 2);
  si.shift(delta);
}

struct Report {
  Timings offset;
  Timings delay;
  std::size_t nodes = 0;
  std::size_t arcs = 0;
  std::size_t passes = 0;
  double retraced_per_update = 0;
  // Strategy chosen by the cost model over the serial incremental phases:
  // dirty passes patched over their cone vs re-evaluated by full sweep
  // (docs/ALGORITHMS.md §7).
  std::uint64_t cone_updates = 0;
  std::uint64_t full_sweeps = 0;
};

Report measure(Workload& w, ThreadPool& pool, int reps) {
  DelayCalculator calc(w.design);
  TimingGraph graph(w.design, calc);
  SyncModel sync(graph, w.clocks, calc);
  ClusterSet clusters(graph, sync);
  SlackEngine engine(graph, clusters, sync);

  Report rep;
  rep.nodes = graph.num_nodes();
  rep.arcs = graph.num_arcs();
  rep.passes = engine.num_passes_total();

  const std::vector<SyncId> latches = transparent_instances(sync);
  if (latches.empty()) {
    std::fprintf(stderr, "%s: no transparent latches, skipping\n", w.name.c_str());
    return rep;
  }

  // Combinational instances for the delay-perturbation scenario.
  std::vector<InstId> comb;
  for (std::uint32_t i = 0; i < w.design.top().insts().size(); ++i) {
    const Instance& inst = w.design.top().inst(InstId(i));
    if (inst.is_cell() && !w.design.lib().cell(inst.cell).is_sequential()) {
      comb.push_back(InstId(i));
    }
  }

  // Each mode replays the same deterministic perturbation sequence, so the
  // timed work is identical in meaning; verified bit-identical in tests.
  auto run_offset = [&](auto&& refresh) {
    sync.reset_offsets();
    sync.drain_changed_offsets();
    engine.invalidate_all();
    engine.compute();
    const auto start = std::chrono::steady_clock::now();
    for (int k = 0; k < reps; ++k) {
      perturb_offset(sync, latches, k);
      refresh();
    }
    return 1e6 * seconds_since(start) / reps;
  };
  rep.offset.full_us = run_offset([&] {
    sync.drain_changed_offsets();
    engine.compute();
  });
  const IncrementalStats off_before = engine.incremental_stats();
  rep.offset.incremental_us = run_offset([&] {
    engine.invalidate_offsets(sync.drain_changed_offsets());
    engine.update();
  });
  const IncrementalStats off_after = engine.incremental_stats();
  rep.cone_updates += off_after.passes_updated - off_before.passes_updated;
  rep.full_sweeps += off_after.passes_full_swept - off_before.passes_full_swept;
  rep.offset.parallel_us = run_offset([&] {
    engine.invalidate_offsets(sync.drain_changed_offsets());
    engine.update(&pool);
  });

  auto run_delay = [&](auto&& refresh) {
    engine.invalidate_all();
    engine.compute();
    const auto start = std::chrono::steady_clock::now();
    for (int k = 0; k < reps; ++k) {
      const InstId inst = comb[static_cast<std::size_t>(k * 37) % comb.size()];
      calc.adjust_instance(inst, (k % 2 == 0) ? 3 : -3);
      const TimingGraph::DelayUpdate upd = graph.update_instance_delays(inst, calc);
      for (InstId s : upd.affected_sequential) sync.refresh_element_delays(s, calc);
      refresh(upd);
    }
    return 1e6 * seconds_since(start) / reps;
  };
  rep.delay.full_us = run_delay([&](const TimingGraph::DelayUpdate&) {
    sync.drain_changed_offsets();
    engine.compute();
  });
  const IncrementalStats before = engine.incremental_stats();
  rep.delay.incremental_us = run_delay([&](const TimingGraph::DelayUpdate& upd) {
    for (std::uint32_t ai : upd.changed_arcs) {
      engine.invalidate_node(graph.arc(ai).from);
      engine.invalidate_node(graph.arc(ai).to);
    }
    engine.invalidate_offsets(sync.drain_changed_offsets());
    engine.update();
  });
  const IncrementalStats after = engine.incremental_stats();
  if (after.updates > before.updates) {
    rep.retraced_per_update =
        static_cast<double>(after.nodes_retraced - before.nodes_retraced) /
        static_cast<double>(after.updates - before.updates);
  }
  rep.cone_updates += after.passes_updated - before.passes_updated;
  rep.full_sweeps += after.passes_full_swept - before.passes_full_swept;
  rep.delay.parallel_us = run_delay([&](const TimingGraph::DelayUpdate& upd) {
    for (std::uint32_t ai : upd.changed_arcs) {
      engine.invalidate_node(graph.arc(ai).from);
      engine.invalidate_node(graph.arc(ai).to);
    }
    engine.invalidate_offsets(sync.drain_changed_offsets());
    engine.update(&pool);
  });

  return rep;
}

}  // namespace
}  // namespace hb

int main(int argc, char** argv) {
  using namespace hb;
  int threads = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    }
  }
  auto lib = make_standard_library();
  ThreadPool pool(threads);  // 0 -> one worker per hardware thread

  std::vector<Workload> workloads;

  {
    PipelineSpec spec;
    spec.stage_depths = {8, 8, 8, 8};
    spec.width = 8;
    workloads.push_back({"pipeline_8x4x8", make_pipeline(lib, spec),
                         make_two_phase_clocks(ns(6))});
  }
  {
    FilterSpec spec;
    spec.width = 12;
    spec.taps = 6;
    spec.reg_cell = "TLATCH";  // transparent: offset perturbation applies
    workloads.push_back({"filter_12b_6tap", make_multirate_filter(lib, spec),
                         make_multirate_clocks(ns(8))});
  }
  for (const auto& [name, banks, width, gates] :
       {std::tuple<const char*, int, int, int>{"random_small", 3, 3, 12},
        {"random_medium", 5, 6, 60},
        {"random_large", 8, 10, 220}}) {
    RandomNetworkSpec spec;
    spec.seed = 7;
    spec.num_clocks = 2;
    spec.banks = banks;
    spec.bank_width = width;
    spec.gates_per_stage = gates;
    RandomNetwork net = make_random_network(lib, spec);
    workloads.push_back({name, std::move(net.design), std::move(net.clocks)});
  }

  std::printf("%-16s %8s %8s %7s | %10s %10s %10s %8s %8s\n", "network", "nodes",
              "arcs", "passes", "full us", "incr us", "par us", "speedup",
              "par x");

  FILE* json = std::fopen("BENCH_incremental.json", "w");
  std::fprintf(json,
               "{\n  \"threads\": %d,\n  \"threads_used\": %d,\n"
               "  \"hardware_threads\": %d,\n  \"networks\": [\n",
               pool.size(), pool.size(),
               static_cast<int>(std::thread::hardware_concurrency()));

  double largest_speedup = 0;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    Workload& w = workloads[i];
    const Report rep = measure(w, pool, 200);
    largest_speedup = rep.offset.speedup();  // workloads are ordered by size
    std::printf("%-16s %8zu %8zu %7zu | %10.1f %10.1f %10.1f %7.1fx %7.1fx\n",
                w.name.c_str(), rep.nodes, rep.arcs, rep.passes,
                rep.offset.full_us, rep.offset.incremental_us,
                rep.offset.parallel_us, rep.offset.speedup(),
                rep.offset.parallel_speedup());
    std::printf("%-16s %8s %8s %7s | %10.1f %10.1f %10.1f %7.1fx %7.1fx  (delay, ~%.0f nodes retraced)\n",
                "", "", "", "", rep.delay.full_us, rep.delay.incremental_us,
                rep.delay.parallel_us, rep.delay.speedup(),
                rep.delay.parallel_speedup(), rep.retraced_per_update);
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"nodes\": %zu, \"arcs\": %zu, "
                 "\"passes\": %zu,\n"
                 "     \"offset_perturbation\": {\"full_us\": %.2f, "
                 "\"incremental_us\": %.2f, \"parallel_us\": %.2f, "
                 "\"speedup\": %.2f, \"parallel_speedup\": %.2f},\n"
                 "     \"delay_perturbation\": {\"full_us\": %.2f, "
                 "\"incremental_us\": %.2f, \"parallel_us\": %.2f, "
                 "\"speedup\": %.2f, \"parallel_speedup\": %.2f},\n"
                 "     \"strategy\": {\"cone_updates\": %llu, "
                 "\"full_sweeps\": %llu},\n"
                 "     \"retraced_nodes_per_update\": %.1f}%s\n",
                 w.name.c_str(), rep.nodes, rep.arcs, rep.passes,
                 rep.offset.full_us, rep.offset.incremental_us,
                 rep.offset.parallel_us, rep.offset.speedup(),
                 rep.offset.parallel_speedup(), rep.delay.full_us,
                 rep.delay.incremental_us, rep.delay.parallel_us,
                 rep.delay.speedup(), rep.delay.parallel_speedup(),
                 static_cast<unsigned long long>(rep.cone_updates),
                 static_cast<unsigned long long>(rep.full_sweeps),
                 rep.retraced_per_update,
                 i + 1 < workloads.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"largest_network_offset_speedup\": %.2f\n}\n",
               largest_speedup);
  std::fclose(json);
  std::printf("\nwrote BENCH_incremental.json (largest-network offset speedup: %.1fx)\n",
              largest_speedup);
  return 0;
}
