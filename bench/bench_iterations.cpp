// Ablation C: "the number of iterations required, and hence the run times,
// depend upon the specified clock speeds" (paper Section 8).  Sweeps the
// clock period of a transparent-latch pipeline and reports Algorithm 1's
// complete forward/backward transfer cycles, slack evaluations, and run
// time.
//
// Expected shape: comfortable clocks converge in 0-1 cycles; near the
// minimum workable period the transfers iterate several times before the
// verdict settles; far below it, the first fixpoints conclude quickly again
// (everything is hopeless, nothing can be transferred usefully).
#include <cstdio>

#include "gen/pipeline.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"

int main() {
  using namespace hb;
  auto lib = make_standard_library();

  PipelineSpec spec;
  spec.stage_depths = {50, 30, 60, 20};
  spec.width = 4;
  spec.latch_cell = "TLATCH";
  const Design design = make_pipeline(lib, spec);
  std::printf("pipeline: %zu cells\n", design.total_cell_count());

  std::printf("%-10s %-8s %-9s %-9s %-7s %-12s %-10s\n", "period", "works",
              "fwd cyc", "bwd cyc", "evals", "analysis(s)", "worst slack");
  for (TimePs period = ns(4); period <= ns(16); period += ns(1)) {
    const ClockSet clocks = make_two_phase_clocks(period);
    Hummingbird analyser(design, clocks);
    const Algorithm1Result res = analyser.analyze();
    std::printf("%-10s %-8s %-9d %-9d %-7d %-12.4f %-10s\n",
                format_time(period).c_str(), res.works_as_intended ? "yes" : "no",
                res.forward_cycles, res.backward_cycles, res.slack_evaluations,
                analyser.stats().analysis_seconds,
                format_time(res.worst_slack).c_str());
  }
  return 0;
}
