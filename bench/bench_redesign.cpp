// Ablation E: the analysis-redesign loop (Algorithm 3) across target clock
// periods.  For each target, an all-X1 (area-optimised) ALU is driven
// through analyse -> constrain -> resize iterations; the series reports the
// iterations, cells upsized, area cost and the final verdict.
//
// Expected shape: targets the X1 netlist already meets cost nothing;
// moderately aggressive targets are met with a few percent of area;
// past the library's capability the loop terminates with "not met" rather
// than looping forever.
#include <cstdio>

#include "gen/alu.hpp"
#include "gen/des.hpp"
#include "netlist/stdcells.hpp"
#include "synth/redesign_loop.hpp"
#include "synth/resize.hpp"

int main() {
  using namespace hb;
  auto lib = make_standard_library();

  std::printf("%-10s %-7s %-8s %-9s %-12s %-10s %-10s\n", "target", "met",
              "iters", "resized", "area um^2", "area +%", "final slack");
  for (TimePs period : {ns(6), ns(5), ns(4), ps(3400), ns(3), ps(2600), ns(2)}) {
    AluSpec spec;
    spec.bits = 16;
    Design design = make_alu(lib, spec);

    RedesignOptions options;
    options.max_iterations = 120;
    const RedesignResult res =
        run_redesign_loop(design, make_single_clock(period, period * 2 / 5), options);
    std::printf("%-10s %-7s %-8d %-9d %-12.1f %-10.1f %-10s\n",
                format_time(period).c_str(), res.met_timing ? "yes" : "NO",
                res.iterations, res.cells_resized, res.final_area_um2,
                100.0 * (res.final_area_um2 - res.initial_area_um2) /
                    res.initial_area_um2,
                format_time(res.final_worst_slack).c_str());
  }
  return 0;
}
