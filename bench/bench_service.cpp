// Query-service throughput and what-if latency.
//
// Scenario: one Session over the largest generated random network, hammered
// by 1/4/8 client threads issuing a realistic read mix (summary,
// worst_paths, histogram, slack over a rotating node set), then a what-if
// loop (set_delay + commit) running under 4 concurrent readers.  Each
// thread-count run uses a fresh session so cache warm-up is comparable.
//
// Writes BENCH_service.json.  `hardware_threads` records the machine the
// numbers came from: read scaling across client threads is limited by the
// cores available (a 1-core container serialises every client).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/random_network.hpp"
#include "netlist/stdcells.hpp"
#include "service/session.hpp"
#include "service/snapshot_store.hpp"
#include "util/time.hpp"

namespace hb {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

std::shared_ptr<Session> make_bench_session() {
  RandomNetworkSpec spec;
  spec.seed = 7;
  spec.num_clocks = 2;
  spec.banks = 8;
  spec.bank_width = 10;
  spec.gates_per_stage = 220;
  RandomNetwork net = make_random_network(make_standard_library(), spec);
  return std::make_shared<Session>(std::move(net.design), std::move(net.clocks));
}

/// The per-client read mix, parameterised by iteration so slack queries
/// rotate through the node set (misses on first touch, hits after).
std::string read_query(const std::vector<std::string>& nodes, int k) {
  switch (k % 4) {
    case 0: return "summary";
    case 1: return "worst_paths 8";
    case 2: return "histogram 8";
    default:
      return "slack " + nodes[static_cast<std::size_t>(k / 4) % nodes.size()];
  }
}

struct ThroughputResult {
  int clients = 0;
  double qps = 0;
  double cache_hit_rate = 0;
};

struct SnapshotCodecResult {
  std::size_t image_bytes = 0;
  double serialize_mb_s = 0;  // MB/s through serialize_snapshot
  double parse_mb_s = 0;      // MB/s through parse_snapshot (validated)
};

/// Serialise/parse throughput of the persistence codec over the bench
/// session's fully captured snapshot — the cost of one store save and one
/// warm-restart load, minus the disk.
SnapshotCodecResult measure_snapshot_codec(int iters) {
  auto session = make_bench_session();
  const AnalysisSnapshot& snap = *session->snapshot();
  SnapshotCodecResult r;

  std::string image;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) image = serialize_snapshot(snap);
  const double ser_s = seconds_since(start);
  r.image_bytes = image.size();
  r.serialize_mb_s =
      static_cast<double>(image.size()) * iters / ser_s / 1e6;

  start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    const SnapshotParse p = parse_snapshot(image);
    if (!p.ok()) {
      std::printf("snapshot parse failed: %s\n", p.error.c_str());
      std::exit(1);
    }
  }
  const double parse_s = seconds_since(start);
  r.parse_mb_s = static_cast<double>(image.size()) * iters / parse_s / 1e6;
  return r;
}

ThroughputResult measure_reads(int clients, int queries_per_client) {
  auto session = make_bench_session();
  std::vector<std::string> nodes;
  for (const auto& [name, node] : session->snapshot()->names->node_by_name) {
    nodes.push_back(name);
    if (nodes.size() == 256) break;
  }
  std::sort(nodes.begin(), nodes.end());  // deterministic rotation order

  auto client = [&](int offset) {
    for (int k = 0; k < queries_per_client; ++k) {
      session->execute(read_query(nodes, k + offset));
    }
  };

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) threads.emplace_back(client, 17 * c);
  for (std::thread& t : threads) t.join();
  const double elapsed = seconds_since(start);

  ThroughputResult r;
  r.clients = clients;
  r.qps = static_cast<double>(clients) * queries_per_client / elapsed;
  r.cache_hit_rate = session->metrics().cache_hit_rate();
  return r;
}

struct WhatIfResult {
  double mean_us = 0;
  double p50_us = 0;
  double max_us = 0;
  int commits = 0;
};

WhatIfResult measure_whatif(int readers, int commits) {
  auto session = make_bench_session();
  std::vector<std::string> comb;
  for (const Instance& inst : session->design().top().insts()) {
    if (inst.is_cell() &&
        !session->design().lib().cell(inst.cell).is_sequential()) {
      comb.push_back(inst.name);
      if (comb.size() == 32) break;
    }
  }
  std::vector<std::string> nodes;
  for (const auto& [name, node] : session->snapshot()->names->node_by_name) {
    nodes.push_back(name);
    if (nodes.size() == 64) break;
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int c = 0; c < readers; ++c) {
    threads.emplace_back([&, c] {
      for (int k = 0; !stop.load(std::memory_order_relaxed); ++k) {
        session->execute(read_query(nodes, k + 17 * c));
      }
    });
  }

  std::vector<double> latency_us;
  latency_us.reserve(static_cast<std::size_t>(commits));
  for (int k = 0; k < commits; ++k) {
    const std::string& inst = comb[static_cast<std::size_t>(k) % comb.size()];
    session->execute("set_delay " + inst + (k % 2 == 0 ? " 5" : " -5"));
    const auto start = std::chrono::steady_clock::now();
    session->execute("commit");
    latency_us.push_back(1e6 * seconds_since(start));
  }
  stop = true;
  for (std::thread& t : threads) t.join();

  WhatIfResult r;
  r.commits = commits;
  std::sort(latency_us.begin(), latency_us.end());
  for (double v : latency_us) r.mean_us += v;
  r.mean_us /= static_cast<double>(latency_us.size());
  r.p50_us = latency_us[latency_us.size() / 2];
  r.max_us = latency_us.back();
  return r;
}

}  // namespace
}  // namespace hb

int main() {
  using namespace hb;
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u\n", hw);
  std::printf("%8s %12s %14s\n", "clients", "queries/s", "cache hit rate");

  std::vector<ThroughputResult> reads;
  for (int clients : {1, 4, 8}) {
    reads.push_back(measure_reads(clients, 4000));
    const ThroughputResult& r = reads.back();
    std::printf("%8d %12.0f %13.1f%%\n", r.clients, r.qps,
                100.0 * r.cache_hit_rate);
  }
  const double scaling = reads.back().qps / reads.front().qps;
  std::printf("read throughput scaling 1 -> 8 clients: %.2fx\n", scaling);

  const WhatIfResult whatif = measure_whatif(4, 40);
  std::printf(
      "what-if commit under 4 readers: mean %.0f us, p50 %.0f us, max %.0f us "
      "(%d commits)\n",
      whatif.mean_us, whatif.p50_us, whatif.max_us, whatif.commits);

  const SnapshotCodecResult codec = measure_snapshot_codec(20);
  std::printf(
      "snapshot codec (%zu byte image): serialize %.0f MB/s, parse %.0f MB/s\n",
      codec.image_bytes, codec.serialize_mb_s, codec.parse_mb_s);

  FILE* json = std::fopen("BENCH_service.json", "w");
  std::fprintf(json,
               "{\n  \"hardware_threads\": %u,\n  \"threads_used\": %u,\n"
               "  \"read_throughput\": [\n",
               hw, hw > 0 ? hw : 1);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    std::fprintf(json,
                 "    {\"clients\": %d, \"queries_per_second\": %.0f, "
                 "\"cache_hit_rate\": %.3f}%s\n",
                 reads[i].clients, reads[i].qps, reads[i].cache_hit_rate,
                 i + 1 < reads.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"read_scaling_1_to_8\": %.2f,\n"
               "  \"whatif_commit_under_4_readers\": {\"mean_us\": %.1f, "
               "\"p50_us\": %.1f, \"max_us\": %.1f, \"commits\": %d},\n"
               "  \"snapshot_codec\": {\"image_bytes\": %zu, "
               "\"serialize_mb_s\": %.1f, \"parse_mb_s\": %.1f}\n}\n",
               scaling, whatif.mean_us, whatif.p50_us, whatif.max_us,
               whatif.commits, codec.image_bytes, codec.serialize_mb_s,
               codec.parse_mb_s);
  std::fclose(json);
  std::printf("wrote BENCH_service.json\n");
  return 0;
}
