// Query-service throughput and what-if latency.
//
// Scenario: one Session over the largest generated random network, hammered
// by 1/4/8 client threads issuing a realistic read mix (summary,
// worst_paths, histogram, slack over a rotating node set), then a what-if
// loop (set_delay + commit) running under 4 concurrent readers.  Each
// thread-count run uses a fresh session so cache warm-up is comparable.
//
// Two zero-copy read-path comparisons ride along (docs/SERVICE.md):
//   * proto1 vs proto2 — the same hot read mix through one text-protocol
//     connection and one binary-protocol connection against the same host,
//     in interleaved rounds so cache state and frequency scaling hit both
//     sides equally;
//   * copy load vs mmap view — warm-restart time to the first served query,
//     decoded-copy path (read + parse_snapshot + evaluate) against the
//     SnapshotView path (map_file + evaluate).
//
// Writes BENCH_service.json.  `hardware_threads` records the machine the
// numbers came from: read scaling across client threads is limited by the
// cores available (a 1-core container serialises every client).
// `--quick` shrinks every iteration count for the CI perf-smoke schema
// check; the JSON records which mode produced it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/random_network.hpp"
#include "netlist/stdcells.hpp"
#include "service/proto2.hpp"
#include "service/protocol.hpp"
#include "service/session.hpp"
#include "service/snapshot_read.hpp"
#include "service/snapshot_source.hpp"
#include "service/snapshot_store.hpp"
#include "service/snapshot_view.hpp"
#include "util/time.hpp"

namespace hb {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

std::shared_ptr<Session> make_bench_session() {
  RandomNetworkSpec spec;
  spec.seed = 7;
  spec.num_clocks = 2;
  spec.banks = 8;
  spec.bank_width = 10;
  spec.gates_per_stage = 220;
  RandomNetwork net = make_random_network(make_standard_library(), spec);
  return std::make_shared<Session>(std::move(net.design), std::move(net.clocks));
}

/// The per-client read mix, parameterised by iteration so slack queries
/// rotate through the node set (misses on first touch, hits after).
std::string read_query(const std::vector<std::string>& nodes, int k) {
  switch (k % 4) {
    case 0: return "summary";
    case 1: return "worst_paths 8";
    case 2: return "histogram 8";
    default:
      return "slack " + nodes[static_cast<std::size_t>(k / 4) % nodes.size()];
  }
}

struct ThroughputResult {
  int clients = 0;
  double qps = 0;
  double cache_hit_rate = 0;
};

struct SnapshotCodecResult {
  std::size_t image_bytes = 0;
  double serialize_mb_s = 0;  // MB/s through serialize_snapshot
  double parse_mb_s = 0;      // MB/s through parse_snapshot (validated)
};

/// Serialise/parse throughput of the persistence codec over the bench
/// session's fully captured snapshot — the cost of one store save and one
/// warm-restart load, minus the disk.
SnapshotCodecResult measure_snapshot_codec(int iters) {
  auto session = make_bench_session();
  const AnalysisSnapshot& snap = *session->snapshot();
  SnapshotCodecResult r;

  std::string image;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) image = serialize_snapshot(snap);
  const double ser_s = seconds_since(start);
  r.image_bytes = image.size();
  r.serialize_mb_s =
      static_cast<double>(image.size()) * iters / ser_s / 1e6;

  start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    const SnapshotParse p = parse_snapshot(image);
    if (!p.ok()) {
      std::printf("snapshot parse failed: %s\n", p.error.c_str());
      std::exit(1);
    }
  }
  const double parse_s = seconds_since(start);
  r.parse_mb_s = static_cast<double>(image.size()) * iters / parse_s / 1e6;
  return r;
}

ThroughputResult measure_reads(int clients, int queries_per_client) {
  auto session = make_bench_session();
  std::vector<std::string> nodes;
  for (const auto& [name, node] : session->snapshot()->names->node_by_name) {
    nodes.push_back(name);
    if (nodes.size() == 256) break;
  }
  std::sort(nodes.begin(), nodes.end());  // deterministic rotation order

  auto client = [&](int offset) {
    for (int k = 0; k < queries_per_client; ++k) {
      session->execute(read_query(nodes, k + offset));
    }
  };

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) threads.emplace_back(client, 17 * c);
  for (std::thread& t : threads) t.join();
  const double elapsed = seconds_since(start);

  ThroughputResult r;
  r.clients = clients;
  r.qps = static_cast<double>(clients) * queries_per_client / elapsed;
  r.cache_hit_rate = session->metrics().cache_hit_rate();
  return r;
}

struct WhatIfResult {
  double mean_us = 0;
  double p50_us = 0;
  double max_us = 0;
  int commits = 0;
};

WhatIfResult measure_whatif(int readers, int commits) {
  auto session = make_bench_session();
  std::vector<std::string> comb;
  for (const Instance& inst : session->design().top().insts()) {
    if (inst.is_cell() &&
        !session->design().lib().cell(inst.cell).is_sequential()) {
      comb.push_back(inst.name);
      if (comb.size() == 32) break;
    }
  }
  std::vector<std::string> nodes;
  for (const auto& [name, node] : session->snapshot()->names->node_by_name) {
    nodes.push_back(name);
    if (nodes.size() == 64) break;
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int c = 0; c < readers; ++c) {
    threads.emplace_back([&, c] {
      for (int k = 0; !stop.load(std::memory_order_relaxed); ++k) {
        session->execute(read_query(nodes, k + 17 * c));
      }
    });
  }

  std::vector<double> latency_us;
  latency_us.reserve(static_cast<std::size_t>(commits));
  for (int k = 0; k < commits; ++k) {
    const std::string& inst = comb[static_cast<std::size_t>(k) % comb.size()];
    session->execute("set_delay " + inst + (k % 2 == 0 ? " 5" : " -5"));
    const auto start = std::chrono::steady_clock::now();
    session->execute("commit");
    latency_us.push_back(1e6 * seconds_since(start));
  }
  stop = true;
  for (std::thread& t : threads) t.join();

  WhatIfResult r;
  r.commits = commits;
  std::sort(latency_us.begin(), latency_us.end());
  for (double v : latency_us) r.mean_us += v;
  r.mean_us /= static_cast<double>(latency_us.size());
  r.p50_us = latency_us[latency_us.size() / 2];
  r.max_us = latency_us.back();
  return r;
}

struct ProtocolCompareResult {
  int queries_per_side = 0;
  double proto1_qps = 0;
  double proto2_qps = 0;
  double speedup = 0;
};

/// The same hot read mix through one text connection and one already
/// negotiated binary connection on the same host.  Rounds interleave so
/// both protocols see identical cache state; requests are pre-rendered so
/// only the serving path is on the clock.
ProtocolCompareResult measure_protocols(int rounds, int queries_per_round) {
  ServiceHost host;
  host.adopt(make_bench_session());
  std::vector<std::string> nodes;
  for (const auto& [name, node] :
       host.session()->snapshot()->names->node_by_name) {
    nodes.push_back(name);
    if (nodes.size() == 64) break;
  }
  std::sort(nodes.begin(), nodes.end());

  std::vector<std::string> lines;
  std::vector<std::string> payloads;  // proto2 frame payloads, sans prefix
  for (int k = 0; k < queries_per_round; ++k) {
    lines.push_back(read_query(nodes, k));
    const ParsedQuery q = parse_query(lines.back());
    std::string frame;
    if (!q.ok || !proto2_encode_request(q, frame)) {
      std::printf("no typed encoding for '%s'\n", lines.back().c_str());
      std::exit(1);
    }
    payloads.push_back(std::string(std::string_view(frame).substr(4)));
  }

  ProtocolHandler h1(host);
  ProtocolHandler h2(host);
  if (h2.handle_line("proto 2") != "ok proto 2\n") {
    std::printf("proto 2 negotiation failed\n");
    std::exit(1);
  }
  // Warm both connections: caches filled, arenas grown.
  for (const std::string& l : lines) h1.handle_line(l);
  for (const std::string& p : payloads) h2.handle_frame(p);

  double t1 = 0, t2 = 0;
  std::size_t sink = 0;
  for (int r = 0; r < rounds; ++r) {
    auto start = std::chrono::steady_clock::now();
    for (const std::string& l : lines) sink += h1.handle_line(l).size();
    t1 += seconds_since(start);
    start = std::chrono::steady_clock::now();
    for (const std::string& p : payloads) sink += h2.handle_frame(p).size();
    t2 += seconds_since(start);
  }
  if (sink == 0) std::printf("empty replies\n");

  ProtocolCompareResult r;
  r.queries_per_side = rounds * queries_per_round;
  r.proto1_qps = r.queries_per_side / t1;
  r.proto2_qps = r.queries_per_side / t2;
  r.speedup = r.proto2_qps / r.proto1_qps;
  return r;
}

struct WarmRestartResult {
  std::size_t image_bytes = 0;
  double copy_first_query_us = 0;
  double view_first_query_us = 0;
  double speedup = 0;
  double copy_mb_s = 0;
  double view_mb_s = 0;
};

/// Warm-restart cost to the first served reply, per path: the decoded copy
/// (read the file, parse_snapshot, adapt, evaluate `summary`) against the
/// mmap view (map_file, evaluate `summary`).  Fresh mapping every
/// iteration; the file stays in page cache for both sides, so the delta is
/// decode work, not disk.
WarmRestartResult measure_warm_restart(int iters) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "hb-bench-warm").string();
  fs::remove_all(dir);
  SnapshotStore store({dir, 2});
  std::string path;
  {
    auto session = make_bench_session();
    const SnapshotStore::SaveResult save = store.save(*session->snapshot());
    if (!save.ok) {
      std::printf("snapshot save failed: %s\n", save.error.c_str());
      std::exit(1);
    }
    path = save.path;
  }
  const ParsedQuery q = parse_query("summary");

  WarmRestartResult r;
  std::string first_reply;
  double copy_s = 0, view_s = 0;
  for (int i = -1; i < iters; ++i) {  // iteration -1 is the warm-up
    auto start = std::chrono::steady_clock::now();
    std::ifstream in(path, std::ios::binary);
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    const SnapshotParse parsed = parse_snapshot(bytes);
    if (!parsed.ok()) {
      std::printf("copy load failed: %s\n", parsed.error.c_str());
      std::exit(1);
    }
    const SnapshotCopySource src(*parsed.snapshot);
    BudgetTimer timer{AnalysisBudget{}};
    const std::string reply = to_wire(evaluate_snapshot_read(q, src, timer));
    if (i >= 0) copy_s += seconds_since(start);
    r.image_bytes = bytes.size();
    first_reply = reply;
  }
  for (int i = -1; i < iters; ++i) {
    auto start = std::chrono::steady_clock::now();
    const SnapshotView::MapResult mr = SnapshotView::map_file(path);
    if (!mr.ok()) {
      std::printf("view map failed: %s\n", mr.error.c_str());
      std::exit(1);
    }
    BudgetTimer timer{AnalysisBudget{}};
    const std::string reply =
        to_wire(evaluate_snapshot_read(q, *mr.view, timer));
    if (i >= 0) view_s += seconds_since(start);
    if (reply != first_reply) {
      std::printf("view reply diverged from copy reply\n");
      std::exit(1);
    }
  }
  fs::remove_all(dir);

  r.copy_first_query_us = 1e6 * copy_s / iters;
  r.view_first_query_us = 1e6 * view_s / iters;
  r.speedup = r.copy_first_query_us / r.view_first_query_us;
  r.copy_mb_s = static_cast<double>(r.image_bytes) / (copy_s / iters) / 1e6;
  r.view_mb_s = static_cast<double>(r.image_bytes) / (view_s / iters) / 1e6;
  return r;
}

}  // namespace
}  // namespace hb

int main(int argc, char** argv) {
  using namespace hb;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u%s\n", hw, quick ? " (quick mode)" : "");
  std::printf("%8s %12s %14s\n", "clients", "queries/s", "cache hit rate");

  std::vector<ThroughputResult> reads;
  for (int clients : {1, 4, 8}) {
    reads.push_back(measure_reads(clients, quick ? 400 : 4000));
    const ThroughputResult& r = reads.back();
    std::printf("%8d %12.0f %13.1f%%\n", r.clients, r.qps,
                100.0 * r.cache_hit_rate);
  }
  const double scaling = reads.back().qps / reads.front().qps;
  std::printf("read throughput scaling 1 -> 8 clients: %.2fx\n", scaling);

  const WhatIfResult whatif = measure_whatif(4, quick ? 8 : 40);
  std::printf(
      "what-if commit under 4 readers: mean %.0f us, p50 %.0f us, max %.0f us "
      "(%d commits)\n",
      whatif.mean_us, whatif.p50_us, whatif.max_us, whatif.commits);

  const SnapshotCodecResult codec = measure_snapshot_codec(quick ? 3 : 20);
  std::printf(
      "snapshot codec (%zu byte image): serialize %.0f MB/s, parse %.0f MB/s\n",
      codec.image_bytes, codec.serialize_mb_s, codec.parse_mb_s);

  const ProtocolCompareResult proto =
      measure_protocols(quick ? 20 : 200, 64);
  std::printf(
      "protocol compare (%d queries/side): proto1 %.0f q/s, proto2 %.0f q/s, "
      "%.2fx\n",
      proto.queries_per_side, proto.proto1_qps, proto.proto2_qps,
      proto.speedup);

  const WarmRestartResult warm = measure_warm_restart(quick ? 5 : 15);
  std::printf(
      "warm restart to first query (%zu byte image): copy %.0f us "
      "(%.0f MB/s), view %.0f us (%.0f MB/s), %.1fx\n",
      warm.image_bytes, warm.copy_first_query_us, warm.copy_mb_s,
      warm.view_first_query_us, warm.view_mb_s, warm.speedup);

  FILE* json = std::fopen("BENCH_service.json", "w");
  std::fprintf(json,
               "{\n  \"hardware_threads\": %u,\n  \"threads_used\": %u,\n"
               "  \"quick\": %s,\n"
               "  \"read_throughput\": [\n",
               hw, hw > 0 ? hw : 1, quick ? "true" : "false");
  for (std::size_t i = 0; i < reads.size(); ++i) {
    std::fprintf(json,
                 "    {\"clients\": %d, \"queries_per_second\": %.0f, "
                 "\"cache_hit_rate\": %.3f}%s\n",
                 reads[i].clients, reads[i].qps, reads[i].cache_hit_rate,
                 i + 1 < reads.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"read_scaling_1_to_8\": %.2f,\n"
               "  \"whatif_commit_under_4_readers\": {\"mean_us\": %.1f, "
               "\"p50_us\": %.1f, \"max_us\": %.1f, \"commits\": %d},\n"
               "  \"snapshot_codec\": {\"image_bytes\": %zu, "
               "\"serialize_mb_s\": %.1f, \"parse_mb_s\": %.1f},\n",
               scaling, whatif.mean_us, whatif.p50_us, whatif.max_us,
               whatif.commits, codec.image_bytes, codec.serialize_mb_s,
               codec.parse_mb_s);
  std::fprintf(json,
               "  \"proto2\": {\"queries_per_side\": %d, "
               "\"proto1_qps\": %.0f, \"proto2_qps\": %.0f, "
               "\"speedup\": %.2f, "
               "\"verbs\": [\"summary\", \"worst_paths\", \"histogram\", "
               "\"slack\"]},\n"
               "  \"warm_restart\": {\"image_bytes\": %zu, "
               "\"copy_first_query_us\": %.1f, \"view_first_query_us\": %.1f, "
               "\"speedup\": %.2f, \"copy_mb_s\": %.1f, \"view_mb_s\": %.1f}"
               "\n}\n",
               proto.queries_per_side, proto.proto1_qps, proto.proto2_qps,
               proto.speedup, warm.image_bytes, warm.copy_first_query_us,
               warm.view_first_query_us, warm.speedup, warm.copy_mb_s,
               warm.view_mb_s);
  std::fclose(json);
  std::printf("wrote BENCH_service.json\n");
  return 0;
}
