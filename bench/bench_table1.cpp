// Regenerates the paper's Table 1: "Run times in VAX 8800 cpu seconds" for
//   DES  - complete data encryption chip (3681 standard cells in the paper)
//   ALU  - portion of a CPU chip (899 standard cells)
//   SM1F - 12-bit finite state machine, flattened standard-cell network
//   SM1H - hierarchical description of the same machine (logic in a single
//          module)
// Columns: cells, nets, pre-processing time (cluster generation + the
// Section 7 pass-selection algorithm) and analysis time (Algorithm 1).
//
// Absolute numbers differ from a 1989 VAX 8800; the shapes to check are
// (i) run time grows roughly linearly with design size, (ii) pre-processing
// is a modest fraction of total, and (iii) the hierarchical SM1H analyses
// faster than the flattened SM1F.
#include <cstdio>

#include "gen/alu.hpp"
#include "gen/des.hpp"
#include "gen/fsm.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"

namespace {

void run_row(const char* name, const hb::Design& design, const hb::ClockSet& clocks) {
  // Best of three runs, as a crude cpu-time stabiliser.
  double pre = 1e9, ana = 1e9;
  bool ok = false;
  std::size_t graph_nodes = 0;
  for (int i = 0; i < 3; ++i) {
    hb::Hummingbird analyser(design, clocks);
    ok = analyser.analyze().works_as_intended;
    pre = std::min(pre, analyser.stats().preprocess_seconds);
    ana = std::min(ana, analyser.stats().analysis_seconds);
    graph_nodes = analyser.stats().graph_nodes;
  }
  std::printf("%-6s %8zu %8zu %8zu %14.4f %12.4f   %s\n", name,
              design.total_cell_count(), design.total_net_count(), graph_nodes,
              pre, ana, ok ? "meets timing" : "has slow paths");
}

}  // namespace

int main() {
  auto lib = hb::make_standard_library();

  std::printf("Table 1: run times (seconds on this machine; paper: VAX 8800 cpu s)\n");
  std::printf("%-6s %8s %8s %8s %14s %12s\n", "name", "cells", "nets", "nodes",
              "pre-process(s)", "analysis(s)");

  {
    const hb::Design des = hb::make_des(lib);
    run_row("DES", des, hb::make_single_clock(hb::ns(40), hb::ns(16)));
  }
  {
    hb::AluSpec spec;
    spec.bits = 56;  // lands near the paper's 899 cells
    const hb::Design alu = hb::make_alu(lib, spec);
    run_row("ALU", alu, hb::make_single_clock(hb::ns(60), hb::ns(24)));
  }
  {
    const hb::Design fsm = hb::make_fsm_flat(lib);
    run_row("SM1F", fsm, hb::make_single_clock(hb::ns(20), hb::ns(8)));
  }
  {
    const hb::Design fsm = hb::make_fsm_hier(lib);
    run_row("SM1H", fsm, hb::make_single_clock(hb::ns(20), hb::ns(8)));
  }
  return 0;
}
