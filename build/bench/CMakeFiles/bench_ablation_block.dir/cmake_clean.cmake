file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_block.dir/bench_ablation_block.cpp.o"
  "CMakeFiles/bench_ablation_block.dir/bench_ablation_block.cpp.o.d"
  "bench_ablation_block"
  "bench_ablation_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
