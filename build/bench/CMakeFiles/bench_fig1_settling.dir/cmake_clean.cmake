file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_settling.dir/bench_fig1_settling.cpp.o"
  "CMakeFiles/bench_fig1_settling.dir/bench_fig1_settling.cpp.o.d"
  "bench_fig1_settling"
  "bench_fig1_settling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_settling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
