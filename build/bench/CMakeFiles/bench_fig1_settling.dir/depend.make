# Empty dependencies file for bench_fig1_settling.
# This may be replaced when dependencies are built.
