# Empty dependencies file for bench_fig3_transfer.
# This may be replaced when dependencies are built.
