file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_passes.dir/bench_fig4_passes.cpp.o"
  "CMakeFiles/bench_fig4_passes.dir/bench_fig4_passes.cpp.o.d"
  "bench_fig4_passes"
  "bench_fig4_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
