file(REMOVE_RECURSE
  "CMakeFiles/bench_redesign.dir/bench_redesign.cpp.o"
  "CMakeFiles/bench_redesign.dir/bench_redesign.cpp.o.d"
  "bench_redesign"
  "bench_redesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_redesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
