# Empty dependencies file for bench_redesign.
# This may be replaced when dependencies are built.
