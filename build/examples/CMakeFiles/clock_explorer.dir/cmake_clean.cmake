file(REMOVE_RECURSE
  "CMakeFiles/clock_explorer.dir/clock_explorer.cpp.o"
  "CMakeFiles/clock_explorer.dir/clock_explorer.cpp.o.d"
  "clock_explorer"
  "clock_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
