# Empty compiler generated dependencies file for clock_explorer.
# This may be replaced when dependencies are built.
