file(REMOVE_RECURSE
  "CMakeFiles/hummingbird_cli.dir/hummingbird_cli.cpp.o"
  "CMakeFiles/hummingbird_cli.dir/hummingbird_cli.cpp.o.d"
  "hummingbird_cli"
  "hummingbird_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hummingbird_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
