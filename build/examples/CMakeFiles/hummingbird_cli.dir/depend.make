# Empty dependencies file for hummingbird_cli.
# This may be replaced when dependencies are built.
