file(REMOVE_RECURSE
  "CMakeFiles/multirate_filter.dir/multirate_filter.cpp.o"
  "CMakeFiles/multirate_filter.dir/multirate_filter.cpp.o.d"
  "multirate_filter"
  "multirate_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirate_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
