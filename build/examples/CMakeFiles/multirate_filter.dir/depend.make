# Empty dependencies file for multirate_filter.
# This may be replaced when dependencies are built.
