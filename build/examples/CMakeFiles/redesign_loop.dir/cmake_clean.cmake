file(REMOVE_RECURSE
  "CMakeFiles/redesign_loop.dir/redesign_loop.cpp.o"
  "CMakeFiles/redesign_loop.dir/redesign_loop.cpp.o.d"
  "redesign_loop"
  "redesign_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redesign_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
