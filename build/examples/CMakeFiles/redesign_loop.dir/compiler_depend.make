# Empty compiler generated dependencies file for redesign_loop.
# This may be replaced when dependencies are built.
