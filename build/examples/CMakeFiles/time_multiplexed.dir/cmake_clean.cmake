file(REMOVE_RECURSE
  "CMakeFiles/time_multiplexed.dir/time_multiplexed.cpp.o"
  "CMakeFiles/time_multiplexed.dir/time_multiplexed.cpp.o.d"
  "time_multiplexed"
  "time_multiplexed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_multiplexed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
