# Empty compiler generated dependencies file for time_multiplexed.
# This may be replaced when dependencies are built.
