file(REMOVE_RECURSE
  "CMakeFiles/hb_baseline.dir/baseline/edge_trace.cpp.o"
  "CMakeFiles/hb_baseline.dir/baseline/edge_trace.cpp.o.d"
  "CMakeFiles/hb_baseline.dir/baseline/path_enum.cpp.o"
  "CMakeFiles/hb_baseline.dir/baseline/path_enum.cpp.o.d"
  "CMakeFiles/hb_baseline.dir/baseline/relaxation.cpp.o"
  "CMakeFiles/hb_baseline.dir/baseline/relaxation.cpp.o.d"
  "CMakeFiles/hb_baseline.dir/baseline/rigid_latch.cpp.o"
  "CMakeFiles/hb_baseline.dir/baseline/rigid_latch.cpp.o.d"
  "libhb_baseline.a"
  "libhb_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
