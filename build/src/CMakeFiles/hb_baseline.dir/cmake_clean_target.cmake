file(REMOVE_RECURSE
  "libhb_baseline.a"
)
