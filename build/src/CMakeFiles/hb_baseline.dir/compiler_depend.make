# Empty compiler generated dependencies file for hb_baseline.
# This may be replaced when dependencies are built.
