
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clocks/clock_io.cpp" "src/CMakeFiles/hb_clocks.dir/clocks/clock_io.cpp.o" "gcc" "src/CMakeFiles/hb_clocks.dir/clocks/clock_io.cpp.o.d"
  "/root/repo/src/clocks/edge_graph.cpp" "src/CMakeFiles/hb_clocks.dir/clocks/edge_graph.cpp.o" "gcc" "src/CMakeFiles/hb_clocks.dir/clocks/edge_graph.cpp.o.d"
  "/root/repo/src/clocks/waveform.cpp" "src/CMakeFiles/hb_clocks.dir/clocks/waveform.cpp.o" "gcc" "src/CMakeFiles/hb_clocks.dir/clocks/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
