file(REMOVE_RECURSE
  "CMakeFiles/hb_clocks.dir/clocks/clock_io.cpp.o"
  "CMakeFiles/hb_clocks.dir/clocks/clock_io.cpp.o.d"
  "CMakeFiles/hb_clocks.dir/clocks/edge_graph.cpp.o"
  "CMakeFiles/hb_clocks.dir/clocks/edge_graph.cpp.o.d"
  "CMakeFiles/hb_clocks.dir/clocks/waveform.cpp.o"
  "CMakeFiles/hb_clocks.dir/clocks/waveform.cpp.o.d"
  "libhb_clocks.a"
  "libhb_clocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
