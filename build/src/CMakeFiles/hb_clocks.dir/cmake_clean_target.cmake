file(REMOVE_RECURSE
  "libhb_clocks.a"
)
