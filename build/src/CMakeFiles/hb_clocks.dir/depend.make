# Empty dependencies file for hb_clocks.
# This may be replaced when dependencies are built.
