file(REMOVE_RECURSE
  "CMakeFiles/hb_constraints.dir/constraints/difference_system.cpp.o"
  "CMakeFiles/hb_constraints.dir/constraints/difference_system.cpp.o.d"
  "CMakeFiles/hb_constraints.dir/constraints/feasibility.cpp.o"
  "CMakeFiles/hb_constraints.dir/constraints/feasibility.cpp.o.d"
  "libhb_constraints.a"
  "libhb_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
