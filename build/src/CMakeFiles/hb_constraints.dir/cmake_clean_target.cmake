file(REMOVE_RECURSE
  "libhb_constraints.a"
)
