# Empty dependencies file for hb_constraints.
# This may be replaced when dependencies are built.
