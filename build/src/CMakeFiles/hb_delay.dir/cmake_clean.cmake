file(REMOVE_RECURSE
  "CMakeFiles/hb_delay.dir/delay/calculator.cpp.o"
  "CMakeFiles/hb_delay.dir/delay/calculator.cpp.o.d"
  "libhb_delay.a"
  "libhb_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
