file(REMOVE_RECURSE
  "libhb_delay.a"
)
