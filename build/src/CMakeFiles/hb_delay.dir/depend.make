# Empty dependencies file for hb_delay.
# This may be replaced when dependencies are built.
