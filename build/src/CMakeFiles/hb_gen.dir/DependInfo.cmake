
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/alu.cpp" "src/CMakeFiles/hb_gen.dir/gen/alu.cpp.o" "gcc" "src/CMakeFiles/hb_gen.dir/gen/alu.cpp.o.d"
  "/root/repo/src/gen/des.cpp" "src/CMakeFiles/hb_gen.dir/gen/des.cpp.o" "gcc" "src/CMakeFiles/hb_gen.dir/gen/des.cpp.o.d"
  "/root/repo/src/gen/fig1.cpp" "src/CMakeFiles/hb_gen.dir/gen/fig1.cpp.o" "gcc" "src/CMakeFiles/hb_gen.dir/gen/fig1.cpp.o.d"
  "/root/repo/src/gen/filter.cpp" "src/CMakeFiles/hb_gen.dir/gen/filter.cpp.o" "gcc" "src/CMakeFiles/hb_gen.dir/gen/filter.cpp.o.d"
  "/root/repo/src/gen/fsm.cpp" "src/CMakeFiles/hb_gen.dir/gen/fsm.cpp.o" "gcc" "src/CMakeFiles/hb_gen.dir/gen/fsm.cpp.o.d"
  "/root/repo/src/gen/pipeline.cpp" "src/CMakeFiles/hb_gen.dir/gen/pipeline.cpp.o" "gcc" "src/CMakeFiles/hb_gen.dir/gen/pipeline.cpp.o.d"
  "/root/repo/src/gen/random_network.cpp" "src/CMakeFiles/hb_gen.dir/gen/random_network.cpp.o" "gcc" "src/CMakeFiles/hb_gen.dir/gen/random_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hb_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hb_clocks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
