file(REMOVE_RECURSE
  "CMakeFiles/hb_gen.dir/gen/alu.cpp.o"
  "CMakeFiles/hb_gen.dir/gen/alu.cpp.o.d"
  "CMakeFiles/hb_gen.dir/gen/des.cpp.o"
  "CMakeFiles/hb_gen.dir/gen/des.cpp.o.d"
  "CMakeFiles/hb_gen.dir/gen/fig1.cpp.o"
  "CMakeFiles/hb_gen.dir/gen/fig1.cpp.o.d"
  "CMakeFiles/hb_gen.dir/gen/filter.cpp.o"
  "CMakeFiles/hb_gen.dir/gen/filter.cpp.o.d"
  "CMakeFiles/hb_gen.dir/gen/fsm.cpp.o"
  "CMakeFiles/hb_gen.dir/gen/fsm.cpp.o.d"
  "CMakeFiles/hb_gen.dir/gen/pipeline.cpp.o"
  "CMakeFiles/hb_gen.dir/gen/pipeline.cpp.o.d"
  "CMakeFiles/hb_gen.dir/gen/random_network.cpp.o"
  "CMakeFiles/hb_gen.dir/gen/random_network.cpp.o.d"
  "libhb_gen.a"
  "libhb_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
