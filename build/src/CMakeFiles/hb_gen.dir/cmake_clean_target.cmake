file(REMOVE_RECURSE
  "libhb_gen.a"
)
