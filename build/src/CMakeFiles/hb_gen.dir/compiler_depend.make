# Empty compiler generated dependencies file for hb_gen.
# This may be replaced when dependencies are built.
