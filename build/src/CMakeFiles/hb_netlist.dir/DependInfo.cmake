
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/builder.cpp" "src/CMakeFiles/hb_netlist.dir/netlist/builder.cpp.o" "gcc" "src/CMakeFiles/hb_netlist.dir/netlist/builder.cpp.o.d"
  "/root/repo/src/netlist/design.cpp" "src/CMakeFiles/hb_netlist.dir/netlist/design.cpp.o" "gcc" "src/CMakeFiles/hb_netlist.dir/netlist/design.cpp.o.d"
  "/root/repo/src/netlist/flatten.cpp" "src/CMakeFiles/hb_netlist.dir/netlist/flatten.cpp.o" "gcc" "src/CMakeFiles/hb_netlist.dir/netlist/flatten.cpp.o.d"
  "/root/repo/src/netlist/library.cpp" "src/CMakeFiles/hb_netlist.dir/netlist/library.cpp.o" "gcc" "src/CMakeFiles/hb_netlist.dir/netlist/library.cpp.o.d"
  "/root/repo/src/netlist/library_io.cpp" "src/CMakeFiles/hb_netlist.dir/netlist/library_io.cpp.o" "gcc" "src/CMakeFiles/hb_netlist.dir/netlist/library_io.cpp.o.d"
  "/root/repo/src/netlist/netlist_io.cpp" "src/CMakeFiles/hb_netlist.dir/netlist/netlist_io.cpp.o" "gcc" "src/CMakeFiles/hb_netlist.dir/netlist/netlist_io.cpp.o.d"
  "/root/repo/src/netlist/stdcells.cpp" "src/CMakeFiles/hb_netlist.dir/netlist/stdcells.cpp.o" "gcc" "src/CMakeFiles/hb_netlist.dir/netlist/stdcells.cpp.o.d"
  "/root/repo/src/netlist/validate.cpp" "src/CMakeFiles/hb_netlist.dir/netlist/validate.cpp.o" "gcc" "src/CMakeFiles/hb_netlist.dir/netlist/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
