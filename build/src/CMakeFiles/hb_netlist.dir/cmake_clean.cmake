file(REMOVE_RECURSE
  "CMakeFiles/hb_netlist.dir/netlist/builder.cpp.o"
  "CMakeFiles/hb_netlist.dir/netlist/builder.cpp.o.d"
  "CMakeFiles/hb_netlist.dir/netlist/design.cpp.o"
  "CMakeFiles/hb_netlist.dir/netlist/design.cpp.o.d"
  "CMakeFiles/hb_netlist.dir/netlist/flatten.cpp.o"
  "CMakeFiles/hb_netlist.dir/netlist/flatten.cpp.o.d"
  "CMakeFiles/hb_netlist.dir/netlist/library.cpp.o"
  "CMakeFiles/hb_netlist.dir/netlist/library.cpp.o.d"
  "CMakeFiles/hb_netlist.dir/netlist/library_io.cpp.o"
  "CMakeFiles/hb_netlist.dir/netlist/library_io.cpp.o.d"
  "CMakeFiles/hb_netlist.dir/netlist/netlist_io.cpp.o"
  "CMakeFiles/hb_netlist.dir/netlist/netlist_io.cpp.o.d"
  "CMakeFiles/hb_netlist.dir/netlist/stdcells.cpp.o"
  "CMakeFiles/hb_netlist.dir/netlist/stdcells.cpp.o.d"
  "CMakeFiles/hb_netlist.dir/netlist/validate.cpp.o"
  "CMakeFiles/hb_netlist.dir/netlist/validate.cpp.o.d"
  "libhb_netlist.a"
  "libhb_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
