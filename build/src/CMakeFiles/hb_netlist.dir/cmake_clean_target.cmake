file(REMOVE_RECURSE
  "libhb_netlist.a"
)
