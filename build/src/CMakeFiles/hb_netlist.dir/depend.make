# Empty dependencies file for hb_netlist.
# This may be replaced when dependencies are built.
