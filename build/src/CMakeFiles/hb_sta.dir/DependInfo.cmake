
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sta/algorithm1.cpp" "src/CMakeFiles/hb_sta.dir/sta/algorithm1.cpp.o" "gcc" "src/CMakeFiles/hb_sta.dir/sta/algorithm1.cpp.o.d"
  "/root/repo/src/sta/algorithm2.cpp" "src/CMakeFiles/hb_sta.dir/sta/algorithm2.cpp.o" "gcc" "src/CMakeFiles/hb_sta.dir/sta/algorithm2.cpp.o.d"
  "/root/repo/src/sta/analysis_pass.cpp" "src/CMakeFiles/hb_sta.dir/sta/analysis_pass.cpp.o" "gcc" "src/CMakeFiles/hb_sta.dir/sta/analysis_pass.cpp.o.d"
  "/root/repo/src/sta/cluster.cpp" "src/CMakeFiles/hb_sta.dir/sta/cluster.cpp.o" "gcc" "src/CMakeFiles/hb_sta.dir/sta/cluster.cpp.o.d"
  "/root/repo/src/sta/hold_check.cpp" "src/CMakeFiles/hb_sta.dir/sta/hold_check.cpp.o" "gcc" "src/CMakeFiles/hb_sta.dir/sta/hold_check.cpp.o.d"
  "/root/repo/src/sta/hummingbird.cpp" "src/CMakeFiles/hb_sta.dir/sta/hummingbird.cpp.o" "gcc" "src/CMakeFiles/hb_sta.dir/sta/hummingbird.cpp.o.d"
  "/root/repo/src/sta/report.cpp" "src/CMakeFiles/hb_sta.dir/sta/report.cpp.o" "gcc" "src/CMakeFiles/hb_sta.dir/sta/report.cpp.o.d"
  "/root/repo/src/sta/search.cpp" "src/CMakeFiles/hb_sta.dir/sta/search.cpp.o" "gcc" "src/CMakeFiles/hb_sta.dir/sta/search.cpp.o.d"
  "/root/repo/src/sta/slack_engine.cpp" "src/CMakeFiles/hb_sta.dir/sta/slack_engine.cpp.o" "gcc" "src/CMakeFiles/hb_sta.dir/sta/slack_engine.cpp.o.d"
  "/root/repo/src/sta/sync_model.cpp" "src/CMakeFiles/hb_sta.dir/sta/sync_model.cpp.o" "gcc" "src/CMakeFiles/hb_sta.dir/sta/sync_model.cpp.o.d"
  "/root/repo/src/sta/timing_graph.cpp" "src/CMakeFiles/hb_sta.dir/sta/timing_graph.cpp.o" "gcc" "src/CMakeFiles/hb_sta.dir/sta/timing_graph.cpp.o.d"
  "/root/repo/src/sta/visualize.cpp" "src/CMakeFiles/hb_sta.dir/sta/visualize.cpp.o" "gcc" "src/CMakeFiles/hb_sta.dir/sta/visualize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hb_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hb_clocks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hb_delay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
