file(REMOVE_RECURSE
  "CMakeFiles/hb_sta.dir/sta/algorithm1.cpp.o"
  "CMakeFiles/hb_sta.dir/sta/algorithm1.cpp.o.d"
  "CMakeFiles/hb_sta.dir/sta/algorithm2.cpp.o"
  "CMakeFiles/hb_sta.dir/sta/algorithm2.cpp.o.d"
  "CMakeFiles/hb_sta.dir/sta/analysis_pass.cpp.o"
  "CMakeFiles/hb_sta.dir/sta/analysis_pass.cpp.o.d"
  "CMakeFiles/hb_sta.dir/sta/cluster.cpp.o"
  "CMakeFiles/hb_sta.dir/sta/cluster.cpp.o.d"
  "CMakeFiles/hb_sta.dir/sta/hold_check.cpp.o"
  "CMakeFiles/hb_sta.dir/sta/hold_check.cpp.o.d"
  "CMakeFiles/hb_sta.dir/sta/hummingbird.cpp.o"
  "CMakeFiles/hb_sta.dir/sta/hummingbird.cpp.o.d"
  "CMakeFiles/hb_sta.dir/sta/report.cpp.o"
  "CMakeFiles/hb_sta.dir/sta/report.cpp.o.d"
  "CMakeFiles/hb_sta.dir/sta/search.cpp.o"
  "CMakeFiles/hb_sta.dir/sta/search.cpp.o.d"
  "CMakeFiles/hb_sta.dir/sta/slack_engine.cpp.o"
  "CMakeFiles/hb_sta.dir/sta/slack_engine.cpp.o.d"
  "CMakeFiles/hb_sta.dir/sta/sync_model.cpp.o"
  "CMakeFiles/hb_sta.dir/sta/sync_model.cpp.o.d"
  "CMakeFiles/hb_sta.dir/sta/timing_graph.cpp.o"
  "CMakeFiles/hb_sta.dir/sta/timing_graph.cpp.o.d"
  "CMakeFiles/hb_sta.dir/sta/visualize.cpp.o"
  "CMakeFiles/hb_sta.dir/sta/visualize.cpp.o.d"
  "libhb_sta.a"
  "libhb_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
