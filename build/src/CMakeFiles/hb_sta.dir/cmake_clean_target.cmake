file(REMOVE_RECURSE
  "libhb_sta.a"
)
