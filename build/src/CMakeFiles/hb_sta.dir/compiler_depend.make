# Empty compiler generated dependencies file for hb_sta.
# This may be replaced when dependencies are built.
