
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/redesign_loop.cpp" "src/CMakeFiles/hb_synth.dir/synth/redesign_loop.cpp.o" "gcc" "src/CMakeFiles/hb_synth.dir/synth/redesign_loop.cpp.o.d"
  "/root/repo/src/synth/resize.cpp" "src/CMakeFiles/hb_synth.dir/synth/resize.cpp.o" "gcc" "src/CMakeFiles/hb_synth.dir/synth/resize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hb_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hb_clocks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hb_delay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hb_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
