file(REMOVE_RECURSE
  "CMakeFiles/hb_synth.dir/synth/redesign_loop.cpp.o"
  "CMakeFiles/hb_synth.dir/synth/redesign_loop.cpp.o.d"
  "CMakeFiles/hb_synth.dir/synth/resize.cpp.o"
  "CMakeFiles/hb_synth.dir/synth/resize.cpp.o.d"
  "libhb_synth.a"
  "libhb_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
