file(REMOVE_RECURSE
  "libhb_synth.a"
)
