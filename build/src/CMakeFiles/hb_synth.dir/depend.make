# Empty dependencies file for hb_synth.
# This may be replaced when dependencies are built.
