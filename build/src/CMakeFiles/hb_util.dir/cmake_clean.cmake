file(REMOVE_RECURSE
  "CMakeFiles/hb_util.dir/util/error.cpp.o"
  "CMakeFiles/hb_util.dir/util/error.cpp.o.d"
  "CMakeFiles/hb_util.dir/util/rng.cpp.o"
  "CMakeFiles/hb_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/hb_util.dir/util/time.cpp.o"
  "CMakeFiles/hb_util.dir/util/time.cpp.o.d"
  "libhb_util.a"
  "libhb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
