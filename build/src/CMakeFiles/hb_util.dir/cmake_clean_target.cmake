file(REMOVE_RECURSE
  "libhb_util.a"
)
