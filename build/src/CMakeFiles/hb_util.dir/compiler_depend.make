# Empty compiler generated dependencies file for hb_util.
# This may be replaced when dependencies are built.
