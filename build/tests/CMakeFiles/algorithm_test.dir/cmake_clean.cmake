file(REMOVE_RECURSE
  "CMakeFiles/algorithm_test.dir/algorithm_test.cpp.o"
  "CMakeFiles/algorithm_test.dir/algorithm_test.cpp.o.d"
  "algorithm_test"
  "algorithm_test.pdb"
  "algorithm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
