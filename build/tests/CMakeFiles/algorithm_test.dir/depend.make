# Empty dependencies file for algorithm_test.
# This may be replaced when dependencies are built.
