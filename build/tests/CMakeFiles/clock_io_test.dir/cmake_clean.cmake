file(REMOVE_RECURSE
  "CMakeFiles/clock_io_test.dir/clock_io_test.cpp.o"
  "CMakeFiles/clock_io_test.dir/clock_io_test.cpp.o.d"
  "clock_io_test"
  "clock_io_test.pdb"
  "clock_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
