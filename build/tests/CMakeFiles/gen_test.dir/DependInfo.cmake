
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gen_test.cpp" "tests/CMakeFiles/gen_test.dir/gen_test.cpp.o" "gcc" "tests/CMakeFiles/gen_test.dir/gen_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hb_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hb_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hb_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hb_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hb_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hb_clocks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hb_delay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hb_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
