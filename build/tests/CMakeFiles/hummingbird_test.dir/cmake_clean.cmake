file(REMOVE_RECURSE
  "CMakeFiles/hummingbird_test.dir/hummingbird_test.cpp.o"
  "CMakeFiles/hummingbird_test.dir/hummingbird_test.cpp.o.d"
  "hummingbird_test"
  "hummingbird_test.pdb"
  "hummingbird_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hummingbird_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
