# Empty compiler generated dependencies file for hummingbird_test.
# This may be replaced when dependencies are built.
