file(REMOVE_RECURSE
  "CMakeFiles/multifreq_test.dir/multifreq_test.cpp.o"
  "CMakeFiles/multifreq_test.dir/multifreq_test.cpp.o.d"
  "multifreq_test"
  "multifreq_test.pdb"
  "multifreq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multifreq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
