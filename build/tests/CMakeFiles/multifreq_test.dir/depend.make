# Empty dependencies file for multifreq_test.
# This may be replaced when dependencies are built.
