file(REMOVE_RECURSE
  "CMakeFiles/scale_behavior_test.dir/scale_behavior_test.cpp.o"
  "CMakeFiles/scale_behavior_test.dir/scale_behavior_test.cpp.o.d"
  "scale_behavior_test"
  "scale_behavior_test.pdb"
  "scale_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
