file(REMOVE_RECURSE
  "CMakeFiles/settling_test.dir/settling_test.cpp.o"
  "CMakeFiles/settling_test.dir/settling_test.cpp.o.d"
  "settling_test"
  "settling_test.pdb"
  "settling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/settling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
