# Empty dependencies file for settling_test.
# This may be replaced when dependencies are built.
