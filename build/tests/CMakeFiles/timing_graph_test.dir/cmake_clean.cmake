file(REMOVE_RECURSE
  "CMakeFiles/timing_graph_test.dir/timing_graph_test.cpp.o"
  "CMakeFiles/timing_graph_test.dir/timing_graph_test.cpp.o.d"
  "timing_graph_test"
  "timing_graph_test.pdb"
  "timing_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
