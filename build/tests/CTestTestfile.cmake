# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/library_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/clocks_test[1]_include.cmake")
include("/root/repo/build/tests/delay_test[1]_include.cmake")
include("/root/repo/build/tests/sync_model_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/hold_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/hummingbird_test[1]_include.cmake")
include("/root/repo/build/tests/multifreq_test[1]_include.cmake")
include("/root/repo/build/tests/clock_io_test[1]_include.cmake")
include("/root/repo/build/tests/algorithm_test[1]_include.cmake")
include("/root/repo/build/tests/timing_graph_test[1]_include.cmake")
include("/root/repo/build/tests/settling_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/relaxation_test[1]_include.cmake")
include("/root/repo/build/tests/visualize_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/library_io_test[1]_include.cmake")
include("/root/repo/build/tests/scale_behavior_test[1]_include.cmake")
