// Hummingbird's interactive mode lets users change the shapes of the clock
// waveforms and observe the effect on system timing (paper Section 8).
// This example automates such a session: it sweeps the clock period of a
// two-phase pipeline and binary-searches the minimum workable period, for
// transparent latches and for edge-triggered ones — quantifying how much
// cycle stealing buys on an unbalanced pipeline.
//
// Run: build/examples/clock_explorer
#include <cstdio>

#include "gen/pipeline.hpp"
#include "netlist/stdcells.hpp"
#include "sta/search.hpp"

int main() {
  using namespace hb;
  auto lib = make_standard_library();

  PipelineSpec spec;
  spec.stage_depths = {60, 20, 40, 20};  // deliberately unbalanced
  spec.width = 2;

  const auto factory = [](TimePs p) { return make_two_phase_clocks(p); };
  MinPeriodOptions options;
  options.lo = ns(2);
  options.hi = ns(40);

  std::printf("%-14s %-16s %-16s\n", "latch kind", "min period", "at 12 ns: works?");
  for (const char* latch : {"TLATCH", "DFFT"}) {
    spec.latch_cell = latch;
    const Design design = make_pipeline(lib, spec);
    const TimePs p = find_min_period(design, factory, options);
    std::printf("%-14s %-16s %-16s\n", latch, format_time(p).c_str(),
                works_at_period(design, factory, ns(12)) ? "yes" : "no");
  }
  std::printf("\ntransparent latches let the unbalanced stages share the period\n"
              "(cycle stealing); edge-triggered latches need every stage to fit\n"
              "its own phase-to-phase window.\n");
  return 0;
}
