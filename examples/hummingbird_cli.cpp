// Command-line driver: the shape of the tool a downstream flow would call
// in place of the original Hummingbird.
//
// One-shot analysis (legacy form): reads a netlist file and a timing
// specification (clocks + port arrivals/requireds), runs the analysis, and
// prints the report; optionally Algorithm 2 constraints and hold checks.
//
//   hummingbird_cli <netlist> <timing-spec> [--paths N] [--constraints]
//                   [--hold <margin>]
//
// BLIF frontend (docs/FRONTEND.md): `analyze` accepts either the native
// netlist format or BLIF (detected by the .blif extension, also honoured by
// the legacy form and the service `load` verb).  For BLIF inputs the timing
// spec is optional — without one, a simple staggered clock per `.clock`
// port is synthesised over --period:
//
//   hummingbird_cli analyze <netlist-or-blif> [<timing-spec>] [--period T]
//                   [one-shot flags]
//
// Query-service frontends (docs/SERVICE.md):
//
//   hummingbird_cli serve [<netlist> <timing-spec>] [--lib F] [--tcp PORT]
//                   [--snapshot-dir D] [--replica]
//     Line-protocol request loop on stdin/stdout; with --tcp also serves
//     the same protocol on 127.0.0.1:PORT (0 = ephemeral, port printed to
//     stderr).  Exits 3 when the initial load fails.  With --snapshot-dir
//     the host persists every published snapshot into D and, on restart,
//     answers read queries from the newest valid one before any design is
//     loaded (docs/SERVICE.md "Persistence & warm restart").  --replica
//     makes the host a read-only replica over the store: `load` is
//     disabled and reads answer from the mmap'd snapshot view
//     (docs/SERVICE.md "Replica mode").
//
//   hummingbird_cli query <netlist> <timing-spec> [--lib F] [--proto2]
//                   <query>...
//     One-shot: loads the design, executes each <query> argument as one
//     protocol line and prints the replies.  --proto2 negotiates the
//     binary protocol and round-trips every query through its typed
//     frames (replies re-rendered as text).  Exits 3 when any reply is an
//     error, 0 otherwise.
//
// Run without arguments to execute a built-in demo: the tool writes a small
// two-phase latch design and its spec to ./hummingbird_demo.* and analyses
// them.  `--help` prints this usage.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "clocks/clock_io.hpp"
#include "gen/pipeline.hpp"
#include "netlist/blif_builder.hpp"
#include "netlist/blif_io.hpp"
#include "netlist/library_io.hpp"
#include "netlist/netlist_io.hpp"
#include "netlist/stdcells.hpp"
#include "scenario/corner_analysis.hpp"
#include "service/protocol.hpp"
#include "service/tcp_server.hpp"
#include "sta/hummingbird.hpp"
#include "sta/visualize.hpp"
#include "util/error.hpp"

namespace {

struct CliFlags {
  std::size_t max_paths = 10;
  bool want_constraints = false;
  bool want_hold = false;
  hb::TimePs hold_margin = 0;
  bool want_histogram = false;
  std::string dot_path;   // write a Graphviz view here when non-empty
  std::string lib_path;   // cell library file; built-in hbcells when empty
  std::string corners_path;  // corner-spec file (docs/SCENARIOS.md)
  int threads = 1;        // analysis workers; 0 = hardware concurrency
  hb::TimePs period = hb::ns(20);  // default-clock period for spec-less BLIF
};

/// Parse the shared one-shot flags starting at argv[start]; returns 0 or
/// the exit code on a usage error.
int parse_flags(int argc, char** argv, int start, CliFlags& flags) {
  for (int i = start; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paths") == 0 && i + 1 < argc) {
      flags.max_paths = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--constraints") == 0) {
      flags.want_constraints = true;
    } else if (std::strcmp(argv[i], "--hold") == 0 && i + 1 < argc) {
      flags.want_hold = true;
      flags.hold_margin = hb::parse_time(argv[++i]);
    } else if (std::strcmp(argv[i], "--histogram") == 0) {
      flags.want_histogram = true;
    } else if (std::strcmp(argv[i], "--dot") == 0 && i + 1 < argc) {
      flags.dot_path = argv[++i];
    } else if (std::strcmp(argv[i], "--lib") == 0 && i + 1 < argc) {
      flags.lib_path = argv[++i];
    } else if (std::strcmp(argv[i], "--corners") == 0 && i + 1 < argc) {
      flags.corners_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      flags.threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--period") == 0 && i + 1 < argc) {
      flags.period = hb::parse_time(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    }
  }
  return 0;
}

/// Read and parse a corner-spec file; throws hb::Error on open or parse
/// failure (first error diagnostic, with its line/column).
hb::CornerSet load_corners(const std::string& path) {
  std::ifstream cf(path);
  if (!cf) hb::raise("cannot open corner spec '" + path + "'");
  std::string text((std::istreambuf_iterator<char>(cf)),
                   std::istreambuf_iterator<char>());
  return hb::parse_corner_spec_or_throw(text);
}

int run(const std::string& netlist_path, const std::string& spec_path,
        const CliFlags& flags) {
  using namespace hb;
  std::shared_ptr<const Library> lib;
  if (flags.lib_path.empty()) {
    lib = make_standard_library();
  } else {
    std::ifstream lf(flags.lib_path);
    if (!lf) {
      std::fprintf(stderr, "cannot open library '%s'\n", flags.lib_path.c_str());
      return 2;
    }
    lib = load_library(lf);
  }

  std::ifstream nf(netlist_path);
  if (!nf) {
    std::fprintf(stderr, "cannot open netlist '%s'\n", netlist_path.c_str());
    return 2;
  }
  Design design =
      is_blif_path(netlist_path) ? load_blif(nf, lib) : load_netlist(nf, lib);

  TimingSpec spec;
  if (spec_path.empty()) {
    // Spec-less BLIF analysis: synthesise one staggered clock per `.clock`
    // port (throws when the design declares none).
    spec.clocks = default_blif_clocks(design, flags.period);
  } else {
    std::ifstream sf(spec_path);
    if (!sf) {
      std::fprintf(stderr, "cannot open timing spec '%s'\n", spec_path.c_str());
      return 2;
    }
    spec = load_timing_spec(sf);
  }

  HummingbirdOptions options;
  options.sync.input_arrivals = spec.input_arrivals;
  options.sync.output_requireds = spec.output_requireds;

  // --threads: one pool drives pass-level fan-out, level-parallel sweeps
  // and the hold check; results are identical at every thread count.
  std::unique_ptr<ThreadPool> pool;
  if (flags.threads != 1) {
    pool = std::make_unique<ThreadPool>(flags.threads);
    options.alg1.pool = pool.get();
  }

  Hummingbird analyser(design, spec.clocks, options);
  const Algorithm1Result result = analyser.analyze();

  std::printf("design %s: %zu cells, %zu nets, %zu clusters, %zu passes\n",
              design.name().c_str(), analyser.stats().cells, analyser.stats().nets,
              analyser.stats().clusters, analyser.stats().analysis_passes);
  std::printf("pre-process %.4f s, analysis %.4f s\n",
              analyser.stats().preprocess_seconds, analyser.stats().analysis_seconds);
  std::printf("%s", analyser.report(flags.max_paths).c_str());

  if (!flags.corners_path.empty()) {
    // Sign off the settled schedule under every corner in one K-lane sweep
    // (docs/SCENARIOS.md); the full path report prints for the worst corner.
    const CornerSet corners = load_corners(flags.corners_path);
    CornerAnalysis ca(analyser.engine(), corners);
    ca.compute(pool.get());
    const MergedSlack worst = ca.merged_worst_slack();
    std::printf("multi-corner analysis: %zu corner(s), worst corner %s\n",
                ca.num_corners(), corners.corner(worst.corner).name.c_str());
    const SyncModel& sync = analyser.sync_model();
    for (std::size_t k = 0; k < ca.num_corners(); ++k) {
      std::size_t violations = 0;
      for (std::size_t i = 0; i < sync.num_instances(); ++i) {
        const SyncId sid(static_cast<std::uint32_t>(i));
        if (!sync.at(sid).data_in.valid()) continue;
        const TimePs s = ca.capture_slack(k, sid);
        if (s < 0) ++violations;
      }
      const Corner& c = corners.corner(k);
      std::printf(
          "  corner %zu %-12s derate %u wire %u worst slack %s, "
          "%zu violation(s)\n",
          k, c.name.c_str(), c.derate_pm, c.wire_pm,
          format_time(ca.worst_terminal_slack(k)).c_str(), violations);
    }
    std::printf("worst-corner report (%s):\n%s",
                corners.corner(worst.corner).name.c_str(),
                ca.report(worst.corner, flags.max_paths).c_str());
  }

  if (flags.want_histogram) {
    std::printf("terminal slack histogram:\n%s",
                slack_histogram(analyser.engine()).c_str());
  }
  if (!flags.dot_path.empty()) {
    std::ofstream df(flags.dot_path);
    df << to_dot(analyser.engine());
    std::printf("wrote %s\n", flags.dot_path.c_str());
  }

  if (flags.want_constraints && !result.works_as_intended) {
    const ConstraintSet cs = analyser.generate_constraints();
    std::printf("re-synthesis constraints for violating endpoints:\n");
    const TimingGraph& graph = analyser.graph();
    for (std::uint32_t n = 0; n < graph.num_nodes(); ++n) {
      const ConstraintTimes& ct = cs.at(TNodeId(n));
      if (!ct.has_ready || !ct.has_required || ct.slack > 0) continue;
      std::printf("  %-24s ready %-10s required %-10s slack %s\n",
                  graph.node_name(TNodeId(n)).c_str(),
                  format_time(std::max(ct.ready.rise, ct.ready.fall)).c_str(),
                  format_time(std::min(ct.required.rise, ct.required.fall)).c_str(),
                  format_time(ct.slack).c_str());
    }
  }

  if (flags.want_hold) {
    const auto holds = analyser.check_hold_times(flags.hold_margin, pool.get());
    std::printf("hold check (margin %s): %zu violation(s)\n",
                format_time(flags.hold_margin).c_str(), holds.size());
    for (const HoldViolation& v : holds) {
      std::printf("  %s -> %s margin %s\n",
                  analyser.sync_model().at(v.launch).label.c_str(),
                  analyser.sync_model().at(v.capture).label.c_str(),
                  format_time(v.margin).c_str());
    }
  }
  return result.works_as_intended ? 0 : 1;
}

int demo() {
  using namespace hb;
  auto lib = make_standard_library();
  PipelineSpec pspec;
  pspec.stage_depths = {40, 12};
  pspec.width = 1;
  const Design design = make_pipeline(lib, pspec);
  {
    std::ofstream nf("hummingbird_demo.net");
    save_netlist(design, nf);
  }
  {
    std::ofstream sf("hummingbird_demo.spec");
    sf << "# two-phase non-overlapping clocks, 6 ns period\n"
          "clock phi1 period 6ns pulse 0 2.4ns\n"
          "clock phi2 period 6ns pulse 3ns 5.4ns\n"
          "input d0 arrival 0\n"
          "output q0 required 0\n";
  }
  std::printf("demo: wrote hummingbird_demo.net / hummingbird_demo.spec\n");
  CliFlags flags;
  flags.max_paths = 5;
  flags.want_constraints = true;
  flags.want_hold = true;
  flags.want_histogram = true;
  return run("hummingbird_demo.net", "hummingbird_demo.spec", flags);
}

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage:\n"
      "  hummingbird_cli <netlist> <timing-spec> [--paths N] [--constraints]\n"
      "                  [--hold <margin>] [--histogram] [--dot F] [--lib F]\n"
      "                  [--threads N] [--corners F]\n"
      "  hummingbird_cli analyze <netlist-or-blif> [<timing-spec>]\n"
      "                  [--period T] [one-shot flags]\n"
      "  hummingbird_cli serve [<netlist> <timing-spec>] [--lib F] [--tcp PORT]\n"
      "                  [--snapshot-dir D] [--replica] [--corners F]\n"
      "  hummingbird_cli query <netlist> <timing-spec> [--lib F] [--proto2]\n"
      "                  <query>...\n"
      "  hummingbird_cli --help\n"
      "\n"
      "Netlist inputs ending in .blif are parsed as BLIF (docs/FRONTEND.md);\n"
      "for those `analyze` may omit the timing spec, synthesising a clock\n"
      "per `.clock` port over --period (default 20ns).\n"
      "--corners evaluates every corner of a corner-spec file in one K-lane\n"
      "sweep (docs/SCENARIOS.md); serve --corners attaches per-corner\n"
      "sections to every snapshot and enables the `corner` verbs.\n"
      "serve --replica hosts a read-only replica over --snapshot-dir (reads\n"
      "served from the mmap'd view; `load` disabled).  query --proto2 drives\n"
      "the binary protocol v2 end to end (docs/SERVICE.md).\n"
      "With no arguments, runs a built-in demo.  serve/query speak the line\n"
      "protocol documented in docs/SERVICE.md (`help` lists the verbs).\n"
      "Exit codes: 0 ok, 1 timing violations (one-shot analysis), 2 usage,\n"
      "3 protocol error (query: any error reply; serve: initial load failed).\n");
}

int run_analyze(int argc, char** argv) {
  std::string netlist, spec;
  int i = 2;
  if (i < argc && argv[i][0] != '-') netlist = argv[i++];
  if (i < argc && argv[i][0] != '-') spec = argv[i++];
  if (netlist.empty()) {
    std::fprintf(stderr, "analyze: need <netlist-or-blif> [<timing-spec>]\n");
    return 2;
  }
  CliFlags flags;
  if (const int rc = parse_flags(argc, argv, i, flags)) return rc;
  if (spec.empty() && !hb::is_blif_path(netlist)) {
    std::fprintf(stderr,
                 "analyze: a timing spec is required for non-BLIF netlists\n");
    return 2;
  }
  return run(netlist, spec, flags);
}

int run_serve(int argc, char** argv) {
  using namespace hb;
  std::string netlist, spec, lib, snapshot_dir, corners;
  bool replica = false;
  int tcp_port = -1;  // -1 = no TCP listener
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lib") == 0 && i + 1 < argc) {
      lib = argv[++i];
    } else if (std::strcmp(argv[i], "--tcp") == 0 && i + 1 < argc) {
      tcp_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--snapshot-dir") == 0 && i + 1 < argc) {
      snapshot_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--replica") == 0) {
      replica = true;
    } else if (std::strcmp(argv[i], "--corners") == 0 && i + 1 < argc) {
      corners = argv[++i];
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "serve: unknown option '%s'\n", argv[i]);
      return 2;
    } else if (netlist.empty()) {
      netlist = argv[i];
    } else if (spec.empty()) {
      spec = argv[i];
    } else {
      std::fprintf(stderr, "serve: unexpected argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (netlist.empty() != spec.empty()) {
    std::fprintf(stderr, "serve: need both <netlist> and <timing-spec>\n");
    return 2;
  }
  if (replica && snapshot_dir.empty()) {
    std::fprintf(stderr, "serve: --replica requires --snapshot-dir\n");
    return 2;
  }
  if (replica && !netlist.empty()) {
    std::fprintf(stderr,
                 "serve: --replica is read-only and takes no netlist\n");
    return 2;
  }

  ServiceConfig config;
  config.snapshot_dir = snapshot_dir;
  config.replica = replica;
  if (!corners.empty()) config.session.corners = load_corners(corners);
  ServiceHost host(std::move(config));
  if (const auto warm = host.warm_source()) {
    std::fprintf(stderr, "warm restart: serving snapshot %llu of '%s'%s\n",
                 static_cast<unsigned long long>(warm->id()),
                 std::string(warm->design_name()).c_str(),
                 host.warm_mapped() ? " (mmap view)" : " (decoded copy)");
  }
  if (!netlist.empty()) {
    const QueryResult loaded = host.load(netlist, spec, lib);
    if (!loaded.ok) {
      std::fputs(to_wire(loaded).c_str(), stderr);
      return 3;
    }
  }
  std::unique_ptr<TcpServer> tcp;
  if (tcp_port >= 0) {
    tcp = std::make_unique<TcpServer>(host, static_cast<std::uint16_t>(tcp_port));
    std::fprintf(stderr, "listening on 127.0.0.1:%u\n", tcp->port());
  }
  serve_stream(host, std::cin, std::cout);
  return 0;
}

int run_query(int argc, char** argv) {
  using namespace hb;
  std::string netlist, spec, lib;
  bool proto2 = false;
  std::vector<std::string> queries;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lib") == 0 && i + 1 < argc) {
      lib = argv[++i];
    } else if (std::strcmp(argv[i], "--proto2") == 0) {
      proto2 = true;
    } else if (netlist.empty()) {
      netlist = argv[i];
    } else if (spec.empty()) {
      spec = argv[i];
    } else {
      queries.push_back(argv[i]);
    }
  }
  if (spec.empty() || queries.empty()) {
    std::fprintf(stderr, "query: need <netlist> <timing-spec> <query>...\n");
    return 2;
  }

  ServiceHost host;
  const QueryResult loaded = host.load(netlist, spec, lib);
  if (!loaded.ok) {
    std::fputs(to_wire(loaded).c_str(), stderr);
    return 3;
  }
  ProtocolHandler handler(host);
  bool any_error = false;
  if (proto2) {
    // Negotiate, then round-trip every query through the binary protocol:
    // typed frames for the hot read verbs, text-wrapped frames for the
    // rest, replies rendered back into proto-1 text for printing.
    const std::string ack = handler.handle_line("proto 2");
    std::fputs(ack.c_str(), stdout);
    if (ack.rfind("err ", 0) == 0) return 3;
    std::string frame, text;
    for (const std::string& qline : queries) {
      const ParsedQuery q = parse_query(qline);
      if (!q.ok && q.error.lines.empty()) continue;  // blank/comment
      frame.clear();
      // Lines of an in-flight batch must reach the text collector verbatim.
      if (!q.ok || handler.collecting() || !proto2_encode_request(q, frame)) {
        frame.clear();
        proto2_encode_text(qline, frame);
      }
      const std::string& reply =
          handler.handle_frame(std::string_view(frame).substr(4));
      text.clear();
      if (reply.size() < 4 ||
          !proto2_render_payload(std::string_view(reply).substr(4), text)) {
        std::fprintf(stderr, "query: undecodable reply frame\n");
        return 3;
      }
      if (text.rfind("err ", 0) == 0) any_error = true;
      std::fputs(text.c_str(), stdout);
      if (handler.quit()) break;
    }
    return any_error ? 3 : 0;
  }
  for (const std::string& q : queries) {
    const std::string reply = handler.handle_line(q);
    if (reply.rfind("err ", 0) == 0) any_error = true;
    std::fputs(reply.c_str(), stdout);
    if (handler.quit()) break;
  }
  if (handler.collecting()) {
    std::fprintf(stderr, "query: batch left incomplete\n");
    return 2;
  }
  return any_error ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0)) {
      print_usage(stdout);
      return 0;
    }
    if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) return run_serve(argc, argv);
    if (argc >= 2 && std::strcmp(argv[1], "query") == 0) return run_query(argc, argv);
    if (argc >= 2 && std::strcmp(argv[1], "analyze") == 0) return run_analyze(argc, argv);
    if (argc < 3) return demo();
    CliFlags flags;
    if (const int rc = parse_flags(argc, argv, 3, flags)) return rc;
    return run(argv[1], argv[2], flags);
  } catch (const hb::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
