// Interactive-style what-if analysis on a live analyser (paper Section 8:
// "Adjustments may also be made to component delays ... the system then
// reports the effect of the modifications on the behaviour of the design").
//
// A Hummingbird is built once; each what-if — resize a cell, tighten an
// input arrival — is absorbed in place via update_instance_delays /
// the sync-model change log, and only the affected cones are re-evaluated.
// The incremental statistics show how little work each question costs
// compared with the initial full analysis.
//
// Run: build/examples/incremental_whatif
#include <cstdio>

#include "gen/pipeline.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"
#include "synth/resize.hpp"

int main() {
  using namespace hb;
  auto lib = make_standard_library();

  PipelineSpec spec;
  spec.stage_depths = {24, 10, 18, 12};
  spec.width = 4;
  spec.latch_cell = "TLATCH";
  Design design = make_pipeline(lib, spec);
  const ClockSet clocks = make_two_phase_clocks(ns(9));

  Hummingbird hb(design, clocks);
  Algorithm1Result res = hb.analyze();
  std::printf("initial: worst slack %s (%s), %zu passes\n",
              format_time(res.worst_slack).c_str(),
              res.works_as_intended ? "works" : "TOO SLOW",
              hb.stats().analysis_passes);

  const auto& stats = hb.engine().incremental_stats();
  auto report = [&](const char* what) {
    res = hb.analyze();  // incremental: only invalidated cones re-evaluated
    std::printf("%-42s worst slack %8s  (passes re-propagated so far: %llu,"
                " reused: %llu)\n",
                what, format_time(res.worst_slack).c_str(),
                static_cast<unsigned long long>(stats.passes_updated),
                static_cast<unsigned long long>(stats.passes_reused));
  };

  // What if some first-stage cells ran on stronger drives?  Upsize a few
  // and watch the slack recover, one question at a time.
  int upsized = 0;
  for (std::uint32_t i = 0;
       i < design.top().insts().size() && upsized < 5; ++i) {
    const Instance& inst = design.top().inst(InstId(i));
    if (!inst.is_cell() || design.lib().cell(inst.cell).is_sequential()) continue;
    switch (upsize_and_update(design, InstId(i), hb)) {
      case ResizeUpdate::kNotResized:
        continue;
      case ResizeUpdate::kAbsorbed:
        ++upsized;
        report(("what if " + inst.name + " were stronger?").c_str());
        break;
      case ResizeUpdate::kRebuildRequired:
        // A control-path or sequential change: fall back to a fresh build.
        std::printf("change to %s needs a rebuild\n", inst.name.c_str());
        return 1;
    }
  }

  // What if input data arrived 300 ps late?  Virtual launch offsets are part
  // of the same change log, so the engine only re-traces the input cones.
  SyncModel& sync = hb.sync_model_mut();
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    const SyncInstance& si = sync.at(SyncId(i));
    if (si.is_virtual && si.data_out.valid() && !si.data_in.valid()) {
      sync.at_mut(SyncId(i)).v_offset += ps(300);
    }
  }
  report("what if all inputs arrived 300 ps late?");

  std::printf("full computes: %llu, incremental updates: %llu, "
              "nodes re-traced in total: %llu\n",
              static_cast<unsigned long long>(stats.full_computes),
              static_cast<unsigned long long>(stats.updates),
              static_cast<unsigned long long>(stats.nodes_retraced));
  return 0;
}
