// Multi-frequency analysis on a decimating filter: a fast input clock
// domain feeding a half-rate output domain.  The fast-domain registers
// expand into two generic synchronising-element instances per overall
// period (paper Section 4), and the analyser reports which clock crossing
// binds the design.
//
// Run: build/examples/multirate_filter
#include <cstdio>

#include "gen/filter.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"
#include "sta/search.hpp"

int main() {
  using namespace hb;
  auto lib = make_standard_library();

  FilterSpec spec;
  spec.width = 8;
  spec.taps = 4;
  const Design design = make_multirate_filter(lib, spec);
  std::printf("multirate filter: %zu cells, %zu nets\n", design.total_cell_count(),
              design.total_net_count());

  const TimePs fast = ns(6);
  const ClockSet clocks = make_multirate_clocks(fast);
  std::printf("fast clock %s, slow clock %s (overall period %s)\n",
              format_time(fast).c_str(), format_time(fast * 2).c_str(),
              format_time(clocks.overall_period()).c_str());

  Hummingbird analyser(design, clocks);
  const Algorithm1Result res = analyser.analyze();
  std::printf("sync element instances: %zu (fast-domain registers appear twice)\n",
              analyser.stats().sync_instances);
  std::printf("works as intended: %s, worst slack %s\n",
              res.works_as_intended ? "yes" : "no",
              format_time(res.worst_slack).c_str());
  std::printf("%s", analyser.report(3).c_str());

  // Which fast period does the filter support?
  MinPeriodOptions options;
  options.lo = ns(1);
  options.hi = ns(30);
  const TimePs min_fast = find_min_period(
      design, [](TimePs p) { return make_multirate_clocks(p); }, options);
  std::printf("minimum fast-clock period: %s\n", format_time(min_fast).c_str());
  return 0;
}
