// Quickstart: build a small two-phase transparent-latch design, run the
// Hummingbird analysis (Algorithm 1), inspect slacks and the element model,
// then generate re-synthesis constraints (Algorithm 2).
//
// Run: build/examples/quickstart
#include <cstdio>

#include "gen/pipeline.hpp"
#include "netlist/netlist_io.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"

int main() {
  using namespace hb;

  // 1. A library and a design.  Real flows load a netlist file
  //    (load_netlist); here we generate a 3-stage latch pipeline.
  auto lib = make_standard_library();
  PipelineSpec spec;
  spec.stage_depths = {30, 14, 22};
  spec.width = 2;
  spec.latch_cell = "TLATCH";
  Design design = make_pipeline(lib, spec);
  std::printf("design '%s': %zu cells, %zu nets\n", design.name().c_str(),
              design.total_cell_count(), design.total_net_count());

  // 2. Clock waveforms: two non-overlapping phases, 10 ns period.
  const ClockSet clocks = make_two_phase_clocks(ns(10));
  std::printf("overall clock period: %s\n",
              format_time(clocks.overall_period()).c_str());

  // 3. Analyse.  Construction performs the pre-processing (clusters and the
  //    Section 7 pass selection); analyze() runs Algorithm 1.
  Hummingbird hb(design, clocks);
  const Algorithm1Result result = hb.analyze();

  std::printf("pre-processing: %.4f s, analysis: %.4f s, passes: %zu\n",
              hb.stats().preprocess_seconds, hb.stats().analysis_seconds,
              hb.stats().analysis_passes);
  std::printf("works as intended: %s (worst slack %s)\n",
              result.works_as_intended ? "yes" : "no",
              format_time(result.worst_slack).c_str());
  std::printf("transfer cycles: %d forward, %d backward\n",
              result.forward_cycles, result.backward_cycles);

  // 4. The synchronising-element model (paper Fig. 2/3): per-instance
  //    offsets after slack transfer.
  const SyncModel& sync = hb.sync_model();
  int shown = 0;
  for (std::uint32_t i = 0; i < sync.num_instances() && shown < 4; ++i) {
    const SyncInstance& si = sync.at(SyncId(i));
    if (si.is_virtual || !si.transparent) continue;
    std::printf("  %-12s O_dz=%-8s O_zd=%-8s assert@ideal%+lld ps close@ideal%+lld ps\n",
                si.label.c_str(), format_time(si.odz).c_str(),
                format_time(si.ozd).c_str(),
                static_cast<long long>(si.assert_offset()),
                static_cast<long long>(si.close_offset()));
    ++shown;
  }

  // 5. Report and constraints.
  std::printf("%s", hb.report(3).c_str());
  if (!result.works_as_intended) {
    const ConstraintSet cs = hb.generate_constraints();
    std::printf("constraint snatching: %d backward + %d forward cycles\n",
                cs.backward_snatch_cycles, cs.forward_snatch_cycles);
  }
  return 0;
}
