// Algorithm 3: the analyse-redesign loop.  An ALU is synthesised "area
// optimised" (all X1 cells), given a clock it cannot meet; each iteration
// re-analyses, retraces the worst slow paths and upsizes the most critical
// cells until timing is met.
//
// Run: build/examples/redesign_loop
#include <cstdio>

#include "gen/alu.hpp"
#include "gen/des.hpp"
#include "netlist/stdcells.hpp"
#include "synth/redesign_loop.hpp"
#include "synth/resize.hpp"

int main() {
  using namespace hb;
  auto lib = make_standard_library();

  AluSpec spec;
  spec.bits = 16;
  Design design = make_alu(lib, spec);
  std::printf("ALU: %zu cells, initial area %.1f um^2\n",
              design.total_cell_count(), total_area_um2(design));

  // A clock period the initial all-X1 netlist misses by a modest margin.
  const ClockSet clocks = make_single_clock(ps(3400), ps(1400));

  RedesignOptions options;
  const RedesignResult res = run_redesign_loop(design, clocks, options);

  std::printf("initial worst slack: %s\n", format_time(res.initial_worst_slack).c_str());
  std::printf("iterations: %d, cells upsized: %d, analyser rebuilds: %d\n", res.iterations,
              res.cells_resized, res.analyser_rebuilds);
  std::printf("final worst slack: %s (%s)\n", format_time(res.final_worst_slack).c_str(),
              res.met_timing ? "timing met" : "timing NOT met");
  std::printf("area: %.1f -> %.1f um^2 (%.1f%% increase)\n", res.initial_area_um2,
              res.final_area_um2,
              100.0 * (res.final_area_um2 - res.initial_area_um2) / res.initial_area_um2);
  return res.met_timing ? 0 : 1;
}
