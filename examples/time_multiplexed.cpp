// The paper's Figure 1 scenario: a logic gate shared between two data
// streams on different clock phases is "time multiplexed within each
// overall clock period" — its output must settle to two valid states per
// cycle.  This example shows how the Section 7 pre-processing discovers
// that two analysis passes are needed and how many settling times each
// node receives.
//
// Run: build/examples/time_multiplexed
#include <cstdio>

#include "gen/fig1.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"

int main() {
  using namespace hb;
  auto lib = make_standard_library();

  Fig1Config cfg;
  const Design design = make_fig1_design(lib, cfg);
  const ClockSet clocks = make_fig1_clocks(cfg);

  Hummingbird hb(design, clocks);
  const Algorithm1Result result = hb.analyze();

  std::printf("four-phase time-multiplexed design (paper Fig. 1)\n");
  std::printf("clock period %s, phases at 0/10/20/30 ns, %s pulses\n",
              format_time(cfg.period).c_str(), format_time(cfg.pulse_width).c_str());
  std::printf("works as intended: %s, worst slack %s\n",
              result.works_as_intended ? "yes" : "no",
              format_time(result.worst_slack).c_str());
  std::printf("analysis passes over all clusters: %zu\n",
              hb.stats().analysis_passes);

  // Settling-time counts: nodes in the shared cone settle twice, the
  // per-stream cones once — the "minimum number of settling times" feature.
  const TimingGraph& graph = hb.graph();
  std::printf("\n%-22s %s\n", "node", "settling times");
  for (std::uint32_t n = 0; n < graph.num_nodes(); ++n) {
    const NodeTiming& nt = hb.engine().node_timing(TNodeId(n));
    if (!nt.has_ready) continue;
    std::printf("  %-20s %d\n", graph.node_name(TNodeId(n)).c_str(),
                nt.settling_count);
  }
  return 0;
}
