#include "baseline/edge_trace.hpp"

#include <algorithm>

namespace hb {

EdgeTraceResult per_edge_settling_counts(const SlackEngine& engine) {
  const TimingGraph& graph = engine.graph();
  const SyncModel& sync = engine.sync();
  const ClusterSet& clusters = engine.clusters();

  EdgeTraceResult out;
  out.settling_counts.assign(graph.num_nodes(), 0);

  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    const Cluster& cl = clusters.cluster(ClusterId(c));
    if (cl.source_nodes.empty()) continue;

    // Distinct launch edges (ideal assertion times) in this cluster.
    std::vector<TimePs> edges;
    for (TNodeId src : cl.source_nodes) {
      for (SyncId li : sync.launches_at(src)) {
        edges.push_back(sync.at(li).ideal_assert);
      }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    // For each launch edge, mark every node reachable from a source
    // launching on that edge: one settling evaluation per (node, edge).
    std::vector<char> reached(cl.nodes.size());
    for (TimePs edge : edges) {
      std::fill(reached.begin(), reached.end(), 0);
      std::vector<TNodeId> stack;
      for (TNodeId src : cl.source_nodes) {
        for (SyncId li : sync.launches_at(src)) {
          if (sync.at(li).ideal_assert != edge) continue;
          char& r = reached[engine.local_index(src)];
          if (!r) {
            r = 1;
            stack.push_back(src);
          }
        }
      }
      while (!stack.empty()) {
        const TNodeId n = stack.back();
        stack.pop_back();
        const NodeRole role = graph.node(n).role;
        if (role == NodeRole::kSyncDataIn || role == NodeRole::kSyncControl) {
          continue;
        }
        for (std::uint32_t ai : graph.fanout(n)) {
          char& r = reached[engine.local_index(graph.arc(ai).to)];
          if (!r) {
            r = 1;
            stack.push_back(graph.arc(ai).to);
          }
        }
      }
      for (std::uint32_t i = 0; i < cl.nodes.size(); ++i) {
        if (reached[i]) {
          ++out.settling_counts[cl.nodes[i].index()];
          ++out.total;
        }
      }
    }
  }
  return out;
}

}  // namespace hb
