// Baseline: per-edge settling-time attribution in the style of Wallace &
// Sequin's ATV and Szymanski's Leadout (paper Section 2): every voltage
// transition is attributed to a clock edge, so each node receives one
// settling time per *distinct launch edge* whose transitions reach it.
//
// The paper's Section 7 pre-processing improves on this: "with a little
// pre-processing, the number of settling times that must be calculated for
// each node may be minimised.  Even when combinational logic inputs come
// from latches controlled by two or three different clock phases, a single
// settling time is often sufficient".
//
// This module computes the per-edge counts so tests and benches can verify
// Hummingbird's pass counts are never larger (and usually smaller).
#pragma once

#include <vector>

#include "sta/slack_engine.hpp"

namespace hb {

struct EdgeTraceResult {
  /// Per timing-graph node: number of distinct launch edges reaching it —
  /// the settling times a per-edge-attribution analyser evaluates.
  std::vector<int> settling_counts;
  /// Total settling evaluations over all nodes.
  std::size_t total = 0;
};

EdgeTraceResult per_edge_settling_counts(const SlackEngine& engine);

}  // namespace hb
