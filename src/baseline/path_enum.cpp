#include "baseline/path_enum.hpp"

namespace hb {
namespace {

struct Enumerator {
  const SlackEngine& engine;
  const TimingGraph& graph;
  const SyncModel& sync;
  PathEnumResult& out;
  std::size_t max_paths;

  ClusterId cluster;
  std::size_t pass = 0;
  const std::vector<bool>* assigned = nullptr;  // capture mask for this pass

  /// DFS from `node` carrying the accumulated (rise, fall) delay pair.
  /// `launch_pos` is the linearised actual assertion of the launch instance
  /// under consideration.
  void dfs(TNodeId node, RiseFall delay, SyncId launch, TimePs launch_pos) {
    const NodeRole role = graph.node(node).role;
    const bool is_endpoint =
        role == NodeRole::kSyncDataIn || role == NodeRole::kSyncControl ||
        role == NodeRole::kPortOut;
    if (is_endpoint || !sync.captures_at(node).empty()) {
      finish(node, delay, launch, launch_pos);
      if (is_endpoint) return;
    }
    for (std::uint32_t ai : graph.fanout(node)) {
      if (out.paths_enumerated >= max_paths) {
        out.truncated = true;
        return;
      }
      const TArcRec& arc = graph.arc(ai);
      dfs(arc.to, propagate_forward(delay, arc, arc.delay), launch, launch_pos);
    }
  }

  void finish(TNodeId node, RiseFall delay, SyncId launch, TimePs launch_pos) {
    ++out.paths_enumerated;
    const ClockEdgeGraph& edges = engine.edge_graph(cluster);
    const std::size_t brk = engine.breaks(cluster)[pass];
    // Against every capture instance assigned to this pass at this node.
    for (SyncId cj : sync.captures_at(node)) {
      if (engine.assigned_pass(cj) != pass) continue;
      const SyncInstance& cap = sync.at(cj);
      if (cap.data_in != node) continue;
      const TimePs close =
          edges.linear_close(cap.ideal_close, brk) + cap.close_offset();
      const TimePs slack = close - (launch_pos + delay.max());
      out.capture_slack[cj.index()] = std::min(out.capture_slack[cj.index()], slack);
      out.launch_slack[launch.index()] =
          std::min(out.launch_slack[launch.index()], slack);
    }
  }
};

}  // namespace

PathEnumResult enumerate_path_slacks(const SlackEngine& engine,
                                     std::size_t max_paths) {
  const SyncModel& sync = engine.sync();
  const ClusterSet& clusters = engine.clusters();

  PathEnumResult out;
  out.launch_slack.assign(sync.num_instances(), kInfinitePs);
  out.capture_slack.assign(sync.num_instances(), kInfinitePs);

  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    const Cluster& cl = clusters.cluster(ClusterId(c));
    const std::size_t npasses = engine.num_passes(ClusterId(c));
    if (cl.source_nodes.empty() || npasses == 0) continue;
    for (std::size_t p = 0; p < npasses; ++p) {
      Enumerator en{engine, engine.graph(), sync, out, max_paths,
                    ClusterId(c),  p,           nullptr};
      const ClockEdgeGraph& edges = engine.edge_graph(ClusterId(c));
      const std::size_t brk = engine.breaks(ClusterId(c))[p];
      for (TNodeId src : cl.source_nodes) {
        for (SyncId li : sync.launches_at(src)) {
          const SyncInstance& si = sync.at(li);
          const TimePs a =
              edges.linear_assert(si.ideal_assert, brk) + si.assert_offset();
          en.dfs(src, RiseFall{0, 0}, li, a);
        }
      }
    }
  }
  return out;
}

}  // namespace hb
