// Baseline: exact path-enumeration slack computation — the method the paper
// rejects for speed ("Such a path enumeration procedure is computationally
// expensive.  Hitchcock introduced the much faster block method").
//
// It reuses the engine's pass structure (same break nodes, same capture
// assignment) but computes each terminal slack as an explicit minimum over
// every enumerated source-to-sink path instead of by block propagation.
// On networks without false paths the two agree exactly, which the property
// tests assert; the ablation bench contrasts their run times.
#pragma once

#include "sta/slack_engine.hpp"

namespace hb {

struct PathEnumResult {
  /// Terminal slacks by SyncId; kInfinitePs when unconstrained.
  std::vector<TimePs> launch_slack;
  std::vector<TimePs> capture_slack;
  std::size_t paths_enumerated = 0;
  bool truncated = false;  // hit max_paths; slacks may be optimistic
};

/// Enumerate all paths (up to `max_paths`) with the engine's current
/// offsets.
PathEnumResult enumerate_path_slacks(const SlackEngine& engine,
                                     std::size_t max_paths = 1u << 22);

}  // namespace hb
