#include "baseline/relaxation.hpp"

#include <algorithm>
#include <map>

namespace hb {
namespace {

// A transition class in the periodic steady state is characterised by the
// *release phase* rho (the time within the overall period at which the
// value was last released by a synchronising element or primary input) and
// the *lag* L (how long after its release the transition settles; lags
// accumulate through combinational logic and reset when a latch is passed).
// Deadline rule: an event must settle before the first capture closure
// strictly after its release — lag <= window(rho, closure) - setup — which
// is exactly the cyclic pairing the analyser uses, but with the reference
// advancing through open latches (the "run the clocks" behaviour).
using EventMap = std::map<TimePs, TimePs>;  // release phase -> max lag

}  // namespace

RelaxationResult relaxation_analysis(const SlackEngine& engine,
                                     RelaxationOptions options) {
  const TimingGraph& graph = engine.graph();
  const SyncModel& sync = engine.sync();
  const TimePs T = sync.overall_period();

  RelaxationResult out;
  out.settling_counts.assign(graph.num_nodes(), 0);
  std::vector<EventMap> events(graph.num_nodes());

  auto merge = [&](TNodeId node, TimePs phase, TimePs lag) {
    auto [it, fresh] = events[node.index()].emplace(phase, lag);
    if (fresh || it->second < lag) {
      it->second = lag;
      return true;
    }
    return false;
  };

  // Seeds: every launch terminal releases a transition when its control
  // opens (old data waiting in the element), settling D_cz later; primary
  // inputs release at their arrival times.  Data that *waits* at a closed
  // latch re-emerges exactly as this seeded class, so waiting needs no
  // explicit handling below.
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    const SyncInstance& si = sync.at(SyncId(i));
    if (!si.data_out.valid()) continue;
    if (si.is_virtual) {
      merge(si.data_out, mod_period(si.ideal_assert, T), std::max<TimePs>(0, si.v_offset));
    } else {
      merge(si.data_out, mod_period(si.ideal_assert, T), si.oac + si.dcz);
    }
  }

  bool changed = true;
  while (changed && out.rounds < options.max_rounds) {
    changed = false;
    ++out.rounds;

    // Combinational propagation: lags grow, phases are preserved.
    for (TNodeId n : graph.topo_order()) {
      const NodeRole role = graph.node(n).role;
      if (role == NodeRole::kSyncDataIn || role == NodeRole::kSyncControl) {
        continue;
      }
      for (std::uint32_t ai : graph.fanout(n)) {
        const TArcRec& arc = graph.arc(ai);
        for (const auto& [phase, lag] : events[n.index()]) {
          changed |= merge(arc.to, phase, lag + arc.delay.max());
        }
      }
    }

    // Transparent flow-through: an event whose settle instant falls inside
    // an instance's open window passes to the output, re-released at its
    // arrival (+ D_dz), with lag zero.
    for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
      const SyncInstance& si = sync.at(SyncId(i));
      if (si.is_virtual || !si.transparent) continue;
      if (!si.data_in.valid() || !si.data_out.valid()) continue;
      const TimePs open_phase = mod_period(si.ideal_assert + si.oac, T);
      const TimePs open_width = si.width - si.oac;
      if (open_width <= 0) continue;
      for (const auto& [phase, lag] : events[si.data_in.index()]) {
        const TimePs arrive_phase = mod_period(phase + lag, T);
        const TimePs into_pulse = mod_period(arrive_phase - open_phase, T);
        if (into_pulse < open_width) {
          changed |= merge(si.data_out,
                           mod_period(arrive_phase + si.ddz, T), 0);
        }
      }
    }
  }
  out.converged = !changed;

  // Setup checks at every capture terminal.
  std::vector<char> reported(graph.num_nodes(), 0);
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    const SyncInstance& si = sync.at(SyncId(i));
    if (!si.data_in.valid()) continue;
    const TimePs setup = si.is_virtual ? -si.v_offset : si.setup;
    for (const auto& [phase, lag] : events[si.data_in.index()]) {
      TimePs window = mod_period(si.ideal_close - phase, T);
      if (window == 0) window = T;
      if (lag > window - setup && !reported[si.data_in.index()]) {
        reported[si.data_in.index()] = 1;
        out.violations.push_back({si.data_in, lag, window - setup});
      }
    }
  }

  for (std::uint32_t n = 0; n < graph.num_nodes(); ++n) {
    out.settling_counts[n] = static_cast<int>(events[n].size());
  }
  out.works = out.converged && out.violations.empty();
  return out;
}

}  // namespace hb
