// Baseline: forward-tracing relaxation analysis in the style of Wallace &
// Sequin's ATV [8] and Szymanski's Leadout [9] (paper Section 2): "all
// voltage transitions ... result from transitions at primary inputs.  The
// times of internal transitions are found by tracing forward.  Relaxation
// results when a network contains directed cycles.  Transparent latches can
// be correctly handled ... [8] attributes each transition to a clock edge.
// A number of settling times are thus computed for each node."
//
// Transitions are *events* (origin clock edge, settle time).  Combinational
// arcs delay events; a transparent latch passes an event through while
// open, re-times an early event to its opening edge (re-attributing it to
// that edge), and reports a setup violation when the event lands after the
// input closure; an edge-triggered latch re-times every event to its
// trigger edge.  Events wrap around the overall period until a fixpoint —
// no event changes any node's settle time — or a bounded number of rounds,
// whose exhaustion on still-growing times is itself a violation (a loop
// slower than the period).
//
// This is a *different decision procedure* from Hummingbird's: it evaluates
// the "run the clocks" behaviour rather than the paper's ideal-control
// intended behaviour, so verdicts are only directly comparable where the
// two semantics coincide (edge-triggered designs; see relaxation_test).
// Its per-node event counts are the settling-time cost the paper's
// Section 7 minimisation is measured against.
#pragma once

#include <vector>

#include "sta/slack_engine.hpp"

namespace hb {

struct RelaxationViolation {
  TNodeId node;      // latch data input whose setup was missed
  TimePs arrival;    // offending settle time (within the overall period)
  TimePs deadline;   // input closure minus setup
};

struct RelaxationResult {
  bool works = false;
  bool converged = false;  // false: still relaxing at the round limit
  int rounds = 0;          // relaxation sweeps executed
  std::vector<RelaxationViolation> violations;
  /// Per timing-graph node: number of distinct transition classes (origin
  /// edges) observed — the settling times this method evaluates.
  std::vector<int> settling_counts;
};

struct RelaxationOptions {
  int max_rounds = 64;
};

/// Analyse with the current engine structure (clocks, delays); independent
/// of the synchronising-element offsets.
RelaxationResult relaxation_analysis(const SlackEngine& engine,
                                     RelaxationOptions options = {});

}  // namespace hb
