#include "baseline/rigid_latch.hpp"

namespace hb {

RigidResult rigid_latch_analysis(SyncModel& sync, SlackEngine& engine) {
  sync.reset_offsets();  // end-of-pulse == the rigid trailing-edge view
  engine.compute();
  RigidResult res;
  res.worst_slack = engine.worst_terminal_slack();
  res.works_as_intended = res.worst_slack > 0;
  return res;
}

}  // namespace hb
