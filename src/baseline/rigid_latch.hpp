// Baseline: rigid-latch analysis in the style of McWilliams [5], which
// "can handle complicated clocking schemes, but ... can not model the
// behaviour of transparent latches".
//
// Every transparent latch is frozen at its end-of-pulse state: the input
// closes at the trailing control edge and the output asserts there too, as
// if the element were trailing-edge triggered.  No slack transfer is
// performed.  Comparing the minimum workable clock period under this model
// against Algorithm 1's quantifies what latch-awareness (cycle stealing)
// buys — ablation bench B.
#pragma once

#include "sta/slack_engine.hpp"

namespace hb {

struct RigidResult {
  bool works_as_intended = false;
  TimePs worst_slack = 0;
};

/// One-shot analysis with frozen end-of-pulse offsets.  Mutates the offsets
/// in `sync` (call sync.reset_offsets() to reuse afterwards — reset state
/// and rigid state coincide, so this is only for clarity).
RigidResult rigid_latch_analysis(SyncModel& sync, SlackEngine& engine);

}  // namespace hb
