#include "clocks/clock_io.hpp"

#include <cctype>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace hb {
namespace {

[[noreturn]] void spec_error(int lineno, const std::string& msg) {
  raise("timing spec error at line " + std::to_string(lineno) + ": " + msg);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) {
    if (t[0] == '#') break;
    toks.push_back(t);
  }
  return toks;
}

}  // namespace

TimePs parse_time(const std::string& text) {
  if (text.empty()) raise("empty time value");
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    raise("bad time value '" + text + "'");
  }
  const std::string unit = text.substr(pos);
  double scale = 1.0;
  if (unit.empty() || unit == "ps") {
    scale = 1.0;
  } else if (unit == "ns") {
    scale = 1e3;
  } else if (unit == "us") {
    scale = 1e6;
  } else {
    raise("bad time unit '" + unit + "' in '" + text + "'");
  }
  return static_cast<TimePs>(std::llround(value * scale));
}

TimingSpec load_timing_spec(std::istream& is) {
  TimingSpec spec;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    if (toks[0] == "clock") {
      // clock <name> period <t> pulse <r> <f> [pulse <r> <f>]...
      if (toks.size() < 7 || toks[2] != "period") {
        spec_error(lineno, "expected `clock <name> period <t> pulse <r> <f> ...`");
      }
      const TimePs period = parse_time(toks[3]);
      std::vector<ClockPulse> pulses;
      std::size_t i = 4;
      while (i < toks.size()) {
        if (toks[i] != "pulse" || i + 2 >= toks.size()) {
          spec_error(lineno, "expected `pulse <rise> <fall>`");
        }
        pulses.push_back({parse_time(toks[i + 1]), parse_time(toks[i + 2])});
        i += 3;
      }
      try {
        spec.clocks.add_clock(toks[1], period, std::move(pulses));
      } catch (const Error& e) {
        spec_error(lineno, e.what());
      }
    } else if (toks[0] == "input" || toks[0] == "output") {
      const bool is_input = toks[0] == "input";
      const char* kw = is_input ? "arrival" : "required";
      if (toks.size() < 4 || toks[2] != kw) {
        spec_error(lineno, std::string("expected `") + toks[0] + " <port> " + kw +
                               " <time> [offset <time>]`");
      }
      PortTimingSpec p;
      p.port = toks[1];
      p.time = parse_time(toks[3]);
      if (toks.size() == 6 && toks[4] == "offset") {
        p.offset = parse_time(toks[5]);
      } else if (toks.size() != 4) {
        spec_error(lineno, "expected `[offset <time>]`");
      }
      (is_input ? spec.input_arrivals : spec.output_requireds).push_back(std::move(p));
    } else {
      spec_error(lineno, "unknown keyword '" + toks[0] + "'");
    }
  }
  return spec;
}

TimingSpec timing_spec_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_timing_spec(is);
}

std::string timing_spec_to_string(const TimingSpec& spec) {
  std::ostringstream os;
  for (std::uint32_t c = 0; c < spec.clocks.num_clocks(); ++c) {
    const Clock& clk = spec.clocks.clock(ClockId(c));
    os << "clock " << clk.name << " period " << clk.period;
    for (const ClockPulse& p : clk.pulses) {
      os << " pulse " << p.rise << " " << p.fall;
    }
    os << "\n";
  }
  for (const PortTimingSpec& p : spec.input_arrivals) {
    os << "input " << p.port << " arrival " << p.time << " offset " << p.offset
       << "\n";
  }
  for (const PortTimingSpec& p : spec.output_requireds) {
    os << "output " << p.port << " required " << p.time << " offset " << p.offset
       << "\n";
  }
  return os.str();
}

}  // namespace hb
