#include "clocks/clock_io.hpp"

#include <cmath>
#include <sstream>

#include "util/diagnostics.hpp"
#include "util/error.hpp"

namespace hb {
namespace {

/// Statement-level parse failure; caught by the line loop, which records the
/// diagnostic and resynchronises at the next statement.
struct ParseAbort {
  Diagnostic diag;
};

[[noreturn]] void fail(DiagCode code, int line, int col, std::string msg,
                       std::string hint = {}) {
  throw ParseAbort{
      Diagnostic{code, Severity::kError, SourceLoc{line, col}, std::move(msg),
                 std::move(hint)}};
}

/// parse_time with a source location on failure.
TimePs parse_time_at(const Token& t, int lineno) {
  try {
    return parse_time(t.text);
  } catch (const Error& e) {
    fail(DiagCode::kParseBadNumber, lineno, t.col, e.what(),
         "times are `<value>[ps|ns|us]`");
  }
}

void statement(TimingSpec& spec, const std::vector<Token>& toks, int lineno) {
  const std::string& kw = toks[0].text;
  const int at = toks[0].col;

  if (kw == "clock") {
    // clock <name> period <t> pulse <r> <f> [pulse <r> <f>]...
    if (toks.size() < 7 || toks[2].text != "period") {
      fail(DiagCode::kParseSyntax, lineno, at,
           "expected `clock <name> period <t> pulse <r> <f> ...`");
    }
    const TimePs period = parse_time_at(toks[3], lineno);
    std::vector<ClockPulse> pulses;
    std::size_t i = 4;
    while (i < toks.size()) {
      if (toks[i].text != "pulse" || i + 2 >= toks.size()) {
        fail(DiagCode::kParseSyntax, lineno, toks[i].col,
             "expected `pulse <rise> <fall>`");
      }
      pulses.push_back(
          {parse_time_at(toks[i + 1], lineno), parse_time_at(toks[i + 2], lineno)});
      i += 3;
    }
    try {
      spec.clocks.add_clock(toks[1].text, period, std::move(pulses));
    } catch (const Error& e) {
      fail(DiagCode::kParseStructure, lineno, toks[1].col, e.what());
    }
  } else if (kw == "input" || kw == "output") {
    const bool is_input = kw == "input";
    const char* expect = is_input ? "arrival" : "required";
    if (toks.size() < 4 || toks[2].text != expect) {
      fail(DiagCode::kParseSyntax, lineno, at,
           "expected `" + kw + " <port> " + expect + " <time> [offset <time>]`");
    }
    PortTimingSpec p;
    p.port = toks[1].text;
    p.time = parse_time_at(toks[3], lineno);
    if (toks.size() == 6 && toks[4].text == "offset") {
      p.offset = parse_time_at(toks[5], lineno);
    } else if (toks.size() != 4) {
      fail(DiagCode::kParseSyntax, lineno, toks[4].col,
           "expected `[offset <time>]`");
    }
    (is_input ? spec.input_arrivals : spec.output_requireds).push_back(std::move(p));
  } else {
    fail(DiagCode::kParseUnknownKeyword, lineno, at,
         "unknown keyword '" + kw + "'",
         "timing specs contain clock/input/output statements");
  }
}

}  // namespace

TimePs parse_time(const std::string& text) {
  if (text.empty()) raise("empty time value");
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    raise("bad time value '" + text + "'");
  }
  const std::string unit = text.substr(pos);
  double scale = 1.0;
  if (unit.empty() || unit == "ps") {
    scale = 1.0;
  } else if (unit == "ns") {
    scale = 1e3;
  } else if (unit == "us") {
    scale = 1e6;
  } else {
    raise("bad time unit '" + unit + "' in '" + text + "'");
  }
  return static_cast<TimePs>(std::llround(value * scale));
}

TimingSpec load_timing_spec(std::istream& is, DiagnosticSink& sink) {
  TimingSpec spec;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto toks = split_tokens(line);
    if (toks.empty()) continue;
    try {
      statement(spec, toks, lineno);
    } catch (const ParseAbort& abort) {
      sink.add(abort.diag);
    }
  }
  return spec;
}

TimingSpec load_timing_spec(std::istream& is) {
  DiagnosticSink sink;
  TimingSpec spec = load_timing_spec(is, sink);
  if (sink.has_errors()) raise_first_error("timing spec error", sink);
  return spec;
}

TimingSpec timing_spec_from_string(const std::string& text,
                                   DiagnosticSink& sink) {
  std::istringstream is(text);
  return load_timing_spec(is, sink);
}

TimingSpec timing_spec_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_timing_spec(is);
}

std::string timing_spec_to_string(const TimingSpec& spec) {
  std::ostringstream os;
  for (std::uint32_t c = 0; c < spec.clocks.num_clocks(); ++c) {
    const Clock& clk = spec.clocks.clock(ClockId(c));
    os << "clock " << clk.name << " period " << clk.period;
    for (const ClockPulse& p : clk.pulses) {
      os << " pulse " << p.rise << " " << p.fall;
    }
    os << "\n";
  }
  for (const PortTimingSpec& p : spec.input_arrivals) {
    os << "input " << p.port << " arrival " << p.time << " offset " << p.offset
       << "\n";
  }
  for (const PortTimingSpec& p : spec.output_requireds) {
    os << "output " << p.port << " required " << p.time << " offset " << p.offset
       << "\n";
  }
  return os.str();
}

}  // namespace hb
