// Textual clock / port-timing specification — the command-file side of the
// OCT-replacement interface.  Format (line oriented, '#' comments):
//
//   clock <name> period <time> pulse <rise> <fall> [pulse <rise> <fall> ...]
//   input <port> arrival <time> [offset <time>]
//   output <port> required <time> [offset <time>]
//
// Times accept ps/ns/us suffixes and decimal values ("2.5ns"); bare numbers
// are picoseconds.
#pragma once

#include <iosfwd>
#include <string>

#include "clocks/waveform.hpp"

namespace hb {

class DiagnosticSink;

/// Arrival / required specification for a top-level data port.
struct PortTimingSpec {
  std::string port;   // top-level port name
  TimePs time = 0;    // ideal event time within the overall period, [0, T)
  TimePs offset = 0;  // offset from the ideal event (e.g. -setup at outputs)
};

struct TimingSpec {
  ClockSet clocks;
  std::vector<PortTimingSpec> input_arrivals;
  std::vector<PortTimingSpec> output_requireds;
};

/// Parse "250", "250ps", "3ns", "2.5ns", "1us"; throws hb::Error otherwise.
TimePs parse_time(const std::string& text);

/// Fail-fast parse: throws hb::Error (with line/col) on the first problem.
TimingSpec load_timing_spec(std::istream& is);
TimingSpec timing_spec_from_string(const std::string& text);

/// Recovering parse: problems are recorded in `sink` (with line/col, also
/// for bad time literals) and parsing continues at the next statement.
TimingSpec load_timing_spec(std::istream& is, DiagnosticSink& sink);
TimingSpec timing_spec_from_string(const std::string& text,
                                   DiagnosticSink& sink);

/// Serialise (round-trips through load_timing_spec).
std::string timing_spec_to_string(const TimingSpec& spec);

}  // namespace hb
