#include "clocks/edge_graph.hpp"

#include <algorithm>
#include <functional>

#include "util/error.hpp"

namespace hb {

ClockEdgeGraph::ClockEdgeGraph(std::vector<TimePs> edge_times, TimePs overall_period)
    : period_(overall_period), times_(std::move(edge_times)) {
  if (period_ <= 0) raise("clock edge graph needs a positive overall period");
  std::sort(times_.begin(), times_.end());
  times_.erase(std::unique(times_.begin(), times_.end()), times_.end());
  if (times_.empty()) raise("clock edge graph needs at least one edge");
  for (TimePs t : times_) {
    if (t < 0 || t >= period_) raise("clock edge time outside the overall period");
  }
}

ClockEdgeGraph ClockEdgeGraph::from_clocks(const ClockSet& clocks) {
  std::vector<TimePs> times;
  for (const ClockEdge& e : clocks.edges_in_overall_period()) {
    times.push_back(e.time);
  }
  return ClockEdgeGraph(std::move(times), clocks.overall_period());
}

std::size_t ClockEdgeGraph::node_at(TimePs t) const {
  auto it = std::lower_bound(times_.begin(), times_.end(), t);
  if (it == times_.end() || *it != t) {
    raise("no clock edge at time " + format_time(t));
  }
  return static_cast<std::size_t>(it - times_.begin());
}

void ClockEdgeGraph::add_requirement(TimePs assertion, TimePs closure) {
  const std::pair<std::size_t, std::size_t> req{node_at(assertion), node_at(closure)};
  if (std::find(requirements_.begin(), requirements_.end(), req) ==
      requirements_.end()) {
    requirements_.push_back(req);
  }
}

bool ClockEdgeGraph::in_segment(std::size_t c, std::size_t a, std::size_t v) const {
  // Is v in the cyclic segment [c .. a] walked forward from c?
  if (a == c) return v == a;
  if (c <= a) return v >= c && v <= a;
  return v >= c || v <= a;  // segment wraps past the period boundary
}

std::vector<std::size_t> ClockEdgeGraph::allowed_breaks(TimePs assertion,
                                                        TimePs closure) const {
  const std::size_t a = node_at(assertion);
  const std::size_t c = node_at(closure);
  std::vector<std::size_t> out;
  for (std::size_t v = 0; v < times_.size(); ++v) {
    if (in_segment(c, a, v)) out.push_back(v);
  }
  return out;
}

bool ClockEdgeGraph::requirement_hit(const std::pair<std::size_t, std::size_t>& req,
                                     const std::vector<std::size_t>& breaks) const {
  for (std::size_t v : breaks) {
    if (in_segment(req.second, req.first, v)) return true;
  }
  return false;
}

std::vector<std::size_t> ClockEdgeGraph::solve_min_breaks() const {
  const std::size_t n = times_.size();
  if (requirements_.empty()) return {0};

  auto all_hit = [&](const std::vector<std::size_t>& breaks) {
    return std::all_of(requirements_.begin(), requirements_.end(),
                       [&](const auto& r) { return requirement_hit(r, breaks); });
  };

  // Exhaustive search in increasing size, as in the paper.  Lexicographic
  // combination enumeration makes the result deterministic.
  const std::size_t kExhaustiveLimit = 4;
  std::vector<std::size_t> combo;
  // Recursive lambda over combinations of size k starting at `start`.
  std::function<bool(std::size_t, std::size_t)> search =
      [&](std::size_t start, std::size_t remaining) -> bool {
    if (remaining == 0) return all_hit(combo);
    for (std::size_t v = start; v + remaining <= n; ++v) {
      combo.push_back(v);
      if (search(v + 1, remaining - 1)) return true;
      combo.pop_back();
    }
    return false;
  };
  for (std::size_t k = 1; k <= std::min(n, kExhaustiveLimit); ++k) {
    combo.clear();
    if (search(0, k)) return combo;
  }

  // Greedy fallback: repeatedly pick the break covering the most unmet
  // requirements.  Always terminates because every requirement's segment is
  // non-empty.
  std::vector<std::size_t> breaks;
  std::vector<bool> met(requirements_.size(), false);
  std::size_t unmet = requirements_.size();
  while (unmet > 0) {
    std::size_t best = 0, best_cover = 0;
    for (std::size_t v = 0; v < n; ++v) {
      std::size_t cover = 0;
      for (std::size_t r = 0; r < requirements_.size(); ++r) {
        if (!met[r] && in_segment(requirements_[r].second, requirements_[r].first, v)) {
          ++cover;
        }
      }
      if (cover > best_cover) {
        best_cover = cover;
        best = v;
      }
    }
    HB_ASSERT(best_cover > 0);
    breaks.push_back(best);
    for (std::size_t r = 0; r < requirements_.size(); ++r) {
      if (!met[r] && in_segment(requirements_[r].second, requirements_[r].first, best)) {
        met[r] = true;
        --unmet;
      }
    }
  }
  std::sort(breaks.begin(), breaks.end());
  return breaks;
}

TimePs ClockEdgeGraph::linear_assert(TimePs t, std::size_t break_node) const {
  return mod_period(t - times_.at(break_node), period_);
}

TimePs ClockEdgeGraph::linear_close(TimePs t, std::size_t break_node) const {
  return mod_period(t - times_.at(break_node) - 1, period_) + 1;
}

}  // namespace hb
