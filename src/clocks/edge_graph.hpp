// Section 7 of the paper: deciding where to "break open" the clock period.
//
// A directed graph represents the cyclic sequence of clock edges within one
// overall period.  Each way of breaking open the period corresponds to
// removing one original arc — equivalently, to choosing the *break node* v
// the linear order starts at.  Every cluster input/output combination with a
// switching path adds a requirement: the input's ideal assertion edge `a`
// must appear strictly before the output's ideal closure edge `c` in the
// linear order.
//
// With the linearisation used here (assertion times map to [0, T), closure
// times to (0, T], so a closure coinciding with the break maps to T), a
// break at node v satisfies requirement (a, c) exactly when v lies in the
// cyclic segment [c .. a] walked forward from c (for a == c, only v == a —
// this is the flip-flop-to-flip-flop "exactly one period" case).
//
// Correctness of per-output pass assignment (used by the slack engine, and
// verified by property tests): for a requirement (a, c), every satisfying
// break places c at linear position >= T - dist(c, a), and every violating
// break places it strictly lower.  Hence if the chosen break set hits every
// requirement, the break that places c *closest to the end* satisfies all
// of c's requirements simultaneously — one analysis pass per break node
// suffices, and each output's slack is read from its assigned pass.
//
// The minimum break set is a minimum hitting set over the per-requirement
// allowed segments, found — as in the paper — "by exhaustive search of the
// graph, starting with ... each single original arc, then ... all possible
// pairs, and so on".  We search exhaustively up to size 4 (the paper: "very
// seldom is it necessary to remove more than two arcs") and fall back to a
// greedy cover beyond that, which preserves correctness but not minimality.
#pragma once

#include <cstddef>
#include <vector>

#include "clocks/waveform.hpp"
#include "util/time.hpp"

namespace hb {

class ClockEdgeGraph {
 public:
  /// Build from explicit edge times (deduplicated, sorted internally).
  /// All times must lie in [0, overall_period).
  ClockEdgeGraph(std::vector<TimePs> edge_times, TimePs overall_period);

  /// Build from all edges of a clock set.
  static ClockEdgeGraph from_clocks(const ClockSet& clocks);

  TimePs overall_period() const { return period_; }
  std::size_t num_nodes() const { return times_.size(); }
  TimePs node_time(std::size_t n) const { return times_.at(n); }
  /// Node whose time equals t (exact); throws if absent.
  std::size_t node_at(TimePs t) const;

  /// Record that assertion edge `a` must precede closure edge `c`.
  /// Duplicate pairs are ignored.  Both must be existing edge times.
  void add_requirement(TimePs assertion, TimePs closure);
  std::size_t num_requirements() const { return requirements_.size(); }

  /// Break nodes that satisfy a single requirement: the cyclic segment
  /// [c .. a] inclusive (just {a} when a == c).
  std::vector<std::size_t> allowed_breaks(TimePs assertion, TimePs closure) const;

  /// Minimum-cardinality set of break nodes hitting all requirements.
  /// With no requirements, returns a single arbitrary break (one pass is
  /// always needed).  Deterministic: the lexicographically first minimal
  /// set in node order.
  std::vector<std::size_t> solve_min_breaks() const;

  /// Linearised coordinate of an assertion time relative to break node b:
  /// in [0, T).
  TimePs linear_assert(TimePs t, std::size_t break_node) const;
  /// Linearised coordinate of a closure time relative to break node b:
  /// in (0, T] (the break instant itself maps to T — "one full period").
  TimePs linear_close(TimePs t, std::size_t break_node) const;

 private:
  bool requirement_hit(const std::pair<std::size_t, std::size_t>& req,
                       const std::vector<std::size_t>& breaks) const;
  bool in_segment(std::size_t c, std::size_t a, std::size_t v) const;

  TimePs period_ = 0;
  std::vector<TimePs> times_;  // sorted distinct edge times
  std::vector<std::pair<std::size_t, std::size_t>> requirements_;  // (a, c)
};

}  // namespace hb
