#include "clocks/waveform.hpp"

#include <algorithm>

namespace hb {

ClockId ClockSet::add_clock(const std::string& name, TimePs period,
                            std::vector<ClockPulse> pulses) {
  if (find(name).valid()) raise("duplicate clock name '" + name + "'");
  if (period <= 0) raise("clock '" + name + "': period must be positive");
  if (pulses.empty()) raise("clock '" + name + "': needs at least one pulse");
  TimePs prev_fall = -1;
  for (const ClockPulse& p : pulses) {
    if (p.rise < 0 || p.rise >= p.fall || p.fall > period) {
      raise("clock '" + name + "': malformed pulse");
    }
    if (p.rise <= prev_fall) raise("clock '" + name + "': overlapping pulses");
    prev_fall = p.fall;
  }
  // A pulse may not wrap into the next period's first pulse.
  if (pulses.back().fall == period && pulses.front().rise == 0) {
    raise("clock '" + name + "': waveform never low");
  }
  ClockId id(static_cast<std::uint32_t>(clocks_.size()));
  clocks_.push_back(Clock{name, period, std::move(pulses)});
  return id;
}

ClockId ClockSet::add_simple_clock(const std::string& name, TimePs period,
                                   TimePs rise, TimePs fall) {
  return add_clock(name, period, {ClockPulse{rise, fall}});
}

ClockId ClockSet::find(const std::string& name) const {
  for (std::uint32_t i = 0; i < clocks_.size(); ++i) {
    if (clocks_[i].name == name) return ClockId(i);
  }
  return ClockId::invalid();
}

TimePs ClockSet::overall_period() const {
  if (clocks_.empty()) raise("clock set is empty");
  TimePs t = clocks_.front().period;
  for (const Clock& c : clocks_) t = lcm_ps(t, c.period);
  return t;
}

std::vector<ClockEdge> ClockSet::edges_in_overall_period() const {
  const TimePs T = overall_period();
  std::vector<ClockEdge> edges;
  for (std::uint32_t i = 0; i < clocks_.size(); ++i) {
    const Clock& c = clocks_[i];
    for (TimePs base = 0; base < T; base += c.period) {
      for (const ClockPulse& p : c.pulses) {
        edges.push_back({ClockId(i), EdgeKind::kRise, base + p.rise});
        edges.push_back({ClockId(i), EdgeKind::kFall, base + p.fall});
      }
    }
  }
  std::sort(edges.begin(), edges.end(), [](const ClockEdge& a, const ClockEdge& b) {
    return a.time < b.time;
  });
  return edges;
}

std::vector<Interval> ClockSet::high_intervals(ClockId id) const {
  const TimePs T = overall_period();
  const Clock& c = clock(id);
  std::vector<Interval> out;
  for (TimePs base = 0; base < T; base += c.period) {
    for (const ClockPulse& p : c.pulses) {
      out.push_back({base + p.rise, base + p.fall});
    }
  }
  return out;
}

std::vector<Interval> ClockSet::low_intervals(ClockId id) const {
  const TimePs T = overall_period();
  auto highs = high_intervals(id);
  std::vector<Interval> out;
  // Lows are the gaps between consecutive highs; the gap between the last
  // fall and the first rise of the next overall period wraps.
  for (std::size_t i = 0; i < highs.size(); ++i) {
    const TimePs lead = highs[i].trail;
    const TimePs trail =
        i + 1 < highs.size() ? highs[i + 1].lead : highs.front().lead + T;
    if (trail > lead) {
      out.push_back({mod_period(lead, T), mod_period(lead, T) + (trail - lead)});
    }
  }
  return out;
}

}  // namespace hb
