// Clock waveform model.
//
// The paper allows "any set of clock signals, with any (harmonically
// related) frequencies and phase relationships".  A ClockSet holds clocks
// whose periods all divide a common overall period (their LCM); helpers
// expand each clock's pulses and edges over one overall period, which is
// the time base for generic synchronising-element instances (Section 4: an
// element clocked at n x the overall frequency is represented by n generic
// elements, one per control pulse).
#pragma once

#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace hb {

/// One high pulse of a clock within its own period: rise at `rise`,
/// fall at `fall`, 0 <= rise < fall <= period.
struct ClockPulse {
  TimePs rise = 0;
  TimePs fall = 0;
};

struct Clock {
  std::string name;
  TimePs period = 0;
  std::vector<ClockPulse> pulses;  // sorted, non-overlapping
};

enum class EdgeKind { kRise, kFall };

/// A clock edge instant within the overall period.
struct ClockEdge {
  ClockId clock;
  EdgeKind kind = EdgeKind::kRise;
  TimePs time = 0;  // in [0, overall_period)
};

/// An interval during which a clock is high (or low), within the overall
/// period.  `lead` is in [0, T); `trail` = lead + width and may exceed T
/// when the interval wraps.
struct Interval {
  TimePs lead = 0;
  TimePs trail = 0;
  TimePs width() const { return trail - lead; }
};

class ClockSet {
 public:
  /// Add a clock; pulses must be sorted, non-overlapping and within the
  /// period.  Throws hb::Error on malformed waveforms.
  ClockId add_clock(const std::string& name, TimePs period,
                    std::vector<ClockPulse> pulses);

  /// Convenience: single pulse rising at `rise`, falling at `fall`.
  ClockId add_simple_clock(const std::string& name, TimePs period, TimePs rise,
                           TimePs fall);

  const Clock& clock(ClockId id) const { return clocks_.at(id.index()); }
  std::size_t num_clocks() const { return clocks_.size(); }
  ClockId find(const std::string& name) const;

  /// LCM of all clock periods — the paper's "overall period".  Throws if
  /// the set is empty.
  TimePs overall_period() const;

  /// All edges of all clocks within one overall period, sorted by time.
  std::vector<ClockEdge> edges_in_overall_period() const;

  /// Intervals (within one overall period) during which `id` is high/low.
  /// A low interval that spans the period start is reported once, wrapped.
  std::vector<Interval> high_intervals(ClockId id) const;
  std::vector<Interval> low_intervals(ClockId id) const;

 private:
  std::vector<Clock> clocks_;
};

}  // namespace hb
