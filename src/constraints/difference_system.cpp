#include "constraints/difference_system.hpp"

#include "util/error.hpp"

namespace hb {

int DifferenceSystem::add_variable(std::string name) {
  names_.push_back(std::move(name));
  return static_cast<int>(names_.size()) - 1;
}

// Origin variable is index -1 conceptually; edges store it as num_variables
// at solve time.  All constraints normalise to x_to - x_from <= w.
void DifferenceSystem::add_upper(int var, TimePs c) {
  edges_.push_back({/*from=*/-1, var, c});  // x - 0 <= c
}

void DifferenceSystem::add_lower(int var, TimePs c) {
  edges_.push_back({var, /*to=*/-1, -c});  // 0 - x <= -c
}

void DifferenceSystem::add_diff_ge(int j, int i, TimePs c) {
  edges_.push_back({j, i, -c});  // x_i - x_j <= -c
}

void DifferenceSystem::add_contradiction(std::string reason) {
  if (!contradiction_) reason_ = std::move(reason);
  contradiction_ = true;
}

DifferenceSystem::Result DifferenceSystem::solve() const {
  Result res;
  if (contradiction_) {
    res.reason = reason_;
    return res;
  }
  const int n = static_cast<int>(names_.size());
  const int origin = n;
  // dist[] over n+1 nodes; origin fixed at 0 and sourced from everywhere
  // (standard feasibility construction: start all at 0).
  std::vector<TimePs> dist(static_cast<std::size_t>(n) + 1, 0);

  auto index = [&](int v) { return v < 0 ? origin : v; };

  bool changed = true;
  for (int iter = 0; iter <= n + 1 && changed; ++iter) {
    changed = false;
    for (const Edge& e : edges_) {
      const TimePs cand = dist[static_cast<std::size_t>(index(e.from))] + e.weight;
      TimePs& d = dist[static_cast<std::size_t>(index(e.to))];
      if (cand < d) {
        d = cand;
        changed = true;
      }
    }
    if (changed && iter == n + 1) {
      // Still relaxing after |V| sweeps: negative cycle.
      res.reason = "negative cycle in constraint graph";
      return res;
    }
  }

  res.feasible = true;
  // Shift so the origin sits at zero; x_v = dist[v] - dist[origin].
  const TimePs base = dist[static_cast<std::size_t>(origin)];
  res.solution.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    res.solution[static_cast<std::size_t>(v)] =
        dist[static_cast<std::size_t>(v)] - base;
  }
  return res;
}

}  // namespace hb
