// A system of difference constraints over integer variables:
//     x <= c,   x >= c,   x_j - x_i >= c,
// solved by Bellman-Ford negative-cycle detection on the standard
// constraint graph.  Used as the independent feasibility oracle for the
// paper's proposition ("path p is too slow if and only if no combination of
// offsets satisfying the synchronising element constraints satisfies all
// path constraints") — see constraints/feasibility.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace hb {

class DifferenceSystem {
 public:
  /// Adds a variable; returns its index.
  int add_variable(std::string name);
  std::size_t num_variables() const { return names_.size(); }
  const std::string& name(int v) const { return names_.at(static_cast<std::size_t>(v)); }

  void add_upper(int var, TimePs c);             // x_var <= c
  void add_lower(int var, TimePs c);             // x_var >= c
  void add_diff_ge(int j, int i, TimePs c);      // x_j - x_i >= c
  /// Record a constant constraint already known to be violated.
  void add_contradiction(std::string reason);

  std::size_t num_constraints() const { return edges_.size() + (contradiction_ ? 1 : 0); }

  struct Result {
    bool feasible = false;
    /// A satisfying assignment when feasible (one of many).
    std::vector<TimePs> solution;
    std::string reason;  // first contradiction, if any
  };

  /// Bellman-Ford over variables plus an origin node.
  Result solve() const;

 private:
  struct Edge {
    int from;
    int to;
    TimePs weight;  // x_to - x_from <= weight
  };

  std::vector<std::string> names_;
  std::vector<Edge> edges_;
  bool contradiction_ = false;
  std::string reason_;
};

}  // namespace hb
