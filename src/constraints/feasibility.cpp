#include "constraints/feasibility.hpp"

#include <optional>

namespace hb {
namespace {

/// Worst-case combinational delay from a source node to every node of its
/// cluster (seeded with both transitions at 0).
std::vector<std::optional<RiseFall>> max_delays_from(const SlackEngine& engine,
                                                     const Cluster& cl,
                                                     TNodeId src) {
  const TimingGraph& graph = engine.graph();
  std::vector<std::optional<RiseFall>> dmax(cl.nodes.size());
  dmax[engine.local_index(src)] = RiseFall{0, 0};
  for (TNodeId n : cl.nodes) {
    const auto& dn = dmax[engine.local_index(n)];
    if (!dn) continue;
    const NodeRole role = graph.node(n).role;
    if (role == NodeRole::kSyncDataIn || role == NodeRole::kSyncControl) continue;
    for (std::uint32_t ai : graph.fanout(n)) {
      const TArcRec& arc = graph.arc(ai);
      const RiseFall cand = propagate_forward(*dn, arc, arc.delay);
      auto& slot = dmax[engine.local_index(arc.to)];
      slot = slot ? rf_max(*slot, cand) : cand;
    }
  }
  return dmax;
}

}  // namespace

FeasibilityResult check_intended_behaviour(const SlackEngine& engine) {
  const SyncModel& sync = engine.sync();
  const ClusterSet& clusters = engine.clusters();
  const TimePs T = sync.overall_period();

  DifferenceSystem sys;
  // One variable per transparent (adjustable) instance; -1 otherwise.
  std::vector<int> var(sync.num_instances(), -1);
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    const SyncInstance& si = sync.at(SyncId(i));
    if (!si.transparent || si.is_virtual) continue;
    var[i] = sys.add_variable(si.label);
    // Element constraints: O_zd in [0, W]  <=>  O_dz in [-W-Ddz, -Ddz].
    sys.add_lower(var[i], -si.width - si.ddz);
    sys.add_upper(var[i], -si.ddz);
  }

  FeasibilityResult out;
  out.num_variables = sys.num_variables();

  // Path constraints per connected (launch instance, capture instance) pair.
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    const Cluster& cl = clusters.cluster(ClusterId(c));
    if (cl.source_nodes.empty() || cl.sink_nodes.empty()) continue;
    for (TNodeId src : cl.source_nodes) {
      const auto dmax = max_delays_from(engine, cl, src);
      for (TNodeId sink : cl.sink_nodes) {
        const auto& d = dmax[engine.local_index(sink)];
        if (!d) continue;
        const TimePs delay = d->max();
        for (SyncId li : sync.launches_at(src)) {
          const SyncInstance& a = sync.at(li);
          for (SyncId cj : sync.captures_at(sink)) {
            const SyncInstance& b = sync.at(cj);
            TimePs D = mod_period(b.ideal_close - a.ideal_assert, T);
            if (D == 0) D = T;  // same-edge pairs get one full period
            ++out.num_path_constraints;

            // The launch assertion offset is max(A_c, A_v) with
            //   A_c = O_zc (always), A_v = W_i + x_i + D_dz_i (transparent);
            // the capture closure offset is min(C_c, C_v) with
            //   C_c = -setup (always), C_v = x_j (transparent).
            // "delay <= D - max(..) + min(..)" splits into a conjunct per
            // (A, C) combination that exists.
            const TimePs assert_const =
                a.is_virtual ? a.v_offset : a.oac + a.dcz;  // A_c
            const TimePs close_const = b.is_virtual ? b.v_offset : -b.setup;
            const int vi = var[li.index()];
            const int vj = var[cj.index()];

            // (A_c, C_c): applies unconditionally.
            if (delay > D - assert_const + close_const) {
              sys.add_contradiction("path too slow even at best offsets: " +
                                    a.label + " -> " + b.label);
            }
            // (A_c, C_v): x_j >= delay - D + A_c.
            if (vj >= 0) sys.add_lower(vj, delay - D + assert_const);
            if (vi >= 0) {
              const TimePs k = a.width + a.ddz;  // A_v = k + x_i
              // (A_v, C_c): x_i <= D - delay - k + C_c.
              sys.add_upper(vi, D - delay - k + close_const);
              // (A_v, C_v): x_j - x_i >= delay - D + k.
              if (vj >= 0) sys.add_diff_ge(vj, vi, delay - D + k);
            }
          }
        }
      }
    }
  }

  const DifferenceSystem::Result res = sys.solve();
  out.feasible = res.feasible;
  if (res.feasible) {
    out.odz_solution.assign(sync.num_instances(), 0);
    for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
      if (var[i] >= 0) {
        out.odz_solution[i] = res.solution[static_cast<std::size_t>(var[i])];
      }
    }
  }
  return out;
}

}  // namespace hb
