// Independent oracle for the paper's central proposition: the system
// "behaves as intended" exactly when some assignment of offsets satisfies
// every synchronising element constraint and every path constraint.
//
// With the simplified Figure 2(b) model the free offsets are the O_dz of the
// transparent instances (O_zd is tied to O_dz; everything else is a
// constant), and each path constraint
//     dmax <= D - max(O_zc_i, W_i + O_dz_i + D_dz_i) + min(-setup_j, O_dz_j)
// splits into at most four conjuncts, each a bound or difference constraint
// over the O_dz variables.  Feasibility is therefore decidable exactly by
// Bellman-Ford — no iteration heuristics — which makes this module the
// ground truth the Algorithm 1 implementation is validated against in the
// property tests:
//     infeasible  ==>  Algorithm 1 must report "not as intended";
//     Algorithm 1 "as intended"  ==>  feasible.
// (Ties — paths that are exactly marginal — may be conservatively flagged
// by Algorithm 1; the paper notes the same.)
#pragma once

#include "constraints/difference_system.hpp"
#include "sta/slack_engine.hpp"

namespace hb {

struct FeasibilityResult {
  bool feasible = false;
  std::size_t num_variables = 0;
  std::size_t num_path_constraints = 0;
  /// Satisfying O_dz per transparent instance (by SyncId), when feasible.
  std::vector<TimePs> odz_solution;
};

/// Build and solve the offset constraint system for the engine's design.
/// Uses only structure and ideal times — current offsets are irrelevant.
FeasibilityResult check_intended_behaviour(const SlackEngine& engine);

}  // namespace hb
