#include "delay/calculator.hpp"

#include <cmath>
#include <optional>

namespace hb {

DelayCalculator::DelayCalculator(const Design& design, WireLoadModel wire)
    : design_(&design), wire_(wire) {}

double DelayCalculator::net_load_ff(ModuleId mod, NetId net) const {
  const Module& m = design_->module(mod);
  const Net& n = m.net(net);
  double cap = wire_.wire_cap_ff(n.pins.size());
  for (const PinRef& pin : n.pins) {
    const Instance& inst = m.inst(pin.inst);
    if (design_->target_port_dir(inst, pin.port) == PortDirection::kInput) {
      cap += input_cap_ff(mod, inst, pin.port);
    }
  }
  return cap;
}

double DelayCalculator::input_cap_ff(ModuleId /*mod*/, const Instance& inst,
                                     std::uint32_t port) const {
  if (inst.is_cell()) return design_->lib().cell(inst.cell).port(port).cap_ff;
  return module_timing(inst.module).port_cap_ff.at(port);
}

const std::vector<TimingArc>& DelayCalculator::arcs_of(const Instance& inst) const {
  if (inst.is_cell()) return design_->lib().cell(inst.cell).arcs();
  return module_timing(inst.module).arcs;
}

void DelayCalculator::set_derate(double factor) {
  if (!(factor > 0.0)) {
    raise("delay derate factor must be positive, got " + std::to_string(factor));
  }
  derate_ = factor;
  module_cache_.clear();  // combined module arcs bake the factor in
}

void DelayCalculator::adjust_instance(InstId inst, TimePs delta) {
  instance_adjust_[inst.value()] += delta;
}

TimePs DelayCalculator::instance_adjustment(InstId inst) const {
  auto it = instance_adjust_.find(inst.value());
  return it == instance_adjust_.end() ? 0 : it->second;
}

RiseFall DelayCalculator::arc_delay(ModuleId mod, InstId inst,
                                    const TimingArc& arc) const {
  const Module& m = design_->module(mod);
  const Instance& i = m.inst(inst);
  NetId out_net = i.conn.at(arc.to_port);
  const double load = out_net.valid() ? net_load_ff(mod, out_net) : 0.0;
  RiseFall d{
      arc.intrinsic_rise + static_cast<TimePs>(std::llround(arc.slope_rise * load)),
      arc.intrinsic_fall + static_cast<TimePs>(std::llround(arc.slope_fall * load))};
  if (derate_ != 1.0) {
    d.rise = static_cast<TimePs>(std::llround(static_cast<double>(d.rise) * derate_));
    d.fall = static_cast<TimePs>(std::llround(static_cast<double>(d.fall) * derate_));
  }
  // Per-instance adjustments apply to top-level instances only (inner
  // instances of combined modules are not individually addressable).
  if (mod == design_->top_id() && !instance_adjust_.empty()) {
    const TimePs delta = instance_adjustment(inst);
    if (delta != 0) {
      d.rise = std::max<TimePs>(0, d.rise + delta);
      d.fall = std::max<TimePs>(0, d.fall + delta);
    }
  }
  return d;
}

TimePs DelayCalculator::setup_time(CellId cell) const {
  return design_->lib().cell(cell).sync().setup;
}

const DelayCalculator::ModuleTiming& DelayCalculator::module_timing(ModuleId id) const {
  auto it = module_cache_.find(id.value());
  if (it != module_cache_.end()) return it->second;
  auto [ins, ok] = module_cache_.emplace(id.value(), compute_module_timing(id));
  HB_ASSERT(ok);
  return ins->second;
}

DelayCalculator::ModuleTiming DelayCalculator::compute_module_timing(ModuleId id) const {
  const Module& m = design_->module(id);
  ModuleTiming out;

  // Input-port capacitance: the internal input pins on the port's net.
  out.port_cap_ff.assign(m.ports().size(), 0.0);
  for (std::uint32_t p = 0; p < m.ports().size(); ++p) {
    const ModulePort& port = m.port(p);
    if (port.direction != PortDirection::kInput || !port.net.valid()) continue;
    double cap = 0.0;
    for (const PinRef& pin : m.net(port.net).pins) {
      const Instance& inst = m.inst(pin.inst);
      if (design_->target_port_dir(inst, pin.port) == PortDirection::kInput) {
        cap += input_cap_ff(id, inst, pin.port);
      }
    }
    out.port_cap_ff[p] = cap;
  }

  // Topological order of instances (submodules are combinational, so Kahn
  // over all instances terminates; sequential cells would have been
  // rejected by validate()).
  const std::size_t ninst = m.insts().size();
  std::vector<int> indeg(ninst, 0);
  std::vector<std::vector<std::uint32_t>> succ(ninst);
  for (std::uint32_t i = 0; i < ninst; ++i) {
    const Instance& inst = m.inst(InstId(i));
    for (std::uint32_t p = 0; p < inst.conn.size(); ++p) {
      if (design_->target_port_dir(inst, p) != PortDirection::kOutput) continue;
      if (!inst.conn[p].valid()) continue;
      for (const PinRef& pin : m.net(inst.conn[p]).pins) {
        const Instance& sink = m.inst(pin.inst);
        if (design_->target_port_dir(sink, pin.port) == PortDirection::kInput) {
          succ[i].push_back(pin.inst.value());
          ++indeg[pin.inst.value()];
        }
      }
    }
  }
  std::vector<std::uint32_t> topo, stack;
  for (std::uint32_t i = 0; i < ninst; ++i) {
    if (indeg[i] == 0) stack.push_back(i);
  }
  while (!stack.empty()) {
    std::uint32_t i = stack.back();
    stack.pop_back();
    topo.push_back(i);
    for (std::uint32_t s : succ[i]) {
      if (--indeg[s] == 0) stack.push_back(s);
    }
  }
  if (topo.size() != ninst) {
    raise("module '" + m.name() + "': combinational cycle during delay combination");
  }

  // For each input port, propagate worst (rise, fall) arrival to every net.
  for (std::uint32_t p = 0; p < m.ports().size(); ++p) {
    const ModulePort& port = m.port(p);
    if (port.direction != PortDirection::kInput || !port.net.valid()) continue;

    std::vector<std::optional<RiseFall>> arrival(m.num_nets());
    arrival[port.net.index()] = RiseFall{0, 0};

    for (std::uint32_t i : topo) {
      const Instance& inst = m.inst(InstId(i));
      for (const TimingArc& arc : arcs_of(inst)) {
        if (!inst.conn[arc.from_port].valid() || !inst.conn[arc.to_port].valid()) {
          continue;
        }
        const auto& in = arrival[inst.conn[arc.from_port].index()];
        if (!in) continue;
        const RiseFall d = arc_delay(id, InstId(i), arc);
        const RiseFall cand = propagate_forward(*in, arc, d);
        auto& slot = arrival[inst.conn[arc.to_port].index()];
        slot = slot ? rf_max(*slot, cand) : cand;
      }
    }

    // Emit one combined arc per reachable output port.
    for (std::uint32_t q = 0; q < m.ports().size(); ++q) {
      const ModulePort& oport = m.port(q);
      if (oport.direction != PortDirection::kOutput || !oport.net.valid()) continue;
      const auto& arr = arrival[oport.net.index()];
      if (!arr) continue;

      // Slope of the internal driver of the output net, so the outer load
      // still matters.
      double slope_rise = 0.0, slope_fall = 0.0;
      for (const PinRef& pin : m.net(oport.net).pins) {
        const Instance& drv = m.inst(pin.inst);
        if (design_->target_port_dir(drv, pin.port) != PortDirection::kOutput) continue;
        for (const TimingArc& darc : arcs_of(drv)) {
          if (darc.to_port != pin.port) continue;
          slope_rise = std::max(slope_rise, darc.slope_rise);
          slope_fall = std::max(slope_fall, darc.slope_fall);
        }
      }

      TimingArc combined;
      combined.from_port = p;
      combined.to_port = q;
      combined.unate = Unate::kNone;  // conservative for an abstracted block
      combined.intrinsic_rise = arr->rise;
      combined.intrinsic_fall = arr->fall;
      combined.slope_rise = slope_rise;
      combined.slope_fall = slope_fall;
      out.arcs.push_back(combined);
    }
  }
  return out;
}

}  // namespace hb
