// Component propagation-delay estimation (paper Section 1: "By separating
// component delay-estimation and system-timing analysis, different
// delay-estimation methods may be combined").
//
// For library cells the delay of an arc instance is
//     intrinsic + slope * C_load(output net).
// For combinational submodule instances the calculator *combines* internal
// cell delays into module-level arcs ("For combinational logic modules the
// delays have been combined to generate estimates of the module propagation
// delays"): each (input port -> output port) pair with an internal path
// becomes one arc whose intrinsic part is the worst internal path delay
// (internal net loads included) and whose slope is the final internal
// driver's slope, so the outer net load is still accounted for.  Module
// arcs are conservatively non-unate.
#pragma once

#include <unordered_map>
#include <vector>

#include "delay/delay_model.hpp"
#include "netlist/design.hpp"

namespace hb {

class DelayCalculator {
 public:
  explicit DelayCalculator(const Design& design, WireLoadModel wire = {});

  const Design& design() const { return *design_; }

  /// Interactive-mode hooks (paper Section 8: "Adjustments may also be made
  /// to component delays"): a global derating factor and additive
  /// per-instance adjustments (top-level instances only).  Apply before
  /// building the timing graph; they affect every arc delay uniformly.
  void set_derate(double factor);
  double derate() const { return derate_; }
  void adjust_instance(InstId inst, TimePs delta);
  TimePs instance_adjustment(InstId inst) const;

  /// Capacitive load (fF) on a net of module `mod`: connected input-pin
  /// caps plus the statistical wire load.
  double net_load_ff(ModuleId mod, NetId net) const;

  /// Input capacitance presented by port `port` of whatever `inst`
  /// instantiates (cell pin cap, or the combined cap of a module port).
  double input_cap_ff(ModuleId mod, const Instance& inst, std::uint32_t port) const;

  /// Timing arcs of an instance's target: a cell's library arcs, or the
  /// combined arcs of a submodule (computed lazily and memoized).
  const std::vector<TimingArc>& arcs_of(const Instance& inst) const;

  /// Delay of one arc of instance `inst` living in module `mod`, given the
  /// load on the arc's output net.
  RiseFall arc_delay(ModuleId mod, InstId inst, const TimingArc& arc) const;

  /// Set-up time of a synchronising cell (pass-through from the library;
  /// kept here so all timing numbers flow through one component).
  TimePs setup_time(CellId cell) const;

 private:
  struct ModuleTiming {
    std::vector<TimingArc> arcs;
    std::vector<double> port_cap_ff;  // input ports only; 0 for outputs
  };

  const ModuleTiming& module_timing(ModuleId id) const;
  ModuleTiming compute_module_timing(ModuleId id) const;

  const Design* design_;
  WireLoadModel wire_;
  double derate_ = 1.0;
  std::unordered_map<std::uint32_t, TimePs> instance_adjust_;
  mutable std::unordered_map<std::uint32_t, ModuleTiming> module_cache_;
};

}  // namespace hb
