// Delay-model primitives shared by the delay calculator and the analyser.
//
// The paper calculates "separately rising and falling signal settling time"
// (after Bening et al. [7]); RiseFall carries every timing quantity in both
// polarities.  Component delays follow the empirical standard-cell form the
// paper used: delay = intrinsic + slope * connected load.
#pragma once

#include <algorithm>

#include "netlist/library.hpp"  // for Unate
#include "util/time.hpp"

namespace hb {

struct RiseFall {
  TimePs rise = 0;
  TimePs fall = 0;

  TimePs max() const { return std::max(rise, fall); }
  TimePs min() const { return std::min(rise, fall); }

  friend RiseFall operator+(RiseFall a, RiseFall b) {
    return {a.rise + b.rise, a.fall + b.fall};
  }
  friend bool operator==(RiseFall a, RiseFall b) {
    return a.rise == b.rise && a.fall == b.fall;
  }
};

/// Both polarities set to the same value.
constexpr RiseFall both(TimePs t) { return {t, t}; }

/// Component-wise max/min (used when merging path arrivals).
inline RiseFall rf_max(RiseFall a, RiseFall b) {
  return {std::max(a.rise, b.rise), std::max(a.fall, b.fall)};
}
inline RiseFall rf_min(RiseFall a, RiseFall b) {
  return {std::min(a.rise, b.rise), std::min(a.fall, b.fall)};
}

/// The two block-analysis propagation rules under arc unateness (rise/fall
/// refer to the *output* transition of the arc):
///   forward (paper eq. 1):  arrival_out = f(arrival_in) + delay
///   backward (paper eq. 2): required_in = g(required_out) - delay
/// Written as value selects rather than a switch: unateness varies
/// arc-to-arc in mixed logic, so a branch here mispredicts constantly in the
/// propagation sweeps; ternaries on integers compile to conditional moves.
template <class ArcLike>
RiseFall propagate_forward(RiseFall in, const ArcLike& arc, RiseFall d) {
  // kPositive: {rise, fall}; kNegative: {fall, rise} (an input fall causes
  // an output rise); kNone: worst of the two on both transitions.
  const TimePs worst = std::max(in.rise, in.fall);
  const TimePs r = arc.unate == Unate::kPositive
                       ? in.rise
                       : (arc.unate == Unate::kNegative ? in.fall : worst);
  const TimePs f = arc.unate == Unate::kPositive
                       ? in.fall
                       : (arc.unate == Unate::kNegative ? in.rise : worst);
  return {r + d.rise, f + d.fall};
}

template <class ArcLike>
RiseFall propagate_backward(RiseFall out, const ArcLike& arc, RiseFall d) {
  const TimePs pr = out.rise - d.rise;
  const TimePs pf = out.fall - d.fall;
  // kNegative: an input rise causes an output fall and vice versa.
  const TimePs worst = std::min(pr, pf);
  const TimePs r = arc.unate == Unate::kPositive
                       ? pr
                       : (arc.unate == Unate::kNegative ? pf : worst);
  const TimePs f = arc.unate == Unate::kPositive
                       ? pf
                       : (arc.unate == Unate::kNegative ? pr : worst);
  return {r, f};
}

/// Statistical wire load estimate: every net contributes a fixed stem cap
/// plus a per-connected-pin cap, the usual pre-layout fanout model for
/// standard-cell designs.
struct WireLoadModel {
  double base_ff = 1.2;
  double per_pin_ff = 0.9;

  double wire_cap_ff(std::size_t num_pins) const {
    return base_ff + per_pin_ff * static_cast<double>(num_pins);
  }
};

}  // namespace hb
