#include "gen/alu.hpp"

#include "netlist/builder.hpp"

namespace hb {

Design make_alu(std::shared_ptr<const Library> lib, const AluSpec& spec) {
  TopBuilder b("alu", std::move(lib));
  const int W = spec.bits;

  const NetId clk = b.port_in("clk", /*is_clock=*/true);

  // Registered operands and op code.
  std::vector<NetId> a(W), bb(W), op(3);
  for (int i = 0; i < W; ++i) {
    a[i] = b.latch(spec.reg_cell, b.port_in("a" + std::to_string(i)), clk);
    bb[i] = b.latch(spec.reg_cell, b.port_in("b" + std::to_string(i)), clk);
  }
  for (int i = 0; i < 3; ++i) {
    op[i] = b.latch(spec.reg_cell, b.port_in("op" + std::to_string(i)), clk);
  }

  // Decoder buffers so the select nets have realistic fanout drivers.
  const NetId sel_add = b.gate("BUFX2", {op[0]});
  const NetId sel_log = b.gate("BUFX2", {op[1]});
  const NetId sel_sh = b.gate("BUFX2", {op[2]});

  // Ripple-carry adder.
  std::vector<NetId> sum(W);
  NetId carry = b.gate("AND2X1", {op[0], op[1]});  // carry-in from decode
  for (int i = 0; i < W; ++i) {
    const NetId p = b.gate("XOR2X1", {a[i], bb[i]});
    const NetId g = b.gate("AND2X1", {a[i], bb[i]});
    sum[i] = b.gate("XOR2X1", {p, carry});
    const NetId t = b.gate("AND2X1", {p, carry});
    carry = b.gate("OR2X1", {g, t});
  }

  // Logic unit: (a AND b) / (a OR b) picked by sel_log.
  std::vector<NetId> logic(W);
  for (int i = 0; i < W; ++i) {
    const NetId land = b.gate("AND2X1", {a[i], bb[i]});
    const NetId lor = b.gate("OR2X1", {a[i], bb[i]});
    logic[i] = b.gate("MUX2X1", {land, lor, sel_log});
  }

  // One-position shifter on operand a.
  std::vector<NetId> shifted(W);
  for (int i = 0; i < W; ++i) {
    const NetId lo = i > 0 ? a[i - 1] : op[2];
    shifted[i] = b.gate("MUX2X1", {a[i], lo, sel_sh});
  }

  // Result selection and register.
  std::vector<NetId> result(W);
  for (int i = 0; i < W; ++i) {
    const NetId add_or_log = b.gate("MUX2X1", {sum[i], logic[i], sel_add});
    const NetId y = b.gate("MUX2X1", {add_or_log, shifted[i], sel_sh});
    result[i] = b.latch(spec.reg_cell, y, clk);
    b.port_out_net("y" + std::to_string(i), result[i]);
  }

  // Zero flag: NOR-reduce the result in pairs, AND-tree the rest.
  std::vector<NetId> level;
  for (int i = 0; i + 1 < W; i += 2) {
    level.push_back(b.gate("NOR2X1", {result[i], result[i + 1]}));
  }
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(b.gate("AND2X1", {level[i], level[i + 1]}));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  b.port_out_net("zero", b.latch(spec.reg_cell, level.front(), clk));
  return b.finish();
}

}  // namespace hb
