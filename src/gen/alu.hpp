// Bit-sliced ALU generator — the stand-in for Table 1's "ALU" example ("a
// portion of a CPU chip made up from 899 standard cells").  Registered
// operands, a ripple-carry adder, a logic unit, a one-level shifter and a
// result mux per slice, plus an op decoder and a zero-flag reduction tree.
#pragma once

#include <memory>

#include "netlist/design.hpp"

namespace hb {

struct AluSpec {
  int bits = 32;
  /// Latch cell for operand/result registers ("DFFT" or "TLATCH").
  std::string reg_cell = "DFFT";
};

/// Ports: a<i>, b<i>, op0..op2, outputs y<i>, zero; clock clk.
Design make_alu(std::shared_ptr<const Library> lib, const AluSpec& spec = {});

}  // namespace hb
