#include "gen/des.hpp"

#include "netlist/builder.hpp"

namespace hb {

Design make_des(std::shared_ptr<const Library> lib, const DesSpec& spec) {
  TopBuilder b("des", std::move(lib));
  const int W = spec.half_width;

  const NetId clk = b.port_in("clk", /*is_clock=*/true);

  std::vector<NetId> left(W), right(W), key(W);
  for (int i = 0; i < W; ++i) left[i] = b.port_in("in" + std::to_string(i));
  for (int i = 0; i < W; ++i) {
    right[i] = b.port_in("in" + std::to_string(W + i));
    key[i] = b.port_in("key" + std::to_string(i));
  }

  for (int r = 0; r < spec.rounds; ++r) {
    // Key schedule: rotate and lightly mix the key register.
    std::vector<NetId> subkey(W);
    for (int i = 0; i < W; ++i) {
      const int rot = (i + r + 1) % W;
      subkey[i] = (i % 5 == 0) ? b.gate("XOR2X1", {key[rot], key[(rot + 3) % W]})
                               : key[rot];
    }

    // f(R, K): key mix, S-box-like cones, then permutation (re-wiring).
    std::vector<NetId> mixed(W), sbox(W);
    for (int i = 0; i < W; ++i) {
      mixed[i] = b.gate("XOR2X1", {right[i], subkey[i]});
    }
    for (int i = 0; i < W; ++i) {
      const NetId t1 = b.gate("NAND3X1", {mixed[i], mixed[(i + 1) % W],
                                          mixed[(i + 5) % W]});
      // Alternate deep/shallow cones; the mix lands the default parameters
      // at roughly the paper's 3681-cell count.
      const NetId t2 = (i % 2 == 0)
                           ? b.gate("NAND3X1", {mixed[(i + 2) % W],
                                                mixed[(i + 7) % W],
                                                mixed[(i + 11) % W]})
                           : mixed[(i + 2) % W];
      sbox[i] = b.gate("NAND2X1", {t1, t2});
    }

    // New halves: L' = R, R' = L xor P(f(R)).
    std::vector<NetId> new_right(W);
    for (int i = 0; i < W; ++i) {
      const int perm = static_cast<int>((static_cast<std::int64_t>(i) * 7 + 3) % W);
      new_right[i] = b.gate("XOR2X1", {left[i], sbox[perm]});
    }

    // Registered rounds: latch both halves every round, the key register
    // every other round (it has no long logic in front of it).
    const std::string rn = "_r" + std::to_string(r);
    for (int i = 0; i < W; ++i) {
      const std::string bit = "_" + std::to_string(i);
      NetId new_left = right[i];
      left[i] = b.latch("DFFT", new_left, clk, "regL" + rn + bit);
      right[i] = b.latch("DFFT", new_right[i], clk, "regR" + rn + bit);
      key[i] = (r % 2 == 0) ? b.latch("DFFT", subkey[i], clk, "regK" + rn + bit)
                            : subkey[i];
    }
  }

  for (int i = 0; i < W; ++i) {
    b.port_out_net("out" + std::to_string(i), left[i]);
    b.port_out_net("out" + std::to_string(W + i), right[i]);
  }
  return b.finish();
}

ClockSet make_single_clock(TimePs period, TimePs pulse_width) {
  ClockSet clocks;
  clocks.add_simple_clock("clk", period, 0, pulse_width);
  return clocks;
}

}  // namespace hb
