// DES-like datapath generator — the stand-in for the paper's Table 1 "DES"
// example ("a complete data encryption chip, made up from 3681 standard
// cells").  A 16-round Feistel network over a 64-bit block with registered
// rounds and a rotating key schedule; the default parameters land within a
// few cells of the paper's count (the bench prints the actual number).
#pragma once

#include <memory>

#include "clocks/waveform.hpp"
#include "netlist/design.hpp"

namespace hb {

struct DesSpec {
  int rounds = 16;
  int half_width = 32;  // bits per Feistel half
  std::uint64_t seed = 7;
};

/// Ports: data inputs in<i>, key bits key<i>, outputs out<i>, clock clk.
Design make_des(std::shared_ptr<const Library> lib, const DesSpec& spec = {});

/// Single-phase clock suitable for the DES datapath.
ClockSet make_single_clock(TimePs period, TimePs pulse_width);

}  // namespace hb
