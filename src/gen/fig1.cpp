#include "gen/fig1.hpp"

#include "netlist/builder.hpp"

namespace hb {

Design make_fig1_design(std::shared_ptr<const Library> lib, const Fig1Config& cfg) {
  TopBuilder b("fig1", std::move(lib));
  const NetId phi1 = b.port_in("phi1", true);
  const NetId phi2 = b.port_in("phi2", true);
  const NetId phi3 = b.port_in("phi3", true);
  const NetId phi4 = b.port_in("phi4", true);

  auto chain = [&](NetId n, int depth) {
    for (int i = 0; i < depth; ++i) n = b.gate("INVX1", {n});
    return n;
  };

  const NetId a_in = b.port_in("a");
  const NetId b_in = b.port_in("b");
  const NetId qa = b.latch("TLATCH", a_in, phi1, "lat_a");
  const NetId qb = b.latch("TLATCH", b_in, phi3, "lat_b");

  // The shared, time-multiplexed gate.
  const NetId shared =
      b.gate("NAND2X1", {chain(qa, cfg.depth_in), chain(qb, cfg.depth_in)}, "shared");

  const NetId ya = chain(shared, cfg.depth_out);
  const NetId yb = chain(shared, cfg.depth_out);
  const NetId ca = b.latch("TLATCH", ya, phi2, "cap_a");
  const NetId cb = b.latch("TLATCH", yb, phi4, "cap_b");
  b.port_out_net("qa", ca);
  b.port_out_net("qb", cb);
  return b.finish();
}

ClockSet make_fig1_clocks(const Fig1Config& cfg) {
  ClockSet clocks;
  for (int i = 0; i < 4; ++i) {
    const std::string name = "phi" + std::to_string(i + 1);
    clocks.add_simple_clock(name, cfg.period, cfg.phase_start[i],
                            cfg.phase_start[i] + cfg.pulse_width);
  }
  return clocks;
}

}  // namespace hb
