// The paper's Figure 1: "Logic with latches controlled by four different
// clock phases" — a logic gate whose inputs are updated at different times
// during the clock period, so its output must settle to two different valid
// states per cycle ("time multiplexed within each overall clock period").
// This is the configuration for which "two cluster analysis passes are
// required" (Section 7) and the basis of the settling-time benchmarks.
#pragma once

#include <memory>

#include "clocks/waveform.hpp"
#include "netlist/design.hpp"

namespace hb {

struct Fig1Config {
  TimePs period = ns(40);
  /// Pulse width of each phase.
  TimePs pulse_width = ns(6);
  /// Start times of the four phases phi1..phi4 within the period.
  TimePs phase_start[4] = {0, ns(10), ns(20), ns(30)};
  /// Depth of the inverter chains feeding/leaving the shared gate.
  int depth_in = 3;
  int depth_out = 3;
};

/// The shared-gate network: two input latches (phi1, phi3) feed a NAND2
/// through short chains; its output feeds two capture latches (phi2, phi4).
/// Data launched on phi1 must settle before phi2 closes, and data launched
/// on phi3 before phi4 closes — two settling times per node of the shared
/// cone.
Design make_fig1_design(std::shared_ptr<const Library> lib, const Fig1Config& cfg);

/// The four-phase clock set of Figure 4(a)-style waveforms.
ClockSet make_fig1_clocks(const Fig1Config& cfg);

}  // namespace hb
