#include "gen/filter.hpp"

#include "netlist/builder.hpp"

namespace hb {

Design make_multirate_filter(std::shared_ptr<const Library> lib,
                             const FilterSpec& spec) {
  TopBuilder b("multirate_filter", std::move(lib));
  const NetId fck = b.port_in("fck", /*is_clock=*/true);
  const NetId sck = b.port_in("sck", /*is_clock=*/true);

  // Fast-domain tap delay line: taps x width registers.
  std::vector<NetId> stage(spec.width);
  for (int i = 0; i < spec.width; ++i) stage[i] = b.port_in("in" + std::to_string(i));
  std::vector<std::vector<NetId>> taps;
  for (int t = 0; t < spec.taps; ++t) {
    std::vector<NetId> next(spec.width);
    for (int i = 0; i < spec.width; ++i) {
      next[i] = b.latch(spec.reg_cell, stage[i], fck,
                        "tap" + std::to_string(t) + "_" + std::to_string(i));
    }
    taps.push_back(next);
    stage = std::move(next);
  }

  // "Coefficient" stage: XOR-fold each tap (stands in for multipliers).
  std::vector<std::vector<NetId>> weighted;
  for (int t = 0; t < spec.taps; ++t) {
    std::vector<NetId> w(spec.width);
    for (int i = 0; i < spec.width; ++i) {
      const int j = (i + t + 1) % spec.width;
      w[i] = b.gate("XNOR2X1", {taps[t][i], taps[t][j]});
    }
    weighted.push_back(std::move(w));
  }

  // Adder tree: pairwise ripple additions down to one vector.
  auto add_vectors = [&](const std::vector<NetId>& x, const std::vector<NetId>& y) {
    std::vector<NetId> sum(spec.width);
    NetId carry;
    for (int i = 0; i < spec.width; ++i) {
      const NetId p = b.gate("XOR2X1", {x[i], y[i]});
      const NetId g = b.gate("AND2X1", {x[i], y[i]});
      if (carry.valid()) {
        sum[i] = b.gate("XOR2X1", {p, carry});
        const NetId t = b.gate("AND2X1", {p, carry});
        carry = b.gate("OR2X1", {g, t});
      } else {
        sum[i] = p;
        carry = g;
      }
    }
    return sum;
  };
  std::vector<std::vector<NetId>> level = std::move(weighted);
  while (level.size() > 1) {
    std::vector<std::vector<NetId>> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(add_vectors(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }

  // Slow-domain (decimated) output register.
  for (int i = 0; i < spec.width; ++i) {
    const NetId q = b.latch(spec.reg_cell, level.front()[i], sck,
                            "outreg_" + std::to_string(i));
    b.port_out_net("out" + std::to_string(i), q);
  }
  return b.finish();
}

ClockSet make_multirate_clocks(TimePs fast_period) {
  ClockSet clocks;
  const TimePs duty = fast_period * 2 / 5;
  clocks.add_simple_clock("fck", fast_period, 0, duty);
  clocks.add_simple_clock("sck", fast_period * 2, 0, duty * 2);
  return clocks;
}

}  // namespace hb
