// Multirate DSP datapath generator: a decimating FIR-like filter with a
// fast input domain and a slow (half-rate) output domain — the kind of
// "digital signal processing chip" workload the paper's abstract cites, and
// a natural exercise of multi-frequency analysis (the fast-domain registers
// expand into two generic instances per overall period).
#pragma once

#include <memory>

#include "clocks/waveform.hpp"
#include "netlist/design.hpp"

namespace hb {

struct FilterSpec {
  int width = 8;      // data path bits
  int taps = 4;       // delay-line taps in the fast domain
  /// Register cell for both domains.
  std::string reg_cell = "DFFT";
};

/// Ports: in<i>, outputs out<i>, clocks fck (fast) and sck (slow, half
/// rate).  Structure: fast-domain tap delay line -> adder tree (carry-save
/// style, built from full-adder gates) -> slow-domain output register.
Design make_multirate_filter(std::shared_ptr<const Library> lib,
                             const FilterSpec& spec = {});

/// Clock set: fast clock of `fast_period`, slow clock at twice the period,
/// phase-aligned pulses of 40% duty.
ClockSet make_multirate_clocks(TimePs fast_period);

}  // namespace hb
