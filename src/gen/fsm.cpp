#include "gen/fsm.hpp"

#include "netlist/builder.hpp"
#include "util/rng.hpp"

namespace hb {
namespace {

/// Emit the two-level next-state / output network into `mod`.  `state` and
/// `in` are the nets carrying current state and inputs inside `mod`;
/// `next` / `out` receive the produced nets.  Deterministic in `seed`.
struct LogicEmitter {
  const Library& lib;
  Module& mod;
  const FsmSpec& spec;
  Rng rng;
  std::uint64_t counter = 0;

  NetId fresh_net() { return mod.add_net("w" + std::to_string(counter++)); }

  NetId gate(const std::string& cell_name, const std::vector<NetId>& ins) {
    const CellId cell = lib.require(cell_name);
    const Cell& c = lib.cell(cell);
    const InstId inst = mod.add_cell_inst("g" + std::to_string(counter++), cell,
                                          c.ports().size());
    std::size_t k = 0;
    NetId out;
    for (std::uint32_t p = 0; p < c.ports().size(); ++p) {
      if (c.port(p).direction == PortDirection::kInput) {
        mod.connect(inst, p, ins.at(k++));
      } else {
        out = fresh_net();
        mod.connect(inst, p, out);
      }
    }
    return out;
  }

  NetId pick_literal(const std::vector<NetId>& state, const std::vector<NetId>& in) {
    const std::size_t total = state.size() + in.size();
    const std::size_t idx = rng.pick(total);
    const NetId n = idx < state.size() ? state[idx] : in[idx - state.size()];
    // Random polarity through an inverter.
    return rng.chance(0.4) ? gate("INVX1", {n}) : n;
  }

  NetId sum_of_products(const std::vector<NetId>& state,
                        const std::vector<NetId>& in) {
    std::vector<NetId> terms;
    for (int t = 0; t < spec.terms; ++t) {
      terms.push_back(gate("NAND3X1", {pick_literal(state, in),
                                       pick_literal(state, in),
                                       pick_literal(state, in)}));
    }
    // NAND-NAND two-level form: combine terms pairwise.
    while (terms.size() > 2) {
      const NetId a = terms.back();
      terms.pop_back();
      const NetId b = terms.back();
      terms.pop_back();
      terms.push_back(gate("AND2X1", {a, b}));
    }
    return terms.size() == 2 ? gate("NAND2X1", {terms[0], terms[1]})
                             : gate("INVX1", {terms[0]});
  }

  void emit(const std::vector<NetId>& state, const std::vector<NetId>& in,
            std::vector<NetId>& next, std::vector<NetId>& out) {
    next.clear();
    out.clear();
    for (int i = 0; i < spec.state_bits; ++i) {
      next.push_back(sum_of_products(state, in));
    }
    for (int i = 0; i < spec.outputs; ++i) {
      out.push_back(sum_of_products(state, in));
    }
  }
};

}  // namespace

Design make_fsm_flat(std::shared_ptr<const Library> lib, const FsmSpec& spec) {
  TopBuilder b("sm1f", lib);
  const NetId clk = b.port_in("clk", /*is_clock=*/true);
  std::vector<NetId> in(spec.inputs);
  for (int i = 0; i < spec.inputs; ++i) in[i] = b.port_in("x" + std::to_string(i));

  // State register nets first (logic reads them, latches close the loop).
  std::vector<NetId> state(spec.state_bits);
  for (int i = 0; i < spec.state_bits; ++i) {
    state[i] = b.net("state" + std::to_string(i));
  }

  LogicEmitter em{*lib, b.module(), spec, Rng(spec.seed)};
  std::vector<NetId> next, out;
  em.emit(state, in, next, out);

  const CellId dff = lib->require("DFFT");
  const SyncSpec& sync = lib->cell(dff).sync();
  for (int i = 0; i < spec.state_bits; ++i) {
    const InstId inst = b.module().add_cell_inst("sreg" + std::to_string(i), dff,
                                                 lib->cell(dff).ports().size());
    b.module().connect(inst, sync.data_in, next[i]);
    b.module().connect(inst, sync.control, clk);
    b.module().connect(inst, sync.data_out, state[i]);
  }
  for (int i = 0; i < spec.outputs; ++i) {
    b.port_out_net("z" + std::to_string(i), out[i]);
  }
  return b.finish();
}

Design make_fsm_hier(std::shared_ptr<const Library> lib, const FsmSpec& spec) {
  TopBuilder b("sm1h", lib);

  // The combinational submodule: ports state<i>, x<i> in; next<i>, z<i> out.
  const ModuleId sub_id = b.design().add_module("nextstate");
  {
    Module& sub = b.design().module_mut(sub_id);
    std::vector<NetId> state(spec.state_bits), in(spec.inputs);
    for (int i = 0; i < spec.state_bits; ++i) {
      state[i] = sub.add_net("s" + std::to_string(i));
      sub.bind_port(sub.add_port("state" + std::to_string(i), PortDirection::kInput),
                    state[i]);
    }
    for (int i = 0; i < spec.inputs; ++i) {
      in[i] = sub.add_net("x" + std::to_string(i));
      sub.bind_port(sub.add_port("x" + std::to_string(i), PortDirection::kInput),
                    in[i]);
    }
    LogicEmitter em{*lib, sub, spec, Rng(spec.seed)};
    std::vector<NetId> next, out;
    em.emit(state, in, next, out);
    for (int i = 0; i < spec.state_bits; ++i) {
      sub.bind_port(sub.add_port("next" + std::to_string(i), PortDirection::kOutput),
                    next[i]);
    }
    for (int i = 0; i < spec.outputs; ++i) {
      sub.bind_port(sub.add_port("z" + std::to_string(i), PortDirection::kOutput),
                    out[i]);
    }
  }

  const NetId clk = b.port_in("clk", /*is_clock=*/true);
  std::vector<NetId> conns;
  std::vector<NetId> state(spec.state_bits), next(spec.state_bits);
  for (int i = 0; i < spec.state_bits; ++i) {
    state[i] = b.net("state" + std::to_string(i));
    conns.push_back(state[i]);
  }
  for (int i = 0; i < spec.inputs; ++i) conns.push_back(b.port_in("x" + std::to_string(i)));
  for (int i = 0; i < spec.state_bits; ++i) {
    next[i] = b.net("next" + std::to_string(i));
    conns.push_back(next[i]);
  }
  for (int i = 0; i < spec.outputs; ++i) conns.push_back(b.port_out("z" + std::to_string(i)));
  b.submodule(sub_id, conns, "logic");

  const CellId dff = b.lib().require("DFFT");
  const SyncSpec& sync = b.lib().cell(dff).sync();
  for (int i = 0; i < spec.state_bits; ++i) {
    const InstId inst = b.module().add_cell_inst("sreg" + std::to_string(i), dff,
                                                 b.lib().cell(dff).ports().size());
    b.module().connect(inst, sync.data_in, next[i]);
    b.module().connect(inst, sync.control, clk);
    b.module().connect(inst, sync.data_out, state[i]);
  }
  return b.finish();
}

}  // namespace hb
