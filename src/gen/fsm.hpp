// 12-bit finite-state-machine generator — Table 1's "SM1F" (flattened) and
// "SM1H" ("a hierarchical description of the same machine in which the
// combinational logic is contained in a single module").  Both variants
// describe the same machine; the hierarchical one lets the analyser treat
// the next-state logic as one component with combined delays, which is what
// makes its analysis faster in the paper.
#pragma once

#include <memory>

#include "netlist/design.hpp"

namespace hb {

struct FsmSpec {
  int state_bits = 12;
  int inputs = 4;
  int outputs = 8;
  /// Product terms per next-state bit.
  int terms = 4;
  std::uint64_t seed = 11;
};

/// Flattened: all gates at the top level next to the state register.
Design make_fsm_flat(std::shared_ptr<const Library> lib, const FsmSpec& spec = {});

/// Hierarchical: identical logic inside a single combinational submodule
/// "nextstate"; only the state register and ports live at the top.
Design make_fsm_hier(std::shared_ptr<const Library> lib, const FsmSpec& spec = {});

}  // namespace hb
