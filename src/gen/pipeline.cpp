#include "gen/pipeline.hpp"

#include "netlist/builder.hpp"
#include "util/rng.hpp"

namespace hb {

Design make_pipeline(std::shared_ptr<const Library> lib, const PipelineSpec& spec) {
  TopBuilder b("pipeline", std::move(lib));
  Rng rng(spec.seed);

  const NetId phi1 = b.port_in("phi1", /*is_clock=*/true);
  const NetId phi2 = spec.two_phase ? b.port_in("phi2", true) : phi1;

  for (int lane = 0; lane < spec.width; ++lane) {
    NetId data = b.port_in("d" + std::to_string(lane));
    // Each stage is a latch bank followed by its combinational logic, and a
    // final bank captures the last stage — so primary inputs feed a latch
    // directly and stage delays are constrained latch-to-latch, where slack
    // transfer can act.
    for (std::size_t s = 0; s < spec.stage_depths.size(); ++s) {
      const NetId ck = (s % 2 == 0) ? phi1 : phi2;
      data = b.latch(spec.latch_cell, data, ck,
                     "lat_" + std::to_string(lane) + "_" + std::to_string(s));
      // Stage combinational logic: an inverter chain with occasional NAND2
      // reconvergence to keep the netlist realistic.
      NetId prev;
      for (int g = 0; g < spec.stage_depths[s]; ++g) {
        if (prev.valid() && rng.chance(0.25)) {
          data = b.gate("NAND2X1", {data, prev});
        } else {
          prev = data;
          data = b.gate("INVX1", {data});
        }
      }
    }
    const std::size_t s = spec.stage_depths.size();
    const NetId ck = (s % 2 == 0) ? phi1 : phi2;
    data = b.latch(spec.latch_cell, data, ck,
                   "lat_" + std::to_string(lane) + "_" + std::to_string(s));
    b.port_out_net("q" + std::to_string(lane), data);
  }
  return b.finish();
}

ClockSet make_two_phase_clocks(TimePs period, int duty_permille) {
  ClockSet clocks;
  const TimePs width = period * duty_permille / 1000;
  // phi1 pulses at the start of the period, phi2 in the second half, with
  // non-overlap gaps on both sides.
  clocks.add_simple_clock("phi1", period, 0, width);
  clocks.add_simple_clock("phi2", period, period / 2, period / 2 + width);
  return clocks;
}

}  // namespace hb
