// Multi-phase latch pipeline generator: the canonical workload for
// demonstrating slack transfer ("cycle stealing") through transparent
// latches and for the transparent-vs-rigid ablation.
#pragma once

#include <memory>
#include <vector>

#include "clocks/waveform.hpp"
#include "netlist/design.hpp"

namespace hb {

struct PipelineSpec {
  /// Logic depth (INV-chain length) of each stage; stages.size() stages.
  std::vector<int> stage_depths{6, 6, 6};
  /// Parallel bit lanes.
  int width = 1;
  /// Latch cell between stages: "TLATCH" (transparent) or "DFFT"/"DFFL".
  std::string latch_cell = "TLATCH";
  /// Alternate latch banks between the clocks named phi1/phi2 (two-phase
  /// non-overlapping scheme) when true; single clock phi1 otherwise.
  bool two_phase = true;
  std::uint64_t seed = 1;
};

/// Builds the pipeline: PI -> [stage comb -> latch bank] x N -> PO.
/// Ports: data inputs d<i>, outputs q<i>, clocks phi1 (and phi2).
Design make_pipeline(std::shared_ptr<const Library> lib, const PipelineSpec& spec);

/// Matching two-phase non-overlapping clock set.  `duty_permille` is the
/// pulse width as a fraction of the period (default 40%).
ClockSet make_two_phase_clocks(TimePs period, int duty_permille = 400);

}  // namespace hb
