#include "gen/random_network.hpp"

#include "netlist/builder.hpp"
#include "util/rng.hpp"

namespace hb {

RandomNetwork make_random_network(std::shared_ptr<const Library> lib,
                                  const RandomNetworkSpec& spec) {
  Rng rng(spec.seed);

  // Clocks: harmonically related — full-rate clocks at base_period and one
  // possible double-rate clock (half period), random pulse placement.  The
  // base is rounded to an even picosecond count so halving keeps the set
  // harmonic (a truncated odd half would blow the overall period up to the
  // LCM of two near-coprime numbers).
  ClockSet clocks;
  const TimePs base = spec.base_period - (spec.base_period % 2);
  const int nclk = std::max(1, std::min(spec.num_clocks, 4));
  for (int c = 0; c < nclk; ++c) {
    const bool double_rate = c > 0 && rng.chance(0.3);
    const TimePs period = double_rate ? base / 2 : base;
    // Pulse occupies 20%..45% of the period, starting anywhere that fits.
    const TimePs width = period * rng.uniform(20, 45) / 100;
    const TimePs rise = rng.uniform(0, period - width - 1);
    clocks.add_simple_clock("phi" + std::to_string(c + 1), period, rise,
                            rise + width);
  }

  TopBuilder b("random", std::move(lib));
  std::vector<NetId> clk_nets(static_cast<std::size_t>(nclk));
  for (int c = 0; c < nclk; ++c) {
    clk_nets[static_cast<std::size_t>(c)] =
        b.port_in("phi" + std::to_string(c + 1), /*is_clock=*/true);
  }
  // Pre-built inverted controls (shared inverter per clock, created lazily).
  std::vector<NetId> inv_clk(static_cast<std::size_t>(nclk));

  auto control_net = [&](int c) {
    if (!rng.chance(spec.invert_clock_prob)) return clk_nets[static_cast<std::size_t>(c)];
    NetId& inv = inv_clk[static_cast<std::size_t>(c)];
    if (!inv.valid()) inv = b.gate("INVX1", {clk_nets[static_cast<std::size_t>(c)]});
    return inv;
  };

  static const char* kGateMenu[] = {"INVX1",  "NAND2X1", "NOR2X1", "AND2X1",
                                    "OR2X1",  "XOR2X1",  "AOI21X1"};

  // Current frontier of data nets feeding the next stage.
  std::vector<NetId> frontier;
  const int npi = std::max(2, spec.bank_width);
  for (int i = 0; i < npi; ++i) frontier.push_back(b.port_in("d" + std::to_string(i)));

  for (int bank = 0; bank < spec.banks; ++bank) {
    // Random combinational stage over the frontier.
    std::vector<NetId> pool = frontier;
    for (int g = 0; g < spec.gates_per_stage; ++g) {
      const char* cell = kGateMenu[rng.pick(std::size(kGateMenu))];
      const std::size_t nin = b.lib().require(cell) .valid()
                                  ? b.lib().cell(b.lib().require(cell)).ports().size() - 1
                                  : 1;
      std::vector<NetId> ins;
      for (std::size_t k = 0; k < nin; ++k) ins.push_back(pool[rng.pick(pool.size())]);
      pool.push_back(b.gate(cell, ins));
    }

    // Latch bank sampling from the most recent nets.
    std::vector<NetId> next;
    for (int l = 0; l < spec.bank_width; ++l) {
      const int c = static_cast<int>(rng.pick(static_cast<std::size_t>(nclk)));
      const bool transparent = rng.chance(spec.transparent_prob);
      const char* cell = transparent ? (rng.chance(0.5) ? "TLATCH" : "TLATCHN")
                                     : "DFFT";
      const NetId d = pool[pool.size() - 1 - rng.pick(std::min<std::size_t>(pool.size(), 4))];
      next.push_back(b.latch(cell, d, control_net(c),
                             "bank" + std::to_string(bank) + "_" + std::to_string(l)));
    }
    frontier = std::move(next);
  }

  // Tail combinational cone into primary outputs.
  std::vector<NetId> pool = frontier;
  for (int g = 0; g < spec.gates_per_stage / 2; ++g) {
    const char* cell = kGateMenu[rng.pick(std::size(kGateMenu))];
    const std::size_t nin =
        b.lib().cell(b.lib().require(cell)).ports().size() - 1;
    std::vector<NetId> ins;
    for (std::size_t k = 0; k < nin; ++k) ins.push_back(pool[rng.pick(pool.size())]);
    pool.push_back(b.gate(cell, ins));
  }
  for (int i = 0; i < spec.bank_width; ++i) {
    b.port_out_net("q" + std::to_string(i), pool[pool.size() - 1 - static_cast<std::size_t>(i)]);
  }

  return RandomNetwork{b.finish(), std::move(clocks)};
}

}  // namespace hb
