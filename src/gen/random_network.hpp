// Random clustered multi-phase networks for property-based testing: random
// harmonically-related clocks (including double-frequency ones, which give
// synchronising elements several generic instances per overall period),
// random latch banks of mixed element kinds, and random combinational DAGs
// between them.  Generation is fully deterministic in the seed.
#pragma once

#include <memory>

#include "clocks/waveform.hpp"
#include "netlist/design.hpp"

namespace hb {

struct RandomNetworkSpec {
  int num_clocks = 2;        // 1..4
  TimePs base_period = ns(20);
  int banks = 3;             // latch banks (stages)
  int bank_width = 3;        // latches per bank
  int gates_per_stage = 10;  // random gates between adjacent banks
  double transparent_prob = 0.7;  // else edge-triggered
  double invert_clock_prob = 0.25;  // control through an inverter
  std::uint64_t seed = 1;
};

struct RandomNetwork {
  Design design;
  ClockSet clocks;
};

RandomNetwork make_random_network(std::shared_ptr<const Library> lib,
                                  const RandomNetworkSpec& spec);

}  // namespace hb
