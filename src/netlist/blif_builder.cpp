#include "netlist/blif_builder.hpp"

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace hb {
namespace {

/// `.names` beyond this many inputs would need >4096-row truth tables; real
/// technology-mapped BLIF stays well under it (standard cells: <= 3).
constexpr int kMaxLutInputs = 12;

/// Truth-table mask of a cover: bit m is set iff the function is 1 for the
/// input assignment where input i carries bit i of m.  An empty cover is
/// the constant 0; a 0-output plane complements the row set (BLIF: the rows
/// enumerate the OFF-set).
std::vector<std::uint64_t> cover_mask(const BlifNames& n) {
  const int k = static_cast<int>(n.nets.size()) - 1;
  const std::uint32_t rows = 1u << k;
  std::vector<std::uint64_t> mask((rows + 63) / 64, 0);
  const bool on_set = n.cover.empty() || n.cover.front().output == '1';
  for (std::uint32_t m = 0; m < rows; ++m) {
    bool covered = false;
    for (const BlifCover& row : n.cover) {
      bool match = true;
      for (int i = 0; i < k && match; ++i) {
        const char c = row.inputs[static_cast<std::size_t>(i)];
        if (c != '-' && (c == '1') != (((m >> i) & 1u) != 0)) match = false;
      }
      if (match) {
        covered = true;
        break;
      }
    }
    if (covered == on_set) mask[m / 64] |= std::uint64_t{1} << (m % 64);
  }
  return mask;
}

std::string mask_hex(int k, const std::vector<std::uint64_t>& mask) {
  const std::uint32_t bits = 1u << k;
  const std::uint32_t digits = bits < 4 ? 1 : bits / 4;
  std::string out(digits, '0');
  for (std::uint32_t d = 0; d < digits; ++d) {
    const std::uint32_t lo = d * 4;
    int v = 0;
    for (std::uint32_t b = 0; b < 4; ++b) {
      const std::uint32_t bit = lo + b;
      if (bit < bits && ((mask[bit / 64] >> (bit % 64)) & 1u)) v |= 1 << b;
    }
    out[digits - 1 - d] = "0123456789abcdef"[v];
  }
  return out;
}

/// Standard-cell functions recognised in `.names` covers, keyed by the
/// exact input order of the table.  All matched cells are the X1 drive.
struct KnownFn {
  std::uint64_t mask;
  int k;
  const char* cell;
};

const std::vector<KnownFn>& known_functions() {
  static const std::vector<KnownFn> table = [] {
    const auto m = [](int k, auto fn) {
      std::uint64_t v = 0;
      for (int i = 0; i < (1 << k); ++i) {
        if (fn((i >> 0) & 1, (i >> 1) & 1, (i >> 2) & 1)) {
          v |= std::uint64_t{1} << i;
        }
      }
      return v;
    };
    std::vector<KnownFn> t;
    t.push_back({m(1, [](int a, int, int) { return !a; }), 1, "INVX1"});
    t.push_back({m(1, [](int a, int, int) { return a; }), 1, "BUFX1"});
    t.push_back({m(2, [](int a, int b, int) { return a & b; }), 2, "AND2X1"});
    t.push_back({m(2, [](int a, int b, int) { return a | b; }), 2, "OR2X1"});
    t.push_back({m(2, [](int a, int b, int) { return !(a & b); }), 2, "NAND2X1"});
    t.push_back({m(2, [](int a, int b, int) { return !(a | b); }), 2, "NOR2X1"});
    t.push_back({m(2, [](int a, int b, int) { return a ^ b; }), 2, "XOR2X1"});
    t.push_back({m(2, [](int a, int b, int) { return !(a ^ b); }), 2, "XNOR2X1"});
    t.push_back(
        {m(3, [](int a, int b, int c) { return a & b & c; }), 3, "AND3X1"});
    t.push_back(
        {m(3, [](int a, int b, int c) { return !(a & b & c); }), 3, "NAND3X1"});
    t.push_back(
        {m(3, [](int a, int b, int c) { return !(a | b | c); }), 3, "NOR3X1"});
    t.push_back(
        {m(3, [](int a, int b, int c) { return !((a & b) | c); }), 3, "AOI21X1"});
    t.push_back(
        {m(3, [](int a, int b, int c) { return !((a | b) & c); }), 3, "OAI21X1"});
    // MUX2: C selects between A (C=0) and B (C=1).
    t.push_back(
        {m(3, [](int a, int b, int c) { return c ? b : a; }), 3, "MUX2X1"});
    return t;
  }();
  return table;
}

bool mask_bit(const std::vector<std::uint64_t>& mask, std::uint32_t m) {
  return ((mask[m / 64] >> (m % 64)) & 1u) != 0;
}

/// Per-input unateness of a truth table: positive if raising the input can
/// never lower the output, negative for the converse, non-unate otherwise.
/// Inputs the function ignores count as positive (an arbitrary but fixed
/// choice; the arc still exists so the pin stays in the timing graph).
Unate input_unateness(int k, const std::vector<std::uint64_t>& mask, int in) {
  bool can_rise = false, can_fall = false;
  const std::uint32_t rows = 1u << k;
  const std::uint32_t bit = 1u << in;
  for (std::uint32_t m = 0; m < rows; ++m) {
    if (m & bit) continue;
    const bool lo = mask_bit(mask, m), hi = mask_bit(mask, m | bit);
    if (!lo && hi) can_rise = true;
    if (lo && !hi) can_fall = true;
  }
  if (can_rise && can_fall) return Unate::kNone;
  return can_fall ? Unate::kNegative : Unate::kPositive;
}

/// Deterministic LUT cell for a function no standard cell covers.  The
/// delay model scales with fan-in like a gate stack; constants are the
/// arc-free TIE0/TIE1 cells (their outputs carry no transitions, so they
/// contribute no timing events — exactly the semantics of a tied net).
Cell make_lut_cell(const std::string& name, int k,
                   const std::vector<std::uint64_t>& mask) {
  Cell cell(name, CellKind::kCombinational);
  if (k == 0) {
    cell.add_port({"Y", PortDirection::kOutput, PortRole::kData, 0.0});
    cell.set_family(name, 1);
    cell.set_area(1.0);
    return cell;
  }
  for (int i = 0; i < k; ++i) {
    cell.add_port({"I" + std::to_string(i), PortDirection::kInput,
                   PortRole::kData, 2.0 + 0.3 * k});
  }
  const std::uint32_t out =
      cell.add_port({"Y", PortDirection::kOutput, PortRole::kData, 0.0});
  for (int i = 0; i < k; ++i) {
    TimingArc arc;
    arc.from_port = static_cast<std::uint32_t>(i);
    arc.to_port = out;
    arc.unate = input_unateness(k, mask, i);
    arc.intrinsic_rise = 40 + 14 * k + 4 * i;
    arc.intrinsic_fall = 36 + 14 * k + 4 * i;
    arc.slope_rise = 5.6;
    arc.slope_fall = 4.8;
    cell.add_arc(arc);
  }
  cell.set_family(name, 1);
  cell.set_area(3.0 + 1.5 * k);
  return cell;
}

/// Resolved cell for one `.names`; empty name means "diagnosed, skip".
struct NamesRes {
  std::string cell;
};

class Builder {
 public:
  Builder(const BlifFile& file, std::shared_ptr<const Library> lib,
          DiagnosticSink& sink, BlifBuildOptions opts)
      : file_(&file), lib_(std::move(lib)), sink_(&sink),
        opts_(std::move(opts)) {}

  Design run() {
    if (file_->models.empty()) return Design("<empty>", lib_);

    std::size_t top_idx = 0;
    if (!opts_.top.empty()) {
      bool found = false;
      for (std::size_t i = 0; i < file_->models.size(); ++i) {
        if (file_->models[i].name == opts_.top) {
          top_idx = i;
          found = true;
          break;
        }
      }
      if (!found) {
        sink_->add(DiagCode::kParseUnknownName, Severity::kError, SourceLoc{},
                   "unknown top model '" + opts_.top + "'",
                   "using the file's first model instead");
      }
    }

    resolve_names_functions();
    Design design(file_->models[top_idx].name, lib_);
    declare_modules(design);
    detect_cycles();
    for (std::size_t mi = 0; mi < file_->models.size(); ++mi) {
      if (module_of_[mi].valid()) fill_module(design, mi);
    }
    const ModuleId top = module_of_[top_idx];
    if (top.valid()) design.set_top(top);
    return design;
  }

 private:
  /// Pre-scan every `.names` so LUT/TIE cells can be synthesised into an
  /// extended library before the Design (which owns its library) exists.
  void resolve_names_functions() {
    std::vector<std::pair<std::string, Cell>> synth;
    names_res_.resize(file_->models.size());
    for (std::size_t mi = 0; mi < file_->models.size(); ++mi) {
      const BlifModel& model = file_->models[mi];
      names_res_[mi].resize(model.names.size());
      for (std::size_t ni = 0; ni < model.names.size(); ++ni) {
        const BlifNames& n = model.names[ni];
        const int k = static_cast<int>(n.nets.size()) - 1;
        if (k > kMaxLutInputs) {
          sink_->add(DiagCode::kParseStructure, Severity::kError, n.loc,
                     "`.names` with " + std::to_string(k) +
                         " inputs exceeds the " +
                         std::to_string(kMaxLutInputs) + "-input limit",
                     "decompose the cover or use `.subckt`");
          continue;
        }
        const std::vector<std::uint64_t> mask = cover_mask(n);
        std::string cell;
        if (k == 0) {
          cell = mask_bit(mask, 0) ? "TIE1" : "TIE0";
        } else if (k <= 3) {
          for (const KnownFn& fn : known_functions()) {
            if (fn.k == k && fn.mask == mask[0] &&
                lib_->find(fn.cell).valid()) {
              cell = fn.cell;
              break;
            }
          }
        }
        if (cell.empty() || k == 0) {
          if (cell.empty()) cell = "LUT" + std::to_string(k) + "_" + mask_hex(k, mask);
          if (!lib_->find(cell).valid()) {
            bool queued = false;
            for (const auto& s : synth) queued = queued || s.first == cell;
            if (!queued) synth.emplace_back(cell, make_lut_cell(cell, k, mask));
          }
        }
        names_res_[mi][ni].cell = std::move(cell);
      }
    }
    if (!synth.empty()) {
      auto ext = std::make_shared<Library>(*lib_);
      for (auto& s : synth) ext->add_cell(std::move(s.second));
      lib_ = std::move(ext);
    }
  }

  void declare_modules(Design& design) {
    module_of_.assign(file_->models.size(), ModuleId());
    for (std::size_t mi = 0; mi < file_->models.size(); ++mi) {
      const BlifModel& model = file_->models[mi];
      if (design.find_module(model.name).valid()) continue;  // dup: diagnosed
      const ModuleId id = design.add_module(model.name);
      module_of_[mi] = id;
      model_by_name_.emplace(model.name, mi);
      Module& mod = design.module_mut(id);
      for (const BlifModel::PortDecl& p : model.ports) {
        const std::uint32_t port = mod.add_port(p.name, p.dir, p.is_clock);
        mod.bind_port(port, mod.add_net(p.name));
      }
    }
  }

  /// Mark `.subckt`s whose instantiation would close a hierarchy cycle;
  /// they are skipped (with a diagnostic) so downstream recursion over the
  /// instantiates relation always terminates.
  void detect_cycles() {
    std::vector<char> color(file_->models.size(), 0);  // 0 new 1 open 2 done
    std::function<void(std::size_t)> visit = [&](std::size_t mi) {
      color[mi] = 1;
      const BlifModel& model = file_->models[mi];
      for (std::uint32_t si = 0; si < model.subckts.size(); ++si) {
        const BlifSubckt& s = model.subckts[si];
        if (s.is_gate) continue;
        const auto it = model_by_name_.find(s.model);
        if (it == model_by_name_.end()) continue;
        if (color[it->second] == 1) {
          cyclic_.insert({mi, si});
        } else if (color[it->second] == 0) {
          visit(it->second);
        }
      }
      color[mi] = 2;
    };
    for (std::size_t mi = 0; mi < file_->models.size(); ++mi) {
      if (module_of_[mi].valid() && color[mi] == 0) visit(mi);
    }
  }

  NetId net_of(Module& mod, const std::string& name) {
    const NetId id = mod.find_net(name);
    return id.valid() ? id : mod.add_net(name);
  }

  std::string uniq_inst_name(const Module& mod, std::string base) {
    while (mod.find_inst(base).valid()) base += "_";
    return base;
  }

  void fill_module(Design& design, std::size_t mi) {
    const BlifModel& model = file_->models[mi];
    Module& mod = design.module_mut(module_of_[mi]);
    for (const BlifModel::PrimRef& ref : model.order) {
      switch (ref.kind) {
        case BlifModel::PrimRef::kNames:
          place_names(design, mod, model.names[ref.index],
                      names_res_[mi][ref.index]);
          break;
        case BlifModel::PrimRef::kLatch:
          place_latch(design, mod, model, model.latches[ref.index]);
          break;
        case BlifModel::PrimRef::kSubckt:
          place_subckt(design, mod, mi, ref.index);
          break;
      }
    }
  }

  void place_names(Design& design, Module& mod, const BlifNames& n,
                   const NamesRes& res) {
    if (res.cell.empty()) return;  // diagnosed during resolution
    const CellId cid = design.lib().require(res.cell);
    const Cell& cell = design.lib().cell(cid);
    const std::string base = n.cname.empty() ? n.nets.back() : n.cname;
    const InstId inst = mod.add_cell_inst(uniq_inst_name(mod, base), cid,
                                          cell.ports().size());
    // Cover inputs bind to the cell's input ports in order, the cover
    // output to its (sole) output — the pin-expansion step: each bound pin
    // becomes one timing-graph node.
    std::uint32_t next_in = 0;
    for (std::size_t i = 0; i + 1 < n.nets.size(); ++i) {
      while (cell.port(next_in).direction != PortDirection::kInput) ++next_in;
      mod.connect(inst, next_in++, net_of(mod, n.nets[i]));
    }
    for (std::uint32_t p = 0; p < cell.ports().size(); ++p) {
      if (cell.port(p).direction == PortDirection::kOutput) {
        mod.connect(inst, p, net_of(mod, n.nets.back()));
        break;
      }
    }
  }

  void place_latch(Design& design, Module& mod, const BlifModel& model,
                   const BlifLatch& l) {
    const char* cell_name = nullptr;
    switch (l.type) {
      case BlifLatchType::kFallingEdge: cell_name = "DFFT"; break;
      case BlifLatchType::kRisingEdge: cell_name = "DFFL"; break;
      case BlifLatchType::kActiveHigh: cell_name = "TLATCH"; break;
      case BlifLatchType::kActiveLow: cell_name = "TLATCHN"; break;
      case BlifLatchType::kAlways:
        sink_->add(DiagCode::kParseStructure, Severity::kWarning, l.loc,
                   "always-transparent latch treated as active-high",
                   "type `as` has no synchronising-element equivalent");
        cell_name = "TLATCH";
        break;
      case BlifLatchType::kUnspecified:
        // The SIS default for untyped latches is a rising-edge flip-flop.
        cell_name = "DFFL";
        break;
    }
    const CellId cid = design.lib().find(cell_name);
    if (!cid.valid()) {
      sink_->add(DiagCode::kParseUnknownName, Severity::kError, l.loc,
                 std::string("library has no cell '") + cell_name +
                     "' to map this latch onto");
      return;
    }
    std::string control = l.control;
    if (control.empty()) {
      const BlifModel::PortDecl* clock = nullptr;
      bool unique = true;
      for (const BlifModel::PortDecl& p : model.ports) {
        if (!p.is_clock) continue;
        unique = clock == nullptr;
        clock = &p;
      }
      if (clock == nullptr || !unique) {
        sink_->add(DiagCode::kParseUnknownName, Severity::kError, l.loc,
                   clock == nullptr
                       ? "latch has no control net and the model declares no "
                         "`.clock`"
                       : "latch has no control net and the model declares "
                         "several `.clock`s",
                   "add `<type> <control>` to the .latch");
        return;
      }
      control = clock->name;
    }
    const Cell& cell = design.lib().cell(cid);
    const SyncSpec& sync = cell.sync();
    const std::string base = l.cname.empty() ? l.output : l.cname;
    const InstId inst = mod.add_cell_inst(uniq_inst_name(mod, base), cid,
                                          cell.ports().size());
    mod.connect(inst, sync.data_in, net_of(mod, l.input));
    mod.connect(inst, sync.control, net_of(mod, control));
    mod.connect(inst, sync.data_out, net_of(mod, l.output));
  }

  void place_subckt(Design& design, Module& mod, std::size_t mi,
                    std::uint32_t si) {
    const BlifSubckt& s = file_->models[mi].subckts[si];
    const auto sub_it =
        s.is_gate ? model_by_name_.end() : model_by_name_.find(s.model);
    CellId cell =
        sub_it == model_by_name_.end() ? design.lib().find(s.model) : CellId();

    // `.gate` names from real flows are often liberty-style spellings of a
    // loadable library's cells ("nand2_x1" for "NAND2X1"); resolve through
    // the alias rules and diagnose the substitution rather than reject it.
    if (s.is_gate && !cell.valid()) {
      cell = design.lib().find_liberty(s.model);
      if (cell.valid()) {
        sink_->add(DiagCode::kParseUnknownName, Severity::kWarning, s.loc,
                   "gate '" + s.model + "' is not a cell of library '" +
                       design.lib().name() + "'; resolved to '" +
                       design.lib().cell(cell).name() +
                       "' via liberty-style alias");
      }
    }

    if (sub_it == model_by_name_.end() && !cell.valid()) {
      sink_->add(DiagCode::kParseUnknownName, Severity::kError, s.loc,
                 std::string("unknown ") +
                     (s.is_gate ? "library cell '" : "model or cell '") +
                     s.model + "'");
      return;
    }
    if (sub_it != model_by_name_.end() && cyclic_.count({mi, si}) != 0) {
      sink_->add(DiagCode::kParseStructure, Severity::kError, s.loc,
                 "instantiating model '" + s.model +
                     "' here closes a hierarchy cycle");
      return;
    }

    // Derive a stable default name from the actual bound to the first
    // output formal, falling back to the model name.
    std::string base = s.cname;
    if (base.empty()) {
      for (const auto& [formal, actual] : s.conns) {
        const bool is_out =
            cell.valid()
                ? [&] {
                    const auto p = design.lib().cell(cell).find_port(formal);
                    return p && design.lib().cell(cell).port(*p).direction ==
                                    PortDirection::kOutput;
                  }()
                : [&] {
                    const Module& sub =
                        design.module(module_of_[sub_it->second]);
                    const auto p = sub.find_port(formal);
                    return p &&
                           sub.port(*p).direction == PortDirection::kOutput;
                  }();
        if (is_out) {
          base = actual;
          break;
        }
      }
      if (base.empty()) base = s.model + "_" + std::to_string(si);
    }

    InstId inst;
    if (cell.valid()) {
      inst = mod.add_cell_inst(uniq_inst_name(mod, base), cell,
                               design.lib().cell(cell).ports().size());
    } else {
      const Module& sub = design.module(module_of_[sub_it->second]);
      inst = mod.add_module_inst(uniq_inst_name(mod, base),
                                 module_of_[sub_it->second],
                                 sub.ports().size());
    }
    std::set<std::uint32_t> connected;
    for (const auto& [formal, actual] : s.conns) {
      std::optional<std::uint32_t> port;
      if (cell.valid()) {
        port = design.lib().cell(cell).find_port(formal);
      } else {
        port = design.module(module_of_[sub_it->second]).find_port(formal);
      }
      if (!port) {
        sink_->add(DiagCode::kParseUnknownName, Severity::kError, s.loc,
                   "no port '" + formal + "' on '" + s.model + "'");
        continue;
      }
      if (!connected.insert(*port).second) {
        sink_->add(DiagCode::kParseDuplicateName, Severity::kError, s.loc,
                   "port '" + formal + "' of '" + s.model +
                       "' connected twice");
        continue;
      }
      mod.connect(inst, *port, net_of(mod, actual));
    }
  }

  const BlifFile* file_;
  std::shared_ptr<const Library> lib_;
  DiagnosticSink* sink_;
  BlifBuildOptions opts_;
  std::vector<std::vector<NamesRes>> names_res_;
  std::vector<ModuleId> module_of_;
  std::unordered_map<std::string, std::size_t> model_by_name_;
  std::set<std::pair<std::size_t, std::uint32_t>> cyclic_;
};

}  // namespace

Design build_blif_design(const BlifFile& file,
                         std::shared_ptr<const Library> lib,
                         DiagnosticSink& sink, BlifBuildOptions opts) {
  return Builder(file, std::move(lib), sink, std::move(opts)).run();
}

ClockSet default_blif_clocks(const Design& design, TimePs period) {
  std::vector<const ModulePort*> clocks;
  for (const ModulePort& p : design.top().ports()) {
    if (p.is_clock) clocks.push_back(&p);
  }
  if (clocks.empty()) {
    throw Error("design '" + design.name() +
                "' has no clock ports; supply a timing spec");
  }
  ClockSet set;
  const TimePs n = static_cast<TimePs>(clocks.size());
  const TimePs width = std::max<TimePs>(1, period / (2 * n));
  for (std::size_t i = 0; i < clocks.size(); ++i) {
    const TimePs rise = period * static_cast<TimePs>(i) / n;
    set.add_simple_clock(clocks[i]->name, period, rise, rise + width);
  }
  return set;
}

}  // namespace hb
