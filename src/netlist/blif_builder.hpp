// BLIF AST -> Design elaboration.
//
// Expands every `.names`/`.latch`/`.subckt`/`.gate` primitive into a
// library-cell or submodule instance whose pins become individual timing-
// graph nodes, following the pin-expansion pattern of esta's
// BlifTimingGraphBuilder (SNIPPETS.md Snippet 1):
//
//   * `.gate` / `.subckt` map directly onto library cells / sibling models;
//   * `.names` covers are canonicalised to a truth-table mask and matched
//     against the standard-cell functions; unmatched functions synthesise a
//     deterministic LUT cell (per-input unateness derived from the mask)
//     into a copy of the library, and constants become TIE0/TIE1 cells;
//   * `.latch` maps onto the paper's synchronising elements: fe -> DFFT
//     (trailing edge), re -> DFFL (leading edge), ah -> TLATCH,
//     al -> TLATCHN; a latch without a control net binds to the model's
//     sole `.clock` port.
//
// Problems (unknown cells, unmappable latches, hierarchy cycles, covers
// beyond the LUT input cap) become sink diagnostics and the offending
// primitive is skipped, mirroring the recovering-parser contract.
#pragma once

#include <memory>
#include <string>

#include "clocks/waveform.hpp"
#include "netlist/blif_parser.hpp"
#include "netlist/design.hpp"

namespace hb {

struct BlifBuildOptions {
  /// Model to use as the top; empty selects the file's first model.
  std::string top;
};

/// Elaborate a parsed BLIF file against `lib`.  The Design's library is
/// `lib` itself unless `.names` functions force synthesised LUT/TIE cells,
/// in which case it is an extended copy.
Design build_blif_design(const BlifFile& file,
                         std::shared_ptr<const Library> lib,
                         DiagnosticSink& sink, BlifBuildOptions opts = {});

/// Fallback clocks for BLIF inputs analysed without a timing spec: one
/// simple clock per top-level clock port, pulses staggered evenly across
/// `period` so multi-clock designs stay analysable out of the box.  Throws
/// hb::Error when the design has no clock ports.
ClockSet default_blif_clocks(const Design& design, TimePs period);

}  // namespace hb
