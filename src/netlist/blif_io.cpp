#include "netlist/blif_io.hpp"

#include <ostream>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "netlist/blif_builder.hpp"
#include "netlist/blif_parser.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"

namespace hb {
namespace {

/// Latch-type field for the canonical synchronising cells; nullptr for
/// every other cell (emitted as `.gate` instead).
const char* latch_type_of(const Cell& cell) {
  if (!cell.has_sync() || cell.ports().size() != 3) return nullptr;
  if (cell.name() == "DFFT") return "fe";
  if (cell.name() == "DFFL") return "re";
  if (cell.name() == "TLATCH") return "ah";
  if (cell.name() == "TLATCHN") return "al";
  return nullptr;
}

/// BLIF identifier for every net of a module.  Port-bound nets take the
/// port's name (the BLIF port identifier *is* the net); the rest keep
/// their own names, uniquified against the used set.  Net names never
/// appear in analysis reports, so uniquification cannot perturb results.
std::vector<std::string> net_identifiers(const Module& mod) {
  std::vector<std::string> ids(mod.num_nets());
  std::unordered_set<std::string> used;
  for (const ModulePort& p : mod.ports()) {
    if (!p.net.valid()) continue;
    std::string& id = ids[p.net.index()];
    if (!id.empty()) {
      throw Error("net '" + mod.net(p.net).name + "' of module '" +
                  mod.name() + "' binds several ports; not expressible in BLIF");
    }
    id = p.name;
    used.insert(p.name);
  }
  for (std::uint32_t n = 0; n < mod.num_nets(); ++n) {
    std::string& id = ids[n];
    if (!id.empty()) continue;
    const std::string& name = mod.net(NetId(n)).name;
    std::string candidate = name.empty() ? "n" + std::to_string(n) : name;
    for (int suffix = 2; used.count(candidate) != 0; ++suffix) {
      candidate = name + "_" + std::to_string(suffix);
    }
    used.insert(candidate);
    id = std::move(candidate);
  }
  return ids;
}

void emit_ports(const Module& mod, std::ostream& os) {
  // Maximal same-kind runs in original port order, so the reader recreates
  // ports (and therefore timing-graph node numbering) in the same order.
  constexpr std::size_t kNamesPerLine = 10;
  std::size_t i = 0;
  while (i < mod.ports().size()) {
    const ModulePort& first = mod.port(static_cast<std::uint32_t>(i));
    const char* directive =
        first.is_clock ? ".clock"
        : first.direction == PortDirection::kInput ? ".inputs"
                                                   : ".outputs";
    os << directive;
    std::size_t on_line = 0;
    for (; i < mod.ports().size(); ++i) {
      const ModulePort& p = mod.port(static_cast<std::uint32_t>(i));
      if (p.is_clock != first.is_clock || p.direction != first.direction) break;
      if (on_line == kNamesPerLine) {
        os << " \\\n  ";
        on_line = 0;
      }
      os << ' ' << p.name;
      ++on_line;
    }
    os << '\n';
  }
}

void save_model(const Design& design, const Module& mod,
                const std::string& model_name, std::ostream& os) {
  const std::vector<std::string> ids = net_identifiers(mod);
  const auto id_of = [&](NetId n) -> const std::string& {
    return ids[n.index()];
  };

  os << ".model " << model_name << "\n";
  emit_ports(mod, os);
  for (const Instance& inst : mod.insts()) {
    if (inst.is_cell()) {
      const Cell& cell = design.lib().cell(inst.cell);
      const char* latch_type = latch_type_of(cell);
      const SyncSpec* sync = cell.has_sync() ? &cell.sync() : nullptr;
      if (latch_type != nullptr && inst.conn[sync->data_in].valid() &&
          inst.conn[sync->control].valid() &&
          inst.conn[sync->data_out].valid()) {
        os << ".latch " << id_of(inst.conn[sync->data_in]) << ' '
           << id_of(inst.conn[sync->data_out]) << ' ' << latch_type << ' '
           << id_of(inst.conn[sync->control]) << " 2\n";
      } else {
        os << ".gate " << cell.name();
        for (std::uint32_t p = 0; p < inst.conn.size(); ++p) {
          if (!inst.conn[p].valid()) continue;
          os << ' ' << cell.port(p).name << '=' << id_of(inst.conn[p]);
        }
        os << '\n';
      }
    } else {
      const Module& sub = design.module(inst.module);
      os << ".subckt " << sub.name();
      for (std::uint32_t p = 0; p < inst.conn.size(); ++p) {
        if (!inst.conn[p].valid()) continue;
        os << ' ' << sub.port(p).name << '=' << id_of(inst.conn[p]);
      }
      os << '\n';
    }
    os << ".cname " << inst.name << "\n";
  }
  os << ".end\n";
}

}  // namespace

void save_blif(const Design& design, std::ostream& os) {
  if (!design.top_id().valid()) throw Error("design has no top module");
  // Top first (the BLIF convention the reader follows: first model = top,
  // emitted under the design's name so it survives the round trip), then
  // the remaining modules in declaration order.
  save_model(design, design.top(), design.name(), os);
  for (std::uint32_t m = 0; m < design.num_modules(); ++m) {
    if (ModuleId(m) == design.top_id()) continue;
    save_model(design, design.module(ModuleId(m)),
               design.module(ModuleId(m)).name(), os);
  }
}

std::string blif_to_string(const Design& design) {
  std::ostringstream os;
  save_blif(design, os);
  return os.str();
}

Design load_blif(std::istream& is, std::shared_ptr<const Library> lib,
                 DiagnosticSink& sink) {
  const BlifFile file = parse_blif(is, sink);
  return build_blif_design(file, std::move(lib), sink);
}

Design blif_design_from_string(const std::string& text,
                               std::shared_ptr<const Library> lib,
                               DiagnosticSink& sink) {
  std::istringstream is(text);
  return load_blif(is, std::move(lib), sink);
}

Design load_blif(std::istream& is, std::shared_ptr<const Library> lib) {
  DiagnosticSink sink;
  Design design = load_blif(is, std::move(lib), sink);
  if (sink.has_errors()) raise_first_error("blif parse error", sink);
  return design;
}

Design blif_design_from_string(const std::string& text,
                               std::shared_ptr<const Library> lib) {
  std::istringstream is(text);
  return load_blif(is, std::move(lib));
}

bool is_blif_path(const std::string& path) {
  const std::string ext = ".blif";
  if (path.size() < ext.size()) return false;
  for (std::size_t i = 0; i < ext.size(); ++i) {
    const char c = path[path.size() - ext.size() + i];
    const char lower = c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
    if (lower != ext[i]) return false;
  }
  return true;
}

}  // namespace hb
