// BLIF serialisation and one-call load — the netlist_io counterpart for the
// Berkeley Logic Interchange Format (subset documented in docs/FRONTEND.md).
//
// The writer emits a dialect the reader maps back onto the *same* Design:
// library cells become `.gate`, the canonical synchronising cells
// (DFFT/DFFL/TLATCH/TLATCHN) become `.latch`, submodules become sibling
// `.model`s instantiated via `.subckt`, and every primitive is followed by
// an ABC-style `.cname` carrying the instance name.  Ports are emitted as
// maximal same-kind `.inputs`/`.outputs`/`.clock` runs in original port
// order.  Together these make load_blif(save_blif(d)) reproduce d's
// instance order, port order and names exactly, so analysis reports are
// byte-identical (the round-trip differential suite enforces this).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "netlist/design.hpp"

namespace hb {

class DiagnosticSink;
struct BlifBuildOptions;

/// Serialise to BLIF; throws hb::Error for designs BLIF cannot express
/// (a net bound to more than one module port).
void save_blif(const Design& design, std::ostream& os);
std::string blif_to_string(const Design& design);

/// Recovering parse + elaborate: every problem lands in `sink` and the
/// result holds whatever parsed cleanly; callers must check
/// sink.has_errors() before trusting it.
Design load_blif(std::istream& is, std::shared_ptr<const Library> lib,
                 DiagnosticSink& sink);
Design blif_design_from_string(const std::string& text,
                               std::shared_ptr<const Library> lib,
                               DiagnosticSink& sink);

/// Fail-fast variants: throw hb::Error on the first error-severity finding.
Design load_blif(std::istream& is, std::shared_ptr<const Library> lib);
Design blif_design_from_string(const std::string& text,
                               std::shared_ptr<const Library> lib);

/// True when `path` names a BLIF file (".blif" extension, case-insensitive).
bool is_blif_path(const std::string& path);

}  // namespace hb
