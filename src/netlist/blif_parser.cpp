#include "netlist/blif_parser.hpp"

#include <sstream>
#include <unordered_set>

namespace hb {
namespace {

/// A token tagged with the physical line it came from; BLIF logical lines
/// can span several physical lines via `\` continuations.
struct Tok {
  std::string text;
  int line = 0;
  int col = 0;
};

/// Statement-level parse failure; caught by the statement loop, which
/// records the diagnostic and resynchronises at the next logical line.
struct ParseAbort {
  Diagnostic diag;
};

[[noreturn]] void fail(DiagCode code, int line, int col, std::string msg,
                       std::string hint = {}) {
  throw ParseAbort{
      Diagnostic{code, Severity::kError, SourceLoc{line, col}, std::move(msg),
                 std::move(hint)}};
}

class BlifParser {
 public:
  explicit BlifParser(DiagnosticSink& sink) : sink_(&sink) {}

  BlifFile run(std::istream& is) {
    std::vector<Tok> toks;
    while (next_logical_line(is, toks)) {
      if (toks.empty()) continue;
      try {
        dispatch(toks);
      } catch (const ParseAbort& abort) {
        sink_->add(abort.diag);
      }
    }
    if (in_model_) {
      // Lenient like every BLIF consumer: a missing final `.end` is worth
      // flagging but does not invalidate the model.
      sink_->add(DiagCode::kParseUnterminated, Severity::kWarning,
                 SourceLoc{lineno_, 0},
                 "missing `.end` at end of file", "end models with `.end`");
    }
    if (file_.models.empty()) {
      sink_->add(DiagCode::kParseEmptyInput, Severity::kFatal, SourceLoc{},
                 "input declares no model",
                 "BLIF files start with `.model <name>`");
    }
    return std::move(file_);
  }

 private:
  /// Read one logical line: physical lines joined while each ends with a
  /// `\` continuation (after comment stripping).  Token columns point into
  /// the physical line each token appeared on.
  bool next_logical_line(std::istream& is, std::vector<Tok>& out) {
    out.clear();
    std::string line;
    bool any = false;
    while (std::getline(is, line)) {
      any = true;
      ++lineno_;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      while (!line.empty() &&
             (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
        line.pop_back();
      }
      bool continued = false;
      if (!line.empty() && line.back() == '\\') {
        continued = true;
        line.pop_back();
      }
      for (Token& t : split_tokens(line)) {
        out.push_back(Tok{std::move(t.text), lineno_, t.col});
      }
      if (!continued) return true;
    }
    return any || !out.empty();
  }

  BlifModel& model() { return file_.models.back(); }

  void dispatch(const std::vector<Tok>& toks) {
    const Tok& head = toks[0];
    if (head.text[0] != '.') {
      // Bare line: only legal as a cover row of an open `.names`.
      if (names_open_) {
        cover_row(toks);
        return;
      }
      fail(DiagCode::kParseSyntax, head.line, head.col,
           "expected a `.` directive",
           "truth-table rows are only legal after `.names`");
    }
    // Any directive other than a cover row ends the open `.names` table.
    names_open_ = false;

    const std::string& kw = head.text;
    if (kw == ".model") {
      begin_model(toks);
    } else if (!in_model_) {
      fail(DiagCode::kParseStructure, head.line, head.col,
           "statement outside a model: " + kw,
           "open a model with `.model <name>` first");
    } else if (kw == ".inputs") {
      declare_ports(toks, PortDirection::kInput, false);
    } else if (kw == ".outputs") {
      declare_ports(toks, PortDirection::kOutput, false);
    } else if (kw == ".clock") {
      declare_ports(toks, PortDirection::kInput, true);
    } else if (kw == ".names") {
      begin_names(toks);
    } else if (kw == ".latch") {
      latch(toks);
    } else if (kw == ".subckt" || kw == ".gate") {
      subckt(toks, /*is_gate=*/kw == ".gate");
    } else if (kw == ".cname") {
      cname(toks);
    } else if (kw == ".end") {
      in_model_ = false;
    } else {
      // Unknown dot-directives (`.default_input_arrival`, `.area`, ...) are
      // common in SIS-era files and carry nothing the analyser needs.
      sink_->add(DiagCode::kParseUnknownKeyword, Severity::kWarning,
                 SourceLoc{head.line, head.col},
                 "ignoring unsupported directive " + kw);
    }
  }

  void begin_model(const std::vector<Tok>& toks) {
    if (in_model_) {
      sink_->add(DiagCode::kParseUnterminated, Severity::kError,
                 SourceLoc{toks[0].line, toks[0].col},
                 "missing `.end` before `.model`",
                 "previous model closed implicitly");
    }
    std::string name;
    if (toks.size() != 2) {
      // Recover with a placeholder so following statements still attach.
      name = "<anon" + std::to_string(file_.models.size()) + ">";
      sink_->add(DiagCode::kParseSyntax, Severity::kError,
                 SourceLoc{toks[0].line, toks[0].col},
                 "expected `.model <name>`");
    } else {
      name = toks[1].text;
      for (const BlifModel& m : file_.models) {
        if (m.name == name) {
          sink_->add(DiagCode::kParseDuplicateName, Severity::kError,
                     SourceLoc{toks[1].line, toks[1].col},
                     "duplicate model '" + name + "'");
          break;
        }
      }
    }
    BlifModel m;
    m.name = std::move(name);
    m.loc = SourceLoc{toks[0].line, toks[0].col};
    file_.models.push_back(std::move(m));
    port_names_.clear();
    in_model_ = true;
  }

  void declare_ports(const std::vector<Tok>& toks, PortDirection dir,
                     bool is_clock) {
    for (std::size_t i = 1; i < toks.size(); ++i) {
      if (!port_names_.insert(toks[i].text).second) {
        sink_->add(DiagCode::kParseDuplicateName, Severity::kError,
                   SourceLoc{toks[i].line, toks[i].col},
                   "duplicate port '" + toks[i].text + "'");
        continue;
      }
      model().ports.push_back(BlifModel::PortDecl{
          toks[i].text, dir, is_clock, SourceLoc{toks[i].line, toks[i].col}});
    }
  }

  void begin_names(const std::vector<Tok>& toks) {
    if (toks.size() < 2) {
      fail(DiagCode::kParseSyntax, toks[0].line, toks[0].col,
           "expected `.names <input...> <output>`");
    }
    BlifNames n;
    for (std::size_t i = 1; i < toks.size(); ++i) n.nets.push_back(toks[i].text);
    n.loc = SourceLoc{toks[0].line, toks[0].col};
    model().order.push_back(
        {BlifModel::PrimRef::kNames,
         static_cast<std::uint32_t>(model().names.size())});
    model().names.push_back(std::move(n));
    names_open_ = true;
  }

  void cover_row(const std::vector<Tok>& toks) {
    BlifNames& n = model().names.back();
    const std::size_t num_inputs = n.nets.size() - 1;
    BlifCover row;
    const Tok* out_tok = nullptr;
    if (num_inputs == 0) {
      if (toks.size() != 1) {
        fail(DiagCode::kParseSyntax, toks[0].line, toks[0].col,
             "constant cover row must be a single output value");
      }
      out_tok = &toks[0];
    } else {
      if (toks.size() != 2) {
        fail(DiagCode::kParseSyntax, toks[0].line, toks[0].col,
             "expected `<input-plane> <output>`");
      }
      row.inputs = toks[0].text;
      if (row.inputs.size() != num_inputs) {
        fail(DiagCode::kParseSyntax, toks[0].line, toks[0].col,
             "input plane has " + std::to_string(row.inputs.size()) +
                 " columns, `.names` lists " + std::to_string(num_inputs) +
                 " inputs");
      }
      for (std::size_t i = 0; i < row.inputs.size(); ++i) {
        const char c = row.inputs[i];
        if (c != '0' && c != '1' && c != '-') {
          fail(DiagCode::kParseSyntax, toks[0].line,
               toks[0].col + static_cast<int>(i),
               std::string("bad input-plane character '") + c + "'",
               "use 0, 1 or -");
        }
      }
      out_tok = &toks[1];
    }
    if (out_tok->text != "0" && out_tok->text != "1") {
      fail(DiagCode::kParseSyntax, out_tok->line, out_tok->col,
           "bad output value '" + out_tok->text + "'", "use 0 or 1");
    }
    row.output = out_tok->text[0];
    if (!n.cover.empty() && n.cover.front().output != row.output) {
      fail(DiagCode::kParseSyntax, out_tok->line, out_tok->col,
           "mixed output values in one cover",
           "every row of a `.names` table must share the output value");
    }
    n.cover.push_back(std::move(row));
  }

  void latch(const std::vector<Tok>& toks) {
    const std::size_t argc = toks.size() - 1;
    if (argc < 2 || argc > 5) {
      fail(DiagCode::kParseSyntax, toks[0].line, toks[0].col,
           "expected `.latch <input> <output> [<type> <control>] [<init>]`");
    }
    BlifLatch l;
    l.input = toks[1].text;
    l.output = toks[2].text;
    l.loc = SourceLoc{toks[0].line, toks[0].col};
    // argc 2: in out; 3: in out init; 4: in out type control;
    // 5: in out type control init.
    if (argc == 4 || argc == 5) {
      const Tok& type = toks[3];
      if (type.text == "fe") {
        l.type = BlifLatchType::kFallingEdge;
      } else if (type.text == "re") {
        l.type = BlifLatchType::kRisingEdge;
      } else if (type.text == "ah") {
        l.type = BlifLatchType::kActiveHigh;
      } else if (type.text == "al") {
        l.type = BlifLatchType::kActiveLow;
      } else if (type.text == "as") {
        l.type = BlifLatchType::kAlways;
      } else {
        fail(DiagCode::kParseSyntax, type.line, type.col,
             "bad latch type '" + type.text + "'",
             "use fe, re, ah, al or as");
      }
      if (toks[4].text != "NIL") l.control = toks[4].text;
    }
    if (argc == 3 || argc == 5) {
      const Tok& init = toks.back();
      if (init.text.size() != 1 || init.text[0] < '0' || init.text[0] > '3') {
        fail(DiagCode::kParseBadNumber, init.line, init.col,
             "bad latch initial value '" + init.text + "'",
             "use 0, 1, 2 (don't care) or 3 (unknown)");
      }
      l.init = init.text[0] - '0';
    }
    model().order.push_back(
        {BlifModel::PrimRef::kLatch,
         static_cast<std::uint32_t>(model().latches.size())});
    model().latches.push_back(std::move(l));
  }

  void subckt(const std::vector<Tok>& toks, bool is_gate) {
    if (toks.size() < 3) {
      fail(DiagCode::kParseSyntax, toks[0].line, toks[0].col,
           "expected `" + toks[0].text + " <name> <formal>=<actual>...`");
    }
    BlifSubckt s;
    s.model = toks[1].text;
    s.is_gate = is_gate;
    s.loc = SourceLoc{toks[0].line, toks[0].col};
    for (std::size_t i = 2; i < toks.size(); ++i) {
      const auto eq = toks[i].text.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == toks[i].text.size()) {
        fail(DiagCode::kParseSyntax, toks[i].line, toks[i].col,
             "expected <formal>=<actual>, got '" + toks[i].text + "'");
      }
      s.conns.emplace_back(toks[i].text.substr(0, eq),
                           toks[i].text.substr(eq + 1));
    }
    model().order.push_back(
        {BlifModel::PrimRef::kSubckt,
         static_cast<std::uint32_t>(model().subckts.size())});
    model().subckts.push_back(std::move(s));
  }

  void cname(const std::vector<Tok>& toks) {
    if (toks.size() != 2) {
      fail(DiagCode::kParseSyntax, toks[0].line, toks[0].col,
           "expected `.cname <name>`");
    }
    if (model().order.empty()) {
      fail(DiagCode::kParseStructure, toks[0].line, toks[0].col,
           "`.cname` with no preceding primitive",
           "place it directly after a .names/.latch/.subckt/.gate");
    }
    const BlifModel::PrimRef ref = model().order.back();
    switch (ref.kind) {
      case BlifModel::PrimRef::kNames:
        model().names[ref.index].cname = toks[1].text;
        break;
      case BlifModel::PrimRef::kLatch:
        model().latches[ref.index].cname = toks[1].text;
        break;
      case BlifModel::PrimRef::kSubckt:
        model().subckts[ref.index].cname = toks[1].text;
        break;
    }
  }

  DiagnosticSink* sink_;
  BlifFile file_;
  std::unordered_set<std::string> port_names_;
  int lineno_ = 0;
  bool in_model_ = false;
  bool names_open_ = false;
};

}  // namespace

BlifFile parse_blif(std::istream& is, DiagnosticSink& sink) {
  return BlifParser(sink).run(is);
}

BlifFile parse_blif_string(const std::string& text, DiagnosticSink& sink) {
  std::istringstream is(text);
  return parse_blif(is, sink);
}

}  // namespace hb
