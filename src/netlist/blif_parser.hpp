// Recovering BLIF tokenizer and parser.
//
// Parses the Berkeley Logic Interchange Format subset documented in
// docs/FRONTEND.md into a faithful AST (BlifFile).  Like the native netlist
// parser, it never dies on the first problem: every malformed statement
// becomes a Diagnostic in the caller's sink and parsing resynchronises at
// the next statement, so one run surfaces every finding in the file.
//
// The AST keeps source locations and the exact primitive declaration order;
// BlifDesignBuilder (blif_builder.hpp) turns it into a Design.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <utility>
#include <vector>

#include "netlist/library.hpp"
#include "util/diagnostics.hpp"

namespace hb {

/// One PLA cover row of a `.names` truth table: the input plane over
/// {0,1,-} and the output value.  For zero-input constants the input plane
/// is empty and only the output carries information.
struct BlifCover {
  std::string inputs;
  char output = '1';
};

/// `.names <in...> <out>` logic function.
struct BlifNames {
  std::vector<std::string> nets;  // inputs then, last, the output
  std::vector<BlifCover> cover;
  std::string cname;  // instance name from a following `.cname`; may be empty
  SourceLoc loc;
};

/// `.latch` control semantics (latch type field).
enum class BlifLatchType {
  kFallingEdge,  // fe
  kRisingEdge,   // re
  kActiveHigh,   // ah
  kActiveLow,    // al
  kAlways,       // as
  kUnspecified,  // no type field in the file
};

/// `.latch <input> <output> [<type> <control>] [<init>]`.
struct BlifLatch {
  std::string input;
  std::string output;
  BlifLatchType type = BlifLatchType::kUnspecified;
  std::string control;  // clock net; empty when unspecified
  int init = 3;         // 0, 1, 2 (don't care) or 3 (unknown)
  std::string cname;
  SourceLoc loc;
};

/// `.subckt <model> <formal>=<actual>...` or `.gate <cell> <pin>=<net>...`.
/// `.gate` resolves against the library only; `.subckt` prefers a model in
/// the same file and falls back to a library cell.
struct BlifSubckt {
  std::string model;
  bool is_gate = false;
  std::vector<std::pair<std::string, std::string>> conns;  // formal -> actual
  std::string cname;
  SourceLoc loc;
};

struct BlifModel {
  /// Reference to one primitive of a model, in declaration order.
  struct PrimRef {
    enum Kind : std::uint8_t { kNames, kLatch, kSubckt } kind;
    std::uint32_t index;  // into the matching vector below
  };
  /// One name from a `.inputs` / `.outputs` / `.clock` run.  Declaration
  /// order across all runs is preserved, so the rebuilt module's port order
  /// (and therefore node/SyncId numbering) matches the file.
  struct PortDecl {
    std::string name;
    PortDirection dir = PortDirection::kInput;
    bool is_clock = false;
    SourceLoc loc;
  };

  std::string name;
  std::vector<PortDecl> ports;
  std::vector<BlifNames> names;
  std::vector<BlifLatch> latches;
  std::vector<BlifSubckt> subckts;
  std::vector<PrimRef> order;
  SourceLoc loc;
};

struct BlifFile {
  /// Models in file order; by BLIF convention the first model is the top.
  std::vector<BlifModel> models;
};

/// Parse BLIF text, recording every problem in `sink` and recovering at the
/// next statement.  Handles `#` comments and `\` line continuations; token
/// locations always name the physical line the token appeared on.
BlifFile parse_blif(std::istream& is, DiagnosticSink& sink);
BlifFile parse_blif_string(const std::string& text, DiagnosticSink& sink);

}  // namespace hb
