#include "netlist/builder.hpp"

namespace hb {

TopBuilder::TopBuilder(std::string design_name, std::shared_ptr<const Library> lib,
                       std::string module_name)
    : design_(std::move(design_name), std::move(lib)) {
  top_ = design_.add_module(std::move(module_name));
  design_.set_top(top_);
}

std::string TopBuilder::fresh_name(const std::string& prefix) {
  return prefix + std::to_string(counter_++);
}

NetId TopBuilder::net(const std::string& name) {
  return module().add_net(name.empty() ? fresh_name("_n") : name);
}

NetId TopBuilder::port_in(const std::string& name, bool is_clock) {
  NetId n = net("net_" + name);
  const std::uint32_t p = module().add_port(name, PortDirection::kInput, is_clock);
  module().bind_port(p, n);
  return n;
}

NetId TopBuilder::port_out(const std::string& name) {
  NetId n = net("net_" + name);
  port_out_net(name, n);
  return n;
}

void TopBuilder::port_out_net(const std::string& name, NetId net) {
  const std::uint32_t p = module().add_port(name, PortDirection::kOutput, false);
  module().bind_port(p, net);
}

NetId TopBuilder::gate(const std::string& cell_name,
                       const std::vector<NetId>& inputs,
                       const std::string& inst_name) {
  const CellId cell = lib().require(cell_name);
  const Cell& c = lib().cell(cell);
  const InstId inst = module().add_cell_inst(
      inst_name.empty() ? fresh_name("_g") : inst_name, cell, c.ports().size());

  std::size_t next_input = 0;
  NetId out_net;
  for (std::uint32_t p = 0; p < c.ports().size(); ++p) {
    if (c.port(p).direction == PortDirection::kInput) {
      if (next_input >= inputs.size()) {
        raise("gate(" + cell_name + "): expected " + std::to_string(next_input + 1) +
              "+ inputs, got " + std::to_string(inputs.size()));
      }
      module().connect(inst, p, inputs[next_input++]);
    } else {
      if (out_net.valid()) raise("gate(): cell '" + cell_name + "' has several outputs");
      out_net = net();
      module().connect(inst, p, out_net);
    }
  }
  if (next_input != inputs.size()) {
    raise("gate(" + cell_name + "): too many inputs supplied");
  }
  if (!out_net.valid()) {
    raise("gate(): cell '" + cell_name + "' has no output port");
  }
  return out_net;
}

NetId TopBuilder::latch(const std::string& cell_name, NetId d, NetId ck,
                        const std::string& inst_name) {
  const CellId cell = lib().require(cell_name);
  const Cell& c = lib().cell(cell);
  if (!c.is_sequential()) raise("latch(): '" + cell_name + "' is combinational");
  const SyncSpec& sync = c.sync();
  const InstId inst = module().add_cell_inst(
      inst_name.empty() ? fresh_name("_l") : inst_name, cell, c.ports().size());
  module().connect(inst, sync.data_in, d);
  module().connect(inst, sync.control, ck);
  NetId q = net();
  module().connect(inst, sync.data_out, q);
  return q;
}

InstId TopBuilder::submodule(ModuleId sub, const std::vector<NetId>& conns,
                             const std::string& inst_name) {
  const std::size_t nports = design_.module(sub).ports().size();
  if (conns.size() != nports) {
    raise("submodule(): expected " + std::to_string(nports) + " connections");
  }
  const InstId inst = module().add_module_inst(
      inst_name.empty() ? fresh_name("_m") : inst_name, sub, nports);
  for (std::uint32_t p = 0; p < nports; ++p) {
    if (conns[p].valid()) module().connect(inst, p, conns[p]);
  }
  return inst;
}

Design TopBuilder::finish() { return std::move(design_); }

}  // namespace hb
