// Convenience builder for constructing designs programmatically: used by
// the circuit generators, the examples and the tests.  Wraps the raw
// Design/Module mutation API with positional-input gate creation and
// automatic naming.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netlist/design.hpp"

namespace hb {

class TopBuilder {
 public:
  TopBuilder(std::string design_name, std::shared_ptr<const Library> lib,
             std::string module_name = "top");

  Module& module() { return design_.module_mut(top_); }
  const Library& lib() const { return design_.lib(); }
  ModuleId top_id() const { return top_; }

  /// Fresh internal net (auto-named when name is empty).
  NetId net(const std::string& name = "");

  /// Input/output port with its bound net; returns the net.
  NetId port_in(const std::string& name, bool is_clock = false);
  NetId port_out(const std::string& name);
  /// Bind an existing net to a new output port.
  void port_out_net(const std::string& name, NetId net);

  /// Instantiate a library cell; `inputs` bind to the cell's input ports in
  /// declaration order; the (single) output port gets a fresh net, returned.
  /// Cells with several outputs need the raw API.
  NetId gate(const std::string& cell_name, const std::vector<NetId>& inputs,
             const std::string& inst_name = "");

  /// Sequential element: data, control; returns the Q net.
  NetId latch(const std::string& cell_name, NetId d, NetId ck,
              const std::string& inst_name = "");

  /// Instantiate a submodule; `conns` bind to its ports in order (inputs and
  /// outputs); invalid NetId entries are left unconnected.
  InstId submodule(ModuleId sub, const std::vector<NetId>& conns,
                   const std::string& inst_name = "");

  /// Access to the design for adding extra modules before finish().
  Design& design() { return design_; }

  /// Finalise and move the design out.  The builder must not be used after.
  Design finish();

 private:
  std::string fresh_name(const std::string& prefix);

  Design design_;
  ModuleId top_;
  std::uint64_t counter_ = 0;
};

}  // namespace hb
