#include "netlist/design.hpp"

namespace hb {

std::uint32_t Module::add_port(const std::string& name, PortDirection dir,
                               bool is_clock) {
  if (find_port(name)) raise("module '" + name_ + "': duplicate port '" + name + "'");
  ModulePort p;
  p.name = name;
  p.direction = dir;
  p.is_clock = is_clock;
  ports_.push_back(std::move(p));
  return static_cast<std::uint32_t>(ports_.size() - 1);
}

NetId Module::add_net(const std::string& name) {
  if (net_by_name_.count(name) != 0) {
    raise("module '" + name_ + "': duplicate net '" + name + "'");
  }
  NetId id(static_cast<std::uint32_t>(nets_.size()));
  Net n;
  n.name = name;
  nets_.push_back(std::move(n));
  net_by_name_.emplace(name, id);
  return id;
}

InstId Module::add_cell_inst(const std::string& name, CellId cell,
                             std::size_t num_ports) {
  if (inst_by_name_.count(name) != 0) {
    raise("module '" + name_ + "': duplicate instance '" + name + "'");
  }
  InstId id(static_cast<std::uint32_t>(insts_.size()));
  Instance inst;
  inst.name = name;
  inst.cell = cell;
  inst.conn.assign(num_ports, NetId::invalid());
  insts_.push_back(std::move(inst));
  inst_by_name_.emplace(name, id);
  return id;
}

InstId Module::add_module_inst(const std::string& name, ModuleId module,
                               std::size_t num_ports) {
  if (inst_by_name_.count(name) != 0) {
    raise("module '" + name_ + "': duplicate instance '" + name + "'");
  }
  InstId id(static_cast<std::uint32_t>(insts_.size()));
  Instance inst;
  inst.name = name;
  inst.module = module;
  inst.conn.assign(num_ports, NetId::invalid());
  insts_.push_back(std::move(inst));
  inst_by_name_.emplace(name, id);
  return id;
}

void Module::connect(InstId inst, std::uint32_t port, NetId net) {
  Instance& i = insts_.at(inst.index());
  if (port >= i.conn.size()) {
    raise("module '" + name_ + "': port index " + std::to_string(port) +
          " out of range for instance '" + i.name + "' (" +
          std::to_string(i.conn.size()) + " ports)");
  }
  if (i.conn[port].valid()) {
    raise("module '" + name_ + "': port " + std::to_string(port) +
          " of instance '" + i.name + "' connected twice");
  }
  i.conn[port] = net;
  nets_.at(net.index()).pins.push_back(PinRef{inst, port});
}

void Module::bind_port(std::uint32_t port, NetId net) {
  ModulePort& p = ports_.at(port);
  if (p.net.valid()) {
    raise("module '" + name_ + "': port '" + p.name + "' bound twice");
  }
  p.net = net;
  nets_.at(net.index()).module_ports.push_back(port);
}

InstId Module::find_inst(const std::string& name) const {
  auto it = inst_by_name_.find(name);
  return it == inst_by_name_.end() ? InstId::invalid() : it->second;
}

NetId Module::find_net(const std::string& name) const {
  auto it = net_by_name_.find(name);
  return it == net_by_name_.end() ? NetId::invalid() : it->second;
}

std::optional<std::uint32_t> Module::find_port(const std::string& name) const {
  for (std::uint32_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i].name == name) return i;
  }
  return std::nullopt;
}

ModuleId Design::add_module(std::string name) {
  if (module_by_name_.count(name) != 0) {
    raise("design '" + name_ + "': duplicate module '" + name + "'");
  }
  ModuleId id(static_cast<std::uint32_t>(modules_.size()));
  module_by_name_.emplace(name, id);
  modules_.emplace_back(std::move(name));
  return id;
}

ModuleId Design::find_module(const std::string& name) const {
  auto it = module_by_name_.find(name);
  return it == module_by_name_.end() ? ModuleId::invalid() : it->second;
}

const Module& Design::top() const {
  if (!top_.valid()) raise("design '" + name_ + "' has no top module set");
  return modules_.at(top_.index());
}

std::size_t Design::target_num_ports(const Instance& inst) const {
  if (inst.is_cell()) return lib_->cell(inst.cell).ports().size();
  return module(inst.module).ports().size();
}

PortDirection Design::target_port_dir(const Instance& inst,
                                      std::uint32_t port) const {
  if (inst.is_cell()) return lib_->cell(inst.cell).port(port).direction;
  return module(inst.module).port(port).direction;
}

const std::string& Design::target_port_name(const Instance& inst,
                                            std::uint32_t port) const {
  if (inst.is_cell()) return lib_->cell(inst.cell).port(port).name;
  return module(inst.module).port(port).name;
}

std::string Design::target_name(const Instance& inst) const {
  if (inst.is_cell()) return lib_->cell(inst.cell).name();
  return module(inst.module).name();
}

std::size_t Design::module_cell_count(ModuleId id) const {
  std::size_t n = 0;
  for (const Instance& inst : module(id).insts()) {
    n += inst.is_cell() ? 1 : module_cell_count(inst.module);
  }
  return n;
}

std::size_t Design::module_net_count(ModuleId id) const {
  std::size_t n = module(id).num_nets();
  for (const Instance& inst : module(id).insts()) {
    if (!inst.is_cell()) n += module_net_count(inst.module);
  }
  return n;
}

std::size_t Design::total_cell_count() const { return module_cell_count(top_); }
std::size_t Design::total_net_count() const { return module_net_count(top_); }

}  // namespace hb
