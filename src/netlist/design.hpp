// Hierarchical design database.
//
// This is the stand-in for the OCT data base the paper's Hummingbird
// interfaces with: modules of instances and nets, loadable and storable as
// text (netlist_io), with annotation hooks (slow-path flags) that play the
// role of OCT properties viewed in VEM.
//
// Hierarchy rules (checked by validate()):
//   * the top module may instantiate library cells (combinational or
//     synchronising) and combinational submodules;
//   * submodules may nest but must be purely combinational — the paper's
//     clusters are combinational networks between synchronising elements,
//     and its hierarchical example SM1H keeps "the combinational logic ...
//     in a single module" with latches at the top level.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netlist/library.hpp"
#include "util/ids.hpp"

namespace hb {

/// A terminal of an instance: (instance, port index of its cell/module).
struct PinRef {
  InstId inst;
  std::uint32_t port = 0;

  friend bool operator==(const PinRef& a, const PinRef& b) {
    return a.inst == b.inst && a.port == b.port;
  }
};

struct Net {
  std::string name;
  std::vector<PinRef> pins;               // connected instance terminals
  std::vector<std::uint32_t> module_ports;  // indices of bound module ports
};

/// An instance of either a library cell or a submodule (exactly one valid).
struct Instance {
  std::string name;
  CellId cell;       // valid iff library-cell instance
  ModuleId module;   // valid iff submodule instance
  /// Net bound to each port of the cell/module, by port index; may contain
  /// invalid NetId for unconnected ports until validate().
  std::vector<NetId> conn;

  bool is_cell() const { return cell.valid(); }
};

struct ModulePort {
  std::string name;
  PortDirection direction = PortDirection::kInput;
  /// True for top-level ports that carry a clock signal; the port name must
  /// match a clock name in the ClockSet supplied to analysis.
  bool is_clock = false;
  NetId net;  // internal net bound to this port
};

class Design;

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  std::uint32_t add_port(const std::string& name, PortDirection dir,
                         bool is_clock = false);
  NetId add_net(const std::string& name);
  InstId add_cell_inst(const std::string& name, CellId cell,
                       std::size_t num_ports);
  InstId add_module_inst(const std::string& name, ModuleId module,
                         std::size_t num_ports);

  /// Bind instance terminal (inst, port) to net.
  void connect(InstId inst, std::uint32_t port, NetId net);
  /// Bind module port to an internal net.
  void bind_port(std::uint32_t port, NetId net);

  const std::vector<Instance>& insts() const { return insts_; }
  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<ModulePort>& ports() const { return ports_; }
  const Instance& inst(InstId id) const { return insts_.at(id.index()); }
  Instance& inst_mut(InstId id) { return insts_.at(id.index()); }
  const Net& net(NetId id) const { return nets_.at(id.index()); }
  const ModulePort& port(std::uint32_t i) const { return ports_.at(i); }

  InstId find_inst(const std::string& name) const;
  NetId find_net(const std::string& name) const;
  std::optional<std::uint32_t> find_port(const std::string& name) const;

  std::size_t num_insts() const { return insts_.size(); }
  std::size_t num_nets() const { return nets_.size(); }

 private:
  friend class Design;
  std::string name_;
  std::vector<Instance> insts_;
  std::vector<Net> nets_;
  std::vector<ModulePort> ports_;
  std::unordered_map<std::string, InstId> inst_by_name_;
  std::unordered_map<std::string, NetId> net_by_name_;
};

class Design {
 public:
  Design(std::string name, std::shared_ptr<const Library> lib)
      : name_(std::move(name)), lib_(std::move(lib)) {
    HB_ASSERT(lib_ != nullptr);
  }

  const std::string& name() const { return name_; }
  const Library& lib() const { return *lib_; }
  std::shared_ptr<const Library> lib_ptr() const { return lib_; }

  ModuleId add_module(std::string name);
  Module& module_mut(ModuleId id) { return modules_.at(id.index()); }
  const Module& module(ModuleId id) const { return modules_.at(id.index()); }
  ModuleId find_module(const std::string& name) const;
  std::size_t num_modules() const { return modules_.size(); }

  void set_top(ModuleId id) { top_ = id; }
  ModuleId top_id() const { return top_; }
  const Module& top() const;

  /// Number of ports on whatever an instance instantiates.
  std::size_t target_num_ports(const Instance& inst) const;
  /// Port metadata of an instance's target, normalised across cell/module.
  PortDirection target_port_dir(const Instance& inst, std::uint32_t port) const;
  const std::string& target_port_name(const Instance& inst,
                                      std::uint32_t port) const;
  std::string target_name(const Instance& inst) const;

  /// Total library-cell instances under the top module (recursing into
  /// submodules); the "standard cell" counts quoted in the paper's Table 1.
  std::size_t total_cell_count() const;
  /// Total nets under the top module, recursing.
  std::size_t total_net_count() const;

  /// Annotation hook (the OCT "flag slow paths" facility): mark a net of the
  /// top module as lying on a too-slow path.
  void flag_slow_net(NetId net) { slow_nets_.insert(net); }
  void clear_slow_flags() { slow_nets_.clear(); }
  bool is_slow_net(NetId net) const { return slow_nets_.count(net) != 0; }
  std::size_t num_slow_nets() const { return slow_nets_.size(); }

 private:
  std::size_t module_cell_count(ModuleId id) const;
  std::size_t module_net_count(ModuleId id) const;

  std::string name_;
  std::shared_ptr<const Library> lib_;
  std::vector<Module> modules_;
  std::unordered_map<std::string, ModuleId> module_by_name_;
  ModuleId top_;
  std::unordered_set<NetId> slow_nets_;
};

}  // namespace hb
