#include "netlist/flatten.hpp"

#include <unordered_map>

namespace hb {
namespace {

// Recursively inline `mod_id` of `src` into `out`.  `prefix` is the instance
// path ('' for top), `port_nets[p]` the out-module net bound to port p.
void inline_module(const Design& src, ModuleId mod_id, const std::string& prefix,
                   const std::vector<NetId>& port_nets, Design& out_design,
                   Module& out) {
  const Module& mod = src.module(mod_id);

  // Map each internal net to a net of `out`.  Port-bound nets alias the
  // caller-provided nets; others are created fresh with a prefixed name.
  std::vector<NetId> net_map(mod.num_nets(), NetId::invalid());
  for (std::uint32_t n = 0; n < mod.num_nets(); ++n) {
    const Net& net = mod.net(NetId(n));
    if (net.module_ports.size() > 1) {
      raise("flatten: net '" + prefix + net.name +
            "' is bound to multiple module ports (feedthrough not supported)");
    }
    if (net.module_ports.size() == 1) {
      NetId outer = port_nets.at(net.module_ports[0]);
      if (!outer.valid()) {
        raise("flatten: port of submodule instance '" +
              prefix.substr(0, prefix.empty() ? 0 : prefix.size() - 1) +
              "' bound to net '" + net.name +
              "' is unconnected in the parent module");
      }
      net_map[n] = outer;
    } else {
      net_map[n] = out.add_net(prefix + net.name);
    }
  }

  for (std::uint32_t i = 0; i < mod.insts().size(); ++i) {
    const Instance& inst = mod.inst(InstId(i));
    if (inst.is_cell()) {
      InstId flat = out.add_cell_inst(prefix + inst.name, inst.cell,
                                      inst.conn.size());
      for (std::uint32_t p = 0; p < inst.conn.size(); ++p) {
        if (inst.conn[p].valid()) {
          out.connect(flat, p, net_map[inst.conn[p].index()]);
        }
      }
    } else {
      std::vector<NetId> sub_ports(inst.conn.size(), NetId::invalid());
      for (std::uint32_t p = 0; p < inst.conn.size(); ++p) {
        if (inst.conn[p].valid()) sub_ports[p] = net_map[inst.conn[p].index()];
      }
      inline_module(src, inst.module, prefix + inst.name + "/", sub_ports,
                    out_design, out);
    }
  }
}

}  // namespace

Design flatten(const Design& design) {
  const Module& top = design.top();
  Design out(design.name(), design.lib_ptr());
  ModuleId flat_id = out.add_module(top.name());
  Module& flat = out.module_mut(flat_id);
  out.set_top(flat_id);

  // Recreate the top-level nets and ports first so port bindings are stable.
  std::vector<NetId> net_map(top.num_nets(), NetId::invalid());
  for (std::uint32_t n = 0; n < top.num_nets(); ++n) {
    net_map[n] = flat.add_net(top.net(NetId(n)).name);
  }
  for (std::uint32_t p = 0; p < top.ports().size(); ++p) {
    const ModulePort& port = top.port(p);
    flat.add_port(port.name, port.direction, port.is_clock);
    if (port.net.valid()) flat.bind_port(p, net_map[port.net.index()]);
  }

  for (std::uint32_t i = 0; i < top.insts().size(); ++i) {
    const Instance& inst = top.inst(InstId(i));
    if (inst.is_cell()) {
      InstId fi = flat.add_cell_inst(inst.name, inst.cell, inst.conn.size());
      for (std::uint32_t p = 0; p < inst.conn.size(); ++p) {
        if (inst.conn[p].valid()) flat.connect(fi, p, net_map[inst.conn[p].index()]);
      }
    } else {
      std::vector<NetId> sub_ports(inst.conn.size(), NetId::invalid());
      for (std::uint32_t p = 0; p < inst.conn.size(); ++p) {
        if (inst.conn[p].valid()) sub_ports[p] = net_map[inst.conn[p].index()];
      }
      inline_module(design, inst.module, inst.name + "/", sub_ports, out, flat);
    }
  }
  return out;
}

}  // namespace hb
