// Hierarchy flattening: inline every submodule instance of the top module
// (recursively) into a single flat module.  Instance and net names are
// prefixed with the instance path joined by '/', as Berkeley-style tools do.
//
// Limitation (checked): a submodule-internal net may be bound to at most one
// module port — feedthroughs would require net merging, which the textual
// database does not model.
#pragma once

#include "netlist/design.hpp"

namespace hb {

/// Returns a structurally equivalent single-module design.  The result's
/// top module keeps the original top's ports and clock flags.
Design flatten(const Design& design);

}  // namespace hb
