#include "netlist/library.hpp"

#include <algorithm>
#include <cctype>

namespace hb {

std::uint32_t Cell::add_port(Port p) {
  ports_.push_back(std::move(p));
  return static_cast<std::uint32_t>(ports_.size() - 1);
}

std::uint32_t Cell::port_index(const std::string& name) const {
  auto found = find_port(name);
  if (!found) raise("cell '" + name_ + "' has no port named '" + name + "'");
  return *found;
}

std::optional<std::uint32_t> Cell::find_port(const std::string& name) const {
  for (std::uint32_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i].name == name) return i;
  }
  return std::nullopt;
}

void Cell::add_arc(TimingArc arc) {
  if (arc.from_port >= ports_.size() || arc.to_port >= ports_.size()) {
    raise("cell '" + name_ + "': timing arc references a port index out of range");
  }
  if (ports_[arc.from_port].direction != PortDirection::kInput) {
    raise("cell '" + name_ + "': timing arc source '" +
          ports_[arc.from_port].name + "' is not an input port");
  }
  if (ports_[arc.to_port].direction != PortDirection::kOutput) {
    raise("cell '" + name_ + "': timing arc target '" +
          ports_[arc.to_port].name + "' is not an output port");
  }
  arcs_.push_back(arc);
}

const SyncSpec& Cell::sync() const {
  if (!sync_) raise("cell '" + name_ + "' is not a synchronising element");
  return *sync_;
}

CellId Library::add_cell(Cell cell) {
  if (by_name_.count(cell.name()) != 0) {
    raise("duplicate cell name '" + cell.name() + "' in library '" + name_ + "'");
  }
  CellId id(static_cast<std::uint32_t>(cells_.size()));
  by_name_.emplace(cell.name(), id);
  cells_.push_back(std::move(cell));
  return id;
}

CellId Library::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? CellId::invalid() : it->second;
}

CellId Library::find_liberty(const std::string& name) const {
  if (CellId id = find(name); id.valid()) return id;
  // Case-fold and drop one underscore before a trailing drive suffix:
  // "nand2_x1" and "NAND2_X1" both become "NAND2X1".
  std::string canon;
  canon.reserve(name.size());
  for (char ch : name) {
    canon.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(ch))));
  }
  const std::size_t us = canon.rfind('_');
  if (us != std::string::npos && us + 2 < canon.size() &&
      canon[us + 1] == 'X' &&
      canon.find_first_not_of("0123456789", us + 2) == std::string::npos) {
    canon.erase(us, 1);
  }
  if (CellId id = find(canon); id.valid()) return id;
  // A bare family name resolves to its weakest drive variant.
  const std::vector<CellId> members = family_members(canon);
  if (!members.empty()) return members.front();
  return CellId::invalid();
}

CellId Library::require(const std::string& name) const {
  CellId id = find(name);
  if (!id.valid()) raise("library '" + name_ + "' has no cell named '" + name + "'");
  return id;
}

std::vector<CellId> Library::family_members(const std::string& family) const {
  std::vector<CellId> out;
  if (family.empty()) return out;
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].family() == family) out.push_back(CellId(i));
  }
  std::sort(out.begin(), out.end(), [this](CellId a, CellId b) {
    return cell(a).drive() < cell(b).drive();
  });
  return out;
}

CellId Library::stronger_variant(CellId id) const {
  const Cell& c = cell(id);
  auto members = family_members(c.family());
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == id && i + 1 < members.size()) return members[i + 1];
  }
  return CellId::invalid();
}

CellId Library::weaker_variant(CellId id) const {
  const Cell& c = cell(id);
  auto members = family_members(c.family());
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == id && i > 0) return members[i - 1];
  }
  return CellId::invalid();
}

}  // namespace hb
