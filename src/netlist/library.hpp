// Standard-cell library model.
//
// The paper separates component propagation-delay estimation from system
// timing analysis; the library carries the data the delay estimator needs
// (per-arc intrinsic delay and load slope, pin capacitances) together with
// the structural facts the analyser needs (which cells are synchronising
// elements, which port is the control input, setup times).
//
// Cells come in drive-strength families (e.g. NAND2X1/X2/X4) linked through
// a family name so the re-synthesis loop (Algorithm 3) can swap variants.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace hb {

enum class PortDirection { kInput, kOutput };

/// Functional role of a cell port.  Synchronising elements (paper Section 3)
/// expose exactly a data input, a control input and a data output; extra
/// terminals (output-bar) are representable as further kData outputs.
enum class PortRole {
  kData,     // ordinary logic data
  kControl,  // synchronising element control (clock) input
};

/// Cell categories recognised by the analyser.  Tristate drivers are modelled
/// exactly like transparent latches (paper Section 5, last sentence).
enum class CellKind {
  kCombinational,
  kEdgeTriggeredLatch,
  kTransparentLatch,
  kTristateDriver,
};

/// Which control-pulse edge triggers an edge-triggered latch.  "Leading" and
/// "trailing" refer to the pulse of the *clock signal* controlling the
/// element (after monotonic control logic), as in the paper.
enum class TriggerEdge { kLeading, kTrailing };

/// Arc unateness: a positive-unate arc propagates rise->rise/fall->fall, a
/// negative-unate arc inverts, a non-unate arc (XOR, MUX select) can produce
/// either output transition from either input transition.
enum class Unate { kPositive, kNegative, kNone };

struct Port {
  std::string name;
  PortDirection direction = PortDirection::kInput;
  PortRole role = PortRole::kData;
  /// Input pin capacitance in femtofarads; 0 for outputs.
  double cap_ff = 0.0;
};

/// One input->output propagation arc with a linear delay model:
///   delay = intrinsic + slope * C_load   (separately for rise and fall,
/// where rise/fall refer to the *output* transition direction).
struct TimingArc {
  std::uint32_t from_port = 0;
  std::uint32_t to_port = 0;
  Unate unate = Unate::kPositive;
  TimePs intrinsic_rise = 0;
  TimePs intrinsic_fall = 0;
  /// Picoseconds per femtofarad of load on the output net.
  double slope_rise = 0.0;
  double slope_fall = 0.0;
};

/// Extra data for synchronising elements.
struct SyncSpec {
  /// Index of the data input / control input / data output ports.
  std::uint32_t data_in = 0;
  std::uint32_t control = 0;
  std::uint32_t data_out = 0;
  /// Required data set-up time before input closure (D_setup >= 0).
  TimePs setup = 0;
  /// For edge-triggered elements: the triggering control-pulse edge.
  TriggerEdge trigger = TriggerEdge::kTrailing;
  /// For transparent latches / tristate drivers: true if data flows while
  /// the control signal is high (the usual case); the leading edge of the
  /// *enabling* pulse asserts the output, the trailing edge closes the input.
  bool active_high = true;
};

class Cell {
 public:
  Cell(std::string name, CellKind kind) : name_(std::move(name)), kind_(kind) {}

  const std::string& name() const { return name_; }
  CellKind kind() const { return kind_; }
  bool is_sequential() const { return kind_ != CellKind::kCombinational; }

  std::uint32_t add_port(Port p);
  const std::vector<Port>& ports() const { return ports_; }
  const Port& port(std::uint32_t i) const { return ports_.at(i); }
  /// Port index by name; throws hb::Error if absent.
  std::uint32_t port_index(const std::string& name) const;
  std::optional<std::uint32_t> find_port(const std::string& name) const;

  void add_arc(TimingArc arc);
  const std::vector<TimingArc>& arcs() const { return arcs_; }

  void set_sync(SyncSpec s) { sync_ = s; }
  const SyncSpec& sync() const;
  bool has_sync() const { return sync_.has_value(); }

  /// Drive family support: cells with the same family string are functional
  /// equivalents ordered by drive index (higher = stronger/faster drive).
  void set_family(std::string family, int drive) {
    family_ = std::move(family);
    drive_ = drive;
  }
  const std::string& family() const { return family_; }
  int drive() const { return drive_; }

  /// Estimated layout area in square micrometres (used by Algorithm 3's
  /// area/speed trade-off reporting).
  void set_area(double a) { area_um2_ = a; }
  double area_um2() const { return area_um2_; }

 private:
  std::string name_;
  CellKind kind_;
  std::vector<Port> ports_;
  std::vector<TimingArc> arcs_;
  std::optional<SyncSpec> sync_;
  std::string family_;
  int drive_ = 1;
  double area_um2_ = 1.0;
};

class Library {
 public:
  explicit Library(std::string name = "default") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  CellId add_cell(Cell cell);
  const Cell& cell(CellId id) const { return cells_.at(id.index()); }
  Cell& cell_mut(CellId id) { return cells_.at(id.index()); }
  std::size_t num_cells() const { return cells_.size(); }

  /// Lookup by name; invalid id if absent.
  CellId find(const std::string& name) const;
  /// Lookup by name; throws hb::Error if absent.
  CellId require(const std::string& name) const;

  /// Lookup tolerating liberty-style spellings that don't match the
  /// library's own names: case-insensitive, an optional underscore before
  /// the drive suffix ("nand2_x1" -> "NAND2X1"), and a bare family name
  /// resolving to its weakest drive ("NAND2" -> "NAND2X1").  Exact matches
  /// win; invalid id if nothing resolves.  The BLIF `.gate` frontend uses
  /// this so netlists written against a real liberty library load against
  /// an equivalent loadable library (netlist/blif_builder).
  CellId find_liberty(const std::string& name) const;

  /// All cells of a drive family, sorted by ascending drive index.
  std::vector<CellId> family_members(const std::string& family) const;
  /// The next stronger / weaker variant of a cell, or invalid if none.
  CellId stronger_variant(CellId id) const;
  CellId weaker_variant(CellId id) const;

 private:
  std::string name_;
  std::vector<Cell> cells_;
  std::unordered_map<std::string, CellId> by_name_;
};

}  // namespace hb
