#include "netlist/library_io.hpp"

#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace hb {
namespace {

const char* kind_name(CellKind k) {
  switch (k) {
    case CellKind::kCombinational: return "comb";
    case CellKind::kEdgeTriggeredLatch: return "edge";
    case CellKind::kTransparentLatch: return "transparent";
    case CellKind::kTristateDriver: return "tristate";
  }
  return "comb";
}

const char* unate_name(Unate u) {
  switch (u) {
    case Unate::kPositive: return "pos";
    case Unate::kNegative: return "neg";
    case Unate::kNone: return "none";
  }
  return "pos";
}

[[noreturn]] void lib_error(int lineno, const std::string& msg) {
  raise("library parse error at line " + std::to_string(lineno) + ": " + msg);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) {
    if (t[0] == '#') break;
    toks.push_back(t);
  }
  return toks;
}

double parse_double(const std::string& s, int lineno) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) lib_error(lineno, "bad number '" + s + "'");
    return v;
  } catch (const std::exception&) {
    lib_error(lineno, "bad number '" + s + "'");
  }
}

TimePs parse_ps(const std::string& s, int lineno) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size()) lib_error(lineno, "bad integer '" + s + "'");
    return v;
  } catch (const std::exception&) {
    lib_error(lineno, "bad integer '" + s + "'");
  }
}

}  // namespace

void save_library(const Library& lib, std::ostream& os) {
  os << "library " << lib.name() << "\n";
  for (std::uint32_t c = 0; c < lib.num_cells(); ++c) {
    const Cell& cell = lib.cell(CellId(c));
    os << "cell " << cell.name() << ' ' << kind_name(cell.kind()) << "\n";
    if (!cell.family().empty()) {
      os << "  family " << cell.family() << ' ' << cell.drive() << "\n";
    }
    os << "  area " << cell.area_um2() << "\n";
    for (const Port& p : cell.ports()) {
      if (p.direction == PortDirection::kOutput) {
        os << "  out " << p.name << "\n";
      } else if (p.role == PortRole::kControl) {
        os << "  ctrl " << p.name << ' ' << p.cap_ff << "\n";
      } else {
        os << "  in " << p.name << ' ' << p.cap_ff << "\n";
      }
    }
    for (const TimingArc& a : cell.arcs()) {
      os << "  arc " << cell.port(a.from_port).name << ' '
         << cell.port(a.to_port).name << ' ' << unate_name(a.unate) << ' '
         << a.intrinsic_rise << ' ' << a.intrinsic_fall << ' ' << a.slope_rise
         << ' ' << a.slope_fall << "\n";
    }
    if (cell.is_sequential()) {
      const SyncSpec& s = cell.sync();
      if (cell.kind() == CellKind::kEdgeTriggeredLatch) {
        os << "  trigger "
           << (s.trigger == TriggerEdge::kLeading ? "leading" : "trailing")
           << "\n";
      } else {
        os << "  active " << (s.active_high ? "high" : "low") << "\n";
      }
      os << "  setup " << s.setup << "\n";
    }
    os << "endcell\n";
  }
}

std::string library_to_string(const Library& lib) {
  std::ostringstream os;
  save_library(lib, os);
  return os.str();
}

std::shared_ptr<const Library> load_library(std::istream& is) {
  std::string line;
  int lineno = 0;
  std::string lib_name;
  while (std::getline(is, line)) {
    ++lineno;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    if (toks[0] != "library" || toks.size() != 2) {
      lib_error(lineno, "expected `library <name>`");
    }
    lib_name = toks[1];
    break;
  }
  if (lib_name.empty()) raise("library parse error: empty input");
  auto lib = std::make_shared<Library>(lib_name);

  std::optional<Cell> cell;
  CellKind kind = CellKind::kCombinational;
  SyncSpec sync;
  bool saw_in = false, saw_ctrl = false, saw_out = false;
  std::string family;
  int drive = 1;
  // Arcs are recorded by name and resolved at endcell (ports must exist by
  // then, whatever the declaration order).
  struct PendingArc {
    std::string from, to, unate;
    TimePs ir, if_;
    double sr, sf;
    int lineno;
  };
  std::vector<PendingArc> arcs;

  while (std::getline(is, line)) {
    ++lineno;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& kw = toks[0];

    if (kw == "cell") {
      if (cell) lib_error(lineno, "nested cell");
      if (toks.size() != 3) lib_error(lineno, "expected `cell <name> <kind>`");
      if (toks[2] == "comb") {
        kind = CellKind::kCombinational;
      } else if (toks[2] == "edge") {
        kind = CellKind::kEdgeTriggeredLatch;
      } else if (toks[2] == "transparent") {
        kind = CellKind::kTransparentLatch;
      } else if (toks[2] == "tristate") {
        kind = CellKind::kTristateDriver;
      } else {
        lib_error(lineno, "bad cell kind '" + toks[2] + "'");
      }
      cell.emplace(toks[1], kind);
      sync = SyncSpec{};
      saw_in = saw_ctrl = saw_out = false;
      family.clear();
      drive = 1;
      arcs.clear();
      continue;
    }
    if (!cell) lib_error(lineno, "statement outside cell: " + kw);

    if (kw == "endcell") {
      for (const PendingArc& a : arcs) {
        TimingArc arc;
        const auto from = cell->find_port(a.from);
        const auto to = cell->find_port(a.to);
        if (!from || !to) lib_error(a.lineno, "arc references unknown port");
        arc.from_port = *from;
        arc.to_port = *to;
        if (a.unate == "pos") {
          arc.unate = Unate::kPositive;
        } else if (a.unate == "neg") {
          arc.unate = Unate::kNegative;
        } else if (a.unate == "none") {
          arc.unate = Unate::kNone;
        } else {
          lib_error(a.lineno, "bad unateness '" + a.unate + "'");
        }
        arc.intrinsic_rise = a.ir;
        arc.intrinsic_fall = a.if_;
        arc.slope_rise = a.sr;
        arc.slope_fall = a.sf;
        cell->add_arc(arc);
      }
      if (!family.empty()) cell->set_family(family, drive);
      if (cell->kind() != CellKind::kCombinational) {
        if (!saw_in || !saw_ctrl || !saw_out) {
          lib_error(lineno, "sequential cell needs in, ctrl and out ports");
        }
        cell->set_sync(sync);
      }
      lib->add_cell(std::move(*cell));
      cell.reset();
    } else if (kw == "family") {
      if (toks.size() != 3) lib_error(lineno, "expected `family <name> <drive>`");
      family = toks[1];
      drive = static_cast<int>(parse_ps(toks[2], lineno));
    } else if (kw == "area") {
      if (toks.size() != 2) lib_error(lineno, "expected `area <um2>`");
      cell->set_area(parse_double(toks[1], lineno));
    } else if (kw == "in" || kw == "ctrl") {
      if (toks.size() != 3) lib_error(lineno, "expected `" + kw + " <port> <cap>`");
      Port p;
      p.name = toks[1];
      p.direction = PortDirection::kInput;
      p.role = kw == "ctrl" ? PortRole::kControl : PortRole::kData;
      p.cap_ff = parse_double(toks[2], lineno);
      const std::uint32_t idx = cell->add_port(p);
      if (kw == "ctrl") {
        sync.control = idx;
        saw_ctrl = true;
      } else if (!saw_in) {
        sync.data_in = idx;
        saw_in = true;
      }
    } else if (kw == "out") {
      if (toks.size() != 2) lib_error(lineno, "expected `out <port>`");
      Port p;
      p.name = toks[1];
      p.direction = PortDirection::kOutput;
      const std::uint32_t idx = cell->add_port(p);
      if (!saw_out) {
        sync.data_out = idx;
        saw_out = true;
      }
    } else if (kw == "arc") {
      if (toks.size() != 8) {
        lib_error(lineno,
                  "expected `arc <from> <to> <unate> <ir> <if> <sr> <sf>`");
      }
      arcs.push_back({toks[1], toks[2], toks[3], parse_ps(toks[4], lineno),
                      parse_ps(toks[5], lineno), parse_double(toks[6], lineno),
                      parse_double(toks[7], lineno), lineno});
    } else if (kw == "trigger") {
      if (toks.size() != 2) lib_error(lineno, "expected `trigger <edge>`");
      if (toks[1] == "leading") {
        sync.trigger = TriggerEdge::kLeading;
      } else if (toks[1] == "trailing") {
        sync.trigger = TriggerEdge::kTrailing;
      } else {
        lib_error(lineno, "bad trigger '" + toks[1] + "'");
      }
    } else if (kw == "active") {
      if (toks.size() != 2) lib_error(lineno, "expected `active <high|low>`");
      sync.active_high = toks[1] == "high";
      if (toks[1] != "high" && toks[1] != "low") {
        lib_error(lineno, "bad active level '" + toks[1] + "'");
      }
    } else if (kw == "setup") {
      if (toks.size() != 2) lib_error(lineno, "expected `setup <ps>`");
      sync.setup = parse_ps(toks[1], lineno);
    } else {
      lib_error(lineno, "unknown keyword '" + kw + "'");
    }
  }
  if (cell) raise("library parse error: unterminated cell");
  return lib;
}

std::shared_ptr<const Library> library_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_library(is);
}

}  // namespace hb
