#include "netlist/library_io.hpp"

#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/diagnostics.hpp"
#include "util/error.hpp"

namespace hb {
namespace {

const char* kind_name(CellKind k) {
  switch (k) {
    case CellKind::kCombinational: return "comb";
    case CellKind::kEdgeTriggeredLatch: return "edge";
    case CellKind::kTransparentLatch: return "transparent";
    case CellKind::kTristateDriver: return "tristate";
  }
  return "comb";
}

const char* unate_name(Unate u) {
  switch (u) {
    case Unate::kPositive: return "pos";
    case Unate::kNegative: return "neg";
    case Unate::kNone: return "none";
  }
  return "pos";
}

/// Statement-level parse failure; caught by the line loop, which records the
/// diagnostic and resynchronises at the next statement.
struct ParseAbort {
  Diagnostic diag;
};

[[noreturn]] void fail(DiagCode code, int line, int col, std::string msg,
                       std::string hint = {}) {
  throw ParseAbort{
      Diagnostic{code, Severity::kError, SourceLoc{line, col}, std::move(msg),
                 std::move(hint)}};
}

double parse_double(const Token& t, int lineno) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(t.text, &pos);
    if (pos == t.text.size()) return v;
  } catch (const std::exception&) {
  }
  fail(DiagCode::kParseBadNumber, lineno, t.col, "bad number '" + t.text + "'");
}

TimePs parse_ps(const Token& t, int lineno) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(t.text, &pos);
    if (pos == t.text.size()) return v;
  } catch (const std::exception&) {
  }
  fail(DiagCode::kParseBadNumber, lineno, t.col, "bad integer '" + t.text + "'",
       "intrinsics and setup are integer picoseconds");
}

class LibraryParser {
 public:
  explicit LibraryParser(DiagnosticSink& sink) : sink_(&sink) {}

  std::shared_ptr<const Library> run(std::istream& is) {
    std::string line;
    std::string lib_name;
    std::vector<Token> pending;
    while (std::getline(is, line)) {
      ++lineno_;
      auto toks = split_tokens(line);
      if (toks.empty()) continue;
      if (toks[0].text == "library" && toks.size() == 2) {
        lib_name = toks[1].text;
      } else {
        sink_->add(DiagCode::kParseSyntax, Severity::kError,
                   SourceLoc{lineno_, toks[0].col}, "expected `library <name>`",
                   "libraries start with a `library` header");
        lib_name = "<recovered>";
        pending = std::move(toks);
      }
      break;
    }
    if (lib_name.empty()) {
      sink_->add(DiagCode::kParseEmptyInput, Severity::kFatal, SourceLoc{},
                 "empty input");
      return std::make_shared<Library>("<empty>");
    }
    lib_ = std::make_shared<Library>(lib_name);

    if (!pending.empty()) statement(pending);
    while (std::getline(is, line)) {
      ++lineno_;
      const auto toks = split_tokens(line);
      if (toks.empty()) continue;
      statement(toks);
    }
    if (cell_) {
      sink_->add(DiagCode::kParseUnterminated, Severity::kError,
                 SourceLoc{lineno_, 0}, "unterminated cell", "add `endcell`");
    }
    return lib_;
  }

 private:
  void statement(const std::vector<Token>& toks) {
    try {
      dispatch(toks);
    } catch (const ParseAbort& abort) {
      sink_->add(abort.diag);
    } catch (const Error& e) {
      sink_->add(DiagCode::kParseDuplicateName, Severity::kError,
                 SourceLoc{lineno_, toks[0].col}, e.what());
    }
  }

  /// Resolve the current cell's pending arcs and hand it to the library.
  /// A cell with broken arcs keeps the clean ones; a sequential cell that
  /// is missing structural ports is dropped entirely (its sync indices
  /// would be meaningless), which the degraded-mode layer then reports as
  /// unknown-cell references in the netlist.
  void finish_cell() {
    bool keep = true;
    for (const PendingArc& a : arcs_) {
      TimingArc arc;
      const auto from = cell_->find_port(a.from.text);
      const auto to = cell_->find_port(a.to.text);
      if (!from || !to) {
        sink_->add(DiagCode::kParseUnknownName, Severity::kError,
                   SourceLoc{a.lineno, (!from ? a.from : a.to).col},
                   "arc references unknown port",
                   "declare `in`/`out` ports before use");
        continue;
      }
      arc.from_port = *from;
      arc.to_port = *to;
      if (a.unate.text == "pos") {
        arc.unate = Unate::kPositive;
      } else if (a.unate.text == "neg") {
        arc.unate = Unate::kNegative;
      } else if (a.unate.text == "none") {
        arc.unate = Unate::kNone;
      } else {
        sink_->add(DiagCode::kParseSyntax, Severity::kError,
                   SourceLoc{a.lineno, a.unate.col},
                   "bad unateness '" + a.unate.text + "'",
                   "expected pos, neg or none");
        continue;
      }
      arc.intrinsic_rise = a.ir;
      arc.intrinsic_fall = a.if_;
      arc.slope_rise = a.sr;
      arc.slope_fall = a.sf;
      cell_->add_arc(arc);
    }
    if (!family_.empty()) cell_->set_family(family_, drive_);
    if (cell_->kind() != CellKind::kCombinational) {
      if (!saw_in_ || !saw_ctrl_ || !saw_out_) {
        sink_->add(DiagCode::kParseStructure, Severity::kError,
                   SourceLoc{lineno_, 0},
                   "sequential cell needs in, ctrl and out ports",
                   "cell '" + cell_->name() + "' dropped");
        keep = false;
      } else {
        cell_->set_sync(sync_);
      }
    }
    if (keep) lib_->add_cell(std::move(*cell_));
    cell_.reset();
  }

  void dispatch(const std::vector<Token>& toks) {
    const std::string& kw = toks[0].text;
    const int at = toks[0].col;

    if (kw == "cell") {
      if (cell_) {
        sink_->add(DiagCode::kParseStructure, Severity::kError,
                   SourceLoc{lineno_, at}, "nested cell",
                   "previous cell closed implicitly");
        finish_cell();
      }
      if (toks.size() != 3) {
        fail(DiagCode::kParseSyntax, lineno_, at, "expected `cell <name> <kind>`");
      }
      CellKind kind;
      if (toks[2].text == "comb") {
        kind = CellKind::kCombinational;
      } else if (toks[2].text == "edge") {
        kind = CellKind::kEdgeTriggeredLatch;
      } else if (toks[2].text == "transparent") {
        kind = CellKind::kTransparentLatch;
      } else if (toks[2].text == "tristate") {
        kind = CellKind::kTristateDriver;
      } else {
        fail(DiagCode::kParseSyntax, lineno_, toks[2].col,
             "bad cell kind '" + toks[2].text + "'",
             "expected comb, edge, transparent or tristate");
      }
      cell_.emplace(toks[1].text, kind);
      sync_ = SyncSpec{};
      saw_in_ = saw_ctrl_ = saw_out_ = false;
      family_.clear();
      drive_ = 1;
      arcs_.clear();
      return;
    }
    if (!cell_) {
      fail(DiagCode::kParseStructure, lineno_, at,
           "statement outside cell: " + kw);
    }

    if (kw == "endcell") {
      finish_cell();
    } else if (kw == "family") {
      if (toks.size() != 3) {
        fail(DiagCode::kParseSyntax, lineno_, at, "expected `family <name> <drive>`");
      }
      family_ = toks[1].text;
      drive_ = static_cast<int>(parse_ps(toks[2], lineno_));
    } else if (kw == "area") {
      if (toks.size() != 2) {
        fail(DiagCode::kParseSyntax, lineno_, at, "expected `area <um2>`");
      }
      cell_->set_area(parse_double(toks[1], lineno_));
    } else if (kw == "in" || kw == "ctrl") {
      if (toks.size() != 3) {
        fail(DiagCode::kParseSyntax, lineno_, at,
             "expected `" + kw + " <port> <cap>`");
      }
      Port p;
      p.name = toks[1].text;
      p.direction = PortDirection::kInput;
      p.role = kw == "ctrl" ? PortRole::kControl : PortRole::kData;
      p.cap_ff = parse_double(toks[2], lineno_);
      const std::uint32_t idx = cell_->add_port(p);
      if (kw == "ctrl") {
        sync_.control = idx;
        saw_ctrl_ = true;
      } else if (!saw_in_) {
        sync_.data_in = idx;
        saw_in_ = true;
      }
    } else if (kw == "out") {
      if (toks.size() != 2) {
        fail(DiagCode::kParseSyntax, lineno_, at, "expected `out <port>`");
      }
      Port p;
      p.name = toks[1].text;
      p.direction = PortDirection::kOutput;
      const std::uint32_t idx = cell_->add_port(p);
      if (!saw_out_) {
        sync_.data_out = idx;
        saw_out_ = true;
      }
    } else if (kw == "arc") {
      if (toks.size() != 8) {
        fail(DiagCode::kParseSyntax, lineno_, at,
             "expected `arc <from> <to> <unate> <ir> <if> <sr> <sf>`");
      }
      arcs_.push_back({toks[1], toks[2], toks[3], parse_ps(toks[4], lineno_),
                       parse_ps(toks[5], lineno_), parse_double(toks[6], lineno_),
                       parse_double(toks[7], lineno_), lineno_});
    } else if (kw == "trigger") {
      if (toks.size() != 2) {
        fail(DiagCode::kParseSyntax, lineno_, at, "expected `trigger <edge>`");
      }
      if (toks[1].text == "leading") {
        sync_.trigger = TriggerEdge::kLeading;
      } else if (toks[1].text == "trailing") {
        sync_.trigger = TriggerEdge::kTrailing;
      } else {
        fail(DiagCode::kParseSyntax, lineno_, toks[1].col,
             "bad trigger '" + toks[1].text + "'",
             "expected leading or trailing");
      }
    } else if (kw == "active") {
      if (toks.size() != 2) {
        fail(DiagCode::kParseSyntax, lineno_, at, "expected `active <high|low>`");
      }
      if (toks[1].text != "high" && toks[1].text != "low") {
        fail(DiagCode::kParseSyntax, lineno_, toks[1].col,
             "bad active level '" + toks[1].text + "'");
      }
      sync_.active_high = toks[1].text == "high";
    } else if (kw == "setup") {
      if (toks.size() != 2) {
        fail(DiagCode::kParseSyntax, lineno_, at, "expected `setup <ps>`");
      }
      sync_.setup = parse_ps(toks[1], lineno_);
    } else {
      fail(DiagCode::kParseUnknownKeyword, lineno_, at,
           "unknown keyword '" + kw + "'");
    }
  }

  // Arcs are recorded by name and resolved at endcell (ports must exist by
  // then, whatever the declaration order).
  struct PendingArc {
    Token from, to, unate;
    TimePs ir, if_;
    double sr, sf;
    int lineno;
  };

  DiagnosticSink* sink_;
  std::shared_ptr<Library> lib_;
  int lineno_ = 0;
  std::optional<Cell> cell_;
  SyncSpec sync_;
  bool saw_in_ = false, saw_ctrl_ = false, saw_out_ = false;
  std::string family_;
  int drive_ = 1;
  std::vector<PendingArc> arcs_;
};

}  // namespace

void save_library(const Library& lib, std::ostream& os) {
  os << "library " << lib.name() << "\n";
  for (std::uint32_t c = 0; c < lib.num_cells(); ++c) {
    const Cell& cell = lib.cell(CellId(c));
    os << "cell " << cell.name() << ' ' << kind_name(cell.kind()) << "\n";
    if (!cell.family().empty()) {
      os << "  family " << cell.family() << ' ' << cell.drive() << "\n";
    }
    os << "  area " << cell.area_um2() << "\n";
    for (const Port& p : cell.ports()) {
      if (p.direction == PortDirection::kOutput) {
        os << "  out " << p.name << "\n";
      } else if (p.role == PortRole::kControl) {
        os << "  ctrl " << p.name << ' ' << p.cap_ff << "\n";
      } else {
        os << "  in " << p.name << ' ' << p.cap_ff << "\n";
      }
    }
    for (const TimingArc& a : cell.arcs()) {
      os << "  arc " << cell.port(a.from_port).name << ' '
         << cell.port(a.to_port).name << ' ' << unate_name(a.unate) << ' '
         << a.intrinsic_rise << ' ' << a.intrinsic_fall << ' ' << a.slope_rise
         << ' ' << a.slope_fall << "\n";
    }
    if (cell.is_sequential()) {
      const SyncSpec& s = cell.sync();
      if (cell.kind() == CellKind::kEdgeTriggeredLatch) {
        os << "  trigger "
           << (s.trigger == TriggerEdge::kLeading ? "leading" : "trailing")
           << "\n";
      } else {
        os << "  active " << (s.active_high ? "high" : "low") << "\n";
      }
      os << "  setup " << s.setup << "\n";
    }
    os << "endcell\n";
  }
}

std::string library_to_string(const Library& lib) {
  std::ostringstream os;
  save_library(lib, os);
  return os.str();
}

std::shared_ptr<const Library> load_library(std::istream& is,
                                            DiagnosticSink& sink) {
  return LibraryParser(sink).run(is);
}

std::shared_ptr<const Library> load_library(std::istream& is) {
  DiagnosticSink sink;
  auto lib = load_library(is, sink);
  if (sink.has_errors()) raise_first_error("library parse error", sink);
  return lib;
}

std::shared_ptr<const Library> library_from_string(const std::string& text,
                                                   DiagnosticSink& sink) {
  std::istringstream is(text);
  return load_library(is, sink);
}

std::shared_ptr<const Library> library_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_library(is);
}

}  // namespace hb
