// Textual cell-library load/store, completing the file-driven interface:
// netlist (netlist_io) + clocks (clock_io) + library (this).  Format:
//
//   library <name>
//   cell <name> <comb|edge|transparent|tristate>
//     family <name> <drive>          # optional
//     area <um2>
//     in <port> <cap_ff>             # data input
//     ctrl <port> <cap_ff>           # control input (sequential cells)
//     out <port>
//     arc <from> <to> <pos|neg|none> <intr_rise> <intr_fall> <slope_rise> <slope_fall>
//     trigger <leading|trailing>     # edge cells
//     active <high|low>              # transparent/tristate cells
//     setup <ps>                     # sequential cells
//   endcell
//
// Numbers: intrinsics in integer picoseconds, slopes in ps/fF (decimal),
// caps in fF (decimal).  Sequential cells must declare exactly one in, one
// ctrl and one out.  The writer emits this format; load(save(L)) == L.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "netlist/library.hpp"

namespace hb {

class DiagnosticSink;

void save_library(const Library& lib, std::ostream& os);
std::string library_to_string(const Library& lib);

/// Fail-fast parse: throws hb::Error (with line/col) on the first problem.
std::shared_ptr<const Library> load_library(std::istream& is);
std::shared_ptr<const Library> library_from_string(const std::string& text);

/// Recovering parse: problems are recorded in `sink` and parsing continues
/// at the next statement.  Cells with broken arcs keep their clean arcs;
/// sequential cells missing structural ports are dropped.  Callers must
/// check sink.has_errors() before trusting the result.
std::shared_ptr<const Library> load_library(std::istream& is,
                                            DiagnosticSink& sink);
std::shared_ptr<const Library> library_from_string(const std::string& text,
                                                   DiagnosticSink& sink);

}  // namespace hb
