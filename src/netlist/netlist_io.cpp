#include "netlist/netlist_io.hpp"

#include <functional>
#include <ostream>
#include <sstream>
#include <vector>

namespace hb {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) {
    if (t[0] == '#') break;
    toks.push_back(t);
  }
  return toks;
}

[[noreturn]] void parse_error(int lineno, const std::string& msg) {
  raise("netlist parse error at line " + std::to_string(lineno) + ": " + msg);
}

}  // namespace

void save_netlist(const Design& design, std::ostream& os) {
  os << "design " << design.name() << "\n";
  // Children before parents: the parser requires modules to be declared
  // before they are instantiated.
  std::vector<std::uint32_t> order;
  std::vector<char> state(design.num_modules(), 0);  // 0 new, 1 open, 2 done
  // Post-order DFS (iterative) over the instantiation relation.
  std::function<void(std::uint32_t)> visit = [&](std::uint32_t m) {
    if (state[m] != 0) return;
    state[m] = 1;
    for (const Instance& inst : design.module(ModuleId(m)).insts()) {
      if (!inst.is_cell()) visit(inst.module.value());
    }
    state[m] = 2;
    order.push_back(m);
  };
  for (std::uint32_t m = 0; m < design.num_modules(); ++m) visit(m);

  for (std::uint32_t m : order) {
    const Module& mod = design.module(ModuleId(m));
    os << "module " << mod.name() << "\n";
    for (const ModulePort& p : mod.ports()) {
      os << "  port " << p.name << ' '
         << (p.direction == PortDirection::kInput ? "input" : "output");
      if (p.is_clock) os << " clock";
      os << "\n";
    }
    for (const Instance& inst : mod.insts()) {
      if (inst.is_cell()) {
        os << "  inst " << inst.name << ' ' << design.lib().cell(inst.cell).name()
           << "\n";
      } else {
        os << "  minst " << inst.name << ' ' << design.module(inst.module).name()
           << "\n";
      }
    }
    for (std::uint32_t n = 0; n < mod.num_nets(); ++n) {
      os << "  net " << mod.net(NetId(n)).name << "\n";
    }
    for (std::uint32_t n = 0; n < mod.num_nets(); ++n) {
      const Net& net = mod.net(NetId(n));
      for (const PinRef& pin : net.pins) {
        const Instance& inst = mod.inst(pin.inst);
        os << "  conn " << net.name << ' ' << inst.name << '.'
           << design.target_port_name(inst, pin.port) << "\n";
      }
      for (std::uint32_t p : net.module_ports) {
        os << "  bind " << net.name << ' ' << mod.port(p).name << "\n";
      }
    }
    os << "endmodule\n";
  }
  if (design.top_id().valid()) {
    os << "top " << design.top().name() << "\n";
  }
}

std::string netlist_to_string(const Design& design) {
  std::ostringstream os;
  save_netlist(design, os);
  return os.str();
}

Design load_netlist(std::istream& is, std::shared_ptr<const Library> lib) {
  std::string line;
  int lineno = 0;

  // First line must be `design <name>`.
  std::string design_name;
  while (std::getline(is, line)) {
    ++lineno;
    auto toks = tokenize(line);
    if (toks.empty()) continue;
    if (toks[0] != "design" || toks.size() != 2) {
      parse_error(lineno, "expected `design <name>`");
    }
    design_name = toks[1];
    break;
  }
  if (design_name.empty()) raise("netlist parse error: empty input");

  Design design(design_name, std::move(lib));
  Module* cur = nullptr;
  ModuleId cur_id;

  while (std::getline(is, line)) {
    ++lineno;
    auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& kw = toks[0];

    if (kw == "module") {
      if (cur != nullptr) parse_error(lineno, "nested module");
      if (toks.size() != 2) parse_error(lineno, "expected `module <name>`");
      cur_id = design.add_module(toks[1]);
      cur = &design.module_mut(cur_id);
    } else if (kw == "endmodule") {
      if (cur == nullptr) parse_error(lineno, "endmodule outside module");
      cur = nullptr;
    } else if (kw == "top") {
      if (cur != nullptr) parse_error(lineno, "top inside module");
      if (toks.size() != 2) parse_error(lineno, "expected `top <module>`");
      ModuleId top = design.find_module(toks[1]);
      if (!top.valid()) parse_error(lineno, "unknown top module '" + toks[1] + "'");
      design.set_top(top);
    } else if (cur == nullptr) {
      parse_error(lineno, "statement outside module: " + kw);
    } else if (kw == "port") {
      if (toks.size() < 3 || toks.size() > 4) {
        parse_error(lineno, "expected `port <name> <input|output> [clock]`");
      }
      PortDirection dir;
      if (toks[2] == "input") {
        dir = PortDirection::kInput;
      } else if (toks[2] == "output") {
        dir = PortDirection::kOutput;
      } else {
        parse_error(lineno, "bad port direction '" + toks[2] + "'");
      }
      bool is_clock = false;
      if (toks.size() == 4) {
        if (toks[3] != "clock") parse_error(lineno, "expected `clock`");
        is_clock = true;
      }
      cur->add_port(toks[1], dir, is_clock);
    } else if (kw == "inst") {
      if (toks.size() != 3) parse_error(lineno, "expected `inst <name> <cell>`");
      CellId cell = design.lib().find(toks[2]);
      if (!cell.valid()) parse_error(lineno, "unknown cell '" + toks[2] + "'");
      cur->add_cell_inst(toks[1], cell, design.lib().cell(cell).ports().size());
    } else if (kw == "minst") {
      if (toks.size() != 3) parse_error(lineno, "expected `minst <name> <module>`");
      ModuleId sub = design.find_module(toks[2]);
      if (!sub.valid()) parse_error(lineno, "unknown module '" + toks[2] + "'");
      if (sub == cur_id) parse_error(lineno, "module instantiates itself");
      cur->add_module_inst(toks[1], sub, design.module(sub).ports().size());
    } else if (kw == "net") {
      if (toks.size() != 2) parse_error(lineno, "expected `net <name>`");
      cur->add_net(toks[1]);
    } else if (kw == "conn") {
      if (toks.size() != 3) parse_error(lineno, "expected `conn <net> <inst>.<port>`");
      NetId net = cur->find_net(toks[1]);
      if (!net.valid()) parse_error(lineno, "unknown net '" + toks[1] + "'");
      auto dot = toks[2].find('.');
      if (dot == std::string::npos) parse_error(lineno, "expected <inst>.<port>");
      InstId inst = cur->find_inst(toks[2].substr(0, dot));
      if (!inst.valid()) {
        parse_error(lineno, "unknown instance '" + toks[2].substr(0, dot) + "'");
      }
      const std::string port_name = toks[2].substr(dot + 1);
      const Instance& i = cur->inst(inst);
      std::optional<std::uint32_t> port;
      if (i.is_cell()) {
        port = design.lib().cell(i.cell).find_port(port_name);
      } else {
        port = design.module(i.module).find_port(port_name);
      }
      if (!port) parse_error(lineno, "unknown port '" + port_name + "'");
      cur->connect(inst, *port, net);
    } else if (kw == "bind") {
      if (toks.size() != 3) parse_error(lineno, "expected `bind <net> <port>`");
      NetId net = cur->find_net(toks[1]);
      if (!net.valid()) parse_error(lineno, "unknown net '" + toks[1] + "'");
      auto port = cur->find_port(toks[2]);
      if (!port) parse_error(lineno, "unknown port '" + toks[2] + "'");
      cur->bind_port(*port, net);
    } else {
      parse_error(lineno, "unknown keyword '" + kw + "'");
    }
  }
  if (cur != nullptr) raise("netlist parse error: unterminated module");
  return design;
}

Design netlist_from_string(const std::string& text,
                           std::shared_ptr<const Library> lib) {
  std::istringstream is(text);
  return load_netlist(is, std::move(lib));
}

}  // namespace hb
