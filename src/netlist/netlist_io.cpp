#include "netlist/netlist_io.hpp"

#include <functional>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/diagnostics.hpp"

namespace hb {
namespace {

void save_module(const Design& design, const Module& mod, std::ostream& os) {
  os << "module " << mod.name() << "\n";
  for (const ModulePort& p : mod.ports()) {
    os << "  port " << p.name << ' '
       << (p.direction == PortDirection::kInput ? "input" : "output");
    if (p.is_clock) os << " clock";
    os << "\n";
  }
  for (const Instance& inst : mod.insts()) {
    if (inst.is_cell()) {
      os << "  inst " << inst.name << ' ' << design.lib().cell(inst.cell).name()
         << "\n";
    } else {
      os << "  minst " << inst.name << ' ' << design.module(inst.module).name()
         << "\n";
    }
  }
  for (std::uint32_t n = 0; n < mod.num_nets(); ++n) {
    os << "  net " << mod.net(NetId(n)).name << "\n";
  }
  for (std::uint32_t n = 0; n < mod.num_nets(); ++n) {
    const Net& net = mod.net(NetId(n));
    for (const PinRef& pin : net.pins) {
      const Instance& inst = mod.inst(pin.inst);
      os << "  conn " << net.name << ' ' << inst.name << '.'
         << design.target_port_name(inst, pin.port) << "\n";
    }
    for (std::uint32_t p : net.module_ports) {
      os << "  bind " << net.name << ' ' << mod.port(p).name << "\n";
    }
  }
  os << "endmodule\n";
}

/// Statement-level parse failure; caught by the line loop, which records the
/// diagnostic and resynchronises at the next statement.
struct ParseAbort {
  Diagnostic diag;
};

[[noreturn]] void fail(DiagCode code, int line, int col, std::string msg,
                       std::string hint = {}) {
  throw ParseAbort{
      Diagnostic{code, Severity::kError, SourceLoc{line, col}, std::move(msg),
                 std::move(hint)}};
}

class NetlistParser {
 public:
  NetlistParser(std::shared_ptr<const Library> lib, DiagnosticSink& sink)
      : lib_(std::move(lib)), sink_(&sink) {}

  Design run(std::istream& is) {
    std::string line;

    // Header: the first statement must be `design <name>`.  On a malformed
    // header, recover with a placeholder name and reprocess the line as an
    // ordinary statement.
    std::string design_name;
    std::vector<Token> pending;
    while (std::getline(is, line)) {
      ++lineno_;
      auto toks = split_tokens(line);
      if (toks.empty()) continue;
      if (toks[0].text == "design" && toks.size() == 2) {
        design_name = toks[1].text;
      } else {
        sink_->add(DiagCode::kParseSyntax, Severity::kError,
                   SourceLoc{lineno_, toks[0].col}, "expected `design <name>`",
                   "netlists start with a `design` header");
        design_name = "<recovered>";
        pending = std::move(toks);
      }
      break;
    }
    if (design_name.empty()) {
      sink_->add(DiagCode::kParseEmptyInput, Severity::kFatal, SourceLoc{},
                 "empty input");
      return Design("<empty>", lib_);
    }

    Design design(design_name, lib_);
    if (!pending.empty()) statement(design, pending);
    while (std::getline(is, line)) {
      ++lineno_;
      const auto toks = split_tokens(line);
      if (toks.empty()) continue;
      statement(design, toks);
    }
    if (cur_ != nullptr) {
      sink_->add(DiagCode::kParseUnterminated, Severity::kError,
                 SourceLoc{lineno_, 0}, "unterminated module",
                 "add `endmodule`");
      cur_ = nullptr;
    }
    if (!design.top_id().valid()) {
      if (design.num_modules() == 0) {
        sink_->add(DiagCode::kParseEmptyInput, Severity::kFatal,
                   SourceLoc{lineno_, 0}, "input declares no module");
      } else {
        // Recover: the last declared module is almost always the intended
        // top (the writer emits children before parents).
        const ModuleId last = ModuleId(design.num_modules() - 1);
        sink_->add(DiagCode::kParseStructure, Severity::kError,
                   SourceLoc{lineno_, 0},
                   "no `top` statement; assuming module '" +
                       design.module(last).name() + "'",
                   "end the file with `top <module>`");
        design.set_top(last);
      }
    }
    return design;
  }

 private:
  void statement(Design& design, const std::vector<Token>& toks) {
    try {
      dispatch(design, toks);
    } catch (const ParseAbort& abort) {
      sink_->add(abort.diag);
    } catch (const Error& e) {
      // Database-level rejections (duplicate names, re-bound ports, ...)
      // become diagnostics at the statement that triggered them.
      sink_->add(DiagCode::kParseDuplicateName, Severity::kError,
                 SourceLoc{lineno_, toks[0].col}, e.what());
    }
  }

  void dispatch(Design& design, const std::vector<Token>& toks) {
    const std::string& kw = toks[0].text;
    const int at = toks[0].col;

    if (kw == "module") {
      if (cur_ != nullptr) {
        sink_->add(DiagCode::kParseStructure, Severity::kError,
                   SourceLoc{lineno_, at}, "nested module",
                   "previous module closed implicitly");
        cur_ = nullptr;
      }
      if (toks.size() != 2) {
        fail(DiagCode::kParseSyntax, lineno_, at, "expected `module <name>`");
      }
      cur_id_ = design.add_module(toks[1].text);
      cur_ = &design.module_mut(cur_id_);
    } else if (kw == "endmodule") {
      if (cur_ == nullptr) {
        fail(DiagCode::kParseStructure, lineno_, at, "endmodule outside module");
      }
      cur_ = nullptr;
    } else if (kw == "top") {
      if (cur_ != nullptr) {
        fail(DiagCode::kParseStructure, lineno_, at, "top inside module");
      }
      if (toks.size() != 2) {
        fail(DiagCode::kParseSyntax, lineno_, at, "expected `top <module>`");
      }
      ModuleId top = design.find_module(toks[1].text);
      if (!top.valid()) {
        fail(DiagCode::kParseUnknownName, lineno_, toks[1].col,
             "unknown top module '" + toks[1].text + "'");
      }
      design.set_top(top);
    } else if (cur_ == nullptr) {
      fail(DiagCode::kParseStructure, lineno_, at,
           "statement outside module: " + kw);
    } else if (kw == "port") {
      if (toks.size() < 3 || toks.size() > 4) {
        fail(DiagCode::kParseSyntax, lineno_, at,
             "expected `port <name> <input|output> [clock]`");
      }
      PortDirection dir;
      if (toks[2].text == "input") {
        dir = PortDirection::kInput;
      } else if (toks[2].text == "output") {
        dir = PortDirection::kOutput;
      } else {
        fail(DiagCode::kParseSyntax, lineno_, toks[2].col,
             "bad port direction '" + toks[2].text + "'");
      }
      bool is_clock = false;
      if (toks.size() == 4) {
        if (toks[3].text != "clock") {
          fail(DiagCode::kParseSyntax, lineno_, toks[3].col, "expected `clock`");
        }
        is_clock = true;
      }
      cur_->add_port(toks[1].text, dir, is_clock);
    } else if (kw == "inst") {
      if (toks.size() != 3) {
        fail(DiagCode::kParseSyntax, lineno_, at, "expected `inst <name> <cell>`");
      }
      CellId cell = design.lib().find(toks[2].text);
      if (!cell.valid()) {
        fail(DiagCode::kParseUnknownName, lineno_, toks[2].col,
             "unknown cell '" + toks[2].text + "'");
      }
      cur_->add_cell_inst(toks[1].text, cell,
                          design.lib().cell(cell).ports().size());
    } else if (kw == "minst") {
      if (toks.size() != 3) {
        fail(DiagCode::kParseSyntax, lineno_, at,
             "expected `minst <name> <module>`");
      }
      ModuleId sub = design.find_module(toks[2].text);
      if (!sub.valid()) {
        fail(DiagCode::kParseUnknownName, lineno_, toks[2].col,
             "unknown module '" + toks[2].text + "'",
             "modules must be declared before they are instantiated");
      }
      if (sub == cur_id_) {
        fail(DiagCode::kParseStructure, lineno_, toks[2].col,
             "module instantiates itself");
      }
      cur_->add_module_inst(toks[1].text, sub,
                            design.module(sub).ports().size());
    } else if (kw == "net") {
      if (toks.size() != 2) {
        fail(DiagCode::kParseSyntax, lineno_, at, "expected `net <name>`");
      }
      cur_->add_net(toks[1].text);
    } else if (kw == "conn") {
      if (toks.size() != 3) {
        fail(DiagCode::kParseSyntax, lineno_, at,
             "expected `conn <net> <inst>.<port>`");
      }
      NetId net = cur_->find_net(toks[1].text);
      if (!net.valid()) {
        fail(DiagCode::kParseUnknownName, lineno_, toks[1].col,
             "unknown net '" + toks[1].text + "'",
             "declare it with `net` before `conn`");
      }
      auto dot = toks[2].text.find('.');
      if (dot == std::string::npos) {
        fail(DiagCode::kParseSyntax, lineno_, toks[2].col,
             "expected <inst>.<port>");
      }
      InstId inst = cur_->find_inst(toks[2].text.substr(0, dot));
      if (!inst.valid()) {
        fail(DiagCode::kParseUnknownName, lineno_, toks[2].col,
             "unknown instance '" + toks[2].text.substr(0, dot) + "'");
      }
      const std::string port_name = toks[2].text.substr(dot + 1);
      const Instance& i = cur_->inst(inst);
      std::optional<std::uint32_t> port;
      if (i.is_cell()) {
        port = design.lib().cell(i.cell).find_port(port_name);
      } else {
        port = design.module(i.module).find_port(port_name);
      }
      if (!port) {
        fail(DiagCode::kParseUnknownName, lineno_, toks[2].col,
             "unknown port '" + port_name + "'");
      }
      cur_->connect(inst, *port, net);
    } else if (kw == "bind") {
      if (toks.size() != 3) {
        fail(DiagCode::kParseSyntax, lineno_, at, "expected `bind <net> <port>`");
      }
      NetId net = cur_->find_net(toks[1].text);
      if (!net.valid()) {
        fail(DiagCode::kParseUnknownName, lineno_, toks[1].col,
             "unknown net '" + toks[1].text + "'");
      }
      auto port = cur_->find_port(toks[2].text);
      if (!port) {
        fail(DiagCode::kParseUnknownName, lineno_, toks[2].col,
             "unknown port '" + toks[2].text + "'");
      }
      cur_->bind_port(*port, net);
    } else {
      fail(DiagCode::kParseUnknownKeyword, lineno_, at,
           "unknown keyword '" + kw + "'");
    }
  }

  std::shared_ptr<const Library> lib_;
  DiagnosticSink* sink_;
  int lineno_ = 0;
  Module* cur_ = nullptr;
  ModuleId cur_id_;
};

}  // namespace

void save_netlist(const Design& design, std::ostream& os) {
  os << "design " << design.name() << "\n";
  // Children before parents: the parser requires modules to be declared
  // before they are instantiated.
  std::vector<std::uint32_t> order;
  std::vector<char> state(design.num_modules(), 0);  // 0 new, 1 open, 2 done
  // Post-order DFS (iterative) over the instantiation relation.
  std::function<void(std::uint32_t)> visit = [&](std::uint32_t m) {
    if (state[m] != 0) return;
    state[m] = 1;
    for (const Instance& inst : design.module(ModuleId(m)).insts()) {
      if (!inst.is_cell()) visit(inst.module.value());
    }
    state[m] = 2;
    order.push_back(m);
  };
  for (std::uint32_t m = 0; m < design.num_modules(); ++m) visit(m);

  for (std::uint32_t m : order) {
    save_module(design, design.module(ModuleId(m)), os);
  }
  if (design.top_id().valid()) {
    os << "top " << design.top().name() << "\n";
  }
}

std::string netlist_to_string(const Design& design) {
  std::ostringstream os;
  save_netlist(design, os);
  return os.str();
}

Design load_netlist(std::istream& is, std::shared_ptr<const Library> lib,
                    DiagnosticSink& sink) {
  return NetlistParser(std::move(lib), sink).run(is);
}

Design load_netlist(std::istream& is, std::shared_ptr<const Library> lib) {
  DiagnosticSink sink;
  Design design = load_netlist(is, std::move(lib), sink);
  if (sink.has_errors()) raise_first_error("netlist parse error", sink);
  return design;
}

Design netlist_from_string(const std::string& text,
                           std::shared_ptr<const Library> lib,
                           DiagnosticSink& sink) {
  std::istringstream is(text);
  return load_netlist(is, std::move(lib), sink);
}

Design netlist_from_string(const std::string& text,
                           std::shared_ptr<const Library> lib) {
  std::istringstream is(text);
  return load_netlist(is, std::move(lib));
}

}  // namespace hb
