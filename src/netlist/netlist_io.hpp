// Textual netlist load/store — the stand-in for the OCT data base interface.
//
// Format (line oriented, '#' comments):
//
//   design <name>
//   module <name>
//     port <name> <input|output> [clock]
//     inst <name> <cellname>
//     minst <name> <modulename>       # submodule instance
//     net <name>
//     conn <net> <inst>.<port>        # bind instance terminal to net
//     bind <net> <portname>           # bind module port to net
//   endmodule
//   top <modulename>
//
// Modules must be declared before they are instantiated; `top` must come
// after all modules.  The writer emits exactly this format, and
// load(save(d)) == d structurally (tested by round-trip tests).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "netlist/design.hpp"

namespace hb {

class DiagnosticSink;

/// Serialise the design to the text format above.
void save_netlist(const Design& design, std::ostream& os);
std::string netlist_to_string(const Design& design);

/// Parse a design from the text format; throws hb::Error with a line number
/// on malformed input.
Design load_netlist(std::istream& is, std::shared_ptr<const Library> lib);
Design netlist_from_string(const std::string& text,
                           std::shared_ptr<const Library> lib);

/// Recovering parse: malformed statements are recorded in `sink` (with line
/// and column) and the parser resynchronises at the next line, so one bad
/// statement does not hide the rest of the file.  The returned design holds
/// everything that parsed cleanly; callers must check sink.has_errors()
/// before trusting it.
Design load_netlist(std::istream& is, std::shared_ptr<const Library> lib,
                    DiagnosticSink& sink);
Design netlist_from_string(const std::string& text,
                           std::shared_ptr<const Library> lib,
                           DiagnosticSink& sink);

}  // namespace hb
