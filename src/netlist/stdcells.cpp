#include "netlist/stdcells.hpp"

#include <array>

namespace hb {
namespace {

struct CombSpec {
  const char* family;
  int num_inputs;
  Unate unate;        // unateness of every input->output arc
  TimePs intr_rise;   // X1 intrinsic delays
  TimePs intr_fall;
  double slope_rise;  // X1 ps/fF
  double slope_fall;
  double in_cap;      // X1 input cap, fF
  double area;        // X1 area, um^2
};

// Representative generic-process values.  NAND/NOR/AOI/OAI are inverting;
// AND/OR/BUF are buffered (positive unate); XOR/XNOR/MUX are non-unate.
constexpr std::array<CombSpec, 13> kCombSpecs = {{
    {"INV", 1, Unate::kNegative, 28, 22, 4.6, 3.8, 1.8, 2.0},
    {"BUF", 1, Unate::kPositive, 52, 48, 3.2, 2.9, 1.6, 3.1},
    {"NAND2", 2, Unate::kNegative, 34, 28, 5.4, 4.3, 2.2, 2.9},
    {"NAND3", 3, Unate::kNegative, 46, 38, 6.3, 5.1, 2.5, 3.8},
    {"NOR2", 2, Unate::kNegative, 42, 30, 6.8, 4.6, 2.3, 2.9},
    {"NOR3", 3, Unate::kNegative, 58, 36, 8.4, 5.2, 2.6, 3.8},
    {"AND2", 2, Unate::kPositive, 62, 55, 3.4, 3.0, 2.0, 3.6},
    {"OR2", 2, Unate::kPositive, 68, 58, 3.6, 3.1, 2.0, 3.6},
    {"XOR2", 2, Unate::kNone, 88, 80, 5.8, 5.2, 3.4, 5.5},
    {"XNOR2", 2, Unate::kNone, 90, 82, 5.8, 5.2, 3.4, 5.5},
    {"AOI21", 3, Unate::kNegative, 48, 40, 6.6, 5.0, 2.4, 3.6},
    {"OAI21", 3, Unate::kNegative, 50, 41, 6.4, 5.1, 2.4, 3.6},
    {"MUX2", 3, Unate::kNone, 84, 78, 4.9, 4.4, 2.8, 5.8},
}};

// Per-drive scaling: stronger cells halve the load slope, grow input cap and
// area, and shave a little intrinsic delay.
struct DriveScale {
  const char* suffix;
  int drive;
  double slope;     // multiplies slope
  double cap;       // multiplies input cap
  double intr;      // multiplies intrinsic
  double area;      // multiplies area
};
constexpr std::array<DriveScale, 3> kDrives = {{
    {"X1", 1, 1.00, 1.00, 1.00, 1.0},
    {"X2", 2, 0.52, 1.70, 0.94, 1.6},
    {"X4", 4, 0.27, 3.10, 0.90, 2.7},
}};

void add_comb_family(Library& lib, const CombSpec& s) {
  static const char* kInNames[] = {"A", "B", "C", "D"};
  for (const DriveScale& d : kDrives) {
    Cell cell(std::string(s.family) + d.suffix, CellKind::kCombinational);
    for (int i = 0; i < s.num_inputs; ++i) {
      cell.add_port({kInNames[i], PortDirection::kInput, PortRole::kData,
                     s.in_cap * d.cap});
    }
    std::uint32_t out =
        cell.add_port({"Y", PortDirection::kOutput, PortRole::kData, 0.0});
    for (int i = 0; i < s.num_inputs; ++i) {
      TimingArc arc;
      arc.from_port = static_cast<std::uint32_t>(i);
      arc.to_port = out;
      arc.unate = s.unate;
      // Later inputs of a stack are slightly slower, as in real libraries.
      const TimePs stagger = 4 * i;
      arc.intrinsic_rise =
          static_cast<TimePs>(static_cast<double>(s.intr_rise + stagger) * d.intr);
      arc.intrinsic_fall =
          static_cast<TimePs>(static_cast<double>(s.intr_fall + stagger) * d.intr);
      arc.slope_rise = s.slope_rise * d.slope;
      arc.slope_fall = s.slope_fall * d.slope;
      cell.add_arc(arc);
    }
    cell.set_family(s.family, d.drive);
    cell.set_area(s.area * d.area);
    lib.add_cell(std::move(cell));
  }
}

// Sequential elements.  Arc CK->Q carries D_cz; arc D->Q (transparent kinds
// only) carries D_dz.  Setup lives in the SyncSpec.
void add_sync_cell(Library& lib, const std::string& name, CellKind kind,
                   TriggerEdge trigger, bool active_high, TimePs setup,
                   TimePs dcz, TimePs ddz, double slope, double dcap,
                   double ckcap, double area) {
  Cell cell(name, kind);
  std::uint32_t d =
      cell.add_port({"D", PortDirection::kInput, PortRole::kData, dcap});
  std::uint32_t ck =
      cell.add_port({"CK", PortDirection::kInput, PortRole::kControl, ckcap});
  std::uint32_t q =
      cell.add_port({"Q", PortDirection::kOutput, PortRole::kData, 0.0});

  TimingArc ckq;
  ckq.from_port = ck;
  ckq.to_port = q;
  ckq.unate = Unate::kNone;  // data may go either way when the element opens
  ckq.intrinsic_rise = dcz;
  ckq.intrinsic_fall = dcz;
  ckq.slope_rise = slope;
  ckq.slope_fall = slope;
  cell.add_arc(ckq);

  if (kind == CellKind::kTransparentLatch || kind == CellKind::kTristateDriver) {
    TimingArc dq;
    dq.from_port = d;
    dq.to_port = q;
    dq.unate = Unate::kPositive;
    dq.intrinsic_rise = ddz;
    dq.intrinsic_fall = ddz;
    dq.slope_rise = slope;
    dq.slope_fall = slope;
    cell.add_arc(dq);
  }

  SyncSpec sync;
  sync.data_in = d;
  sync.control = ck;
  sync.data_out = q;
  sync.setup = setup;
  sync.trigger = trigger;
  sync.active_high = active_high;
  cell.set_sync(sync);
  cell.set_area(area);
  lib.add_cell(std::move(cell));
}

}  // namespace

std::shared_ptr<const Library> make_standard_library() {
  auto lib = std::make_shared<Library>("hbcells");
  for (const CombSpec& s : kCombSpecs) add_comb_family(*lib, s);

  // Clock buffer: positive unate, strong drive, its own family so control
  // paths are recognisable.
  {
    Cell cb("CLKBUF", CellKind::kCombinational);
    cb.add_port({"A", PortDirection::kInput, PortRole::kData, 3.0});
    std::uint32_t y = cb.add_port({"Y", PortDirection::kOutput, PortRole::kData, 0.0});
    TimingArc arc;
    arc.from_port = 0;
    arc.to_port = y;
    arc.unate = Unate::kPositive;
    arc.intrinsic_rise = 60;
    arc.intrinsic_fall = 60;
    arc.slope_rise = 1.1;
    arc.slope_fall = 1.1;
    cb.add_arc(arc);
    cb.set_family("CLKBUF", 1);
    cb.set_area(4.5);
    lib->add_cell(std::move(cb));
  }

  // Synchronising elements (paper Section 5):
  //   DFFT - trailing edge triggered latch (the paper's worked case);
  //   DFFL - leading edge triggered;
  //   TLATCH/TLATCHN - level-sensitive transparent latches;
  //   TRIBUF - clocked tristate driver, "modeled in the same way as
  //            transparent latches".
  add_sync_cell(*lib, "DFFT", CellKind::kEdgeTriggeredLatch,
                TriggerEdge::kTrailing, true, /*setup=*/65, /*dcz=*/95,
                /*ddz=*/0, 3.6, 2.4, 1.9, 12.0);
  add_sync_cell(*lib, "DFFL", CellKind::kEdgeTriggeredLatch,
                TriggerEdge::kLeading, true, 65, 95, 0, 3.6, 2.4, 1.9, 12.0);
  add_sync_cell(*lib, "TLATCH", CellKind::kTransparentLatch,
                TriggerEdge::kTrailing, true, 55, 80, 70, 3.4, 2.2, 1.7, 7.5);
  add_sync_cell(*lib, "TLATCHN", CellKind::kTransparentLatch,
                TriggerEdge::kTrailing, false, 55, 80, 70, 3.4, 2.2, 1.7, 7.5);
  add_sync_cell(*lib, "TRIBUF", CellKind::kTristateDriver,
                TriggerEdge::kTrailing, true, 40, 70, 60, 3.0, 2.0, 1.6, 5.0);
  return lib;
}

}  // namespace hb
