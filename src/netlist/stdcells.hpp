// A self-contained static-CMOS standard-cell library in the spirit of the
// MSU/Berkeley standard cells the paper's experiments used.  Delay numbers
// are representative of a generic sub-micron process: what matters for the
// reproduction is the *form* of the model (empirical linear delay versus
// connected load, distinct rise/fall) rather than absolute values.
#pragma once

#include <memory>

#include "netlist/library.hpp"

namespace hb {

/// Build the default library.  Families (each in X1/X2/X4 drive variants):
/// INV, BUF, NAND2, NAND3, NOR2, NOR3, AND2, OR2, XOR2, XNOR2, AOI21,
/// OAI21, MUX2; clock buffer CLKBUF; synchronising elements DFFT (trailing-
/// edge triggered), DFFL (leading-edge triggered), TLATCH (transparent,
/// active high), TLATCHN (transparent, active low), TRIBUF (clocked
/// tristate driver, modelled as a transparent element per the paper).
std::shared_ptr<const Library> make_standard_library();

}  // namespace hb
