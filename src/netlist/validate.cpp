#include "netlist/validate.hpp"

#include <algorithm>
#include <unordered_map>

#include "netlist/flatten.hpp"

namespace hb {
namespace {

// Does any module reachable from `id` contain a sequential cell?
bool module_has_sequential(const Design& d, ModuleId id) {
  for (const Instance& inst : d.module(id).insts()) {
    if (inst.is_cell()) {
      if (d.lib().cell(inst.cell).is_sequential()) return true;
    } else if (module_has_sequential(d, inst.module)) {
      return true;
    }
  }
  return false;
}

class FlatChecker {
 public:
  FlatChecker(const Design& d, ValidationReport& report)
      : d_(d), top_(d.top()), report_(report) {}

  void run() {
    check_connections();
    check_drivers();
    check_comb_cycles();
    check_control_cones();
  }

 private:
  /// Record a finding under both representations (legacy string + structured).
  void finding(DiagCode code, std::string msg, std::vector<InstId> insts = {},
               std::vector<NetId> nets = {}) {
    report_.errors.push_back(msg);
    ValidationFinding f;
    f.diag.code = code;
    f.diag.severity = Severity::kError;
    f.diag.message = std::move(msg);
    f.insts = std::move(insts);
    f.nets = std::move(nets);
    report_.findings.push_back(std::move(f));
  }

  void check_connections() {
    for (std::uint32_t i = 0; i < top_.insts().size(); ++i) {
      const Instance& inst = top_.inst(InstId(i));
      for (std::uint32_t p = 0; p < inst.conn.size(); ++p) {
        if (!inst.conn[p].valid()) {
          finding(DiagCode::kDesignUnconnected,
                  "instance '" + inst.name + "' port '" +
                      d_.target_port_name(inst, p) + "' is unconnected",
                  {InstId(i)});
        }
      }
    }
  }

  void check_drivers() {
    for (std::uint32_t n = 0; n < top_.num_nets(); ++n) {
      const Net& net = top_.net(NetId(n));
      int drivers = 0;
      int tristate_drivers = 0;
      std::vector<InstId> driver_insts;
      for (const PinRef& pin : net.pins) {
        const Instance& inst = top_.inst(pin.inst);
        if (d_.target_port_dir(inst, pin.port) == PortDirection::kOutput) {
          ++drivers;
          driver_insts.push_back(pin.inst);
          if (inst.is_cell() &&
              d_.lib().cell(inst.cell).kind() == CellKind::kTristateDriver) {
            ++tristate_drivers;
          }
        }
      }
      for (std::uint32_t p : net.module_ports) {
        if (top_.port(p).direction == PortDirection::kInput) ++drivers;
      }
      if (drivers == 0 && !net.pins.empty()) {
        finding(DiagCode::kDesignNoDriver, "net '" + net.name + "' has no driver",
                {}, {NetId(n)});
      }
      // Multiple drivers are legal only when all of them are clocked
      // tristate drivers (a shared bus).
      if (drivers > 1 && tristate_drivers != drivers) {
        finding(DiagCode::kDesignMultiDriver,
                "net '" + net.name + "' has " + std::to_string(drivers) +
                    " drivers (only tristate buses may have several)",
                std::move(driver_insts), {NetId(n)});
      }
    }
  }

  // Kahn's algorithm over combinational cells only; sequential cells break
  // the paths (their D->Q dependence is not a combinational arc).
  void check_comb_cycles() {
    const auto& insts = top_.insts();
    std::vector<int> indeg(insts.size(), 0);
    // adjacency: comb inst -> comb insts reading its output net
    std::vector<std::vector<std::uint32_t>> succ(insts.size());
    for (std::uint32_t i = 0; i < insts.size(); ++i) {
      const Instance& inst = insts[i];
      if (inst.is_cell() && d_.lib().cell(inst.cell).is_sequential()) continue;
      for (std::uint32_t p = 0; p < inst.conn.size(); ++p) {
        if (d_.target_port_dir(inst, p) != PortDirection::kOutput) continue;
        if (!inst.conn[p].valid()) continue;
        const Net& net = top_.net(inst.conn[p]);
        for (const PinRef& pin : net.pins) {
          const Instance& sink = top_.inst(pin.inst);
          if (d_.target_port_dir(sink, pin.port) != PortDirection::kInput) continue;
          if (sink.is_cell() && d_.lib().cell(sink.cell).is_sequential()) continue;
          succ[i].push_back(pin.inst.value());
          ++indeg[pin.inst.value()];
        }
      }
    }
    std::vector<std::uint32_t> queue;
    for (std::uint32_t i = 0; i < insts.size(); ++i) {
      if (indeg[i] == 0) queue.push_back(i);
    }
    std::size_t seen = 0;
    while (!queue.empty()) {
      std::uint32_t i = queue.back();
      queue.pop_back();
      ++seen;
      for (std::uint32_t s : succ[i]) {
        if (--indeg[s] == 0) queue.push_back(s);
      }
    }
    if (seen != insts.size()) {
      // Every residual instance is on a cycle or strictly downstream of one;
      // implicate them all so degraded mode can excise the whole knot.  Name
      // the first one to keep the message readable.
      std::vector<InstId> on_cycle;
      for (std::uint32_t i = 0; i < insts.size(); ++i) {
        if (indeg[i] > 0) on_cycle.push_back(InstId(i));
      }
      std::string msg = "combinational cycle through instance '" +
                        insts[on_cycle.front().value()].name + "' (" +
                        std::to_string(on_cycle.size()) + " instances involved)";
      finding(DiagCode::kDesignCombCycle, std::move(msg), std::move(on_cycle));
    }
  }

  // For every synchronising-element control pin, walk the input cone.
  // Sources must include exactly one clock port; every cell on a
  // clock-to-control path must have determinate unateness and the composed
  // polarity must be unique (the paper's "monotonic combinational logic
  // function of exactly one clock signal").  Cones may also include
  // synchronising element outputs (enable paths) — those do not carry clock
  // polarity.
  void check_control_cones() {
    for (std::uint32_t i = 0; i < top_.insts().size(); ++i) {
      const Instance& inst = top_.inst(InstId(i));
      if (!inst.is_cell()) continue;
      const Cell& cell = d_.lib().cell(inst.cell);
      if (!cell.is_sequential()) continue;
      const std::uint32_t ctrl = cell.sync().control;
      if (!inst.conn[ctrl].valid()) continue;  // reported elsewhere
      trace_control(InstId(i), inst.name, inst.conn[ctrl]);
    }
  }

  struct ConeResult {
    int num_clocks = 0;
    std::string clock_name;
    bool monotonic = true;
  };

  void trace_control(InstId elem, const std::string& elem_name, NetId net) {
    // Polarity of each net w.r.t. the clock: 0 unvisited, +1 positive,
    // -1 negative, 2 conflict/non-unate.
    std::unordered_map<std::uint32_t, int> polarity;
    ConeResult res;
    walk_cone(net, +1, polarity, res);
    if (!res.monotonic) {
      finding(DiagCode::kDesignControlCone,
              "control input of '" + elem_name +
                  "' is not a monotonic function of one clock signal",
              {elem});
    } else if (res.num_clocks == 0) {
      finding(DiagCode::kDesignControlCone,
              "control input of '" + elem_name +
                  "' is not reachable from any clock port",
              {elem});
    } else if (res.num_clocks > 1) {
      finding(DiagCode::kDesignControlCone,
              "control input of '" + elem_name + "' depends on more than one clock",
              {elem});
    }
  }

  void walk_cone(NetId net_id, int pol,
                 std::unordered_map<std::uint32_t, int>& polarity,
                 ConeResult& res) {
    auto [it, inserted] = polarity.emplace(net_id.value(), pol);
    if (!inserted) {
      if (it->second != pol) res.monotonic = false;
      return;
    }
    const Net& net = top_.net(net_id);
    // Clock port driving this net?
    for (std::uint32_t p : net.module_ports) {
      const ModulePort& port = top_.port(p);
      if (port.direction == PortDirection::kInput && port.is_clock) {
        if (res.num_clocks == 0) {
          res.clock_name = port.name;
          ++res.num_clocks;
        } else if (res.clock_name != port.name) {
          ++res.num_clocks;
        }
      }
    }
    // Walk through combinational drivers.
    for (const PinRef& pin : net.pins) {
      const Instance& inst = top_.inst(pin.inst);
      if (d_.target_port_dir(inst, pin.port) != PortDirection::kOutput) continue;
      if (inst.is_cell() && d_.lib().cell(inst.cell).is_sequential()) {
        continue;  // enable path source; carries no clock polarity
      }
      if (!inst.is_cell()) {
        // Flat designs only reach here if validate() was handed hierarchy;
        // treat module as opaque non-unate.
        res.monotonic = false;
        continue;
      }
      const Cell& cell = d_.lib().cell(inst.cell);
      for (const TimingArc& arc : cell.arcs()) {
        if (arc.to_port != pin.port) continue;
        if (!inst.conn[arc.from_port].valid()) continue;
        // Non-unate gates break monotonicity, but the cone walk continues so
        // clock reachability is still discovered and reported sensibly.
        if (arc.unate == Unate::kNone) res.monotonic = false;
        const int next = arc.unate == Unate::kNegative ? -pol : pol;
        walk_cone(inst.conn[arc.from_port], next, polarity, res);
      }
    }
  }

  const Design& d_;
  const Module& top_;
  ValidationReport& report_;
};

}  // namespace

std::string ValidationReport::to_string() const {
  std::string out;
  for (const std::string& e : errors) {
    out += e;
    out += '\n';
  }
  return out;
}

ValidationReport validate(const Design& design) {
  ValidationReport report;

  // Hierarchy rule: instantiated submodules must be purely combinational.
  bool hierarchical = false;
  for (const Instance& inst : design.top().insts()) {
    if (!inst.is_cell()) {
      hierarchical = true;
      if (module_has_sequential(design, inst.module)) {
        const std::string msg = "submodule '" +
                                design.module(inst.module).name() +
                                "' contains synchronising elements";
        report.errors.push_back(msg);
        ValidationFinding f;
        f.diag.code = DiagCode::kDesignHierarchy;
        f.diag.severity = Severity::kFatal;  // not salvageable by quarantine
        f.diag.message = msg;
        report.findings.push_back(std::move(f));
      }
    }
  }
  if (!report.ok()) return report;

  if (hierarchical) {
    Design flat = flatten(design);
    FlatChecker(flat, report).run();
  } else {
    FlatChecker(design, report).run();
  }
  return report;
}

void validate_or_throw(const Design& design) {
  ValidationReport report = validate(design);
  if (!report.ok()) raise("design '" + design.name() + "' invalid:\n" + report.to_string());
}

std::vector<bool> compute_quarantine(const Design& flat_design,
                                     const ValidationReport& report) {
  const Module& top = flat_design.top();
  std::vector<bool> quarantined(top.insts().size(), false);
  std::vector<bool> dead(top.num_nets(), false);

  for (const ValidationFinding& f : report.findings) {
    for (InstId i : f.insts) {
      if (i.valid() && i.value() < quarantined.size()) quarantined[i.value()] = true;
    }
    for (NetId n : f.nets) {
      if (n.valid() && n.value() < dead.size()) dead[n.value()] = true;
    }
  }

  // Fixpoint: reading a dead net poisons the reader; a net all of whose
  // drivers are poisoned (and that no top-level input port drives) dies.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t i = 0; i < top.insts().size(); ++i) {
      if (quarantined[i]) continue;
      const Instance& inst = top.inst(InstId(i));
      for (std::uint32_t p = 0; p < inst.conn.size(); ++p) {
        if (!inst.conn[p].valid()) continue;
        if (flat_design.target_port_dir(inst, p) != PortDirection::kInput) continue;
        if (dead[inst.conn[p].value()]) {
          quarantined[i] = true;
          changed = true;
          break;
        }
      }
    }
    for (std::uint32_t n = 0; n < top.num_nets(); ++n) {
      if (dead[n]) continue;
      const Net& net = top.net(NetId(n));
      bool port_driven = false;
      for (std::uint32_t p : net.module_ports) {
        if (top.port(p).direction == PortDirection::kInput) {
          port_driven = true;
          break;
        }
      }
      if (port_driven) continue;
      int drivers = 0;
      int dead_drivers = 0;
      for (const PinRef& pin : net.pins) {
        const Instance& inst = top.inst(pin.inst);
        if (flat_design.target_port_dir(inst, pin.port) == PortDirection::kOutput) {
          ++drivers;
          if (quarantined[pin.inst.value()]) ++dead_drivers;
        }
      }
      if (drivers > 0 && dead_drivers == drivers) {
        dead[n] = true;
        changed = true;
      }
    }
  }
  return quarantined;
}

}  // namespace hb
