// Structural validation of designs against the paper's Section 3
// assumptions:
//   * data flows from input terminals to output terminals (single driver
//     per net, all terminals bound);
//   * no directed cycles within any portion of combinational logic;
//   * every synchronising-element control input is a *monotonic*
//     combinational function of exactly one clock signal (arbitrary enable
//     paths from synchronising element outputs are allowed, but the
//     clock-to-control polarity must be unambiguous);
//   * submodules are purely combinational (this library's hierarchy rule).
#pragma once

#include <string>
#include <vector>

#include "netlist/design.hpp"
#include "util/diagnostics.hpp"

namespace hb {

/// One structural problem, with the design objects it implicates so that
/// degraded-mode analysis (compute_quarantine) can excise exactly the
/// affected logic.  `insts` and `nets` refer to the *flat* design that was
/// checked: the design itself when it is flat, the internally flattened
/// copy otherwise.
struct ValidationFinding {
  Diagnostic diag;
  std::vector<InstId> insts;  // implicated top-level instances
  std::vector<NetId> nets;    // implicated (undrivable) top-level nets
};

struct ValidationReport {
  /// Legacy flat messages, one per finding (kept for existing callers).
  std::vector<std::string> errors;
  /// Structured findings, parallel to `errors`.
  std::vector<ValidationFinding> findings;
  bool ok() const { return errors.empty(); }
  /// All errors joined with newlines (empty when ok()).
  std::string to_string() const;
};

/// Validate a design (hierarchical designs are flattened internally for the
/// connectivity and cycle checks).  Never throws on *design* problems; all
/// findings are returned in the report.
ValidationReport validate(const Design& design);

/// Convenience: validate and throw hb::Error on the first problem.
void validate_or_throw(const Design& design);

/// Degraded-mode support: from a *flat* design and its validation report,
/// mark every instance that cannot be analysed.  Seeds are the implicated
/// instances/nets of the findings; the closure then propagates forward:
/// an instance reading a dead net is quarantined, and a net whose drivers
/// are all quarantined is dead (nets driven by top-level input ports stay
/// alive).  The indices of `report`'s findings must refer to `flat_design`
/// (i.e. call validate() on the same flat design).
std::vector<bool> compute_quarantine(const Design& flat_design,
                                     const ValidationReport& report);

}  // namespace hb
