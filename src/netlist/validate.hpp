// Structural validation of designs against the paper's Section 3
// assumptions:
//   * data flows from input terminals to output terminals (single driver
//     per net, all terminals bound);
//   * no directed cycles within any portion of combinational logic;
//   * every synchronising-element control input is a *monotonic*
//     combinational function of exactly one clock signal (arbitrary enable
//     paths from synchronising element outputs are allowed, but the
//     clock-to-control polarity must be unambiguous);
//   * submodules are purely combinational (this library's hierarchy rule).
#pragma once

#include <string>
#include <vector>

#include "netlist/design.hpp"

namespace hb {

struct ValidationReport {
  std::vector<std::string> errors;
  bool ok() const { return errors.empty(); }
  /// All errors joined with newlines (empty when ok()).
  std::string to_string() const;
};

/// Validate a design (hierarchical designs are flattened internally for the
/// connectivity and cycle checks).  Never throws on *design* problems; all
/// findings are returned in the report.
ValidationReport validate(const Design& design);

/// Convenience: validate and throw hb::Error on the first problem.
void validate_or_throw(const Design& design);

}  // namespace hb
