#include "scenario/corner_analysis.hpp"

#include <algorithm>
#include <sstream>

#include "util/faultinject.hpp"
#include "util/thread_pool.hpp"

namespace hb {
namespace {

// SplitMix64 finaliser (same fold as SlackEngine's pass checksums).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-sensitive checksum of a K-lane pass result: every lane of every
/// present slot feeds the sum, so a single corrupted corner lane diverges.
std::uint64_t corner_pass_checksum(const CornerPassResult& res) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  auto feed = [&h](std::uint64_t v) { h = mix64(h ^ v); };
  auto feed_side = [&](const PassSide& side) {
    feed(side.size());
    feed(side.lanes());
    for (std::size_t i = 0; i < side.size(); ++i) {
      if (side.has(i)) {
        for (std::size_t lane = 0; lane < side.lanes(); ++lane) {
          const RiseFall e = side.at(i, lane);
          feed(static_cast<std::uint64_t>(e.rise));
          feed(static_cast<std::uint64_t>(e.fall));
        }
      } else {
        feed(0x5b5e546a6d51a0baULL);  // "absent" sentinel (lane-uniform)
      }
    }
  };
  feed_side(res.ready);
  feed_side(res.required);
  return h;
}

/// Corner-k mirror of the report backtrace: trace the critical chain
/// through lane `lane`'s ready values, matching `prev + d == arrival` with
/// the corner's derated arc delays.
std::vector<PathStep> backtrace_corner(const SlackEngine& engine,
                                       const CornerDelays& delays,
                                       std::size_t lane, ClusterId c,
                                       const CornerPassResult& res,
                                       TNodeId end) {
  const TimingGraph& graph = engine.graph();
  std::vector<PathStep> rev;

  if (!res.ready.has(engine.local_index(end))) return rev;
  const RiseFall end_ready = res.ready.at(engine.local_index(end), lane);
  bool rising = end_ready.rise >= end_ready.fall;
  TNodeId node = end;
  TimePs arrival = rising ? end_ready.rise : end_ready.fall;

  for (;;) {
    rev.push_back({node, arrival, rising});
    if (!engine.sync().launches_at(node).empty()) break;

    bool found = false;
    for (std::uint32_t ai : graph.fanin(node)) {
      const TArcRec& arc = graph.arc(ai);
      if (!engine.clusters().cluster_of(arc.from).valid() ||
          engine.clusters().cluster_of(arc.from) != c) {
        continue;
      }
      if (!res.ready.has(engine.local_index(arc.from))) continue;
      const RiseFall from_ready =
          res.ready.at(engine.local_index(arc.from), lane);
      const RiseFall darc = delays.row(ai)[lane];
      const TimePs d = rising ? darc.rise : darc.fall;
      bool prev_rising = rising;
      TimePs prev_arrival = 0;
      switch (arc.unate) {
        case Unate::kPositive:
          prev_rising = rising;
          break;
        case Unate::kNegative:
          prev_rising = !rising;
          break;
        case Unate::kNone:
          prev_rising = from_ready.rise >= from_ready.fall;
          break;
      }
      prev_arrival = prev_rising ? from_ready.rise : from_ready.fall;
      if (prev_arrival + d == arrival) {
        node = arc.from;
        arrival = prev_arrival;
        rising = prev_rising;
        found = true;
        break;
      }
    }
    if (!found) break;  // should not happen; stop defensively
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

}  // namespace

CornerAnalysis::CornerAnalysis(const SlackEngine& engine, CornerSet corners)
    : engine_(&engine),
      corners_(corners.empty() ? CornerSet::identity() : std::move(corners)),
      delays_(engine.graph(), corners_) {
  const TimingGraph& graph = engine.graph();
  const ClusterSet& clusters = engine.clusters();
  local_of_node_.assign(graph.num_nodes(), 0);
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    const Cluster& cl = clusters.cluster(ClusterId(c));
    for (std::uint32_t i = 0; i < cl.nodes.size(); ++i) {
      local_of_node_[cl.nodes[i].index()] = i;
    }
  }
  cache_.resize(clusters.num_clusters());
  dirty_.resize(clusters.num_clusters());
  const std::size_t K = corners_.size();
  num_sync_ = engine.sync().num_instances();
  launch_slack_.assign(K * num_sync_, kInfinitePs);
  capture_slack_.assign(K * num_sync_, kInfinitePs);
  node_.assign(K, std::vector<NodeTiming>(graph.num_nodes()));
}

void CornerAnalysis::run_pass_into_cache(std::uint32_t c, std::size_t pass,
                                         ThreadPool* pool) {
  const ClusterId cid(c);
  run_corner_pass_into(engine_->graph(), engine_->sync(),
                       engine_->clusters().cluster(cid), local_of_node_,
                       engine_->edge_graph(cid), engine_->breaks(cid)[pass],
                       engine_->capture_insts(cid),
                       engine_->assigned_mask(cid, pass), delays_,
                       cache_[c].cache[pass], pool);
}

void CornerAnalysis::compute(ThreadPool* pool) {
  if (pool == nullptr) pool = env_analysis_pool();
  ++istats_.full_computes;
  const ClusterSet& clusters = engine_->clusters();
  const std::size_t K = corners_.size();

  const bool pooled = pool != nullptr && pool->size() > 1;
  const std::size_t par_min = sweep_tuning().min_parallel_nodes;
  task_fns_.clear();
  big_passes_.clear();
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    ClusterCache& cc = cache_[c];
    const std::size_t np = engine_->breaks(ClusterId(c)).size();
    while (cc.cache.size() < np) cc.cache.emplace_back(K);
    const bool big =
        pooled && clusters.cluster(ClusterId(c)).nodes.size() >= par_min;
    for (std::size_t p = 0; p < np; ++p) {
      ++istats_.passes_evaluated;
      if (big) {
        big_passes_.emplace_back(c, static_cast<std::uint32_t>(p));
      } else if (pooled) {
        task_fns_.push_back([this, c, p] { run_pass_into_cache(c, p, nullptr); });
      } else {
        run_pass_into_cache(c, p, nullptr);
      }
    }
  }
  if (!task_fns_.empty()) pool->run_batch(task_fns_);
  for (const auto& [c, p] : big_passes_) run_pass_into_cache(c, p, pool);

  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    ClusterCache& cc = cache_[c];
    const std::size_t np = engine_->breaks(ClusterId(c)).size();
    cc.checksums.resize(np);
    for (std::size_t p = 0; p < np; ++p) {
      cc.checksums[p] = corner_pass_checksum(cc.cache[p]);
    }
  }

  accumulate_all();
  cache_valid_ = true;
  for (ClusterDirty& d : dirty_) d.clear();
  maybe_corrupt_lanes();
}

void CornerAnalysis::accumulate_all() {
  std::fill(launch_slack_.begin(), launch_slack_.end(), kInfinitePs);
  std::fill(capture_slack_.begin(), capture_slack_.end(), kInfinitePs);
  for (std::vector<NodeTiming>& per_corner : node_) {
    std::fill(per_corner.begin(), per_corner.end(), NodeTiming{});
  }
  const ClusterSet& clusters = engine_->clusters();
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    const std::size_t np = engine_->breaks(ClusterId(c)).size();
    for (std::size_t p = 0; p < np; ++p) {
      accumulate(ClusterId(c), p, cache_[c].cache[p]);
    }
  }
}

void CornerAnalysis::accumulate(ClusterId c, std::size_t pass,
                                const CornerPassResult& res) {
  const SyncModel& sync = engine_->sync();
  const Cluster& cl = engine_->clusters().cluster(c);
  const ClockEdgeGraph& edges = engine_->edge_graph(c);
  const std::size_t break_node = engine_->breaks(c)[pass];
  const std::vector<SyncId>& captures = engine_->capture_insts(c);
  const std::vector<bool>& assigned = engine_->assigned_mask(c, pass);
  const std::size_t K = corners_.size();

  // Capture terminal slacks (assigned pass only), every corner lane.
  for (std::uint32_t k = 0; k < captures.size(); ++k) {
    if (!assigned[k]) continue;
    const SyncId id = captures[k];
    const SyncInstance& si = sync.at(id);
    const std::uint32_t li = local_of_node_[si.data_in.index()];
    if (!res.ready.has(li)) continue;
    const TimePs close =
        edges.linear_close(si.ideal_close, break_node) + si.close_offset();
    for (std::size_t lane = 0; lane < K; ++lane) {
      TimePs& slot = capture_slack_[lane * num_sync_ + id.index()];
      slot = std::min(slot, close - res.ready.at(li, lane).max());
    }
  }

  // Launch terminal slacks: min over passes of required - assertion.
  for (TNodeId n : cl.source_nodes) {
    const std::uint32_t li = local_of_node_[n.index()];
    if (!res.required.has(li)) continue;
    for (SyncId id : sync.launches_at(n)) {
      const SyncInstance& si = sync.at(id);
      const TimePs a =
          edges.linear_assert(si.ideal_assert, break_node) + si.assert_offset();
      for (std::size_t lane = 0; lane < K; ++lane) {
        TimePs& slot = launch_slack_[lane * num_sync_ + id.index()];
        slot = std::min(slot, res.required.at(li, lane).min() - a);
      }
    }
  }

  // Node timings, lane-wise (same merge rules as SlackEngine::accumulate).
  for (std::uint32_t i = 0; i < cl.nodes.size(); ++i) {
    if (!res.ready.has(i)) continue;
    const bool has_req = res.required.has(i);
    const std::size_t node_ix = cl.nodes[i].index();
    for (std::size_t lane = 0; lane < K; ++lane) {
      const RiseFall rdy = res.ready.at(i, lane);
      NodeTiming& nt = node_[lane][node_ix];
      ++nt.settling_count;
      if (!nt.has_ready) {
        nt.has_ready = true;
        if (!nt.has_constraint) nt.ready = rdy;
      } else if (!nt.has_constraint) {
        nt.ready = rf_max(nt.ready, rdy);
      }
      if (!has_req) continue;
      const RiseFall req = res.required.at(i, lane);
      const TimePs pass_slack =
          std::min(req.rise - rdy.rise, req.fall - rdy.fall);
      if (pass_slack < nt.slack) {
        nt.slack = pass_slack;
        nt.ready = rdy;
        nt.required = req;
        nt.has_constraint = true;
      }
    }
  }
}

void CornerAnalysis::reset_accumulation(ClusterId c) {
  const SyncModel& sync = engine_->sync();
  const Cluster& cl = engine_->clusters().cluster(c);
  const std::size_t K = corners_.size();
  for (std::size_t lane = 0; lane < K; ++lane) {
    for (TNodeId n : cl.source_nodes) {
      for (SyncId id : sync.launches_at(n)) {
        launch_slack_[lane * num_sync_ + id.index()] = kInfinitePs;
      }
    }
    for (TNodeId n : cl.sink_nodes) {
      for (SyncId id : sync.captures_at(n)) {
        capture_slack_[lane * num_sync_ + id.index()] = kInfinitePs;
      }
    }
    for (TNodeId n : cl.nodes) node_[lane][n.index()] = NodeTiming{};
  }
}

void CornerAnalysis::invalidate_offsets(SyncId id) {
  const SyncModel& sync = engine_->sync();
  const ClusterSet& clusters = engine_->clusters();
  const SyncInstance& si = sync.at(id);
  if (si.data_out.valid()) {
    const ClusterId c = clusters.cluster_of(si.data_out);
    if (c.valid()) {
      dirty_[c.index()].fwd.push_back(local_of_node_[si.data_out.index()]);
    }
  }
  if (si.data_in.valid()) {
    const ClusterId c = clusters.cluster_of(si.data_in);
    if (c.valid()) {
      dirty_[c.index()].bwd_of_pass.emplace_back(
          static_cast<std::uint32_t>(engine_->assigned_pass(id)),
          local_of_node_[si.data_in.index()]);
    }
  }
}

void CornerAnalysis::invalidate_offsets(const std::vector<SyncId>& ids) {
  for (SyncId id : ids) invalidate_offsets(id);
}

void CornerAnalysis::invalidate_node(TNodeId node) {
  const ClusterId c = engine_->clusters().cluster_of(node);
  if (!c.valid()) return;
  ClusterDirty& d = dirty_[c.index()];
  const std::uint32_t li = local_of_node_[node.index()];
  d.fwd.push_back(li);
  d.bwd.push_back(li);
}

void CornerAnalysis::invalidate_all() { cache_valid_ = false; }

bool CornerAnalysis::has_pending_invalidations() const {
  if (!cache_valid_) return true;
  for (const ClusterDirty& d : dirty_) {
    if (d.any()) return true;
  }
  return false;
}

void CornerAnalysis::refresh_arc_delays(
    const std::vector<std::uint32_t>& arc_ids) {
  delays_.refresh_arcs(engine_->graph(), corners_, arc_ids);
}

void CornerAnalysis::update(ThreadPool* pool) {
  if (pool == nullptr) pool = env_analysis_pool();
  if (cache_valid_ && self_check_) {
    if (!verify_cache()) ++istats_.self_heals;
  }
  if (!cache_valid_) {
    compute(pool);
    return;
  }
  ++istats_.updates;

  const ClusterSet& clusters = engine_->clusters();
  num_update_tasks_ = 0;
  const bool pooled = pool != nullptr && pool->size() > 1;
  const std::size_t par_min = sweep_tuning().min_parallel_nodes;
  auto new_task = [this]() -> UpdateTask& {
    if (num_update_tasks_ == update_tasks_.size()) update_tasks_.emplace_back();
    UpdateTask& t = update_tasks_[num_update_tasks_++];
    t.bwd.clear();
    t.full = false;
    t.retraced = 0;
    return t;
  };
  dirty_clusters_.clear();
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    ClusterDirty& d = dirty_[c];
    if (!d.any()) continue;
    dirty_clusters_.push_back(c);
    const Cluster& cl = clusters.cluster(ClusterId(c));
    const std::size_t np = engine_->breaks(ClusterId(c)).size();

    probe_bwd_.clear();
    for (std::uint32_t li : d.bwd) probe_bwd_.push_back(li);
    for (const auto& [pass, li] : d.bwd_of_pass) probe_bwd_.push_back(li);
    const std::size_t cone = pass_cone_size(cl, d.fwd, probe_bwd_, probe_ws_);
    const std::size_t par =
        (pooled && cl.nodes.size() >= par_min)
            ? std::min<std::size_t>(static_cast<std::size_t>(pool->size()), 8)
            : 1;
    const bool full =
        cone * kFullSweepDen * par > cl.nodes.size() * kFullSweepNum * 2;

    for (std::size_t p = 0; p < np; ++p) {
      UpdateTask& task = new_task();
      task.cluster = c;
      task.pass = static_cast<std::uint32_t>(p);
      task.bwd = d.bwd;
      for (const auto& [pass, li] : d.bwd_of_pass) {
        if (pass == p) task.bwd.push_back(li);
      }
      if (d.fwd.empty() && task.bwd.empty()) {
        --num_update_tasks_;
        continue;
      }
      task.full = full;
      if (full) {
        ++istats_.passes_full_swept;
      } else {
        ++istats_.passes_updated;
      }
    }
  }
  istats_.passes_reused += engine_->num_passes_total() - num_update_tasks_;

  auto run_task = [this](UpdateTask& task, ThreadPool* sweep_pool) {
    const ClusterId cid(task.cluster);
    const Cluster& cl = engine_->clusters().cluster(cid);
    ClusterCache& cc = cache_[task.cluster];
    if (task.full) {
      run_pass_into_cache(task.cluster, task.pass, sweep_pool);
      task.retraced = 2 * cl.nodes.size();
    } else {
      task.retraced = update_corner_pass(
          engine_->graph(), engine_->sync(), cl, engine_->edge_graph(cid),
          engine_->breaks(cid)[task.pass], engine_->capture_insts(cid),
          engine_->assigned_mask(cid, task.pass), delays_,
          dirty_[task.cluster].fwd, task.bwd, cc.cache[task.pass], task.ws);
    }
  };
  if (pooled && num_update_tasks_ > 1) {
    task_fns_.clear();
    big_task_ids_.clear();
    for (std::size_t i = 0; i < num_update_tasks_; ++i) {
      UpdateTask* task = &update_tasks_[i];
      const Cluster& cl = clusters.cluster(ClusterId(task->cluster));
      if (task->full && cl.nodes.size() >= par_min) {
        big_task_ids_.push_back(i);
      } else {
        task_fns_.push_back([&run_task, task] { run_task(*task, nullptr); });
      }
    }
    if (!task_fns_.empty()) pool->run_batch(task_fns_);
    for (std::size_t i : big_task_ids_) run_task(update_tasks_[i], pool);
  } else {
    for (std::size_t i = 0; i < num_update_tasks_; ++i) {
      run_task(update_tasks_[i], pool);
    }
  }
  for (std::size_t i = 0; i < num_update_tasks_; ++i) {
    const UpdateTask& task = update_tasks_[i];
    istats_.nodes_retraced += task.retraced;
    ClusterCache& cc = cache_[task.cluster];
    cc.checksums[task.pass] = corner_pass_checksum(cc.cache[task.pass]);
  }

  for (std::uint32_t c : dirty_clusters_) {
    reset_accumulation(ClusterId(c));
    const std::size_t np = engine_->breaks(ClusterId(c)).size();
    for (std::size_t p = 0; p < np; ++p) {
      accumulate(ClusterId(c), p, cache_[c].cache[p]);
    }
    dirty_[c].clear();
  }
  maybe_corrupt_lanes();
}

bool CornerAnalysis::verify_cache() {
  if (!cache_valid_) return true;
  ++istats_.self_checks;
  const ClusterSet& clusters = engine_->clusters();
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    const ClusterCache& cc = cache_[c];
    const std::size_t np = engine_->breaks(ClusterId(c)).size();
    for (std::size_t p = 0; p < np; ++p) {
      if (corner_pass_checksum(cc.cache[p]) != cc.checksums[p]) {
        cache_valid_ = false;
        return false;
      }
    }
  }
  return true;
}

void CornerAnalysis::maybe_corrupt_lanes() {
  FaultInjector& injector = FaultInjector::instance();
  if (!injector.armed()) return;
  if (!injector.should_fire(FaultSite::kCornerLaneCorrupt)) return;
  const std::size_t total = engine_->num_passes_total();
  if (total == 0) return;
  const std::uint64_t r = injector.draw(FaultSite::kCornerLaneCorrupt);
  std::size_t target = r % total;
  const std::size_t lane = static_cast<std::size_t>(r / total) % corners_.size();
  const ClusterSet& clusters = engine_->clusters();
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    ClusterCache& cc = cache_[c];
    const std::size_t np = engine_->breaks(ClusterId(c)).size();
    if (target >= np) {
      target -= np;
      continue;
    }
    CornerPassResult& res = cc.cache[target];
    for (std::size_t i = 0; i < res.ready.size(); ++i) {
      if (res.ready.has(i)) {
        RiseFall e = res.ready.at(i, lane);
        e.rise += 1000;  // 1ns of silent error in one corner lane
        res.ready.set(i, lane, e);
        return;
      }
    }
    if (res.ready.size() > 0) res.ready.set(0, lane, RiseFall{0, 0});
    return;
  }
}

TimePs CornerAnalysis::worst_terminal_slack(std::size_t k) const {
  TimePs worst = kInfinitePs;
  for (std::size_t i = 0; i < num_sync_; ++i) {
    worst = std::min(worst, launch_slack_[k * num_sync_ + i]);
    worst = std::min(worst, capture_slack_[k * num_sync_ + i]);
  }
  return worst;
}

MergedSlack CornerAnalysis::merged_launch_slack(SyncId id) const {
  MergedSlack m;
  for (std::size_t k = 0; k < corners_.size(); ++k) {
    const TimePs s = launch_slack(k, id);
    if (s < m.slack) {
      m.slack = s;
      m.corner = static_cast<std::uint32_t>(k);
    }
  }
  return m;
}

MergedSlack CornerAnalysis::merged_capture_slack(SyncId id) const {
  MergedSlack m;
  for (std::size_t k = 0; k < corners_.size(); ++k) {
    const TimePs s = capture_slack(k, id);
    if (s < m.slack) {
      m.slack = s;
      m.corner = static_cast<std::uint32_t>(k);
    }
  }
  return m;
}

MergedSlack CornerAnalysis::merged_worst_slack() const {
  MergedSlack m;
  for (std::size_t k = 0; k < corners_.size(); ++k) {
    const TimePs s = worst_terminal_slack(k);
    if (s < m.slack) {
      m.slack = s;
      m.corner = static_cast<std::uint32_t>(k);
    }
  }
  return m;
}

std::vector<SlowPath> CornerAnalysis::slow_paths(std::size_t k,
                                                 std::size_t max_paths) const {
  const SyncModel& sync = engine_->sync();
  const TimePs slack_limit = 0;

  std::vector<SyncId> violators;
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    const SyncInstance& si = sync.at(SyncId(i));
    if (!si.data_in.valid()) continue;
    const TimePs s = capture_slack(k, SyncId(i));
    if (s != kInfinitePs && s < slack_limit) violators.push_back(SyncId(i));
  }
  // (slack, SyncId) order — identical to the single-corner enumeration, so
  // the K=1 identity run reproduces the legacy path list byte for byte.
  std::sort(violators.begin(), violators.end(), [&](SyncId a, SyncId b) {
    const TimePs sa = capture_slack(k, a), sb = capture_slack(k, b);
    if (sa != sb) return sa < sb;
    return a.index() < b.index();
  });
  if (violators.size() > max_paths) violators.resize(max_paths);

  std::vector<SlowPath> out;
  CornerPassResult res(corners_.size());
  for (SyncId cap : violators) {
    const SyncInstance& si = sync.at(cap);
    const ClusterId c = engine_->clusters().cluster_of(si.data_in);
    if (!c.valid()) continue;
    const std::size_t pass = engine_->assigned_pass(cap);
    run_corner_pass_into(engine_->graph(), sync,
                         engine_->clusters().cluster(c), local_of_node_,
                         engine_->edge_graph(c), engine_->breaks(c)[pass],
                         engine_->capture_insts(c),
                         engine_->assigned_mask(c, pass), delays_, res);

    SlowPath path;
    path.slack = capture_slack(k, cap);
    path.capture = cap;
    path.steps = backtrace_corner(*engine_, delays_, k, c, res, si.data_in);
    if (!path.steps.empty()) {
      const PathStep& first = path.steps.front();
      for (SyncId l : sync.launches_at(first.node)) {
        path.launch = l;  // all launch instances share the node; keep last
      }
    }
    out.push_back(std::move(path));
  }
  return out;
}

std::vector<CornerPath> CornerAnalysis::merged_slow_paths(
    std::size_t max_paths) const {
  const SyncModel& sync = engine_->sync();
  // Violating (corner, capture) pairs, ordered by (slack, corner index,
  // SyncId) — equal worst slacks across corners resolve to the lower corner
  // index, mirroring the (slack, SyncId) rule within one corner.
  struct Entry {
    TimePs slack;
    std::uint32_t corner;
    SyncId capture;
  };
  std::vector<Entry> entries;
  for (std::size_t k = 0; k < corners_.size(); ++k) {
    for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
      const SyncInstance& si = sync.at(SyncId(i));
      if (!si.data_in.valid()) continue;
      const TimePs s = capture_slack(k, SyncId(i));
      if (s != kInfinitePs && s < 0) {
        entries.push_back({s, static_cast<std::uint32_t>(k), SyncId(i)});
      }
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.slack != b.slack) return a.slack < b.slack;
    if (a.corner != b.corner) return a.corner < b.corner;
    return a.capture.index() < b.capture.index();
  });
  if (entries.size() > max_paths) entries.resize(max_paths);

  std::vector<CornerPath> out;
  CornerPassResult res(corners_.size());
  for (const Entry& e : entries) {
    const SyncInstance& si = sync.at(e.capture);
    const ClusterId c = engine_->clusters().cluster_of(si.data_in);
    if (!c.valid()) continue;
    const std::size_t pass = engine_->assigned_pass(e.capture);
    run_corner_pass_into(engine_->graph(), sync,
                         engine_->clusters().cluster(c), local_of_node_,
                         engine_->edge_graph(c), engine_->breaks(c)[pass],
                         engine_->capture_insts(c),
                         engine_->assigned_mask(c, pass), delays_, res);
    CornerPath cp;
    cp.corner = e.corner;
    cp.path.slack = e.slack;
    cp.path.capture = e.capture;
    cp.path.steps =
        backtrace_corner(*engine_, delays_, e.corner, c, res, si.data_in);
    if (!cp.path.steps.empty()) {
      for (SyncId l : sync.launches_at(cp.path.steps.front().node)) {
        cp.path.launch = l;
      }
    }
    out.push_back(std::move(cp));
  }
  return out;
}

std::string CornerAnalysis::report(std::size_t k, std::size_t max_paths) const {
  const SyncModel& sync = engine_->sync();
  // Summary, format-identical to timing_summary() over this corner's slacks.
  std::size_t terminals = 0, violations = 0;
  TimePs worst = kInfinitePs;
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    for (TimePs s : {launch_slack(k, SyncId(i)), capture_slack(k, SyncId(i))}) {
      if (s == kInfinitePs) continue;
      ++terminals;
      if (s <= 0) ++violations;
      worst = std::min(worst, s);
    }
  }
  std::ostringstream os;
  os << "terminals: " << terminals << ", violations: " << violations
     << ", worst slack: "
     << (worst == kInfinitePs ? "+inf" : format_time(worst))
     << ", clusters: " << engine_->clusters().num_clusters()
     << ", analysis passes: " << engine_->num_passes_total() << "\n";

  // Paths, format-identical to format_paths() with corner-k arrivals.
  for (const SlowPath& p : slow_paths(k, max_paths)) {
    os << "slow path: slack " << format_time(p.slack) << ", capture "
       << sync.at(p.capture).label;
    if (p.launch.valid()) os << ", launch " << sync.at(p.launch).label;
    os << "\n";
    for (const PathStep& s : p.steps) {
      os << "    " << engine_->graph().node_name(s.node) << " "
         << (s.rising ? "^" : "v") << " @ " << format_time(s.arrival) << "\n";
    }
  }
  return os.str();
}

std::vector<HoldViolation> CornerAnalysis::check_hold_times(
    std::size_t k, TimePs hold_margin, ThreadPool* pool) const {
  return check_hold(*engine_, hold_margin, pool, delays_.data(),
                    delays_.lanes(), k);
}

}  // namespace hb
