// Multi-corner analysis orchestrator (docs/SCENARIOS.md).
//
// Wraps a prepared SlackEngine and evaluates its analysis passes under all
// K corners of a CornerSet in single K-lane sweeps (scenario/corner_sweep).
// The engine's pre-processing — clusters, clock-edge graphs, break nodes,
// capture/pass assignment — depends only on the ideal clock schedule, never
// on delays, so it is shared verbatim across corners: the schedule is
// settled once (Algorithm 1 on the base corner) and signed off under every
// corner here.
//
// The orchestrator mirrors the engine's incremental contract lane-wise:
// invalidations dirty the same cones, the same cone-vs-full-sweep cost
// model decides patch or re-sweep per cluster, cached K-lane results carry
// write-time checksums with optional paranoid verification and self-heal,
// and update() reproduces compute() bit for bit per corner
// (tests/corner_test.cpp).  A K=1 identity CornerSet reproduces the
// wrapped engine's slacks, node timings and report text byte for byte.
//
// Cross-corner merges (worst slack per terminal, globally worst corner,
// merged path enumeration) break ties deterministically by corner *index*,
// mirroring the (slack, SyncId) rule of the path reports.
#pragma once

#include <string>

#include "scenario/corner_sweep.hpp"
#include "sta/hold_check.hpp"
#include "sta/report.hpp"

namespace hb {

/// A worst-across-corners merge result: the worst slack and the corner
/// index it came from (lowest index among equal-slack corners).
struct MergedSlack {
  TimePs slack = kInfinitePs;
  std::uint32_t corner = 0;
};

/// One enumerated slow path tagged with its corner.
struct CornerPath {
  std::uint32_t corner = 0;
  SlowPath path;
};

class CornerAnalysis {
 public:
  /// `engine` must stay alive and keep its pre-processing (it need not have
  /// been computed); `corners` must be non-empty.
  CornerAnalysis(const SlackEngine& engine, CornerSet corners);

  std::size_t num_corners() const { return corners_.size(); }
  const CornerSet& corner_set() const { return corners_; }
  const SlackEngine& engine() const { return *engine_; }
  const CornerDelays& delays() const { return delays_; }

  /// Evaluate every pass under all corners in K-lane sweeps.  Pooling
  /// mirrors SlackEngine::compute: independent passes fan out, big clusters
  /// run level-parallel; results are byte-identical at every thread count.
  void compute(ThreadPool* pool = nullptr);

  // -- Dirty-set API (mirrors SlackEngine's; see slack_engine.hpp) --------
  void invalidate_offsets(SyncId id);
  void invalidate_offsets(const std::vector<SyncId>& ids);
  void invalidate_node(TNodeId node);
  void invalidate_all();
  bool has_pending_invalidations() const;

  /// Re-derate the delay rows of `arc_ids` from the graph's current delays
  /// (after TimingGraph::update_instance_delays; pair with invalidate_node
  /// on the changed arcs' endpoints).
  void refresh_arc_delays(const std::vector<std::uint32_t>& arc_ids);

  /// Bring all corners up to date; incremental when the cache is valid,
  /// bit-identical to compute() either way.
  void update(ThreadPool* pool = nullptr);

  const IncrementalStats& incremental_stats() const { return istats_; }

  void set_self_check(bool on) { self_check_ = on; }
  bool self_check() const { return self_check_; }
  /// Verify cached K-lane results against their write-time checksums; drops
  /// the cache and returns false on divergence (any lane of any slot).
  bool verify_cache();

  // -- Per-corner results (valid after compute()/update()) ----------------
  TimePs launch_slack(std::size_t k, SyncId id) const {
    return launch_slack_[k * num_sync_ + id.index()];
  }
  TimePs capture_slack(std::size_t k, SyncId id) const {
    return capture_slack_[k * num_sync_ + id.index()];
  }
  TimePs worst_terminal_slack(std::size_t k) const;
  const NodeTiming& node_timing(std::size_t k, TNodeId id) const {
    return node_[k][id.index()];
  }
  const std::vector<NodeTiming>& node_timings(std::size_t k) const {
    return node_[k];
  }

  // -- Worst-across-corners merges (ties -> lowest corner index) ----------
  MergedSlack merged_launch_slack(SyncId id) const;
  MergedSlack merged_capture_slack(SyncId id) const;
  /// Worst terminal slack over all corners.
  MergedSlack merged_worst_slack() const;

  /// Corner-k slow paths: violating captures under corner k, worst first,
  /// each backtraced through corner k's lane values and derated delays.
  std::vector<SlowPath> slow_paths(std::size_t k,
                                   std::size_t max_paths = 10) const;
  /// Merged enumeration over all corners, ordered by (slack, corner index,
  /// capture SyncId) — the deterministic cross-corner tie-break.
  std::vector<CornerPath> merged_slow_paths(std::size_t max_paths = 10) const;

  /// Corner-k text report, format-identical to Hummingbird::report(); with
  /// a K=1 identity set the bytes match it exactly.
  std::string report(std::size_t k, std::size_t max_paths = 10) const;

  /// Hold checks under corner k's derated delays.
  std::vector<HoldViolation> check_hold_times(std::size_t k,
                                              TimePs hold_margin = 0,
                                              ThreadPool* pool = nullptr) const;

  /// Cached K-lane result of one pass (exposed for the differential tests).
  const CornerPassResult& cached_pass(ClusterId c, std::size_t pass) const {
    return cache_[c.index()].cache.at(pass);
  }

 private:
  struct ClusterCache {
    std::vector<CornerPassResult> cache;   // [pass], K lanes each
    std::vector<std::uint64_t> checksums;  // [pass], taken at write time
  };
  /// Pending invalidations of one cluster, in local node indices (the same
  /// shape as SlackEngine's dirty sets).
  struct ClusterDirty {
    std::vector<std::uint32_t> fwd;
    std::vector<std::uint32_t> bwd;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> bwd_of_pass;
    bool any() const {
      return !fwd.empty() || !bwd.empty() || !bwd_of_pass.empty();
    }
    void clear() {
      fwd.clear();
      bwd.clear();
      bwd_of_pass.clear();
    }
  };

  // Same cone-vs-full-sweep crossover as SlackEngine (docs/ALGORITHMS.md
  // §7); the K-lane fold scales both sides of the comparison equally.
  static constexpr std::size_t kFullSweepNum = 1;
  static constexpr std::size_t kFullSweepDen = 2;

  void run_pass_into_cache(std::uint32_t c, std::size_t pass,
                           ThreadPool* pool);
  void accumulate(ClusterId c, std::size_t pass, const CornerPassResult& res);
  void reset_accumulation(ClusterId c);
  void accumulate_all();
  /// Fault-injection hook (FaultSite::kCornerLaneCorrupt): perturb one lane
  /// of one cached entry after its checksum was taken.
  void maybe_corrupt_lanes();

  const SlackEngine* engine_;
  CornerSet corners_;
  CornerDelays delays_;
  std::vector<std::uint32_t> local_of_node_;

  std::vector<ClusterCache> cache_;  // by cluster
  std::vector<ClusterDirty> dirty_;  // by cluster
  bool cache_valid_ = false;
  bool self_check_ = false;
  IncrementalStats istats_;

  // Persistent update() machinery, mirroring SlackEngine's task slots.
  struct UpdateTask {
    std::uint32_t cluster = 0;
    std::uint32_t pass = 0;
    bool full = false;
    std::vector<std::uint32_t> bwd;
    PassWorkspace ws;
    std::size_t retraced = 0;
  };
  std::vector<UpdateTask> update_tasks_;
  std::size_t num_update_tasks_ = 0;
  std::vector<std::function<void()>> task_fns_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> big_passes_;
  std::vector<std::size_t> big_task_ids_;
  std::vector<std::uint32_t> dirty_clusters_;
  std::vector<std::uint32_t> probe_bwd_;
  PassWorkspace probe_ws_;

  // Per-corner accumulation: flat [corner * num_sync_ + SyncId] slacks and
  // one NodeTiming array per corner.
  std::size_t num_sync_ = 0;
  std::vector<TimePs> launch_slack_;
  std::vector<TimePs> capture_slack_;
  std::vector<std::vector<NodeTiming>> node_;
};

}  // namespace hb
