#include "scenario/corner_set.hpp"

#include <sstream>

namespace hb {
namespace {

constexpr std::uint32_t kMinPm = 1;
constexpr std::uint32_t kMaxPm = 100000;

/// Parse a per-mille factor token; returns false (and diagnoses) on
/// anything that is not an integer in [kMinPm, kMaxPm].
bool parse_pm(const Token& tok, int line, DiagnosticSink& sink,
              std::uint32_t& out) {
  const std::string& s = tok.text;
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    sink.add(DiagCode::kParseBadNumber, Severity::kError, {line, tok.col},
             "'" + s + "' is not a per-mille derate factor",
             "factors are plain integers, e.g. 1250 for 25% slower");
    return false;
  }
  unsigned long long v = 0;
  try {
    v = std::stoull(s);
  } catch (...) {
    v = kMaxPm + 1;
  }
  if (v < kMinPm || v > kMaxPm) {
    sink.add(DiagCode::kParseBadNumber, Severity::kError, {line, tok.col},
             "derate factor " + s + " is outside [" + std::to_string(kMinPm) +
                 ", " + std::to_string(kMaxPm) + "] per mille");
    return false;
  }
  out = static_cast<std::uint32_t>(v);
  return true;
}

}  // namespace

CornerSet CornerSet::identity() {
  CornerSet set;
  set.add(Corner{"typical", kIdentityPm, kIdentityPm, {}});
  return set;
}

std::size_t CornerSet::add(Corner corner) {
  corners_.push_back(std::move(corner));
  return corners_.size() - 1;
}

std::size_t CornerSet::find(const std::string& name) const {
  for (std::size_t k = 0; k < corners_.size(); ++k) {
    if (corners_[k].name == name) return k;
  }
  return npos;
}

bool CornerSet::all_identity() const {
  for (const Corner& c : corners_) {
    if (!c.is_identity()) return false;
  }
  return true;
}

CornerSet parse_corner_spec(const std::string& text, DiagnosticSink& sink) {
  CornerSet set;
  std::istringstream in(text);
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const std::vector<Token> toks = split_tokens(raw);
    if (toks.empty()) continue;  // blank / comment: nothing to recover from
    const std::string& kw = toks[0].text;

    if (kw == "corner") {
      if (toks.size() != 3) {
        sink.add(DiagCode::kParseSyntax, Severity::kError, {line, toks[0].col},
                 "`corner` expects `corner <name> <derate_pm>`, got " +
                     std::to_string(toks.size() - 1) + " argument(s)");
        continue;
      }
      if (set.find(toks[1].text) != CornerSet::npos) {
        sink.add(DiagCode::kParseDuplicateName, Severity::kError,
                 {line, toks[1].col},
                 "corner '" + toks[1].text + "' declared twice");
        continue;
      }
      std::uint32_t pm = 0;
      if (!parse_pm(toks[2], line, sink, pm)) continue;
      set.add(Corner{toks[1].text, pm, pm, {}});
      continue;
    }

    if (kw == "wire" || kw == "cell") {
      const bool is_cell = kw == "cell";
      const std::size_t want = is_cell ? 4 : 3;
      if (toks.size() != want) {
        sink.add(DiagCode::kParseSyntax, Severity::kError, {line, toks[0].col},
                 is_cell ? "`cell` expects `cell <corner> <cell_name> <pm>`"
                         : "`wire` expects `wire <corner> <pm>`");
        continue;
      }
      const std::size_t k = set.find(toks[1].text);
      if (k == CornerSet::npos) {
        sink.add(DiagCode::kParseUnknownName, Severity::kError,
                 {line, toks[1].col},
                 "unknown corner '" + toks[1].text + "'",
                 "declare it with `corner` before overriding it");
        continue;
      }
      std::uint32_t pm = 0;
      if (!parse_pm(toks[want - 1], line, sink, pm)) continue;
      Corner& c = set.corner_mut(k);
      if (is_cell) {
        if (!c.cell_pm.emplace(toks[2].text, pm).second) {
          sink.add(DiagCode::kParseDuplicateName, Severity::kError,
                   {line, toks[2].col},
                   "cell '" + toks[2].text + "' already overridden for corner '" +
                       c.name + "'");
        }
      } else {
        c.wire_pm = pm;
      }
      continue;
    }

    sink.add(DiagCode::kParseUnknownKeyword, Severity::kError,
             {line, toks[0].col},
             "unknown corner-spec statement '" + kw + "'",
             "statements: corner | wire | cell");
  }
  if (set.empty() && !sink.has_errors()) {
    sink.add(DiagCode::kParseEmptyInput, Severity::kError, {},
             "corner spec declares no corner");
  }
  return set;
}

CornerSet parse_corner_spec_or_throw(const std::string& text) {
  DiagnosticSink sink;
  CornerSet set = parse_corner_spec(text, sink);
  if (sink.has_errors()) raise_first_error("corner spec", sink);
  return set;
}

}  // namespace hb
