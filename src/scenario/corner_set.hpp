// Operating-condition corners for multi-scenario analysis (docs/SCENARIOS.md).
//
// A Corner scales the timing graph's arc delays by integer per-mille derate
// factors — 1000 is an exact identity, 1250 means "25% slower" — kept as
// integers so the derated delays, and everything folded from them, stay
// bit-reproducible across platforms and thread counts.  Each corner carries
//   * `derate_pm`: the factor applied to component (cell) arcs;
//   * `wire_pm`:   the factor applied to net arcs (wire-load variants;
//                  defaults to derate_pm);
//   * per-cell overrides by library cell name (explicit characterisation of
//     individual cells at this corner).
//
// A CornerSet is an ordered list of named corners; corner *index* is the
// stable identity used by lane layouts, tie-breaks and the service's
// `corner <k>` scoping.  Sets parse from a small line-oriented spec file
// (one statement per line, '#' comments, recovery by statement) or are
// built programmatically.  The single-corner identity set reproduces the
// legacy single-corner engine byte for byte (tests/corner_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/diagnostics.hpp"
#include "util/time.hpp"

namespace hb {

/// Exact-identity derate factor (per mille).
inline constexpr std::uint32_t kIdentityPm = 1000;

/// Derate an arc delay: round-half-up fixed-point scale by `pm` per mille.
/// pm == kIdentityPm is an exact identity by construction — the K=1
/// differential guarantee rests on this short-circuit, not on the rounding.
inline TimePs derate_time(TimePs t, std::uint32_t pm) {
  if (pm == kIdentityPm) return t;
  return (t * static_cast<TimePs>(pm) + 500) / 1000;
}

struct Corner {
  std::string name;
  /// Component-arc derate, per mille of the nominal delay.
  std::uint32_t derate_pm = kIdentityPm;
  /// Net-arc derate; net arcs carry zero delay in the current wire model,
  /// so this is future-proofing for explicit wire delays — it defaults to
  /// derate_pm and parses from `wire` statements.
  std::uint32_t wire_pm = kIdentityPm;
  /// Per-library-cell overrides of derate_pm, by cell name.
  std::unordered_map<std::string, std::uint32_t> cell_pm;

  /// Factor for a component arc of cell `cell_name`.
  std::uint32_t cell_factor(const std::string& cell_name) const {
    const auto it = cell_pm.find(cell_name);
    return it == cell_pm.end() ? derate_pm : it->second;
  }
  /// True when this corner cannot change any delay.
  bool is_identity() const {
    if (derate_pm != kIdentityPm || wire_pm != kIdentityPm) return false;
    for (const auto& [cell, pm] : cell_pm) {
      if (pm != kIdentityPm) return false;
    }
    return true;
  }
};

class CornerSet {
 public:
  /// The default single-corner set: one identity corner named "typical".
  static CornerSet identity();

  /// Appends a corner; returns its index.  Duplicate names are the caller's
  /// problem at this level (the parser diagnoses them).
  std::size_t add(Corner corner);

  std::size_t size() const { return corners_.size(); }
  bool empty() const { return corners_.empty(); }
  const Corner& corner(std::size_t k) const { return corners_.at(k); }
  Corner& corner_mut(std::size_t k) { return corners_.at(k); }
  const std::vector<Corner>& corners() const { return corners_; }

  /// Index of the corner named `name`, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find(const std::string& name) const;

  /// True when every corner is an identity (the legacy-equivalent case).
  bool all_identity() const;

 private:
  std::vector<Corner> corners_;
};

/// Parse a corner-spec text.  Statements, one per line:
///   corner <name> <derate_pm>          — declare a corner
///   wire <corner> <pm>                 — net-arc derate of a declared corner
///   cell <corner> <cell_name> <pm>     — per-cell override
/// Recovering: each malformed statement yields one structured diagnostic
/// (with line/column SourceLoc) and parsing resynchronises at the next
/// line.  Factors must lie in [1, 100000] per mille.  An input that
/// declares no corner at all adds kParseEmptyInput.  Returns the corners
/// that did parse (possibly empty).
CornerSet parse_corner_spec(const std::string& text, DiagnosticSink& sink);

/// Fail-fast wrapper: raises hb::Error from the first error diagnostic.
CornerSet parse_corner_spec_or_throw(const std::string& text);

}  // namespace hb
