#include "scenario/corner_sweep.hpp"

#include "util/thread_pool.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define HB_X86_KERNELS 1
#include <immintrin.h>
#endif

namespace hb {
namespace {

/// Ready-side presence threshold — same constant the single-corner kernels
/// and PassSide::has test against (see sta/analysis_pass.cpp).
constexpr TimePs kFwdAbsentHalf = -(kInfinitePs / 2);

bool use_simd_kernels() {
  return kernel_mode() == KernelMode::kAuto && simd_kernels_available();
}

RiseFall derate_rf(RiseFall d, std::uint32_t pm) {
  return {derate_time(d.rise, pm), derate_time(d.fall, pm)};
}

/// Derate factor of one arc under one corner: net arcs take wire_pm,
/// component arcs the per-cell override (by library cell name) else
/// derate_pm.  Submodule instances have no library cell name and take
/// derate_pm.
std::uint32_t arc_factor(const TimingGraph& graph, const TArcRec& arc,
                         const Corner& corner) {
  if (arc.is_net) return corner.wire_pm;
  if (corner.cell_pm.empty()) return corner.derate_pm;
  const TNode& head = graph.node(arc.to);
  if (head.is_top_port) return corner.derate_pm;
  const Instance& inst = graph.design().top().inst(head.inst);
  if (!inst.is_cell()) return corner.derate_pm;
  return corner.cell_factor(graph.design().lib().cell(inst.cell).name());
}

// ---------------------------------------------------------------------------
// Scalar K-lane sweep kernels
//
// Loop shapes mirror the single-corner kernels in sta/analysis_pass.cpp,
// with an inner lane loop folding each corner against its derated delay.
// Presence tests read lane 0 — presence is structural and lane-uniform —
// and every lane is folded with the same integer arithmetic as the
// single-corner kernels, so K=1 with identity derates is byte-identical.
// ---------------------------------------------------------------------------

void corner_forward_scatter_scalar(const Cluster& cl, const TArcRec* arcs,
                                   const RiseFall* dl, std::size_t K,
                                   RiseFall* ready) {
  const std::size_t n = cl.nodes.size();
  for (std::uint32_t li = 0; li < n; ++li) {
    if (ready[li * K].rise <= kFwdAbsentHalf || cl.blocked[li]) continue;
    const RiseFall* in = &ready[li * K];
    const std::uint32_t end = cl.out_offsets[li + 1];
    for (std::uint32_t k = cl.out_offsets[li]; k < end; ++k) {
      const std::uint32_t ai = cl.out_arc[k];
      const TArcRec& arc = arcs[ai];
      const RiseFall* d = &dl[ai * K];
      RiseFall* dst = &ready[cl.out_local[k] * K];
      for (std::size_t c = 0; c < K; ++c) {
        dst[c] = rf_max(dst[c], propagate_forward(in[c], arc, d[c]));
      }
    }
  }
}

void corner_forward_gather_scalar(const Cluster& cl, const TArcRec* arcs,
                                  const RiseFall* dl, std::size_t K,
                                  RiseFall* ready, std::uint32_t begin,
                                  std::uint32_t end) {
  for (std::uint32_t li = begin; li < end; ++li) {
    RiseFall* row = &ready[li * K];
    const std::uint32_t ke = cl.in_offsets[li + 1];
    for (std::uint32_t k = cl.in_offsets[li]; k < ke; ++k) {
      const std::uint32_t fl = cl.in_local[k];
      const std::uint32_t ai = cl.in_arc[k];
      const TArcRec& arc = arcs[ai];
      const RiseFall* d = &dl[ai * K];
      const RiseFall* in = &ready[fl * K];
      const bool blk = cl.blocked[fl] != 0;
      for (std::size_t c = 0; c < K; ++c) {
        RiseFall cc = propagate_forward(in[c], arc, d[c]);
        cc.rise = blk ? -kInfinitePs : cc.rise;
        cc.fall = blk ? -kInfinitePs : cc.fall;
        row[c] = rf_max(row[c], cc);
      }
    }
    for (std::size_t c = 0; c < K; ++c) {
      const bool absent = row[c].rise <= kFwdAbsentHalf;
      row[c].rise = absent ? -kInfinitePs : row[c].rise;
      row[c].fall = absent ? -kInfinitePs : row[c].fall;
    }
  }
}

void corner_backward_gather_scalar(const Cluster& cl, const TArcRec* arcs,
                                   const RiseFall* dl, std::size_t K,
                                   RiseFall* required, std::uint32_t begin,
                                   std::uint32_t end) {
  for (std::uint32_t li = end; li-- > begin;) {
    if (cl.blocked[li]) continue;
    RiseFall* row = &required[li * K];
    const std::uint32_t ke = cl.out_offsets[li + 1];
    for (std::uint32_t k = cl.out_offsets[li]; k < ke; ++k) {
      const std::uint32_t ai = cl.out_arc[k];
      const TArcRec& arc = arcs[ai];
      const RiseFall* d = &dl[ai * K];
      const RiseFall* out = &required[cl.out_local[k] * K];
      for (std::size_t c = 0; c < K; ++c) {
        row[c] = rf_min(row[c], propagate_backward(out[c], arc, d[c]));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Vectorised K-lane kernels (AVX2): two corner lanes per 256-bit op — each
// __m256i holds two [rise | fall] pairs of adjacent lanes of one node — with
// a 128-bit remainder lane when K is odd.  Same fold sets, same integer
// arithmetic as the scalar K-lane kernels: byte-identical results.
// ---------------------------------------------------------------------------

#ifdef HB_X86_KERNELS

__attribute__((target("avx2"), always_inline)) inline __m128i
load_rf(const RiseFall* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

__attribute__((target("avx2"), always_inline)) inline void store_rf(
    RiseFall* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

__attribute__((target("avx2"), always_inline)) inline __m128i max64(
    __m128i a, __m128i b) {
  return _mm_blendv_epi8(b, a, _mm_cmpgt_epi64(a, b));
}

__attribute__((target("avx2"), always_inline)) inline __m128i min64(
    __m128i a, __m128i b) {
  return _mm_blendv_epi8(a, b, _mm_cmpgt_epi64(a, b));
}

__attribute__((target("avx2"), always_inline)) inline __m128i swap_rf(
    __m128i v) {
  return _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2));
}

__attribute__((target("avx2"), always_inline)) inline __m128i unate_select(
    __m128i in, __m128i swapped, __m128i worst, Unate unate) {
  const __m128i mpos =
      _mm_set1_epi64x(-static_cast<std::int64_t>(unate == Unate::kPositive));
  const __m128i mneg =
      _mm_set1_epi64x(-static_cast<std::int64_t>(unate == Unate::kNegative));
  const __m128i picked =
      _mm_or_si128(_mm_and_si128(in, mpos), _mm_and_si128(swapped, mneg));
  return _mm_or_si128(picked,
                      _mm_andnot_si128(_mm_or_si128(mpos, mneg), worst));
}

__attribute__((target("avx2"), always_inline)) inline __m256i
load_rf2(const RiseFall* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

__attribute__((target("avx2"), always_inline)) inline void store_rf2(
    RiseFall* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

__attribute__((target("avx2"), always_inline)) inline __m256i max64x2(
    __m256i a, __m256i b) {
  return _mm256_blendv_epi8(b, a, _mm256_cmpgt_epi64(a, b));
}

__attribute__((target("avx2"), always_inline)) inline __m256i min64x2(
    __m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

/// Per 128-bit half: [rise | fall] -> [fall | rise].
__attribute__((target("avx2"), always_inline)) inline __m256i swap_rf2(
    __m256i v) {
  return _mm256_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2));
}

__attribute__((target("avx2"), always_inline)) inline __m256i unate_select2(
    __m256i in, __m256i swapped, __m256i worst, Unate unate) {
  const __m256i mpos = _mm256_set1_epi64x(
      -static_cast<std::int64_t>(unate == Unate::kPositive));
  const __m256i mneg = _mm256_set1_epi64x(
      -static_cast<std::int64_t>(unate == Unate::kNegative));
  const __m256i picked = _mm256_or_si256(_mm256_and_si256(in, mpos),
                                         _mm256_and_si256(swapped, mneg));
  return _mm256_or_si256(
      picked, _mm256_andnot_si256(_mm256_or_si256(mpos, mneg), worst));
}

__attribute__((target("avx2"))) void corner_forward_scatter_avx2(
    const Cluster& cl, const TArcRec* arcs, const RiseFall* dl, std::size_t K,
    RiseFall* ready) {
  const std::size_t n = cl.nodes.size();
  for (std::uint32_t li = 0; li < n; ++li) {
    if (ready[li * K].rise <= kFwdAbsentHalf || cl.blocked[li]) continue;
    const RiseFall* in = &ready[li * K];
    const std::uint32_t end = cl.out_offsets[li + 1];
    for (std::uint32_t k = cl.out_offsets[li]; k < end; ++k) {
      const std::uint32_t ai = cl.out_arc[k];
      const TArcRec& arc = arcs[ai];
      const RiseFall* d = &dl[ai * K];
      RiseFall* dst = &ready[cl.out_local[k] * K];
      std::size_t c = 0;
      for (; c + 2 <= K; c += 2) {
        const __m256i in2 = load_rf2(&in[c]);
        const __m256i sw = swap_rf2(in2);
        const __m256i sel =
            unate_select2(in2, sw, max64x2(in2, sw), arc.unate);
        const __m256i out = _mm256_add_epi64(sel, load_rf2(&d[c]));
        store_rf2(&dst[c], max64x2(load_rf2(&dst[c]), out));
      }
      for (; c < K; ++c) {
        const __m128i in1 = load_rf(&in[c]);
        const __m128i sw = swap_rf(in1);
        const __m128i sel = unate_select(in1, sw, max64(in1, sw), arc.unate);
        const __m128i out = _mm_add_epi64(sel, load_rf(&d[c]));
        store_rf(&dst[c], max64(load_rf(&dst[c]), out));
      }
    }
  }
}

__attribute__((target("avx2"))) void corner_forward_gather_avx2(
    const Cluster& cl, const TArcRec* arcs, const RiseFall* dl, std::size_t K,
    RiseFall* ready, std::uint32_t begin, std::uint32_t end) {
  const __m256i absent2 = _mm256_set1_epi64x(-kInfinitePs);
  const __m256i half2 = _mm256_set1_epi64x(kFwdAbsentHalf);
  const __m128i absent1 = _mm_set1_epi64x(-kInfinitePs);
  const __m128i half1 = _mm_set1_epi64x(kFwdAbsentHalf);
  for (std::uint32_t li = begin; li < end; ++li) {
    RiseFall* row = &ready[li * K];
    const std::uint32_t kb = cl.in_offsets[li];
    const std::uint32_t ke = cl.in_offsets[li + 1];
    std::size_t c = 0;
    for (; c + 2 <= K; c += 2) {
      __m256i v = load_rf2(&row[c]);
      for (std::uint32_t k = kb; k < ke; ++k) {
        const std::uint32_t fl = cl.in_local[k];
        const std::uint32_t ai = cl.in_arc[k];
        const TArcRec& arc = arcs[ai];
        const __m256i in2 = load_rf2(&ready[fl * K + c]);
        const __m256i sw = swap_rf2(in2);
        const __m256i sel =
            unate_select2(in2, sw, max64x2(in2, sw), arc.unate);
        __m256i cc = _mm256_add_epi64(sel, load_rf2(&dl[ai * K + c]));
        const __m256i mblk = _mm256_set1_epi64x(
            -static_cast<std::int64_t>(cl.blocked[fl] != 0));
        cc = _mm256_blendv_epi8(cc, absent2, mblk);
        v = max64x2(v, cc);
      }
      const __m256i rise2 = _mm256_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 1, 0));
      const __m256i is_absent = _mm256_cmpgt_epi64(half2, rise2);
      v = _mm256_blendv_epi8(v, absent2, is_absent);
      store_rf2(&row[c], v);
    }
    for (; c < K; ++c) {
      __m128i v = load_rf(&row[c]);
      for (std::uint32_t k = kb; k < ke; ++k) {
        const std::uint32_t fl = cl.in_local[k];
        const std::uint32_t ai = cl.in_arc[k];
        const TArcRec& arc = arcs[ai];
        const __m128i in1 = load_rf(&ready[fl * K + c]);
        const __m128i sw = swap_rf(in1);
        const __m128i sel = unate_select(in1, sw, max64(in1, sw), arc.unate);
        __m128i cc = _mm_add_epi64(sel, load_rf(&dl[ai * K + c]));
        const __m128i mblk =
            _mm_set1_epi64x(-static_cast<std::int64_t>(cl.blocked[fl] != 0));
        cc = _mm_blendv_epi8(cc, absent1, mblk);
        v = max64(v, cc);
      }
      const __m128i rise2 = _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 1, 0));
      const __m128i is_absent = _mm_cmpgt_epi64(half1, rise2);
      v = _mm_blendv_epi8(v, absent1, is_absent);
      store_rf(&row[c], v);
    }
  }
}

__attribute__((target("avx2"))) void corner_backward_gather_avx2(
    const Cluster& cl, const TArcRec* arcs, const RiseFall* dl, std::size_t K,
    RiseFall* required, std::uint32_t begin, std::uint32_t end) {
  for (std::uint32_t li = end; li-- > begin;) {
    if (cl.blocked[li]) continue;
    RiseFall* row = &required[li * K];
    const std::uint32_t kb = cl.out_offsets[li];
    const std::uint32_t ke = cl.out_offsets[li + 1];
    std::size_t c = 0;
    for (; c + 2 <= K; c += 2) {
      __m256i acc = load_rf2(&row[c]);
      for (std::uint32_t k = kb; k < ke; ++k) {
        const std::uint32_t ai = cl.out_arc[k];
        const TArcRec& arc = arcs[ai];
        const __m256i p =
            _mm256_sub_epi64(load_rf2(&required[cl.out_local[k] * K + c]),
                             load_rf2(&dl[ai * K + c]));
        const __m256i sw = swap_rf2(p);
        acc = min64x2(acc, unate_select2(p, sw, min64x2(p, sw), arc.unate));
      }
      store_rf2(&row[c], acc);
    }
    for (; c < K; ++c) {
      __m128i acc = load_rf(&row[c]);
      for (std::uint32_t k = kb; k < ke; ++k) {
        const std::uint32_t ai = cl.out_arc[k];
        const TArcRec& arc = arcs[ai];
        const __m128i p =
            _mm_sub_epi64(load_rf(&required[cl.out_local[k] * K + c]),
                          load_rf(&dl[ai * K + c]));
        const __m128i sw = swap_rf(p);
        acc = min64(acc, unate_select(p, sw, min64(p, sw), arc.unate));
      }
      store_rf(&row[c], acc);
    }
  }
}

#endif  // HB_X86_KERNELS

// ---------------------------------------------------------------------------

using CForwardFullFn = void (*)(const Cluster&, const TArcRec*,
                                const RiseFall*, std::size_t, RiseFall*);
using CRangeFn = void (*)(const Cluster&, const TArcRec*, const RiseFall*,
                          std::size_t, RiseFall*, std::uint32_t,
                          std::uint32_t);

CForwardFullFn select_forward_scatter() {
#ifdef HB_X86_KERNELS
  if (use_simd_kernels()) return corner_forward_scatter_avx2;
#endif
  return corner_forward_scatter_scalar;
}

CRangeFn select_forward_gather() {
#ifdef HB_X86_KERNELS
  if (use_simd_kernels()) return corner_forward_gather_avx2;
#endif
  return corner_forward_gather_scalar;
}

CRangeFn select_backward_gather() {
#ifdef HB_X86_KERNELS
  if (use_simd_kernels()) return corner_backward_gather_avx2;
#endif
  return corner_backward_gather_scalar;
}

/// Same chunk-grain rule as the single-corner sweeps; the per-node work is
/// K× heavier but the boundaries stay a pure function of the level size.
std::size_t level_grain(std::size_t level_size, const SweepTuning& tuning) {
  return std::max(tuning.min_grain, level_size / 64);
}

/// Latest actual assertion at `node` in linear coordinates (same rule as
/// the single-corner seed; schedule times are corner-independent).
bool launch_seed(const SyncModel& sync, const ClockEdgeGraph& edges,
                 std::size_t break_node, TNodeId node, RiseFall& out) {
  const std::vector<SyncId>& launches = sync.launches_at(node);
  if (launches.empty()) return false;
  TimePs latest = -kInfinitePs;
  for (SyncId id : launches) {
    const SyncInstance& si = sync.at(id);
    const TimePs a =
        edges.linear_assert(si.ideal_assert, break_node) + si.assert_offset();
    latest = std::max(latest, a);
  }
  out = RiseFall{latest, latest};
  return true;
}

}  // namespace

CornerDelays::CornerDelays(const TimingGraph& graph, const CornerSet& corners)
    : lanes_(corners.size() == 0 ? 1 : corners.size()) {
  const std::size_t na = graph.num_arcs();
  delay_.resize(na * lanes_);
  for (std::size_t a = 0; a < na; ++a) {
    const TArcRec& arc = graph.arc(a);
    for (std::size_t c = 0; c < lanes_; ++c) {
      const std::uint32_t pm =
          corners.empty() ? kIdentityPm : arc_factor(graph, arc, corners.corner(c));
      delay_[a * lanes_ + c] = derate_rf(arc.delay, pm);
    }
  }
}

void CornerDelays::refresh_arcs(const TimingGraph& graph,
                                const CornerSet& corners,
                                const std::vector<std::uint32_t>& arc_ids) {
  for (std::uint32_t a : arc_ids) {
    const TArcRec& arc = graph.arc(a);
    for (std::size_t c = 0; c < lanes_; ++c) {
      const std::uint32_t pm =
          corners.empty() ? kIdentityPm : arc_factor(graph, arc, corners.corner(c));
      delay_[a * lanes_ + c] = derate_rf(arc.delay, pm);
    }
  }
}

void run_corner_pass_into(const TimingGraph& graph, const SyncModel& sync,
                          const Cluster& cluster,
                          const std::vector<std::uint32_t>& local_index,
                          const ClockEdgeGraph& edges, std::size_t break_node,
                          const std::vector<SyncId>& capture_insts,
                          const std::vector<bool>& assigned,
                          const CornerDelays& delays, CornerPassResult& res,
                          ThreadPool* pool) {
  const std::size_t n = cluster.nodes.size();
  const std::size_t K = delays.lanes();
  const TArcRec* arcs = graph.arcs_data();
  const RiseFall* dl = delays.data();
  res.ready.reset(n);
  res.required.reset(n);
  RiseFall* ready = res.ready.data();
  RiseFall* required = res.required.data();

  const SweepTuning tuning = sweep_tuning();
  const bool parallel = pool != nullptr && pool->size() > 1 &&
                        n >= tuning.min_parallel_nodes;
  const std::vector<std::uint32_t>& levels = cluster.level_offsets;

  // Seed launch terminals; the schedule time is corner-independent, so the
  // seed broadcasts across all K lanes.
  for (TNodeId node : cluster.source_nodes) {
    RiseFall seed;
    if (launch_seed(sync, edges, break_node, node, seed)) {
      RiseFall* row = &ready[local_index[node.index()] * K];
      for (std::size_t c = 0; c < K; ++c) row[c] = seed;
    }
  }

  if (!parallel) {
    select_forward_scatter()(cluster, arcs, dl, K, ready);
  } else {
    const CRangeFn fwd = select_forward_gather();
    for (std::size_t l = 0; l + 1 < levels.size(); ++l) {
      const std::uint32_t base = levels[l];
      const std::size_t count = levels[l + 1] - base;
      pool->parallel_for(count, level_grain(count, tuning),
                         [&](std::size_t b, std::size_t e, int) {
                           fwd(cluster, arcs, dl, K, ready,
                               base + static_cast<std::uint32_t>(b),
                               base + static_cast<std::uint32_t>(e));
                         });
    }
  }

  for (std::size_t k = 0; k < capture_insts.size(); ++k) {
    if (!assigned[k]) continue;
    const SyncInstance& si = sync.at(capture_insts[k]);
    const TimePs c =
        edges.linear_close(si.ideal_close, break_node) + si.close_offset();
    RiseFall* row = &required[local_index[si.data_in.index()] * K];
    for (std::size_t lane = 0; lane < K; ++lane) {
      row[lane] = rf_min(row[lane], RiseFall{c, c});
    }
  }

  if (!parallel) {
    select_backward_gather()(cluster, arcs, dl, K, required, 0,
                             static_cast<std::uint32_t>(n));
  } else {
    const CRangeFn bwd = select_backward_gather();
    for (std::size_t l = levels.size() - 1; l-- > 0;) {
      const std::uint32_t base = levels[l];
      const std::size_t count = levels[l + 1] - base;
      pool->parallel_for(count, level_grain(count, tuning),
                         [&](std::size_t b, std::size_t e, int) {
                           bwd(cluster, arcs, dl, K, required,
                               base + static_cast<std::uint32_t>(b),
                               base + static_cast<std::uint32_t>(e));
                         });
    }
  }
}

std::size_t update_corner_pass(const TimingGraph& graph, const SyncModel& sync,
                               const Cluster& cluster,
                               const ClockEdgeGraph& edges,
                               std::size_t break_node,
                               const std::vector<SyncId>& capture_insts,
                               const std::vector<bool>& assigned,
                               const CornerDelays& delays,
                               const std::vector<std::uint32_t>& fwd_seeds,
                               const std::vector<std::uint32_t>& bwd_seeds,
                               CornerPassResult& res, PassWorkspace& ws) {
  ws.ensure(cluster.nodes.size());
  const std::size_t K = delays.lanes();
  const TArcRec* arcs = graph.arcs_data();
  const RiseFall* dl = delays.data();
  RiseFall* ready = res.ready.data();
  RiseFall* required = res.required.data();
  std::size_t retraced = 0;

  // Forward cone: re-derive every lane of each cone node from scratch by
  // max-folding its fanin — the K-lane mirror of update_analysis_pass.
  retraced += passdetail::sweep_forward(
      cluster, fwd_seeds, ws, [&](std::uint32_t li) {
        RiseFall init = res.ready.absent();
        launch_seed(sync, edges, break_node, cluster.nodes[li], init);
        RiseFall* row = &ready[li * K];
        for (std::size_t c = 0; c < K; ++c) row[c] = init;
        const std::uint32_t end = cluster.in_offsets[li + 1];
        for (std::uint32_t k = cluster.in_offsets[li]; k < end; ++k) {
          const std::uint32_t fl = cluster.in_local[k];
          if (cluster.blocked[fl]) continue;
          const std::uint32_t ai = cluster.in_arc[k];
          const TArcRec& arc = arcs[ai];
          const RiseFall* d = &dl[ai * K];
          const RiseFall* in = &ready[fl * K];
          for (std::size_t c = 0; c < K; ++c) {
            row[c] = rf_max(row[c], propagate_forward(in[c], arc, d[c]));
          }
        }
      });

  // Backward cone, in reverse topological order.
  retraced += passdetail::sweep_backward(
      cluster, bwd_seeds, ws, [&](std::uint32_t li) {
        RiseFall init = res.required.absent();
        const TNodeId node = cluster.nodes[li];
        if (!sync.captures_at(node).empty()) {
          for (std::size_t k = 0; k < capture_insts.size(); ++k) {
            if (!assigned[k]) continue;
            const SyncInstance& si = sync.at(capture_insts[k]);
            if (si.data_in != node) continue;
            const TimePs c = edges.linear_close(si.ideal_close, break_node) +
                             si.close_offset();
            init = rf_min(init, RiseFall{c, c});
          }
        }
        RiseFall* row = &required[li * K];
        for (std::size_t c = 0; c < K; ++c) row[c] = init;
        if (!cluster.blocked[li]) {
          const std::uint32_t end = cluster.out_offsets[li + 1];
          for (std::uint32_t k = cluster.out_offsets[li]; k < end; ++k) {
            const std::uint32_t ai = cluster.out_arc[k];
            const TArcRec& arc = arcs[ai];
            const RiseFall* d = &dl[ai * K];
            const RiseFall* out = &required[cluster.out_local[k] * K];
            for (std::size_t c = 0; c < K; ++c) {
              row[c] = rf_min(row[c], propagate_backward(out[c], arc, d[c]));
            }
          }
        }
      });

  return retraced;
}

}  // namespace hb
