// K-lane corner-parallel analysis sweeps (docs/SCENARIOS.md).
//
// One levelized sweep evaluates eq. (1)/(2) under all K corners at once:
// the PassSide arrays are widened to K lanes per node (lane-major — the
// corner vector of a node is one contiguous run), and every fold kernel
// iteration processes that run against the arc's per-corner derated delays.
// Graph traversal — the CSR walks, the presence/blocked tests, the level
// chunking — is paid once and amortised across all corners, which is the
// whole point of the lane layout (bench_core's corner section measures the
// K-vs-1 amortisation).
//
// Presence is structural (which launches reach a node, which captures are
// assigned), so it is identical across lanes: a slot is absent in every
// lane or in none, and the kernels test lane 0 exactly like the K=1
// kernels test the single slot.  Each lane keeps the full sentinel-absence
// semantics of PassSide — folds through absent values stay on the absent
// side of the threshold and gather kernels canonicalise per lane.
//
// Kernels come in scalar and AVX2 variants behind the same KernelMode
// dispatch as sta/analysis_pass; the AVX2 forms fold two corner lanes per
// 256-bit op with a 128-bit remainder lane.  All variants use the same
// fold sets and integer arithmetic, so results are byte-identical across
// kernels and thread counts, and with K=1 identity derates they are
// byte-identical to the single-corner kernels (tests/corner_test.cpp).
#pragma once

#include <vector>

#include "scenario/corner_set.hpp"
#include "sta/analysis_pass.hpp"

namespace hb {

class ThreadPool;

/// Per-corner derated delays of every arc, lane-major: the K delays of arc
/// `a` live at data()[a * lanes() + 0 .. K-1], mirroring the PassSide lane
/// layout so kernels stream both arrays in lockstep.  Component arcs derate
/// by the corner's cell factor (per-cell override, else derate_pm), net
/// arcs by wire_pm; identity factors reproduce the nominal delay exactly.
class CornerDelays {
 public:
  CornerDelays() = default;
  CornerDelays(const TimingGraph& graph, const CornerSet& corners);

  std::size_t lanes() const { return lanes_; }
  std::size_t num_arcs() const { return lanes_ == 0 ? 0 : delay_.size() / lanes_; }
  /// The K-lane delay row of arc `a`.
  const RiseFall* row(std::size_t a) const { return &delay_[a * lanes_]; }
  const RiseFall* data() const { return delay_.data(); }

  /// Re-derate the rows of `arc_ids` from the graph's current delays (after
  /// an in-place delay update; structure unchanged).
  void refresh_arcs(const TimingGraph& graph, const CornerSet& corners,
                    const std::vector<std::uint32_t>& arc_ids);

 private:
  std::vector<RiseFall> delay_;  // [num_arcs * lanes_]
  std::size_t lanes_ = 0;
};

/// K-lane pass result: ready/required PassSides with `lanes` corner lanes
/// per node.  With lanes == 1 the buffers are byte-identical to PassResult.
struct CornerPassResult {
  PassSide ready;
  PassSide required;

  explicit CornerPassResult(std::size_t lanes = 1)
      : ready(-kInfinitePs, lanes), required(kInfinitePs, lanes) {}
};

/// K-lane mirror of run_analysis_pass_into: one forward and one backward
/// levelized sweep settle all K corners of every node.  Launch/capture
/// seeds are schedule times (corner-independent — see docs/SCENARIOS.md on
/// "schedule once, sign off across corners"), broadcast to every lane.
/// With a pool and a large enough cluster the level wavefronts are chunked
/// exactly like the single-corner path; results are byte-identical at every
/// thread count and kernel variant.
void run_corner_pass_into(const TimingGraph& graph, const SyncModel& sync,
                          const Cluster& cluster,
                          const std::vector<std::uint32_t>& local_index,
                          const ClockEdgeGraph& edges, std::size_t break_node,
                          const std::vector<SyncId>& capture_insts,
                          const std::vector<bool>& assigned,
                          const CornerDelays& delays, CornerPassResult& res,
                          ThreadPool* pool = nullptr);

/// K-lane mirror of update_analysis_pass: re-derives exactly the forward/
/// backward cones of the seed sets in every lane at once, using the shared
/// passdetail cone sweeps.  Bit-identical per corner to a fresh
/// run_corner_pass_into (tests/corner_test.cpp holds them against each
/// other through the incremental orchestrator).
std::size_t update_corner_pass(const TimingGraph& graph, const SyncModel& sync,
                               const Cluster& cluster,
                               const ClockEdgeGraph& edges,
                               std::size_t break_node,
                               const std::vector<SyncId>& capture_insts,
                               const std::vector<bool>& assigned,
                               const CornerDelays& delays,
                               const std::vector<std::uint32_t>& fwd_seeds,
                               const std::vector<std::uint32_t>& bwd_seeds,
                               CornerPassResult& res, PassWorkspace& ws);

}  // namespace hb
