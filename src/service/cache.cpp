#include "service/cache.hpp"

#include <cstring>
#include <functional>

namespace hb {

QueryCache::QueryCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity == 0 ? 1 : capacity),
      shards_(shards == 0 ? 1 : shards) {
  per_shard_ = (capacity_ + shards_.size() - 1) / shards_.size();
  if (per_shard_ == 0) per_shard_ = 1;
}

std::string_view QueryCache::make_key(std::uint64_t snapshot_id,
                                      std::string_view canonical, KeyBuf& kb) {
  char digits[20];
  std::size_t nd = 0;
  do {
    digits[nd++] = static_cast<char>('0' + snapshot_id % 10);
    snapshot_id /= 10;
  } while (snapshot_id != 0);
  const std::size_t total = nd + 1 + canonical.size();
  if (total <= sizeof kb.buf) {
    char* p = kb.buf;
    for (std::size_t i = 0; i < nd; ++i) *p++ = digits[nd - 1 - i];
    *p++ = '\0';
    if (!canonical.empty()) std::memcpy(p, canonical.data(), canonical.size());
    return std::string_view(kb.buf, total);
  }
  kb.overflow.clear();
  kb.overflow.reserve(total);
  for (std::size_t i = 0; i < nd; ++i) {
    kb.overflow.push_back(digits[nd - 1 - i]);
  }
  kb.overflow.push_back('\0');
  kb.overflow.append(canonical);
  return kb.overflow;
}

QueryCache::Shard& QueryCache::shard_of(std::string_view key) {
  return shards_[std::hash<std::string_view>{}(key) % shards_.size()];
}

std::shared_ptr<const QueryResult> QueryCache::lookup(std::string_view key) {
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it == s.index.end()) return nullptr;
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  return it->second->result;
}

void QueryCache::insert(std::string_view key,
                        std::shared_ptr<const QueryResult> result) {
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    it->second->result = std::move(result);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.push_front(Entry{std::string(key), std::move(result)});
  s.index.emplace(s.lru.front().key, s.lru.begin());
  while (s.lru.size() > per_shard_) {
    s.index.erase(s.lru.back().key);
    s.lru.pop_back();
  }
}

void QueryCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.lru.clear();
    s.index.clear();
  }
}

std::size_t QueryCache::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    n += s.lru.size();
  }
  return n;
}

}  // namespace hb
