#include "service/cache.hpp"

#include <functional>

namespace hb {

QueryCache::QueryCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity == 0 ? 1 : capacity),
      shards_(shards == 0 ? 1 : shards) {
  per_shard_ = (capacity_ + shards_.size() - 1) / shards_.size();
  if (per_shard_ == 0) per_shard_ = 1;
}

QueryCache::Shard& QueryCache::shard_of(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

const QueryCache::Shard& QueryCache::shard_of(const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool QueryCache::lookup(const std::string& key, QueryResult* out) {
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.index.find(key);
  if (it == s.index.end()) return false;
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  *out = it->second->result;
  return true;
}

void QueryCache::insert(const std::string& key, const QueryResult& result) {
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.index.find(key);
  if (it != s.index.end()) {
    it->second->result = result;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.push_front(Entry{key, result});
  s.index.emplace(key, s.lru.begin());
  while (s.lru.size() > per_shard_) {
    s.index.erase(s.lru.back().key);
    s.lru.pop_back();
  }
}

void QueryCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.lru.clear();
    s.index.clear();
  }
}

std::size_t QueryCache::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    n += s.lru.size();
  }
  return n;
}

}  // namespace hb
