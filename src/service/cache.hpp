// Query-result cache: sharded LRU keyed on (snapshot id, canonical query).
//
// Only successful read replies are cached.  Because the key embeds the
// snapshot id, entries for superseded snapshots can never be served stale;
// they are also useless, so publication clears the whole cache rather than
// letting dead entries age out through the LRU chain.
//
// Sharding by key hash keeps the per-shard mutexes short-lived: concurrent
// readers touching different queries rarely contend.
//
// The hot path is allocation-free: make_key renders into a caller-owned
// KeyBuf, lookup takes a string_view and returns a shared_ptr to the
// immutable cached result (one refcount bump, no copy).  Entries are
// immutable once inserted, so concurrent readers can hold the same result
// while the shard lock is long released.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "service/query.hpp"

namespace hb {

class QueryCache {
 public:
  /// `capacity` is the total entry budget, split evenly across shards.
  explicit QueryCache(std::size_t capacity = 1024, std::size_t shards = 8);

  /// Scratch for make_key: the common key renders into the fixed buffer;
  /// oversized canonicals spill into the overflow string (which then keeps
  /// its capacity across reuses).
  struct KeyBuf {
    char buf[192];
    std::string overflow;
  };

  /// Render the cache key for (snapshot_id, canonical) into `kb` and view
  /// it — byte-identical to key(), without the allocation.
  static std::string_view make_key(std::uint64_t snapshot_id,
                                   std::string_view canonical, KeyBuf& kb);

  static std::string key(std::uint64_t snapshot_id, const std::string& canonical) {
    return std::to_string(snapshot_id) + '\0' + canonical;
  }

  /// The cached result, or null on a miss; a hit refreshes the entry's LRU
  /// rank.  The returned result is immutable and safe to hold indefinitely.
  std::shared_ptr<const QueryResult> lookup(std::string_view key);

  /// Insert or refresh; evicts the shard's least recently used entry when
  /// the shard is full.
  void insert(std::string_view key, std::shared_ptr<const QueryResult> result);

  /// Copying compatibility shims over the shared_ptr core.
  bool lookup(const std::string& key, QueryResult* out) {
    const std::shared_ptr<const QueryResult> r = lookup(std::string_view(key));
    if (r == nullptr) return false;
    *out = *r;
    return true;
  }
  void insert(const std::string& key, const QueryResult& result) {
    insert(std::string_view(key), std::make_shared<const QueryResult>(result));
  }

  /// Drop everything (called on snapshot publication).
  void clear();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const QueryResult> result;
  };
  // Transparent hash/eq so lookups hash the caller's string_view directly.
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator, KeyHash, KeyEq>
        index;
  };

  Shard& shard_of(std::string_view key);

  std::size_t capacity_;
  std::size_t per_shard_;
  std::vector<Shard> shards_;
};

}  // namespace hb
