// Query-result cache: sharded LRU keyed on (snapshot id, canonical query).
//
// Only successful read replies are cached.  Because the key embeds the
// snapshot id, entries for superseded snapshots can never be served stale;
// they are also useless, so publication clears the whole cache rather than
// letting dead entries age out through the LRU chain.
//
// Sharding by key hash keeps the per-shard mutexes short-lived: concurrent
// readers touching different queries rarely contend.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/query.hpp"

namespace hb {

class QueryCache {
 public:
  /// `capacity` is the total entry budget, split evenly across shards.
  explicit QueryCache(std::size_t capacity = 1024, std::size_t shards = 8);

  static std::string key(std::uint64_t snapshot_id, const std::string& canonical) {
    return std::to_string(snapshot_id) + '\0' + canonical;
  }

  /// True and fills `out` on a hit; a hit refreshes the entry's LRU rank.
  bool lookup(const std::string& key, QueryResult* out);

  /// Insert or refresh; evicts the shard's least recently used entry when
  /// the shard is full.
  void insert(const std::string& key, const QueryResult& result);

  /// Drop everything (called on snapshot publication).
  void clear();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    QueryResult result;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  Shard& shard_of(const std::string& key);
  const Shard& shard_of(const std::string& key) const;

  std::size_t capacity_;
  std::size_t per_shard_;
  std::vector<Shard> shards_;
};

}  // namespace hb
