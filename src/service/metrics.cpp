#include "service/metrics.hpp"

#include <bit>
#include <cmath>
#include <cstdio>

namespace hb {
namespace {

constexpr int kBuckets = 32;  // mirrors ServiceMetrics::kBuckets

/// Bucket index of a latency: 0 covers [0, 1) us, bucket i covers
/// [2^(i-1), 2^i) us.
int bucket_of_us(std::uint64_t us) {
  if (us == 0) return 0;
  const int b = std::bit_width(us);  // 1-based position of the top bit
  return b >= kBuckets ? kBuckets - 1 : b;
}

}  // namespace

void ServiceMetrics::record_request(bool is_read, bool ok, bool timed_out,
                                    double seconds) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  (is_read ? reads_ : writes_).fetch_add(1, std::memory_order_relaxed);
  if (!ok) errors_.fetch_add(1, std::memory_order_relaxed);
  if (timed_out) timeouts_.fetch_add(1, std::memory_order_relaxed);
  const auto us = static_cast<std::uint64_t>(
      std::llround(std::max(0.0, seconds) * 1e6));
  latency_bucket_[bucket_of_us(us)].fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::record_cache(bool hit) {
  (hit ? cache_hits_ : cache_misses_).fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::record_corner_read() {
  corner_reads_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::record_snapshot_published() {
  snapshots_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::record_batch() {
  batches_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::record_snapshot_saved() {
  snapshots_saved_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::record_snapshot_loaded() {
  snapshots_loaded_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::record_snapshots_rejected(std::uint64_t n) {
  snapshots_rejected_.fetch_add(n, std::memory_order_relaxed);
}

void ServiceMetrics::record_snapshot_self_heal() {
  snapshot_self_heals_.fetch_add(1, std::memory_order_relaxed);
}

double ServiceMetrics::cache_hit_rate() const {
  const double h = static_cast<double>(cache_hits());
  const double m = static_cast<double>(cache_misses());
  return h + m > 0 ? h / (h + m) : 0.0;
}

std::uint64_t ServiceMetrics::latency_us(double percentile) const {
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = latency_bucket_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  const double rank = percentile / 100.0 * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (static_cast<double>(seen) >= rank) {
      return i == 0 ? 1 : (std::uint64_t{1} << i);
    }
  }
  return std::uint64_t{1} << (kBuckets - 1);
}

std::vector<std::string> ServiceMetrics::to_lines() const {
  char buf[64];
  std::vector<std::string> out;
  auto add = [&out](const char* name, std::uint64_t v) {
    out.push_back("  stat " + std::string(name) + " " + std::to_string(v));
  };
  add("requests", requests());
  add("reads", reads());
  add("writes", writes());
  add("errors", errors());
  add("timeouts", timeouts());
  add("batches", batches());
  add("corner_reads", corner_reads());
  add("cache_hits", cache_hits());
  add("cache_misses", cache_misses());
  std::snprintf(buf, sizeof buf, "  stat cache_hit_rate_pct %.1f",
                100.0 * cache_hit_rate());
  out.emplace_back(buf);
  add("snapshots_published", snapshots_published());
  add("snapshots_saved", snapshots_saved());
  add("snapshots_loaded", snapshots_loaded());
  add("snapshots_rejected", snapshots_rejected());
  add("snapshot_self_heals", snapshot_self_heals());
  add("latency_p50_us", latency_us(50));
  add("latency_p99_us", latency_us(99));
  return out;
}

}  // namespace hb
