// Service-level observability: one counter block per Session, dumpable via
// the `stats` query.  Counters are relaxed atomics — pure monotone
// bookkeeping, never used for synchronisation — so concurrent queries pay
// one uncontended add each and the writer pays nothing extra.
//
// Latencies are recorded into a log2 histogram of microseconds; percentile
// queries report the upper bound of the bucket containing the requested
// rank (good to a factor of two, which is what a health check needs).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hb {

class ServiceMetrics {
 public:
  /// Record one finished request: its class, outcome and wall time.
  void record_request(bool is_read, bool ok, bool timed_out, double seconds);
  void record_cache(bool hit);
  /// One corner-scoped read query (`corner ...`) reached evaluation.
  void record_corner_read();
  void record_snapshot_published();
  void record_batch();
  // Persistent snapshot store traffic (service/snapshot_store.hpp).
  void record_snapshot_saved();
  void record_snapshot_loaded();
  void record_snapshots_rejected(std::uint64_t n);
  void record_snapshot_self_heal();

  std::uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }
  std::uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  std::uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }
  std::uint64_t errors() const { return errors_.load(std::memory_order_relaxed); }
  std::uint64_t timeouts() const { return timeouts_.load(std::memory_order_relaxed); }
  std::uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  std::uint64_t corner_reads() const {
    return corner_reads_.load(std::memory_order_relaxed);
  }
  std::uint64_t cache_hits() const { return cache_hits_.load(std::memory_order_relaxed); }
  std::uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t snapshots_published() const {
    return snapshots_.load(std::memory_order_relaxed);
  }
  std::uint64_t snapshots_saved() const {
    return snapshots_saved_.load(std::memory_order_relaxed);
  }
  std::uint64_t snapshots_loaded() const {
    return snapshots_loaded_.load(std::memory_order_relaxed);
  }
  std::uint64_t snapshots_rejected() const {
    return snapshots_rejected_.load(std::memory_order_relaxed);
  }
  std::uint64_t snapshot_self_heals() const {
    return snapshot_self_heals_.load(std::memory_order_relaxed);
  }

  /// Hits / (hits + misses); 0 when no cacheable query ran yet.
  double cache_hit_rate() const;

  /// Approximate latency percentile in microseconds (p in [0, 100]):
  /// the upper bound of the log2 bucket holding the requested rank.
  std::uint64_t latency_us(double percentile) const;

  /// "stat <name> <value>" lines in a fixed order — the `stats` payload.
  std::vector<std::string> to_lines() const;

 private:
  static constexpr int kBuckets = 32;  // 2^31 us ≈ 36 min: ample headroom

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> corner_reads_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> snapshots_{0};
  std::atomic<std::uint64_t> snapshots_saved_{0};
  std::atomic<std::uint64_t> snapshots_loaded_{0};
  std::atomic<std::uint64_t> snapshots_rejected_{0};
  std::atomic<std::uint64_t> snapshot_self_heals_{0};
  std::atomic<std::uint64_t> latency_bucket_[kBuckets] = {};
};

}  // namespace hb
