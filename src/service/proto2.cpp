#include "service/proto2.hpp"

#include <algorithm>
#include <vector>

#include "service/snapshot_codec.hpp"

namespace hb {
namespace {

/// Reserves the 4-byte length prefix, patches it on finish().  Appending
/// into a grow-only arena keeps the steady-state reply path allocation
/// free once the arena has grown to the working set.
class FrameWriter {
 public:
  explicit FrameWriter(std::string& out) : out_(out), base_(out.size()) {
    out_.append(4, '\0');
  }
  void finish() {
    const std::uint32_t len =
        static_cast<std::uint32_t>(out_.size() - base_ - 4);
    for (int i = 0; i < 4; ++i) {
      out_[base_ + static_cast<std::size_t>(i)] =
          static_cast<char>((len >> (8 * i)) & 0xFF);
    }
  }

 private:
  std::string& out_;
  std::size_t base_;
};

std::string deadline_message(const SnapshotSource& src) {
  return "read deadline exceeded; snapshot " + std::to_string(src.id()) +
         " unaffected";
}

/// Drop a half-written frame and answer with a structured error instead.
Proto2Eval error_frame_at(std::string& out, std::size_t base, DiagCode code,
                          const std::string& message) {
  out.resize(base);
  proto2_error_frame(code, message, out);
  Proto2Eval e;
  e.ok = false;
  e.timed_out = code == DiagCode::kAnalysisBudget;
  return e;
}

/// resolve_corner of the text evaluator, over a string_view selector: a
/// corner name first, then a decimal index of at most 9 digits.
std::size_t resolve_corner_sv(const SnapshotSource& src,
                              std::string_view sel) {
  for (std::size_t k = 0; k < src.num_corners(); ++k) {
    if (src.corner_meta(k).name == sel) return k;
  }
  if (!sel.empty() && sel.size() <= 9 &&
      sel.find_first_not_of("0123456789") == std::string_view::npos) {
    std::size_t k = 0;
    for (const char c : sel) k = k * 10 + static_cast<std::size_t>(c - '0');
    if (k < src.num_corners()) return k;
  }
  return SnapshotSource::npos;
}

void put_path_body(std::string& out, const SourcePath& p) {
  put_i64(out, p.slack);
  put_str(out, p.launch);
  put_str(out, p.capture);
  put_str(out, p.from);
  put_str(out, p.to);
  put_u64(out, p.steps);
}

/// Encode a worst_paths body; false on deadline (mirrors the per-path
/// count_cycle of the text evaluator).
template <typename PathAt>
bool put_paths_body(std::string& out, std::size_t served, std::size_t of,
                    PathAt at, BudgetTimer& timer) {
  put_u64(out, served);
  put_u64(out, of);
  for (std::size_t i = 0; i < served; ++i) {
    timer.count_cycle();
    if (timer.exhausted()) return false;
    put_path_body(out, at(i));
  }
  return true;
}

/// Encode a histogram body: bins, count, min, max, then per-bin counts.
/// The renderer recomputes width = (max - min) / bins + 1, exactly as the
/// text evaluator does.  False on deadline.
template <typename SlackAt>
bool put_histogram_body(std::string& out, std::int64_t bins, std::size_t n,
                        SlackAt at, BudgetTimer& timer) {
  if (n == 0) {
    put_u64(out, 0);
    put_u64(out, 0);
    put_i64(out, 0);
    put_i64(out, 0);
    return true;
  }
  TimePs mn = at(0), mx = mn;
  for (std::size_t i = 1; i < n; ++i) {
    const TimePs s = at(i);
    mn = std::min(mn, s);
    mx = std::max(mx, s);
  }
  const TimePs width = (mx - mn) / bins + 1;
  static thread_local std::vector<std::uint64_t> count;
  count.assign(static_cast<std::size_t>(bins), 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++count[static_cast<std::size_t>((at(i) - mn) / width)];
  }
  put_u64(out, static_cast<std::uint64_t>(bins));
  put_u64(out, n);
  put_i64(out, mn);
  put_i64(out, mx);
  for (std::int64_t i = 0; i < bins; ++i) {
    timer.count_cycle();
    if (timer.exhausted()) return false;
    put_u64(out, count[static_cast<std::size_t>(i)]);
  }
  return true;
}

/// Encode a check_hold body: margin, violation count, violating pairs.
/// False on deadline.
template <typename PairAt>
bool put_check_hold_body(std::string& out, TimePs margin, std::size_t pairs,
                         PairAt at, BudgetTimer& timer) {
  std::size_t violations = 0;
  for (std::size_t i = 0; i < pairs; ++i) {
    if (at(i).margin < margin) ++violations;
  }
  put_i64(out, margin);
  put_u64(out, violations);
  for (std::size_t i = 0; i < pairs; ++i) {
    const SourceHoldPair p = at(i);
    if (p.margin >= margin) continue;
    timer.count_cycle();
    if (timer.exhausted()) return false;
    put_i64(out, p.margin);
    put_str(out, p.launch_label);
    put_str(out, p.capture_label);
  }
  return true;
}

Proto2Request malformed(Proto2Request req, DiagCode code, std::string msg) {
  req.ok = false;
  req.code = code;
  req.error = std::move(msg);
  return req;
}

}  // namespace

Proto2Request proto2_decode_request(std::string_view payload) {
  Proto2Request req;
  if (payload.empty()) {
    return malformed(std::move(req), DiagCode::kParseSyntax,
                     "empty request frame");
  }
  const std::uint8_t op = static_cast<std::uint8_t>(payload[0]);
  if (op > static_cast<std::uint8_t>(Proto2Op::kCorner)) {
    return malformed(std::move(req), DiagCode::kParseUnknownKeyword,
                     "unknown proto2 opcode " + std::to_string(op));
  }
  req.op = static_cast<Proto2Op>(op);
  const std::string_view body = payload.substr(1);
  Reader r = reader_of(body);
  switch (req.op) {
    case Proto2Op::kText:
      req.text = body;
      break;
    case Proto2Op::kPing:
    case Proto2Op::kSummary:
    case Proto2Op::kGenConstraints:
      if (!body.empty()) {
        return malformed(std::move(req), DiagCode::kParseSyntax,
                         "malformed proto2 request");
      }
      break;
    case Proto2Op::kSlack:
    case Proto2Op::kConstraints:
      req.name = body;
      break;
    case Proto2Op::kWorstPaths:
    case Proto2Op::kHistogram: {
      const std::uint32_t v = r.u32();
      if (r.fail || r.remaining() != 0) {
        return malformed(std::move(req), DiagCode::kParseSyntax,
                         "malformed proto2 request");
      }
      const std::uint32_t lo = req.op == Proto2Op::kWorstPaths ? 0 : 1;
      const std::uint32_t hi =
          req.op == Proto2Op::kHistogram ? 1000 : 100000;
      if (v < lo || v > hi) {
        return malformed(std::move(req), DiagCode::kParseBadNumber,
                         "'" + std::to_string(v) + "' is not an integer in [" +
                             std::to_string(lo) + ", " + std::to_string(hi) +
                             "]");
      }
      req.count = v;
      break;
    }
    case Proto2Op::kCheckHold: {
      const std::int64_t v = r.i64();
      if (r.fail || r.remaining() != 0) {
        return malformed(std::move(req), DiagCode::kParseSyntax,
                         "malformed proto2 request");
      }
      req.margin = v;
      break;
    }
    case Proto2Op::kCorner: {
      const std::uint8_t sub = r.u8();
      req.selector = r.str_view();
      if (r.fail) {
        return malformed(std::move(req), DiagCode::kParseSyntax,
                         "malformed proto2 request");
      }
      if (sub == kProto2CornerList) {
        if (r.remaining() != 0) {
          return malformed(std::move(req), DiagCode::kParseSyntax,
                           "'corner list' takes no further arguments");
        }
        req.corner_list = true;
        break;
      }
      req.sub = static_cast<Proto2Op>(sub);
      switch (req.sub) {
        case Proto2Op::kSlack:
          req.name = body.substr(r.pos);
          break;
        case Proto2Op::kWorstPaths:
        case Proto2Op::kHistogram: {
          const std::uint32_t v = r.u32();
          if (r.fail || r.remaining() != 0) {
            return malformed(std::move(req), DiagCode::kParseSyntax,
                             "malformed proto2 request");
          }
          const std::uint32_t lo = req.sub == Proto2Op::kWorstPaths ? 0 : 1;
          const std::uint32_t hi =
              req.sub == Proto2Op::kHistogram ? 1000 : 100000;
          if (v < lo || v > hi) {
            return malformed(
                std::move(req), DiagCode::kParseBadNumber,
                "'" + std::to_string(v) + "' is not an integer in [" +
                    std::to_string(lo) + ", " + std::to_string(hi) + "]");
          }
          req.count = v;
          break;
        }
        case Proto2Op::kSummary:
          if (r.remaining() != 0) {
            return malformed(std::move(req), DiagCode::kParseSyntax,
                             "malformed proto2 request");
          }
          break;
        case Proto2Op::kCheckHold: {
          const std::int64_t v = r.i64();
          if (r.fail || r.remaining() != 0) {
            return malformed(std::move(req), DiagCode::kParseSyntax,
                             "malformed proto2 request");
          }
          req.margin = v;
          break;
        }
        default:
          return malformed(std::move(req), DiagCode::kParseSyntax,
                           "'corner' scopes slack, worst_paths, histogram, "
                           "summary or check_hold");
      }
      break;
    }
  }
  req.ok = true;
  return req;
}

Proto2Eval proto2_evaluate(const Proto2Request& req, const SnapshotSource& src,
                           BudgetTimer& timer, std::string& out) {
  const std::size_t base = out.size();
  if (!req.ok) return error_frame_at(out, base, req.code, req.error);
  if (timer.exhausted()) {
    return error_frame_at(out, base, DiagCode::kAnalysisBudget,
                          deadline_message(src));
  }
  FrameWriter frame(out);
  put_u8(out, static_cast<std::uint8_t>(Proto2Status::kTyped));
  put_u8(out, static_cast<std::uint8_t>(req.op));
  switch (req.op) {
    case Proto2Op::kPing:
      break;
    case Proto2Op::kSummary:
      put_u64(out, src.id());
      put_u8(out, static_cast<std::uint8_t>(src.status()));
      put_u8(out, src.works_as_intended() ? 1 : 0);
      put_i64(out, src.worst_slack());
      put_u64(out, src.num_terminals());
      put_u64(out, src.num_violations());
      put_u64(out, src.num_paths());
      break;
    case Proto2Op::kSlack: {
      const std::size_t idx = src.find_node(req.name);
      if (idx == SnapshotSource::npos) {
        return error_frame_at(out, base, DiagCode::kParseUnknownName,
                              "unknown node '" + std::string(req.name) + "'");
      }
      put_str(out, req.name);
      put_i64(out, src.node_timing(idx).slack);
      break;
    }
    case Proto2Op::kWorstPaths: {
      const std::size_t served =
          std::min<std::size_t>(req.count, src.num_paths());
      if (!put_paths_body(
              out, served, src.num_violations(),
              [&src](std::size_t i) { return src.path(i); }, timer)) {
        return error_frame_at(out, base, DiagCode::kAnalysisBudget,
                              deadline_message(src));
      }
      break;
    }
    case Proto2Op::kHistogram:
      if (!put_histogram_body(
              out, req.count, src.num_capture_slacks(),
              [&src](std::size_t i) { return src.capture_slack(i); }, timer)) {
        return error_frame_at(out, base, DiagCode::kAnalysisBudget,
                              deadline_message(src));
      }
      break;
    case Proto2Op::kConstraints: {
      const SnapshotSource::InstRef ref = src.find_instance(req.name);
      if (!ref.found) {
        return error_frame_at(
            out, base, DiagCode::kParseUnknownName,
            "unknown instance '" + std::string(req.name) + "'");
      }
      const std::size_t pins = src.num_instance_pins(ref);
      put_str(out, req.name);
      put_u64(out, pins);
      for (std::size_t i = 0; i < pins; ++i) {
        timer.count_cycle();
        if (timer.exhausted()) {
          return error_frame_at(out, base, DiagCode::kAnalysisBudget,
                                deadline_message(src));
        }
        const SourcePin pin = src.instance_pin(ref, i);
        const NodeTiming nt = src.node_timing(pin.node);
        put_str(out, pin.name);
        put_i64(out, nt.slack);
        put_i64(out, nt.ready.rise);
        put_i64(out, nt.ready.fall);
        put_i64(out, nt.required.rise);
        put_i64(out, nt.required.fall);
      }
      break;
    }
    case Proto2Op::kCheckHold: {
      if (!src.has_hold()) {
        return error_frame_at(
            out, base, DiagCode::kServiceRejected,
            "snapshot " + std::to_string(src.id()) +
                " carries no hold capture "
                "(SessionOptions::capture_hold disabled)");
      }
      if (!put_check_hold_body(
              out, req.margin, src.num_hold_pairs(),
              [&src](std::size_t i) { return src.hold_pair(i); }, timer)) {
        return error_frame_at(out, base, DiagCode::kAnalysisBudget,
                              deadline_message(src));
      }
      break;
    }
    case Proto2Op::kGenConstraints: {
      if (!src.has_constraints()) {
        return error_frame_at(
            out, base, DiagCode::kServiceRejected,
            "snapshot " + std::to_string(src.id()) +
                " carries no constraint capture "
                "(SessionOptions::capture_constraints disabled)");
      }
      const std::size_t cons = src.num_constraint_nodes();
      std::size_t endpoints = 0;
      for (std::size_t i = 0; i < cons; ++i) {
        const ConstraintTimes ct = src.constraint_node(i);
        if (ct.has_ready && ct.has_required && ct.slack <= 0) ++endpoints;
      }
      put_u8(out, static_cast<std::uint8_t>(src.constraints_status()));
      put_u32(out, static_cast<std::uint32_t>(src.backward_snatch_cycles()));
      put_u32(out, static_cast<std::uint32_t>(src.forward_snatch_cycles()));
      put_u64(out, endpoints);
      for (std::size_t i = 0; i < cons; ++i) {
        const ConstraintTimes ct = src.constraint_node(i);
        if (!ct.has_ready || !ct.has_required || ct.slack > 0) continue;
        timer.count_cycle();
        if (timer.exhausted()) {
          return error_frame_at(out, base, DiagCode::kAnalysisBudget,
                                deadline_message(src));
        }
        if (i < src.num_node_names()) {
          put_str(out, src.node_name(i));
        } else {
          put_str(out, std::to_string(i));
        }
        put_i64(out, std::max(ct.ready.rise, ct.ready.fall));
        put_i64(out, std::min(ct.required.rise, ct.required.fall));
        put_i64(out, ct.slack);
      }
      break;
    }
    case Proto2Op::kCorner: {
      if (!src.has_corners()) {
        return error_frame_at(
            out, base, DiagCode::kServiceRejected,
            "snapshot " + std::to_string(src.id()) +
                " carries no corner capture "
                "(session ran without a corner set)");
      }
      if (req.corner_list) {
        put_u8(out, kProto2CornerList);
        put_u64(out, src.num_corners());
        put_str(out, src.corner_meta(src.worst_corner()).name);
        for (std::size_t k = 0; k < src.num_corners(); ++k) {
          timer.count_cycle();
          if (timer.exhausted()) {
            return error_frame_at(out, base, DiagCode::kAnalysisBudget,
                                  deadline_message(src));
          }
          const SourceCornerMeta c = src.corner_meta(k);
          put_str(out, c.name);
          put_u32(out, c.derate_pm);
          put_u32(out, c.wire_pm);
          put_i64(out, c.worst_slack);
          put_u64(out, c.num_violations);
        }
        break;
      }
      const std::size_t k = resolve_corner_sv(src, req.selector);
      if (k == SnapshotSource::npos) {
        return error_frame_at(out, base, DiagCode::kParseUnknownName,
                              "unknown corner '" + std::string(req.selector) +
                                  "' (try `corner list`)");
      }
      const SourceCornerMeta c = src.corner_meta(k);
      put_u8(out, static_cast<std::uint8_t>(req.sub));
      put_str(out, c.name);
      switch (req.sub) {
        case Proto2Op::kSlack: {
          const std::size_t idx = src.find_node(req.name);
          if (idx == SnapshotSource::npos ||
              idx >= src.corner_num_node_slacks(k)) {
            return error_frame_at(
                out, base, DiagCode::kParseUnknownName,
                "unknown node '" + std::string(req.name) + "'");
          }
          put_str(out, req.name);
          put_i64(out, src.corner_node_slack(k, idx));
          break;
        }
        case Proto2Op::kWorstPaths: {
          const std::size_t served =
              std::min<std::size_t>(req.count, c.num_paths);
          if (!put_paths_body(
                  out, served, c.num_violations,
                  [&src, k](std::size_t i) { return src.corner_path(k, i); },
                  timer)) {
            return error_frame_at(out, base, DiagCode::kAnalysisBudget,
                                  deadline_message(src));
          }
          break;
        }
        case Proto2Op::kHistogram:
          if (!put_histogram_body(
                  out, req.count, src.corner_num_capture_slacks(k),
                  [&src, k](std::size_t i) {
                    return src.corner_capture_slack(k, i);
                  },
                  timer)) {
            return error_frame_at(out, base, DiagCode::kAnalysisBudget,
                                  deadline_message(src));
          }
          break;
        case Proto2Op::kSummary:
          put_u64(out, src.id());
          put_u32(out, c.derate_pm);
          put_u32(out, c.wire_pm);
          put_i64(out, c.worst_slack);
          put_u64(out, c.num_violations);
          put_u64(out, c.num_paths);
          break;
        case Proto2Op::kCheckHold: {
          if (!c.has_hold) {
            return error_frame_at(
                out, base, DiagCode::kServiceRejected,
                "snapshot " + std::to_string(src.id()) +
                    " carries no hold capture for corner " +
                    std::string(c.name) +
                    " (SessionOptions::capture_hold disabled)");
          }
          if (!put_check_hold_body(
                  out, req.margin, src.corner_num_hold_pairs(k),
                  [&src, k](std::size_t i) {
                    return src.corner_hold_pair(k, i);
                  },
                  timer)) {
            return error_frame_at(out, base, DiagCode::kAnalysisBudget,
                                  deadline_message(src));
          }
          break;
        }
        default:
          return error_frame_at(out, base, DiagCode::kParseSyntax,
                                "not a corner read query");
      }
      break;
    }
    case Proto2Op::kText:
      return error_frame_at(out, base, DiagCode::kParseSyntax,
                            "not a read query");
  }
  frame.finish();
  return Proto2Eval{};
}

void proto2_error_frame(DiagCode code, std::string_view message,
                        std::string& out) {
  FrameWriter frame(out);
  put_u8(out, static_cast<std::uint8_t>(Proto2Status::kError));
  put_u16(out, static_cast<std::uint16_t>(code));
  out.append(message);
  frame.finish();
}

void proto2_text_frame(std::string_view text, std::string& out) {
  FrameWriter frame(out);
  put_u8(out, static_cast<std::uint8_t>(Proto2Status::kText));
  out.append(text);
  frame.finish();
}

void proto2_ping_frame(std::string& out) {
  FrameWriter frame(out);
  put_u8(out, static_cast<std::uint8_t>(Proto2Status::kTyped));
  put_u8(out, static_cast<std::uint8_t>(Proto2Op::kPing));
  frame.finish();
}

bool proto2_encode_request(const ParsedQuery& q, std::string& out) {
  if (!q.ok) return false;
  const std::size_t base = out.size();
  FrameWriter frame(out);
  switch (q.verb) {
    case QueryVerb::kPing:
      put_u8(out, static_cast<std::uint8_t>(Proto2Op::kPing));
      break;
    case QueryVerb::kSummary:
      put_u8(out, static_cast<std::uint8_t>(Proto2Op::kSummary));
      break;
    case QueryVerb::kGenConstraints:
      put_u8(out, static_cast<std::uint8_t>(Proto2Op::kGenConstraints));
      break;
    case QueryVerb::kSlack:
      put_u8(out, static_cast<std::uint8_t>(Proto2Op::kSlack));
      out.append(q.args[0]);
      break;
    case QueryVerb::kConstraints:
      put_u8(out, static_cast<std::uint8_t>(Proto2Op::kConstraints));
      out.append(q.args[0]);
      break;
    case QueryVerb::kWorstPaths:
      put_u8(out, static_cast<std::uint8_t>(Proto2Op::kWorstPaths));
      put_u32(out, static_cast<std::uint32_t>(q.number));
      break;
    case QueryVerb::kHistogram:
      put_u8(out, static_cast<std::uint8_t>(Proto2Op::kHistogram));
      put_u32(out, static_cast<std::uint32_t>(q.number));
      break;
    case QueryVerb::kCheckHold:
      put_u8(out, static_cast<std::uint8_t>(Proto2Op::kCheckHold));
      put_i64(out, q.number);
      break;
    case QueryVerb::kCorner: {
      put_u8(out, static_cast<std::uint8_t>(Proto2Op::kCorner));
      if (q.args[0] == "list") {
        put_u8(out, kProto2CornerList);
        put_str(out, std::string_view());
        break;
      }
      Proto2Op sub;
      switch (q.corner_sub) {
        case QueryVerb::kSlack: sub = Proto2Op::kSlack; break;
        case QueryVerb::kWorstPaths: sub = Proto2Op::kWorstPaths; break;
        case QueryVerb::kHistogram: sub = Proto2Op::kHistogram; break;
        case QueryVerb::kSummary: sub = Proto2Op::kSummary; break;
        case QueryVerb::kCheckHold: sub = Proto2Op::kCheckHold; break;
        default:
          out.resize(base);
          return false;
      }
      put_u8(out, static_cast<std::uint8_t>(sub));
      put_str(out, q.args[0]);
      switch (q.corner_sub) {
        case QueryVerb::kSlack: out.append(q.args[1]); break;
        case QueryVerb::kWorstPaths:
        case QueryVerb::kHistogram:
          put_u32(out, static_cast<std::uint32_t>(q.number));
          break;
        case QueryVerb::kCheckHold: put_i64(out, q.number); break;
        default: break;  // kSummary: empty sub body
      }
      break;
    }
    default:
      out.resize(base);
      return false;
  }
  frame.finish();
  return true;
}

void proto2_encode_text(std::string_view line, std::string& out) {
  FrameWriter frame(out);
  put_u8(out, static_cast<std::uint8_t>(Proto2Op::kText));
  out.append(line);
  frame.finish();
}

// ---------------------------------------------------------------------------
// Response rendering (client side).

namespace {

bool render_paths(Reader& r, std::string& text, const std::string& scope) {
  const std::uint64_t served = r.u64();
  const std::uint64_t of = r.u64();
  if (r.fail || served > r.remaining() / 8) return false;
  text += scope + "worst_paths " + std::to_string(served) + " of " +
          std::to_string(of) + "\n";
  for (std::uint64_t i = 0; i < served; ++i) {
    const TimePs slack = r.i64();
    const std::string_view launch = r.str_view();
    const std::string_view capture = r.str_view();
    const std::string_view from = r.str_view();
    const std::string_view to = r.str_view();
    const std::uint64_t steps = r.u64();
    if (r.fail) return false;
    text += "  path " + std::to_string(i) + " slack " + fmt_ps(slack) +
            " launch ";
    text.append(launch);
    text += " capture ";
    text.append(capture);
    text += " from ";
    text.append(from);
    text += " to ";
    text.append(to);
    text += " steps " + std::to_string(steps) + "\n";
  }
  return r.remaining() == 0;
}

bool render_histogram(Reader& r, std::string& text, const std::string& scope) {
  const std::uint64_t bins = r.u64();
  const std::uint64_t n = r.u64();
  const TimePs mn = r.i64();
  const TimePs mx = r.i64();
  if (r.fail) return false;
  if (bins == 0) {
    if (n != 0 || r.remaining() != 0) return false;
    text += scope + "histogram 0 count 0 min 0 max 0\n";
    return true;
  }
  if (bins > r.remaining() / 8) return false;
  // Unsigned arithmetic: identical to the evaluator's signed computation on
  // well-formed frames (mx >= mn), defined behaviour on arbitrary bytes.
  const std::uint64_t span =
      static_cast<std::uint64_t>(mx) - static_cast<std::uint64_t>(mn);
  const std::uint64_t width = span / bins + 1;
  text += scope + "histogram " + std::to_string(bins) + " count " +
          std::to_string(n) + " min " + fmt_ps(mn) + " max " + fmt_ps(mx) +
          "\n";
  for (std::uint64_t i = 0; i < bins; ++i) {
    const std::uint64_t c = r.u64();
    if (r.fail) return false;
    const TimePs lo =
        static_cast<TimePs>(static_cast<std::uint64_t>(mn) + i * width);
    const TimePs hi =
        static_cast<TimePs>(static_cast<std::uint64_t>(mn) + (i + 1) * width);
    text += "  bin " + std::to_string(i) + " lo " + fmt_ps(lo) + " hi " +
            fmt_ps(hi) + " count " + std::to_string(c) + "\n";
  }
  return r.remaining() == 0;
}

bool render_check_hold(Reader& r, std::string& text, const std::string& scope) {
  const TimePs margin = r.i64();
  const std::uint64_t violations = r.u64();
  if (r.fail || violations > r.remaining() / 8) return false;
  text += scope + "check_hold " + fmt_ps(margin) + " violations " +
          std::to_string(violations) + "\n";
  for (std::uint64_t i = 0; i < violations; ++i) {
    const TimePs m = r.i64();
    const std::string_view launch = r.str_view();
    const std::string_view capture = r.str_view();
    if (r.fail) return false;
    text += "  hold ";
    text.append(launch);
    text += " -> ";
    text.append(capture);
    text += " margin " + fmt_ps(m) + "\n";
  }
  return r.remaining() == 0;
}

}  // namespace

bool proto2_render_payload(std::string_view payload, std::string& text) {
  Reader r = reader_of(payload);
  const std::uint8_t status = r.u8();
  if (r.fail) return false;
  if (status == static_cast<std::uint8_t>(Proto2Status::kText)) {
    text.append(payload.substr(1));
    return true;
  }
  if (status == static_cast<std::uint8_t>(Proto2Status::kError)) {
    const std::uint16_t code = r.u16();
    if (r.fail) return false;
    text += "err ";
    text += diag_code_name(static_cast<DiagCode>(code));
    text += ' ';
    text.append(payload.substr(3));
    text += '\n';
    return true;
  }
  if (status != static_cast<std::uint8_t>(Proto2Status::kTyped)) return false;
  const std::uint8_t op = r.u8();
  if (r.fail) return false;
  switch (static_cast<Proto2Op>(op)) {
    case Proto2Op::kPing:
      if (r.remaining() != 0) return false;
      text += "ok pong\n";
      return true;
    case Proto2Op::kSummary: {
      const std::uint64_t id = r.u64();
      const std::uint8_t st = r.u8();
      const std::uint8_t works = r.u8();
      const TimePs worst = r.i64();
      const std::uint64_t terminals = r.u64();
      const std::uint64_t violations = r.u64();
      const std::uint64_t paths = r.u64();
      if (r.fail || r.remaining() != 0 || st > 2) return false;
      text += "ok summary snapshot " + std::to_string(id) + " fields 6\n";
      text += "  status ";
      text += analysis_status_name(static_cast<AnalysisStatus>(st));
      text += "\n";
      text += std::string("  works_as_intended ") +
              (works != 0 ? "true" : "false") + "\n";
      text += "  worst_slack " + fmt_ps(worst) + "\n";
      text += "  terminals " + std::to_string(terminals) + "\n";
      text += "  violations " + std::to_string(violations) + "\n";
      text += "  paths " + std::to_string(paths) + "\n";
      return true;
    }
    case Proto2Op::kSlack: {
      const std::string_view name = r.str_view();
      const TimePs slack = r.i64();
      if (r.fail || r.remaining() != 0) return false;
      text += "ok slack ";
      text.append(name);
      text += " " + fmt_ps(slack) + "\n";
      return true;
    }
    case Proto2Op::kWorstPaths:
      return render_paths(r, text, "ok ");
    case Proto2Op::kHistogram:
      return render_histogram(r, text, "ok ");
    case Proto2Op::kConstraints: {
      const std::string_view inst = r.str_view();
      const std::uint64_t pins = r.u64();
      if (r.fail || pins > r.remaining() / 8) return false;
      text += "ok constraints ";
      text.append(inst);
      text += " pins " + std::to_string(pins) + "\n";
      for (std::uint64_t i = 0; i < pins; ++i) {
        const std::string_view pin = r.str_view();
        const TimePs slack = r.i64();
        const TimePs rr = r.i64();
        const TimePs rf = r.i64();
        const TimePs qr = r.i64();
        const TimePs qf = r.i64();
        if (r.fail) return false;
        text += "  pin ";
        text.append(pin);
        text += " slack " + fmt_ps(slack) + " ready " + fmt_ps(rr) + " " +
                fmt_ps(rf) + " required " + fmt_ps(qr) + " " + fmt_ps(qf) +
                "\n";
      }
      return r.remaining() == 0;
    }
    case Proto2Op::kCheckHold:
      return render_check_hold(r, text, "ok ");
    case Proto2Op::kGenConstraints: {
      const std::uint8_t st = r.u8();
      const std::uint32_t backward = r.u32();
      const std::uint32_t forward = r.u32();
      const std::uint64_t endpoints = r.u64();
      if (r.fail || st > 2 || endpoints > r.remaining() / 8) return false;
      text += "ok gen_constraints status ";
      text += analysis_status_name(static_cast<AnalysisStatus>(st));
      text += " backward " +
              std::to_string(static_cast<std::int32_t>(backward)) +
              " forward " + std::to_string(static_cast<std::int32_t>(forward)) +
              " endpoints " + std::to_string(endpoints) + "\n";
      for (std::uint64_t i = 0; i < endpoints; ++i) {
        const std::string_view name = r.str_view();
        const TimePs ready = r.i64();
        const TimePs required = r.i64();
        const TimePs slack = r.i64();
        if (r.fail) return false;
        text += "  node ";
        text.append(name);
        text += " ready " + fmt_ps(ready) + " required " + fmt_ps(required) +
                " slack " + fmt_ps(slack) + "\n";
      }
      return r.remaining() == 0;
    }
    case Proto2Op::kCorner: {
      const std::uint8_t sub = r.u8();
      if (r.fail) return false;
      if (sub == kProto2CornerList) {
        const std::uint64_t n = r.u64();
        const std::string_view worst = r.str_view();
        if (r.fail || n > r.remaining() / 8) return false;
        text += "ok corner list " + std::to_string(n) + " worst ";
        text.append(worst);
        text += "\n";
        for (std::uint64_t k = 0; k < n; ++k) {
          const std::string_view name = r.str_view();
          const std::uint32_t derate = r.u32();
          const std::uint32_t wire = r.u32();
          const TimePs ws = r.i64();
          const std::uint64_t violations = r.u64();
          if (r.fail) return false;
          text += "  corner " + std::to_string(k) + " ";
          text.append(name);
          text += " derate " + std::to_string(derate) + " wire " +
                  std::to_string(wire) + " worst_slack " + fmt_ps(ws) +
                  " violations " + std::to_string(violations) + "\n";
        }
        return r.remaining() == 0;
      }
      const std::string_view cname = r.str_view();
      if (r.fail) return false;
      const std::string scope = "ok corner " + std::string(cname) + " ";
      switch (static_cast<Proto2Op>(sub)) {
        case Proto2Op::kSlack: {
          const std::string_view name = r.str_view();
          const TimePs slack = r.i64();
          if (r.fail || r.remaining() != 0) return false;
          text += scope + "slack ";
          text.append(name);
          text += " " + fmt_ps(slack) + "\n";
          return true;
        }
        case Proto2Op::kWorstPaths:
          return render_paths(r, text, scope);
        case Proto2Op::kHistogram:
          return render_histogram(r, text, scope);
        case Proto2Op::kSummary: {
          const std::uint64_t id = r.u64();
          const std::uint32_t derate = r.u32();
          const std::uint32_t wire = r.u32();
          const TimePs ws = r.i64();
          const std::uint64_t violations = r.u64();
          const std::uint64_t paths = r.u64();
          if (r.fail || r.remaining() != 0) return false;
          text += scope + "summary snapshot " + std::to_string(id) +
                  " fields 5\n";
          text += "  derate " + std::to_string(derate) + "\n";
          text += "  wire " + std::to_string(wire) + "\n";
          text += "  worst_slack " + fmt_ps(ws) + "\n";
          text += "  violations " + std::to_string(violations) + "\n";
          text += "  paths " + std::to_string(paths) + "\n";
          return true;
        }
        case Proto2Op::kCheckHold:
          return render_check_hold(r, text, scope);
        default:
          return false;
      }
    }
    default:
      return false;
  }
}

}  // namespace hb
