// Binary query protocol v2 (docs/SERVICE.md "Binary protocol v2").
//
// Negotiated in-band: a connection starts in the line protocol and switches
// after `proto 2` is acknowledged.  From then on both directions carry
// length-prefixed frames: a u32 little-endian payload length followed by
// the payload.  Request payloads are one opcode byte plus a fixed-width
// body; response payloads are one status byte followed by either a typed
// body (status 0, opcode echoed), a structured error (status 1, u16
// DiagCode + message), or a verbatim text reply (status 2 — the escape
// hatch that keeps every line-protocol verb reachable from v2).
//
// Typed replies carry raw values (little-endian integers, u32-prefixed
// strings, picoseconds as i64), not formatted text; proto2_render_payload
// reconstructs the exact proto-1 reply bytes from them, which is how the
// differential tests pin the two protocols together
// (tests/proto2_test.cpp).  Both the request decoder and the response
// renderer are bounds-checked end to end and safe on arbitrary bytes (the
// fixed-seed fuzz CI job).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "service/query.hpp"
#include "service/snapshot_source.hpp"
#include "util/cancel.hpp"

namespace hb {

/// Upper bound on a request frame's payload length; oversized frames are
/// answered with a structured error and the connection closes.  Replies
/// are not bounded (a worst_paths reply can be large).
inline constexpr std::uint32_t kProto2MaxFrame = 1u << 20;

/// Request opcodes (first payload byte).  kText wraps one line-protocol
/// request verbatim; all other opcodes are typed read verbs.
enum class Proto2Op : std::uint8_t {
  kText = 0x00,
  kPing = 0x01,
  kSummary = 0x02,
  kSlack = 0x03,           // body: node name (rest of frame)
  kWorstPaths = 0x04,      // body: u32 K
  kHistogram = 0x05,       // body: u32 bins
  kConstraints = 0x06,     // body: instance name (rest of frame)
  kCheckHold = 0x07,       // body: i64 margin (ps)
  kGenConstraints = 0x08,  // body: empty
  kCorner = 0x09,          // body: u8 sub, str selector, sub body
};

/// First byte of every response payload.
enum class Proto2Status : std::uint8_t {
  kTyped = 0,  // u8 opcode echo + typed body
  kError = 1,  // u16 DiagCode + message bytes
  kText = 2,   // verbatim proto-1 reply text
};

/// The `sub` byte of a kCorner request/reply meaning `corner list`; any
/// other value is the Proto2Op of the scoped read verb.
inline constexpr std::uint8_t kProto2CornerList = 0xFF;

/// A decoded request frame payload.  String fields view into the payload
/// bytes — keep them alive until evaluation finishes.
struct Proto2Request {
  Proto2Op op = Proto2Op::kText;
  bool ok = false;
  DiagCode code = DiagCode::kParseSyntax;  // when !ok
  std::string error;                       // when !ok
  std::string_view text;      // kText: the wrapped request line
  std::string_view name;      // kSlack node / kConstraints instance
  std::uint32_t count = 0;    // kWorstPaths K / kHistogram bins
  TimePs margin = 0;          // kCheckHold
  bool corner_list = false;   // kCorner: `corner list`
  Proto2Op sub = Proto2Op::kText;  // kCorner: scoped verb
  std::string_view selector;  // kCorner: corner name or index
};

/// Decode and validate one request payload (without the length prefix).
/// Never throws on arbitrary bytes; malformed input yields ok == false
/// with the structured error to send back.
Proto2Request proto2_decode_request(std::string_view payload);

struct Proto2Eval {
  bool ok = true;
  bool timed_out = false;
};

/// Evaluate one typed read request against a snapshot source, appending a
/// complete response frame (length prefix included) to `out`.  Reply
/// values are exactly those of evaluate_snapshot_read on the same source —
/// proto2_render_payload(reply) reproduces the proto-1 text byte for byte.
Proto2Eval proto2_evaluate(const Proto2Request& req, const SnapshotSource& src,
                           BudgetTimer& timer, std::string& out);

/// Append an error / verbatim-text / ping response frame to `out`.
void proto2_error_frame(DiagCode code, std::string_view message,
                        std::string& out);
void proto2_text_frame(std::string_view text, std::string& out);
void proto2_ping_frame(std::string& out);

/// Client side: encode a parsed query as a typed request frame.  Returns
/// false (appending nothing) when the verb has no typed opcode — wrap the
/// original line with proto2_encode_text instead.
bool proto2_encode_request(const ParsedQuery& q, std::string& out);
void proto2_encode_text(std::string_view line, std::string& out);

/// Client side: render one response payload (without the length prefix)
/// back into proto-1 reply text, appended to `text`.  Returns false on a
/// malformed payload without touching `text`'s existing content beyond
/// what was already appended.  Safe on arbitrary bytes.
bool proto2_render_payload(std::string_view payload, std::string& text);

}  // namespace hb
