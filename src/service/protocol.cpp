#include "service/protocol.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "clocks/clock_io.hpp"
#include "netlist/blif_builder.hpp"
#include "netlist/blif_io.hpp"
#include "netlist/library_io.hpp"
#include "netlist/netlist_io.hpp"
#include "netlist/stdcells.hpp"
#include "service/snapshot_read.hpp"
#include "service/snapshot_store.hpp"
#include "util/error.hpp"

namespace hb {

ServiceHost::ServiceHost(ServiceConfig config) : config_(std::move(config)) {
  if (config_.snapshot_dir.empty()) return;
  SnapshotStore::Options opt;
  opt.dir = config_.snapshot_dir;
  opt.retain = config_.snapshot_retain;
  store_ = std::make_unique<SnapshotStore>(std::move(opt));
  // Warm restart: adopt the newest valid persisted snapshot, quarantining
  // anything corrupt on the way; an empty or fully corrupt store is a cold
  // start, not an error.
  SnapshotStore::LoadResult warm = store_->load_newest();
  warm_rejected_ = warm.rejected;
  if (warm.ok()) {
    warm_loaded_ = true;
    warm_ = std::move(warm.snapshot);
  }
}

ServiceHost::~ServiceHost() = default;

void ServiceHost::adopt(std::shared_ptr<Session> session) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (session != nullptr && store_ != nullptr) {
    session->set_snapshot_store(store_.get());
    // The construction-time warm load happened before any session existed;
    // transfer its recovery counters into the first session's metrics so
    // `stats` reflects the restart.
    ServiceMetrics& m = session->metrics();
    if (warm_loaded_) m.record_snapshot_loaded();
    if (warm_rejected_ > 0) {
      m.record_snapshots_rejected(warm_rejected_);
      m.record_snapshot_self_heal();
    }
    warm_loaded_ = false;
    warm_rejected_ = 0;
  }
  session_ = std::move(session);
}

std::shared_ptr<Session> ServiceHost::session() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return session_;
}

std::shared_ptr<const AnalysisSnapshot> ServiceHost::warm_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return warm_;
}

QueryResult ServiceHost::snapshot_command(const ParsedQuery& q) {
  if (store_ == nullptr) {
    return make_error(DiagCode::kServiceRejected,
                      "no snapshot store configured (serve --snapshot-dir)");
  }
  const std::string& sub = q.args[0];
  if (sub == "save") {
    const std::shared_ptr<Session> session = this->session();
    if (session == nullptr) {
      return make_error(DiagCode::kServiceRejected,
                        "snapshot save needs a loaded design; use `load "
                        "<netlist> <spec>`");
    }
    const std::shared_ptr<const AnalysisSnapshot> snap = session->snapshot();
    const SnapshotStore::SaveResult res = store_->save(*snap);
    if (!res.ok) return make_error(res.code, res.error);
    session->metrics().record_snapshot_saved();
    return make_ok("ok snapshot save " + snap->design_name + " generation " +
                   std::to_string(res.generation) + " snapshot " +
                   std::to_string(snap->id));
  }
  if (sub == "load") {
    const std::string design = q.args.size() > 1 ? q.args[1] : std::string();
    SnapshotStore::LoadResult res = store_->load_newest(design);
    const std::shared_ptr<Session> session = this->session();
    if (session != nullptr) {
      ServiceMetrics& m = session->metrics();
      if (res.rejected > 0) {
        m.record_snapshots_rejected(res.rejected);
        m.record_snapshot_self_heal();
      }
      if (res.ok()) m.record_snapshot_loaded();
    }
    if (!res.ok()) return make_error(res.code, res.error);
    QueryResult r = make_ok("ok snapshot load " + res.design + " generation " +
                            std::to_string(res.generation) + " snapshot " +
                            std::to_string(res.snapshot->id) + " rejected " +
                            std::to_string(res.rejected));
    std::lock_guard<std::mutex> lock(mutex_);
    warm_ = std::move(res.snapshot);
    return r;
  }
  // stat: store-level truth (counters since this process opened the store).
  std::vector<std::string> lines;
  const auto add = [&lines](const std::string& name, const std::string& v) {
    lines.push_back("  store " + name + " " + v);
  };
  add("dir", store_->dir());
  add("retain", std::to_string(store_->retain()));
  const std::vector<std::string> designs = store_->designs();
  std::size_t files = 0;
  for (const std::string& d : designs) files += store_->generations(d).size();
  add("designs", std::to_string(designs.size()));
  add("files", std::to_string(files));
  add("saves", std::to_string(store_->saves()));
  add("save_failures", std::to_string(store_->save_failures()));
  add("loads", std::to_string(store_->loads()));
  add("snapshots_rejected", std::to_string(store_->snapshots_rejected()));
  add("self_heals", std::to_string(store_->self_heals()));
  const std::shared_ptr<const AnalysisSnapshot> warm = warm_snapshot();
  add("warm", warm == nullptr
                  ? std::string("none")
                  : warm->design_name + " " + std::to_string(warm->id));
  QueryResult r = make_ok("ok snapshot stat " + std::to_string(lines.size()));
  for (std::string& l : lines) r.lines.push_back(std::move(l));
  return r;
}

QueryResult ServiceHost::load(const std::string& netlist_path,
                              const std::string& spec_path,
                              const std::string& lib_path) {
  try {
    std::shared_ptr<const Library> lib = config_.lib;
    if (!lib_path.empty()) {
      std::ifstream lf(lib_path);
      if (!lf) {
        return make_error(DiagCode::kServiceRejected,
                          "cannot open library '" + lib_path + "'");
      }
      lib = load_library(lf);
    }
    if (lib == nullptr) lib = make_standard_library();

    std::ifstream nf(netlist_path);
    if (!nf) {
      return make_error(DiagCode::kServiceRejected,
                        "cannot open netlist '" + netlist_path + "'");
    }
    Design design = is_blif_path(netlist_path) ? load_blif(nf, lib)
                                               : load_netlist(nf, lib);

    // "-" in place of a spec file derives default clocks from the design's
    // clock ports (BLIF netlists usually carry no companion spec).
    TimingSpec spec;
    if (spec_path == "-") {
      spec.clocks = default_blif_clocks(design, ns(20));
    } else {
      std::ifstream sf(spec_path);
      if (!sf) {
        return make_error(DiagCode::kServiceRejected,
                          "cannot open timing spec '" + spec_path + "'");
      }
      spec = load_timing_spec(sf);
    }

    HummingbirdOptions analysis = config_.analysis;
    analysis.sync.input_arrivals = spec.input_arrivals;
    analysis.sync.output_requireds = spec.output_requireds;

    const std::string name = design.name();
    const std::size_t cells = design.total_cell_count();
    auto session = std::make_shared<Session>(std::move(design), spec.clocks,
                                             std::move(analysis),
                                             config_.session);
    const std::uint64_t snap = session->snapshot()->id;
    adopt(std::move(session));
    return make_ok("ok load " + name + " cells " + std::to_string(cells) +
                   " snapshot " + std::to_string(snap));
  } catch (const Error& e) {
    return make_error(DiagCode::kParseStructure, e.what());
  }
}

// ---------------------------------------------------------------------------

ProtocolHandler::ProtocolHandler(ServiceHost& host)
    : host_(&host), timer_(AnalysisBudget{}) {}

std::string ProtocolHandler::handle_line(const std::string& line) {
  if (batch_pending_ > 0) {
    batch_lines_.push_back(line);
    if (--batch_pending_ > 0) return std::string();
    return to_wire(run_batch());
  }
  const ParsedQuery q = parse_query(line);
  if (!q.ok && q.error.lines.empty()) return std::string();  // blank/comment
  if (!q.ok) return to_wire(q.error);
  if (q.verb == QueryVerb::kBatch) {
    batch_pending_ = static_cast<std::size_t>(q.number);
    batch_lines_.clear();
    return std::string();
  }
  return to_wire(dispatch(q));
}

QueryResult ProtocolHandler::dispatch(const ParsedQuery& q) {
  switch (q.verb) {
    case QueryVerb::kQuit:
      quit_ = true;
      return make_ok("ok bye");
    case QueryVerb::kHelp: {
      std::vector<std::string> lines = protocol_help_lines();
      QueryResult r = make_ok("ok help " + std::to_string(lines.size()));
      for (std::string& l : lines) r.lines.push_back(std::move(l));
      return r;
    }
    case QueryVerb::kLoad:
      return host_->load(q.args[0], q.args[1],
                         q.args.size() > 2 ? q.args[2] : std::string());
    case QueryVerb::kSnapshot:
      return host_->snapshot_command(q);
    default: {
      const std::shared_ptr<Session> session = host_->session();
      if (session == nullptr) {
        // Warm restart: before any design is loaded, read queries answer
        // from the persisted snapshot the host recovered at start-up —
        // byte-identical to the session that saved it, via the shared
        // snapshot evaluator.
        const std::shared_ptr<const AnalysisSnapshot> warm =
            host_->warm_snapshot();
        if (warm != nullptr && is_read_query(q.verb)) {
          token_.reset();
          AnalysisBudget budget;
          budget.cancel = &token_;
          timer_.rearm(budget);
          return evaluate_snapshot_read(q, *warm, timer_);
        }
        if (warm != nullptr) {
          return make_error(
              DiagCode::kServiceRejected,
              "warm snapshot " + std::to_string(warm->id) + " of '" +
                  warm->design_name +
                  "' is read-only; `load <netlist> <spec>` to edit");
        }
        return make_error(DiagCode::kServiceRejected,
                          "no design loaded; use `load <netlist> <spec>`");
      }
      // Reuse the connection's token/timer pair across requests: reset the
      // token, then re-arm the timer with this request's deadline.
      token_.reset();
      AnalysisBudget budget;
      budget.wall_seconds = session->deadline_ms() / 1000.0;
      budget.cancel = &token_;
      timer_.rearm(budget);
      return session->execute(q, &timer_);
    }
  }
}

QueryResult ProtocolHandler::run_batch() {
  const std::shared_ptr<Session> session = host_->session();
  if (session == nullptr) {
    return make_error(DiagCode::kServiceRejected,
                      "no design loaded; use `load <netlist> <spec>`");
  }
  const std::vector<QueryResult> results = session->execute_batch(batch_lines_);
  batch_lines_.clear();
  std::size_t emitted = 0;
  for (const QueryResult& r : results) {
    if (!r.lines.empty()) ++emitted;
  }
  QueryResult out = make_ok("ok batch " + std::to_string(emitted));
  for (const QueryResult& r : results) {
    for (const std::string& l : r.lines) out.lines.push_back(l);
  }
  return out;
}

std::vector<std::string> protocol_help_lines() {
  return {
      "  slack <node>             slack of one timing-graph node",
      "  worst_paths <K>          the K worst slow paths of the snapshot",
      "  histogram <bins>         capture-terminal slack histogram",
      "  constraints <instance>   per-pin timing window of an instance",
      "  summary                  snapshot-level analysis summary",
      "  set_delay <inst> <time>  add delay to an instance (pending edit)",
      "  upsize <inst>            swap to the next stronger variant",
      "  commit                   re-analyse edits, publish next snapshot",
      "  check_hold [<margin>]    hold pairs below margin, from the snapshot's"
      " hold capture",
      "  gen_constraints          Algorithm 2 constraint times from the"
      " snapshot's capture",
      "  corner list              corners of the snapshot's multi-corner"
      " capture",
      "  corner <name|k> <query>  scope slack/worst_paths/histogram/summary/"
      "check_hold to one corner",
      "  deadline <ms>            per-request deadline (0 = unlimited)",
      "  stats                    service counters and latency percentiles",
      "  ping                     liveness check",
      "  load <netlist> <spec> [<lib>]  start a session from files"
      " (.blif netlists accepted; spec `-` derives clocks from clock ports)",
      "  snapshot save            persist the current snapshot to the store",
      "  snapshot load [<design>] adopt the newest valid stored snapshot",
      "  snapshot stat            snapshot-store counters and contents",
      "  batch <N>                execute the next N lines as one batch",
      "  help                     this text",
      "  quit                     end the connection",
  };
}

int serve_stream(ServiceHost& host, std::istream& in, std::ostream& out) {
  ProtocolHandler handler(host);
  int errors = 0;
  std::string line;
  while (std::getline(in, line)) {
    const std::string reply = handler.handle_line(line);
    if (!reply.empty()) {
      if (reply.rfind("err ", 0) == 0) ++errors;
      out << reply;
      out.flush();
    }
    if (handler.quit()) break;
  }
  return errors;
}

}  // namespace hb
