#include "service/protocol.hpp"

#include <chrono>
#include <fstream>
#include <istream>
#include <ostream>

#include "clocks/clock_io.hpp"
#include "netlist/blif_builder.hpp"
#include "netlist/blif_io.hpp"
#include "netlist/library_io.hpp"
#include "netlist/netlist_io.hpp"
#include "netlist/stdcells.hpp"
#include "service/snapshot_codec.hpp"
#include "service/snapshot_read.hpp"
#include "service/snapshot_source.hpp"
#include "service/snapshot_store.hpp"
#include "util/error.hpp"

namespace hb {

ServiceHost::ServiceHost(ServiceConfig config) : config_(std::move(config)) {
  if (config_.snapshot_dir.empty()) {
    if (config_.replica) {
      raise("replica mode needs a snapshot store (serve --replica requires "
            "--snapshot-dir)");
    }
    return;
  }
  SnapshotStore::Options opt;
  opt.dir = config_.snapshot_dir;
  opt.retain = config_.snapshot_retain;
  store_ = std::make_unique<SnapshotStore>(std::move(opt));
  // Warm restart: adopt the newest valid persisted snapshot — mmap'd when
  // the image format supports the zero-copy view, decoded otherwise —
  // quarantining anything corrupt on the way; an empty or fully corrupt
  // store is a cold start, not an error.
  SnapshotStore::SourceResult warm = store_->load_newest_source();
  warm_rejected_ = warm.rejected;
  if (warm.ok()) {
    warm_loaded_ = true;
    warm_source_ = std::move(warm.source);
    warm_mapped_ = warm.mapped;
    warm_sections_ = std::move(warm.sections);
    warm_bytes_ = warm.image_bytes;
  }
}

ServiceHost::~ServiceHost() = default;

void ServiceHost::adopt(std::shared_ptr<Session> session) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (session != nullptr && store_ != nullptr) {
    session->set_snapshot_store(store_.get());
    // The construction-time warm load happened before any session existed;
    // transfer its recovery counters into the first session's metrics so
    // `stats` reflects the restart.
    ServiceMetrics& m = session->metrics();
    if (warm_loaded_) m.record_snapshot_loaded();
    if (warm_rejected_ > 0) {
      m.record_snapshots_rejected(warm_rejected_);
      m.record_snapshot_self_heal();
    }
    warm_loaded_ = false;
    warm_rejected_ = 0;
  }
  session_ = std::move(session);
}

std::shared_ptr<Session> ServiceHost::session() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return session_;
}

std::shared_ptr<const SnapshotSource> ServiceHost::warm_source() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return warm_source_;
}

bool ServiceHost::warm_mapped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return warm_source_ != nullptr && warm_mapped_;
}

QueryResult ServiceHost::snapshot_command(const ParsedQuery& q) {
  if (store_ == nullptr) {
    return make_error(DiagCode::kServiceRejected,
                      "no snapshot store configured (serve --snapshot-dir)");
  }
  const std::string& sub = q.args[0];
  if (sub == "save") {
    const std::shared_ptr<Session> session = this->session();
    if (session == nullptr) {
      return make_error(DiagCode::kServiceRejected,
                        "snapshot save needs a loaded design; use `load "
                        "<netlist> <spec>`");
    }
    const std::shared_ptr<const AnalysisSnapshot> snap = session->snapshot();
    const SnapshotStore::SaveResult res = store_->save(*snap);
    if (!res.ok) return make_error(res.code, res.error);
    session->metrics().record_snapshot_saved();
    return make_ok("ok snapshot save " + snap->design_name + " generation " +
                   std::to_string(res.generation) + " snapshot " +
                   std::to_string(snap->id));
  }
  if (sub == "load") {
    const std::string design = q.args.size() > 1 ? q.args[1] : std::string();
    SnapshotStore::SourceResult res = store_->load_newest_source(design);
    const std::shared_ptr<Session> session = this->session();
    if (session != nullptr) {
      ServiceMetrics& m = session->metrics();
      if (res.rejected > 0) {
        m.record_snapshots_rejected(res.rejected);
        m.record_snapshot_self_heal();
      }
      if (res.ok()) m.record_snapshot_loaded();
    }
    if (!res.ok()) return make_error(res.code, res.error);
    QueryResult r = make_ok("ok snapshot load " + res.design + " generation " +
                            std::to_string(res.generation) + " snapshot " +
                            std::to_string(res.source->id()) + " rejected " +
                            std::to_string(res.rejected));
    std::lock_guard<std::mutex> lock(mutex_);
    warm_source_ = std::move(res.source);
    warm_mapped_ = res.mapped;
    warm_sections_ = std::move(res.sections);
    warm_bytes_ = res.image_bytes;
    return r;
  }
  // stat: store-level truth (counters since this process opened the store).
  std::vector<std::string> lines;
  const auto add = [&lines](const std::string& name, const std::string& v) {
    lines.push_back("  store " + name + " " + v);
  };
  add("dir", store_->dir());
  add("retain", std::to_string(store_->retain()));
  const std::vector<std::string> designs = store_->designs();
  std::size_t files = 0;
  for (const std::string& d : designs) files += store_->generations(d).size();
  add("designs", std::to_string(designs.size()));
  add("files", std::to_string(files));
  add("saves", std::to_string(store_->saves()));
  add("save_failures", std::to_string(store_->save_failures()));
  add("loads", std::to_string(store_->loads()));
  add("snapshots_rejected", std::to_string(store_->snapshots_rejected()));
  add("self_heals", std::to_string(store_->self_heals()));
  std::shared_ptr<const SnapshotSource> warm;
  bool mapped = false;
  std::vector<SnapshotSectionInfo> sections;
  std::size_t image_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    warm = warm_source_;
    mapped = warm_mapped_;
    sections = warm_sections_;
    image_bytes = warm_bytes_;
  }
  add("warm", warm == nullptr
                  ? std::string("none")
                  : std::string(warm->design_name()) + " " +
                        std::to_string(warm->id()));
  if (warm != nullptr) add("warm_mode", mapped ? "mapped" : "copied");
  if (warm == nullptr && store_->saves() > 0) {
    // No warm source: report the image the most recent save produced.
    sections = store_->last_save_sections();
    image_bytes = store_->last_save_bytes();
  }
  if (!sections.empty()) {
    add("image_bytes", std::to_string(image_bytes));
    for (const SnapshotSectionInfo& s : sections) {
      const char* name =
          s.kind < kNumSnapshotSections
              ? snapshot_section_name(static_cast<SnapshotSection>(s.kind))
              : "unknown";
      add(std::string("section_") + name, std::to_string(s.payload_size));
    }
  }
  QueryResult r = make_ok("ok snapshot stat " + std::to_string(lines.size()));
  for (std::string& l : lines) r.lines.push_back(std::move(l));
  return r;
}

QueryResult ServiceHost::load(const std::string& netlist_path,
                              const std::string& spec_path,
                              const std::string& lib_path) {
  if (config_.replica) {
    return make_error(DiagCode::kServiceRejected,
                      "replica mode: `load` is disabled (read-only replica "
                      "over the snapshot store)");
  }
  try {
    std::shared_ptr<const Library> lib = config_.lib;
    if (!lib_path.empty()) {
      std::ifstream lf(lib_path);
      if (!lf) {
        return make_error(DiagCode::kServiceRejected,
                          "cannot open library '" + lib_path + "'");
      }
      lib = load_library(lf);
    }
    if (lib == nullptr) lib = make_standard_library();

    std::ifstream nf(netlist_path);
    if (!nf) {
      return make_error(DiagCode::kServiceRejected,
                        "cannot open netlist '" + netlist_path + "'");
    }
    Design design = is_blif_path(netlist_path) ? load_blif(nf, lib)
                                               : load_netlist(nf, lib);

    // "-" in place of a spec file derives default clocks from the design's
    // clock ports (BLIF netlists usually carry no companion spec).
    TimingSpec spec;
    if (spec_path == "-") {
      spec.clocks = default_blif_clocks(design, ns(20));
    } else {
      std::ifstream sf(spec_path);
      if (!sf) {
        return make_error(DiagCode::kServiceRejected,
                          "cannot open timing spec '" + spec_path + "'");
      }
      spec = load_timing_spec(sf);
    }

    HummingbirdOptions analysis = config_.analysis;
    analysis.sync.input_arrivals = spec.input_arrivals;
    analysis.sync.output_requireds = spec.output_requireds;

    const std::string name = design.name();
    const std::size_t cells = design.total_cell_count();
    auto session = std::make_shared<Session>(std::move(design), spec.clocks,
                                             std::move(analysis),
                                             config_.session);
    const std::uint64_t snap = session->snapshot()->id;
    adopt(std::move(session));
    return make_ok("ok load " + name + " cells " + std::to_string(cells) +
                   " snapshot " + std::to_string(snap));
  } catch (const Error& e) {
    return make_error(DiagCode::kParseStructure, e.what());
  }
}

// ---------------------------------------------------------------------------

namespace {

double seconds_between(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ProtocolHandler::ProtocolHandler(ServiceHost& host)
    : host_(&host), timer_(AnalysisBudget{}) {}

const std::string& ProtocolHandler::handle_line(const std::string& line) {
  wire_.clear();
  handle_line_into(line, wire_);
  return wire_;
}

void ProtocolHandler::handle_line_into(const std::string& line,
                                       std::string& wire) {
  if (batch_pending_ > 0) {
    batch_lines_.push_back(line);
    if (--batch_pending_ > 0) return;
    append_result(run_batch(), wire);
    return;
  }
  if (!parse_query_into(line, parsed_)) {
    // Blank/comment lines parse to an empty error: emit nothing.
    if (!parsed_.error.lines.empty()) append_result(parsed_.error, wire);
    return;
  }
  if (parsed_.verb == QueryVerb::kBatch) {
    batch_pending_ = static_cast<std::size_t>(parsed_.number);
    batch_lines_.clear();
    return;
  }
  dispatch_into(parsed_, wire);
}

void ProtocolHandler::append_result(const QueryResult& r, std::string& wire) {
  for (const std::string& l : r.lines) {
    wire.append(l);
    wire.push_back('\n');
  }
}

void ProtocolHandler::dispatch_into(const ParsedQuery& q, std::string& wire) {
  switch (q.verb) {
    case QueryVerb::kQuit:
      quit_ = true;
      wire.append("ok bye\n");
      return;
    case QueryVerb::kProto:
      // Negotiate the wire protocol.  The acknowledgement itself is sent in
      // the current (text) encoding; everything after it is binary frames.
      if (q.args[0] == "2") {
        wire.append("ok proto 2\n");
        binary_ = true;
        return;
      }
      append_result(
          make_error(DiagCode::kServiceRejected,
                     "unsupported protocol version '" + q.args[0] +
                         "' (this build speaks 1 and 2; 1 is the default)"),
          wire);
      return;
    case QueryVerb::kHelp: {
      std::vector<std::string> lines = protocol_help_lines();
      wire.append("ok help " + std::to_string(lines.size()) + "\n");
      for (const std::string& l : lines) {
        wire.append(l);
        wire.push_back('\n');
      }
      return;
    }
    case QueryVerb::kLoad:
      append_result(host_->load(q.args[0], q.args[1],
                                q.args.size() > 2 ? q.args[2] : std::string()),
                    wire);
      return;
    case QueryVerb::kSnapshot:
      append_result(host_->snapshot_command(q), wire);
      return;
    default: {
      const std::shared_ptr<Session> session = host_->session();
      if (session == nullptr) {
        // Warm restart / replica: before any design is loaded, read queries
        // answer from the snapshot source the host recovered from the store
        // — byte-identical to the session that saved it, via the shared
        // snapshot evaluator (a zero-copy mmap view when mapped).
        const std::shared_ptr<const SnapshotSource> warm =
            host_->warm_source();
        if (warm != nullptr && is_read_query(q.verb)) {
          token_.reset();
          AnalysisBudget budget;
          budget.cancel = &token_;
          timer_.rearm(budget);
          append_result(evaluate_snapshot_read(q, *warm, timer_), wire);
          return;
        }
        if (warm != nullptr) {
          append_result(
              make_error(
                  DiagCode::kServiceRejected,
                  "warm snapshot " + std::to_string(warm->id()) + " of '" +
                      std::string(warm->design_name()) + "' is read-only; " +
                      (host_->config().replica
                           ? std::string(
                                 "this host is a replica (serve --replica)")
                           : std::string("`load <netlist> <spec>` to edit"))),
              wire);
          return;
        }
        append_result(
            make_error(DiagCode::kServiceRejected,
                       host_->config().replica
                           ? "replica has no snapshot to serve (snapshot "
                             "store empty or corrupt)"
                           : "no design loaded; use `load <netlist> <spec>`"),
            wire);
        return;
      }
      // Reuse the connection's token/timer pair across requests: reset the
      // token, then re-arm the timer with this request's deadline.
      token_.reset();
      AnalysisBudget budget;
      budget.wall_seconds = session->deadline_ms() / 1000.0;
      budget.cancel = &token_;
      timer_.rearm(budget);
      append_result(*session->execute_shared(q, &timer_), wire);
      return;
    }
  }
}

const std::string& ProtocolHandler::handle_frame(std::string_view payload) {
  frame_wire_.clear();
  const Proto2Request req = proto2_decode_request(payload);
  if (!req.ok) {
    proto2_error_frame(req.code, req.error, frame_wire_);
    ++frame_errors_;
    return frame_wire_;
  }
  if (req.op == Proto2Op::kText) {
    // A wrapped line-protocol request: quit, batch, load, snapshot and every
    // verb without a typed encoding flow through the text dispatcher and
    // the reply text comes back in a status-2 frame.
    text_scratch_.assign(req.text);
    wire_.clear();
    handle_line_into(text_scratch_, wire_);
    if (wire_.rfind("err ", 0) == 0) ++frame_errors_;
    proto2_text_frame(wire_, frame_wire_);
    return frame_wire_;
  }
  if (req.op == Proto2Op::kPing) {
    proto2_ping_frame(frame_wire_);
    return frame_wire_;
  }
  // Typed read request.
  const std::shared_ptr<Session> session = host_->session();
  if (session != nullptr) {
    if (req.op == Proto2Op::kCorner) session->metrics().record_corner_read();
    const auto t0 = std::chrono::steady_clock::now();
    const std::shared_ptr<const AnalysisSnapshot> snap = session->snapshot();
    // The binary counterpart of the QueryCache: replies are pure functions
    // of (request payload, snapshot), so a repeated payload against the
    // same snapshot generation replays the recorded frame.
    if (typed_cache_id_ != snap->id || typed_cache_src_ != snap.get()) {
      typed_cache_.clear();
      typed_cache_id_ = snap->id;
      typed_cache_src_ = snap.get();
    }
    if (const auto it = typed_cache_.find(payload);
        it != typed_cache_.end()) {
      frame_wire_ = it->second;
      session->metrics().record_cache(true);
      session->metrics().record_request(true, true, false,
                                        seconds_between(t0));
      return frame_wire_;
    }
    token_.reset();
    AnalysisBudget budget;
    budget.wall_seconds = session->deadline_ms() / 1000.0;
    budget.cancel = &token_;
    timer_.rearm(budget);
    const SnapshotCopySource src(*snap);
    const Proto2Eval e = proto2_evaluate(req, src, timer_, frame_wire_);
    session->metrics().record_cache(false);
    session->metrics().record_request(true, e.ok, e.timed_out,
                                      seconds_between(t0));
    if (!e.ok) ++frame_errors_;
    if (e.ok && !e.timed_out && typed_cache_.size() < kTypedCacheCap) {
      typed_cache_.emplace(std::string(payload), frame_wire_);
    }
    return frame_wire_;
  }
  const std::shared_ptr<const SnapshotSource> warm = host_->warm_source();
  if (warm != nullptr) {
    if (typed_cache_id_ != warm->id() || typed_cache_src_ != warm.get()) {
      typed_cache_.clear();
      typed_cache_id_ = warm->id();
      typed_cache_src_ = warm.get();
    }
    if (const auto it = typed_cache_.find(payload);
        it != typed_cache_.end()) {
      frame_wire_ = it->second;
      return frame_wire_;
    }
    token_.reset();
    AnalysisBudget budget;
    budget.cancel = &token_;
    timer_.rearm(budget);
    const Proto2Eval e = proto2_evaluate(req, *warm, timer_, frame_wire_);
    if (!e.ok) ++frame_errors_;
    if (e.ok && !e.timed_out && typed_cache_.size() < kTypedCacheCap) {
      typed_cache_.emplace(std::string(payload), frame_wire_);
    }
    return frame_wire_;
  }
  proto2_error_frame(DiagCode::kServiceRejected,
                     host_->config().replica
                         ? "replica has no snapshot to serve (snapshot store "
                           "empty or corrupt)"
                         : "no design loaded; use `load <netlist> <spec>`",
                     frame_wire_);
  ++frame_errors_;
  return frame_wire_;
}

QueryResult ProtocolHandler::run_batch() {
  const std::shared_ptr<Session> session = host_->session();
  if (session == nullptr) {
    return make_error(DiagCode::kServiceRejected,
                      "no design loaded; use `load <netlist> <spec>`");
  }
  const std::vector<QueryResult> results = session->execute_batch(batch_lines_);
  batch_lines_.clear();
  std::size_t emitted = 0;
  for (const QueryResult& r : results) {
    if (!r.lines.empty()) ++emitted;
  }
  QueryResult out = make_ok("ok batch " + std::to_string(emitted));
  for (const QueryResult& r : results) {
    for (const std::string& l : r.lines) out.lines.push_back(l);
  }
  return out;
}

std::vector<std::string> protocol_help_lines() {
  return {
      "  slack <node>             slack of one timing-graph node",
      "  worst_paths <K>          the K worst slow paths of the snapshot",
      "  histogram <bins>         capture-terminal slack histogram",
      "  constraints <instance>   per-pin timing window of an instance",
      "  summary                  snapshot-level analysis summary",
      "  set_delay <inst> <time>  add delay to an instance (pending edit)",
      "  upsize <inst>            swap to the next stronger variant",
      "  commit                   re-analyse edits, publish next snapshot",
      "  check_hold [<margin>]    hold pairs below margin, from the snapshot's"
      " hold capture",
      "  gen_constraints          Algorithm 2 constraint times from the"
      " snapshot's capture",
      "  corner list              corners of the snapshot's multi-corner"
      " capture",
      "  corner <name|k> <query>  scope slack/worst_paths/histogram/summary/"
      "check_hold to one corner",
      "  deadline <ms>            per-request deadline (0 = unlimited)",
      "  stats                    service counters and latency percentiles",
      "  ping                     liveness check",
      "  proto <version>          negotiate the wire protocol (2 = binary"
      " frames; docs/SERVICE.md)",
      "  load <netlist> <spec> [<lib>]  start a session from files"
      " (.blif netlists accepted; spec `-` derives clocks from clock ports)",
      "  snapshot save            persist the current snapshot to the store",
      "  snapshot load [<design>] adopt the newest valid stored snapshot",
      "  snapshot stat            snapshot-store counters and contents",
      "  batch <N>                execute the next N lines as one batch",
      "  help                     this text",
      "  quit                     end the connection",
  };
}

int serve_stream(ServiceHost& host, std::istream& in, std::ostream& out) {
  ProtocolHandler handler(host);
  int errors = 0;
  std::string line;
  while (!handler.binary() && std::getline(in, line)) {
    const std::string& reply = handler.handle_line(line);
    if (!reply.empty()) {
      if (reply.rfind("err ", 0) == 0) ++errors;
      out << reply;
      out.flush();
    }
    if (handler.quit()) return errors;
  }
  if (!handler.binary()) return errors;
  // Binary frame loop: u32 little-endian length, then that many payload
  // bytes, one reply frame per request frame.
  std::string payload;
  char hdr[4];
  while (in.read(hdr, 4)) {
    const std::uint32_t len =
        codec_read_le32(reinterpret_cast<const unsigned char*>(hdr));
    if (len > kProto2MaxFrame) {
      std::string err;
      proto2_error_frame(DiagCode::kServiceRejected,
                         "request frame of " + std::to_string(len) +
                             " bytes exceeds the " +
                             std::to_string(kProto2MaxFrame) + "-byte limit",
                         err);
      out.write(err.data(), static_cast<std::streamsize>(err.size()));
      out.flush();
      ++errors;
      break;
    }
    payload.resize(len);
    if (len > 0 && !in.read(payload.data(), len)) break;
    const std::string& reply = handler.handle_frame(payload);
    out.write(reply.data(), static_cast<std::streamsize>(reply.size()));
    out.flush();
    if (handler.quit()) break;
  }
  errors += static_cast<int>(handler.frame_errors());
  return errors;
}

}  // namespace hb
