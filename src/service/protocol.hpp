// Line-oriented protocol frontend of the query service.
//
// A ServiceHost owns the active Session (the `load` verb replaces it); a
// ProtocolHandler holds the per-connection state: the batch collector and
// the reusable CancelToken/BudgetTimer pair that is reset and re-armed for
// every request (util/cancel reuse semantics).  serve_stream() runs the
// blocking stdio loop; the TCP frontend (tcp_server) runs one handler per
// connection against the same host.
//
// Warm restart: when ServiceConfig::snapshot_dir is set the host opens a
// SnapshotStore, loads the newest valid persisted snapshot at construction
// and serves read queries (slack, worst_paths, check_hold, summary, ...)
// from that warm replica before any design is loaded — byte-identical to
// the session that persisted it, because both sides answer through
// evaluate_snapshot_read (service/snapshot_read.hpp).  Invalid files found
// on the way are quarantined and counted; the host degrades to a cold
// start when nothing valid remains.  Once a session is installed it saves
// every published snapshot back into the same store.
#pragma once

#include <iosfwd>
#include <memory>
#include <mutex>

#include "netlist/library.hpp"
#include "service/session.hpp"

namespace hb {

struct ServiceConfig {
  HummingbirdOptions analysis;
  SessionOptions session;
  /// Cell library used by `load`; the built-in standard library when null.
  std::shared_ptr<const Library> lib;
  /// Directory of the persistent snapshot store; empty disables
  /// persistence (no store, no warm restart, `snapshot` verbs rejected).
  std::string snapshot_dir;
  /// Snapshot generations retained per design (snapshot_store.hpp).
  std::size_t snapshot_retain = 4;
};

class ServiceHost {
 public:
  explicit ServiceHost(ServiceConfig config = {});
  ~ServiceHost();

  /// Install a ready-made session (embedded use and tests).
  void adopt(std::shared_ptr<Session> session);

  /// Load a netlist and timing-spec file and start a fresh session,
  /// replacing any current one.  Returns the reply to send.
  QueryResult load(const std::string& netlist_path,
                   const std::string& spec_path,
                   const std::string& lib_path = "");

  /// The active session; null until load()/adopt().  Connections fetch it
  /// per request, so a concurrent `load` swaps sessions between requests,
  /// never mid-request.
  std::shared_ptr<Session> session() const;

  /// The warm replica loaded from the snapshot store: set at construction
  /// (newest valid persisted snapshot) and by `snapshot load`.  Read
  /// queries are served from it while no session is active; null when the
  /// store is absent, empty, or fully corrupt (cold start).
  std::shared_ptr<const AnalysisSnapshot> warm_snapshot() const;

  /// Execute a `snapshot save|load|stat` query (null store → structured
  /// rejection, never a crash).
  QueryResult snapshot_command(const ParsedQuery& q);

  /// The persistent store; null when snapshot_dir was empty.
  SnapshotStore* store() const { return store_.get(); }

  const ServiceConfig& config() const { return config_; }

 private:
  ServiceConfig config_;
  std::unique_ptr<SnapshotStore> store_;
  mutable std::mutex mutex_;
  std::shared_ptr<Session> session_;
  std::shared_ptr<const AnalysisSnapshot> warm_;  // mutex_
  // Warm-load outcome held until the first session exists to carry the
  // recovery counters in its ServiceMetrics (mutex_).
  bool warm_loaded_ = false;
  std::uint64_t warm_rejected_ = 0;
};

/// Per-connection request loop state.
class ProtocolHandler {
 public:
  explicit ProtocolHandler(ServiceHost& host);

  /// Handle one request line and return the wire-format reply text
  /// (newline-terminated; empty for blank/comment lines and while a batch
  /// is collecting).  Sets quit() once a `quit` line is seen.
  std::string handle_line(const std::string& line);

  bool quit() const { return quit_; }

  /// True while `batch N` is still collecting its N lines.
  bool collecting() const { return batch_pending_ > 0; }

 private:
  QueryResult dispatch(const ParsedQuery& q);
  QueryResult run_batch();

  ServiceHost* host_;
  CancelToken token_;
  BudgetTimer timer_;
  bool quit_ = false;
  std::size_t batch_pending_ = 0;
  std::vector<std::string> batch_lines_;
};

/// The `help` payload (two-space-indented continuation lines).
std::vector<std::string> protocol_help_lines();

/// Blocking request loop: one line in, one reply out, until EOF or `quit`.
/// Returns the number of error replies emitted.
int serve_stream(ServiceHost& host, std::istream& in, std::ostream& out);

}  // namespace hb
