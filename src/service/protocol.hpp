// Protocol frontends of the query service: the line protocol (default) and
// the negotiated binary protocol v2 (service/proto2.hpp).
//
// A ServiceHost owns the active Session (the `load` verb replaces it); a
// ProtocolHandler holds the per-connection state: the batch collector, the
// protocol mode (text until `proto 2` is acknowledged), the grow-only
// reply arenas, and the reusable CancelToken/BudgetTimer pair that is
// reset and re-armed for every request (util/cancel reuse semantics).
// serve_stream() runs the blocking stdio loop; the TCP frontend
// (tcp_server) runs one handler per connection against the same host.
//
// Warm restart: when ServiceConfig::snapshot_dir is set the host opens a
// SnapshotStore, loads the newest valid persisted snapshot at construction
// and serves read queries (slack, worst_paths, check_hold, summary, ...)
// from that warm replica before any design is loaded — byte-identical to
// the session that persisted it, because both sides answer through
// evaluate_snapshot_read (service/snapshot_read.hpp).  The warm replica is
// a SnapshotSource: an mmap'd zero-copy SnapshotView when the image format
// allows it, a decoded copy otherwise (snapshot_store.hpp
// load_newest_source).  Invalid files found on the way are quarantined and
// counted; the host degrades to a cold start when nothing valid remains.
// Once a session is installed it saves every published snapshot back into
// the same store.
//
// Replica mode (ServiceConfig::replica): a read-only host over the
// snapshot store — `load` is disabled, every read answers from the warm
// source, and `snapshot load` re-maps to a newer generation in place.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include "netlist/library.hpp"
#include "service/proto2.hpp"
#include "service/session.hpp"
#include "service/snapshot_store.hpp"

namespace hb {

struct ServiceConfig {
  HummingbirdOptions analysis;
  SessionOptions session;
  /// Cell library used by `load`; the built-in standard library when null.
  std::shared_ptr<const Library> lib;
  /// Directory of the persistent snapshot store; empty disables
  /// persistence (no store, no warm restart, `snapshot` verbs rejected).
  std::string snapshot_dir;
  /// Snapshot generations retained per design (snapshot_store.hpp).
  std::size_t snapshot_retain = 4;
  /// Read-only replica over the snapshot store: `load` is disabled and the
  /// host only ever serves its warm source.  Requires snapshot_dir.
  bool replica = false;
};

class ServiceHost {
 public:
  explicit ServiceHost(ServiceConfig config = {});
  ~ServiceHost();

  /// Install a ready-made session (embedded use and tests).
  void adopt(std::shared_ptr<Session> session);

  /// Load a netlist and timing-spec file and start a fresh session,
  /// replacing any current one.  Returns the reply to send.
  QueryResult load(const std::string& netlist_path,
                   const std::string& spec_path,
                   const std::string& lib_path = "");

  /// The active session; null until load()/adopt().  Connections fetch it
  /// per request, so a concurrent `load` swaps sessions between requests,
  /// never mid-request.
  std::shared_ptr<Session> session() const;

  /// The warm replica loaded from the snapshot store: set at construction
  /// (newest valid persisted snapshot) and by `snapshot load`.  Read
  /// queries are served from it while no session is active; null when the
  /// store is absent, empty, or fully corrupt (cold start).
  std::shared_ptr<const SnapshotSource> warm_source() const;
  /// True when the warm source is an mmap'd SnapshotView (zero-copy),
  /// false when it is a decoded copy; false without a warm source.
  bool warm_mapped() const;

  /// Execute a `snapshot save|load|stat` query (null store → structured
  /// rejection, never a crash).
  QueryResult snapshot_command(const ParsedQuery& q);

  /// The persistent store; null when snapshot_dir was empty.
  SnapshotStore* store() const { return store_.get(); }

  const ServiceConfig& config() const { return config_; }

 private:
  ServiceConfig config_;
  std::unique_ptr<SnapshotStore> store_;
  mutable std::mutex mutex_;
  std::shared_ptr<Session> session_;
  // Warm source and its image facts (mutex_).
  std::shared_ptr<const SnapshotSource> warm_source_;
  bool warm_mapped_ = false;
  std::vector<SnapshotSectionInfo> warm_sections_;
  std::size_t warm_bytes_ = 0;
  // Warm-load outcome held until the first session exists to carry the
  // recovery counters in its ServiceMetrics (mutex_).
  bool warm_loaded_ = false;
  std::uint64_t warm_rejected_ = 0;
};

/// Per-connection request loop state.
class ProtocolHandler {
 public:
  explicit ProtocolHandler(ServiceHost& host);

  /// Handle one request line and return the wire-format reply text
  /// (newline-terminated; empty for blank/comment lines and while a batch
  /// is collecting).  The returned reference points into a
  /// connection-owned arena reused by the next handle_line call.  Sets
  /// quit() once a `quit` line is seen.
  const std::string& handle_line(const std::string& line);

  /// As handle_line, appending the reply text to `wire` (which is not
  /// cleared first).
  void handle_line_into(const std::string& line, std::string& wire);

  /// Handle one binary protocol-v2 request frame payload (without its
  /// 4-byte length prefix) and return the complete reply frame — length
  /// prefix included — in a connection-owned arena reused by the next
  /// call.  Safe on arbitrary payload bytes.
  const std::string& handle_frame(std::string_view payload);

  bool quit() const { return quit_; }

  /// True once `proto 2` was acknowledged: the connection's subsequent
  /// input is length-prefixed binary frames for handle_frame.
  bool binary() const { return binary_; }

  /// Error replies emitted by handle_frame since construction.
  std::uint64_t frame_errors() const { return frame_errors_; }

  /// True while `batch N` is still collecting its N lines.
  bool collecting() const { return batch_pending_ > 0; }

 private:
  // Per-connection cache of successful typed reply frames, keyed by the raw
  // request payload bytes — the binary counterpart of the session's
  // QueryCache.  Valid for exactly one snapshot generation: the map clears
  // whenever the served snapshot id changes.  Heterogeneous lookup keeps
  // cache hits allocation-free.
  struct FrameKeyHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  static constexpr std::size_t kTypedCacheCap = 4096;

  void dispatch_into(const ParsedQuery& q, std::string& wire);
  QueryResult run_batch();
  static void append_result(const QueryResult& r, std::string& wire);

  ServiceHost* host_;
  CancelToken token_;
  BudgetTimer timer_;
  bool quit_ = false;
  bool binary_ = false;
  std::size_t batch_pending_ = 0;
  std::vector<std::string> batch_lines_;
  ParsedQuery parsed_;      // reused across handle_line calls
  std::string wire_;        // text reply arena (handle_line)
  std::string frame_wire_;  // frame reply arena (handle_frame)
  std::string text_scratch_;  // kText unwrap buffer
  std::uint64_t frame_errors_ = 0;
  std::unordered_map<std::string, std::string, FrameKeyHash, std::equal_to<>>
      typed_cache_;
  // Generation the cache was filled for: snapshot id plus the identity of
  // the served object, so switching between a warm source and a session
  // with a colliding id can never replay a stale frame.
  std::uint64_t typed_cache_id_ = 0;
  const void* typed_cache_src_ = nullptr;
};

/// The `help` payload (two-space-indented continuation lines).
std::vector<std::string> protocol_help_lines();

/// Blocking request loop: one line in, one reply out, until EOF or `quit`.
/// After `proto 2` is negotiated the loop switches to binary frames.
/// Returns the number of error replies emitted.
int serve_stream(ServiceHost& host, std::istream& in, std::ostream& out);

}  // namespace hb
