#include "service/query.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "clocks/clock_io.hpp"  // parse_time
#include "util/error.hpp"

namespace hb {
namespace {

struct VerbSpec {
  const char* name;
  QueryVerb verb;
  int min_args;
  int max_args;
};

constexpr VerbSpec kVerbs[] = {
    {"slack", QueryVerb::kSlack, 1, 1},
    {"worst_paths", QueryVerb::kWorstPaths, 1, 1},
    {"histogram", QueryVerb::kHistogram, 1, 1},
    {"constraints", QueryVerb::kConstraints, 1, 1},
    {"summary", QueryVerb::kSummary, 0, 0},
    {"set_delay", QueryVerb::kSetDelay, 2, 2},
    {"upsize", QueryVerb::kUpsize, 1, 1},
    {"commit", QueryVerb::kCommit, 0, 0},
    {"check_hold", QueryVerb::kCheckHold, 0, 1},
    {"gen_constraints", QueryVerb::kGenConstraints, 0, 0},
    {"corner", QueryVerb::kCorner, 1, 4},
    {"deadline", QueryVerb::kDeadline, 1, 1},
    {"stats", QueryVerb::kStats, 0, 0},
    {"ping", QueryVerb::kPing, 0, 0},
    {"load", QueryVerb::kLoad, 2, 3},
    {"snapshot", QueryVerb::kSnapshot, 1, 2},
    {"batch", QueryVerb::kBatch, 1, 1},
    {"proto", QueryVerb::kProto, 1, 1},
    {"help", QueryVerb::kHelp, 0, 0},
    {"quit", QueryVerb::kQuit, 0, 0},
    {"exit", QueryVerb::kQuit, 0, 0},
};

}  // namespace

bool is_read_query(QueryVerb verb) {
  switch (verb) {
    case QueryVerb::kSlack:
    case QueryVerb::kWorstPaths:
    case QueryVerb::kHistogram:
    case QueryVerb::kConstraints:
    case QueryVerb::kSummary:
    case QueryVerb::kCheckHold:
    case QueryVerb::kGenConstraints:
    case QueryVerb::kCorner:
      return true;
    default:
      return false;
  }
}

bool is_write_query(QueryVerb verb) {
  return verb == QueryVerb::kSetDelay || verb == QueryVerb::kUpsize ||
         verb == QueryVerb::kCommit;
}

bool is_session_query(QueryVerb verb) {
  return is_read_query(verb) || is_write_query(verb) ||
         verb == QueryVerb::kDeadline || verb == QueryVerb::kStats ||
         verb == QueryVerb::kPing;
}

QueryResult make_ok(std::string header) {
  QueryResult r;
  r.lines.push_back(std::move(header));
  return r;
}

QueryResult make_error(DiagCode code, const std::string& message) {
  QueryResult r;
  r.ok = false;
  r.code = code;
  r.lines.push_back("err " + std::string(diag_code_name(code)) + " " + message);
  return r;
}

std::string to_wire(const QueryResult& r) {
  std::string out;
  for (const std::string& line : r.lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string fmt_ps(TimePs t) {
  if (t >= kInfinitePs) return "+inf";
  if (t <= -kInfinitePs) return "-inf";
  return std::to_string(t);
}

ParsedQuery parse_query(const std::string& line) {
  ParsedQuery q;
  parse_query_into(line, q);
  return q;
}

bool parse_query_into(const std::string& line, ParsedQuery& q) {
  q.verb = QueryVerb::kUnknown;
  q.canonical.clear();
  q.number = 0;
  q.fraction = 0;
  q.corner_sub = QueryVerb::kUnknown;
  q.ok = false;
  q.error.ok = true;
  q.error.code = DiagCode::kParseSyntax;
  q.error.lines.clear();

  const auto fail = [&q](DiagCode code, const std::string& message) {
    q.ok = false;
    q.error = make_error(code, message);
    return false;
  };

  // Tokenise with offsets into `line` — the same rules as split_tokens
  // (whitespace separators, '#' starts a comment) without per-token copies.
  struct TokView {
    const char* ptr;
    std::size_t len;
  };
  constexpr std::size_t kMaxToks = 16;
  TokView toks[kMaxToks];
  std::size_t ntoks = 0;       // tokens stored (capped at kMaxToks)
  std::size_t total_toks = 0;  // tokens seen — drives the arity check
  {
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
      }
      if (i >= line.size() || line[i] == '#') break;
      const std::size_t start = i;
      while (i < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
      }
      if (ntoks < kMaxToks) toks[ntoks++] = TokView{line.data() + start, i - start};
      ++total_toks;
    }
  }
  if (total_toks == 0) {
    // Blank / comment line: ok=false with an empty error — callers skip it.
    q.args.clear();
    return false;
  }

  static thread_local std::string verb;
  verb.assign(toks[0].ptr, toks[0].len);
  std::transform(verb.begin(), verb.end(), verb.begin(),
                 [](unsigned char c) { return std::tolower(c); });

  const VerbSpec* spec = nullptr;
  for (const VerbSpec& v : kVerbs) {
    if (verb == v.name) {
      spec = &v;
      break;
    }
  }
  if (spec == nullptr) {
    q.args.clear();
    return fail(DiagCode::kParseUnknownKeyword,
                "unknown query '" + verb + "' (try `help`)");
  }
  q.verb = spec->verb;
  // Reuse the argument strings in place; surplus entries are dropped.
  const std::size_t stored_args = ntoks - 1;
  if (q.args.size() > stored_args) q.args.resize(stored_args);
  for (std::size_t i = 1; i < ntoks; ++i) {
    if (i - 1 < q.args.size()) {
      q.args[i - 1].assign(toks[i].ptr, toks[i].len);
    } else {
      q.args.emplace_back(toks[i].ptr, toks[i].len);
    }
  }
  const int argc = static_cast<int>(total_toks - 1);
  if (argc < spec->min_args || argc > spec->max_args) {
    return fail(DiagCode::kParseSyntax,
                "'" + std::string(spec->name) + "' expects " +
                    std::to_string(spec->min_args) +
                    (spec->max_args != spec->min_args
                         ? ".." + std::to_string(spec->max_args)
                         : "") +
                    " argument(s), got " + std::to_string(argc));
  }

  // Per-verb numeric validation and canonicalisation.
  static thread_local std::string canon_args;
  canon_args.clear();
  switch (q.verb) {
    case QueryVerb::kWorstPaths:
    case QueryVerb::kHistogram:
    case QueryVerb::kBatch: {
      char* end = nullptr;
      const long long v = std::strtoll(q.args[0].c_str(), &end, 10);
      const long long lo = q.verb == QueryVerb::kWorstPaths ? 0 : 1;
      const long long hi = q.verb == QueryVerb::kHistogram ? 1000 : 100000;
      if (end == nullptr || *end != '\0' || q.args[0].empty() || v < lo ||
          v > hi) {
        return fail(DiagCode::kParseBadNumber,
                    "'" + q.args[0] + "' is not an integer in [" +
                        std::to_string(lo) + ", " + std::to_string(hi) + "]");
      }
      q.number = v;
      canon_args = std::to_string(v);
      break;
    }
    case QueryVerb::kSetDelay: {
      TimePs delta = 0;
      try {
        delta = parse_time(q.args[1]);
      } catch (const Error& e) {
        return fail(DiagCode::kParseBadNumber, e.what());
      }
      q.number = delta;
      canon_args = q.args[0] + " " + std::to_string(delta);
      break;
    }
    case QueryVerb::kCheckHold: {
      TimePs margin = 0;
      if (!q.args.empty()) {
        try {
          margin = parse_time(q.args[0]);
        } catch (const Error& e) {
          return fail(DiagCode::kParseBadNumber, e.what());
        }
      }
      q.number = margin;
      canon_args = std::to_string(margin);
      break;
    }
    case QueryVerb::kCorner: {
      // `corner list` or `corner <name|index> <read query>`.  The selector
      // stays case-sensitive (it may name a corner); the scoped query is
      // parsed recursively so its validation and canonicalisation — the
      // cache key — match the unscoped verb exactly.
      std::string sub = q.args[0];
      std::transform(sub.begin(), sub.end(), sub.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (sub == "list") {
        if (q.args.size() > 1) {
          return fail(DiagCode::kParseSyntax,
                      "'corner list' takes no further arguments");
        }
        q.args[0] = "list";
        canon_args = "list";
        break;
      }
      if (q.args.size() < 2) {
        return fail(DiagCode::kParseSyntax,
                    "'corner' expects `list` or `<name|index> <read query>`");
      }
      std::string scoped;
      for (std::size_t i = 1; i < q.args.size(); ++i) {
        if (i > 1) scoped += ' ';
        scoped += q.args[i];
      }
      ParsedQuery inner = parse_query(scoped);
      if (!inner.ok) {
        std::string msg = inner.error.lines.empty()
                              ? std::string("invalid scoped query")
                              : inner.error.lines[0];
        const std::string prefix =
            "err " + std::string(diag_code_name(inner.error.code)) + " ";
        if (msg.compare(0, prefix.size(), prefix) == 0) {
          msg = msg.substr(prefix.size());
        }
        return fail(inner.error.code, msg);
      }
      switch (inner.verb) {
        case QueryVerb::kSlack:
        case QueryVerb::kWorstPaths:
        case QueryVerb::kHistogram:
        case QueryVerb::kSummary:
        case QueryVerb::kCheckHold:
          break;
        default:
          return fail(DiagCode::kParseSyntax,
                      "'corner' scopes slack, worst_paths, histogram, "
                      "summary or check_hold");
      }
      q.corner_sub = inner.verb;
      q.number = inner.number;
      canon_args = q.args[0] + " " + inner.canonical;
      // Rewrite args to [selector, <sub args...>] so the evaluator reads the
      // scoped query's arguments at the same positions as the unscoped one.
      std::vector<std::string> rebuilt;
      rebuilt.push_back(q.args[0]);
      for (std::string& a : inner.args) rebuilt.push_back(std::move(a));
      q.args = std::move(rebuilt);
      break;
    }
    case QueryVerb::kSnapshot: {
      // Subcommand spelled case-insensitively; the optional second argument
      // (`snapshot load <design>`) stays case-sensitive — it names a design.
      std::string sub = q.args[0];
      std::transform(sub.begin(), sub.end(), sub.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (sub != "save" && sub != "load" && sub != "stat") {
        return fail(DiagCode::kParseUnknownKeyword,
                    "unknown snapshot subcommand '" + q.args[0] +
                        "' (save | load [<design>] | stat)");
      }
      if (sub != "load" && q.args.size() > 1) {
        return fail(DiagCode::kParseSyntax,
                    "'snapshot " + sub + "' takes no further arguments");
      }
      q.args[0] = sub;
      canon_args = sub;
      if (q.args.size() > 1) canon_args += " " + q.args[1];
      break;
    }
    case QueryVerb::kDeadline: {
      char* end = nullptr;
      const double ms = std::strtod(q.args[0].c_str(), &end);
      if (end == nullptr || *end != '\0' || q.args[0].empty() || ms < 0 ||
          !(ms <= 1e9)) {
        return fail(DiagCode::kParseBadNumber,
                    "'" + q.args[0] + "' is not a deadline in milliseconds");
      }
      q.fraction = ms;
      canon_args = q.args[0];
      break;
    }
    default: {
      for (std::size_t i = 0; i < q.args.size(); ++i) {
        if (i) canon_args += ' ';
        canon_args += q.args[i];
      }
      break;
    }
  }

  q.canonical.assign(spec->name);
  if (!canon_args.empty()) {
    q.canonical += ' ';
    q.canonical += canon_args;
  }
  q.ok = true;
  return true;
}

}  // namespace hb
