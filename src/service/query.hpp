// Query grammar of the timing service's line protocol (docs/SERVICE.md).
//
// One request per line; the reply is one header line ("ok ..." or
// "err <code> <message>") plus zero or more continuation lines, each
// indented with two spaces.  The header of a multi-line reply always
// carries the continuation count, so clients can frame replies without
// sentinels.
//
// Parsing canonicalises every query (verb spelling, numeric literals), and
// the canonical form is the cache key component: "worst_paths 010" and
// "worst_paths 10" hit the same cache entry.
#pragma once

#include <string>
#include <vector>

#include "util/diagnostics.hpp"
#include "util/time.hpp"

namespace hb {

enum class QueryVerb {
  // Read queries: evaluated against the current snapshot, cacheable.
  // check_hold and gen_constraints read the snapshot's hold-pair and
  // Algorithm 2 captures — they never touch the live analyser or take the
  // writer lock (service/snapshot_read.hpp).
  kSlack,
  kWorstPaths,
  kHistogram,
  kConstraints,
  kSummary,
  kCheckHold,
  kGenConstraints,
  /// `corner list` or `corner <name|index> <read query>` — serves from the
  /// snapshot's per-corner sections (docs/SCENARIOS.md).
  kCorner,
  // Write queries: funnel through the session's single writer.
  kSetDelay,
  kUpsize,
  kCommit,
  // Session control (neither cached nor written).
  kDeadline,
  kStats,
  kPing,
  // Host-level verbs, handled by the protocol layer, not the session.
  kLoad,
  kSnapshot,
  kBatch,
  /// `proto <version>` — negotiate the wire protocol (docs/SERVICE.md
  /// "Binary protocol v2").  After `proto 2` the connection switches to
  /// length-prefixed binary frames.
  kProto,
  kHelp,
  kQuit,
  kUnknown,
};

bool is_read_query(QueryVerb verb);
bool is_write_query(QueryVerb verb);
/// Read, write or control — everything a Session executes itself.
bool is_session_query(QueryVerb verb);

/// One reply: header line first, continuation lines (two-space indented)
/// after.  `code` is meaningful only when !ok.
struct QueryResult {
  bool ok = true;
  DiagCode code = DiagCode::kParseSyntax;
  std::vector<std::string> lines;

  bool timed_out() const { return !ok && code == DiagCode::kAnalysisBudget; }
};

QueryResult make_ok(std::string header);
QueryResult make_error(DiagCode code, const std::string& message);

/// Reply text on the wire: all lines joined, newline-terminated.
std::string to_wire(const QueryResult& r);

struct ParsedQuery {
  QueryVerb verb = QueryVerb::kUnknown;
  /// Raw argument tokens (names case-sensitive, numbers unparsed).
  std::vector<std::string> args;
  /// Canonical query text (cache key component); empty for invalid queries.
  std::string canonical;
  /// Pre-parsed numeric arguments, by grammar position (see parse_query).
  std::int64_t number = 0;
  double fraction = 0;
  /// For kCorner: the scoped read verb (`corner <sel> <sub>`); kUnknown for
  /// `corner list`.  args[0] is the selector, args[1..] the sub-query's.
  QueryVerb corner_sub = QueryVerb::kUnknown;
  /// Verb recognised and arity/format valid.
  bool ok = false;
  /// The reply to send when !ok.
  QueryResult error;
};

/// Parse and canonicalise one query line.  Empty and '#'-comment lines
/// yield verb kUnknown with ok=false and an empty canonical — callers skip
/// them silently (error.lines is empty for exactly this case).
ParsedQuery parse_query(const std::string& line);

/// As parse_query, but re-parses into an existing ParsedQuery, reusing its
/// string and vector capacity — the steady-state read path allocates
/// nothing for queries it has seen the shape of before.  Returns q.ok.
bool parse_query_into(const std::string& line, ParsedQuery& q);

/// "+inf" for the unconstrained sentinel, the plain picosecond integer
/// otherwise — the machine-readable time format of every reply.
std::string fmt_ps(TimePs t);

}  // namespace hb
