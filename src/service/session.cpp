#include "service/session.hpp"

#include <algorithm>
#include <chrono>

#include "synth/resize.hpp"

namespace hb {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string status_word(AnalysisStatus s) { return analysis_status_name(s); }

}  // namespace

Session::Session(Design design, ClockSet clocks, HummingbirdOptions analysis,
                 SessionOptions options)
    : design_(std::move(design)),
      clocks_(std::move(clocks)),
      analysis_options_(std::move(analysis)),
      options_(options),
      pool_(std::make_unique<ThreadPool>(options.pool_threads)),
      cache_(options.cache_capacity, options.cache_shards) {
  deadline_ms_.store(options_.default_deadline_ms, std::memory_order_relaxed);
  HummingbirdOptions opt = analysis_options_;
  opt.alg1.pool = pool_.get();
  hb_ = std::make_unique<Hummingbird>(design_, clocks_, std::move(opt));
  names_ = build_name_index(hb_->graph());
  const Algorithm1Result res = hb_->analyze();
  snapshot_ = take_snapshot(hb_->engine(), res, ++snapshot_counter_,
                            options_.max_paths, names_);
  metrics_.record_snapshot_published();
}

Session::~Session() = default;

std::shared_ptr<const AnalysisSnapshot> Session::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

void Session::publish(std::shared_ptr<const AnalysisSnapshot> snap) {
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = std::move(snap);
  }
  cache_.clear();
  metrics_.record_snapshot_published();
}

AnalysisBudget Session::request_budget() const {
  AnalysisBudget b;
  b.wall_seconds = deadline_ms_.load(std::memory_order_relaxed) / 1000.0;
  b.cancel = cancel_;
  return b;
}

std::vector<InstDelayAdjust> Session::delay_adjust_history() const {
  std::vector<InstDelayAdjust> out;
  out.reserve(delay_adjust_.size());
  for (const auto& [inst, delta] : delay_adjust_) {
    if (delta != 0) out.push_back(InstDelayAdjust{InstId(inst), delta});
  }
  std::sort(out.begin(), out.end(),
            [](const InstDelayAdjust& a, const InstDelayAdjust& b) {
              return a.inst.index() < b.inst.index();
            });
  return out;
}

QueryResult Session::execute(const std::string& line) {
  ParsedQuery q = parse_query(line);
  if (!q.ok && q.error.lines.empty()) return q.error;  // blank/comment input
  if (q.ok && !is_session_query(q.verb)) {
    return make_error(DiagCode::kParseSyntax,
                      "host-level command; not valid inside a session");
  }
  return execute(q);  // parse errors flow through so metrics count them
}

QueryResult Session::execute(const ParsedQuery& q, BudgetTimer* timer) {
  const auto t0 = std::chrono::steady_clock::now();
  const bool is_read = is_read_query(q.verb);
  QueryResult r;
  if (!q.ok) {
    r = q.error;
  } else if (is_read) {
    const std::shared_ptr<const AnalysisSnapshot> snap = snapshot();
    const std::string key = QueryCache::key(snap->id, q.canonical);
    if (cache_.lookup(key, &r)) {
      metrics_.record_cache(true);
    } else {
      metrics_.record_cache(false);
      BudgetTimer local(request_budget());
      r = evaluate_read(q, *snap, timer != nullptr ? *timer : local);
      if (r.ok) cache_.insert(key, r);
    }
  } else if (is_write_query(q.verb)) {
    r = execute_write(q, timer);
  } else {
    r = execute_control(q);
  }
  if (!q.error.lines.empty() || q.ok) {
    metrics_.record_request(is_read, r.ok, r.timed_out(), seconds_since(t0));
  }
  return r;
}

std::vector<QueryResult> Session::execute_batch(
    const std::vector<std::string>& lines) {
  metrics_.record_batch();
  std::vector<QueryResult> out(lines.size());
  std::vector<ParsedQuery> parsed;
  parsed.reserve(lines.size());
  for (const std::string& line : lines) parsed.push_back(parse_query(line));

  std::size_t i = 0;
  while (i < lines.size()) {
    // Maximal run of read queries starting at i.
    std::size_t j = i;
    while (j < lines.size() && parsed[j].ok && is_read_query(parsed[j].verb)) ++j;
    if (j > i) {
      if (j - i == 1 || pool_->size() == 1) {
        for (std::size_t k = i; k < j; ++k) out[k] = execute(parsed[k]);
      } else {
        std::lock_guard<std::mutex> pool_lock(pool_mutex_);
        std::vector<std::function<void()>> tasks;
        tasks.reserve(j - i);
        for (std::size_t k = i; k < j; ++k) {
          tasks.push_back([this, &out, &parsed, k] { out[k] = execute(parsed[k]); });
        }
        pool_->run_batch(tasks);
      }
      i = j;
      continue;
    }
    const ParsedQuery& q = parsed[i];
    if (!q.ok) {
      out[i] = q.error;
    } else if (is_session_query(q.verb)) {
      out[i] = execute(q);
    } else {
      out[i] = make_error(DiagCode::kParseSyntax,
                          "host-level command; not valid inside a batch");
    }
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Read queries — pure functions of one snapshot.

QueryResult Session::evaluate_read(const ParsedQuery& q,
                                   const AnalysisSnapshot& snap,
                                   BudgetTimer& timer) const {
  if (timer.exhausted()) {
    return make_error(DiagCode::kAnalysisBudget,
                      "read deadline exceeded; snapshot " +
                          std::to_string(snap.id) + " unaffected");
  }
  const NameIndex& names = *snap.names;
  switch (q.verb) {
    case QueryVerb::kSlack: {
      auto it = names.node_by_name.find(q.args[0]);
      if (it == names.node_by_name.end()) {
        return make_error(DiagCode::kParseUnknownName,
                          "unknown node '" + q.args[0] + "'");
      }
      const NodeTiming& nt = snap.nodes.at(it->second);
      return make_ok("ok slack " + q.args[0] + " " + fmt_ps(nt.slack));
    }
    case QueryVerb::kWorstPaths: {
      const std::size_t want = static_cast<std::size_t>(q.number);
      const std::size_t served = std::min(want, snap.paths.size());
      QueryResult r = make_ok("ok worst_paths " + std::to_string(served) +
                              " of " + std::to_string(snap.num_violations));
      for (std::size_t i = 0; i < served; ++i) {
        timer.count_cycle();
        if (timer.exhausted()) {
          return make_error(DiagCode::kAnalysisBudget,
                            "read deadline exceeded; snapshot " +
                                std::to_string(snap.id) + " unaffected");
        }
        const SnapshotPath& p = snap.paths[i];
        r.lines.push_back("  path " + std::to_string(i) + " slack " +
                          fmt_ps(p.slack) + " launch " + p.launch +
                          " capture " + p.capture + " from " + p.from +
                          " to " + p.to + " steps " + std::to_string(p.steps));
      }
      return r;
    }
    case QueryVerb::kHistogram: {
      const std::vector<TimePs>& slacks = snap.capture_slacks;
      if (slacks.empty()) {
        return make_ok("ok histogram 0 count 0 min 0 max 0");
      }
      const auto [mn_it, mx_it] = std::minmax_element(slacks.begin(), slacks.end());
      const TimePs mn = *mn_it, mx = *mx_it;
      const std::int64_t bins = q.number;
      const TimePs width = (mx - mn) / bins + 1;
      std::vector<std::uint64_t> count(static_cast<std::size_t>(bins), 0);
      for (const TimePs s : slacks) {
        ++count[static_cast<std::size_t>((s - mn) / width)];
      }
      QueryResult r = make_ok("ok histogram " + std::to_string(bins) +
                              " count " + std::to_string(slacks.size()) +
                              " min " + fmt_ps(mn) + " max " + fmt_ps(mx));
      for (std::int64_t i = 0; i < bins; ++i) {
        timer.count_cycle();
        if (timer.exhausted()) {
          return make_error(DiagCode::kAnalysisBudget,
                            "read deadline exceeded; snapshot " +
                                std::to_string(snap.id) + " unaffected");
        }
        r.lines.push_back("  bin " + std::to_string(i) + " lo " +
                          fmt_ps(mn + i * width) + " hi " +
                          fmt_ps(mn + (i + 1) * width) + " count " +
                          std::to_string(count[static_cast<std::size_t>(i)]));
      }
      return r;
    }
    case QueryVerb::kConstraints: {
      auto it = names.inst_pins.find(q.args[0]);
      if (it == names.inst_pins.end()) {
        return make_error(DiagCode::kParseUnknownName,
                          "unknown instance '" + q.args[0] + "'");
      }
      QueryResult r = make_ok("ok constraints " + q.args[0] + " pins " +
                              std::to_string(it->second.size()));
      for (const auto& [pin, node] : it->second) {
        timer.count_cycle();
        if (timer.exhausted()) {
          return make_error(DiagCode::kAnalysisBudget,
                            "read deadline exceeded; snapshot " +
                                std::to_string(snap.id) + " unaffected");
        }
        const NodeTiming& nt = snap.nodes.at(node);
        r.lines.push_back("  pin " + pin + " slack " + fmt_ps(nt.slack) +
                          " ready " + fmt_ps(nt.ready.rise) + " " +
                          fmt_ps(nt.ready.fall) + " required " +
                          fmt_ps(nt.required.rise) + " " +
                          fmt_ps(nt.required.fall));
      }
      return r;
    }
    case QueryVerb::kSummary: {
      QueryResult r = make_ok("ok summary snapshot " + std::to_string(snap.id) +
                              " fields 6");
      r.lines.push_back("  status " + status_word(snap.status));
      r.lines.push_back(std::string("  works_as_intended ") +
                        (snap.works_as_intended ? "true" : "false"));
      r.lines.push_back("  worst_slack " + fmt_ps(snap.worst_slack));
      r.lines.push_back("  terminals " + std::to_string(snap.num_terminals));
      r.lines.push_back("  violations " + std::to_string(snap.num_violations));
      r.lines.push_back("  paths " + std::to_string(snap.paths.size()));
      return r;
    }
    default:
      return make_error(DiagCode::kParseSyntax, "not a read query");
  }
}

// ---------------------------------------------------------------------------
// Write queries — single writer.

QueryResult Session::execute_write(const ParsedQuery& q, BudgetTimer* timer) {
  switch (q.verb) {
    case QueryVerb::kSetDelay: return do_set_delay(q);
    case QueryVerb::kUpsize: return do_upsize(q);
    case QueryVerb::kCommit: return do_commit(timer);
    default:
      return make_error(DiagCode::kParseSyntax, "not a write query");
  }
}

QueryResult Session::do_set_delay(const ParsedQuery& q) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  const InstId inst = design_.top().find_inst(q.args[0]);
  if (!inst.valid()) {
    return make_error(DiagCode::kParseUnknownName,
                      "unknown instance '" + q.args[0] + "'");
  }
  const TimePs delta = q.number;
  hb_->calculator_mut().adjust_instance(inst, delta);
  delay_adjust_[inst.value()] += delta;
  bool absorbed = false;
  if (!rebuild_required_) {
    absorbed = hb_->update_instance_delays(inst);
    if (!absorbed) rebuild_required_ = true;
  }
  const std::size_t pending =
      pending_edits_.fetch_add(1, std::memory_order_relaxed) + 1;
  return make_ok("ok set_delay " + q.args[0] + " " + std::to_string(delta) +
                 (absorbed ? " absorbed" : " deferred") + " pending " +
                 std::to_string(pending));
}

QueryResult Session::do_upsize(const ParsedQuery& q) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  const InstId inst = design_.top().find_inst(q.args[0]);
  if (!inst.valid()) {
    return make_error(DiagCode::kParseUnknownName,
                      "unknown instance '" + q.args[0] + "'");
  }
  bool absorbed = false;
  if (rebuild_required_) {
    // The live analyser is already stale; mutate the design only.
    if (!upsize_instance(design_, inst)) {
      return make_error(DiagCode::kServiceRejected,
                        "'" + q.args[0] + "' has no stronger variant");
    }
  } else {
    switch (upsize_and_update(design_, inst, *hb_)) {
      case ResizeUpdate::kNotResized:
        return make_error(DiagCode::kServiceRejected,
                          "'" + q.args[0] + "' has no stronger variant");
      case ResizeUpdate::kAbsorbed:
        absorbed = true;
        break;
      case ResizeUpdate::kRebuildRequired:
        rebuild_required_ = true;
        break;
    }
  }
  const std::size_t pending =
      pending_edits_.fetch_add(1, std::memory_order_relaxed) + 1;
  return make_ok("ok upsize " + q.args[0] + " to " +
                 design_.target_name(design_.top().inst(inst)) +
                 (absorbed ? " absorbed" : " deferred") + " pending " +
                 std::to_string(pending));
}

QueryResult Session::do_commit(BudgetTimer*) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  if (pending_edits_.load(std::memory_order_relaxed) == 0) {
    return make_ok("ok commit snapshot " + std::to_string(snapshot_counter_) +
                   " noop");
  }
  Algorithm1Result res;
  {
    std::lock_guard<std::mutex> pool_lock(pool_mutex_);
    if (rebuild_required_) {
      // A deferred edit invalidated pre-processing: rebuild from the current
      // design plus the accumulated delay history and analyse from scratch.
      HummingbirdOptions opt = analysis_options_;
      opt.alg1.pool = pool_.get();
      opt.alg1.budget = request_budget();
      opt.delay_adjust = delay_adjust_history();
      auto fresh = std::make_unique<Hummingbird>(design_, clocks_, std::move(opt));
      res = fresh->analyze();
      if (res.status == AnalysisStatus::kTimedOut) {
        return make_error(DiagCode::kAnalysisBudget,
                          "commit timed out; edits retained, snapshot " +
                              std::to_string(snapshot_counter_) + " unchanged");
      }
      hb_ = std::move(fresh);
      names_ = build_name_index(hb_->graph());
      rebuild_required_ = false;
    } else {
      // Absorbed edits: re-run Algorithm 1 over the recorded dirty sets.
      // Mirrors Hummingbird::reanalyze() with a per-request budget injected;
      // bit-identical to a fresh full analysis (tests/service_test.cpp).
      SyncModel& sync = hb_->sync_model_mut();
      SlackEngine& engine = hb_->engine_mut();
      sync.reset_offsets();
      engine.invalidate_offsets(sync.drain_changed_offsets());
      Algorithm1Options a1 = analysis_options_.alg1;
      a1.pool = pool_.get();
      a1.budget = request_budget();
      res = run_algorithm1(sync, engine, a1);
      if (res.status == AnalysisStatus::kTimedOut) {
        // Offsets are consistent but unsettled; the next commit re-runs from
        // reset offsets, so nothing is poisoned and the edits stay pending.
        return make_error(DiagCode::kAnalysisBudget,
                          "commit timed out; edits retained, snapshot " +
                              std::to_string(snapshot_counter_) + " unchanged");
      }
    }
  }
  const std::uint64_t id = ++snapshot_counter_;
  auto snap = take_snapshot(hb_->engine(), res, id, options_.max_paths, names_);
  const TimePs worst = snap->worst_slack;
  const std::size_t violations = snap->num_violations;
  const AnalysisStatus status = snap->status;
  publish(std::move(snap));
  pending_edits_.store(0, std::memory_order_relaxed);
  return make_ok("ok commit snapshot " + std::to_string(id) + " worst_slack " +
                 fmt_ps(worst) + " violations " + std::to_string(violations) +
                 " status " + status_word(status));
}

// ---------------------------------------------------------------------------
// Control queries.

// Supplementary hold-time check (hold_check.hpp).  Runs against the live
// analyser rather than a snapshot: the per-pair minimum-delay sweeps need the
// engine's cluster structures, which snapshots deliberately do not capture.
// It therefore takes the writer lock (the analyser must not be mutated
// mid-sweep) and then the pool lock — the same order do_commit uses.
QueryResult Session::do_check_hold(const ParsedQuery& q) {
  const TimePs margin = q.number;
  std::lock_guard<std::mutex> writer(writer_mutex_);
  std::vector<HoldViolation> holds;
  {
    std::lock_guard<std::mutex> pool_lock(pool_mutex_);
    holds = hb_->check_hold_times(margin, pool_.get());
  }
  const SyncModel& sync = hb_->sync_model();
  QueryResult r = make_ok("ok check_hold " + fmt_ps(margin) + " violations " +
                          std::to_string(holds.size()));
  for (const HoldViolation& v : holds) {
    r.lines.push_back("  hold " + sync.at(v.launch).label + " -> " +
                      sync.at(v.capture).label + " margin " +
                      fmt_ps(v.margin));
  }
  return r;
}

QueryResult Session::execute_control(const ParsedQuery& q) {
  switch (q.verb) {
    case QueryVerb::kPing:
      return make_ok("ok pong");
    case QueryVerb::kCheckHold:
      return do_check_hold(q);
    case QueryVerb::kDeadline: {
      deadline_ms_.store(q.fraction, std::memory_order_relaxed);
      return make_ok("ok deadline_ms " + q.args[0]);
    }
    case QueryVerb::kStats: {
      std::vector<std::string> lines = metrics_.to_lines();
      lines.push_back("  stat snapshot_id " +
                      std::to_string(snapshot()->id));
      lines.push_back("  stat pending_edits " +
                      std::to_string(pending_edits()));
      lines.push_back("  stat cache_size " + std::to_string(cache_.size()));
      QueryResult r = make_ok("ok stats " + std::to_string(lines.size()));
      for (std::string& l : lines) r.lines.push_back(std::move(l));
      return r;
    }
    default:
      return make_error(DiagCode::kParseSyntax, "not a control query");
  }
}

}  // namespace hb
