#include "service/session.hpp"

#include <algorithm>
#include <chrono>

#include "scenario/corner_analysis.hpp"
#include "service/snapshot_read.hpp"
#include "service/snapshot_store.hpp"
#include "synth/resize.hpp"

namespace hb {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string status_word(AnalysisStatus s) { return analysis_status_name(s); }

}  // namespace

Session::Session(Design design, ClockSet clocks, HummingbirdOptions analysis,
                 SessionOptions options)
    : design_(std::move(design)),
      clocks_(std::move(clocks)),
      analysis_options_(std::move(analysis)),
      options_(options),
      pool_(std::make_unique<ThreadPool>(options.pool_threads)),
      cache_(options.cache_capacity, options.cache_shards) {
  deadline_ms_.store(options_.default_deadline_ms, std::memory_order_relaxed);
  HummingbirdOptions opt = analysis_options_;
  opt.alg1.pool = pool_.get();
  hb_ = std::make_unique<Hummingbird>(design_, clocks_, std::move(opt));
  names_ = build_name_index(hb_->graph());
  const Algorithm1Result res = hb_->analyze();
  auto snap = take_snapshot(hb_->engine(), res, ++snapshot_counter_,
                            options_.max_paths, names_);
  attach_captures(*snap);
  snapshot_ = std::move(snap);
  metrics_.record_snapshot_published();
}

Session::~Session() = default;

std::shared_ptr<const AnalysisSnapshot> Session::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

void Session::set_snapshot_store(SnapshotStore* store) {
  store_ = store;
  if (store_ == nullptr) return;
  // The initial snapshot was published during construction, before a store
  // could be installed: persist it now so a restart warm-serves even a
  // session that never committed.
  const std::shared_ptr<const AnalysisSnapshot> snap = snapshot();
  if (store_->save(*snap).ok) metrics_.record_snapshot_saved();
}

void Session::publish(std::shared_ptr<const AnalysisSnapshot> snap) {
  // Persist before the pointer swap: a crash between the two leaves the
  // store one generation ahead of what readers saw, never behind.  Runs
  // under writer_mutex_ (publication is writer-only), so the disk write
  // serialises with other commits, not with readers.
  if (store_ != nullptr && store_->save(*snap).ok) {
    metrics_.record_snapshot_saved();
  }
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = std::move(snap);
  }
  cache_.clear();
  metrics_.record_snapshot_published();
}

AnalysisBudget Session::request_budget() const {
  AnalysisBudget b;
  b.wall_seconds = deadline_ms_.load(std::memory_order_relaxed) / 1000.0;
  b.cancel = cancel_;
  return b;
}

std::vector<InstDelayAdjust> Session::delay_adjust_history() const {
  std::vector<InstDelayAdjust> out;
  out.reserve(delay_adjust_.size());
  for (const auto& [inst, delta] : delay_adjust_) {
    if (delta != 0) out.push_back(InstDelayAdjust{InstId(inst), delta});
  }
  std::sort(out.begin(), out.end(),
            [](const InstDelayAdjust& a, const InstDelayAdjust& b) {
              return a.inst.index() < b.inst.index();
            });
  return out;
}

QueryResult Session::execute(const std::string& line) {
  ParsedQuery q = parse_query(line);
  if (!q.ok && q.error.lines.empty()) return q.error;  // blank/comment input
  if (q.ok && !is_session_query(q.verb)) {
    return make_error(DiagCode::kParseSyntax,
                      "host-level command; not valid inside a session");
  }
  return execute(q);  // parse errors flow through so metrics count them
}

QueryResult Session::execute(const ParsedQuery& q, BudgetTimer* timer) {
  return *execute_shared(q, timer);
}

std::shared_ptr<const QueryResult> Session::execute_shared(const ParsedQuery& q,
                                                           BudgetTimer* timer) {
  const auto t0 = std::chrono::steady_clock::now();
  const bool is_read = is_read_query(q.verb);
  std::shared_ptr<const QueryResult> r;
  if (!q.ok) {
    r = std::make_shared<const QueryResult>(q.error);
  } else if (is_read) {
    if (q.verb == QueryVerb::kCorner) metrics_.record_corner_read();
    const std::shared_ptr<const AnalysisSnapshot> snap = snapshot();
    QueryCache::KeyBuf kb;
    const std::string_view key =
        QueryCache::make_key(snap->id, q.canonical, kb);
    r = cache_.lookup(key);
    if (r != nullptr) {
      metrics_.record_cache(true);
    } else {
      metrics_.record_cache(false);
      BudgetTimer local(request_budget());
      r = std::make_shared<const QueryResult>(
          evaluate_snapshot_read(q, *snap, timer != nullptr ? *timer : local));
      if (r->ok) cache_.insert(key, r);
    }
  } else if (is_write_query(q.verb)) {
    r = std::make_shared<const QueryResult>(execute_write(q, timer));
  } else {
    r = std::make_shared<const QueryResult>(execute_control(q));
  }
  if (!q.error.lines.empty() || q.ok) {
    metrics_.record_request(is_read, r->ok, r->timed_out(), seconds_since(t0));
  }
  return r;
}

std::vector<QueryResult> Session::execute_batch(
    const std::vector<std::string>& lines) {
  metrics_.record_batch();
  std::vector<QueryResult> out(lines.size());
  std::vector<ParsedQuery> parsed;
  parsed.reserve(lines.size());
  for (const std::string& line : lines) parsed.push_back(parse_query(line));

  std::size_t i = 0;
  while (i < lines.size()) {
    // Maximal run of read queries starting at i.
    std::size_t j = i;
    while (j < lines.size() && parsed[j].ok && is_read_query(parsed[j].verb)) ++j;
    if (j > i) {
      if (j - i == 1 || pool_->size() == 1) {
        for (std::size_t k = i; k < j; ++k) out[k] = execute(parsed[k]);
      } else {
        std::lock_guard<std::mutex> pool_lock(pool_mutex_);
        std::vector<std::function<void()>> tasks;
        tasks.reserve(j - i);
        for (std::size_t k = i; k < j; ++k) {
          tasks.push_back([this, &out, &parsed, k] { out[k] = execute(parsed[k]); });
        }
        pool_->run_batch(tasks);
      }
      i = j;
      continue;
    }
    const ParsedQuery& q = parsed[i];
    if (!q.ok) {
      out[i] = q.error;
    } else if (is_session_query(q.verb)) {
      out[i] = execute(q);
    } else {
      out[i] = make_error(DiagCode::kParseSyntax,
                          "host-level command; not valid inside a batch");
    }
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Write queries — single writer.

QueryResult Session::execute_write(const ParsedQuery& q, BudgetTimer* timer) {
  switch (q.verb) {
    case QueryVerb::kSetDelay: return do_set_delay(q);
    case QueryVerb::kUpsize: return do_upsize(q);
    case QueryVerb::kCommit: return do_commit(timer);
    default:
      return make_error(DiagCode::kParseSyntax, "not a write query");
  }
}

QueryResult Session::do_set_delay(const ParsedQuery& q) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  const InstId inst = design_.top().find_inst(q.args[0]);
  if (!inst.valid()) {
    return make_error(DiagCode::kParseUnknownName,
                      "unknown instance '" + q.args[0] + "'");
  }
  const TimePs delta = q.number;
  hb_->calculator_mut().adjust_instance(inst, delta);
  delay_adjust_[inst.value()] += delta;
  bool absorbed = false;
  if (!rebuild_required_) {
    absorbed = hb_->update_instance_delays(inst);
    if (!absorbed) rebuild_required_ = true;
  }
  const std::size_t pending =
      pending_edits_.fetch_add(1, std::memory_order_relaxed) + 1;
  return make_ok("ok set_delay " + q.args[0] + " " + std::to_string(delta) +
                 (absorbed ? " absorbed" : " deferred") + " pending " +
                 std::to_string(pending));
}

QueryResult Session::do_upsize(const ParsedQuery& q) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  const InstId inst = design_.top().find_inst(q.args[0]);
  if (!inst.valid()) {
    return make_error(DiagCode::kParseUnknownName,
                      "unknown instance '" + q.args[0] + "'");
  }
  bool absorbed = false;
  if (rebuild_required_) {
    // The live analyser is already stale; mutate the design only.
    if (!upsize_instance(design_, inst)) {
      return make_error(DiagCode::kServiceRejected,
                        "'" + q.args[0] + "' has no stronger variant");
    }
  } else {
    switch (upsize_and_update(design_, inst, *hb_)) {
      case ResizeUpdate::kNotResized:
        return make_error(DiagCode::kServiceRejected,
                          "'" + q.args[0] + "' has no stronger variant");
      case ResizeUpdate::kAbsorbed:
        absorbed = true;
        break;
      case ResizeUpdate::kRebuildRequired:
        rebuild_required_ = true;
        break;
    }
  }
  const std::size_t pending =
      pending_edits_.fetch_add(1, std::memory_order_relaxed) + 1;
  return make_ok("ok upsize " + q.args[0] + " to " +
                 design_.target_name(design_.top().inst(inst)) +
                 (absorbed ? " absorbed" : " deferred") + " pending " +
                 std::to_string(pending));
}

QueryResult Session::do_commit(BudgetTimer*) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  if (pending_edits_.load(std::memory_order_relaxed) == 0) {
    return make_ok("ok commit snapshot " + std::to_string(snapshot_counter_) +
                   " noop");
  }
  Algorithm1Result res;
  {
    std::lock_guard<std::mutex> pool_lock(pool_mutex_);
    if (rebuild_required_) {
      // A deferred edit invalidated pre-processing: rebuild from the current
      // design plus the accumulated delay history and analyse from scratch.
      HummingbirdOptions opt = analysis_options_;
      opt.alg1.pool = pool_.get();
      opt.alg1.budget = request_budget();
      opt.delay_adjust = delay_adjust_history();
      auto fresh = std::make_unique<Hummingbird>(design_, clocks_, std::move(opt));
      res = fresh->analyze();
      if (res.status == AnalysisStatus::kTimedOut) {
        return make_error(DiagCode::kAnalysisBudget,
                          "commit timed out; edits retained, snapshot " +
                              std::to_string(snapshot_counter_) + " unchanged");
      }
      hb_ = std::move(fresh);
      names_ = build_name_index(hb_->graph());
      rebuild_required_ = false;
    } else {
      // Absorbed edits: re-run Algorithm 1 over the recorded dirty sets.
      // Mirrors Hummingbird::reanalyze() with a per-request budget injected;
      // bit-identical to a fresh full analysis (tests/service_test.cpp).
      SyncModel& sync = hb_->sync_model_mut();
      SlackEngine& engine = hb_->engine_mut();
      sync.reset_offsets();
      engine.invalidate_offsets(sync.drain_changed_offsets());
      Algorithm1Options a1 = analysis_options_.alg1;
      a1.pool = pool_.get();
      a1.budget = request_budget();
      res = run_algorithm1(sync, engine, a1);
      if (res.status == AnalysisStatus::kTimedOut) {
        // Offsets are consistent but unsettled; the next commit re-runs from
        // reset offsets, so nothing is poisoned and the edits stay pending.
        return make_error(DiagCode::kAnalysisBudget,
                          "commit timed out; edits retained, snapshot " +
                              std::to_string(snapshot_counter_) + " unchanged");
      }
    }
  }
  const std::uint64_t id = ++snapshot_counter_;
  auto snap = take_snapshot(hb_->engine(), res, id, options_.max_paths, names_);
  attach_captures(*snap);
  const TimePs worst = snap->worst_slack;
  const std::size_t violations = snap->num_violations;
  const AnalysisStatus status = snap->status;
  publish(std::move(snap));
  pending_edits_.store(0, std::memory_order_relaxed);
  return make_ok("ok commit snapshot " + std::to_string(id) + " worst_slack " +
                 fmt_ps(worst) + " violations " + std::to_string(violations) +
                 " status " + status_word(status));
}

// Hold/constraint captures of a snapshot about to be published.  Runs with
// writer_mutex_ held (construction or commit); takes pool_mutex_ for the
// pooled sweeps — the same order do_commit uses.  Algorithm 2 mutates the
// offsets, so it runs against the live analyser and is undone with the
// absorbed-commit restore sequence (reset offsets, invalidate, re-run
// Algorithm 1 — bit-identical by the reanalyze contract); deliberately no
// per-request budget, so a deadline can never publish a half-restored
// analyser.  The snapshot itself was copied out beforehand and is
// unaffected by the round-trip.
void Session::attach_captures(AnalysisSnapshot& snap) {
  if (!options_.capture_hold && !options_.capture_constraints &&
      options_.corners.empty()) {
    return;
  }
  std::lock_guard<std::mutex> pool_lock(pool_mutex_);
  if (options_.capture_constraints) {
    SyncModel& sync = hb_->sync_model_mut();
    SlackEngine& engine = hb_->engine_mut();
    ConstraintSet cs = run_algorithm2(sync, engine, analysis_options_.alg2);
    if (hb_->num_quarantined() > 0 && cs.status == AnalysisStatus::kComplete) {
      cs.status = AnalysisStatus::kPartial;
    }
    sync.reset_offsets();
    engine.invalidate_offsets(sync.drain_changed_offsets());
    Algorithm1Options a1 = analysis_options_.alg1;
    a1.pool = pool_.get();
    run_algorithm1(sync, engine, a1);
    snap.has_constraints = true;
    snap.constraints_status = cs.status;
    snap.backward_snatch_cycles = cs.backward_snatch_cycles;
    snap.forward_snatch_cycles = cs.forward_snatch_cycles;
    snap.constraint_nodes = std::move(cs.nodes);
  }
  if (options_.capture_hold) {
    capture_hold_into(snap, hb_->engine(), pool_.get());
  }
  if (!options_.corners.empty()) {
    // One K-lane sweep over the settled schedule (after the constraint
    // round-trip restored it); the snapshot's corner sections serve every
    // `corner` query without touching the analyser again.
    CornerAnalysis ca(hb_->engine(), options_.corners);
    ca.compute(pool_.get());
    capture_corners_into(snap, ca, options_.max_paths, options_.capture_hold,
                         pool_.get());
  }
}

// ---------------------------------------------------------------------------
// Control queries.

QueryResult Session::execute_control(const ParsedQuery& q) {
  switch (q.verb) {
    case QueryVerb::kPing:
      return make_ok("ok pong");
    case QueryVerb::kDeadline: {
      deadline_ms_.store(q.fraction, std::memory_order_relaxed);
      return make_ok("ok deadline_ms " + q.args[0]);
    }
    case QueryVerb::kStats: {
      std::vector<std::string> lines = metrics_.to_lines();
      lines.push_back("  stat snapshot_id " +
                      std::to_string(snapshot()->id));
      lines.push_back("  stat pending_edits " +
                      std::to_string(pending_edits()));
      lines.push_back("  stat cache_size " + std::to_string(cache_.size()));
      QueryResult r = make_ok("ok stats " + std::to_string(lines.size()));
      for (std::string& l : lines) r.lines.push_back(std::move(l));
      return r;
    }
    default:
      return make_error(DiagCode::kParseSyntax, "not a control query");
  }
}

}  // namespace hb
