// A timing query session: one loaded design, one live analyser, one
// published snapshot, many concurrent readers.
//
// Concurrency model (docs/SERVICE.md):
//   * Read queries (slack, worst_paths, histogram, constraints, summary,
//     check_hold, gen_constraints) evaluate against the currently published
//     AnalysisSnapshot — an immutable value fetched under a tiny pointer
//     mutex — and may run from any number of threads at once.  They never
//     touch the analyser, the design or the thread pool, so they never
//     block the writer.  check_hold and gen_constraints read the hold-pair
//     and Algorithm 2 captures attached to every snapshot at publication
//     (service/snapshot_read.hpp).
//   * Write queries (set_delay, upsize, commit) funnel through writer_mutex_.
//     Edits accumulate against the live analyser (absorbed incrementally via
//     Hummingbird::update_instance_delays / upsize_and_update when possible,
//     deferred to a rebuild otherwise); `commit` re-runs Algorithm 1 — using
//     the SlackEngine dirty-set machinery, bit-identical to a fresh full
//     analysis — and publishes the successor snapshot.  Readers observe the
//     old analysis until the instant of publication, never a half-updated
//     one.
//   * The session owns its ThreadPool; pool_mutex_ serialises the two pool
//     users, batch read fan-out and commit's pass evaluation.  Lock order:
//     batch fan-out holds only pool_mutex_; commit takes writer_mutex_ then
//     pool_mutex_ — no cycle.  The pool is one thread budget shared by both
//     uses: commit's SlackEngine spends it first on pass-level fan-out and
//     then on level-parallel wavefront sweeps of large clusters (the two
//     never nest), so SessionOptions::pool_threads bounds the session's
//     total analysis concurrency regardless of the mix.
//
// A query-result cache keyed on (snapshot id, canonical query) fronts the
// read path and is cleared wholesale on publication; because the key embeds
// the snapshot id, a stale hit is impossible by construction.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "scenario/corner_set.hpp"
#include "service/cache.hpp"
#include "service/metrics.hpp"
#include "service/query.hpp"
#include "service/snapshot.hpp"
#include "util/thread_pool.hpp"

namespace hb {

class SnapshotStore;

struct SessionOptions {
  /// Worst paths captured per snapshot (upper bound for worst_paths K).
  std::size_t max_paths = 32;
  std::size_t cache_capacity = 1024;
  std::size_t cache_shards = 8;
  /// Workers in the session's pool, calling thread included; 0 = hardware.
  int pool_threads = 0;
  /// Default per-request deadline in milliseconds; 0 = unlimited.  Queries
  /// adjust it with the `deadline` verb.
  double default_deadline_ms = 0;
  /// Attach the full hold sweep (every connected pair's worst margin) to
  /// each published snapshot, making `check_hold` a lock-free snapshot
  /// read.  Disabled, check_hold answers a structured rejection.
  bool capture_hold = true;
  /// Attach Algorithm 2 constraint times to each published snapshot (the
  /// `gen_constraints` query); the analyser is restored bit-identically
  /// afterwards via the reanalyze contract.
  bool capture_constraints = true;
  /// Corners evaluated at each publication (docs/SCENARIOS.md).  Non-empty,
  /// every snapshot carries per-corner sections — one K-lane corner sweep
  /// over the settled schedule — and the `corner` verbs serve from them.
  /// Empty (the default), corner queries answer a structured rejection.
  CornerSet corners;
};

class Session {
 public:
  /// Takes ownership of the design and clocks (the analyser holds
  /// references into them), builds the analyser, runs the initial analysis
  /// and publishes snapshot 1.
  Session(Design design, ClockSet clocks, HummingbirdOptions analysis = {},
          SessionOptions options = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parse and execute one query line.  Thread-safe.  Blank/comment lines
  /// return an ok result with no lines (emit nothing).
  QueryResult execute(const std::string& line);

  /// Execute a parsed session query.  `timer` carries the caller's
  /// per-request deadline/cancellation (e.g. a connection's re-armed
  /// BudgetTimer); when null the session's own deadline applies.
  QueryResult execute(const ParsedQuery& q, BudgetTimer* timer = nullptr);

  /// As execute(), but returning a shared reference to the (possibly
  /// cached) immutable result instead of a copy — the protocol layer's
  /// zero-copy read path (a cache hit costs one refcount bump, no
  /// allocation).  Never null.
  std::shared_ptr<const QueryResult> execute_shared(const ParsedQuery& q,
                                                    BudgetTimer* timer = nullptr);

  /// Execute a batch: maximal runs of read queries fan out over the
  /// session's pool; writes and control queries run serially in order.
  /// Results are index-aligned with `lines` and identical to sequential
  /// execution (reads are snapshot-consistent; writes publish only at
  /// commit).
  std::vector<QueryResult> execute_batch(const std::vector<std::string>& lines);

  /// The currently published snapshot (never null).
  std::shared_ptr<const AnalysisSnapshot> snapshot() const;

  /// External cancellation hook folded into every internally built budget
  /// (a protocol connection installs its token once and resets it per
  /// request).  Not owned; may be null.
  void set_cancel_token(CancelToken* token) { cancel_ = token; }

  /// Persist every published snapshot (the initial one included, saved
  /// retroactively) into `store`.  Not owned; must outlive the session.
  /// Call before serving traffic — installation is not synchronised.
  void set_snapshot_store(SnapshotStore* store);

  double deadline_ms() const { return deadline_ms_.load(std::memory_order_relaxed); }

  ServiceMetrics& metrics() { return metrics_; }
  const ServiceMetrics& metrics() const { return metrics_; }
  const QueryCache& cache() const { return cache_; }

  // -- Differential-test hooks --------------------------------------------
  // A fresh Hummingbird over design()/clocks() with delay_adjust_history()
  // in its options must reproduce the session's published analysis bit for
  // bit (tests/service_test.cpp).  Take these only when no writes are in
  // flight.
  const Design& design() const { return design_; }
  const ClockSet& clocks() const { return clocks_; }
  /// Accumulated set_delay edits, sorted by instance index (the map itself
  /// is order-free: adjustments are additive).
  std::vector<InstDelayAdjust> delay_adjust_history() const;
  std::size_t pending_edits() const { return pending_edits_.load(std::memory_order_relaxed); }

 private:
  AnalysisBudget request_budget() const;
  QueryResult execute_write(const ParsedQuery& q, BudgetTimer* timer);
  QueryResult execute_control(const ParsedQuery& q);
  QueryResult do_set_delay(const ParsedQuery& q);
  QueryResult do_upsize(const ParsedQuery& q);
  QueryResult do_commit(BudgetTimer* timer);
  /// Attach the hold/constraint captures enabled in options_ to a snapshot
  /// not yet published.  Takes pool_mutex_; the analyser state is restored
  /// bit-identically before returning.
  void attach_captures(AnalysisSnapshot& snap);
  void publish(std::shared_ptr<const AnalysisSnapshot> snap);

  Design design_;
  ClockSet clocks_;
  HummingbirdOptions analysis_options_;
  SessionOptions options_;

  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Hummingbird> hb_;
  std::shared_ptr<const NameIndex> names_;

  mutable std::mutex snapshot_mutex_;  // guards snapshot_ pointer only
  std::shared_ptr<const AnalysisSnapshot> snapshot_;

  std::mutex writer_mutex_;  // serialises write queries
  std::mutex pool_mutex_;    // serialises pool users (batch vs commit)

  /// Accumulated additive delay edits by InstId value (writer_mutex_).
  std::unordered_map<std::uint32_t, TimePs> delay_adjust_;
  std::atomic<std::size_t> pending_edits_{0};
  bool rebuild_required_ = false;  // writer_mutex_
  std::uint64_t snapshot_counter_ = 0;  // writer_mutex_ (and ctor)

  QueryCache cache_;
  ServiceMetrics metrics_;
  std::atomic<double> deadline_ms_{0};
  CancelToken* cancel_ = nullptr;
  SnapshotStore* store_ = nullptr;  // not owned; saves on publication
};

}  // namespace hb
