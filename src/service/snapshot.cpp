#include "service/snapshot.hpp"

#include "scenario/corner_analysis.hpp"

namespace hb {

std::shared_ptr<const NameIndex> build_name_index(const TimingGraph& graph) {
  auto idx = std::make_shared<NameIndex>();
  const std::size_t n = graph.num_nodes();
  idx->node_names.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TNodeId id(static_cast<std::uint32_t>(i));
    idx->node_names.push_back(graph.node_name(id));
    idx->node_by_name.emplace(idx->node_names.back(),
                              static_cast<std::uint32_t>(i));
  }
  const Design& design = graph.design();
  const Module& top = design.top();
  for (std::size_t ii = 0; ii < top.num_insts(); ++ii) {
    const InstId inst(static_cast<std::uint32_t>(ii));
    const Instance& rec = top.inst(inst);
    auto& pins = idx->inst_pins[rec.name];
    const std::size_t ports = design.target_num_ports(rec);
    pins.reserve(ports);
    for (std::size_t p = 0; p < ports; ++p) {
      const TNodeId node = graph.pin_node(inst, static_cast<std::uint32_t>(p));
      if (!node.valid()) continue;
      pins.emplace_back(design.target_port_name(rec, static_cast<std::uint32_t>(p)),
                        static_cast<std::uint32_t>(node.index()));
    }
  }
  return idx;
}

std::shared_ptr<AnalysisSnapshot> take_snapshot(
    const SlackEngine& engine, const Algorithm1Result& result,
    std::uint64_t id, std::size_t max_paths,
    std::shared_ptr<const NameIndex> names) {
  auto snap = std::make_shared<AnalysisSnapshot>();
  snap->id = id;
  snap->design_name = engine.graph().design().name();
  snap->status = result.status;
  snap->works_as_intended = result.works_as_intended;
  snap->worst_slack = result.worst_slack;
  snap->names = std::move(names);

  const SyncModel& sync = engine.sync();
  snap->num_terminals = sync.num_instances();
  snap->capture_slacks.reserve(snap->num_terminals);
  for (std::size_t i = 0; i < snap->num_terminals; ++i) {
    const SyncId sid(static_cast<std::uint32_t>(i));
    if (!sync.at(sid).data_in.valid()) continue;
    const TimePs s = engine.capture_slack(sid);
    if (s >= kInfinitePs) continue;
    snap->capture_slacks.push_back(s);
    if (s < 0) ++snap->num_violations;
  }

  for (const SlowPath& p : enumerate_slow_paths(engine, max_paths)) {
    SnapshotPath sp;
    sp.slack = p.slack;
    sp.launch = sync.at(p.launch).label;
    sp.capture = sync.at(p.capture).label;
    if (!p.steps.empty()) {
      sp.from = engine.graph().node_name(p.steps.front().node);
      sp.to = engine.graph().node_name(p.steps.back().node);
    }
    sp.steps = p.steps.size();
    snap->paths.push_back(std::move(sp));
  }

  // Bulk copy straight from the engine's flat per-node timing array (one
  // allocation, no per-node accessor calls).
  snap->nodes = engine.node_timings();
  return snap;
}

void capture_hold_into(AnalysisSnapshot& snap, const SlackEngine& engine,
                       ThreadPool* pool) {
  // An infinite threshold keeps every connected pair: the sweep's final
  // sort+dedup already reduces each pair to its worst (minimum) margin, so
  // filtering this list by `margin < m` yields exactly check_hold(m).
  const std::vector<HoldViolation> all = check_hold(engine, kInfinitePs, pool);
  const SyncModel& sync = engine.sync();
  snap.hold_pairs.clear();
  snap.hold_pairs.reserve(all.size());
  for (const HoldViolation& v : all) {
    SnapshotHoldPair p;
    p.launch = v.launch.value();
    p.capture = v.capture.value();
    p.margin = v.margin;
    p.launch_label = sync.at(v.launch).label;
    p.capture_label = sync.at(v.capture).label;
    snap.hold_pairs.push_back(std::move(p));
  }
  snap.has_hold = true;
}

void capture_corners_into(AnalysisSnapshot& snap, const CornerAnalysis& ca,
                          std::size_t max_paths, bool capture_hold,
                          ThreadPool* pool) {
  const SlackEngine& engine = ca.engine();
  const SyncModel& sync = engine.sync();
  snap.corners.clear();
  snap.corners.reserve(ca.num_corners());
  for (std::size_t k = 0; k < ca.num_corners(); ++k) {
    SnapshotCorner sc;
    const Corner& corner = ca.corner_set().corner(k);
    sc.name = corner.name;
    sc.derate_pm = corner.derate_pm;
    sc.wire_pm = corner.wire_pm;
    sc.worst_slack = ca.worst_terminal_slack(k);

    const std::vector<NodeTiming>& nts = ca.node_timings(k);
    sc.node_slacks.reserve(nts.size());
    for (const NodeTiming& nt : nts) sc.node_slacks.push_back(nt.slack);

    sc.capture_slacks.reserve(sync.num_instances());
    for (std::size_t i = 0; i < sync.num_instances(); ++i) {
      const SyncId sid(static_cast<std::uint32_t>(i));
      if (!sync.at(sid).data_in.valid()) continue;
      const TimePs s = ca.capture_slack(k, sid);
      if (s >= kInfinitePs) continue;
      sc.capture_slacks.push_back(s);
      if (s < 0) ++sc.num_violations;
    }

    for (const SlowPath& p : ca.slow_paths(k, max_paths)) {
      SnapshotPath sp;
      sp.slack = p.slack;
      sp.launch = sync.at(p.launch).label;
      sp.capture = sync.at(p.capture).label;
      if (!p.steps.empty()) {
        sp.from = engine.graph().node_name(p.steps.front().node);
        sp.to = engine.graph().node_name(p.steps.back().node);
      }
      sp.steps = p.steps.size();
      sc.paths.push_back(std::move(sp));
    }

    if (capture_hold) {
      // Same infinite-threshold trick as capture_hold_into, under this
      // corner's derated delays.
      const std::vector<HoldViolation> all =
          ca.check_hold_times(k, kInfinitePs, pool);
      sc.hold_pairs.reserve(all.size());
      for (const HoldViolation& v : all) {
        SnapshotHoldPair p;
        p.launch = v.launch.value();
        p.capture = v.capture.value();
        p.margin = v.margin;
        p.launch_label = sync.at(v.launch).label;
        p.capture_label = sync.at(v.capture).label;
        sc.hold_pairs.push_back(std::move(p));
      }
      sc.has_hold = true;
    }

    snap.corners.push_back(std::move(sc));
  }
  snap.worst_corner = ca.merged_worst_slack().corner;
  snap.has_corners = true;
}

void capture_constraints_into(AnalysisSnapshot& snap, Hummingbird& hb) {
  ConstraintSet cs = hb.generate_constraints();  // mutates offsets
  hb.reanalyze();                                // bit-identical restore
  snap.has_constraints = true;
  snap.constraints_status = cs.status;
  snap.backward_snatch_cycles = cs.backward_snatch_cycles;
  snap.forward_snatch_cycles = cs.forward_snatch_cycles;
  snap.constraint_nodes = std::move(cs.nodes);
}

}  // namespace hb
