// Immutable analysis snapshots — the consistency unit of the query service.
//
// A snapshot is a self-contained copy of everything read queries need:
// per-node timing, terminal slack distribution, the worst slow paths
// (pre-rendered to labels and node names) and the summary counters.  It
// holds no pointers into the analyser, the timing graph or the design, so
// the writer may mutate — or completely rebuild — all of those while
// readers keep serving from the published snapshot.  Publication is a
// shared_ptr swap; a snapshot, once published, never changes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sta/hummingbird.hpp"

namespace hb {

/// Name lookup tables captured at graph-build time.  Shared by every
/// snapshot taken from the same graph build; replaced when the analyser is
/// rebuilt (names and node ids may then differ).
struct NameIndex {
  /// Human-readable pin name per timing-graph node.
  std::vector<std::string> node_names;
  std::unordered_map<std::string, std::uint32_t> node_by_name;
  /// Instance name -> (pin name, node index) for every pin of every
  /// top-level instance — the `constraints` query's working set.
  std::unordered_map<std::string,
                     std::vector<std::pair<std::string, std::uint32_t>>>
      inst_pins;
};

std::shared_ptr<const NameIndex> build_name_index(const TimingGraph& graph);

/// One slow path, reduced to what replies print (no graph references).
struct SnapshotPath {
  TimePs slack = 0;
  std::string launch;   // launch terminal label
  std::string capture;  // capture terminal label
  std::string from;     // first path node name
  std::string to;       // last path node name
  std::size_t steps = 0;
};

/// One connected (launch, capture) terminal pair with its worst hold margin
/// — the full hold-sweep result at an infinite threshold.  `check_hold <m>`
/// filters this list by margin < m, reproducing the live sweep byte for
/// byte without touching the analyser (tests/snapshot_store_test.cpp).
struct SnapshotHoldPair {
  std::uint32_t launch = 0;   // SyncId value
  std::uint32_t capture = 0;  // SyncId value
  TimePs margin = 0;          // worst (minimum) margin over all paths
  std::string launch_label;
  std::string capture_label;
};

/// Per-corner results captured from a multi-corner run (docs/SCENARIOS.md).
/// Each corner carries the same read-query working set as the snapshot's
/// top-level fields — slack distribution, worst paths, hold pairs — so
/// `corner <k> <query>` serves from the snapshot exactly like the unscoped
/// verbs do.
struct SnapshotCorner {
  std::string name;
  std::uint32_t derate_pm = 1000;
  std::uint32_t wire_pm = 1000;
  TimePs worst_slack = 0;
  std::size_t num_violations = 0;
  /// Per-node slack under this corner, by TNodeId index (`corner <k>
  /// slack <node>`); same length as AnalysisSnapshot::nodes.
  std::vector<TimePs> node_slacks;
  /// Finite capture-terminal slacks under this corner, in SyncId order.
  std::vector<TimePs> capture_slacks;
  /// This corner's worst paths, worst first.
  std::vector<SnapshotPath> paths;
  /// Hold pairs under this corner's derated delays (when captured).
  bool has_hold = false;
  std::vector<SnapshotHoldPair> hold_pairs;
};

class CornerAnalysis;

struct AnalysisSnapshot {
  std::uint64_t id = 0;
  /// Top-module name of the analysed design — the persistence key of the
  /// snapshot store (src/service/snapshot_store.hpp).
  std::string design_name;
  AnalysisStatus status = AnalysisStatus::kComplete;
  bool works_as_intended = false;
  TimePs worst_slack = 0;

  std::size_t num_terminals = 0;   // generic sync instances
  std::size_t num_violations = 0;  // capture terminals with negative slack

  /// Finite capture-terminal slacks, in SyncId order (histogram input).
  std::vector<TimePs> capture_slacks;
  /// Worst paths, worst first, up to the session's max_paths.
  std::vector<SnapshotPath> paths;
  /// Per-node timing, by TNodeId index (slack / constraints queries).
  std::vector<NodeTiming> nodes;

  /// Hold-sweep inputs: every connected pair with its worst margin, sorted
  /// by (launch, capture).  Present when the session captured them
  /// (SessionOptions::capture_hold); `check_hold` is then a snapshot read.
  bool has_hold = false;
  std::vector<SnapshotHoldPair> hold_pairs;

  /// Multi-corner sections, by corner index.  Present when the session ran
  /// a CornerSet (SessionOptions::corners); `worst_corner` is the corner of
  /// the globally worst slack (ties -> lowest corner index).
  bool has_corners = false;
  std::uint32_t worst_corner = 0;
  std::vector<SnapshotCorner> corners;

  /// Algorithm 2 constraint times by TNodeId index (gen_constraints query).
  /// Present when SessionOptions::capture_constraints captured them.
  bool has_constraints = false;
  AnalysisStatus constraints_status = AnalysisStatus::kComplete;
  std::int32_t backward_snatch_cycles = 0;
  std::int32_t forward_snatch_cycles = 0;
  std::vector<ConstraintTimes> constraint_nodes;

  std::shared_ptr<const NameIndex> names;
};

/// Copy the engine's current results into a fresh snapshot.  Called by the
/// session writer only, with the engine fully up to date.  The result is
/// returned mutable so the caller can attach hold/constraint captures
/// before publication freezes it behind a const pointer.
std::shared_ptr<AnalysisSnapshot> take_snapshot(
    const SlackEngine& engine, const Algorithm1Result& result,
    std::uint64_t id, std::size_t max_paths,
    std::shared_ptr<const NameIndex> names);

/// Run the hold sweep at an infinite threshold and record every connected
/// pair's worst margin into `snap` (sets has_hold).
void capture_hold_into(AnalysisSnapshot& snap, const SlackEngine& engine,
                       ThreadPool* pool = nullptr);

/// Capture every corner's results from an up-to-date CornerAnalysis into
/// `snap` (sets has_corners and worst_corner).  When `capture_hold` is set,
/// each corner also records its full hold-pair sweep under its derated
/// delays, mirroring capture_hold_into.
void capture_corners_into(AnalysisSnapshot& snap, const CornerAnalysis& ca,
                          std::size_t max_paths, bool capture_hold,
                          ThreadPool* pool = nullptr);

/// Run Algorithm 2 and record the constraint set into `snap` (sets
/// has_constraints), then restore the analyser to its settled Algorithm 1
/// state via reanalyze() — bit-identical, so snapshots taken before and
/// after this call agree (the reanalyze contract, tests/service_test.cpp).
void capture_constraints_into(AnalysisSnapshot& snap, Hummingbird& hb);

}  // namespace hb
