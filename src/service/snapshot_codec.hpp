// Shared little-endian codec primitives of the snapshot image format and
// the binary query protocol (snapshot_store, snapshot_view, proto2).
//
// The Reader is a bounds-checked cursor over untrusted bytes: every
// accessor checks the remaining length first and latches `fail`, so no
// read past the end is possible whatever the length fields claim — the
// contract the fixed-seed fuzz jobs rely on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hb {

inline std::uint64_t codec_read_le64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

inline std::uint32_t codec_read_le32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

inline std::uint16_t codec_read_le16(const unsigned char* p) {
  return static_cast<std::uint16_t>(std::uint16_t{p[0]} |
                                    (std::uint16_t{p[1]} << 8));
}

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

inline void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked cursor over an untrusted image.  Every accessor checks
/// the remaining length first and latches `fail` — no read past the end is
/// possible, whatever the length fields claim.
struct Reader {
  const unsigned char* data = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;
  bool fail = false;

  std::size_t remaining() const { return size - pos; }
  bool need(std::size_t k) {
    if (fail || remaining() < k) {
      fail = true;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return data[pos++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    const std::uint16_t v = codec_read_le16(data + pos);
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    const std::uint32_t v = codec_read_le32(data + pos);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    const std::uint64_t v = codec_read_le64(data + pos);
    pos += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string str() {
    const std::uint32_t len = u32();
    if (!need(len)) return std::string();
    std::string s(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return s;
  }
  /// Zero-copy variant of str(): a view into the underlying bytes.
  std::string_view str_view() {
    const std::uint32_t len = u32();
    if (!need(len)) return std::string_view();
    std::string_view s(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return s;
  }
};

inline Reader reader_of(std::string_view bytes) {
  Reader r;
  r.data = reinterpret_cast<const unsigned char*>(bytes.data());
  r.size = bytes.size();
  return r;
}

}  // namespace hb
