#include "service/snapshot_read.hpp"

#include <algorithm>

namespace hb {
namespace {

QueryResult deadline_error(const AnalysisSnapshot& snap) {
  return make_error(DiagCode::kAnalysisBudget,
                    "read deadline exceeded; snapshot " +
                        std::to_string(snap.id) + " unaffected");
}

/// Resolve a `corner` selector — a corner name, or a decimal index — to an
/// index into snap.corners; npos when it matches neither.
std::size_t resolve_corner(const AnalysisSnapshot& snap,
                           const std::string& sel) {
  for (std::size_t k = 0; k < snap.corners.size(); ++k) {
    if (snap.corners[k].name == sel) return k;
  }
  if (!sel.empty() &&
      sel.find_first_not_of("0123456789") == std::string::npos &&
      sel.size() <= 9) {
    const std::size_t k = static_cast<std::size_t>(std::stoul(sel));
    if (k < snap.corners.size()) return k;
  }
  return static_cast<std::size_t>(-1);
}

/// `corner ...` — serve the scoped read from the snapshot's per-corner
/// sections.  Reply headers mirror the unscoped verbs with
/// "corner <name>" spliced in after "ok".
QueryResult evaluate_corner_read(const ParsedQuery& q,
                                 const AnalysisSnapshot& snap,
                                 BudgetTimer& timer) {
  if (!snap.has_corners) {
    return make_error(DiagCode::kServiceRejected,
                      "snapshot " + std::to_string(snap.id) +
                          " carries no corner capture "
                          "(session ran without a corner set)");
  }
  if (q.args[0] == "list") {
    QueryResult r = make_ok(
        "ok corner list " + std::to_string(snap.corners.size()) + " worst " +
        snap.corners.at(snap.worst_corner).name);
    for (std::size_t k = 0; k < snap.corners.size(); ++k) {
      timer.count_cycle();
      if (timer.exhausted()) return deadline_error(snap);
      const SnapshotCorner& c = snap.corners[k];
      r.lines.push_back("  corner " + std::to_string(k) + " " + c.name +
                        " derate " + std::to_string(c.derate_pm) + " wire " +
                        std::to_string(c.wire_pm) + " worst_slack " +
                        fmt_ps(c.worst_slack) + " violations " +
                        std::to_string(c.num_violations));
    }
    return r;
  }
  const std::size_t k = resolve_corner(snap, q.args[0]);
  if (k == static_cast<std::size_t>(-1)) {
    return make_error(DiagCode::kParseUnknownName,
                      "unknown corner '" + q.args[0] + "' (try `corner list`)");
  }
  const SnapshotCorner& c = snap.corners[k];
  const std::string scope = "ok corner " + c.name + " ";
  switch (q.corner_sub) {
    case QueryVerb::kSlack: {
      const NameIndex& names = *snap.names;
      auto it = names.node_by_name.find(q.args[1]);
      if (it == names.node_by_name.end() ||
          it->second >= c.node_slacks.size()) {
        return make_error(DiagCode::kParseUnknownName,
                          "unknown node '" + q.args[1] + "'");
      }
      return make_ok(scope + "slack " + q.args[1] + " " +
                     fmt_ps(c.node_slacks[it->second]));
    }
    case QueryVerb::kWorstPaths: {
      const std::size_t want = static_cast<std::size_t>(q.number);
      const std::size_t served = std::min(want, c.paths.size());
      QueryResult r = make_ok(scope + "worst_paths " + std::to_string(served) +
                              " of " + std::to_string(c.num_violations));
      for (std::size_t i = 0; i < served; ++i) {
        timer.count_cycle();
        if (timer.exhausted()) return deadline_error(snap);
        const SnapshotPath& p = c.paths[i];
        r.lines.push_back("  path " + std::to_string(i) + " slack " +
                          fmt_ps(p.slack) + " launch " + p.launch +
                          " capture " + p.capture + " from " + p.from +
                          " to " + p.to + " steps " + std::to_string(p.steps));
      }
      return r;
    }
    case QueryVerb::kHistogram: {
      const std::vector<TimePs>& slacks = c.capture_slacks;
      if (slacks.empty()) {
        return make_ok(scope + "histogram 0 count 0 min 0 max 0");
      }
      const auto [mn_it, mx_it] =
          std::minmax_element(slacks.begin(), slacks.end());
      const TimePs mn = *mn_it, mx = *mx_it;
      const std::int64_t bins = q.number;
      const TimePs width = (mx - mn) / bins + 1;
      std::vector<std::uint64_t> count(static_cast<std::size_t>(bins), 0);
      for (const TimePs s : slacks) {
        ++count[static_cast<std::size_t>((s - mn) / width)];
      }
      QueryResult r = make_ok(scope + "histogram " + std::to_string(bins) +
                              " count " + std::to_string(slacks.size()) +
                              " min " + fmt_ps(mn) + " max " + fmt_ps(mx));
      for (std::int64_t i = 0; i < bins; ++i) {
        timer.count_cycle();
        if (timer.exhausted()) return deadline_error(snap);
        r.lines.push_back("  bin " + std::to_string(i) + " lo " +
                          fmt_ps(mn + i * width) + " hi " +
                          fmt_ps(mn + (i + 1) * width) + " count " +
                          std::to_string(count[static_cast<std::size_t>(i)]));
      }
      return r;
    }
    case QueryVerb::kSummary: {
      QueryResult r = make_ok(scope + "summary snapshot " +
                              std::to_string(snap.id) + " fields 5");
      r.lines.push_back("  derate " + std::to_string(c.derate_pm));
      r.lines.push_back("  wire " + std::to_string(c.wire_pm));
      r.lines.push_back("  worst_slack " + fmt_ps(c.worst_slack));
      r.lines.push_back("  violations " + std::to_string(c.num_violations));
      r.lines.push_back("  paths " + std::to_string(c.paths.size()));
      return r;
    }
    case QueryVerb::kCheckHold: {
      if (!c.has_hold) {
        return make_error(DiagCode::kServiceRejected,
                          "snapshot " + std::to_string(snap.id) +
                              " carries no hold capture for corner " + c.name +
                              " (SessionOptions::capture_hold disabled)");
      }
      const TimePs margin = q.number;
      std::size_t violations = 0;
      for (const SnapshotHoldPair& p : c.hold_pairs) {
        if (p.margin < margin) ++violations;
      }
      QueryResult r = make_ok(scope + "check_hold " + fmt_ps(margin) +
                              " violations " + std::to_string(violations));
      for (const SnapshotHoldPair& p : c.hold_pairs) {
        if (p.margin >= margin) continue;
        timer.count_cycle();
        if (timer.exhausted()) return deadline_error(snap);
        r.lines.push_back("  hold " + p.launch_label + " -> " +
                          p.capture_label + " margin " + fmt_ps(p.margin));
      }
      return r;
    }
    default:
      return make_error(DiagCode::kParseSyntax, "not a corner read query");
  }
}

}  // namespace

QueryResult evaluate_snapshot_read(const ParsedQuery& q,
                                   const AnalysisSnapshot& snap,
                                   BudgetTimer& timer) {
  if (timer.exhausted()) return deadline_error(snap);
  const NameIndex& names = *snap.names;
  switch (q.verb) {
    case QueryVerb::kSlack: {
      auto it = names.node_by_name.find(q.args[0]);
      if (it == names.node_by_name.end()) {
        return make_error(DiagCode::kParseUnknownName,
                          "unknown node '" + q.args[0] + "'");
      }
      const NodeTiming& nt = snap.nodes.at(it->second);
      return make_ok("ok slack " + q.args[0] + " " + fmt_ps(nt.slack));
    }
    case QueryVerb::kWorstPaths: {
      const std::size_t want = static_cast<std::size_t>(q.number);
      const std::size_t served = std::min(want, snap.paths.size());
      QueryResult r = make_ok("ok worst_paths " + std::to_string(served) +
                              " of " + std::to_string(snap.num_violations));
      for (std::size_t i = 0; i < served; ++i) {
        timer.count_cycle();
        if (timer.exhausted()) return deadline_error(snap);
        const SnapshotPath& p = snap.paths[i];
        r.lines.push_back("  path " + std::to_string(i) + " slack " +
                          fmt_ps(p.slack) + " launch " + p.launch +
                          " capture " + p.capture + " from " + p.from +
                          " to " + p.to + " steps " + std::to_string(p.steps));
      }
      return r;
    }
    case QueryVerb::kHistogram: {
      const std::vector<TimePs>& slacks = snap.capture_slacks;
      if (slacks.empty()) {
        return make_ok("ok histogram 0 count 0 min 0 max 0");
      }
      const auto [mn_it, mx_it] = std::minmax_element(slacks.begin(), slacks.end());
      const TimePs mn = *mn_it, mx = *mx_it;
      const std::int64_t bins = q.number;
      const TimePs width = (mx - mn) / bins + 1;
      std::vector<std::uint64_t> count(static_cast<std::size_t>(bins), 0);
      for (const TimePs s : slacks) {
        ++count[static_cast<std::size_t>((s - mn) / width)];
      }
      QueryResult r = make_ok("ok histogram " + std::to_string(bins) +
                              " count " + std::to_string(slacks.size()) +
                              " min " + fmt_ps(mn) + " max " + fmt_ps(mx));
      for (std::int64_t i = 0; i < bins; ++i) {
        timer.count_cycle();
        if (timer.exhausted()) return deadline_error(snap);
        r.lines.push_back("  bin " + std::to_string(i) + " lo " +
                          fmt_ps(mn + i * width) + " hi " +
                          fmt_ps(mn + (i + 1) * width) + " count " +
                          std::to_string(count[static_cast<std::size_t>(i)]));
      }
      return r;
    }
    case QueryVerb::kConstraints: {
      auto it = names.inst_pins.find(q.args[0]);
      if (it == names.inst_pins.end()) {
        return make_error(DiagCode::kParseUnknownName,
                          "unknown instance '" + q.args[0] + "'");
      }
      QueryResult r = make_ok("ok constraints " + q.args[0] + " pins " +
                              std::to_string(it->second.size()));
      for (const auto& [pin, node] : it->second) {
        timer.count_cycle();
        if (timer.exhausted()) return deadline_error(snap);
        const NodeTiming& nt = snap.nodes.at(node);
        r.lines.push_back("  pin " + pin + " slack " + fmt_ps(nt.slack) +
                          " ready " + fmt_ps(nt.ready.rise) + " " +
                          fmt_ps(nt.ready.fall) + " required " +
                          fmt_ps(nt.required.rise) + " " +
                          fmt_ps(nt.required.fall));
      }
      return r;
    }
    case QueryVerb::kSummary: {
      QueryResult r = make_ok("ok summary snapshot " + std::to_string(snap.id) +
                              " fields 6");
      r.lines.push_back("  status " + std::string(analysis_status_name(snap.status)));
      r.lines.push_back(std::string("  works_as_intended ") +
                        (snap.works_as_intended ? "true" : "false"));
      r.lines.push_back("  worst_slack " + fmt_ps(snap.worst_slack));
      r.lines.push_back("  terminals " + std::to_string(snap.num_terminals));
      r.lines.push_back("  violations " + std::to_string(snap.num_violations));
      r.lines.push_back("  paths " + std::to_string(snap.paths.size()));
      return r;
    }
    case QueryVerb::kCheckHold: {
      if (!snap.has_hold) {
        return make_error(DiagCode::kServiceRejected,
                          "snapshot " + std::to_string(snap.id) +
                              " carries no hold capture "
                              "(SessionOptions::capture_hold disabled)");
      }
      // hold_pairs holds every connected pair with its worst margin, in the
      // live sweep's (launch, capture) order — filtering by margin < m
      // reproduces check_hold(m) on the analyser byte for byte.
      const TimePs margin = q.number;
      std::size_t violations = 0;
      for (const SnapshotHoldPair& p : snap.hold_pairs) {
        if (p.margin < margin) ++violations;
      }
      QueryResult r = make_ok("ok check_hold " + fmt_ps(margin) +
                              " violations " + std::to_string(violations));
      for (const SnapshotHoldPair& p : snap.hold_pairs) {
        if (p.margin >= margin) continue;
        timer.count_cycle();
        if (timer.exhausted()) return deadline_error(snap);
        r.lines.push_back("  hold " + p.launch_label + " -> " +
                          p.capture_label + " margin " + fmt_ps(p.margin));
      }
      return r;
    }
    case QueryVerb::kGenConstraints: {
      if (!snap.has_constraints) {
        return make_error(DiagCode::kServiceRejected,
                          "snapshot " + std::to_string(snap.id) +
                              " carries no constraint capture "
                              "(SessionOptions::capture_constraints disabled)");
      }
      // Violating endpoints, as the one-shot CLI prints them: nodes with a
      // full Algorithm 2 window and non-positive slack.
      std::size_t endpoints = 0;
      for (const ConstraintTimes& ct : snap.constraint_nodes) {
        if (ct.has_ready && ct.has_required && ct.slack <= 0) ++endpoints;
      }
      QueryResult r = make_ok(
          "ok gen_constraints status " +
          std::string(analysis_status_name(snap.constraints_status)) +
          " backward " + std::to_string(snap.backward_snatch_cycles) +
          " forward " + std::to_string(snap.forward_snatch_cycles) +
          " endpoints " + std::to_string(endpoints));
      for (std::size_t i = 0; i < snap.constraint_nodes.size(); ++i) {
        const ConstraintTimes& ct = snap.constraint_nodes[i];
        if (!ct.has_ready || !ct.has_required || ct.slack > 0) continue;
        timer.count_cycle();
        if (timer.exhausted()) return deadline_error(snap);
        const std::string name = i < names.node_names.size()
                                     ? names.node_names[i]
                                     : std::to_string(i);
        r.lines.push_back("  node " + name + " ready " +
                          fmt_ps(std::max(ct.ready.rise, ct.ready.fall)) +
                          " required " +
                          fmt_ps(std::min(ct.required.rise, ct.required.fall)) +
                          " slack " + fmt_ps(ct.slack));
      }
      return r;
    }
    case QueryVerb::kCorner:
      return evaluate_corner_read(q, snap, timer);
    default:
      return make_error(DiagCode::kParseSyntax, "not a read query");
  }
}

}  // namespace hb
