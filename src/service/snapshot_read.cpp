#include "service/snapshot_read.hpp"

#include <algorithm>

namespace hb {
namespace {

QueryResult deadline_error(const SnapshotSource& src) {
  return make_error(DiagCode::kAnalysisBudget,
                    "read deadline exceeded; snapshot " +
                        std::to_string(src.id()) + " unaffected");
}

/// Resolve a `corner` selector — a corner name, or a decimal index — to an
/// index into the corner table; npos when it matches neither.
std::size_t resolve_corner(const SnapshotSource& src, const std::string& sel) {
  for (std::size_t k = 0; k < src.num_corners(); ++k) {
    if (src.corner_meta(k).name == sel) return k;
  }
  if (!sel.empty() &&
      sel.find_first_not_of("0123456789") == std::string::npos &&
      sel.size() <= 9) {
    const std::size_t k = static_cast<std::size_t>(std::stoul(sel));
    if (k < src.num_corners()) return k;
  }
  return SnapshotSource::npos;
}

std::string path_line(std::size_t i, const SourcePath& p) {
  std::string line = "  path " + std::to_string(i) + " slack " +
                     fmt_ps(p.slack) + " launch ";
  line.append(p.launch);
  line += " capture ";
  line.append(p.capture);
  line += " from ";
  line.append(p.from);
  line += " to ";
  line.append(p.to);
  line += " steps " + std::to_string(p.steps);
  return line;
}

std::string hold_line(const SourceHoldPair& p) {
  std::string line = "  hold ";
  line.append(p.launch_label);
  line += " -> ";
  line.append(p.capture_label);
  line += " margin " + fmt_ps(p.margin);
  return line;
}

/// `corner ...` — serve the scoped read from the snapshot's per-corner
/// sections.  Reply headers mirror the unscoped verbs with
/// "corner <name>" spliced in after "ok".
QueryResult evaluate_corner_read(const ParsedQuery& q,
                                 const SnapshotSource& src,
                                 BudgetTimer& timer) {
  if (!src.has_corners()) {
    return make_error(DiagCode::kServiceRejected,
                      "snapshot " + std::to_string(src.id()) +
                          " carries no corner capture "
                          "(session ran without a corner set)");
  }
  if (q.args[0] == "list") {
    QueryResult r = make_ok(
        "ok corner list " + std::to_string(src.num_corners()) + " worst " +
        std::string(src.corner_meta(src.worst_corner()).name));
    for (std::size_t k = 0; k < src.num_corners(); ++k) {
      timer.count_cycle();
      if (timer.exhausted()) return deadline_error(src);
      const SourceCornerMeta c = src.corner_meta(k);
      r.lines.push_back("  corner " + std::to_string(k) + " " +
                        std::string(c.name) + " derate " +
                        std::to_string(c.derate_pm) + " wire " +
                        std::to_string(c.wire_pm) + " worst_slack " +
                        fmt_ps(c.worst_slack) + " violations " +
                        std::to_string(c.num_violations));
    }
    return r;
  }
  const std::size_t k = resolve_corner(src, q.args[0]);
  if (k == SnapshotSource::npos) {
    return make_error(DiagCode::kParseUnknownName,
                      "unknown corner '" + q.args[0] + "' (try `corner list`)");
  }
  const SourceCornerMeta c = src.corner_meta(k);
  const std::string scope = "ok corner " + std::string(c.name) + " ";
  switch (q.corner_sub) {
    case QueryVerb::kSlack: {
      const std::size_t idx = src.find_node(q.args[1]);
      if (idx == SnapshotSource::npos ||
          idx >= src.corner_num_node_slacks(k)) {
        return make_error(DiagCode::kParseUnknownName,
                          "unknown node '" + q.args[1] + "'");
      }
      return make_ok(scope + "slack " + q.args[1] + " " +
                     fmt_ps(src.corner_node_slack(k, idx)));
    }
    case QueryVerb::kWorstPaths: {
      const std::size_t want = static_cast<std::size_t>(q.number);
      const std::size_t served = std::min(want, c.num_paths);
      QueryResult r = make_ok(scope + "worst_paths " + std::to_string(served) +
                              " of " + std::to_string(c.num_violations));
      for (std::size_t i = 0; i < served; ++i) {
        timer.count_cycle();
        if (timer.exhausted()) return deadline_error(src);
        r.lines.push_back(path_line(i, src.corner_path(k, i)));
      }
      return r;
    }
    case QueryVerb::kHistogram: {
      const std::size_t n = src.corner_num_capture_slacks(k);
      if (n == 0) {
        return make_ok(scope + "histogram 0 count 0 min 0 max 0");
      }
      TimePs mn = src.corner_capture_slack(k, 0), mx = mn;
      for (std::size_t i = 1; i < n; ++i) {
        const TimePs s = src.corner_capture_slack(k, i);
        mn = std::min(mn, s);
        mx = std::max(mx, s);
      }
      const std::int64_t bins = q.number;
      const TimePs width = (mx - mn) / bins + 1;
      std::vector<std::uint64_t> count(static_cast<std::size_t>(bins), 0);
      for (std::size_t i = 0; i < n; ++i) {
        const TimePs s = src.corner_capture_slack(k, i);
        ++count[static_cast<std::size_t>((s - mn) / width)];
      }
      QueryResult r = make_ok(scope + "histogram " + std::to_string(bins) +
                              " count " + std::to_string(n) + " min " +
                              fmt_ps(mn) + " max " + fmt_ps(mx));
      for (std::int64_t i = 0; i < bins; ++i) {
        timer.count_cycle();
        if (timer.exhausted()) return deadline_error(src);
        r.lines.push_back("  bin " + std::to_string(i) + " lo " +
                          fmt_ps(mn + i * width) + " hi " +
                          fmt_ps(mn + (i + 1) * width) + " count " +
                          std::to_string(count[static_cast<std::size_t>(i)]));
      }
      return r;
    }
    case QueryVerb::kSummary: {
      QueryResult r = make_ok(scope + "summary snapshot " +
                              std::to_string(src.id()) + " fields 5");
      r.lines.push_back("  derate " + std::to_string(c.derate_pm));
      r.lines.push_back("  wire " + std::to_string(c.wire_pm));
      r.lines.push_back("  worst_slack " + fmt_ps(c.worst_slack));
      r.lines.push_back("  violations " + std::to_string(c.num_violations));
      r.lines.push_back("  paths " + std::to_string(c.num_paths));
      return r;
    }
    case QueryVerb::kCheckHold: {
      if (!c.has_hold) {
        return make_error(DiagCode::kServiceRejected,
                          "snapshot " + std::to_string(src.id()) +
                              " carries no hold capture for corner " +
                              std::string(c.name) +
                              " (SessionOptions::capture_hold disabled)");
      }
      const TimePs margin = q.number;
      const std::size_t pairs = src.corner_num_hold_pairs(k);
      std::size_t violations = 0;
      for (std::size_t i = 0; i < pairs; ++i) {
        if (src.corner_hold_pair(k, i).margin < margin) ++violations;
      }
      QueryResult r = make_ok(scope + "check_hold " + fmt_ps(margin) +
                              " violations " + std::to_string(violations));
      for (std::size_t i = 0; i < pairs; ++i) {
        const SourceHoldPair p = src.corner_hold_pair(k, i);
        if (p.margin >= margin) continue;
        timer.count_cycle();
        if (timer.exhausted()) return deadline_error(src);
        r.lines.push_back(hold_line(p));
      }
      return r;
    }
    default:
      return make_error(DiagCode::kParseSyntax, "not a corner read query");
  }
}

}  // namespace

QueryResult evaluate_snapshot_read(const ParsedQuery& q,
                                   const SnapshotSource& src,
                                   BudgetTimer& timer) {
  if (timer.exhausted()) return deadline_error(src);
  switch (q.verb) {
    case QueryVerb::kSlack: {
      const std::size_t idx = src.find_node(q.args[0]);
      if (idx == SnapshotSource::npos) {
        return make_error(DiagCode::kParseUnknownName,
                          "unknown node '" + q.args[0] + "'");
      }
      return make_ok("ok slack " + q.args[0] + " " +
                     fmt_ps(src.node_timing(idx).slack));
    }
    case QueryVerb::kWorstPaths: {
      const std::size_t want = static_cast<std::size_t>(q.number);
      const std::size_t served = std::min(want, src.num_paths());
      QueryResult r = make_ok("ok worst_paths " + std::to_string(served) +
                              " of " + std::to_string(src.num_violations()));
      for (std::size_t i = 0; i < served; ++i) {
        timer.count_cycle();
        if (timer.exhausted()) return deadline_error(src);
        r.lines.push_back(path_line(i, src.path(i)));
      }
      return r;
    }
    case QueryVerb::kHistogram: {
      const std::size_t n = src.num_capture_slacks();
      if (n == 0) {
        return make_ok("ok histogram 0 count 0 min 0 max 0");
      }
      TimePs mn = src.capture_slack(0), mx = mn;
      for (std::size_t i = 1; i < n; ++i) {
        const TimePs s = src.capture_slack(i);
        mn = std::min(mn, s);
        mx = std::max(mx, s);
      }
      const std::int64_t bins = q.number;
      const TimePs width = (mx - mn) / bins + 1;
      std::vector<std::uint64_t> count(static_cast<std::size_t>(bins), 0);
      for (std::size_t i = 0; i < n; ++i) {
        const TimePs s = src.capture_slack(i);
        ++count[static_cast<std::size_t>((s - mn) / width)];
      }
      QueryResult r = make_ok("ok histogram " + std::to_string(bins) +
                              " count " + std::to_string(n) + " min " +
                              fmt_ps(mn) + " max " + fmt_ps(mx));
      for (std::int64_t i = 0; i < bins; ++i) {
        timer.count_cycle();
        if (timer.exhausted()) return deadline_error(src);
        r.lines.push_back("  bin " + std::to_string(i) + " lo " +
                          fmt_ps(mn + i * width) + " hi " +
                          fmt_ps(mn + (i + 1) * width) + " count " +
                          std::to_string(count[static_cast<std::size_t>(i)]));
      }
      return r;
    }
    case QueryVerb::kConstraints: {
      const SnapshotSource::InstRef ref = src.find_instance(q.args[0]);
      if (!ref.found) {
        return make_error(DiagCode::kParseUnknownName,
                          "unknown instance '" + q.args[0] + "'");
      }
      const std::size_t pins = src.num_instance_pins(ref);
      QueryResult r = make_ok("ok constraints " + q.args[0] + " pins " +
                              std::to_string(pins));
      for (std::size_t i = 0; i < pins; ++i) {
        timer.count_cycle();
        if (timer.exhausted()) return deadline_error(src);
        const SourcePin pin = src.instance_pin(ref, i);
        const NodeTiming nt = src.node_timing(pin.node);
        std::string line = "  pin ";
        line.append(pin.name);
        line += " slack " + fmt_ps(nt.slack) + " ready " +
                fmt_ps(nt.ready.rise) + " " + fmt_ps(nt.ready.fall) +
                " required " + fmt_ps(nt.required.rise) + " " +
                fmt_ps(nt.required.fall);
        r.lines.push_back(std::move(line));
      }
      return r;
    }
    case QueryVerb::kSummary: {
      QueryResult r = make_ok("ok summary snapshot " +
                              std::to_string(src.id()) + " fields 6");
      r.lines.push_back("  status " +
                        std::string(analysis_status_name(src.status())));
      r.lines.push_back(std::string("  works_as_intended ") +
                        (src.works_as_intended() ? "true" : "false"));
      r.lines.push_back("  worst_slack " + fmt_ps(src.worst_slack()));
      r.lines.push_back("  terminals " + std::to_string(src.num_terminals()));
      r.lines.push_back("  violations " + std::to_string(src.num_violations()));
      r.lines.push_back("  paths " + std::to_string(src.num_paths()));
      return r;
    }
    case QueryVerb::kCheckHold: {
      if (!src.has_hold()) {
        return make_error(DiagCode::kServiceRejected,
                          "snapshot " + std::to_string(src.id()) +
                              " carries no hold capture "
                              "(SessionOptions::capture_hold disabled)");
      }
      // hold_pairs holds every connected pair with its worst margin, in the
      // live sweep's (launch, capture) order — filtering by margin < m
      // reproduces check_hold(m) on the analyser byte for byte.
      const TimePs margin = q.number;
      const std::size_t pairs = src.num_hold_pairs();
      std::size_t violations = 0;
      for (std::size_t i = 0; i < pairs; ++i) {
        if (src.hold_pair(i).margin < margin) ++violations;
      }
      QueryResult r = make_ok("ok check_hold " + fmt_ps(margin) +
                              " violations " + std::to_string(violations));
      for (std::size_t i = 0; i < pairs; ++i) {
        const SourceHoldPair p = src.hold_pair(i);
        if (p.margin >= margin) continue;
        timer.count_cycle();
        if (timer.exhausted()) return deadline_error(src);
        r.lines.push_back(hold_line(p));
      }
      return r;
    }
    case QueryVerb::kGenConstraints: {
      if (!src.has_constraints()) {
        return make_error(DiagCode::kServiceRejected,
                          "snapshot " + std::to_string(src.id()) +
                              " carries no constraint capture "
                              "(SessionOptions::capture_constraints disabled)");
      }
      // Violating endpoints, as the one-shot CLI prints them: nodes with a
      // full Algorithm 2 window and non-positive slack.
      const std::size_t cons = src.num_constraint_nodes();
      std::size_t endpoints = 0;
      for (std::size_t i = 0; i < cons; ++i) {
        const ConstraintTimes ct = src.constraint_node(i);
        if (ct.has_ready && ct.has_required && ct.slack <= 0) ++endpoints;
      }
      QueryResult r = make_ok(
          "ok gen_constraints status " +
          std::string(analysis_status_name(src.constraints_status())) +
          " backward " + std::to_string(src.backward_snatch_cycles()) +
          " forward " + std::to_string(src.forward_snatch_cycles()) +
          " endpoints " + std::to_string(endpoints));
      for (std::size_t i = 0; i < cons; ++i) {
        const ConstraintTimes ct = src.constraint_node(i);
        if (!ct.has_ready || !ct.has_required || ct.slack > 0) continue;
        timer.count_cycle();
        if (timer.exhausted()) return deadline_error(src);
        const std::string name = i < src.num_node_names()
                                     ? std::string(src.node_name(i))
                                     : std::to_string(i);
        r.lines.push_back("  node " + name + " ready " +
                          fmt_ps(std::max(ct.ready.rise, ct.ready.fall)) +
                          " required " +
                          fmt_ps(std::min(ct.required.rise, ct.required.fall)) +
                          " slack " + fmt_ps(ct.slack));
      }
      return r;
    }
    case QueryVerb::kCorner:
      return evaluate_corner_read(q, src, timer);
    default:
      return make_error(DiagCode::kParseSyntax, "not a read query");
  }
}

QueryResult evaluate_snapshot_read(const ParsedQuery& q,
                                   const AnalysisSnapshot& snap,
                                   BudgetTimer& timer) {
  const SnapshotCopySource src(snap);
  return evaluate_snapshot_read(q, src, timer);
}

}  // namespace hb
