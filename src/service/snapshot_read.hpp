// Snapshot read evaluation — one pure function from (query, snapshot) to a
// reply, shared by every serving surface.
//
// A live Session and a warm-restarted host serving a store-loaded snapshot
// (snapshot_store.hpp) call the same evaluator, so a restarted service
// answers read queries byte-identically to the pre-restart session — the
// warm-restart acceptance contract (tests/snapshot_store_test.cpp).
//
// check_hold and gen_constraints are read queries here: they evaluate the
// hold-pair and constraint captures embedded in the snapshot, never the
// analyser.  Snapshots taken without those captures answer with a
// structured service-rejected error instead of stale or partial data.
#pragma once

#include "service/query.hpp"
#include "service/snapshot.hpp"
#include "util/cancel.hpp"

namespace hb {

/// Evaluate one read query (is_read_query(q.verb)) against a snapshot.
/// Pure: same query + same snapshot -> same reply bytes, on any thread.
QueryResult evaluate_snapshot_read(const ParsedQuery& q,
                                   const AnalysisSnapshot& snap,
                                   BudgetTimer& timer);

}  // namespace hb
