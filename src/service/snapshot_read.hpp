// Snapshot read evaluation — one pure function from (query, snapshot) to a
// reply, shared by every serving surface.
//
// A live Session, a warm-restarted host serving a store-loaded snapshot
// (snapshot_store.hpp) and a read-only replica serving an mmap'd
// SnapshotView (snapshot_view.hpp) all call the same evaluator through the
// SnapshotSource interface, so every surface answers read queries
// byte-identically — the warm-restart and view-vs-copy differential
// contracts (tests/snapshot_store_test.cpp, tests/proto2_test.cpp).
//
// check_hold and gen_constraints are read queries here: they evaluate the
// hold-pair and constraint captures embedded in the snapshot, never the
// analyser.  Snapshots taken without those captures answer with a
// structured service-rejected error instead of stale or partial data.
#pragma once

#include "service/query.hpp"
#include "service/snapshot.hpp"
#include "service/snapshot_source.hpp"
#include "util/cancel.hpp"

namespace hb {

/// Evaluate one read query (is_read_query(q.verb)) against any snapshot
/// source.  Pure: same query + same source data -> same reply bytes, on any
/// thread.
QueryResult evaluate_snapshot_read(const ParsedQuery& q,
                                   const SnapshotSource& src,
                                   BudgetTimer& timer);

/// Convenience overload for a decoded snapshot (adapts it on the stack).
QueryResult evaluate_snapshot_read(const ParsedQuery& q,
                                   const AnalysisSnapshot& snap,
                                   BudgetTimer& timer);

}  // namespace hb
