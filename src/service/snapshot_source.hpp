// SnapshotSource — the one evaluator interface behind every snapshot-served
// read verb (service/snapshot_read.*).
//
// Two implementations exist: SnapshotCopySource (below) adapts a decoded
// in-memory AnalysisSnapshot, and SnapshotView (snapshot_view.hpp) serves
// straight from an mmap'd image without materialising a single string.
// evaluate_snapshot_read() is written against this interface only, so a
// live session, a warm-restarted host and a read-only replica all produce
// byte-identical replies — the differential contract of
// tests/proto2_test.cpp.
//
// Accessors hand out string_views and small value structs; views point into
// storage owned by the source (the snapshot's strings, or the mapped
// image), valid for the source's lifetime.  Out-of-range indices return
// zeroed values rather than throwing: on images produced by
// serialize_snapshot the counts always agree, and a hostile image must
// degrade, not crash.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "service/snapshot.hpp"

namespace hb {

struct SourcePin {
  std::string_view name;
  std::uint32_t node = 0;
};

struct SourcePath {
  TimePs slack = 0;
  std::string_view launch;
  std::string_view capture;
  std::string_view from;
  std::string_view to;
  std::size_t steps = 0;
};

struct SourceHoldPair {
  TimePs margin = 0;
  std::string_view launch_label;
  std::string_view capture_label;
};

struct SourceCornerMeta {
  std::string_view name;
  std::uint32_t derate_pm = 1000;
  std::uint32_t wire_pm = 1000;
  TimePs worst_slack = 0;
  std::size_t num_violations = 0;
  std::size_t num_paths = 0;
  bool has_hold = false;
};

class SnapshotSource {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Opaque handle from find_instance(); valid only against the source
  /// that produced it, and only while that source lives.
  struct InstRef {
    const void* p = nullptr;
    std::size_t i = 0;
    bool found = false;
  };

  virtual ~SnapshotSource() = default;

  // -- meta ----------------------------------------------------------------
  virtual std::uint64_t id() const = 0;
  virtual std::string_view design_name() const = 0;
  virtual AnalysisStatus status() const = 0;
  virtual bool works_as_intended() const = 0;
  virtual TimePs worst_slack() const = 0;
  virtual std::size_t num_terminals() const = 0;
  virtual std::size_t num_violations() const = 0;

  // -- node timings / names ------------------------------------------------
  virtual std::size_t num_nodes() const = 0;
  virtual NodeTiming node_timing(std::size_t i) const = 0;
  virtual std::size_t num_node_names() const = 0;
  virtual std::string_view node_name(std::size_t i) const = 0;
  /// Node id for a name; npos when unknown.  Duplicate names resolve to the
  /// lowest id (the NameIndex emplace-first-wins rule).
  virtual std::size_t find_node(std::string_view name) const = 0;

  // -- worst paths ---------------------------------------------------------
  virtual std::size_t num_paths() const = 0;
  virtual SourcePath path(std::size_t i) const = 0;

  // -- capture slacks (histogram input) ------------------------------------
  virtual std::size_t num_capture_slacks() const = 0;
  virtual TimePs capture_slack(std::size_t i) const = 0;

  // -- instance pin tables (constraints query) -----------------------------
  virtual InstRef find_instance(std::string_view name) const = 0;
  virtual std::size_t num_instance_pins(const InstRef& ref) const = 0;
  virtual SourcePin instance_pin(const InstRef& ref, std::size_t pin) const = 0;

  // -- hold capture --------------------------------------------------------
  virtual bool has_hold() const = 0;
  virtual std::size_t num_hold_pairs() const = 0;
  virtual SourceHoldPair hold_pair(std::size_t i) const = 0;

  // -- constraint capture --------------------------------------------------
  virtual bool has_constraints() const = 0;
  virtual AnalysisStatus constraints_status() const = 0;
  virtual std::int32_t backward_snatch_cycles() const = 0;
  virtual std::int32_t forward_snatch_cycles() const = 0;
  virtual std::size_t num_constraint_nodes() const = 0;
  virtual ConstraintTimes constraint_node(std::size_t i) const = 0;

  // -- corner capture ------------------------------------------------------
  virtual bool has_corners() const = 0;
  virtual std::uint32_t worst_corner() const = 0;
  virtual std::size_t num_corners() const = 0;
  virtual SourceCornerMeta corner_meta(std::size_t k) const = 0;
  virtual std::size_t corner_num_node_slacks(std::size_t k) const = 0;
  virtual TimePs corner_node_slack(std::size_t k, std::size_t i) const = 0;
  virtual std::size_t corner_num_capture_slacks(std::size_t k) const = 0;
  virtual TimePs corner_capture_slack(std::size_t k, std::size_t i) const = 0;
  virtual SourcePath corner_path(std::size_t k, std::size_t i) const = 0;
  virtual std::size_t corner_num_hold_pairs(std::size_t k) const = 0;
  virtual SourceHoldPair corner_hold_pair(std::size_t k, std::size_t i) const = 0;
};

/// Adapter over a decoded AnalysisSnapshot.  Construction is free (two
/// pointer stores), so the session read path builds one on the stack per
/// request.  The shared_ptr overload keeps the snapshot alive for sources
/// that outlive their caller's pointer (the store's copy-load fallback).
class SnapshotCopySource final : public SnapshotSource {
 public:
  explicit SnapshotCopySource(const AnalysisSnapshot& snap) : snap_(&snap) {}
  explicit SnapshotCopySource(std::shared_ptr<const AnalysisSnapshot> snap)
      : owned_(std::move(snap)), snap_(owned_.get()) {}

  std::uint64_t id() const override { return snap_->id; }
  std::string_view design_name() const override { return snap_->design_name; }
  AnalysisStatus status() const override { return snap_->status; }
  bool works_as_intended() const override { return snap_->works_as_intended; }
  TimePs worst_slack() const override { return snap_->worst_slack; }
  std::size_t num_terminals() const override { return snap_->num_terminals; }
  std::size_t num_violations() const override { return snap_->num_violations; }

  std::size_t num_nodes() const override { return snap_->nodes.size(); }
  NodeTiming node_timing(std::size_t i) const override {
    return i < snap_->nodes.size() ? snap_->nodes[i] : NodeTiming{};
  }
  std::size_t num_node_names() const override {
    return snap_->names->node_names.size();
  }
  std::string_view node_name(std::size_t i) const override {
    return i < snap_->names->node_names.size()
               ? std::string_view(snap_->names->node_names[i])
               : std::string_view();
  }
  std::size_t find_node(std::string_view name) const override {
    const auto& by_name = snap_->names->node_by_name;
    const auto it = by_name.find(std::string(name));
    return it == by_name.end() ? npos : static_cast<std::size_t>(it->second);
  }

  std::size_t num_paths() const override { return snap_->paths.size(); }
  SourcePath path(std::size_t i) const override {
    SourcePath out;
    if (i >= snap_->paths.size()) return out;
    const SnapshotPath& p = snap_->paths[i];
    out.slack = p.slack;
    out.launch = p.launch;
    out.capture = p.capture;
    out.from = p.from;
    out.to = p.to;
    out.steps = p.steps;
    return out;
  }

  std::size_t num_capture_slacks() const override {
    return snap_->capture_slacks.size();
  }
  TimePs capture_slack(std::size_t i) const override {
    return i < snap_->capture_slacks.size() ? snap_->capture_slacks[i] : 0;
  }

  InstRef find_instance(std::string_view name) const override {
    const auto& pins = snap_->names->inst_pins;
    const auto it = pins.find(std::string(name));
    InstRef ref;
    if (it == pins.end()) return ref;
    ref.p = &it->second;
    ref.found = true;
    return ref;
  }
  std::size_t num_instance_pins(const InstRef& ref) const override {
    if (!ref.found) return 0;
    return static_cast<const PinTable*>(ref.p)->size();
  }
  SourcePin instance_pin(const InstRef& ref, std::size_t pin) const override {
    SourcePin out;
    if (!ref.found) return out;
    const PinTable& table = *static_cast<const PinTable*>(ref.p);
    if (pin >= table.size()) return out;
    out.name = table[pin].first;
    out.node = table[pin].second;
    return out;
  }

  bool has_hold() const override { return snap_->has_hold; }
  std::size_t num_hold_pairs() const override { return snap_->hold_pairs.size(); }
  SourceHoldPair hold_pair(std::size_t i) const override {
    SourceHoldPair out;
    if (i >= snap_->hold_pairs.size()) return out;
    const SnapshotHoldPair& p = snap_->hold_pairs[i];
    out.margin = p.margin;
    out.launch_label = p.launch_label;
    out.capture_label = p.capture_label;
    return out;
  }

  bool has_constraints() const override { return snap_->has_constraints; }
  AnalysisStatus constraints_status() const override {
    return snap_->constraints_status;
  }
  std::int32_t backward_snatch_cycles() const override {
    return snap_->backward_snatch_cycles;
  }
  std::int32_t forward_snatch_cycles() const override {
    return snap_->forward_snatch_cycles;
  }
  std::size_t num_constraint_nodes() const override {
    return snap_->constraint_nodes.size();
  }
  ConstraintTimes constraint_node(std::size_t i) const override {
    return i < snap_->constraint_nodes.size() ? snap_->constraint_nodes[i]
                                              : ConstraintTimes{};
  }

  bool has_corners() const override { return snap_->has_corners; }
  std::uint32_t worst_corner() const override { return snap_->worst_corner; }
  std::size_t num_corners() const override { return snap_->corners.size(); }
  SourceCornerMeta corner_meta(std::size_t k) const override {
    SourceCornerMeta out;
    if (k >= snap_->corners.size()) return out;
    const SnapshotCorner& c = snap_->corners[k];
    out.name = c.name;
    out.derate_pm = c.derate_pm;
    out.wire_pm = c.wire_pm;
    out.worst_slack = c.worst_slack;
    out.num_violations = c.num_violations;
    out.num_paths = c.paths.size();
    out.has_hold = c.has_hold;
    return out;
  }
  std::size_t corner_num_node_slacks(std::size_t k) const override {
    return k < snap_->corners.size() ? snap_->corners[k].node_slacks.size() : 0;
  }
  TimePs corner_node_slack(std::size_t k, std::size_t i) const override {
    if (k >= snap_->corners.size()) return 0;
    const auto& v = snap_->corners[k].node_slacks;
    return i < v.size() ? v[i] : 0;
  }
  std::size_t corner_num_capture_slacks(std::size_t k) const override {
    return k < snap_->corners.size() ? snap_->corners[k].capture_slacks.size()
                                     : 0;
  }
  TimePs corner_capture_slack(std::size_t k, std::size_t i) const override {
    if (k >= snap_->corners.size()) return 0;
    const auto& v = snap_->corners[k].capture_slacks;
    return i < v.size() ? v[i] : 0;
  }
  SourcePath corner_path(std::size_t k, std::size_t i) const override {
    SourcePath out;
    if (k >= snap_->corners.size()) return out;
    const auto& paths = snap_->corners[k].paths;
    if (i >= paths.size()) return out;
    const SnapshotPath& p = paths[i];
    out.slack = p.slack;
    out.launch = p.launch;
    out.capture = p.capture;
    out.from = p.from;
    out.to = p.to;
    out.steps = p.steps;
    return out;
  }
  std::size_t corner_num_hold_pairs(std::size_t k) const override {
    return k < snap_->corners.size() ? snap_->corners[k].hold_pairs.size() : 0;
  }
  SourceHoldPair corner_hold_pair(std::size_t k, std::size_t i) const override {
    SourceHoldPair out;
    if (k >= snap_->corners.size()) return out;
    const auto& pairs = snap_->corners[k].hold_pairs;
    if (i >= pairs.size()) return out;
    out.margin = pairs[i].margin;
    out.launch_label = pairs[i].launch_label;
    out.capture_label = pairs[i].capture_label;
    return out;
  }

 private:
  using PinTable = std::vector<std::pair<std::string, std::uint32_t>>;

  std::shared_ptr<const AnalysisSnapshot> owned_;
  const AnalysisSnapshot* snap_;
};

}  // namespace hb
