#include "service/snapshot_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>

#include "service/snapshot_codec.hpp"
#include "service/snapshot_view.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"

namespace fs = std::filesystem;

namespace hb {
namespace {

// ---------------------------------------------------------------------------
// xxhash64 (one-shot, standard constants).

constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ull;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4Full;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ull;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ull;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ull;

std::uint64_t rotl64(std::uint64_t v, int r) {
  return (v << r) | (v >> (64 - r));
}

std::uint64_t read_le64(const unsigned char* p) { return codec_read_le64(p); }

std::uint32_t read_le32(const unsigned char* p) { return codec_read_le32(p); }

std::uint64_t xxh_round(std::uint64_t acc, std::uint64_t input) {
  return rotl64(acc + input * kPrime2, 31) * kPrime1;
}

std::uint64_t xxh_merge(std::uint64_t acc, std::uint64_t val) {
  return (acc ^ xxh_round(0, val)) * kPrime1 + kPrime4;
}

}  // namespace

std::uint64_t snapshot_checksum(const void* data, std::size_t len,
                                std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + len;
  std::uint64_t h;
  if (len >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kPrime1;
    const unsigned char* const limit = end - 32;
    do {
      v1 = xxh_round(v1, read_le64(p));
      v2 = xxh_round(v2, read_le64(p + 8));
      v3 = xxh_round(v3, read_le64(p + 16));
      v4 = xxh_round(v4, read_le64(p + 24));
      p += 32;
    } while (p <= limit);
    h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18);
    h = xxh_merge(h, v1);
    h = xxh_merge(h, v2);
    h = xxh_merge(h, v3);
    h = xxh_merge(h, v4);
  } else {
    h = seed + kPrime5;
  }
  h += static_cast<std::uint64_t>(len);
  while (p + 8 <= end) {
    h = rotl64(h ^ xxh_round(0, read_le64(p)), 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h = rotl64(h ^ (std::uint64_t{read_le32(p)} * kPrime1), 23) * kPrime2 +
        kPrime3;
    p += 4;
  }
  while (p < end) {
    h = rotl64(h ^ (std::uint64_t{*p} * kPrime5), 11) * kPrime1;
    ++p;
  }
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

const char* snapshot_section_name(SnapshotSection s) {
  switch (s) {
    case SnapshotSection::kMeta: return "meta";
    case SnapshotSection::kNodeTimings: return "node-timings";
    case SnapshotSection::kWorstPaths: return "worst-paths";
    case SnapshotSection::kCaptureSlacks: return "capture-slacks";
    case SnapshotSection::kNameIndex: return "name-index";
    case SnapshotSection::kHoldPairs: return "hold-pairs";
    case SnapshotSection::kConstraints: return "constraints";
    case SnapshotSection::kCorners: return "corners";
  }
  return "unknown";
}

namespace {

const char* section_name_of(std::uint32_t kind) {
  return kind < kNumSnapshotSections
             ? snapshot_section_name(static_cast<SnapshotSection>(kind))
             : "unknown";
}

// Little-endian encoding primitives and the bounds-checked Reader live in
// service/snapshot_codec.hpp, shared with SnapshotView and protocol v2.

bool valid_status(std::uint8_t v) { return v <= 2; }

// ---------------------------------------------------------------------------
// Per-section payloads.

std::string encode_meta(const AnalysisSnapshot& s) {
  std::string p;
  put_str(p, s.design_name);
  put_u64(p, s.id);
  put_u8(p, static_cast<std::uint8_t>(s.status));
  put_u8(p, s.works_as_intended ? 1 : 0);
  put_i64(p, s.worst_slack);
  put_u64(p, s.num_terminals);
  put_u64(p, s.num_violations);
  put_u8(p, s.has_hold ? 1 : 0);
  put_u8(p, s.has_constraints ? 1 : 0);
  put_u8(p, static_cast<std::uint8_t>(s.constraints_status));
  put_u32(p, static_cast<std::uint32_t>(s.backward_snatch_cycles));
  put_u32(p, static_cast<std::uint32_t>(s.forward_snatch_cycles));
  return p;
}

bool decode_meta(std::string_view payload, AnalysisSnapshot& s) {
  Reader r = reader_of(payload);
  s.design_name = r.str();
  s.id = r.u64();
  const std::uint8_t status = r.u8();
  s.works_as_intended = r.u8() != 0;
  s.worst_slack = r.i64();
  s.num_terminals = static_cast<std::size_t>(r.u64());
  s.num_violations = static_cast<std::size_t>(r.u64());
  s.has_hold = r.u8() != 0;
  s.has_constraints = r.u8() != 0;
  const std::uint8_t cstatus = r.u8();
  s.backward_snatch_cycles = static_cast<std::int32_t>(r.u32());
  s.forward_snatch_cycles = static_cast<std::int32_t>(r.u32());
  if (r.fail || r.remaining() != 0) return false;
  if (!valid_status(status) || !valid_status(cstatus)) return false;
  s.status = static_cast<AnalysisStatus>(status);
  s.constraints_status = static_cast<AnalysisStatus>(cstatus);
  return true;
}

std::string encode_node_timings(const AnalysisSnapshot& s) {
  std::string p;
  put_u64(p, s.nodes.size());
  for (const NodeTiming& nt : s.nodes) {
    put_i64(p, nt.slack);
    put_i64(p, nt.ready.rise);
    put_i64(p, nt.ready.fall);
    put_i64(p, nt.required.rise);
    put_i64(p, nt.required.fall);
    put_u8(p, nt.has_ready ? 1 : 0);
    put_u8(p, nt.has_constraint ? 1 : 0);
    put_u32(p, static_cast<std::uint32_t>(nt.settling_count));
  }
  return p;
}

bool decode_node_timings(std::string_view payload, AnalysisSnapshot& s) {
  Reader r = reader_of(payload);
  const std::uint64_t count = r.u64();
  s.nodes.clear();
  if (count <= r.remaining()) s.nodes.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count && !r.fail; ++i) {
    NodeTiming nt;
    nt.slack = r.i64();
    nt.ready.rise = r.i64();
    nt.ready.fall = r.i64();
    nt.required.rise = r.i64();
    nt.required.fall = r.i64();
    nt.has_ready = r.u8() != 0;
    nt.has_constraint = r.u8() != 0;
    nt.settling_count = static_cast<int>(r.u32());
    if (!r.fail) s.nodes.push_back(nt);
  }
  return !r.fail && s.nodes.size() == count && r.remaining() == 0;
}

std::string encode_paths(const AnalysisSnapshot& s) {
  std::string p;
  put_u64(p, s.paths.size());
  for (const SnapshotPath& sp : s.paths) {
    put_i64(p, sp.slack);
    put_str(p, sp.launch);
    put_str(p, sp.capture);
    put_str(p, sp.from);
    put_str(p, sp.to);
    put_u64(p, sp.steps);
  }
  return p;
}

bool decode_paths(std::string_view payload, AnalysisSnapshot& s) {
  Reader r = reader_of(payload);
  const std::uint64_t count = r.u64();
  s.paths.clear();
  if (count <= r.remaining()) s.paths.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count && !r.fail; ++i) {
    SnapshotPath sp;
    sp.slack = r.i64();
    sp.launch = r.str();
    sp.capture = r.str();
    sp.from = r.str();
    sp.to = r.str();
    sp.steps = static_cast<std::size_t>(r.u64());
    if (!r.fail) s.paths.push_back(std::move(sp));
  }
  return !r.fail && s.paths.size() == count && r.remaining() == 0;
}

std::string encode_capture_slacks(const AnalysisSnapshot& s) {
  std::string p;
  put_u64(p, s.capture_slacks.size());
  for (const TimePs t : s.capture_slacks) put_i64(p, t);
  return p;
}

bool decode_capture_slacks(std::string_view payload, AnalysisSnapshot& s) {
  Reader r = reader_of(payload);
  const std::uint64_t count = r.u64();
  s.capture_slacks.clear();
  if (count * 8 == r.remaining()) {
    s.capture_slacks.reserve(static_cast<std::size_t>(count));
  }
  for (std::uint64_t i = 0; i < count && !r.fail; ++i) {
    const TimePs t = r.i64();
    if (!r.fail) s.capture_slacks.push_back(t);
  }
  return !r.fail && s.capture_slacks.size() == count && r.remaining() == 0;
}

std::string encode_name_index(const AnalysisSnapshot& s) {
  std::string p;
  const NameIndex& idx = *s.names;
  put_u64(p, idx.node_names.size());
  for (const std::string& n : idx.node_names) put_str(p, n);
  // Instance pin tables in sorted-name order: the unordered_map's iteration
  // order must never leak into the image (byte-stability).
  std::vector<const std::string*> keys;
  keys.reserve(idx.inst_pins.size());
  for (const auto& [name, pins] : idx.inst_pins) keys.push_back(&name);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  put_u64(p, keys.size());
  for (const std::string* key : keys) {
    put_str(p, *key);
    const auto& pins = idx.inst_pins.at(*key);
    put_u64(p, pins.size());
    for (const auto& [pin, node] : pins) {
      put_str(p, pin);
      put_u32(p, node);
    }
  }
  return p;
}

bool decode_name_index(std::string_view payload, AnalysisSnapshot& s) {
  Reader r = reader_of(payload);
  auto idx = std::make_shared<NameIndex>();
  const std::uint64_t nodes = r.u64();
  if (nodes <= r.remaining()) {
    idx->node_names.reserve(static_cast<std::size_t>(nodes));
  }
  for (std::uint64_t i = 0; i < nodes && !r.fail; ++i) {
    std::string n = r.str();
    if (!r.fail) idx->node_names.push_back(std::move(n));
  }
  if (r.fail || idx->node_names.size() != nodes) return false;
  // node_by_name is derived, never serialised: rebuild it here so the
  // loaded index answers lookups exactly like the freshly built one.
  idx->node_by_name.reserve(idx->node_names.size());
  for (std::size_t i = 0; i < idx->node_names.size(); ++i) {
    idx->node_by_name.emplace(idx->node_names[i],
                              static_cast<std::uint32_t>(i));
  }
  const std::uint64_t insts = r.u64();
  for (std::uint64_t i = 0; i < insts && !r.fail; ++i) {
    std::string name = r.str();
    const std::uint64_t pins = r.u64();
    if (r.fail) break;
    auto& slot = idx->inst_pins[name];
    if (pins <= r.remaining()) slot.reserve(static_cast<std::size_t>(pins));
    for (std::uint64_t pi = 0; pi < pins && !r.fail; ++pi) {
      std::string pin = r.str();
      const std::uint32_t node = r.u32();
      if (!r.fail) slot.emplace_back(std::move(pin), node);
    }
    if (!r.fail && slot.size() != pins) return false;
  }
  if (r.fail || idx->inst_pins.size() != insts || r.remaining() != 0) {
    return false;
  }
  s.names = std::move(idx);
  return true;
}

std::string encode_hold_pairs(const AnalysisSnapshot& s) {
  std::string p;
  put_u64(p, s.hold_pairs.size());
  for (const SnapshotHoldPair& hp : s.hold_pairs) {
    put_u32(p, hp.launch);
    put_u32(p, hp.capture);
    put_i64(p, hp.margin);
    put_str(p, hp.launch_label);
    put_str(p, hp.capture_label);
  }
  return p;
}

bool decode_hold_pairs(std::string_view payload, AnalysisSnapshot& s) {
  Reader r = reader_of(payload);
  const std::uint64_t count = r.u64();
  s.hold_pairs.clear();
  if (count <= r.remaining()) {
    s.hold_pairs.reserve(static_cast<std::size_t>(count));
  }
  for (std::uint64_t i = 0; i < count && !r.fail; ++i) {
    SnapshotHoldPair hp;
    hp.launch = r.u32();
    hp.capture = r.u32();
    hp.margin = r.i64();
    hp.launch_label = r.str();
    hp.capture_label = r.str();
    if (!r.fail) s.hold_pairs.push_back(std::move(hp));
  }
  return !r.fail && s.hold_pairs.size() == count && r.remaining() == 0;
}

std::string encode_constraints(const AnalysisSnapshot& s) {
  std::string p;
  put_u64(p, s.constraint_nodes.size());
  for (const ConstraintTimes& ct : s.constraint_nodes) {
    put_u8(p, ct.has_ready ? 1 : 0);
    put_u8(p, ct.has_required ? 1 : 0);
    put_i64(p, ct.ready.rise);
    put_i64(p, ct.ready.fall);
    put_i64(p, ct.required.rise);
    put_i64(p, ct.required.fall);
    put_i64(p, ct.slack);
  }
  return p;
}

bool decode_constraints(std::string_view payload, AnalysisSnapshot& s) {
  Reader r = reader_of(payload);
  const std::uint64_t count = r.u64();
  s.constraint_nodes.clear();
  if (count <= r.remaining()) {
    s.constraint_nodes.reserve(static_cast<std::size_t>(count));
  }
  for (std::uint64_t i = 0; i < count && !r.fail; ++i) {
    ConstraintTimes ct;
    ct.has_ready = r.u8() != 0;
    ct.has_required = r.u8() != 0;
    ct.ready.rise = r.i64();
    ct.ready.fall = r.i64();
    ct.required.rise = r.i64();
    ct.required.fall = r.i64();
    ct.slack = r.i64();
    if (!r.fail) s.constraint_nodes.push_back(ct);
  }
  return !r.fail && s.constraint_nodes.size() == count && r.remaining() == 0;
}

std::string encode_corners(const AnalysisSnapshot& s) {
  std::string p;
  put_u8(p, s.has_corners ? 1 : 0);
  put_u32(p, s.worst_corner);
  put_u64(p, s.corners.size());
  for (const SnapshotCorner& c : s.corners) {
    put_str(p, c.name);
    put_u32(p, c.derate_pm);
    put_u32(p, c.wire_pm);
    put_i64(p, c.worst_slack);
    put_u64(p, c.num_violations);
    put_u64(p, c.node_slacks.size());
    for (const TimePs t : c.node_slacks) put_i64(p, t);
    put_u64(p, c.capture_slacks.size());
    for (const TimePs t : c.capture_slacks) put_i64(p, t);
    put_u64(p, c.paths.size());
    for (const SnapshotPath& sp : c.paths) {
      put_i64(p, sp.slack);
      put_str(p, sp.launch);
      put_str(p, sp.capture);
      put_str(p, sp.from);
      put_str(p, sp.to);
      put_u64(p, sp.steps);
    }
    put_u8(p, c.has_hold ? 1 : 0);
    put_u64(p, c.hold_pairs.size());
    for (const SnapshotHoldPair& hp : c.hold_pairs) {
      put_u32(p, hp.launch);
      put_u32(p, hp.capture);
      put_i64(p, hp.margin);
      put_str(p, hp.launch_label);
      put_str(p, hp.capture_label);
    }
  }
  return p;
}

bool decode_corners(std::string_view payload, AnalysisSnapshot& s) {
  Reader r = reader_of(payload);
  s.has_corners = r.u8() != 0;
  s.worst_corner = r.u32();
  const std::uint64_t count = r.u64();
  s.corners.clear();
  if (count <= r.remaining()) s.corners.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count && !r.fail; ++i) {
    SnapshotCorner c;
    c.name = r.str();
    c.derate_pm = r.u32();
    c.wire_pm = r.u32();
    c.worst_slack = r.i64();
    c.num_violations = static_cast<std::size_t>(r.u64());
    const std::uint64_t nn = r.u64();
    if (nn <= r.remaining()) {
      c.node_slacks.reserve(static_cast<std::size_t>(nn));
    }
    for (std::uint64_t j = 0; j < nn && !r.fail; ++j) {
      const TimePs t = r.i64();
      if (!r.fail) c.node_slacks.push_back(t);
    }
    if (r.fail || c.node_slacks.size() != nn) return false;
    // One slack per graph node — keyed by the same TNodeId index as the
    // node-timings section, which decodes before this one.
    if (c.node_slacks.size() != s.nodes.size()) return false;
    const std::uint64_t ns = r.u64();
    if (ns <= r.remaining()) {
      c.capture_slacks.reserve(static_cast<std::size_t>(ns));
    }
    for (std::uint64_t j = 0; j < ns && !r.fail; ++j) {
      const TimePs t = r.i64();
      if (!r.fail) c.capture_slacks.push_back(t);
    }
    if (r.fail || c.capture_slacks.size() != ns) return false;
    const std::uint64_t np = r.u64();
    if (np <= r.remaining()) c.paths.reserve(static_cast<std::size_t>(np));
    for (std::uint64_t j = 0; j < np && !r.fail; ++j) {
      SnapshotPath sp;
      sp.slack = r.i64();
      sp.launch = r.str();
      sp.capture = r.str();
      sp.from = r.str();
      sp.to = r.str();
      sp.steps = static_cast<std::size_t>(r.u64());
      if (!r.fail) c.paths.push_back(std::move(sp));
    }
    if (r.fail || c.paths.size() != np) return false;
    c.has_hold = r.u8() != 0;
    const std::uint64_t nh = r.u64();
    if (nh <= r.remaining()) c.hold_pairs.reserve(static_cast<std::size_t>(nh));
    for (std::uint64_t j = 0; j < nh && !r.fail; ++j) {
      SnapshotHoldPair hp;
      hp.launch = r.u32();
      hp.capture = r.u32();
      hp.margin = r.i64();
      hp.launch_label = r.str();
      hp.capture_label = r.str();
      if (!r.fail) c.hold_pairs.push_back(std::move(hp));
    }
    if (r.fail || c.hold_pairs.size() != nh) return false;
    s.corners.push_back(std::move(c));
  }
  if (r.fail || s.corners.size() != count || r.remaining() != 0) return false;
  // The flag, the index and the list must agree — a snapshot may omit
  // corners entirely, but never half-describe them.
  if (s.has_corners != !s.corners.empty()) return false;
  if (s.has_corners && s.worst_corner >= s.corners.size()) return false;
  if (!s.has_corners && s.worst_corner != 0) return false;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Image assembly / parsing.

std::string serialize_snapshot(const AnalysisSnapshot& snap) {
  return serialize_snapshot(snap, nullptr);
}

std::string serialize_snapshot(const AnalysisSnapshot& snap,
                               std::vector<SnapshotSectionInfo>* sections_out) {
  std::string payloads[kNumSnapshotSections];
  payloads[0] = encode_meta(snap);
  payloads[1] = encode_node_timings(snap);
  payloads[2] = encode_paths(snap);
  payloads[3] = encode_capture_slacks(snap);
  payloads[4] = encode_name_index(snap);
  payloads[5] = encode_hold_pairs(snap);
  payloads[6] = encode_constraints(snap);
  payloads[7] = encode_corners(snap);

  if (sections_out != nullptr) sections_out->clear();
  std::string image;
  std::size_t total = 12;
  for (const std::string& p : payloads) total += 20 + p.size();
  image.reserve(total);
  put_u32(image, kSnapshotMagic);
  put_u32(image, kSnapshotFormatVersion);
  put_u32(image, kNumSnapshotSections);
  for (std::uint32_t kind = 0; kind < kNumSnapshotSections; ++kind) {
    const std::string& p = payloads[kind];
    SnapshotSectionInfo info;
    info.kind = kind;
    info.header_offset = image.size();
    info.checksum = snapshot_checksum(p.data(), p.size(), kind);
    put_u32(image, kind);
    put_u64(image, p.size());
    put_u64(image, info.checksum);
    info.payload_offset = image.size();
    info.payload_size = p.size();
    image.append(p);
    if (sections_out != nullptr) sections_out->push_back(info);
  }
  return image;
}

SnapshotParse parse_snapshot(std::string_view bytes) {
  SnapshotParse out;
  auto corrupt = [&out](std::string msg) -> SnapshotParse& {
    out.code = DiagCode::kSnapshotCorrupt;
    out.error = std::move(msg);
    out.snapshot = nullptr;
    return out;
  };

  Reader r = reader_of(bytes);
  if (!r.need(12)) return corrupt("image shorter than the 12-byte header");
  const std::uint32_t magic = r.u32();
  if (magic != kSnapshotMagic) return corrupt("bad magic (not a snapshot image)");
  out.version = r.u32();
  if (out.version < kSnapshotMinFormatVersion ||
      out.version > kSnapshotFormatVersion) {
    out.code = DiagCode::kSnapshotVersionSkew;
    out.error = "format version " + std::to_string(out.version) +
                ", this build reads versions " +
                std::to_string(kSnapshotMinFormatVersion) + ".." +
                std::to_string(kSnapshotFormatVersion);
    return out;
  }
  const std::uint32_t num_sections = r.u32();

  std::string_view payloads[kNumSnapshotSections];
  bool seen[kNumSnapshotSections] = {};
  for (std::uint32_t i = 0; i < num_sections; ++i) {
    SnapshotSectionInfo info;
    info.header_offset = r.pos;
    if (!r.need(20)) return corrupt("truncated section header");
    info.kind = r.u32();
    const std::uint64_t len = r.u64();
    info.checksum = r.u64();
    if (len > r.remaining()) {
      return corrupt(std::string("truncated payload of section ") +
                     section_name_of(info.kind));
    }
    info.payload_offset = r.pos;
    info.payload_size = static_cast<std::size_t>(len);
    const std::string_view payload =
        bytes.substr(r.pos, static_cast<std::size_t>(len));
    r.pos += static_cast<std::size_t>(len);
    out.sections.push_back(info);
    if (snapshot_checksum(payload.data(), payload.size(), info.kind) !=
        info.checksum) {
      return corrupt(std::string("checksum mismatch in section ") +
                     section_name_of(info.kind));
    }
    if (info.kind < kNumSnapshotSections) {
      if (seen[info.kind]) {
        return corrupt(std::string("duplicate section ") +
                       section_name_of(info.kind));
      }
      seen[info.kind] = true;
      payloads[info.kind] = payload;
    }
    // Unknown kinds are checksum-verified and skipped.
  }
  if (r.remaining() != 0) return corrupt("trailing bytes after last section");
  for (std::uint32_t k = 0; k < kNumSnapshotSections; ++k) {
    // Version-1 images predate the corners section; everything else is
    // mandatory in every version.
    if (out.version < 2 && k == static_cast<std::uint32_t>(SnapshotSection::kCorners)) {
      continue;
    }
    if (!seen[k]) {
      return corrupt(std::string("missing section ") + section_name_of(k));
    }
  }

  auto snap = std::make_shared<AnalysisSnapshot>();
  struct SectionDecoder {
    SnapshotSection kind;
    bool (*decode)(std::string_view, AnalysisSnapshot&);
  };
  const SectionDecoder decoders[] = {
      {SnapshotSection::kMeta, decode_meta},
      {SnapshotSection::kNodeTimings, decode_node_timings},
      {SnapshotSection::kWorstPaths, decode_paths},
      {SnapshotSection::kCaptureSlacks, decode_capture_slacks},
      {SnapshotSection::kNameIndex, decode_name_index},
      {SnapshotSection::kHoldPairs, decode_hold_pairs},
      {SnapshotSection::kConstraints, decode_constraints},
      {SnapshotSection::kCorners, decode_corners},
  };
  for (const SectionDecoder& d : decoders) {
    const auto kind = static_cast<std::uint32_t>(d.kind);
    if (!seen[kind]) continue;  // absent kCorners in a version-1 image
    if (!d.decode(payloads[kind], *snap)) {
      return corrupt(std::string("undecodable section ") +
                     snapshot_section_name(d.kind));
    }
  }
  out.snapshot = std::move(snap);
  return out;
}

// ---------------------------------------------------------------------------
// The store.

namespace {

constexpr const char* kSnapshotSuffix = ".hbss";

/// Design name reduced to a filesystem-safe stem: anything outside
/// [A-Za-z0-9_-] becomes '_' ('.' included — it delimits the generation).
std::string sanitize_design(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "design";
  return out;
}

/// Split "<stem>.<generation>.hbss"; false for anything else (temp files,
/// quarantined files, foreign files).
bool parse_file_name(const std::string& name, std::string* stem,
                     std::uint64_t* generation) {
  const std::size_t suffix_len = std::strlen(kSnapshotSuffix);
  if (name.size() <= suffix_len || name.front() == '.' ||
      name.compare(name.size() - suffix_len, suffix_len, kSnapshotSuffix) != 0) {
    return false;
  }
  const std::string base = name.substr(0, name.size() - suffix_len);
  const std::size_t dot = base.rfind('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= base.size()) {
    return false;
  }
  std::uint64_t gen = 0;
  for (std::size_t i = dot + 1; i < base.size(); ++i) {
    if (base[i] < '0' || base[i] > '9') return false;
    gen = gen * 10 + static_cast<std::uint64_t>(base[i] - '0');
  }
  *stem = base.substr(0, dot);
  *generation = gen;
  return true;
}

bool write_file_synced(const std::string& path, const std::string& bytes,
                       std::string* error) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    *error = "open '" + path + "': " + std::strerror(errno);
    return false;
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = "write '" + path + "': " + std::strerror(errno);
      ::close(fd);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    *error = "fsync '" + path + "': " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::close(fd) != 0) {
    *error = "close '" + path + "': " + std::strerror(errno);
    return false;
  }
  return true;
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // durability best-effort; the rename itself succeeded
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

SnapshotStore::SnapshotStore(Options options) : options_(std::move(options)) {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec || !fs::is_directory(options_.dir)) {
    raise("snapshot store: cannot create directory '" + options_.dir + "'" +
          (ec ? ": " + ec.message() : std::string()));
  }
  for (const FileEntry& e : scan_locked()) {
    next_generation_ = std::max(next_generation_, e.generation + 1);
  }
}

std::vector<SnapshotStore::FileEntry> SnapshotStore::scan_locked() const {
  std::vector<FileEntry> out;
  std::error_code ec;
  for (fs::directory_iterator it(options_.dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    FileEntry e;
    if (!parse_file_name(it->path().filename().string(), &e.stem,
                         &e.generation)) {
      continue;
    }
    e.path = it->path().string();
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(), [](const FileEntry& a, const FileEntry& b) {
    return a.generation < b.generation;
  });
  return out;
}

void SnapshotStore::retain_locked(const std::string& stem) {
  std::vector<FileEntry> mine;
  for (FileEntry& e : scan_locked()) {
    if (e.stem == stem) mine.push_back(std::move(e));
  }
  // scan_locked sorts oldest-first; drop from the front.
  std::error_code ec;
  for (std::size_t i = 0; i + options_.retain < mine.size(); ++i) {
    fs::remove(mine[i].path, ec);
  }
}

SnapshotStore::SaveResult SnapshotStore::save(const AnalysisSnapshot& snap) {
  std::lock_guard<std::mutex> lock(mutex_);
  SaveResult res;
  std::vector<SnapshotSectionInfo> sections;
  std::string image = serialize_snapshot(snap, &sections);

  // Deterministic corruption of the in-memory image, so the injected fault
  // lands on disk through the normal (crash-safe) write path and must be
  // caught by load-time validation.
  FaultInjector& fi = FaultInjector::instance();
  if (fi.should_fire(FaultSite::kSnapshotStaleVersion) && image.size() >= 8) {
    const auto v = kSnapshotFormatVersion + 1 +
                   static_cast<std::uint32_t>(
                       fi.draw(FaultSite::kSnapshotStaleVersion) % 7);
    for (int i = 0; i < 4; ++i) {
      image[4 + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
  }
  if (fi.should_fire(FaultSite::kSnapshotBitFlip) && !image.empty()) {
    const std::uint64_t bit =
        fi.draw(FaultSite::kSnapshotBitFlip) % (image.size() * 8);
    image[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  }
  if (fi.should_fire(FaultSite::kSnapshotShortWrite) && !image.empty()) {
    image.resize(fi.draw(FaultSite::kSnapshotShortWrite) % image.size());
  }

  const std::string stem = sanitize_design(snap.design_name);
  res.generation = next_generation_++;
  const std::string final_name =
      stem + "." + std::to_string(res.generation) + kSnapshotSuffix;
  const std::string tmp_path =
      (fs::path(options_.dir) / ("." + final_name + ".tmp")).string();
  const std::string final_path =
      (fs::path(options_.dir) / final_name).string();

  std::string err;
  if (!write_file_synced(tmp_path, image, &err)) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    ++save_failures_;
    res.code = DiagCode::kSnapshotIo;
    res.error = err;
    return res;
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    err = "rename '" + tmp_path + "': " + std::strerror(errno);
    std::error_code ec;
    fs::remove(tmp_path, ec);
    ++save_failures_;
    res.code = DiagCode::kSnapshotIo;
    res.error = err;
    return res;
  }
  fsync_dir(options_.dir);
  retain_locked(stem);
  ++saves_;
  // Section frames of the image as serialised (pre-fault-injection sizes
  // still describe the layout; injected faults only perturb test runs).
  last_save_sections_ = std::move(sections);
  last_save_bytes_ = image.size();
  res.ok = true;
  res.path = final_path;
  return res;
}

std::vector<SnapshotSectionInfo> SnapshotStore::last_save_sections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_save_sections_;
}

std::size_t SnapshotStore::last_save_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_save_bytes_;
}

SnapshotStore::LoadResult SnapshotStore::load_newest(const std::string& design) {
  std::lock_guard<std::mutex> lock(mutex_);
  LoadResult res;
  const std::string stem = design.empty() ? std::string() : sanitize_design(design);

  std::vector<FileEntry> entries = scan_locked();
  if (!stem.empty()) {
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&stem](const FileEntry& e) {
                                   return e.stem != stem;
                                 }),
                  entries.end());
  }
  std::reverse(entries.begin(), entries.end());  // newest generation first

  DiagCode last_code = DiagCode::kSnapshotMissing;
  std::string last_error;
  for (const FileEntry& e : entries) {
    std::ifstream in(e.path, std::ios::binary);
    if (!in) {
      last_code = DiagCode::kSnapshotIo;
      last_error = "cannot read '" + e.path + "'";
      continue;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    SnapshotParse p = parse_snapshot(bytes);
    if (!p.ok()) {
      // Quarantine: keep the file for post-mortems, but never retry it.
      std::error_code ec;
      fs::rename(e.path, e.path + ".quarantined", ec);
      ++rejected_;
      ++res.rejected;
      last_code = p.code;
      last_error =
          fs::path(e.path).filename().string() + ": " + p.error;
      continue;
    }
    if (!design.empty() && p.snapshot->design_name != design) {
      continue;  // stem collision with another design; not corruption
    }
    res.snapshot = std::move(p.snapshot);
    res.path = e.path;
    res.generation = e.generation;
    res.design = res.snapshot->design_name;
    break;
  }

  if (res.rejected > 0) ++self_heals_;
  if (res.ok()) {
    ++loads_;
  } else {
    res.code = last_code;
    res.error = !last_error.empty()
                    ? last_error
                    : (design.empty()
                           ? std::string("store has no snapshots")
                           : "no snapshot for design '" + design + "'");
  }
  return res;
}

SnapshotStore::SourceResult SnapshotStore::load_newest_source(
    const std::string& design) {
  std::lock_guard<std::mutex> lock(mutex_);
  SourceResult res;
  const std::string stem =
      design.empty() ? std::string() : sanitize_design(design);

  std::vector<FileEntry> entries = scan_locked();
  if (!stem.empty()) {
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&stem](const FileEntry& e) {
                                   return e.stem != stem;
                                 }),
                  entries.end());
  }
  std::reverse(entries.begin(), entries.end());  // newest generation first

  DiagCode last_code = DiagCode::kSnapshotMissing;
  std::string last_error;
  for (const FileEntry& e : entries) {
    // Fast path: mmap the image into a zero-copy view.
    SnapshotView::MapResult m = SnapshotView::map_file(e.path);
    if (m.ok()) {
      if (!design.empty() && m.view->design_name() != design) {
        continue;  // stem collision with another design; not corruption
      }
      res.sections = m.view->sections();
      res.image_bytes = m.view->image_bytes();
      res.design = std::string(m.view->design_name());
      res.source = std::move(m.view);
      res.mapped = true;
      res.path = e.path;
      res.generation = e.generation;
      break;
    }
    // Fallback: decode a copy.  parse_snapshot is the arbiter of validity —
    // a file is quarantined only when the parser rejects it too, so the
    // recovery semantics match load_newest exactly (a version-1 image or a
    // non-canonical-but-parseable layout loads here, just without the map).
    std::ifstream in(e.path, std::ios::binary);
    if (!in) {
      last_code = DiagCode::kSnapshotIo;
      last_error = "cannot read '" + e.path + "'";
      continue;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    SnapshotParse p = parse_snapshot(bytes);
    if (!p.ok()) {
      std::error_code ec;
      fs::rename(e.path, e.path + ".quarantined", ec);
      ++rejected_;
      ++res.rejected;
      last_code = p.code;
      last_error = fs::path(e.path).filename().string() + ": " + p.error;
      continue;
    }
    if (!design.empty() && p.snapshot->design_name != design) {
      continue;
    }
    res.snapshot = std::move(p.snapshot);
    res.source = std::make_shared<SnapshotCopySource>(res.snapshot);
    res.mapped = false;
    res.sections = std::move(p.sections);
    res.image_bytes = bytes.size();
    res.path = e.path;
    res.generation = e.generation;
    res.design = res.snapshot->design_name;
    break;
  }

  if (res.rejected > 0) ++self_heals_;
  if (res.ok()) {
    ++loads_;
  } else {
    res.code = last_code;
    res.error = !last_error.empty()
                    ? last_error
                    : (design.empty()
                           ? std::string("store has no snapshots")
                           : "no snapshot for design '" + design + "'");
  }
  return res;
}

std::vector<std::string> SnapshotStore::designs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const FileEntry& e : scan_locked()) {
    if (std::find(out.begin(), out.end(), e.stem) == out.end()) {
      out.push_back(e.stem);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint64_t> SnapshotStore::generations(
    const std::string& design) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string stem = sanitize_design(design);
  std::vector<std::uint64_t> out;
  for (const FileEntry& e : scan_locked()) {
    if (e.stem == stem) out.push_back(e.generation);
  }
  return out;
}

}  // namespace hb
