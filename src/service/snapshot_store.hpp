// Crash-safe persistent snapshot store — the warm-restart tier of the
// query service (docs/SERVICE.md "Persistence & warm restart").
//
// An AnalysisSnapshot is serialised to a versioned binary image: a fixed
// header (magic, format version, section count) followed by framed
// sections, each carrying its own length and xxhash-style 64-bit checksum
// seeded by the section kind.  The parser is bounds-checked end to end and
// never trusts a length field, so arbitrary bytes — truncated files, bit
// flips, fuzzer output — produce a structured DiagCode instead of a crash
// (tests/snapshot_store_test.cpp, the fixed-seed fuzz CI job).
//
// Writes are crash-safe: the image lands in a dot-prefixed temp file that
// is fsync'ed, atomically renamed to `<design>.<generation>.hbss`, and the
// directory entry is fsync'ed too — a crash at any instant leaves either
// the old generation set or the new one, never a torn file under a live
// name.  Generations are monotone across the whole store; bounded
// retention deletes the oldest files per design beyond `retain`.
//
// Recovery contract (docs/ROBUSTNESS.md): load_newest() walks generations
// newest-first, quarantines every invalid file by renaming it to
// `<name>.quarantined` (it is never retried, but kept for post-mortems)
// and falls back to the next older generation; when nothing valid remains
// the caller degrades to a cold start.  Every quarantine increments
// `snapshots_rejected`; every load that had to skip at least one file
// increments `self_heals` — whether or not an older generation saved it.
//
// Fault injection (util/faultinject): save() perturbs the in-memory image
// before it reaches disk — kSnapshotShortWrite truncates it,
// kSnapshotBitFlip flips one deterministic bit, kSnapshotStaleVersion
// stamps a future format version — so the whole detect/quarantine/degrade
// path is exercised deterministically without real disk corruption.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "service/snapshot.hpp"
#include "service/snapshot_source.hpp"

namespace hb {

/// "HBSS" big-endian in the first four image bytes.
inline constexpr std::uint32_t kSnapshotMagic = 0x48425353u;
/// Bump on any incompatible layout change; newer files are rejected with
/// kSnapshotVersionSkew (never mis-decoded).  Version 2 added the corners
/// section; version-1 images (pre-corner) still load, with
/// has_corners == false.
inline constexpr std::uint32_t kSnapshotFormatVersion = 2;
/// Oldest format this build still decodes.
inline constexpr std::uint32_t kSnapshotMinFormatVersion = 1;

/// Section kinds, in serialisation order.  The checksum of each section is
/// seeded by its kind, so a corrupted kind field can never validate.
enum class SnapshotSection : std::uint32_t {
  kMeta = 0,           // identity, status words, counters, capture flags
  kNodeTimings = 1,    // NodeTiming per graph node
  kWorstPaths = 2,     // pre-rendered worst paths
  kCaptureSlacks = 3,  // histogram input
  kNameIndex = 4,      // node names + instance pin tables (sorted)
  kHoldPairs = 5,      // hold-sweep inputs (check_hold serving data)
  kConstraints = 6,    // Algorithm 2 constraint times
  kCorners = 7,        // per-corner results (version >= 2)
};
inline constexpr std::uint32_t kNumSnapshotSections = 8;

const char* snapshot_section_name(SnapshotSection s);

/// xxhash64-style checksum of `len` bytes (XXH64 constants, one-shot).
std::uint64_t snapshot_checksum(const void* data, std::size_t len,
                                std::uint64_t seed);

/// Serialise a snapshot to its canonical image.  Byte-stable: the same
/// analysis state always produces the same bytes (maps are emitted in
/// sorted order; derived tables such as node_by_name are not serialised).
std::string serialize_snapshot(const AnalysisSnapshot& snap);

struct SnapshotSectionInfo;

/// As above, and also report the section frames of the produced image
/// (the `snapshot stat` per-section byte sizes).
std::string serialize_snapshot(const AnalysisSnapshot& snap,
                               std::vector<SnapshotSectionInfo>* sections_out);

/// Frame of one section inside an image, as laid down by the serialiser —
/// exposed so tests can corrupt images at exact section boundaries.
struct SnapshotSectionInfo {
  std::uint32_t kind = 0;
  std::size_t header_offset = 0;   // first byte of the section frame
  std::size_t payload_offset = 0;  // first payload byte
  std::size_t payload_size = 0;
  std::uint64_t checksum = 0;      // stored checksum
};

struct SnapshotParse {
  /// Decoded snapshot; null when the image was rejected.
  std::shared_ptr<AnalysisSnapshot> snapshot;
  /// kSnapshotCorrupt / kSnapshotVersionSkew when snapshot == nullptr.
  DiagCode code = DiagCode::kSnapshotCorrupt;
  std::string error;
  std::uint32_t version = 0;  // as read from the header, when readable
  /// Sections scanned before the failure (complete on success).
  std::vector<SnapshotSectionInfo> sections;

  bool ok() const { return snapshot != nullptr; }
};

/// Decode an image.  Safe on arbitrary bytes: every length is bounds-
/// checked, every section checksum verified before its payload is decoded.
SnapshotParse parse_snapshot(std::string_view bytes);

class SnapshotStore {
 public:
  struct Options {
    std::string dir;
    /// Newest generations kept per design; older files are deleted on save.
    std::size_t retain = 4;
  };

  struct SaveResult {
    bool ok = false;
    std::string path;          // final file path (when ok)
    std::uint64_t generation = 0;
    DiagCode code = DiagCode::kSnapshotIo;  // when !ok
    std::string error;
  };

  struct LoadResult {
    std::shared_ptr<const AnalysisSnapshot> snapshot;  // null when nothing valid
    std::string path;
    std::uint64_t generation = 0;
    std::string design;
    /// Files quarantined during this load (corrupt / version-skewed).
    std::size_t rejected = 0;
    DiagCode code = DiagCode::kSnapshotMissing;  // when snapshot == nullptr
    std::string error;

    bool ok() const { return snapshot != nullptr; }
  };

  /// load_newest(), but served through the SnapshotSource interface.  The
  /// fast path mmaps the image into a zero-copy SnapshotView; images the
  /// view cannot serve (format version 1, non-canonical layouts) fall back
  /// to the decoded copy path with `mapped == false`.  Quarantine decisions
  /// are governed by parse_snapshot exactly as in load_newest: a file is
  /// quarantined only when the parser rejects it too.
  struct SourceResult {
    std::shared_ptr<const SnapshotSource> source;  // null when nothing valid
    /// Set when the copy fallback decoded the image (mapped == false).
    std::shared_ptr<const AnalysisSnapshot> snapshot;
    bool mapped = false;
    std::vector<SnapshotSectionInfo> sections;
    std::size_t image_bytes = 0;
    std::string path;
    std::uint64_t generation = 0;
    std::string design;
    std::size_t rejected = 0;
    DiagCode code = DiagCode::kSnapshotMissing;  // when source == nullptr
    std::string error;

    bool ok() const { return source != nullptr; }
  };

  /// Opens (and creates, if needed) the store directory and scans existing
  /// generation numbers.  Throws hb::Error only when the directory can
  /// neither be created nor read.
  explicit SnapshotStore(Options options);

  /// Serialise and persist one snapshot under the next generation number.
  /// Thread-safe; crash-safe (temp file + fsync + atomic rename).
  SaveResult save(const AnalysisSnapshot& snap);

  /// Newest valid snapshot for `design` — or, with an empty argument, for
  /// whichever design owns the newest valid generation in the store.
  /// Invalid files encountered on the way are quarantined (renamed to
  /// `<name>.quarantined`) and counted.
  LoadResult load_newest(const std::string& design = std::string());

  /// Newest valid snapshot as a SnapshotSource — mmap'd when possible,
  /// decoded copy otherwise.  Same selection, quarantine and counter
  /// semantics as load_newest.
  SourceResult load_newest_source(const std::string& design = std::string());

  /// Section frames and byte size of the most recent successful save()
  /// (empty before the first save).  The live host's `snapshot stat`
  /// per-section report.
  std::vector<SnapshotSectionInfo> last_save_sections() const;
  std::size_t last_save_bytes() const;

  /// Designs with at least one live (non-quarantined) snapshot file.
  std::vector<std::string> designs() const;
  /// Live generation numbers for one design, oldest first.
  std::vector<std::uint64_t> generations(const std::string& design) const;

  const std::string& dir() const { return options_.dir; }
  std::size_t retain() const { return options_.retain; }

  // Monotone counters since construction (the `snapshot stat` payload).
  // Relaxed atomics: written under mutex_, readable from any thread.
  std::uint64_t saves() const { return saves_.load(std::memory_order_relaxed); }
  std::uint64_t save_failures() const {
    return save_failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t loads() const { return loads_.load(std::memory_order_relaxed); }
  std::uint64_t snapshots_rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  std::uint64_t self_heals() const {
    return self_heals_.load(std::memory_order_relaxed);
  }

 private:
  struct FileEntry {
    std::string path;
    std::string stem;  // sanitised design component
    std::uint64_t generation = 0;
  };

  std::vector<FileEntry> scan_locked() const;
  void retain_locked(const std::string& stem);

  Options options_;
  mutable std::mutex mutex_;
  std::uint64_t next_generation_ = 1;
  std::vector<SnapshotSectionInfo> last_save_sections_;
  std::size_t last_save_bytes_ = 0;
  std::atomic<std::uint64_t> saves_{0};
  std::atomic<std::uint64_t> save_failures_{0};
  std::atomic<std::uint64_t> loads_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> self_heals_{0};
};

}  // namespace hb
