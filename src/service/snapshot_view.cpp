#include "service/snapshot_view.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <numeric>

#include "service/snapshot_codec.hpp"

namespace hb {
namespace {

const char* section_name_of(std::uint32_t kind) {
  return kind < kNumSnapshotSections
             ? snapshot_section_name(static_cast<SnapshotSection>(kind))
             : "unknown";
}

bool valid_status(std::uint8_t v) { return v <= 2; }

}  // namespace

SnapshotView::~SnapshotView() {
  if (mapping_ != nullptr) ::munmap(mapping_, map_len_);
}

SnapshotView::MapResult SnapshotView::map_file(const std::string& path) {
  MapResult out;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    out.code = DiagCode::kSnapshotIo;
    out.error = "open '" + path + "': " + std::strerror(errno);
    return out;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    out.code = DiagCode::kSnapshotIo;
    out.error = "fstat '" + path + "': " + std::strerror(errno);
    ::close(fd);
    return out;
  }
  const std::size_t len = static_cast<std::size_t>(st.st_size);
  if (len < 12) {
    out.code = DiagCode::kSnapshotCorrupt;
    out.error = "image shorter than the 12-byte header";
    ::close(fd);
    return out;
  }
  void* mem = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mem == MAP_FAILED) {
    out.code = DiagCode::kSnapshotIo;
    out.error = "mmap '" + path + "': " + std::strerror(errno);
    return out;
  }
  return index_bytes(
      std::string_view(static_cast<const char*>(mem), len), mem, len);
}

SnapshotView::MapResult SnapshotView::attach(std::string_view bytes) {
  return index_bytes(bytes, nullptr, 0);
}

SnapshotView::MapResult SnapshotView::index_bytes(std::string_view bytes,
                                                  void* mapping,
                                                  std::size_t map_len) {
  MapResult out;
  // shared_ptr so a warm host can hand the view to any number of reader
  // threads; private ctor, so no make_shared.
  std::shared_ptr<SnapshotView> view(new SnapshotView());
  view->mapping_ = mapping;
  view->map_len_ = map_len;
  if (view->index(bytes, &out.code, &out.error, &out.version)) {
    out.view = std::move(view);
  }
  // A failed view with a mapping still unmaps in its destructor.
  return out;
}

bool SnapshotView::index(std::string_view bytes, DiagCode* code,
                         std::string* error, std::uint32_t* version) {
  data_ = reinterpret_cast<const unsigned char*>(bytes.data());
  size_ = bytes.size();
  auto corrupt = [&](std::string msg) {
    *code = DiagCode::kSnapshotCorrupt;
    *error = std::move(msg);
    return false;
  };

  Reader r = reader_of(bytes);
  if (!r.need(12)) return corrupt("image shorter than the 12-byte header");
  const std::uint32_t magic = r.u32();
  if (magic != kSnapshotMagic) {
    return corrupt("bad magic (not a snapshot image)");
  }
  *version = r.u32();
  if (*version < kSnapshotMinFormatVersion ||
      *version > kSnapshotFormatVersion) {
    *code = DiagCode::kSnapshotVersionSkew;
    *error = "format version " + std::to_string(*version) +
             ", this build reads versions " +
             std::to_string(kSnapshotMinFormatVersion) + ".." +
             std::to_string(kSnapshotFormatVersion);
    return false;
  }
  if (*version < kSnapshotViewMinFormatVersion) {
    // The parser still decodes these; the store falls back to the copy path.
    *code = DiagCode::kSnapshotVersionSkew;
    *error = "format version " + std::to_string(*version) +
             " predates mmap snapshot views (decoded copy required)";
    return false;
  }
  const std::uint32_t num_sections = r.u32();

  std::string_view payloads[kNumSnapshotSections];
  std::size_t bases[kNumSnapshotSections] = {};
  bool seen[kNumSnapshotSections] = {};
  for (std::uint32_t i = 0; i < num_sections; ++i) {
    SnapshotSectionInfo info;
    info.header_offset = r.pos;
    if (!r.need(20)) return corrupt("truncated section header");
    info.kind = r.u32();
    const std::uint64_t len = r.u64();
    info.checksum = r.u64();
    if (len > r.remaining()) {
      return corrupt(std::string("truncated payload of section ") +
                     section_name_of(info.kind));
    }
    info.payload_offset = r.pos;
    info.payload_size = static_cast<std::size_t>(len);
    const std::string_view payload =
        bytes.substr(r.pos, static_cast<std::size_t>(len));
    r.pos += static_cast<std::size_t>(len);
    sections_.push_back(info);
    if (snapshot_checksum(payload.data(), payload.size(), info.kind) !=
        info.checksum) {
      return corrupt(std::string("checksum mismatch in section ") +
                     section_name_of(info.kind));
    }
    if (info.kind < kNumSnapshotSections) {
      if (seen[info.kind]) {
        return corrupt(std::string("duplicate section ") +
                       section_name_of(info.kind));
      }
      seen[info.kind] = true;
      payloads[info.kind] = payload;
      bases[info.kind] = info.payload_offset;
    }
    // Unknown kinds are checksum-verified and skipped.
  }
  if (r.remaining() != 0) return corrupt("trailing bytes after last section");
  for (std::uint32_t k = 0; k < kNumSnapshotSections; ++k) {
    if (!seen[k]) {
      return corrupt(std::string("missing section ") + section_name_of(k));
    }
  }

  struct SectionIndexer {
    SnapshotSection kind;
    bool (SnapshotView::*index)(std::string_view, std::size_t);
  };
  if (!index_meta(payloads[0])) {
    return corrupt(std::string("undecodable section ") +
                   snapshot_section_name(SnapshotSection::kMeta));
  }
  const SectionIndexer indexers[] = {
      {SnapshotSection::kNodeTimings, &SnapshotView::index_timings},
      {SnapshotSection::kWorstPaths, &SnapshotView::index_paths},
      {SnapshotSection::kCaptureSlacks, &SnapshotView::index_caps},
      {SnapshotSection::kNameIndex, &SnapshotView::index_names},
      {SnapshotSection::kHoldPairs, &SnapshotView::index_holds},
      {SnapshotSection::kConstraints, &SnapshotView::index_constraints},
      {SnapshotSection::kCorners, &SnapshotView::index_corners},
  };
  for (const SectionIndexer& s : indexers) {
    const auto kind = static_cast<std::uint32_t>(s.kind);
    if (!(this->*s.index)(payloads[kind], bases[kind])) {
      return corrupt(std::string("undecodable section ") +
                     snapshot_section_name(s.kind));
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Per-section indexers.  Each mirrors the corresponding decode_* in
// snapshot_store.cpp, recording absolute record offsets instead of decoding.

bool SnapshotView::index_meta(std::string_view payload) {
  Reader r = reader_of(payload);
  design_name_ = r.str_view();
  id_ = r.u64();
  const std::uint8_t status = r.u8();
  works_ = r.u8() != 0;
  worst_slack_ = r.i64();
  num_terminals_ = static_cast<std::size_t>(r.u64());
  num_violations_ = static_cast<std::size_t>(r.u64());
  has_hold_ = r.u8() != 0;
  has_constraints_ = r.u8() != 0;
  const std::uint8_t cstatus = r.u8();
  backward_ = static_cast<std::int32_t>(r.u32());
  forward_ = static_cast<std::int32_t>(r.u32());
  if (r.fail || r.remaining() != 0) return false;
  if (!valid_status(status) || !valid_status(cstatus)) return false;
  status_ = static_cast<AnalysisStatus>(status);
  constraints_status_ = static_cast<AnalysisStatus>(cstatus);
  return true;
}

namespace {
/// NodeTiming record bytes: 5 × i64 + 2 × u8 + u32.
constexpr std::size_t kTimingStride = 46;
/// ConstraintTimes record bytes: 2 × u8 + 5 × i64.
constexpr std::size_t kConstraintStride = 42;
}  // namespace

bool SnapshotView::index_timings(std::string_view payload, std::size_t base) {
  Reader r = reader_of(payload);
  const std::uint64_t count = r.u64();
  if (r.fail) return false;
  if (count > r.remaining() / kTimingStride ||
      count * kTimingStride != r.remaining()) {
    return false;
  }
  timings_off_ = base + 8;
  num_timings_ = static_cast<std::size_t>(count);
  return true;
}

bool SnapshotView::index_paths(std::string_view payload, std::size_t base) {
  Reader r = reader_of(payload);
  const std::uint64_t count = r.u64();
  path_offs_.clear();
  if (!r.fail && count <= r.remaining()) {
    path_offs_.reserve(static_cast<std::size_t>(count));
  }
  for (std::uint64_t i = 0; i < count && !r.fail; ++i) {
    const std::size_t off = base + r.pos;
    r.i64();
    r.str_view();
    r.str_view();
    r.str_view();
    r.str_view();
    r.u64();
    if (!r.fail) path_offs_.push_back(off);
  }
  return !r.fail && path_offs_.size() == count && r.remaining() == 0;
}

bool SnapshotView::index_caps(std::string_view payload, std::size_t base) {
  Reader r = reader_of(payload);
  const std::uint64_t count = r.u64();
  if (r.fail) return false;
  if (count > r.remaining() / 8 || count * 8 != r.remaining()) return false;
  caps_off_ = base + 8;
  num_caps_ = static_cast<std::size_t>(count);
  return true;
}

bool SnapshotView::index_names(std::string_view payload, std::size_t base) {
  Reader r = reader_of(payload);
  const std::uint64_t nodes = r.u64();
  name_offs_.clear();
  if (!r.fail && nodes <= r.remaining()) {
    name_offs_.reserve(static_cast<std::size_t>(nodes));
  }
  for (std::uint64_t i = 0; i < nodes && !r.fail; ++i) {
    const std::size_t off = base + r.pos;
    r.str_view();
    if (!r.fail) name_offs_.push_back(off);
  }
  if (r.fail || name_offs_.size() != nodes) return false;

  const std::uint64_t insts = r.u64();
  inst_offs_.clear();
  inst_first_pin_.clear();
  pin_offs_.clear();
  inst_first_pin_.push_back(0);
  std::string_view prev;
  bool have_prev = false;
  for (std::uint64_t i = 0; i < insts && !r.fail; ++i) {
    const std::size_t off = base + r.pos;
    const std::string_view name = r.str_view();
    const std::uint64_t pins = r.u64();
    if (r.fail) break;
    // Strictly sorted instance names: what serialize_snapshot emits, and
    // what binary search over inst_offs_ requires.  Stricter than the
    // parser's uniqueness check — the store falls back to the copy path for
    // images that fail here.
    if (have_prev && !(prev < name)) return false;
    prev = name;
    have_prev = true;
    const std::size_t first = pin_offs_.size();
    for (std::uint64_t pi = 0; pi < pins && !r.fail; ++pi) {
      const std::size_t poff = base + r.pos;
      r.str_view();
      r.u32();
      if (!r.fail) pin_offs_.push_back(poff);
    }
    if (r.fail || pin_offs_.size() != first + pins) return false;
    inst_offs_.push_back(off);
    inst_first_pin_.push_back(pin_offs_.size());
  }
  return !(r.fail || inst_offs_.size() != insts || r.remaining() != 0);
}

void SnapshotView::build_name_order() const {
  // Node-id permutation sorted by (name, id): lower_bound resolves a name to
  // its lowest node id, matching NameIndex's emplace-first-wins rule.  Built
  // on the first find_node, not at map time — the sort is the single most
  // expensive indexing step and summary/worst_paths/histogram never touch
  // it, so deferring it keeps warm-restart first-query latency at the cost
  // of the checksum pass plus linear offset scans.
  name_order_.resize(name_offs_.size());
  std::iota(name_order_.begin(), name_order_.end(), 0u);
  std::sort(name_order_.begin(), name_order_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              const std::string_view na = str_at(name_offs_[a]);
              const std::string_view nb = str_at(name_offs_[b]);
              if (na != nb) return na < nb;
              return a < b;
            });
}

bool SnapshotView::index_holds(std::string_view payload, std::size_t base) {
  Reader r = reader_of(payload);
  const std::uint64_t count = r.u64();
  hold_offs_.clear();
  if (!r.fail && count <= r.remaining()) {
    hold_offs_.reserve(static_cast<std::size_t>(count));
  }
  for (std::uint64_t i = 0; i < count && !r.fail; ++i) {
    const std::size_t off = base + r.pos;
    r.u32();
    r.u32();
    r.i64();
    r.str_view();
    r.str_view();
    if (!r.fail) hold_offs_.push_back(off);
  }
  return !r.fail && hold_offs_.size() == count && r.remaining() == 0;
}

bool SnapshotView::index_constraints(std::string_view payload,
                                     std::size_t base) {
  Reader r = reader_of(payload);
  const std::uint64_t count = r.u64();
  if (r.fail) return false;
  if (count > r.remaining() / kConstraintStride ||
      count * kConstraintStride != r.remaining()) {
    return false;
  }
  cons_off_ = base + 8;
  num_cons_ = static_cast<std::size_t>(count);
  return true;
}

bool SnapshotView::index_corners(std::string_view payload, std::size_t base) {
  Reader r = reader_of(payload);
  has_corners_ = r.u8() != 0;
  worst_corner_ = r.u32();
  const std::uint64_t count = r.u64();
  corners_.clear();
  if (!r.fail && count <= r.remaining()) {
    corners_.reserve(static_cast<std::size_t>(count));
  }
  for (std::uint64_t i = 0; i < count && !r.fail; ++i) {
    CornerIdx c;
    c.name_off = base + r.pos;
    r.str_view();
    c.derate_pm = r.u32();
    c.wire_pm = r.u32();
    c.worst_slack = r.i64();
    c.num_violations = static_cast<std::size_t>(r.u64());
    const std::uint64_t nn = r.u64();
    if (r.fail || nn > r.remaining() / 8) return false;
    c.node_slack_off = base + r.pos;
    c.num_node_slacks = static_cast<std::size_t>(nn);
    r.pos += static_cast<std::size_t>(nn) * 8;
    // One slack per graph node — keyed by the same TNodeId index as the
    // node-timings section.
    if (c.num_node_slacks != num_timings_) return false;
    const std::uint64_t ns = r.u64();
    if (r.fail || ns > r.remaining() / 8) return false;
    c.cap_off = base + r.pos;
    c.num_caps = static_cast<std::size_t>(ns);
    r.pos += static_cast<std::size_t>(ns) * 8;
    const std::uint64_t np = r.u64();
    for (std::uint64_t j = 0; j < np && !r.fail; ++j) {
      const std::size_t off = base + r.pos;
      r.i64();
      r.str_view();
      r.str_view();
      r.str_view();
      r.str_view();
      r.u64();
      if (!r.fail) c.path_offs.push_back(off);
    }
    if (r.fail || c.path_offs.size() != np) return false;
    c.has_hold = r.u8() != 0;
    const std::uint64_t nh = r.u64();
    for (std::uint64_t j = 0; j < nh && !r.fail; ++j) {
      const std::size_t off = base + r.pos;
      r.u32();
      r.u32();
      r.i64();
      r.str_view();
      r.str_view();
      if (!r.fail) c.hold_offs.push_back(off);
    }
    if (r.fail || c.hold_offs.size() != nh) return false;
    corners_.push_back(std::move(c));
  }
  if (r.fail || corners_.size() != count || r.remaining() != 0) return false;
  if (has_corners_ != !corners_.empty()) return false;
  if (has_corners_ && worst_corner_ >= corners_.size()) return false;
  if (!has_corners_ && worst_corner_ != 0) return false;
  return true;
}

// ---------------------------------------------------------------------------
// Accessors.  Offsets were validated at index time; the bounds checks here
// make a stale or foreign InstRef degrade instead of reading wild.

std::string_view SnapshotView::str_at(std::size_t off) const {
  const std::uint32_t len = codec_read_le32(data_ + off);
  return std::string_view(reinterpret_cast<const char*>(data_ + off + 4), len);
}

SourcePath SnapshotView::path_at(std::size_t off) const {
  Reader r;
  r.data = data_;
  r.size = size_;
  r.pos = off;
  SourcePath out;
  out.slack = r.i64();
  out.launch = r.str_view();
  out.capture = r.str_view();
  out.from = r.str_view();
  out.to = r.str_view();
  out.steps = static_cast<std::size_t>(r.u64());
  return out;
}

SourceHoldPair SnapshotView::hold_at(std::size_t off) const {
  Reader r;
  r.data = data_;
  r.size = size_;
  r.pos = off;
  SourceHoldPair out;
  r.u32();  // launch SyncId — replies print labels only
  r.u32();  // capture SyncId
  out.margin = r.i64();
  out.launch_label = r.str_view();
  out.capture_label = r.str_view();
  return out;
}

NodeTiming SnapshotView::node_timing(std::size_t i) const {
  NodeTiming nt;
  if (i >= num_timings_) return nt;
  const unsigned char* p = data_ + timings_off_ + i * kTimingStride;
  nt.slack = static_cast<TimePs>(codec_read_le64(p));
  nt.ready.rise = static_cast<TimePs>(codec_read_le64(p + 8));
  nt.ready.fall = static_cast<TimePs>(codec_read_le64(p + 16));
  nt.required.rise = static_cast<TimePs>(codec_read_le64(p + 24));
  nt.required.fall = static_cast<TimePs>(codec_read_le64(p + 32));
  nt.has_ready = p[40] != 0;
  nt.has_constraint = p[41] != 0;
  nt.settling_count = static_cast<int>(codec_read_le32(p + 42));
  return nt;
}

std::string_view SnapshotView::node_name(std::size_t i) const {
  return i < name_offs_.size() ? str_at(name_offs_[i]) : std::string_view();
}

std::size_t SnapshotView::find_node(std::string_view name) const {
  std::call_once(name_order_once_, [this] { build_name_order(); });
  const auto it = std::lower_bound(
      name_order_.begin(), name_order_.end(), name,
      [this](std::uint32_t id, std::string_view n) {
        return str_at(name_offs_[id]) < n;
      });
  if (it == name_order_.end() || str_at(name_offs_[*it]) != name) return npos;
  return static_cast<std::size_t>(*it);
}

SourcePath SnapshotView::path(std::size_t i) const {
  return i < path_offs_.size() ? path_at(path_offs_[i]) : SourcePath{};
}

TimePs SnapshotView::capture_slack(std::size_t i) const {
  if (i >= num_caps_) return 0;
  return static_cast<TimePs>(codec_read_le64(data_ + caps_off_ + i * 8));
}

SnapshotSource::InstRef SnapshotView::find_instance(
    std::string_view name) const {
  const auto it = std::lower_bound(
      inst_offs_.begin(), inst_offs_.end(), name,
      [this](std::size_t off, std::string_view n) { return str_at(off) < n; });
  InstRef ref;
  if (it == inst_offs_.end() || str_at(*it) != name) return ref;
  ref.i = static_cast<std::size_t>(it - inst_offs_.begin());
  ref.found = true;
  return ref;
}

std::size_t SnapshotView::num_instance_pins(const InstRef& ref) const {
  if (!ref.found || ref.i + 1 >= inst_first_pin_.size()) return 0;
  return inst_first_pin_[ref.i + 1] - inst_first_pin_[ref.i];
}

SourcePin SnapshotView::instance_pin(const InstRef& ref,
                                     std::size_t pin) const {
  SourcePin out;
  if (!ref.found || ref.i + 1 >= inst_first_pin_.size()) return out;
  const std::size_t idx = inst_first_pin_[ref.i] + pin;
  if (idx >= inst_first_pin_[ref.i + 1]) return out;
  Reader r;
  r.data = data_;
  r.size = size_;
  r.pos = pin_offs_[idx];
  out.name = r.str_view();
  out.node = r.u32();
  return out;
}

SourceHoldPair SnapshotView::hold_pair(std::size_t i) const {
  return i < hold_offs_.size() ? hold_at(hold_offs_[i]) : SourceHoldPair{};
}

ConstraintTimes SnapshotView::constraint_node(std::size_t i) const {
  ConstraintTimes ct;
  if (i >= num_cons_) return ct;
  const unsigned char* p = data_ + cons_off_ + i * kConstraintStride;
  ct.has_ready = p[0] != 0;
  ct.has_required = p[1] != 0;
  ct.ready.rise = static_cast<TimePs>(codec_read_le64(p + 2));
  ct.ready.fall = static_cast<TimePs>(codec_read_le64(p + 10));
  ct.required.rise = static_cast<TimePs>(codec_read_le64(p + 18));
  ct.required.fall = static_cast<TimePs>(codec_read_le64(p + 26));
  ct.slack = static_cast<TimePs>(codec_read_le64(p + 34));
  return ct;
}

SourceCornerMeta SnapshotView::corner_meta(std::size_t k) const {
  SourceCornerMeta out;
  if (k >= corners_.size()) return out;
  const CornerIdx& c = corners_[k];
  out.name = str_at(c.name_off);
  out.derate_pm = c.derate_pm;
  out.wire_pm = c.wire_pm;
  out.worst_slack = c.worst_slack;
  out.num_violations = c.num_violations;
  out.num_paths = c.path_offs.size();
  out.has_hold = c.has_hold;
  return out;
}

std::size_t SnapshotView::corner_num_node_slacks(std::size_t k) const {
  return k < corners_.size() ? corners_[k].num_node_slacks : 0;
}

TimePs SnapshotView::corner_node_slack(std::size_t k, std::size_t i) const {
  if (k >= corners_.size()) return 0;
  const CornerIdx& c = corners_[k];
  if (i >= c.num_node_slacks) return 0;
  return static_cast<TimePs>(codec_read_le64(data_ + c.node_slack_off + i * 8));
}

std::size_t SnapshotView::corner_num_capture_slacks(std::size_t k) const {
  return k < corners_.size() ? corners_[k].num_caps : 0;
}

TimePs SnapshotView::corner_capture_slack(std::size_t k, std::size_t i) const {
  if (k >= corners_.size()) return 0;
  const CornerIdx& c = corners_[k];
  if (i >= c.num_caps) return 0;
  return static_cast<TimePs>(codec_read_le64(data_ + c.cap_off + i * 8));
}

SourcePath SnapshotView::corner_path(std::size_t k, std::size_t i) const {
  if (k >= corners_.size()) return SourcePath{};
  const CornerIdx& c = corners_[k];
  return i < c.path_offs.size() ? path_at(c.path_offs[i]) : SourcePath{};
}

std::size_t SnapshotView::corner_num_hold_pairs(std::size_t k) const {
  return k < corners_.size() ? corners_[k].hold_offs.size() : 0;
}

SourceHoldPair SnapshotView::corner_hold_pair(std::size_t k,
                                              std::size_t i) const {
  if (k >= corners_.size()) return SourceHoldPair{};
  const CornerIdx& c = corners_[k];
  return i < c.hold_offs.size() ? hold_at(c.hold_offs[i]) : SourceHoldPair{};
}

}  // namespace hb
