// SnapshotView — a zero-copy SnapshotSource over an mmap'd snapshot image.
//
// map_file() maps the image read-only, verifies the header and every
// per-section xxhash64 checksum once, and builds offset tables instead of
// materialising strings: node names resolve through a (name, node_id)-sorted
// id permutation binary-searched against views into the image, instance pin
// tables through record offsets binary-searched by instance name.  After
// indexing, every accessor is a couple of bounds-checked loads straight from
// the page cache.
//
// Validation mirrors parse_snapshot() check for check, with two deliberate
// extras — a view never accepts an image the parser would reject, but may
// reject ones the parser tolerates (the store then falls back to the decoded
// copy path, see SnapshotStore::load_newest_source):
//   * version 1 images predate the view layout guarantees and are refused
//     with kSnapshotVersionSkew (the parser still decodes them);
//   * the name-index instance table must be strictly sorted by name —
//     serialize_snapshot always emits it that way; the parser merely
//     requires uniqueness.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "service/snapshot_source.hpp"
#include "service/snapshot_store.hpp"
#include "util/diagnostics.hpp"

namespace hb {

/// Oldest image format a SnapshotView can serve without a decoded copy.
inline constexpr std::uint32_t kSnapshotViewMinFormatVersion = 2;

class SnapshotView final : public SnapshotSource {
 public:
  struct MapResult {
    std::shared_ptr<SnapshotView> view;
    DiagCode code = DiagCode::kSnapshotCorrupt;
    std::string error;
    std::uint32_t version = 0;
    bool ok() const { return view != nullptr; }
  };

  /// mmap `path` read-only and index it.  The mapping lives as long as the
  /// returned view; an already-mapped view keeps serving even if the file
  /// is later unlinked by retention.
  static MapResult map_file(const std::string& path);

  /// Index borrowed bytes without mapping (tests, fuzzing, benches).  The
  /// caller must keep `bytes` alive for the view's lifetime.
  static MapResult attach(std::string_view bytes);

  ~SnapshotView() override;
  SnapshotView(const SnapshotView&) = delete;
  SnapshotView& operator=(const SnapshotView&) = delete;

  const std::vector<SnapshotSectionInfo>& sections() const { return sections_; }
  std::size_t image_bytes() const { return size_; }
  bool mapped() const { return mapping_ != nullptr; }

  // SnapshotSource
  std::uint64_t id() const override { return id_; }
  std::string_view design_name() const override { return design_name_; }
  AnalysisStatus status() const override { return status_; }
  bool works_as_intended() const override { return works_; }
  TimePs worst_slack() const override { return worst_slack_; }
  std::size_t num_terminals() const override { return num_terminals_; }
  std::size_t num_violations() const override { return num_violations_; }

  std::size_t num_nodes() const override { return num_timings_; }
  NodeTiming node_timing(std::size_t i) const override;
  std::size_t num_node_names() const override { return name_offs_.size(); }
  std::string_view node_name(std::size_t i) const override;
  std::size_t find_node(std::string_view name) const override;

  std::size_t num_paths() const override { return path_offs_.size(); }
  SourcePath path(std::size_t i) const override;

  std::size_t num_capture_slacks() const override { return num_caps_; }
  TimePs capture_slack(std::size_t i) const override;

  InstRef find_instance(std::string_view name) const override;
  std::size_t num_instance_pins(const InstRef& ref) const override;
  SourcePin instance_pin(const InstRef& ref, std::size_t pin) const override;

  bool has_hold() const override { return has_hold_; }
  std::size_t num_hold_pairs() const override { return hold_offs_.size(); }
  SourceHoldPair hold_pair(std::size_t i) const override;

  bool has_constraints() const override { return has_constraints_; }
  AnalysisStatus constraints_status() const override {
    return constraints_status_;
  }
  std::int32_t backward_snatch_cycles() const override { return backward_; }
  std::int32_t forward_snatch_cycles() const override { return forward_; }
  std::size_t num_constraint_nodes() const override { return num_cons_; }
  ConstraintTimes constraint_node(std::size_t i) const override;

  bool has_corners() const override { return has_corners_; }
  std::uint32_t worst_corner() const override { return worst_corner_; }
  std::size_t num_corners() const override { return corners_.size(); }
  SourceCornerMeta corner_meta(std::size_t k) const override;
  std::size_t corner_num_node_slacks(std::size_t k) const override;
  TimePs corner_node_slack(std::size_t k, std::size_t i) const override;
  std::size_t corner_num_capture_slacks(std::size_t k) const override;
  TimePs corner_capture_slack(std::size_t k, std::size_t i) const override;
  SourcePath corner_path(std::size_t k, std::size_t i) const override;
  std::size_t corner_num_hold_pairs(std::size_t k) const override;
  SourceHoldPair corner_hold_pair(std::size_t k, std::size_t i) const override;

 private:
  struct CornerIdx {
    std::size_t name_off = 0;
    std::uint32_t derate_pm = 1000;
    std::uint32_t wire_pm = 1000;
    TimePs worst_slack = 0;
    std::size_t num_violations = 0;
    std::size_t node_slack_off = 0;
    std::size_t num_node_slacks = 0;
    std::size_t cap_off = 0;
    std::size_t num_caps = 0;
    std::vector<std::size_t> path_offs;
    bool has_hold = false;
    std::vector<std::size_t> hold_offs;
  };

  SnapshotView() = default;

  static MapResult index_bytes(std::string_view bytes, void* mapping,
                               std::size_t map_len);
  bool index(std::string_view bytes, DiagCode* code, std::string* error,
             std::uint32_t* version);
  bool index_meta(std::string_view payload);
  bool index_timings(std::string_view payload, std::size_t base);
  bool index_paths(std::string_view payload, std::size_t base);
  bool index_caps(std::string_view payload, std::size_t base);
  bool index_names(std::string_view payload, std::size_t base);
  bool index_holds(std::string_view payload, std::size_t base);
  bool index_constraints(std::string_view payload, std::size_t base);
  bool index_corners(std::string_view payload, std::size_t base);

  void build_name_order() const;
  std::string_view str_at(std::size_t off) const;
  SourcePath path_at(std::size_t off) const;
  SourceHoldPair hold_at(std::size_t off) const;

  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  void* mapping_ = nullptr;
  std::size_t map_len_ = 0;

  // meta
  std::string_view design_name_;
  std::uint64_t id_ = 0;
  AnalysisStatus status_ = AnalysisStatus::kComplete;
  bool works_ = false;
  TimePs worst_slack_ = 0;
  std::size_t num_terminals_ = 0;
  std::size_t num_violations_ = 0;
  bool has_hold_ = false;
  bool has_constraints_ = false;
  AnalysisStatus constraints_status_ = AnalysisStatus::kComplete;
  std::int32_t backward_ = 0;
  std::int32_t forward_ = 0;

  // fixed-stride sections: absolute offset of the first record
  std::size_t timings_off_ = 0;
  std::size_t num_timings_ = 0;
  std::size_t caps_off_ = 0;
  std::size_t num_caps_ = 0;
  std::size_t cons_off_ = 0;
  std::size_t num_cons_ = 0;

  // variable-stride sections: absolute offset per record
  std::vector<std::size_t> path_offs_;
  std::vector<std::size_t> hold_offs_;

  // name table: offset of each node name's length prefix, plus the node-id
  // permutation sorted by (name, id) — lower_bound lands on the lowest id
  // for duplicate names, matching NameIndex's emplace-first-wins rule.
  // The permutation is built lazily on the first find_node (thread-safe via
  // the once flag): sorting it is the most expensive indexing step and the
  // meta/paths/histogram verbs never need it.
  std::vector<std::size_t> name_offs_;
  mutable std::vector<std::uint32_t> name_order_;
  mutable std::once_flag name_order_once_;

  // instance pin tables: record offset per instance (strictly name-sorted in
  // the image, so binary search works on the offsets directly) and a flat
  // pin-record offset array partitioned by inst_first_pin_.
  std::vector<std::size_t> inst_offs_;
  std::vector<std::size_t> inst_first_pin_;
  std::vector<std::size_t> pin_offs_;

  bool has_corners_ = false;
  std::uint32_t worst_corner_ = 0;
  std::vector<CornerIdx> corners_;

  std::vector<SnapshotSectionInfo> sections_;
};

}  // namespace hb
