#include "service/tcp_server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>

#include "service/protocol.hpp"
#include "service/snapshot_codec.hpp"
#include "util/error.hpp"

namespace hb {

TcpServer::TcpServer(ServiceHost& host, std::uint16_t port) : host_(&host) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) raise("tcp: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    raise("tcp: cannot bind 127.0.0.1:" + std::to_string(port));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  acceptor_ = std::thread([this] { accept_loop(); });
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  const int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int lfd = listen_fd_.load(std::memory_order_relaxed);
    if (lfd < 0) break;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      continue;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void TcpServer::serve_connection(int fd) {
  ProtocolHandler handler(*host_);
  std::string buffer;
  char chunk[4096];
  bool done = false;
  const auto send = [&](const std::string& reply) {
    std::size_t off = 0;
    while (off < reply.size()) {
      const ssize_t w = ::write(fd, reply.data() + off, reply.size() - off);
      if (w <= 0) {
        done = true;
        return;
      }
      off += static_cast<std::size_t>(w);
    }
  };
  while (!done) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    // Drain complete requests; re-check the protocol mode every iteration —
    // bytes after a `proto 2` acknowledgement are binary frames.
    for (;;) {
      if (!handler.binary()) {
        const std::size_t nl = buffer.find('\n');
        if (nl == std::string::npos) break;
        std::string line = buffer.substr(0, nl);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        buffer.erase(0, nl + 1);
        const std::string& reply = handler.handle_line(line);
        if (!reply.empty()) send(reply);
      } else {
        if (buffer.size() < 4) break;
        const std::uint32_t len = codec_read_le32(
            reinterpret_cast<const unsigned char*>(buffer.data()));
        if (len > kProto2MaxFrame) {
          std::string err;
          proto2_error_frame(DiagCode::kServiceRejected,
                             "request frame of " + std::to_string(len) +
                                 " bytes exceeds the " +
                                 std::to_string(kProto2MaxFrame) +
                                 "-byte limit",
                             err);
          send(err);
          done = true;
          break;
        }
        if (buffer.size() < 4 + static_cast<std::size_t>(len)) break;
        const std::string_view payload(buffer.data() + 4, len);
        const std::string& reply = handler.handle_frame(payload);
        buffer.erase(0, 4 + static_cast<std::size_t>(len));
        if (!reply.empty()) send(reply);
      }
      if (done || handler.quit()) {
        done = true;
        break;
      }
    }
  }
  {
    // De-register before closing so stop() never shuts down a recycled fd.
    std::lock_guard<std::mutex> lock(mutex_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  ::close(fd);
}

}  // namespace hb
