// Loopback TCP frontend: the same line protocol as serve_stream, served on
// 127.0.0.1 with one handler thread per connection.  Intended for local
// tooling (editors, synthesis loops polling a long-lived session), not for
// exposure beyond the machine — the listener refuses non-loopback binds by
// construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace hb {

class ServiceHost;

class TcpServer {
 public:
  /// Bind 127.0.0.1:`port` (0 picks an ephemeral port) and start the accept
  /// loop on a background thread.  Throws hb::Error when the bind fails.
  TcpServer(ServiceHost& host, std::uint16_t port = 0);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (useful with port 0).
  std::uint16_t port() const { return port_; }

  /// Stop accepting, shut down live connections and join all threads.
  /// Idempotent; also called by the destructor.
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);

  ServiceHost* host_;
  std::atomic<int> listen_fd_{-1};  // written by stop(), read by accept_loop()
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex mutex_;  // guards conn_threads_ / conn_fds_
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

}  // namespace hb
