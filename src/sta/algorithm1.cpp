#include "sta/algorithm1.hpp"

namespace hb {
namespace {

enum class Direction { kForward, kBackward };

/// One transfer sweep across all synchronising elements.  Complete transfer
/// moves min(slack, headroom); partial transfer moves min(slack/divisor,
/// headroom).  Returns true if any offsets moved.
bool transfer_sweep(SyncModel& sync, const SlackEngine& engine, Direction dir,
                    TimePs divisor) {
  bool moved = false;
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    SyncInstance& si = sync.at_mut(SyncId(i));
    if (!si.transparent || si.is_virtual) continue;
    if (dir == Direction::kForward) {
      // Donate spare time from paths converging on the data input to paths
      // emanating from the output: close the input (and assert the output)
      // earlier.
      const TimePs n_in = engine.capture_slack(SyncId(i));
      if (n_in == kInfinitePs) continue;
      const TimePs amount = std::min(n_in / divisor, si.max_decrease());
      if (amount > 0) {
        si.shift(-amount);
        moved = true;
      }
    } else {
      const TimePs n_out = engine.launch_slack(SyncId(i));
      if (n_out == kInfinitePs) continue;
      const TimePs amount = std::min(n_out / divisor, si.max_increase());
      if (amount > 0) {
        si.shift(amount);
        moved = true;
      }
    }
  }
  return moved;
}

}  // namespace

Algorithm1Result run_algorithm1(SyncModel& sync, SlackEngine& engine,
                                Algorithm1Options options) {
  if (options.partial_divisor <= 1) {
    raise("Algorithm 1: partial_divisor must be > 1");
  }
  Algorithm1Result res;
  BudgetTimer timer(options.budget);
  bool timed_out = false;
  // Sticky budget check, evaluated only between sweeps so the engine is
  // never abandoned mid-propagation: the last evaluated offsets are a
  // consistent, conservative state.
  auto out_of_budget = [&]() {
    if (!timed_out && timer.exhausted()) timed_out = true;
    return timed_out;
  };

  auto evaluate = [&]() {
    if (options.incremental) {
      engine.invalidate_offsets(sync.drain_changed_offsets());
      engine.update(options.pool);
    } else {
      sync.drain_changed_offsets();
      engine.compute(options.pool);
    }
    ++res.slack_evaluations;
    return engine.worst_terminal_slack();
  };

  auto finish = [&](TimePs worst) {
    res.status = timed_out ? AnalysisStatus::kTimedOut : AnalysisStatus::kComplete;
    res.worst_slack = worst;
    res.works_as_intended = worst > 0;
    return res;
  };

  // Iteration 1: complete forward transfer to fixpoint.
  for (;;) {
    const TimePs worst = evaluate();
    if (worst > 0) return finish(worst);
    if (out_of_budget()) return finish(worst);
    if (res.forward_cycles >= options.max_cycles) {
      raise("Algorithm 1 exceeded the forward-transfer cycle limit");
    }
    if (!transfer_sweep(sync, engine, Direction::kForward, 1)) break;
    ++res.forward_cycles;
    timer.count_cycle();
  }

  // Iteration 2: complete backward transfer to fixpoint.
  for (;;) {
    const TimePs worst = evaluate();
    if (worst > 0) return finish(worst);
    if (out_of_budget()) return finish(worst);
    if (res.backward_cycles >= options.max_cycles) {
      raise("Algorithm 1 exceeded the backward-transfer cycle limit");
    }
    if (!transfer_sweep(sync, engine, Direction::kBackward, 1)) break;
    ++res.backward_cycles;
    timer.count_cycle();
  }

  // Iteration 3: partial forward, once per complete backward cycle made.
  for (int k = 0; k < res.backward_cycles && !out_of_budget(); ++k) {
    evaluate();
    if (transfer_sweep(sync, engine, Direction::kForward, options.partial_divisor)) {
      ++res.partial_forward_cycles;
    }
    timer.count_cycle();
  }

  // Iteration 4: partial backward, once per complete forward cycle made.
  for (int k = 0; k < res.forward_cycles && !out_of_budget(); ++k) {
    evaluate();
    if (transfer_sweep(sync, engine, Direction::kBackward, options.partial_divisor)) {
      ++res.partial_backward_cycles;
    }
    timer.count_cycle();
  }

  // Final step: find all node slacks.
  return finish(evaluate());
}

}  // namespace hb
