// Algorithm 1 of the paper: identification of slow paths by iterated slack
// transfer across synchronising elements.
//
//   Iteration 1: complete *forward* slack transfer (donate all spare input
//     slack downstream, bounded by the element constraints) repeated until
//     no element moves.
//   Iteration 2: the same *backward*.
//   Iteration 3: partial forward transfer (half the slack), repeated once
//     per complete-backward cycle performed, returning some time to paths
//     that are fast enough so they finish with strictly positive slacks.
//   Iteration 4: partial backward transfer, once per complete-forward cycle.
//
// Terminates early when every terminal slack is positive ("system behaves
// as intended").  Afterwards, every terminal on a too-slow path has a
// non-positive slack; because of the simplified element model, marginally
// fast paths may conservatively be flagged too (paper Section 6).
#pragma once

#include "sta/slack_engine.hpp"
#include "util/cancel.hpp"
#include "util/diagnostics.hpp"

namespace hb {

struct Algorithm1Options {
  /// Divisor n > 1 used by partial transfers (paper: "any real number > 1").
  TimePs partial_divisor = 2;
  /// Safety cap on transfer cycles; the paper observes each iteration needs
  /// at most one cycle more than the synchronising-element depth.
  int max_cycles = 10000;
  /// Re-evaluate slacks incrementally between sweeps: each sweep's offset
  /// edits are drained from the SyncModel change log into SlackEngine
  /// invalidations and only the affected cones are re-propagated.  Results
  /// are bit-identical to full recomputation (tests/incremental_test.cpp).
  bool incremental = true;
  /// Evaluate independent dirty passes on this pool when non-null.
  ThreadPool* pool = nullptr;
  /// Watchdog limits (wall clock, total cycles, external cancellation).
  /// Checked between sweeps, never mid-propagation: on exhaustion the
  /// current offsets — which are always a consistent, conservative state —
  /// are kept and the result is tagged AnalysisStatus::kTimedOut.
  AnalysisBudget budget;
};

struct Algorithm1Result {
  /// kComplete, or kTimedOut when the budget expired before the fixpoint.
  AnalysisStatus status = AnalysisStatus::kComplete;
  bool works_as_intended = false;
  /// Worst terminal slack after the final recomputation.
  TimePs worst_slack = 0;
  int forward_cycles = 0;    // complete forward transfer cycles executed
  int backward_cycles = 0;
  int partial_forward_cycles = 0;
  int partial_backward_cycles = 0;
  int slack_evaluations = 0;  // number of full slack recomputations
};

/// Runs Algorithm 1, mutating the adjustable offsets in `sync` and leaving
/// `engine` holding the final slack state.
Algorithm1Result run_algorithm1(SyncModel& sync, SlackEngine& engine,
                                Algorithm1Options options = {});

}  // namespace hb
