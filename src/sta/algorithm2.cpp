#include "sta/algorithm2.hpp"

namespace hb {
namespace {

/// One snatching sweep; returns true if anything moved.  Backward snatching
/// gives time to the input side (offsets increase); forward snatching to the
/// output side (offsets decrease).
bool snatch_sweep(SyncModel& sync, const SlackEngine& engine, bool backward) {
  bool moved = false;
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    SyncInstance& si = sync.at_mut(SyncId(i));
    if (!si.transparent || si.is_virtual) continue;
    if (backward) {
      const TimePs n_in = engine.capture_slack(SyncId(i));
      if (n_in >= 0 || n_in == kInfinitePs) continue;
      const TimePs amount = std::min(-n_in, si.max_increase());
      if (amount > 0) {
        si.shift(amount);
        moved = true;
      }
    } else {
      const TimePs n_out = engine.launch_slack(SyncId(i));
      if (n_out >= 0 || n_out == kInfinitePs) continue;
      const TimePs amount = std::min(-n_out, si.max_decrease());
      if (amount > 0) {
        si.shift(-amount);
        moved = true;
      }
    }
  }
  return moved;
}

}  // namespace

ConstraintSet run_algorithm2(SyncModel& sync, SlackEngine& engine,
                             Algorithm2Options options) {
  ConstraintSet out;
  out.nodes.resize(engine.graph().num_nodes());
  BudgetTimer timer(options.budget);
  bool timed_out = false;
  // Checked only between sweeps (after a full engine.compute()), so on
  // exhaustion the recorded times reflect a consistent conservative state.
  auto out_of_budget = [&]() {
    if (!timed_out && timer.exhausted()) timed_out = true;
    return timed_out;
  };

  // Iteration 1: backward snatching to fixpoint, then record ready times.
  for (;;) {
    engine.compute();
    if (out_of_budget()) break;
    if (!snatch_sweep(sync, engine, /*backward=*/true)) break;
    timer.count_cycle();
    if (++out.backward_snatch_cycles > options.max_cycles) {
      raise("Algorithm 2 exceeded the backward-snatch cycle limit");
    }
  }
  for (std::uint32_t n = 0; n < engine.graph().num_nodes(); ++n) {
    const NodeTiming& nt = engine.node_timing(TNodeId(n));
    out.nodes[n].has_ready = nt.has_ready;
    out.nodes[n].ready = nt.ready;
  }

  // Iteration 2: forward snatching to fixpoint, then record required times.
  for (;;) {
    engine.compute();
    if (out_of_budget()) break;
    if (!snatch_sweep(sync, engine, /*backward=*/false)) break;
    timer.count_cycle();
    if (++out.forward_snatch_cycles > options.max_cycles) {
      raise("Algorithm 2 exceeded the forward-snatch cycle limit");
    }
  }
  for (std::uint32_t n = 0; n < engine.graph().num_nodes(); ++n) {
    const NodeTiming& nt = engine.node_timing(TNodeId(n));
    out.nodes[n].has_required = nt.has_constraint;
    out.nodes[n].required = nt.required;
    out.nodes[n].slack = nt.slack;
  }
  out.status = timed_out ? AnalysisStatus::kTimedOut : AnalysisStatus::kComplete;
  return out;
}

}  // namespace hb
