// Algorithm 2 of the paper: timing-constraint generation by time snatching.
//
// After Algorithm 1 has settled the offsets:
//   Iteration 1 snatches time *backward* across every element whose data
//     input terminal has negative slack — the input closure moves as late as
//     the element constraints allow, regardless of whether the output side
//     can spare the time.  At the fixpoint, forward-traced ready times are
//     the actual settling times for nodes in too-slow paths; they are
//     recorded at all cell inputs.
//   Iteration 2 snatches time *forward* for negative output-terminal slacks
//     and records required times at all cell outputs.
//
// For every node in a too-slow path, (required - ready) - path delay equals
// the (negative) speed-up needed; for other nodes the pair bounds how much
// a path may be slowed down.
#pragma once

#include "sta/slack_engine.hpp"
#include "util/cancel.hpp"
#include "util/diagnostics.hpp"

namespace hb {

struct ConstraintTimes {
  bool has_ready = false;
  bool has_required = false;
  RiseFall ready{-kInfinitePs, -kInfinitePs};
  RiseFall required{kInfinitePs, kInfinitePs};
  /// Node slack after both snatching phases.
  TimePs slack = kInfinitePs;
};

struct ConstraintSet {
  /// Indexed by timing-graph node.
  std::vector<ConstraintTimes> nodes;
  /// kComplete, or kTimedOut when the budget expired before both snatching
  /// fixpoints were reached (the recorded times are the conservative state
  /// of the last completed sweep).
  AnalysisStatus status = AnalysisStatus::kComplete;
  int backward_snatch_cycles = 0;
  int forward_snatch_cycles = 0;

  const ConstraintTimes& at(TNodeId n) const { return nodes.at(n.index()); }
};

struct Algorithm2Options {
  int max_cycles = 10000;
  /// Watchdog limits; see Algorithm1Options::budget.
  AnalysisBudget budget;
};

/// Runs Algorithm 2, mutating offsets in `sync`.  Call after run_algorithm1.
ConstraintSet run_algorithm2(SyncModel& sync, SlackEngine& engine,
                             Algorithm2Options options = {});

}  // namespace hb
