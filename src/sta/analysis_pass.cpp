#include "sta/analysis_pass.hpp"

#include <algorithm>

namespace hb {
namespace {

bool blocks_propagation(NodeRole role) {
  // Data does not propagate combinationally through synchronising elements.
  return role == NodeRole::kSyncDataIn || role == NodeRole::kSyncControl;
}

}  // namespace

PassResult run_analysis_pass(const TimingGraph& graph, const SyncModel& sync,
                             const Cluster& cluster,
                             const std::vector<std::uint32_t>& local_index,
                             const ClockEdgeGraph& edges, std::size_t break_node,
                             const std::vector<SyncId>& capture_insts,
                             const std::vector<bool>& assigned) {
  PassResult res;
  res.ready.resize(cluster.nodes.size());
  res.required.resize(cluster.nodes.size());

  // Seed launch terminals: the latest actual assertion over the node's
  // launch instances, in linear coordinates.
  for (TNodeId n : cluster.source_nodes) {
    TimePs latest = -kInfinitePs;
    for (SyncId id : sync.launches_at(n)) {
      const SyncInstance& si = sync.at(id);
      const TimePs a = edges.linear_assert(si.ideal_assert, break_node) +
                       si.assert_offset();
      latest = std::max(latest, a);
    }
    res.ready[local_index[n.index()]] = RiseFall{latest, latest};
  }

  // Forward trace, eq. (1): R_z = max_i (R_i + P_iz).
  for (TNodeId n : cluster.nodes) {
    const auto& in = res.ready[local_index[n.index()]];
    if (!in) continue;
    // Data does not propagate combinationally through synchronising
    // elements or out of capture terminals.
    const NodeRole role = graph.node(n).role;
    if (role == NodeRole::kSyncDataIn || role == NodeRole::kSyncControl) continue;
    for (std::uint32_t ai : graph.fanout(n)) {
      const TArcRec& arc = graph.arc(ai);
      const RiseFall cand = propagate_forward(*in, arc, arc.delay);
      auto& slot = res.ready[local_index[arc.to.index()]];
      slot = slot ? rf_max(*slot, cand) : cand;
    }
  }

  // Seed capture terminals assigned to this pass with their closure times.
  for (std::size_t k = 0; k < capture_insts.size(); ++k) {
    if (!assigned[k]) continue;
    const SyncInstance& si = sync.at(capture_insts[k]);
    const TimePs c = edges.linear_close(si.ideal_close, break_node) +
                     si.close_offset();
    auto& slot = res.required[local_index[si.data_in.index()]];
    slot = slot ? rf_min(*slot, RiseFall{c, c}) : RiseFall{c, c};
  }

  // Backward trace, eq. (2) in required-time form: Q_i = min_z (Q_z - P_iz).
  for (auto it = cluster.nodes.rbegin(); it != cluster.nodes.rend(); ++it) {
    const TNodeId n = *it;
    const NodeRole role = graph.node(n).role;
    if (role == NodeRole::kSyncDataIn || role == NodeRole::kSyncControl) continue;
    for (std::uint32_t ai : graph.fanout(n)) {
      const TArcRec& arc = graph.arc(ai);
      const auto& out = res.required[local_index[arc.to.index()]];
      if (!out) continue;
      const RiseFall cand = propagate_backward(*out, arc, arc.delay);
      auto& slot = res.required[local_index[n.index()]];
      slot = slot ? rf_min(*slot, cand) : cand;
    }
  }

  return res;
}

namespace {

/// Collects the closure of `seeds` under `expand` into scratch.affected
/// (deduplicated local indices, unsorted).  `expand(li)` pushes the local
/// indices directly readable from node li.
template <class Expand>
void collect_cone(const std::vector<std::uint32_t>& seeds, std::size_t num_locals,
                  PassScratch& scratch, Expand expand) {
  scratch.mark.assign(num_locals, 0);
  scratch.stack.clear();
  scratch.affected.clear();
  for (std::uint32_t li : seeds) {
    if (!scratch.mark[li]) {
      scratch.mark[li] = 1;
      scratch.stack.push_back(li);
      scratch.affected.push_back(li);
    }
  }
  while (!scratch.stack.empty()) {
    const std::uint32_t li = scratch.stack.back();
    scratch.stack.pop_back();
    expand(li, [&](std::uint32_t to) {
      if (!scratch.mark[to]) {
        scratch.mark[to] = 1;
        scratch.stack.push_back(to);
        scratch.affected.push_back(to);
      }
    });
  }
}

}  // namespace

std::size_t update_analysis_pass(const TimingGraph& graph, const SyncModel& sync,
                                 const Cluster& cluster,
                                 const std::vector<std::uint32_t>& local_index,
                                 const ClockEdgeGraph& edges, std::size_t break_node,
                                 const std::vector<SyncId>& capture_insts,
                                 const std::vector<bool>& assigned,
                                 const std::vector<std::uint32_t>& fwd_seeds,
                                 const std::vector<std::uint32_t>& bwd_seeds,
                                 PassResult& res, PassScratch& scratch) {
  std::size_t retraced = 0;

  // Forward: re-derive ready over the forward cone of the seeds, in
  // topological order (Cluster::nodes is topologically sorted, so local
  // indices order the cone).  Values outside the cone cannot change: every
  // node reading a changed value is, by construction, inside it.
  if (!fwd_seeds.empty()) {
    collect_cone(fwd_seeds, cluster.nodes.size(), scratch,
                 [&](std::uint32_t li, auto push) {
                   const TNodeId n = cluster.nodes[li];
                   if (blocks_propagation(graph.node(n).role)) return;
                   for (std::uint32_t ai : graph.fanout(n)) {
                     push(local_index[graph.arc(ai).to.index()]);
                   }
                 });
    std::sort(scratch.affected.begin(), scratch.affected.end());
    for (std::uint32_t li : scratch.affected) {
      const TNodeId n = cluster.nodes[li];
      std::optional<RiseFall> v;
      const std::vector<SyncId>& launches = sync.launches_at(n);
      if (!launches.empty()) {
        TimePs latest = -kInfinitePs;
        for (SyncId id : launches) {
          const SyncInstance& si = sync.at(id);
          const TimePs a = edges.linear_assert(si.ideal_assert, break_node) +
                           si.assert_offset();
          latest = std::max(latest, a);
        }
        v = RiseFall{latest, latest};
      }
      for (std::uint32_t ai : graph.fanin(n)) {
        const TArcRec& arc = graph.arc(ai);
        if (blocks_propagation(graph.node(arc.from).role)) continue;
        const auto& in = res.ready[local_index[arc.from.index()]];
        if (!in) continue;
        const RiseFall cand = propagate_forward(*in, arc, arc.delay);
        v = v ? rf_max(*v, cand) : cand;
      }
      res.ready[li] = v;
    }
    retraced += scratch.affected.size();
  }

  // Backward: the mirror image over the backward cone, in reverse
  // topological order.  A predecessor reads required through its own fanout
  // regardless of the seed node's role, but blocked predecessors never
  // propagate further back.
  if (!bwd_seeds.empty()) {
    collect_cone(bwd_seeds, cluster.nodes.size(), scratch,
                 [&](std::uint32_t li, auto push) {
                   const TNodeId n = cluster.nodes[li];
                   for (std::uint32_t ai : graph.fanin(n)) {
                     const TNodeId from = graph.arc(ai).from;
                     if (blocks_propagation(graph.node(from).role)) continue;
                     push(local_index[from.index()]);
                   }
                 });
    std::sort(scratch.affected.begin(), scratch.affected.end(),
              std::greater<std::uint32_t>());
    for (std::uint32_t li : scratch.affected) {
      const TNodeId n = cluster.nodes[li];
      std::optional<RiseFall> v;
      if (!sync.captures_at(n).empty()) {
        for (std::size_t k = 0; k < capture_insts.size(); ++k) {
          if (!assigned[k]) continue;
          const SyncInstance& si = sync.at(capture_insts[k]);
          if (si.data_in != n) continue;
          const TimePs c = edges.linear_close(si.ideal_close, break_node) +
                           si.close_offset();
          v = v ? rf_min(*v, RiseFall{c, c}) : RiseFall{c, c};
        }
      }
      if (!blocks_propagation(graph.node(n).role)) {
        for (std::uint32_t ai : graph.fanout(n)) {
          const TArcRec& arc = graph.arc(ai);
          const auto& out = res.required[local_index[arc.to.index()]];
          if (!out) continue;
          const RiseFall cand = propagate_backward(*out, arc, arc.delay);
          v = v ? rf_min(*v, cand) : cand;
        }
      }
      res.required[li] = v;
    }
    retraced += scratch.affected.size();
  }

  return retraced;
}

}  // namespace hb
