#include "sta/analysis_pass.hpp"

namespace hb {

PassResult run_analysis_pass(const TimingGraph& graph, const SyncModel& sync,
                             const Cluster& cluster,
                             const std::vector<std::uint32_t>& local_index,
                             const ClockEdgeGraph& edges, std::size_t break_node,
                             const std::vector<SyncId>& capture_insts,
                             const std::vector<bool>& assigned) {
  PassResult res;
  res.ready.resize(cluster.nodes.size());
  res.required.resize(cluster.nodes.size());

  // Seed launch terminals: the latest actual assertion over the node's
  // launch instances, in linear coordinates.
  for (TNodeId n : cluster.source_nodes) {
    TimePs latest = -kInfinitePs;
    for (SyncId id : sync.launches_at(n)) {
      const SyncInstance& si = sync.at(id);
      const TimePs a = edges.linear_assert(si.ideal_assert, break_node) +
                       si.assert_offset();
      latest = std::max(latest, a);
    }
    res.ready[local_index[n.index()]] = RiseFall{latest, latest};
  }

  // Forward trace, eq. (1): R_z = max_i (R_i + P_iz).
  for (TNodeId n : cluster.nodes) {
    const auto& in = res.ready[local_index[n.index()]];
    if (!in) continue;
    // Data does not propagate combinationally through synchronising
    // elements or out of capture terminals.
    const NodeRole role = graph.node(n).role;
    if (role == NodeRole::kSyncDataIn || role == NodeRole::kSyncControl) continue;
    for (std::uint32_t ai : graph.fanout(n)) {
      const TArcRec& arc = graph.arc(ai);
      const RiseFall cand = propagate_forward(*in, arc, arc.delay);
      auto& slot = res.ready[local_index[arc.to.index()]];
      slot = slot ? rf_max(*slot, cand) : cand;
    }
  }

  // Seed capture terminals assigned to this pass with their closure times.
  for (std::size_t k = 0; k < capture_insts.size(); ++k) {
    if (!assigned[k]) continue;
    const SyncInstance& si = sync.at(capture_insts[k]);
    const TimePs c = edges.linear_close(si.ideal_close, break_node) +
                     si.close_offset();
    auto& slot = res.required[local_index[si.data_in.index()]];
    slot = slot ? rf_min(*slot, RiseFall{c, c}) : RiseFall{c, c};
  }

  // Backward trace, eq. (2) in required-time form: Q_i = min_z (Q_z - P_iz).
  for (auto it = cluster.nodes.rbegin(); it != cluster.nodes.rend(); ++it) {
    const TNodeId n = *it;
    const NodeRole role = graph.node(n).role;
    if (role == NodeRole::kSyncDataIn || role == NodeRole::kSyncControl) continue;
    for (std::uint32_t ai : graph.fanout(n)) {
      const TArcRec& arc = graph.arc(ai);
      const auto& out = res.required[local_index[arc.to.index()]];
      if (!out) continue;
      const RiseFall cand = propagate_backward(*out, arc, arc.delay);
      auto& slot = res.required[local_index[n.index()]];
      slot = slot ? rf_min(*slot, cand) : cand;
    }
  }

  return res;
}

}  // namespace hb
