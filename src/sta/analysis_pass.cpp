#include "sta/analysis_pass.hpp"

#include <bit>

namespace hb {
namespace {

constexpr std::uint64_t bit_of(std::uint32_t li) {
  return std::uint64_t{1} << (li & 63);
}

/// Latest actual assertion over the launch instances at `node`, in linear
/// coordinates; false when the node launches nothing.
bool launch_seed(const SyncModel& sync, const ClockEdgeGraph& edges,
                 std::size_t break_node, TNodeId node, RiseFall& out) {
  const std::vector<SyncId>& launches = sync.launches_at(node);
  if (launches.empty()) return false;
  TimePs latest = -kInfinitePs;
  for (SyncId id : launches) {
    const SyncInstance& si = sync.at(id);
    const TimePs a =
        edges.linear_assert(si.ideal_assert, break_node) + si.assert_offset();
    latest = std::max(latest, a);
  }
  out = RiseFall{latest, latest};
  return true;
}

/// Fused mark-and-visit sweep over the forward cone of `seeds`: processes
/// marked locals in ascending order (= topological order, since every arc
/// goes from a lower local index to a higher one) and marks the successors
/// of each processed non-blocked node.  Mark words are consumed (zeroed) as
/// the sweep passes, so the workspace is clean on return.  Returns the
/// number of nodes visited.
template <class Visit>
std::size_t sweep_forward(const Cluster& cluster,
                          const std::vector<std::uint32_t>& seeds,
                          PassWorkspace& ws, Visit visit) {
  if (seeds.empty()) return 0;
  std::vector<std::uint64_t>& m = ws.marks;
  std::size_t lo = SIZE_MAX, hi = 0;
  for (std::uint32_t li : seeds) {
    const std::size_t w = li >> 6;
    m[w] |= bit_of(li);
    lo = std::min(lo, w);
    hi = std::max(hi, w);
  }
  std::size_t count = 0;
  for (std::size_t w = lo; w <= hi; ++w) {
    std::uint64_t done = 0;
    for (;;) {
      const std::uint64_t pend = m[w] & ~done;
      if (pend == 0) break;
      const unsigned b = static_cast<unsigned>(std::countr_zero(pend));
      done |= std::uint64_t{1} << b;
      const std::uint32_t li = static_cast<std::uint32_t>(w * 64 + b);
      visit(li);
      ++count;
      if (!cluster.blocked[li]) {
        const std::uint32_t end = cluster.out_offsets[li + 1];
        for (std::uint32_t k = cluster.out_offsets[li]; k < end; ++k) {
          const std::uint32_t to = cluster.out_local[k];
          m[to >> 6] |= bit_of(to);
          hi = std::max(hi, static_cast<std::size_t>(to >> 6));
        }
      }
    }
    m[w] = 0;
  }
  return count;
}

/// Mirror sweep over the backward cone: descending local index (= reverse
/// topological order), marking each processed node's non-blocked
/// predecessors.
template <class Visit>
std::size_t sweep_backward(const Cluster& cluster,
                           const std::vector<std::uint32_t>& seeds,
                           PassWorkspace& ws, Visit visit) {
  if (seeds.empty()) return 0;
  std::vector<std::uint64_t>& m = ws.marks;
  std::size_t lo = SIZE_MAX, hi = 0;
  for (std::uint32_t li : seeds) {
    const std::size_t w = li >> 6;
    m[w] |= bit_of(li);
    lo = std::min(lo, w);
    hi = std::max(hi, w);
  }
  std::size_t count = 0;
  std::size_t w = hi;
  for (;;) {
    std::uint64_t done = 0;
    for (;;) {
      const std::uint64_t pend = m[w] & ~done;
      if (pend == 0) break;
      const unsigned b = 63u - static_cast<unsigned>(std::countl_zero(pend));
      done |= std::uint64_t{1} << b;
      const std::uint32_t li = static_cast<std::uint32_t>(w * 64 + b);
      visit(li);
      ++count;
      const std::uint32_t end = cluster.in_offsets[li + 1];
      for (std::uint32_t k = cluster.in_offsets[li]; k < end; ++k) {
        const std::uint32_t fl = cluster.in_local[k];
        if (cluster.blocked[fl]) continue;
        m[fl >> 6] |= bit_of(fl);
        lo = std::min(lo, static_cast<std::size_t>(fl >> 6));
      }
    }
    m[w] = 0;
    if (w == lo) break;
    --w;
  }
  return count;
}

}  // namespace

void run_analysis_pass_into(const TimingGraph& graph, const SyncModel& sync,
                            const Cluster& cluster,
                            const std::vector<std::uint32_t>& local_index,
                            const ClockEdgeGraph& edges, std::size_t break_node,
                            const std::vector<SyncId>& capture_insts,
                            const std::vector<bool>& assigned, PassResult& res) {
  const std::size_t n = cluster.nodes.size();
  const TArcRec* arcs = graph.arcs_data();
  res.ready.reset(n);
  res.required.reset(n);
  RiseFall* ready = res.ready.data();
  RiseFall* required = res.required.data();

  // Seed launch terminals: the latest actual assertion over the node's
  // launch instances, in linear coordinates.
  for (TNodeId node : cluster.source_nodes) {
    RiseFall seed;
    if (launch_seed(sync, edges, break_node, node, seed)) {
      ready[local_index[node.index()]] = seed;
    }
  }

  // Forward wavefront, eq. (1): R_z = max_i (R_i + P_iz).  Ascending local
  // index is level order, so one linear sweep settles every node; data does
  // not propagate combinationally out of synchronising-element terminals.
  // The max-fold is unconditional: -kInfinitePs slots are its identity.
  for (std::uint32_t li = 0; li < n; ++li) {
    if (!res.ready.has(li) || cluster.blocked[li]) continue;
    const RiseFall in = ready[li];
    const std::uint32_t end = cluster.out_offsets[li + 1];
    for (std::uint32_t k = cluster.out_offsets[li]; k < end; ++k) {
      const TArcRec& arc = arcs[cluster.out_arc[k]];
      const std::uint32_t to = cluster.out_local[k];
      ready[to] = rf_max(ready[to], propagate_forward(in, arc, arc.delay));
    }
  }

  // Seed capture terminals assigned to this pass with their closure times.
  for (std::size_t k = 0; k < capture_insts.size(); ++k) {
    if (!assigned[k]) continue;
    const SyncInstance& si = sync.at(capture_insts[k]);
    const TimePs c =
        edges.linear_close(si.ideal_close, break_node) + si.close_offset();
    RiseFall& slot = required[local_index[si.data_in.index()]];
    slot = rf_min(slot, RiseFall{c, c});
  }

  // Backward wavefront, eq. (2) in required-time form: Q_i = min_z (Q_z - P_iz).
  // Descending local index is reverse level order, so every successor is
  // final before it is read.  Folding through an absent successor leaves the
  // slot on the absent side of the has() threshold (see PassSide).
  for (std::uint32_t li = static_cast<std::uint32_t>(n); li-- > 0;) {
    if (cluster.blocked[li]) continue;
    RiseFall acc = required[li];
    const std::uint32_t end = cluster.out_offsets[li + 1];
    for (std::uint32_t k = cluster.out_offsets[li]; k < end; ++k) {
      const TArcRec& arc = arcs[cluster.out_arc[k]];
      acc = rf_min(acc, propagate_backward(required[cluster.out_local[k]], arc,
                                           arc.delay));
    }
    required[li] = acc;
  }
}

PassResult run_analysis_pass(const TimingGraph& graph, const SyncModel& sync,
                             const Cluster& cluster,
                             const std::vector<std::uint32_t>& local_index,
                             const ClockEdgeGraph& edges, std::size_t break_node,
                             const std::vector<SyncId>& capture_insts,
                             const std::vector<bool>& assigned) {
  PassResult res;
  run_analysis_pass_into(graph, sync, cluster, local_index, edges, break_node,
                         capture_insts, assigned, res);
  return res;
}

std::size_t update_analysis_pass(const TimingGraph& graph, const SyncModel& sync,
                                 const Cluster& cluster,
                                 const std::vector<std::uint32_t>& /*local_index*/,
                                 const ClockEdgeGraph& edges, std::size_t break_node,
                                 const std::vector<SyncId>& capture_insts,
                                 const std::vector<bool>& assigned,
                                 const std::vector<std::uint32_t>& fwd_seeds,
                                 const std::vector<std::uint32_t>& bwd_seeds,
                                 PassResult& res, PassWorkspace& ws) {
  ws.ensure(cluster.nodes.size());
  const TArcRec* arcs = graph.arcs_data();
  RiseFall* ready = res.ready.data();
  RiseFall* required = res.required.data();
  std::size_t retraced = 0;

  // Forward: re-derive ready over the forward cone of the seeds.  The sweep
  // visits the cone in ascending local index (= topological) order, so every
  // changed predecessor is settled before its readers; values outside the
  // cone cannot change.  Each cone node is re-derived from scratch by
  // max-folding over its fanin (absent tails fold as the identity); blocked
  // tails never propagate their ready onward.
  retraced += sweep_forward(cluster, fwd_seeds, ws, [&](std::uint32_t li) {
    RiseFall v = res.ready.absent();
    launch_seed(sync, edges, break_node, cluster.nodes[li], v);
    const std::uint32_t end = cluster.in_offsets[li + 1];
    for (std::uint32_t k = cluster.in_offsets[li]; k < end; ++k) {
      const std::uint32_t fl = cluster.in_local[k];
      if (cluster.blocked[fl]) continue;
      const TArcRec& arc = arcs[cluster.in_arc[k]];
      v = rf_max(v, propagate_forward(ready[fl], arc, arc.delay));
    }
    ready[li] = v;
  });

  // Backward: the mirror image over the backward cone, in reverse
  // topological order.  A predecessor reads required through its own fanout
  // regardless of the seed node's role, but blocked predecessors never
  // propagate further back.
  retraced += sweep_backward(cluster, bwd_seeds, ws, [&](std::uint32_t li) {
    RiseFall v = res.required.absent();
    const TNodeId node = cluster.nodes[li];
    if (!sync.captures_at(node).empty()) {
      for (std::size_t k = 0; k < capture_insts.size(); ++k) {
        if (!assigned[k]) continue;
        const SyncInstance& si = sync.at(capture_insts[k]);
        if (si.data_in != node) continue;
        const TimePs c =
            edges.linear_close(si.ideal_close, break_node) + si.close_offset();
        v = rf_min(v, RiseFall{c, c});
      }
    }
    if (!cluster.blocked[li]) {
      const std::uint32_t end = cluster.out_offsets[li + 1];
      for (std::uint32_t k = cluster.out_offsets[li]; k < end; ++k) {
        const TArcRec& arc = arcs[cluster.out_arc[k]];
        v = rf_min(v, propagate_backward(required[cluster.out_local[k]], arc,
                                         arc.delay));
      }
    }
    required[li] = v;
  });

  return retraced;
}

std::size_t pass_cone_size(const Cluster& cluster,
                           const std::vector<std::uint32_t>& fwd_seeds,
                           const std::vector<std::uint32_t>& bwd_seeds,
                           PassWorkspace& ws) {
  ws.ensure(cluster.nodes.size());
  auto noop = [](std::uint32_t) {};
  return sweep_forward(cluster, fwd_seeds, ws, noop) +
         sweep_backward(cluster, bwd_seeds, ws, noop);
}

}  // namespace hb
