#include "sta/analysis_pass.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>

#include "util/thread_pool.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define HB_X86_KERNELS 1
#include <immintrin.h>
#endif

namespace hb {
namespace {

/// PassSide presence threshold for the ready side (absent_ = -kInfinitePs):
/// a slot is present iff rise > absent_/2.  The kernels read raw arrays, so
/// they test against the same constant PassSide::has uses.
constexpr TimePs kFwdAbsentHalf = -(kInfinitePs / 2);

// ---------------------------------------------------------------------------
// Kernel-variant and tuning state
// ---------------------------------------------------------------------------

std::atomic<int> g_kernel_mode{static_cast<int>(KernelMode::kAuto)};

std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* e = std::getenv(name);
  if (e == nullptr || *e == '\0') return fallback;
  const long long v = std::atoll(e);
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

std::atomic<std::size_t>& min_parallel_nodes_atomic() {
  static std::atomic<std::size_t> v{
      env_size_t("HB_PAR_MIN_NODES", SweepTuning{}.min_parallel_nodes)};
  return v;
}

std::atomic<std::size_t>& min_grain_atomic() {
  static std::atomic<std::size_t> v{
      env_size_t("HB_PAR_GRAIN", SweepTuning{}.min_grain)};
  return v;
}

bool use_simd_kernels() {
  return kernel_mode() == KernelMode::kAuto && simd_kernels_available();
}

// ---------------------------------------------------------------------------
// Scalar sweep kernels
// ---------------------------------------------------------------------------

/// Forward wavefront, eq. (1), scatter form: R_z = max_i (R_i + P_iz).
/// Ascending local index is level order, so one linear sweep settles every
/// node, and the sweep-order arc numbering makes cluster.out_arc reads
/// monotone through the arc array.  Absent tails are skipped (their slots
/// hold the exact -kInfinitePs sentinel and nothing downstream of only
/// absent tails is touched), so untouched heads keep the exact sentinel too.
void forward_scatter_scalar(const Cluster& cl, const TArcRec* arcs,
                            RiseFall* ready) {
  const std::size_t n = cl.nodes.size();
  for (std::uint32_t li = 0; li < n; ++li) {
    if (ready[li].rise <= kFwdAbsentHalf || cl.blocked[li]) continue;
    const RiseFall in = ready[li];
    const std::uint32_t end = cl.out_offsets[li + 1];
    for (std::uint32_t k = cl.out_offsets[li]; k < end; ++k) {
      const TArcRec& arc = arcs[cl.out_arc[k]];
      const std::uint32_t to = cl.out_local[k];
      ready[to] = rf_max(ready[to], propagate_forward(in, arc, arc.delay));
    }
  }
}

/// Forward wavefront, gather form, over locals [begin, end) of one level:
/// each node max-folds over its own fanin and writes only its own slot, so
/// any partition of a level into chunks computes the same bytes — the fold
/// is commutative and associative over int64.  Contributions from blocked
/// tails are masked to the fold identity (branchless), mirroring the
/// scatter kernel's skip; contributions *through* absent tails land near
/// -2^50 and lose every max against real times, and a slot that stays on
/// the absent side of the threshold is canonicalised back to the exact
/// sentinel, so gather and scatter results are byte-identical.
void forward_gather_scalar(const Cluster& cl, const TArcRec* arcs,
                           RiseFall* ready, std::uint32_t begin,
                           std::uint32_t end) {
  for (std::uint32_t li = begin; li < end; ++li) {
    RiseFall v = ready[li];  // launch seed or the exact absence sentinel
    const std::uint32_t ke = cl.in_offsets[li + 1];
    for (std::uint32_t k = cl.in_offsets[li]; k < ke; ++k) {
      const std::uint32_t fl = cl.in_local[k];
      const TArcRec& arc = arcs[cl.in_arc[k]];
      RiseFall c = propagate_forward(ready[fl], arc, arc.delay);
      const bool blk = cl.blocked[fl] != 0;
      c.rise = blk ? -kInfinitePs : c.rise;
      c.fall = blk ? -kInfinitePs : c.fall;
      v = rf_max(v, c);
    }
    const bool absent = v.rise <= kFwdAbsentHalf;
    v.rise = absent ? -kInfinitePs : v.rise;
    v.fall = absent ? -kInfinitePs : v.fall;
    ready[li] = v;
  }
}

/// Backward wavefront, eq. (2) in required-time form, over locals
/// [begin, end): Q_i = min_z (Q_z - P_iz).  Already a gather — each node
/// min-folds over its fanout (all at strictly higher locals) and writes
/// only its own slot.  Iterates descending so one call over [0, n) is the
/// full serial sweep; within a single level the order is immaterial (levels
/// contain no arcs), so per-level chunks produce the same bytes.  Folding
/// through an absent successor leaves the slot on the absent side of the
/// has() threshold (see PassSide).
void backward_gather_scalar(const Cluster& cl, const TArcRec* arcs,
                            RiseFall* required, std::uint32_t begin,
                            std::uint32_t end) {
  for (std::uint32_t li = end; li-- > begin;) {
    if (cl.blocked[li]) continue;
    RiseFall acc = required[li];
    const std::uint32_t ke = cl.out_offsets[li + 1];
    for (std::uint32_t k = cl.out_offsets[li]; k < ke; ++k) {
      const TArcRec& arc = arcs[cl.out_arc[k]];
      acc = rf_min(acc, propagate_backward(required[cl.out_local[k]], arc,
                                           arc.delay));
    }
    required[li] = acc;
  }
}

// ---------------------------------------------------------------------------
// Vectorised sweep kernels (AVX2, runtime-dispatched)
//
// A RiseFall pair is one 128-bit vector: [rise | fall] as two int64 lanes.
// The ∓kInfinitePs sentinel representation makes every fold an unconditional
// two-lane max/min chain, and the unate select becomes a branchless mask
// blend: kPositive passes [rise|fall] through, kNegative swaps the halves,
// kNone takes the worst lane in both.  Same fold sets, same fold order,
// same integer arithmetic as the scalar kernels — byte-identical results.
// ---------------------------------------------------------------------------

#ifdef HB_X86_KERNELS

__attribute__((target("avx2"), always_inline)) inline __m128i
load_rf(const RiseFall* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

__attribute__((target("avx2"), always_inline)) inline void store_rf(
    RiseFall* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

/// Lanewise 64-bit max/min: SSE/AVX2 have no vpmaxsq, so select through a
/// signed compare (the floating-point vmaxpd shape of the fold, on the
/// integer units).
__attribute__((target("avx2"), always_inline)) inline __m128i max64(
    __m128i a, __m128i b) {
  return _mm_blendv_epi8(b, a, _mm_cmpgt_epi64(a, b));
}

__attribute__((target("avx2"), always_inline)) inline __m128i min64(
    __m128i a, __m128i b) {
  return _mm_blendv_epi8(a, b, _mm_cmpgt_epi64(a, b));
}

/// [rise | fall] -> [fall | rise].
__attribute__((target("avx2"), always_inline)) inline __m128i swap_rf(
    __m128i v) {
  return _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2));
}

/// Branchless unate select: in for kPositive, swapped for kNegative, the
/// lanewise worst (max forward / min backward) for kNone.
__attribute__((target("avx2"), always_inline)) inline __m128i unate_select(
    __m128i in, __m128i swapped, __m128i worst, Unate unate) {
  const __m128i mpos =
      _mm_set1_epi64x(-static_cast<std::int64_t>(unate == Unate::kPositive));
  const __m128i mneg =
      _mm_set1_epi64x(-static_cast<std::int64_t>(unate == Unate::kNegative));
  const __m128i picked =
      _mm_or_si128(_mm_and_si128(in, mpos), _mm_and_si128(swapped, mneg));
  return _mm_or_si128(picked,
                      _mm_andnot_si128(_mm_or_si128(mpos, mneg), worst));
}

__attribute__((target("avx2"))) void forward_scatter_avx2(const Cluster& cl,
                                                          const TArcRec* arcs,
                                                          RiseFall* ready) {
  const std::size_t n = cl.nodes.size();
  for (std::uint32_t li = 0; li < n; ++li) {
    if (ready[li].rise <= kFwdAbsentHalf || cl.blocked[li]) continue;
    const __m128i in = load_rf(&ready[li]);
    const __m128i swapped = swap_rf(in);
    const __m128i worst = max64(in, swapped);  // hoisted: constant per tail
    const std::uint32_t end = cl.out_offsets[li + 1];
    for (std::uint32_t k = cl.out_offsets[li]; k < end; ++k) {
      const TArcRec& arc = arcs[cl.out_arc[k]];
      const std::uint32_t to = cl.out_local[k];
      const __m128i sel = unate_select(in, swapped, worst, arc.unate);
      const __m128i out = _mm_add_epi64(sel, load_rf(&arc.delay));
      store_rf(&ready[to], max64(load_rf(&ready[to]), out));
    }
  }
}

__attribute__((target("avx2"))) void forward_gather_avx2(const Cluster& cl,
                                                         const TArcRec* arcs,
                                                         RiseFall* ready,
                                                         std::uint32_t begin,
                                                         std::uint32_t end) {
  const __m128i absent = _mm_set1_epi64x(-kInfinitePs);
  const __m128i half = _mm_set1_epi64x(kFwdAbsentHalf);
  for (std::uint32_t li = begin; li < end; ++li) {
    __m128i v = load_rf(&ready[li]);
    const std::uint32_t ke = cl.in_offsets[li + 1];
    for (std::uint32_t k = cl.in_offsets[li]; k < ke; ++k) {
      const std::uint32_t fl = cl.in_local[k];
      const TArcRec& arc = arcs[cl.in_arc[k]];
      const __m128i in = load_rf(&ready[fl]);
      const __m128i swapped = swap_rf(in);
      const __m128i sel = unate_select(in, swapped, max64(in, swapped),
                                       arc.unate);
      __m128i c = _mm_add_epi64(sel, load_rf(&arc.delay));
      const __m128i mblk =
          _mm_set1_epi64x(-static_cast<std::int64_t>(cl.blocked[fl] != 0));
      c = _mm_blendv_epi8(c, absent, mblk);
      v = max64(v, c);
    }
    // Canonicalise still-absent slots (rise lane <= threshold) back to the
    // exact sentinel; broadcast the rise lane so both lanes blend together.
    const __m128i rise2 = _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 1, 0));
    const __m128i is_absent = _mm_cmpgt_epi64(half, rise2);
    v = _mm_blendv_epi8(v, absent, is_absent);
    store_rf(&ready[li], v);
  }
}

__attribute__((target("avx2"))) void backward_gather_avx2(const Cluster& cl,
                                                          const TArcRec* arcs,
                                                          RiseFall* required,
                                                          std::uint32_t begin,
                                                          std::uint32_t end) {
  for (std::uint32_t li = end; li-- > begin;) {
    if (cl.blocked[li]) continue;
    __m128i acc = load_rf(&required[li]);
    const std::uint32_t ke = cl.out_offsets[li + 1];
    for (std::uint32_t k = cl.out_offsets[li]; k < ke; ++k) {
      const TArcRec& arc = arcs[cl.out_arc[k]];
      const __m128i p = _mm_sub_epi64(load_rf(&required[cl.out_local[k]]),
                                      load_rf(&arc.delay));
      const __m128i swapped = swap_rf(p);
      acc = min64(acc, unate_select(p, swapped, min64(p, swapped), arc.unate));
    }
    store_rf(&required[li], acc);
  }
}

#endif  // HB_X86_KERNELS

// ---------------------------------------------------------------------------

using ForwardFullFn = void (*)(const Cluster&, const TArcRec*, RiseFall*);
using RangeFn = void (*)(const Cluster&, const TArcRec*, RiseFall*,
                         std::uint32_t, std::uint32_t);

ForwardFullFn select_forward_scatter() {
#ifdef HB_X86_KERNELS
  if (use_simd_kernels()) return forward_scatter_avx2;
#endif
  return forward_scatter_scalar;
}

RangeFn select_forward_gather() {
#ifdef HB_X86_KERNELS
  if (use_simd_kernels()) return forward_gather_avx2;
#endif
  return forward_gather_scalar;
}

RangeFn select_backward_gather() {
#ifdef HB_X86_KERNELS
  if (use_simd_kernels()) return backward_gather_avx2;
#endif
  return backward_gather_scalar;
}

/// Chunk grain for one level: never below the tuned floor, and no finer
/// than 1/64th of the level, so chunk dispatch stays a vanishing fraction
/// of the fold work.  A pure function of the level size — chunk boundaries
/// are identical at every thread count.
std::size_t level_grain(std::size_t level_size, const SweepTuning& tuning) {
  return std::max(tuning.min_grain, level_size / 64);
}

/// Latest actual assertion over the launch instances at `node`, in linear
/// coordinates; false when the node launches nothing.
bool launch_seed(const SyncModel& sync, const ClockEdgeGraph& edges,
                 std::size_t break_node, TNodeId node, RiseFall& out) {
  const std::vector<SyncId>& launches = sync.launches_at(node);
  if (launches.empty()) return false;
  TimePs latest = -kInfinitePs;
  for (SyncId id : launches) {
    const SyncInstance& si = sync.at(id);
    const TimePs a =
        edges.linear_assert(si.ideal_assert, break_node) + si.assert_offset();
    latest = std::max(latest, a);
  }
  out = RiseFall{latest, latest};
  return true;
}

using passdetail::sweep_backward;
using passdetail::sweep_forward;

}  // namespace

void set_kernel_mode(KernelMode mode) {
  g_kernel_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

KernelMode kernel_mode() {
  return static_cast<KernelMode>(g_kernel_mode.load(std::memory_order_relaxed));
}

bool simd_kernels_available() {
#ifdef HB_X86_KERNELS
  static const bool available = __builtin_cpu_supports("avx2");
  return available;
#else
  return false;
#endif
}

const char* active_kernel_name() {
  return simd_kernels_available() ? "avx2" : "scalar";
}

void set_sweep_tuning(const SweepTuning& tuning) {
  min_parallel_nodes_atomic().store(tuning.min_parallel_nodes,
                                    std::memory_order_relaxed);
  min_grain_atomic().store(std::max<std::size_t>(1, tuning.min_grain),
                           std::memory_order_relaxed);
}

SweepTuning sweep_tuning() {
  SweepTuning t;
  t.min_parallel_nodes =
      min_parallel_nodes_atomic().load(std::memory_order_relaxed);
  t.min_grain = min_grain_atomic().load(std::memory_order_relaxed);
  return t;
}

void run_analysis_pass_into(const TimingGraph& graph, const SyncModel& sync,
                            const Cluster& cluster,
                            const std::vector<std::uint32_t>& local_index,
                            const ClockEdgeGraph& edges, std::size_t break_node,
                            const std::vector<SyncId>& capture_insts,
                            const std::vector<bool>& assigned, PassResult& res,
                            ThreadPool* pool) {
  const std::size_t n = cluster.nodes.size();
  const TArcRec* arcs = graph.arcs_data();
  res.ready.reset(n);
  res.required.reset(n);
  RiseFall* ready = res.ready.data();
  RiseFall* required = res.required.data();

  const SweepTuning tuning = sweep_tuning();
  const bool parallel = pool != nullptr && pool->size() > 1 &&
                        n >= tuning.min_parallel_nodes;
  const std::vector<std::uint32_t>& levels = cluster.level_offsets;

  // Seed launch terminals: the latest actual assertion over the node's
  // launch instances, in linear coordinates.  Launch nodes (latch outputs,
  // input ports) have no fanin arcs, so the gather kernel preserves seeds.
  for (TNodeId node : cluster.source_nodes) {
    RiseFall seed;
    if (launch_seed(sync, edges, break_node, node, seed)) {
      ready[local_index[node.index()]] = seed;
    }
  }

  // Forward wavefront, eq. (1).  Serial: one scatter sweep in ascending
  // local (= level) order.  Parallel: per level in ascending order, chunk
  // the level's contiguous local range across the pool and gather each node
  // from its fanin — byte-identical to the scatter sweep (see kernels).
  if (!parallel) {
    select_forward_scatter()(cluster, arcs, ready);
  } else {
    const RangeFn fwd = select_forward_gather();
    for (std::size_t l = 0; l + 1 < levels.size(); ++l) {
      const std::uint32_t base = levels[l];
      const std::size_t count = levels[l + 1] - base;
      pool->parallel_for(count, level_grain(count, tuning),
                         [&](std::size_t b, std::size_t e, int) {
                           fwd(cluster, arcs, ready,
                               base + static_cast<std::uint32_t>(b),
                               base + static_cast<std::uint32_t>(e));
                         });
    }
  }

  // Seed capture terminals assigned to this pass with their closure times.
  for (std::size_t k = 0; k < capture_insts.size(); ++k) {
    if (!assigned[k]) continue;
    const SyncInstance& si = sync.at(capture_insts[k]);
    const TimePs c =
        edges.linear_close(si.ideal_close, break_node) + si.close_offset();
    RiseFall& slot = required[local_index[si.data_in.index()]];
    slot = rf_min(slot, RiseFall{c, c});
  }

  // Backward wavefront, eq. (2) in required-time form.  Already a gather:
  // every successor lives at a strictly higher level, final before it is
  // read, whether the sweep is one descending range or descending levels
  // with chunked wavefronts.
  if (!parallel) {
    select_backward_gather()(cluster, arcs, required, 0,
                             static_cast<std::uint32_t>(n));
  } else {
    const RangeFn bwd = select_backward_gather();
    for (std::size_t l = levels.size() - 1; l-- > 0;) {
      const std::uint32_t base = levels[l];
      const std::size_t count = levels[l + 1] - base;
      pool->parallel_for(count, level_grain(count, tuning),
                         [&](std::size_t b, std::size_t e, int) {
                           bwd(cluster, arcs, required,
                               base + static_cast<std::uint32_t>(b),
                               base + static_cast<std::uint32_t>(e));
                         });
    }
  }
}

PassResult run_analysis_pass(const TimingGraph& graph, const SyncModel& sync,
                             const Cluster& cluster,
                             const std::vector<std::uint32_t>& local_index,
                             const ClockEdgeGraph& edges, std::size_t break_node,
                             const std::vector<SyncId>& capture_insts,
                             const std::vector<bool>& assigned) {
  PassResult res;
  run_analysis_pass_into(graph, sync, cluster, local_index, edges, break_node,
                         capture_insts, assigned, res);
  return res;
}

std::size_t update_analysis_pass(const TimingGraph& graph, const SyncModel& sync,
                                 const Cluster& cluster,
                                 const std::vector<std::uint32_t>& /*local_index*/,
                                 const ClockEdgeGraph& edges, std::size_t break_node,
                                 const std::vector<SyncId>& capture_insts,
                                 const std::vector<bool>& assigned,
                                 const std::vector<std::uint32_t>& fwd_seeds,
                                 const std::vector<std::uint32_t>& bwd_seeds,
                                 PassResult& res, PassWorkspace& ws) {
  ws.ensure(cluster.nodes.size());
  const TArcRec* arcs = graph.arcs_data();
  RiseFall* ready = res.ready.data();
  RiseFall* required = res.required.data();
  std::size_t retraced = 0;

  // Forward: re-derive ready over the forward cone of the seeds.  The sweep
  // visits the cone in ascending local index (= topological) order, so every
  // changed predecessor is settled before its readers; values outside the
  // cone cannot change.  Each cone node is re-derived from scratch by
  // max-folding over its fanin (absent tails fold as the identity); blocked
  // tails never propagate their ready onward.
  retraced += sweep_forward(cluster, fwd_seeds, ws, [&](std::uint32_t li) {
    RiseFall v = res.ready.absent();
    launch_seed(sync, edges, break_node, cluster.nodes[li], v);
    const std::uint32_t end = cluster.in_offsets[li + 1];
    for (std::uint32_t k = cluster.in_offsets[li]; k < end; ++k) {
      const std::uint32_t fl = cluster.in_local[k];
      if (cluster.blocked[fl]) continue;
      const TArcRec& arc = arcs[cluster.in_arc[k]];
      v = rf_max(v, propagate_forward(ready[fl], arc, arc.delay));
    }
    ready[li] = v;
  });

  // Backward: the mirror image over the backward cone, in reverse
  // topological order.  A predecessor reads required through its own fanout
  // regardless of the seed node's role, but blocked predecessors never
  // propagate further back.
  retraced += sweep_backward(cluster, bwd_seeds, ws, [&](std::uint32_t li) {
    RiseFall v = res.required.absent();
    const TNodeId node = cluster.nodes[li];
    if (!sync.captures_at(node).empty()) {
      for (std::size_t k = 0; k < capture_insts.size(); ++k) {
        if (!assigned[k]) continue;
        const SyncInstance& si = sync.at(capture_insts[k]);
        if (si.data_in != node) continue;
        const TimePs c =
            edges.linear_close(si.ideal_close, break_node) + si.close_offset();
        v = rf_min(v, RiseFall{c, c});
      }
    }
    if (!cluster.blocked[li]) {
      const std::uint32_t end = cluster.out_offsets[li + 1];
      for (std::uint32_t k = cluster.out_offsets[li]; k < end; ++k) {
        const TArcRec& arc = arcs[cluster.out_arc[k]];
        v = rf_min(v, propagate_backward(required[cluster.out_local[k]], arc,
                                         arc.delay));
      }
    }
    required[li] = v;
  });

  return retraced;
}

std::size_t pass_cone_size(const Cluster& cluster,
                           const std::vector<std::uint32_t>& fwd_seeds,
                           const std::vector<std::uint32_t>& bwd_seeds,
                           PassWorkspace& ws) {
  ws.ensure(cluster.nodes.size());
  auto noop = [](std::uint32_t) {};
  return sweep_forward(cluster, fwd_seeds, ws, noop) +
         sweep_backward(cluster, bwd_seeds, ws, noop);
}

}  // namespace hb
