// One block-oriented cluster analysis pass (paper Section 7, equations (1)
// and (2)) in the linearised coordinates of a chosen break of the clock
// period.
//
// Ready times are traced forward from the cluster's launch terminals
// (synchronising element outputs and primary inputs); required times are
// traced backward from the capture terminals *assigned to this pass*.
// Unassigned captures contribute no constraint ("we set the node slack to a
// large number"), so each output's slack is meaningful only in its assigned
// pass — the one where its ideal closure time falls closest to the end of
// the broken-open period.
#pragma once

#include <optional>
#include <vector>

#include "clocks/edge_graph.hpp"
#include "sta/cluster.hpp"

namespace hb {

struct PassResult {
  /// Indexed like Cluster::nodes.  Disengaged = the node is not reached by
  /// any launch (ready) / does not feed any assigned capture (required).
  std::vector<std::optional<RiseFall>> ready;
  std::vector<std::optional<RiseFall>> required;
};

/// Runs eq. (1) forward and eq. (2) backward over `cluster`.
///
/// `local_index[node]` maps global node ids to positions in Cluster::nodes.
/// `assigned[k]` is true when capture instance `capture_insts[k]` reads its
/// slack from this pass; `capture_insts` lists all capture instances on the
/// cluster's sink nodes in a fixed order chosen by the caller.
PassResult run_analysis_pass(const TimingGraph& graph, const SyncModel& sync,
                             const Cluster& cluster,
                             const std::vector<std::uint32_t>& local_index,
                             const ClockEdgeGraph& edges, std::size_t break_node,
                             const std::vector<SyncId>& capture_insts,
                             const std::vector<bool>& assigned);

/// Reusable per-task buffers for update_analysis_pass (one per concurrent
/// evaluation; never shared between threads).
struct PassScratch {
  std::vector<char> mark;                 // by local index
  std::vector<std::uint32_t> stack;
  std::vector<std::uint32_t> affected;    // local indices of the cone
};

/// Incrementally patches `res` (a previous result of run_analysis_pass over
/// the same pass) after local changes:
///   * `fwd_seeds`: local indices whose *ready* must be re-derived — launch
///     nodes with changed assertion offsets, or heads of arcs with changed
///     delays.  The forward cone of the seeds is re-propagated (eq. 1).
///   * `bwd_seeds`: local indices whose *required* must be re-derived —
///     capture nodes with changed closure offsets, or tails of arcs with
///     changed delays.  The backward cone is re-propagated (eq. 2).
/// Both ready and required are pure min/max fixpoints over integer times, so
/// re-deriving exactly the cone reproduces run_analysis_pass bit for bit
/// (tests/incremental_test.cpp holds the two against each other).
///
/// Returns the number of nodes re-traced (forward plus backward cones).
std::size_t update_analysis_pass(const TimingGraph& graph, const SyncModel& sync,
                                 const Cluster& cluster,
                                 const std::vector<std::uint32_t>& local_index,
                                 const ClockEdgeGraph& edges, std::size_t break_node,
                                 const std::vector<SyncId>& capture_insts,
                                 const std::vector<bool>& assigned,
                                 const std::vector<std::uint32_t>& fwd_seeds,
                                 const std::vector<std::uint32_t>& bwd_seeds,
                                 PassResult& res, PassScratch& scratch);

}  // namespace hb
