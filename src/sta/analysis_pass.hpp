// One block-oriented cluster analysis pass (paper Section 7, equations (1)
// and (2)) in the linearised coordinates of a chosen break of the clock
// period.
//
// Ready times are traced forward from the cluster's launch terminals
// (synchronising element outputs and primary inputs); required times are
// traced backward from the capture terminals *assigned to this pass*.
// Unassigned captures contribute no constraint ("we set the node slack to a
// large number"), so each output's slack is meaningful only in its assigned
// pass — the one where its ideal closure time falls closest to the end of
// the broken-open period.
//
// Results are stored as packed arrays of rise/fall value pairs with absence
// encoded as a fold-identity sentinel, instead of std::optional<RiseFall>
// records (which pad each entry to 24 bytes and force a presence branch on
// every merge).
// Values stay integer picoseconds so every kernel here is bit-reproducible
// (the acceptance oracle for the incremental layer).  All kernels sweep the
// cluster's local CSR adjacency in level order — see docs/PERFORMANCE.md.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "clocks/edge_graph.hpp"
#include "sta/cluster.hpp"

namespace hb {

class ThreadPool;

/// Kernel-variant selection for the sweep kernels.  kAuto picks the
/// vectorised (AVX2) variants when the CPU supports them; kForceScalar pins
/// the portable scalar variants (used by the determinism sweep tests to
/// compare the two).  Both produce byte-identical results.
enum class KernelMode { kAuto, kForceScalar };
void set_kernel_mode(KernelMode mode);
KernelMode kernel_mode();
/// True when this build+CPU can run the vectorised kernels.
bool simd_kernels_available();
/// Variant kAuto currently selects: "avx2" or "scalar".
const char* active_kernel_name();

/// Tuning knobs of the level-parallel sweep path (see docs/PERFORMANCE.md
/// §8).  Chunk boundaries are a pure function of (level size, grain) — never
/// of the worker count — so results are invariant under any tuning; the
/// knobs trade dispatch overhead against parallelism.  Process-wide;
/// initialised from the HB_PAR_MIN_NODES / HB_PAR_GRAIN environment
/// variables when set (CI uses this to force the parallel path through
/// small test networks).
struct SweepTuning {
  /// Clusters smaller than this run the serial kernels even with a pool.
  std::size_t min_parallel_nodes = 2048;
  /// Lower bound on the per-chunk node count (grain); levels smaller than
  /// two grains run as a single inline chunk.
  std::size_t min_grain = 256;
};
void set_sweep_tuning(const SweepTuning& tuning);
SweepTuning sweep_tuning();

/// One side (ready or required) of a pass result: a packed array of rise/
/// fall value pairs indexed like Cluster::nodes.  Absence is encoded in the
/// values themselves: an absent ready slot holds -kInfinitePs (the identity
/// of the max-fold), an absent required slot +kInfinitePs (identity of the
/// min-fold), so the propagation kernels fold unconditionally — no per-arc
/// presence branch.  Folding *through* an absent slot leaves the result on
/// the absent side of kInfinitePs/2 (real schedule times are far smaller,
/// and 2^50 ∓ any delay sum never crosses the midpoint), so has() is a
/// threshold compare.  Buffers grow to the largest size seen and are never
/// shrunk, so reset() in steady state performs no heap allocation.
///
/// Multi-corner analysis (src/scenario) widens the array to K lanes per
/// node in lane-major order — slot (node, corner) lives at
/// data()[node * lanes() + corner] — so one fold kernel iteration processes
/// the whole corner vector of a node from one contiguous cache line run.
/// With lanes() == 1 (the default) the layout is bit-identical to the
/// single-corner array, which is what the K=1 differential guarantee in
/// tests/corner_test.cpp pins down.
class PassSide {
 public:
  /// `absent`: the fold identity, -kInfinitePs (ready) or +kInfinitePs
  /// (required).  `lanes`: corner lanes per node (K; 1 = single-corner).
  explicit PassSide(TimePs absent, std::size_t lanes = 1)
      : absent_(absent), lanes_(lanes == 0 ? 1 : lanes) {}

  /// Size to `n` locals with every slot of every lane absent.
  void reset(std::size_t n) {
    size_ = n;
    const std::size_t total = n * lanes_;
    if (val_.size() < total) val_.resize(total);
    std::fill(val_.begin(), val_.begin() + static_cast<std::ptrdiff_t>(total),
              RiseFall{absent_, absent_});
  }
  std::size_t size() const { return size_; }
  std::size_t lanes() const { return lanes_; }
  /// Total slot count (size() * lanes()) — the byte span of data().
  std::size_t flat_size() const { return size_ * lanes_; }
  bool has(std::size_t i) const {
    return absent_ < 0 ? val_[i * lanes_].rise > absent_ / 2
                       : val_[i * lanes_].rise < absent_ / 2;
  }
  RiseFall at(std::size_t i) const { return val_[i * lanes_]; }
  /// Lane accessors (corner-sliced results; lane < lanes()).
  RiseFall at(std::size_t i, std::size_t lane) const {
    return val_[i * lanes_ + lane];
  }
  void set(std::size_t i, RiseFall v) { val_[i * lanes_] = v; }
  void set(std::size_t i, std::size_t lane, RiseFall v) {
    val_[i * lanes_ + lane] = v;
  }
  void clear(std::size_t i) { val_[i * lanes_] = RiseFall{absent_, absent_}; }
  /// The fold identity, as a full slot value.
  RiseFall absent() const { return RiseFall{absent_, absent_}; }
  /// Raw slot access for the propagation kernels (lane-major).
  RiseFall* data() { return val_.data(); }
  const RiseFall* data() const { return val_.data(); }

 private:
  std::vector<RiseFall> val_;
  TimePs absent_;
  std::size_t lanes_ = 1;
  std::size_t size_ = 0;
};

struct PassResult {
  /// Indexed like Cluster::nodes.  Absent = the node is not reached by any
  /// launch (ready) / does not feed any assigned capture (required).
  PassSide ready{-kInfinitePs};
  PassSide required{kInfinitePs};
};

/// Runs eq. (1) forward and eq. (2) backward over `cluster`, writing into
/// `res` (buffers are reused; steady-state re-evaluation allocates nothing).
///
/// `local_index[node]` maps global node ids to positions in Cluster::nodes.
/// `assigned[k]` is true when capture instance `capture_insts[k]` reads its
/// slack from this pass; `capture_insts` lists all capture instances on the
/// cluster's sink nodes in a fixed order chosen by the caller.
///
/// With a pool (and a cluster at least SweepTuning::min_parallel_nodes
/// large), each level wavefront is chunked across the pool's workers: the
/// forward sweep switches from the serial scatter kernel to a per-node
/// gather over fanin — every node is written exactly once, by the chunk
/// that owns it — and the backward sweep is chunked as-is (it is already a
/// gather).  Results are byte-identical to the serial kernels at every
/// thread count: integer min/max folds are commutative and associative,
/// chunk boundaries are fixed, and gather-forward canonicalises untouched
/// slots back to the exact absence sentinel the scatter kernel leaves.
void run_analysis_pass_into(const TimingGraph& graph, const SyncModel& sync,
                            const Cluster& cluster,
                            const std::vector<std::uint32_t>& local_index,
                            const ClockEdgeGraph& edges, std::size_t break_node,
                            const std::vector<SyncId>& capture_insts,
                            const std::vector<bool>& assigned, PassResult& res,
                            ThreadPool* pool = nullptr);

/// Convenience wrapper returning a fresh PassResult (allocates; use the
/// _into form on hot paths).
PassResult run_analysis_pass(const TimingGraph& graph, const SyncModel& sync,
                             const Cluster& cluster,
                             const std::vector<std::uint32_t>& local_index,
                             const ClockEdgeGraph& edges, std::size_t break_node,
                             const std::vector<SyncId>& capture_insts,
                             const std::vector<bool>& assigned);

/// Reusable per-task arena for incremental pass updates (one per concurrent
/// evaluation; never shared between threads).  Holds the dirty bitmap the
/// fused cone sweeps mark and consume; it grows to the largest cluster seen
/// and is never shrunk, so steady-state updates perform no heap allocation.
struct PassWorkspace {
  std::vector<std::uint64_t> marks;  // by local index, one bit per node

  void ensure(std::size_t num_locals) {
    const std::size_t words = (num_locals + 63) / 64;
    if (marks.size() < words) marks.resize(words, 0);
  }
};

// -- Cone-sweep primitives ---------------------------------------------------
// Shared by update_analysis_pass and the multi-corner incremental layer
// (src/scenario/corner_analysis): fused mark-and-visit sweeps over the
// forward/backward reachability cone of a seed set, using the PassWorkspace
// bitmap.  Mark words are consumed (zeroed) as the sweep passes, so the
// workspace is clean on return; both return the number of nodes visited.

namespace passdetail {

constexpr std::uint64_t bit_of(std::uint32_t li) {
  return std::uint64_t{1} << (li & 63);
}

/// Forward cone: processes marked locals in ascending order (= topological
/// order, every internal arc goes from a lower local index to a higher one)
/// and marks the successors of each processed non-blocked node.
template <class Visit>
std::size_t sweep_forward(const Cluster& cluster,
                          const std::vector<std::uint32_t>& seeds,
                          PassWorkspace& ws, Visit visit) {
  if (seeds.empty()) return 0;
  std::vector<std::uint64_t>& m = ws.marks;
  std::size_t lo = SIZE_MAX, hi = 0;
  for (std::uint32_t li : seeds) {
    const std::size_t w = li >> 6;
    m[w] |= bit_of(li);
    lo = std::min(lo, w);
    hi = std::max(hi, w);
  }
  std::size_t count = 0;
  for (std::size_t w = lo; w <= hi; ++w) {
    std::uint64_t done = 0;
    for (;;) {
      const std::uint64_t pend = m[w] & ~done;
      if (pend == 0) break;
      const unsigned b = static_cast<unsigned>(std::countr_zero(pend));
      done |= std::uint64_t{1} << b;
      const std::uint32_t li = static_cast<std::uint32_t>(w * 64 + b);
      visit(li);
      ++count;
      if (!cluster.blocked[li]) {
        const std::uint32_t end = cluster.out_offsets[li + 1];
        for (std::uint32_t k = cluster.out_offsets[li]; k < end; ++k) {
          const std::uint32_t to = cluster.out_local[k];
          m[to >> 6] |= bit_of(to);
          hi = std::max(hi, static_cast<std::size_t>(to >> 6));
        }
      }
    }
    m[w] = 0;
  }
  return count;
}

/// Mirror sweep over the backward cone: descending local index (= reverse
/// topological order), marking each processed node's non-blocked
/// predecessors.
template <class Visit>
std::size_t sweep_backward(const Cluster& cluster,
                           const std::vector<std::uint32_t>& seeds,
                           PassWorkspace& ws, Visit visit) {
  if (seeds.empty()) return 0;
  std::vector<std::uint64_t>& m = ws.marks;
  std::size_t lo = SIZE_MAX, hi = 0;
  for (std::uint32_t li : seeds) {
    const std::size_t w = li >> 6;
    m[w] |= bit_of(li);
    lo = std::min(lo, w);
    hi = std::max(hi, w);
  }
  std::size_t count = 0;
  std::size_t w = hi;
  for (;;) {
    std::uint64_t done = 0;
    for (;;) {
      const std::uint64_t pend = m[w] & ~done;
      if (pend == 0) break;
      const unsigned b = 63u - static_cast<unsigned>(std::countl_zero(pend));
      done |= std::uint64_t{1} << b;
      const std::uint32_t li = static_cast<std::uint32_t>(w * 64 + b);
      visit(li);
      ++count;
      const std::uint32_t end = cluster.in_offsets[li + 1];
      for (std::uint32_t k = cluster.in_offsets[li]; k < end; ++k) {
        const std::uint32_t fl = cluster.in_local[k];
        if (cluster.blocked[fl]) continue;
        m[fl >> 6] |= bit_of(fl);
        lo = std::min(lo, static_cast<std::size_t>(fl >> 6));
      }
    }
    m[w] = 0;
    if (w == lo) break;
    --w;
  }
  return count;
}

}  // namespace passdetail

/// Incrementally patches `res` (a previous result of run_analysis_pass over
/// the same pass) after local changes:
///   * `fwd_seeds`: local indices whose *ready* must be re-derived — launch
///     nodes with changed assertion offsets, or heads of arcs with changed
///     delays.  The forward cone of the seeds is re-propagated (eq. 1).
///   * `bwd_seeds`: local indices whose *required* must be re-derived —
///     capture nodes with changed closure offsets, or tails of arcs with
///     changed delays.  The backward cone is re-propagated (eq. 2).
/// Both ready and required are pure min/max fixpoints over integer times, so
/// re-deriving exactly the cone reproduces run_analysis_pass bit for bit
/// (tests/incremental_test.cpp holds the two against each other).
///
/// Cone collection and re-derivation are fused into one bitmap sweep per
/// direction: ascending local index for the forward cone, descending for the
/// backward cone (ascending local index is topological order, so a marked
/// node's predecessors are always re-derived before it).
///
/// Returns the number of nodes re-traced (forward plus backward cones).
std::size_t update_analysis_pass(const TimingGraph& graph, const SyncModel& sync,
                                 const Cluster& cluster,
                                 const std::vector<std::uint32_t>& local_index,
                                 const ClockEdgeGraph& edges, std::size_t break_node,
                                 const std::vector<SyncId>& capture_insts,
                                 const std::vector<bool>& assigned,
                                 const std::vector<std::uint32_t>& fwd_seeds,
                                 const std::vector<std::uint32_t>& bwd_seeds,
                                 PassResult& res, PassWorkspace& ws);

/// Number of nodes the two cone sweeps of update_analysis_pass would
/// re-derive for these seeds, without touching any result — the probe behind
/// SlackEngine's incremental/full cost model (docs/ALGORITHMS.md §7).
std::size_t pass_cone_size(const Cluster& cluster,
                           const std::vector<std::uint32_t>& fwd_seeds,
                           const std::vector<std::uint32_t>& bwd_seeds,
                           PassWorkspace& ws);

}  // namespace hb
