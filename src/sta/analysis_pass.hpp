// One block-oriented cluster analysis pass (paper Section 7, equations (1)
// and (2)) in the linearised coordinates of a chosen break of the clock
// period.
//
// Ready times are traced forward from the cluster's launch terminals
// (synchronising element outputs and primary inputs); required times are
// traced backward from the capture terminals *assigned to this pass*.
// Unassigned captures contribute no constraint ("we set the node slack to a
// large number"), so each output's slack is meaningful only in its assigned
// pass — the one where its ideal closure time falls closest to the end of
// the broken-open period.
//
// Results are stored as packed arrays of rise/fall value pairs with absence
// encoded as a fold-identity sentinel, instead of std::optional<RiseFall>
// records (which pad each entry to 24 bytes and force a presence branch on
// every merge).
// Values stay integer picoseconds so every kernel here is bit-reproducible
// (the acceptance oracle for the incremental layer).  All kernels sweep the
// cluster's local CSR adjacency in level order — see docs/PERFORMANCE.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "clocks/edge_graph.hpp"
#include "sta/cluster.hpp"

namespace hb {

class ThreadPool;

/// Kernel-variant selection for the sweep kernels.  kAuto picks the
/// vectorised (AVX2) variants when the CPU supports them; kForceScalar pins
/// the portable scalar variants (used by the determinism sweep tests to
/// compare the two).  Both produce byte-identical results.
enum class KernelMode { kAuto, kForceScalar };
void set_kernel_mode(KernelMode mode);
KernelMode kernel_mode();
/// True when this build+CPU can run the vectorised kernels.
bool simd_kernels_available();
/// Variant kAuto currently selects: "avx2" or "scalar".
const char* active_kernel_name();

/// Tuning knobs of the level-parallel sweep path (see docs/PERFORMANCE.md
/// §8).  Chunk boundaries are a pure function of (level size, grain) — never
/// of the worker count — so results are invariant under any tuning; the
/// knobs trade dispatch overhead against parallelism.  Process-wide;
/// initialised from the HB_PAR_MIN_NODES / HB_PAR_GRAIN environment
/// variables when set (CI uses this to force the parallel path through
/// small test networks).
struct SweepTuning {
  /// Clusters smaller than this run the serial kernels even with a pool.
  std::size_t min_parallel_nodes = 2048;
  /// Lower bound on the per-chunk node count (grain); levels smaller than
  /// two grains run as a single inline chunk.
  std::size_t min_grain = 256;
};
void set_sweep_tuning(const SweepTuning& tuning);
SweepTuning sweep_tuning();

/// One side (ready or required) of a pass result: a packed array of rise/
/// fall value pairs indexed like Cluster::nodes.  Absence is encoded in the
/// values themselves: an absent ready slot holds -kInfinitePs (the identity
/// of the max-fold), an absent required slot +kInfinitePs (identity of the
/// min-fold), so the propagation kernels fold unconditionally — no per-arc
/// presence branch.  Folding *through* an absent slot leaves the result on
/// the absent side of kInfinitePs/2 (real schedule times are far smaller,
/// and 2^50 ∓ any delay sum never crosses the midpoint), so has() is a
/// threshold compare.  Buffers grow to the largest size seen and are never
/// shrunk, so reset() in steady state performs no heap allocation.
class PassSide {
 public:
  /// `absent`: the fold identity, -kInfinitePs (ready) or +kInfinitePs
  /// (required).
  explicit PassSide(TimePs absent) : absent_(absent) {}

  /// Size to `n` locals with every slot absent.
  void reset(std::size_t n) {
    size_ = n;
    if (val_.size() < n) val_.resize(n);
    std::fill(val_.begin(), val_.begin() + static_cast<std::ptrdiff_t>(n),
              RiseFall{absent_, absent_});
  }
  std::size_t size() const { return size_; }
  bool has(std::size_t i) const {
    return absent_ < 0 ? val_[i].rise > absent_ / 2 : val_[i].rise < absent_ / 2;
  }
  RiseFall at(std::size_t i) const { return val_[i]; }
  void set(std::size_t i, RiseFall v) { val_[i] = v; }
  void clear(std::size_t i) { val_[i] = RiseFall{absent_, absent_}; }
  /// The fold identity, as a full slot value.
  RiseFall absent() const { return RiseFall{absent_, absent_}; }
  /// Raw slot access for the propagation kernels.
  RiseFall* data() { return val_.data(); }
  const RiseFall* data() const { return val_.data(); }

 private:
  std::vector<RiseFall> val_;
  TimePs absent_;
  std::size_t size_ = 0;
};

struct PassResult {
  /// Indexed like Cluster::nodes.  Absent = the node is not reached by any
  /// launch (ready) / does not feed any assigned capture (required).
  PassSide ready{-kInfinitePs};
  PassSide required{kInfinitePs};
};

/// Runs eq. (1) forward and eq. (2) backward over `cluster`, writing into
/// `res` (buffers are reused; steady-state re-evaluation allocates nothing).
///
/// `local_index[node]` maps global node ids to positions in Cluster::nodes.
/// `assigned[k]` is true when capture instance `capture_insts[k]` reads its
/// slack from this pass; `capture_insts` lists all capture instances on the
/// cluster's sink nodes in a fixed order chosen by the caller.
///
/// With a pool (and a cluster at least SweepTuning::min_parallel_nodes
/// large), each level wavefront is chunked across the pool's workers: the
/// forward sweep switches from the serial scatter kernel to a per-node
/// gather over fanin — every node is written exactly once, by the chunk
/// that owns it — and the backward sweep is chunked as-is (it is already a
/// gather).  Results are byte-identical to the serial kernels at every
/// thread count: integer min/max folds are commutative and associative,
/// chunk boundaries are fixed, and gather-forward canonicalises untouched
/// slots back to the exact absence sentinel the scatter kernel leaves.
void run_analysis_pass_into(const TimingGraph& graph, const SyncModel& sync,
                            const Cluster& cluster,
                            const std::vector<std::uint32_t>& local_index,
                            const ClockEdgeGraph& edges, std::size_t break_node,
                            const std::vector<SyncId>& capture_insts,
                            const std::vector<bool>& assigned, PassResult& res,
                            ThreadPool* pool = nullptr);

/// Convenience wrapper returning a fresh PassResult (allocates; use the
/// _into form on hot paths).
PassResult run_analysis_pass(const TimingGraph& graph, const SyncModel& sync,
                             const Cluster& cluster,
                             const std::vector<std::uint32_t>& local_index,
                             const ClockEdgeGraph& edges, std::size_t break_node,
                             const std::vector<SyncId>& capture_insts,
                             const std::vector<bool>& assigned);

/// Reusable per-task arena for incremental pass updates (one per concurrent
/// evaluation; never shared between threads).  Holds the dirty bitmap the
/// fused cone sweeps mark and consume; it grows to the largest cluster seen
/// and is never shrunk, so steady-state updates perform no heap allocation.
struct PassWorkspace {
  std::vector<std::uint64_t> marks;  // by local index, one bit per node

  void ensure(std::size_t num_locals) {
    const std::size_t words = (num_locals + 63) / 64;
    if (marks.size() < words) marks.resize(words, 0);
  }
};

/// Incrementally patches `res` (a previous result of run_analysis_pass over
/// the same pass) after local changes:
///   * `fwd_seeds`: local indices whose *ready* must be re-derived — launch
///     nodes with changed assertion offsets, or heads of arcs with changed
///     delays.  The forward cone of the seeds is re-propagated (eq. 1).
///   * `bwd_seeds`: local indices whose *required* must be re-derived —
///     capture nodes with changed closure offsets, or tails of arcs with
///     changed delays.  The backward cone is re-propagated (eq. 2).
/// Both ready and required are pure min/max fixpoints over integer times, so
/// re-deriving exactly the cone reproduces run_analysis_pass bit for bit
/// (tests/incremental_test.cpp holds the two against each other).
///
/// Cone collection and re-derivation are fused into one bitmap sweep per
/// direction: ascending local index for the forward cone, descending for the
/// backward cone (ascending local index is topological order, so a marked
/// node's predecessors are always re-derived before it).
///
/// Returns the number of nodes re-traced (forward plus backward cones).
std::size_t update_analysis_pass(const TimingGraph& graph, const SyncModel& sync,
                                 const Cluster& cluster,
                                 const std::vector<std::uint32_t>& local_index,
                                 const ClockEdgeGraph& edges, std::size_t break_node,
                                 const std::vector<SyncId>& capture_insts,
                                 const std::vector<bool>& assigned,
                                 const std::vector<std::uint32_t>& fwd_seeds,
                                 const std::vector<std::uint32_t>& bwd_seeds,
                                 PassResult& res, PassWorkspace& ws);

/// Number of nodes the two cone sweeps of update_analysis_pass would
/// re-derive for these seeds, without touching any result — the probe behind
/// SlackEngine's incremental/full cost model (docs/ALGORITHMS.md §7).
std::size_t pass_cone_size(const Cluster& cluster,
                           const std::vector<std::uint32_t>& fwd_seeds,
                           const std::vector<std::uint32_t>& bwd_seeds,
                           PassWorkspace& ws);

}  // namespace hb
