#include "sta/cluster.hpp"

#include <numeric>

namespace hb {
namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

ClusterSet::ClusterSet(const TimingGraph& graph, const SyncModel& sync) {
  UnionFind uf(graph.num_nodes());
  for (std::size_t a = 0; a < graph.num_arcs(); ++a) {
    const TArcRec& arc = graph.arc(a);
    uf.unite(arc.from.value(), arc.to.value());
  }

  // Also place arc-less boundary instances (a latch output wired to nothing,
  // a port with no net) nowhere: only components containing at least one arc
  // become clusters.
  std::vector<ClusterId> root_to_cluster(graph.num_nodes(), ClusterId::invalid());
  of_node_.assign(graph.num_nodes(), ClusterId::invalid());

  for (std::size_t a = 0; a < graph.num_arcs(); ++a) {
    const std::uint32_t root = uf.find(graph.arc(a).from.value());
    if (!root_to_cluster[root].valid()) {
      root_to_cluster[root] = ClusterId(static_cast<std::uint32_t>(clusters_.size()));
      clusters_.emplace_back();
    }
  }

  // Nodes in global topological order so per-cluster node lists stay sorted
  // topologically.
  for (TNodeId n : graph.topo_order()) {
    const std::uint32_t root = uf.find(n.value());
    const ClusterId c = root_to_cluster[root];
    if (!c.valid()) continue;
    clusters_[c.index()].nodes.push_back(n);
    of_node_[n.index()] = c;
  }
  for (std::size_t a = 0; a < graph.num_arcs(); ++a) {
    const ClusterId c = of_node_[graph.arc(a).from.index()];
    clusters_[c.index()].arcs.push_back(static_cast<std::uint32_t>(a));
  }
  for (Cluster& cl : clusters_) {
    for (TNodeId n : cl.nodes) {
      if (!sync.launches_at(n).empty()) cl.source_nodes.push_back(n);
      if (!sync.captures_at(n).empty()) cl.sink_nodes.push_back(n);
    }
  }

  // Local CSR adjacency: every arc incident to a cluster node is internal to
  // the cluster (components are arc-closed), so per-node slices are exactly
  // the graph CSR slices with endpoints translated to local indices.
  std::vector<std::uint32_t> local(graph.num_nodes(), 0);
  for (Cluster& cl : clusters_) {
    const std::size_t n = cl.nodes.size();
    for (std::uint32_t i = 0; i < n; ++i) local[cl.nodes[i].index()] = i;
    cl.out_offsets.assign(n + 1, 0);
    cl.in_offsets.assign(n + 1, 0);
    cl.blocked.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const TNodeId node = cl.nodes[i];
      cl.out_offsets[i + 1] =
          cl.out_offsets[i] + static_cast<std::uint32_t>(graph.fanout(node).size());
      cl.in_offsets[i + 1] =
          cl.in_offsets[i] + static_cast<std::uint32_t>(graph.fanin(node).size());
      const NodeRole role = graph.node(node).role;
      cl.blocked[i] =
          role == NodeRole::kSyncDataIn || role == NodeRole::kSyncControl;
    }
    // Runs of equal graph level over the (level-monotone) node list.
    cl.level_offsets.clear();
    cl.level_offsets.push_back(0);
    for (std::uint32_t i = 1; i < n; ++i) {
      if (graph.level(cl.nodes[i]) != graph.level(cl.nodes[i - 1])) {
        cl.level_offsets.push_back(i);
      }
    }
    cl.level_offsets.push_back(static_cast<std::uint32_t>(n));
    cl.out_arc.resize(cl.out_offsets[n]);
    cl.out_local.resize(cl.out_offsets[n]);
    cl.in_arc.resize(cl.in_offsets[n]);
    cl.in_local.resize(cl.in_offsets[n]);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint32_t k = cl.out_offsets[i];
      for (std::uint32_t ai : graph.fanout(cl.nodes[i])) {
        cl.out_arc[k] = ai;
        cl.out_local[k] = local[graph.arc(ai).to.index()];
        ++k;
      }
      k = cl.in_offsets[i];
      for (std::uint32_t ai : graph.fanin(cl.nodes[i])) {
        cl.in_arc[k] = ai;
        cl.in_local[k] = local[graph.arc(ai).from.index()];
        ++k;
      }
    }
  }
}

}  // namespace hb
