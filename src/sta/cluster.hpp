// Combinational clusters (paper Section 7): "a maximal connected network of
// combinational logic elements.  All inputs to a cluster are synchronising
// element outputs and all outputs from a cluster are synchronising element
// inputs."
//
// Since the timing graph contains no arcs through synchronising elements,
// clusters are exactly the connected components of the timing graph's arc
// set.  Boundary pins (latch D/Q pins, ports, enable-path control pins)
// belong to the cluster their arcs touch.
#pragma once

#include <vector>

#include "sta/sync_model.hpp"
#include "sta/timing_graph.hpp"

namespace hb {

struct Cluster {
  /// Member nodes in global topological order.
  std::vector<TNodeId> nodes;
  /// Arc indices internal to the cluster.
  std::vector<std::uint32_t> arcs;
  /// Member nodes carrying launch instances (cluster inputs) and capture
  /// instances (cluster outputs).
  std::vector<TNodeId> source_nodes;
  std::vector<TNodeId> sink_nodes;
};

class ClusterSet {
 public:
  ClusterSet(const TimingGraph& graph, const SyncModel& sync);

  std::size_t num_clusters() const { return clusters_.size(); }
  const Cluster& cluster(ClusterId id) const { return clusters_.at(id.index()); }
  /// Cluster containing a node; invalid for isolated nodes.
  ClusterId cluster_of(TNodeId node) const { return of_node_.at(node.index()); }

 private:
  std::vector<Cluster> clusters_;
  std::vector<ClusterId> of_node_;
};

}  // namespace hb
