// Combinational clusters (paper Section 7): "a maximal connected network of
// combinational logic elements.  All inputs to a cluster are synchronising
// element outputs and all outputs from a cluster are synchronising element
// inputs."
//
// Since the timing graph contains no arcs through synchronising elements,
// clusters are exactly the connected components of the timing graph's arc
// set.  Boundary pins (latch D/Q pins, ports, enable-path control pins)
// belong to the cluster their arcs touch.
//
// Each cluster carries a *local* CSR adjacency over its own node list:
// arc endpoints are pre-translated to cluster-local indices, so the pass
// kernels (sta/analysis_pass) sweep flat arrays with no global-id lookups.
// Because `nodes` follows the graph's level-ordered topological order, every
// internal arc goes from a lower local index to a higher one — ascending
// local index IS forward topological (wavefront) order.
#pragma once

#include <vector>

#include "sta/sync_model.hpp"
#include "sta/timing_graph.hpp"

namespace hb {

struct Cluster {
  /// Member nodes in global topological order (level-monotone; see
  /// TimingGraph::topo_order).
  std::vector<TNodeId> nodes;
  /// Arc indices internal to the cluster.
  std::vector<std::uint32_t> arcs;
  /// Member nodes carrying launch instances (cluster inputs) and capture
  /// instances (cluster outputs).
  std::vector<TNodeId> source_nodes;
  std::vector<TNodeId> sink_nodes;

  // -- Local CSR adjacency (indices into `nodes`) -------------------------
  // Slices follow the graph CSR's deterministic (endpoint, arc-id) order.
  std::vector<std::uint32_t> out_offsets;  // [nodes.size() + 1]
  std::vector<std::uint32_t> out_arc;      // global arc index
  std::vector<std::uint32_t> out_local;    // local index of the arc's head
  std::vector<std::uint32_t> in_offsets;   // [nodes.size() + 1]
  std::vector<std::uint32_t> in_arc;
  std::vector<std::uint32_t> in_local;     // local index of the arc's tail
  /// Per local index: the node's role blocks combinational propagation
  /// (kSyncDataIn / kSyncControl).
  std::vector<char> blocked;
  /// CSR boundaries of the graph-level runs inside `nodes`: run L spans
  /// local indices [level_offsets[L], level_offsets[L+1]).  `nodes` is
  /// level-monotone (it subsequences topo_order), every internal arc crosses
  /// strictly forward across a run boundary, so each run is a data-parallel
  /// wavefront for the level-parallel sweep kernels.  Runs are per-cluster
  /// (only levels the cluster touches appear), so their count is at most
  /// TimingGraph::num_levels().
  std::vector<std::uint32_t> level_offsets;
};

class ClusterSet {
 public:
  ClusterSet(const TimingGraph& graph, const SyncModel& sync);

  std::size_t num_clusters() const { return clusters_.size(); }
  const Cluster& cluster(ClusterId id) const { return clusters_.at(id.index()); }
  /// Cluster containing a node; invalid for isolated nodes.
  ClusterId cluster_of(TNodeId node) const { return of_node_.at(node.index()); }

 private:
  std::vector<Cluster> clusters_;
  std::vector<ClusterId> of_node_;
};

}  // namespace hb
