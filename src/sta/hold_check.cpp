#include "sta/hold_check.hpp"

#include <algorithm>
#include <optional>

namespace hb {

std::vector<HoldViolation> check_hold(const SlackEngine& engine,
                                      TimePs hold_margin) {
  const TimingGraph& graph = engine.graph();
  const SyncModel& sync = engine.sync();
  const ClusterSet& clusters = engine.clusters();
  const TimePs T = sync.overall_period();
  std::vector<HoldViolation> out;

  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    const Cluster& cl = clusters.cluster(ClusterId(c));
    if (cl.source_nodes.empty() || cl.sink_nodes.empty()) continue;

    // Minimum propagation delay from each source node to every node of the
    // cluster (scalar: min over transitions), swept over the cluster's local
    // CSR in level order.
    for (TNodeId src : cl.source_nodes) {
      std::vector<std::optional<TimePs>> dmin(cl.nodes.size());
      dmin[engine.local_index(src)] = 0;
      for (std::uint32_t li = 0; li < cl.nodes.size(); ++li) {
        const auto& dn = dmin[li];
        if (!dn || cl.blocked[li]) continue;
        const std::uint32_t end = cl.out_offsets[li + 1];
        for (std::uint32_t k = cl.out_offsets[li]; k < end; ++k) {
          const TArcRec& arc = graph.arc(cl.out_arc[k]);
          const TimePs cand = *dn + arc.delay.min();
          auto& slot = dmin[cl.out_local[k]];
          slot = slot ? std::min(*slot, cand) : cand;
        }
      }

      for (TNodeId sink : cl.sink_nodes) {
        const auto& d = dmin[engine.local_index(sink)];
        if (!d) continue;
        for (SyncId li : sync.launches_at(src)) {
          const SyncInstance& launch = sync.at(li);
          for (SyncId cj : sync.captures_at(sink)) {
            const SyncInstance& cap = sync.at(cj);
            if (!cap.inst.valid() && cap.is_virtual) continue;  // PO: no race
            // Previous closure of the capture element relative to the
            // launch's assertion: the closure instance (of the same
            // physical element) at the smallest cyclic distance at-or-
            // before the launch edge.
            TimePs gap = kInfinitePs;
            TimePs prev_offset = 0;
            for (SyncId ck : sync.captures_at(sink)) {
              const SyncInstance& other = sync.at(ck);
              if (other.inst != cap.inst || other.is_virtual != cap.is_virtual) {
                continue;
              }
              const TimePs g = mod_period(launch.ideal_assert - other.ideal_close, T);
              if (g < gap) {
                gap = g;
                prev_offset = other.close_offset();
              }
            }
            if (gap == kInfinitePs) continue;
            // Earliest arrival vs. previous closure, both in actual time.
            const TimePs margin = launch.assert_offset() + *d + gap - prev_offset;
            if (margin < hold_margin) {
              out.push_back({li, cj, margin});
            }
          }
        }
      }
    }
  }

  // Deduplicate identical (launch, capture) pairs keeping the worst margin.
  std::sort(out.begin(), out.end(), [](const HoldViolation& a, const HoldViolation& b) {
    if (a.launch != b.launch) return a.launch < b.launch;
    if (a.capture != b.capture) return a.capture < b.capture;
    return a.margin < b.margin;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const HoldViolation& a, const HoldViolation& b) {
                          return a.launch == b.launch && a.capture == b.capture;
                        }),
            out.end());
  return out;
}

}  // namespace hb
