#include "sta/hold_check.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace hb {
namespace {

/// Per-worker scratch for the parallel source sweep: the min-delay array
/// (flat TimePs with a +kInfinitePs absence sentinel — unconditional min
/// fold, no optional unwrapping) and the worker's violation bucket.  Parked
/// in ThreadPool scratch slots, so steady-state re-checks allocate nothing.
struct HoldScratch {
  std::vector<TimePs> dmin;
  std::vector<HoldViolation> found;
};

/// Check sources [begin, end) of one cluster, appending violations to
/// `s.found`.  Sources are independent (each gets its own dmin sweep), so
/// any partition across workers finds the same violation set; the final
/// sort+dedup makes the output order a function of that set alone.
void check_sources(const SlackEngine& engine, const Cluster& cl,
                   std::size_t begin, std::size_t end, TimePs hold_margin,
                   TimePs T, const RiseFall* arc_delay, std::size_t arc_stride,
                   std::size_t arc_lane, HoldScratch& s) {
  const TimingGraph& graph = engine.graph();
  const SyncModel& sync = engine.sync();
  for (std::size_t si = begin; si < end; ++si) {
    const TNodeId src = cl.source_nodes[si];

    // Minimum propagation delay from the source node to every node of the
    // cluster (scalar: min over transitions), swept over the cluster's
    // local CSR in level order.
    s.dmin.assign(cl.nodes.size(), kInfinitePs);
    s.dmin[engine.local_index(src)] = 0;
    for (std::uint32_t li = 0; li < cl.nodes.size(); ++li) {
      const TimePs dn = s.dmin[li];
      if (dn == kInfinitePs || cl.blocked[li]) continue;
      const std::uint32_t ke = cl.out_offsets[li + 1];
      for (std::uint32_t k = cl.out_offsets[li]; k < ke; ++k) {
        const std::uint32_t ai = cl.out_arc[k];
        const RiseFall d = arc_delay != nullptr
                               ? arc_delay[ai * arc_stride + arc_lane]
                               : graph.arc(ai).delay;
        TimePs& slot = s.dmin[cl.out_local[k]];
        slot = std::min(slot, dn + d.min());
      }
    }

    for (TNodeId sink : cl.sink_nodes) {
      const TimePs d = s.dmin[engine.local_index(sink)];
      if (d == kInfinitePs) continue;
      for (SyncId li : sync.launches_at(src)) {
        const SyncInstance& launch = sync.at(li);
        for (SyncId cj : sync.captures_at(sink)) {
          const SyncInstance& cap = sync.at(cj);
          if (!cap.inst.valid() && cap.is_virtual) continue;  // PO: no race
          // Previous closure of the capture element relative to the
          // launch's assertion: the closure instance (of the same
          // physical element) at the smallest cyclic distance at-or-
          // before the launch edge.
          TimePs gap = kInfinitePs;
          TimePs prev_offset = 0;
          for (SyncId ck : sync.captures_at(sink)) {
            const SyncInstance& other = sync.at(ck);
            if (other.inst != cap.inst || other.is_virtual != cap.is_virtual) {
              continue;
            }
            const TimePs g =
                mod_period(launch.ideal_assert - other.ideal_close, T);
            if (g < gap) {
              gap = g;
              prev_offset = other.close_offset();
            }
          }
          if (gap == kInfinitePs) continue;
          // Earliest arrival vs. previous closure, both in actual time.
          const TimePs margin = launch.assert_offset() + d + gap - prev_offset;
          if (margin < hold_margin) {
            s.found.push_back({li, cj, margin});
          }
        }
      }
    }
  }
}

}  // namespace

std::vector<HoldViolation> check_hold(const SlackEngine& engine,
                                      TimePs hold_margin, ThreadPool* pool,
                                      const RiseFall* arc_delay,
                                      std::size_t arc_stride,
                                      std::size_t arc_lane) {
  const ClusterSet& clusters = engine.clusters();
  const TimePs T = engine.sync().overall_period();
  std::vector<HoldViolation> out;

  const bool pooled = pool != nullptr && pool->size() > 1;
  HoldScratch local;  // serial path
  if (pooled) {
    for (int w = 0; w < pool->size(); ++w) {
      pool->scratch<HoldScratch>(w).found.clear();
    }
  }

  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    const Cluster& cl = clusters.cluster(ClusterId(c));
    if (cl.source_nodes.empty() || cl.sink_nodes.empty()) continue;
    if (pooled) {
      // One chunk per source: every source is a full O(nodes + arcs) sweep,
      // so grain 1 is already coarse.  Each worker sweeps into its own
      // scratch and buckets its own finds.
      pool->parallel_for(
          cl.source_nodes.size(), 1, [&](std::size_t b, std::size_t e, int w) {
            check_sources(engine, cl, b, e, hold_margin, T, arc_delay,
                          arc_stride, arc_lane, pool->scratch<HoldScratch>(w));
          });
    } else {
      check_sources(engine, cl, 0, cl.source_nodes.size(), hold_margin, T,
                    arc_delay, arc_stride, arc_lane, local);
    }
  }

  if (pooled) {
    for (int w = 0; w < pool->size(); ++w) {
      const HoldScratch& s = pool->scratch<HoldScratch>(w);
      out.insert(out.end(), s.found.begin(), s.found.end());
    }
  } else {
    out = std::move(local.found);
  }

  // Deduplicate identical (launch, capture) pairs keeping the worst margin.
  // Sorting on the full (launch, capture, margin) key also makes the output
  // independent of which worker found what.
  std::sort(out.begin(), out.end(), [](const HoldViolation& a, const HoldViolation& b) {
    if (a.launch != b.launch) return a.launch < b.launch;
    if (a.capture != b.capture) return a.capture < b.capture;
    return a.margin < b.margin;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const HoldViolation& a, const HoldViolation& b) {
                          return a.launch == b.launch && a.capture == b.capture;
                        }),
            out.end());
  return out;
}

}  // namespace hb
