// EXTENSION (not part of the paper's algorithms): supplementary path
// constraint checking.
//
// The paper defines, for each combinational path ending at data input y,
//     dmin_p > D_p - O_x + O_y - T_p
// — data must not be updated more than one capture-pulse spacing before the
// input closure time — but states "Our algorithms do not detect these
// problems."  This module adds that detection as an optional extra: for
// every (launch instance, capture instance) pair connected by a path, the
// earliest possible arrival (minimum path delay from the *actual* assertion
// time) must not precede the *previous* closure of the capture element by
// more than -hold_margin.  Violations here typically indicate badly
// asymmetric control path delays (clock skew) or fast paths racing through
// transparent latches.
#pragma once

#include <vector>

#include "sta/slack_engine.hpp"

namespace hb {

struct HoldViolation {
  SyncId launch;
  SyncId capture;   // the capture instance whose *previous* closure races
  TimePs margin;    // actual_arrival - previous_closure; violation if < hold_margin
};

class ThreadPool;

/// Check all launch/capture pairs with the current offsets.  `hold_margin`
/// is the minimum time data must arrive after the previous input closure.
/// With a pool, each cluster's per-source min-delay sweeps fan out across
/// the workers (sources are independent); the result is identical at every
/// thread count — the final sort+dedup orders violations by value alone.
///
/// `arc_delay` (optional) substitutes per-arc delays for the graph's own in
/// the min-delay sweeps: arc `a` reads arc_delay[a * arc_stride + arc_lane].
/// The multi-corner layer (src/scenario) passes its lane-major derated
/// delay table here to check hold under each corner; nullptr keeps the
/// nominal graph delays.
std::vector<HoldViolation> check_hold(const SlackEngine& engine,
                                      TimePs hold_margin = 0,
                                      ThreadPool* pool = nullptr,
                                      const RiseFall* arc_delay = nullptr,
                                      std::size_t arc_stride = 1,
                                      std::size_t arc_lane = 0);

}  // namespace hb
