#include "sta/hummingbird.hpp"

#include <algorithm>
#include <chrono>

#include "netlist/flatten.hpp"
#include "netlist/validate.hpp"

namespace hb {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Hummingbird::Hummingbird(const Design& design, const ClockSet& clocks,
                         HummingbirdOptions options)
    : design_(&design), options_(std::move(options)) {
  std::vector<bool> quarantine;
  if (options_.validate || options_.degraded) {
    ValidationReport report = validate(design);
    if (!report.ok()) {
      const bool fatal =
          std::any_of(report.findings.begin(), report.findings.end(),
                      [](const ValidationFinding& f) {
                        return f.diag.severity == Severity::kFatal;
                      });
      if (!options_.degraded || fatal) {
        raise("design '" + design.name() + "' invalid:\n" + report.to_string());
      }
      // Degraded mode.  Finding indices refer to the flat design, so analyse
      // a flat copy when the input is hierarchical.
      const bool hierarchical =
          std::any_of(design.top().insts().begin(), design.top().insts().end(),
                      [](const Instance& i) { return !i.is_cell(); });
      if (hierarchical) {
        owned_flat_ = std::make_unique<Design>(flatten(design));
        design_ = owned_flat_.get();
        report = validate(*design_);
      }
      for (const ValidationFinding& f : report.findings) diags_.add(f.diag);
      quarantine = compute_quarantine(*design_, report);
      quarantined_count_ = static_cast<std::size_t>(
          std::count(quarantine.begin(), quarantine.end(), true));
      diags_.add(DiagCode::kAnalysisQuarantined, Severity::kWarning, {},
                 "degraded mode: " + std::to_string(quarantined_count_) +
                     " of " + std::to_string(design_->top().insts().size()) +
                     " instances quarantined; results are partial",
                 "fix the reported design problems for a complete analysis");
    }
  }

  const Design& d = *design_;
  const auto start = std::chrono::steady_clock::now();
  calc_ = std::make_unique<DelayCalculator>(d, options_.wire);
  if (options_.delay_derate != 1.0) calc_->set_derate(options_.delay_derate);
  for (const InstDelayAdjust& a : options_.delay_adjust) {
    calc_->adjust_instance(a.inst, a.delta);
  }
  graph_ = std::make_unique<TimingGraph>(d, *calc_,
                                         quarantine.empty() ? nullptr : &quarantine);
  sync_ = std::make_unique<SyncModel>(*graph_, clocks, *calc_, options_.sync);
  clusters_ = std::make_unique<ClusterSet>(*graph_, *sync_);
  engine_ = std::make_unique<SlackEngine>(*graph_, *clusters_, *sync_);
  engine_->set_self_check(options_.paranoid_self_check);
  stats_.preprocess_seconds = seconds_since(start);

  stats_.cells = d.total_cell_count();
  stats_.nets = d.total_net_count();
  stats_.graph_nodes = graph_->num_nodes();
  stats_.graph_arcs = graph_->num_arcs();
  stats_.sync_instances = sync_->num_instances();
  stats_.clusters = clusters_->num_clusters();
  stats_.analysis_passes = engine_->num_passes_total();
  stats_.quarantined_insts = quarantined_count_;
}

Hummingbird::~Hummingbird() = default;

Algorithm1Result Hummingbird::analyze() {
  sync_->reset_offsets();
  const auto start = std::chrono::steady_clock::now();
  Algorithm1Result res = run_algorithm1(*sync_, *engine_, options_.alg1);
  stats_.analysis_seconds = seconds_since(start);
  analyzed_ = true;
  if (quarantined_count_ > 0 && res.status == AnalysisStatus::kComplete) {
    res.status = AnalysisStatus::kPartial;  // timed-out keeps precedence
  }
  return res;
}

Algorithm1Result Hummingbird::reanalyze() {
  sync_->reset_offsets();
  engine_->invalidate_offsets(sync_->drain_changed_offsets());
  const auto start = std::chrono::steady_clock::now();
  Algorithm1Result res = run_algorithm1(*sync_, *engine_, options_.alg1);
  stats_.analysis_seconds = seconds_since(start);
  analyzed_ = true;
  if (quarantined_count_ > 0 && res.status == AnalysisStatus::kComplete) {
    res.status = AnalysisStatus::kPartial;
  }
  return res;
}

bool Hummingbird::update_instance_delays(InstId inst) {
  const Instance& self = design_->top().inst(inst);
  if (self.is_cell() && design_->lib().cell(self.cell).is_sequential()) {
    return false;  // element delays feed cluster/pass pre-processing
  }
  const TimingGraph::DelayUpdate upd = graph_->update_instance_delays(inst, *calc_);
  std::vector<TNodeId> heads;
  heads.reserve(upd.changed_arcs.size());
  for (std::uint32_t ai : upd.changed_arcs) heads.push_back(graph_->arc(ai).from);
  if (graph_->reaches_control(heads)) {
    return false;  // control arrival tracing in the SyncModel is now stale
  }
  for (InstId s : upd.affected_sequential) {
    sync_->refresh_element_delays(s, *calc_);
  }
  engine_->invalidate_offsets(sync_->drain_changed_offsets());
  for (std::uint32_t ai : upd.changed_arcs) {
    engine_->invalidate_node(graph_->arc(ai).from);
    engine_->invalidate_node(graph_->arc(ai).to);
  }
  return true;
}

ConstraintSet Hummingbird::generate_constraints() {
  if (!analyzed_) analyze();
  ConstraintSet out = run_algorithm2(*sync_, *engine_, options_.alg2);
  if (quarantined_count_ > 0 && out.status == AnalysisStatus::kComplete) {
    out.status = AnalysisStatus::kPartial;
  }
  return out;
}

std::vector<HoldViolation> Hummingbird::check_hold_times(TimePs hold_margin,
                                                         ThreadPool* pool) const {
  return check_hold(*engine_, hold_margin, pool);
}

std::vector<SlowPath> Hummingbird::slow_paths(std::size_t max_paths) const {
  return enumerate_slow_paths(*engine_, max_paths);
}

std::string Hummingbird::report(std::size_t max_paths) const {
  std::string out = timing_summary(*engine_);
  out += format_paths(*engine_, slow_paths(max_paths));
  return out;
}

void Hummingbird::flag_slow_paths_in(Design& design, std::size_t max_paths) const {
  flag_slow_paths(design, *graph_, slow_paths(max_paths));
}

}  // namespace hb
