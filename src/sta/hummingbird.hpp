// Hummingbird — the public API of the timing analyser.
//
// Usage:
//   auto lib = make_standard_library();
//   Design design = ...;                 // or load_netlist()
//   ClockSet clocks; clocks.add_simple_clock("phi1", ns(20), 0, ns(8));
//   Hummingbird hb(design, clocks);      // pre-processing happens here
//   auto result = hb.analyze();          // Algorithm 1
//   if (!result.works_as_intended) {
//     std::cout << hb.report();
//     auto constraints = hb.generate_constraints();  // Algorithm 2
//   }
//
// The constructor performs the paper's *pre-processing* (cluster
// generation, the Section 7 break-open computation) and analyze() runs
// Algorithm 1; both are timed separately so Table 1 can be regenerated.
// Hummingbird also supports the paper's interactive mode: mutate the clock
// set or the design, construct a fresh Hummingbird, and compare — see
// examples/clock_explorer.cpp.
#pragma once

#include <memory>

#include "netlist/design.hpp"
#include "sta/algorithm1.hpp"
#include "sta/algorithm2.hpp"
#include "sta/hold_check.hpp"
#include "sta/report.hpp"

namespace hb {

/// One additive per-instance delay adjustment (paper Section 8 interactive
/// mode).  Used by HummingbirdOptions::delay_adjust to replay a what-if
/// session's edit history into a freshly built analyser.
struct InstDelayAdjust {
  InstId inst;
  TimePs delta = 0;
};

struct HummingbirdOptions {
  WireLoadModel wire;
  SyncModelOptions sync;
  Algorithm1Options alg1;
  Algorithm2Options alg2;
  /// Global component-delay derating factor (interactive what-if analysis:
  /// "what if everything were 20% slower?" -> 1.2).
  double delay_derate = 1.0;
  /// Additive per-instance delay adjustments applied to the calculator
  /// before the timing graph is built.  A fresh analyser constructed with
  /// the accumulated set_delay history of an interactive session reproduces
  /// the session's incremental state bit for bit (tests/service_test.cpp).
  std::vector<InstDelayAdjust> delay_adjust;
  /// Validate the design structurally before analysis (recommended; turn
  /// off only in tight analyse-redesign loops that re-check elsewhere).
  bool validate = true;
  /// Degraded mode: instead of refusing an invalid design, quarantine the
  /// logic implicated by the validation findings (plus everything only
  /// reachable through it — see compute_quarantine) and analyse the rest.
  /// Findings are collected in diagnostics() and every analysis result is
  /// tagged AnalysisStatus::kPartial.  The hierarchy rule (sequential
  /// submodules) stays fatal: nothing salvageable remains.
  bool degraded = false;
  /// Paranoid mode: verify the incremental cache against its write-time
  /// checksums on every update and self-heal divergences with a full
  /// recompute (counted in SlackEngine::incremental_stats().self_heals).
  bool paranoid_self_check = false;
};

struct AnalysisStats {
  std::size_t cells = 0;            // library cell instances (recursive)
  std::size_t nets = 0;             // nets (recursive)
  std::size_t graph_nodes = 0;
  std::size_t graph_arcs = 0;
  std::size_t sync_instances = 0;   // generic element instances
  std::size_t clusters = 0;
  std::size_t analysis_passes = 0;  // total break count over clusters
  std::size_t quarantined_insts = 0;  // degraded mode: excluded instances
  double preprocess_seconds = 0.0;  // graph + clusters + Section 7
  double analysis_seconds = 0.0;    // Algorithm 1
};

class Hummingbird {
 public:
  /// Builds the timing graph, synchronising-element instances, clusters and
  /// break-open passes.  `design` and `clocks` must outlive the analyser.
  Hummingbird(const Design& design, const ClockSet& clocks,
              HummingbirdOptions options = {});
  ~Hummingbird();

  Hummingbird(const Hummingbird&) = delete;
  Hummingbird& operator=(const Hummingbird&) = delete;

  /// Run Algorithm 1 from freshly initialised offsets.
  Algorithm1Result analyze();

  /// Re-run Algorithm 1 keeping the engine's incremental cache: offsets are
  /// re-initialised and the resulting invalidations drive update() instead
  /// of a from-scratch compute().  Results match analyze() bit for bit.
  Algorithm1Result reanalyze();

  /// Absorb an in-place delay change of top-level instance `inst` (e.g. a
  /// cell resize to a same-port-layout variant) without rebuilding:
  /// re-evaluates the component arcs of the instance and of the drivers of
  /// its input nets, refreshes affected sequential D_cz/D_dz in the sync
  /// model, and records the matching engine invalidations.  Returns false —
  /// caller must construct a fresh Hummingbird — when the change cannot be
  /// absorbed: `inst` is sequential (element delays feed pre-processing) or
  /// a changed arc reaches a control pin (clock tracing would go stale).
  bool update_instance_delays(InstId inst);

  /// Run Algorithm 2 (requires a preceding analyze(); enforced).
  ConstraintSet generate_constraints();

  /// Supplementary-path (hold) checking — extension, see hold_check.hpp.
  /// With a pool, per-source sweeps fan out across its workers (identical
  /// results at every thread count).
  std::vector<HoldViolation> check_hold_times(TimePs hold_margin = 0,
                                              ThreadPool* pool = nullptr) const;

  /// Worst-first slow paths with full step traces.
  std::vector<SlowPath> slow_paths(std::size_t max_paths = 10) const;

  /// Text report: summary plus the worst slow paths.
  std::string report(std::size_t max_paths = 10) const;

  /// Flag the nets of all slow paths in a design database (usually the one
  /// analysed, passed mutably by the caller).
  void flag_slow_paths_in(Design& design, std::size_t max_paths = 1000) const;

  const AnalysisStats& stats() const { return stats_; }
  /// Findings collected by degraded-mode construction (validation findings
  /// plus one kAnalysisQuarantined summary).  Empty outside degraded mode.
  const DiagnosticSink& diagnostics() const { return diags_; }
  /// Instances excluded from analysis by degraded mode (0 = full analysis).
  std::size_t num_quarantined() const { return quarantined_count_; }
  const TimingGraph& graph() const { return *graph_; }
  const SlackEngine& engine() const { return *engine_; }
  /// Mutable access for baseline comparisons that drive the engine directly
  /// (e.g. rigid_latch_analysis).
  SlackEngine& engine_mut() { return *engine_; }
  const SyncModel& sync_model() const { return *sync_; }
  SyncModel& sync_model_mut() { return *sync_; }
  const DelayCalculator& calculator() const { return *calc_; }
  /// Mutable access for interactive delay edits (adjust_instance followed by
  /// update_instance_delays — see src/service/session.cpp).
  DelayCalculator& calculator_mut() { return *calc_; }

 private:
  const Design* design_;
  HummingbirdOptions options_;
  /// Degraded mode flattens hierarchical inputs so quarantine indices refer
  /// to analysable flat InstIds; design_ then points here.
  std::unique_ptr<Design> owned_flat_;
  DiagnosticSink diags_;
  std::size_t quarantined_count_ = 0;
  std::unique_ptr<DelayCalculator> calc_;
  std::unique_ptr<TimingGraph> graph_;
  std::unique_ptr<SyncModel> sync_;
  std::unique_ptr<ClusterSet> clusters_;
  std::unique_ptr<SlackEngine> engine_;
  AnalysisStats stats_;
  bool analyzed_ = false;
};

}  // namespace hb
