#include "sta/report.hpp"

#include <algorithm>
#include <sstream>

namespace hb {
namespace {

/// Backtrace the critical chain from `end` (with ready value `arr`, rising
/// iff `rising`) through the pass's ready annotations.
std::vector<PathStep> backtrace(const SlackEngine& engine, ClusterId c,
                                const PassResult& res, TNodeId end) {
  const TimingGraph& graph = engine.graph();
  std::vector<PathStep> rev;

  HB_ASSERT(res.ready.has(engine.local_index(end)));
  const RiseFall end_ready = res.ready.at(engine.local_index(end));
  bool rising = end_ready.rise >= end_ready.fall;
  TNodeId node = end;
  TimePs arrival = rising ? end_ready.rise : end_ready.fall;

  for (;;) {
    rev.push_back({node, arrival, rising});
    if (!engine.sync().launches_at(node).empty()) break;  // reached a launch

    bool found = false;
    for (std::uint32_t ai : graph.fanin(node)) {
      const TArcRec& arc = graph.arc(ai);
      if (!engine.clusters().cluster_of(arc.from).valid() ||
          engine.clusters().cluster_of(arc.from) != c) {
        continue;
      }
      if (!res.ready.has(engine.local_index(arc.from))) continue;
      const RiseFall from_ready = res.ready.at(engine.local_index(arc.from));
      const TimePs d = rising ? arc.delay.rise : arc.delay.fall;
      // Which input transition explains this output transition?
      bool prev_rising = rising;
      TimePs prev_arrival = 0;
      switch (arc.unate) {
        case Unate::kPositive:
          prev_rising = rising;
          break;
        case Unate::kNegative:
          prev_rising = !rising;
          break;
        case Unate::kNone:
          prev_rising = from_ready.rise >= from_ready.fall;
          break;
      }
      prev_arrival = prev_rising ? from_ready.rise : from_ready.fall;
      if (prev_arrival + d == arrival) {
        node = arc.from;
        arrival = prev_arrival;
        rising = prev_rising;
        found = true;
        break;
      }
    }
    if (!found) break;  // should not happen; stop defensively
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

}  // namespace

std::vector<SlowPath> enumerate_slow_paths(const SlackEngine& engine,
                                           std::size_t max_paths,
                                           TimePs slack_limit) {
  const SyncModel& sync = engine.sync();

  // Violating captures, worst first.
  std::vector<SyncId> violators;
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    const SyncInstance& si = sync.at(SyncId(i));
    if (!si.data_in.valid()) continue;
    const TimePs s = engine.capture_slack(SyncId(i));
    if (s != kInfinitePs && s < slack_limit) violators.push_back(SyncId(i));
  }
  // Order by (slack, SyncId): the id tie-break makes worst-K enumeration
  // deterministic when several paths share a slack (common under
  // multi-frequency clocks, where one element expands into several generic
  // instances with identical windows) — the same K paths in the same order
  // on every run, independent of evaluation schedule or thread count.
  std::sort(violators.begin(), violators.end(), [&](SyncId a, SyncId b) {
    const TimePs sa = engine.capture_slack(a), sb = engine.capture_slack(b);
    if (sa != sb) return sa < sb;
    return a.index() < b.index();
  });
  if (violators.size() > max_paths) violators.resize(max_paths);

  std::vector<SlowPath> out;
  for (SyncId cap : violators) {
    const SyncInstance& si = sync.at(cap);
    const ClusterId c = engine.clusters().cluster_of(si.data_in);
    if (!c.valid()) continue;
    const PassResult res = engine.run_pass(c, engine.assigned_pass(cap));

    SlowPath path;
    path.slack = engine.capture_slack(cap);
    path.capture = cap;
    path.steps = backtrace(engine, c, res, si.data_in);
    // Identify the launch terminal the chain starts at: the instance at the
    // first step whose assertion matches the start arrival.
    if (!path.steps.empty()) {
      const PathStep& first = path.steps.front();
      const auto& launches = sync.launches_at(first.node);
      for (SyncId l : launches) {
        path.launch = l;  // all launch instances share the node; keep last
      }
    }
    out.push_back(std::move(path));
  }
  return out;
}

std::string format_paths(const SlackEngine& engine,
                         const std::vector<SlowPath>& paths) {
  std::ostringstream os;
  const SyncModel& sync = engine.sync();
  for (const SlowPath& p : paths) {
    os << "slow path: slack " << format_time(p.slack) << ", capture "
       << sync.at(p.capture).label;
    if (p.launch.valid()) os << ", launch " << sync.at(p.launch).label;
    os << "\n";
    for (const PathStep& s : p.steps) {
      os << "    " << engine.graph().node_name(s.node) << " "
         << (s.rising ? "^" : "v") << " @ " << format_time(s.arrival) << "\n";
    }
  }
  return os.str();
}

void flag_slow_paths(Design& design, const TimingGraph& graph,
                     const std::vector<SlowPath>& paths) {
  for (const SlowPath& p : paths) {
    for (const PathStep& s : p.steps) {
      const NetId net = graph.node(s.node).net;
      if (net.valid()) design.flag_slow_net(net);
    }
  }
}

std::string timing_summary(const SlackEngine& engine) {
  const SyncModel& sync = engine.sync();
  std::size_t terminals = 0, violations = 0;
  TimePs worst = kInfinitePs;
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    for (TimePs s : {engine.launch_slack(SyncId(i)), engine.capture_slack(SyncId(i))}) {
      if (s == kInfinitePs) continue;
      ++terminals;
      if (s <= 0) ++violations;
      worst = std::min(worst, s);
    }
  }
  std::ostringstream os;
  os << "terminals: " << terminals << ", violations: " << violations
     << ", worst slack: " << (worst == kInfinitePs ? "+inf" : format_time(worst))
     << ", clusters: " << engine.clusters().num_clusters()
     << ", analysis passes: " << engine.num_passes_total() << "\n";
  return os.str();
}

}  // namespace hb
