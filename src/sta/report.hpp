// Slow-path reporting: the analyser's first duty is to "find all paths that
// are too slow".  Paths are enumerated by tracing the critical (max-arrival)
// predecessor chain backward from each violating capture terminal in its
// assigned analysis pass, exactly the information a designer inspects when
// Hummingbird flags slow paths in the OCT database for viewing in VEM —
// here, flags land on Design nets via flag_slow_paths().
#pragma once

#include <string>
#include <vector>

#include "sta/slack_engine.hpp"

namespace hb {

struct PathStep {
  TNodeId node;
  TimePs arrival = 0;  // in the pass's linearised coordinates
  bool rising = true;  // transition direction at this node
};

struct SlowPath {
  TimePs slack = 0;        // negative
  SyncId capture;          // violating capture terminal
  SyncId launch;           // launch terminal the critical chain starts at
  std::vector<PathStep> steps;  // launch first, capture last
};

/// All capture terminals with slack below `slack_limit`, worst first,
/// at most `max_paths` of them, each with its critical path.
std::vector<SlowPath> enumerate_slow_paths(const SlackEngine& engine,
                                           std::size_t max_paths,
                                           TimePs slack_limit = 0);

/// Human-readable multi-line rendering.
std::string format_paths(const SlackEngine& engine,
                         const std::vector<SlowPath>& paths);

/// Mark every net traversed by the given paths as slow in the design
/// database (the paper's "flag all slow paths in the OCT data base").
void flag_slow_paths(Design& design, const TimingGraph& graph,
                     const std::vector<SlowPath>& paths);

/// One-screen summary: worst slack, violation counts, pass statistics.
std::string timing_summary(const SlackEngine& engine);

}  // namespace hb
