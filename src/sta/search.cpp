#include "sta/search.hpp"

namespace hb {

bool works_at_period(const Design& design, const ClockFactory& make_clocks,
                     TimePs period, const MinPeriodOptions& options) {
  const ClockSet clocks = make_clocks(period);
  Hummingbird analyser(design, clocks, options.analysis);
  if (options.rigid) {
    // End-of-pulse offsets with no transfers — the rigid-latch view (same
    // semantics as baseline/rigid_latch, restated here to keep the layering
    // acyclic).
    analyser.sync_model_mut().reset_offsets();
    analyser.engine_mut().compute();
    return analyser.engine().worst_terminal_slack() > 0;
  }
  return analyser.analyze().works_as_intended;
}

TimePs find_min_period(const Design& design, const ClockFactory& make_clocks,
                       MinPeriodOptions options) {
  if (options.grid <= 0 || options.lo <= 0 || options.lo > options.hi) {
    raise("find_min_period: need grid > 0 and 0 < lo <= hi");
  }
  // Snap bounds onto the grid.
  TimePs lo = (options.lo + options.grid - 1) / options.grid;
  TimePs hi = options.hi / options.grid;
  if (hi < lo) hi = lo;
  if (!works_at_period(design, make_clocks, hi * options.grid, options)) {
    return (hi + 1) * options.grid;
  }
  while (lo < hi) {
    const TimePs mid = lo + (hi - lo) / 2;
    if (works_at_period(design, make_clocks, mid * options.grid, options)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo * options.grid;
}

}  // namespace hb
