// Clock-schedule exploration helpers — the programmatic face of the paper's
// interactive mode ("changes may be made to the shapes of the clock
// waveforms to determine the effect on system timing").
#pragma once

#include <functional>

#include "netlist/design.hpp"
#include "sta/hummingbird.hpp"

namespace hb {

struct MinPeriodOptions {
  TimePs lo = ns(1);
  TimePs hi = ns(100);
  /// Search grid: the result is the smallest multiple-of-grid period in
  /// [lo, hi] that works (binary search, monotone by assumption).
  TimePs grid = ps(100);
  /// Analyse with frozen end-of-pulse offsets instead of Algorithm 1
  /// (the rigid baseline).
  bool rigid = false;
  HummingbirdOptions analysis;
};

/// Builds the clock set for a candidate period.
using ClockFactory = std::function<ClockSet(TimePs period)>;

/// Does the design meet timing at this period?
bool works_at_period(const Design& design, const ClockFactory& make_clocks,
                     TimePs period, const MinPeriodOptions& options = {});

/// Smallest workable period on the option grid; returns options.hi + grid
/// when even the upper bound fails.
TimePs find_min_period(const Design& design, const ClockFactory& make_clocks,
                       MinPeriodOptions options = {});

}  // namespace hb
