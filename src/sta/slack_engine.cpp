#include "sta/slack_engine.hpp"

#include <algorithm>
#include <functional>

#include "util/faultinject.hpp"
#include "util/thread_pool.hpp"

namespace hb {
namespace {

// SplitMix64 finaliser, used to fold pass results into a checksum.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-sensitive checksum of a cached pass result.  Any bit flip in any
/// ready/required entry (value or presence) changes the sum.
std::uint64_t pass_checksum(const PassResult& res) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  auto feed = [&h](std::uint64_t v) { h = mix64(h ^ v); };
  auto feed_side = [&](const PassSide& side) {
    feed(side.size());
    for (std::size_t i = 0; i < side.size(); ++i) {
      if (side.has(i)) {
        const RiseFall e = side.at(i);
        feed(static_cast<std::uint64_t>(e.rise));
        feed(static_cast<std::uint64_t>(e.fall));
      } else {
        feed(0x5b5e546a6d51a0baULL);  // "absent" sentinel
      }
    }
  };
  feed_side(res.ready);
  feed_side(res.required);
  return h;
}

}  // namespace

SlackEngine::SlackEngine(const TimingGraph& graph, const ClusterSet& clusters,
                         const SyncModel& sync)
    : graph_(&graph), clusters_(&clusters), sync_(&sync) {
  local_of_node_.assign(graph.num_nodes(), 0);
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    const Cluster& cl = clusters.cluster(ClusterId(c));
    for (std::uint32_t i = 0; i < cl.nodes.size(); ++i) {
      local_of_node_[cl.nodes[i].index()] = i;
    }
  }
  analyses_.resize(clusters.num_clusters());
  assigned_pass_of_capture_.assign(sync.num_instances(), 0);
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    prepare_cluster(ClusterId(c));
  }
  dirty_.resize(clusters.num_clusters());
  launch_slack_.assign(sync.num_instances(), kInfinitePs);
  capture_slack_.assign(sync.num_instances(), kInfinitePs);
  node_.assign(graph.num_nodes(), NodeTiming{});
}

void SlackEngine::prepare_cluster(ClusterId c) {
  const Cluster& cl = clusters_->cluster(c);
  ClusterAnalysis& ca = analyses_[c.index()];

  // Capture instances in a fixed order.
  for (TNodeId n : cl.sink_nodes) {
    for (SyncId id : sync_->captures_at(n)) ca.capture_insts.push_back(id);
  }

  if (cl.source_nodes.empty() || ca.capture_insts.empty()) {
    // Pure control cones or unconstrained logic: nothing to analyse.
    ca.breaks.clear();
    return;
  }

  // Edge-graph nodes: every ideal assertion/closure time in this cluster.
  std::vector<TimePs> times;
  for (TNodeId n : cl.source_nodes) {
    for (SyncId id : sync_->launches_at(n)) {
      times.push_back(sync_->at(id).ideal_assert);
    }
  }
  for (SyncId id : ca.capture_insts) times.push_back(sync_->at(id).ideal_close);
  ca.edges = std::make_unique<ClockEdgeGraph>(std::move(times),
                                              sync_->overall_period());

  // Reachability from each source node to the cluster's sink nodes, then one
  // requirement per connected (launch instance, capture instance) pair.
  std::vector<std::uint32_t> sink_pos(graph_->num_nodes(), UINT32_MAX);
  for (std::uint32_t k = 0; k < cl.sink_nodes.size(); ++k) {
    sink_pos[cl.sink_nodes[k].index()] = k;
  }
  std::vector<char> visited(cl.nodes.size(), 0);
  std::vector<TNodeId> stack;
  for (TNodeId src : cl.source_nodes) {
    std::fill(visited.begin(), visited.end(), 0);
    stack.clear();
    stack.push_back(src);
    visited[local_of_node_[src.index()]] = 1;
    std::vector<TNodeId> reached_sinks;
    while (!stack.empty()) {
      const TNodeId n = stack.back();
      stack.pop_back();
      if (sink_pos[n.index()] != UINT32_MAX) reached_sinks.push_back(n);
      const NodeRole role = graph_->node(n).role;
      if (role == NodeRole::kSyncDataIn || role == NodeRole::kSyncControl) continue;
      for (std::uint32_t ai : graph_->fanout(n)) {
        const TNodeId to = graph_->arc(ai).to;
        char& v = visited[local_of_node_[to.index()]];
        if (!v) {
          v = 1;
          stack.push_back(to);
        }
      }
    }
    for (SyncId li : sync_->launches_at(src)) {
      for (TNodeId sink : reached_sinks) {
        for (SyncId cj : sync_->captures_at(sink)) {
          ca.edges->add_requirement(sync_->at(li).ideal_assert,
                                    sync_->at(cj).ideal_close);
        }
      }
    }
  }

  ca.breaks = ca.edges->solve_min_breaks();

  // Assign each capture instance to the pass where its ideal closure time
  // appears closest to the end of the broken-open period.
  ca.assigned.resize(ca.capture_insts.size());
  ca.assigned_mask.assign(ca.breaks.size(),
                          std::vector<bool>(ca.capture_insts.size(), false));
  for (std::uint32_t k = 0; k < ca.capture_insts.size(); ++k) {
    const SyncInstance& si = sync_->at(ca.capture_insts[k]);
    std::size_t best = 0;
    TimePs best_pos = -1;
    for (std::size_t p = 0; p < ca.breaks.size(); ++p) {
      const TimePs pos = ca.edges->linear_close(si.ideal_close, ca.breaks[p]);
      if (pos > best_pos) {
        best_pos = pos;
        best = p;
      }
    }
    ca.assigned[k] = static_cast<std::uint32_t>(best);
    ca.assigned_mask[best][k] = true;
    assigned_pass_of_capture_[ca.capture_insts[k].index()] =
        static_cast<std::uint32_t>(best);
  }
}

void SlackEngine::compute(ThreadPool* pool) {
  if (pool == nullptr) pool = env_analysis_pool();
  ++istats_.full_computes;

  // Evaluate every pass into the cache; passes are independent, so a pool
  // may run them concurrently (each task owns its result slot).  Cached
  // PassResult buffers are reused in place, so recomputes over a warm cache
  // allocate nothing.  Passes over clusters large enough for level-parallel
  // sweeps instead run on this thread, one at a time, with the pool
  // chunking their wavefronts — after the batch, because pool jobs must not
  // nest.
  const bool pooled = pool != nullptr && pool->size() > 1;
  const std::size_t par_min = sweep_tuning().min_parallel_nodes;
  task_fns_.clear();
  big_passes_.clear();
  for (std::uint32_t c = 0; c < clusters_->num_clusters(); ++c) {
    ClusterAnalysis& ca = analyses_[c];
    ca.cache.resize(ca.breaks.size());
    const bool big =
        pooled && clusters_->cluster(ClusterId(c)).nodes.size() >= par_min;
    for (std::size_t p = 0; p < ca.breaks.size(); ++p) {
      ++istats_.passes_evaluated;
      if (big) {
        big_passes_.emplace_back(c, static_cast<std::uint32_t>(p));
      } else if (pooled) {
        task_fns_.push_back([this, c, p] {
          run_pass_into(ClusterId(c), p, analyses_[c].cache[p]);
        });
      } else {
        run_pass_into(ClusterId(c), p, ca.cache[p]);
      }
    }
  }
  if (!task_fns_.empty()) pool->run_batch(task_fns_);
  for (const auto& [c, p] : big_passes_) {
    run_pass_into(ClusterId(c), p, analyses_[c].cache[p], pool);
  }

  for (std::uint32_t c = 0; c < clusters_->num_clusters(); ++c) {
    ClusterAnalysis& ca = analyses_[c];
    ca.checksums.resize(ca.breaks.size());
    for (std::size_t p = 0; p < ca.breaks.size(); ++p) {
      ca.checksums[p] = pass_checksum(ca.cache[p]);
    }
  }

  accumulate_all();
  cache_valid_ = true;
  for (ClusterDirty& d : dirty_) d.clear();
  maybe_corrupt_cache();
}

void SlackEngine::accumulate_all() {
  std::fill(launch_slack_.begin(), launch_slack_.end(), kInfinitePs);
  std::fill(capture_slack_.begin(), capture_slack_.end(), kInfinitePs);
  node_.assign(graph_->num_nodes(), NodeTiming{});
  for (std::uint32_t c = 0; c < clusters_->num_clusters(); ++c) {
    const ClusterAnalysis& ca = analyses_[c];
    for (std::size_t p = 0; p < ca.breaks.size(); ++p) {
      accumulate(ClusterId(c), p, ca.cache[p]);
    }
  }
}

void SlackEngine::invalidate_offsets(SyncId id) {
  const SyncInstance& si = sync_->at(id);
  if (si.data_out.valid()) {
    const ClusterId c = clusters_->cluster_of(si.data_out);
    if (c.valid()) {
      dirty_[c.index()].fwd.push_back(local_of_node_[si.data_out.index()]);
    }
  }
  if (si.data_in.valid()) {
    const ClusterId c = clusters_->cluster_of(si.data_in);
    if (c.valid()) {
      dirty_[c.index()].bwd_of_pass.emplace_back(
          assigned_pass_of_capture_[id.index()],
          local_of_node_[si.data_in.index()]);
    }
  }
}

void SlackEngine::invalidate_offsets(const std::vector<SyncId>& ids) {
  for (SyncId id : ids) invalidate_offsets(id);
}

void SlackEngine::invalidate_node(TNodeId node) {
  const ClusterId c = clusters_->cluster_of(node);
  if (!c.valid()) return;
  ClusterDirty& d = dirty_[c.index()];
  const std::uint32_t li = local_of_node_[node.index()];
  d.fwd.push_back(li);
  d.bwd.push_back(li);
}

void SlackEngine::invalidate_instance(InstId inst) {
  const Design& design = graph_->design();
  const Instance& self = design.top().inst(inst);
  for (std::uint32_t p = 0; p < self.conn.size(); ++p) {
    if (!self.conn[p].valid()) continue;
    invalidate_node(graph_->pin_node(inst, p));
    if (design.target_port_dir(self, p) != PortDirection::kInput) continue;
    // The instance's pin caps load its input nets: the drivers' output-arc
    // delays change with them.  Their output pins seed both cones; the
    // backward closure reaches the drivers' inputs from there.
    for (const PinRef& pin : design.top().net(self.conn[p]).pins) {
      const Instance& other = design.top().inst(pin.inst);
      if (design.target_port_dir(other, pin.port) == PortDirection::kOutput) {
        invalidate_node(graph_->pin_node(pin.inst, pin.port));
      }
    }
  }
}

void SlackEngine::invalidate_all() { cache_valid_ = false; }

bool SlackEngine::has_pending_invalidations() const {
  if (!cache_valid_) return true;
  for (const ClusterDirty& d : dirty_) {
    if (d.any()) return true;
  }
  return false;
}

void SlackEngine::update(ThreadPool* pool) {
  if (pool == nullptr) pool = env_analysis_pool();
  if (cache_valid_ && self_check_) {
    // Paranoid mode: re-verify every cached pass against its write-time
    // checksum before trusting it.  A divergence drops the cache, and the
    // update below degenerates into a (bit-identical) full compute.
    if (!verify_cache()) ++istats_.self_heals;
  }
  if (!cache_valid_) {
    compute(pool);
    return;
  }
  ++istats_.updates;

  // One task per dirty (cluster, pass); each owns its cached result and its
  // workspace, so the pool schedule cannot affect the outcome.  Task slots
  // and seed buffers are persistent members, reused across updates.
  num_update_tasks_ = 0;
  const bool pooled = pool != nullptr && pool->size() > 1;
  const std::size_t par_min = sweep_tuning().min_parallel_nodes;
  auto new_task = [this]() -> UpdateTask& {
    if (num_update_tasks_ == update_tasks_.size()) update_tasks_.emplace_back();
    UpdateTask& t = update_tasks_[num_update_tasks_++];
    t.bwd.clear();
    t.full = false;
    t.retraced = 0;
    return t;
  };
  dirty_clusters_.clear();
  for (std::uint32_t c = 0; c < clusters_->num_clusters(); ++c) {
    ClusterDirty& d = dirty_[c];
    if (!d.any()) continue;
    dirty_clusters_.push_back(c);
    const Cluster& cl = clusters_->cluster(ClusterId(c));
    const ClusterAnalysis& ca = analyses_[c];

    // Cost model: probe the union dirty cone once per cluster.  Each dirty
    // pass re-derives (at least) this cone, at the same per-node cost as
    // the full levelized sweep — so past kFullSweepNum/kFullSweepDen of the
    // cluster, re-evaluating the pass from scratch is cheaper than patching
    // (docs/ALGORITHMS.md §7).
    probe_bwd_.clear();
    for (std::uint32_t li : d.bwd) probe_bwd_.push_back(li);
    for (const auto& [pass, li] : d.bwd_of_pass) probe_bwd_.push_back(li);
    const std::size_t cone = pass_cone_size(cl, d.fwd, probe_bwd_, probe_ws_);
    // A level-parallel full sweep finishes ~par× sooner than the serial
    // cone patch per node, so scale the cone side of the comparison.
    const std::size_t par =
        (pooled && cl.nodes.size() >= par_min)
            ? std::min<std::size_t>(static_cast<std::size_t>(pool->size()), 8)
            : 1;
    const bool full =
        cone * kFullSweepDen * par > cl.nodes.size() * kFullSweepNum * 2;

    for (std::size_t p = 0; p < ca.breaks.size(); ++p) {
      UpdateTask& task = new_task();
      task.cluster = c;
      task.pass = static_cast<std::uint32_t>(p);
      task.bwd = d.bwd;
      for (const auto& [pass, li] : d.bwd_of_pass) {
        if (pass == p) task.bwd.push_back(li);
      }
      if (d.fwd.empty() && task.bwd.empty()) {
        --num_update_tasks_;  // pass untouched by this change set
        continue;
      }
      task.full = full;
      if (full) {
        ++istats_.passes_full_swept;
      } else {
        ++istats_.passes_updated;
      }
    }
  }
  istats_.passes_reused += num_passes_total() - num_update_tasks_;

  auto run_task = [this](UpdateTask& task, ThreadPool* sweep_pool) {
    const Cluster& cl = clusters_->cluster(ClusterId(task.cluster));
    ClusterAnalysis& ca = analyses_[task.cluster];
    if (task.full) {
      run_pass_into(ClusterId(task.cluster), task.pass, ca.cache[task.pass],
                    sweep_pool);
      task.retraced = 2 * cl.nodes.size();  // both sides, every node
    } else {
      task.retraced = update_analysis_pass(
          *graph_, *sync_, cl, local_of_node_, *ca.edges, ca.breaks[task.pass],
          ca.capture_insts, ca.assigned_mask[task.pass],
          dirty_[task.cluster].fwd, task.bwd, ca.cache[task.pass], task.ws);
    }
  };
  if (pooled && num_update_tasks_ > 1) {
    // Full sweeps over level-parallel-sized clusters run after the batch,
    // one at a time with the pool chunking their wavefronts (pool jobs must
    // not nest); everything else fans out as one task per dirty pass.
    task_fns_.clear();
    big_task_ids_.clear();
    for (std::size_t i = 0; i < num_update_tasks_; ++i) {
      UpdateTask* task = &update_tasks_[i];
      const Cluster& cl = clusters_->cluster(ClusterId(task->cluster));
      if (task->full && cl.nodes.size() >= par_min) {
        big_task_ids_.push_back(i);
      } else {
        task_fns_.push_back([&run_task, task] { run_task(*task, nullptr); });
      }
    }
    if (!task_fns_.empty()) pool->run_batch(task_fns_);
    for (std::size_t i : big_task_ids_) run_task(update_tasks_[i], pool);
  } else {
    for (std::size_t i = 0; i < num_update_tasks_; ++i) {
      run_task(update_tasks_[i], pool);
    }
  }
  for (std::size_t i = 0; i < num_update_tasks_; ++i) {
    const UpdateTask& task = update_tasks_[i];
    istats_.nodes_retraced += task.retraced;
    ClusterAnalysis& ca = analyses_[task.cluster];
    ca.checksums[task.pass] = pass_checksum(ca.cache[task.pass]);
  }

  // Accumulation is cluster-local (every terminal and node belongs to
  // exactly one cluster), so only dirty clusters need re-accumulating; the
  // ascending cluster/pass order keeps tie-breaking identical to compute().
  for (std::uint32_t c : dirty_clusters_) {
    reset_accumulation(ClusterId(c));
    const ClusterAnalysis& ca = analyses_[c];
    for (std::size_t p = 0; p < ca.breaks.size(); ++p) {
      accumulate(ClusterId(c), p, ca.cache[p]);
    }
    dirty_[c].clear();
  }
  maybe_corrupt_cache();
}

bool SlackEngine::verify_cache() {
  if (!cache_valid_) return true;
  ++istats_.self_checks;
  for (std::uint32_t c = 0; c < clusters_->num_clusters(); ++c) {
    const ClusterAnalysis& ca = analyses_[c];
    for (std::size_t p = 0; p < ca.breaks.size(); ++p) {
      if (pass_checksum(ca.cache[p]) != ca.checksums[p]) {
        cache_valid_ = false;
        return false;
      }
    }
  }
  return true;
}

void SlackEngine::maybe_corrupt_cache() {
  FaultInjector& injector = FaultInjector::instance();
  if (!injector.armed()) return;
  if (!injector.should_fire(FaultSite::kCacheCorrupt)) return;
  // Pick a deterministic cached entry and flip it *after* its checksum was
  // taken, modelling silent corruption of the incremental state.
  const std::size_t total = num_passes_total();
  if (total == 0) return;
  std::size_t target = injector.draw(FaultSite::kCacheCorrupt) % total;
  for (std::uint32_t c = 0; c < clusters_->num_clusters(); ++c) {
    ClusterAnalysis& ca = analyses_[c];
    if (target >= ca.breaks.size()) {
      target -= ca.breaks.size();
      continue;
    }
    PassResult& res = ca.cache[target];
    for (std::size_t i = 0; i < res.ready.size(); ++i) {
      if (res.ready.has(i)) {
        RiseFall e = res.ready.at(i);
        e.rise += 1000;  // 1ns of silent error
        res.ready.set(i, e);
        return;
      }
    }
    if (res.ready.size() > 0) res.ready.set(0, RiseFall{0, 0});
    return;
  }
}

void SlackEngine::reset_accumulation(ClusterId c) {
  const Cluster& cl = clusters_->cluster(c);
  for (TNodeId n : cl.source_nodes) {
    for (SyncId id : sync_->launches_at(n)) {
      launch_slack_[id.index()] = kInfinitePs;
    }
  }
  for (TNodeId n : cl.sink_nodes) {
    for (SyncId id : sync_->captures_at(n)) {
      capture_slack_[id.index()] = kInfinitePs;
    }
  }
  for (TNodeId n : cl.nodes) node_[n.index()] = NodeTiming{};
}

PassResult SlackEngine::run_pass(ClusterId c, std::size_t pass) const {
  PassResult res;
  run_pass_into(c, pass, res);
  return res;
}

void SlackEngine::run_pass_into(ClusterId c, std::size_t pass, PassResult& out,
                                ThreadPool* pool) const {
  const ClusterAnalysis& ca = analyses_.at(c.index());
  run_analysis_pass_into(*graph_, *sync_, clusters_->cluster(c), local_of_node_,
                         *ca.edges, ca.breaks.at(pass), ca.capture_insts,
                         ca.assigned_mask.at(pass), out, pool);
}

void SlackEngine::accumulate(ClusterId c, std::size_t pass, const PassResult& res) {
  const Cluster& cl = clusters_->cluster(c);
  const ClusterAnalysis& ca = analyses_[c.index()];

  // Capture terminal slacks (only in the assigned pass).
  for (std::uint32_t k = 0; k < ca.capture_insts.size(); ++k) {
    if (ca.assigned[k] != pass) continue;
    const SyncId id = ca.capture_insts[k];
    const SyncInstance& si = sync_->at(id);
    const std::uint32_t li = local_of_node_[si.data_in.index()];
    if (!res.ready.has(li)) continue;  // no data cone reaches this input
    const RiseFall rdy = res.ready.at(li);
    const TimePs close = ca.edges->linear_close(si.ideal_close, ca.breaks[pass]) +
                         si.close_offset();
    capture_slack_[id.index()] =
        std::min(capture_slack_[id.index()], close - rdy.max());
  }

  // Launch terminal slacks: min over passes of required - assertion.
  for (TNodeId n : cl.source_nodes) {
    const std::uint32_t li = local_of_node_[n.index()];
    if (!res.required.has(li)) continue;
    const RiseFall req = res.required.at(li);
    for (SyncId id : sync_->launches_at(n)) {
      const SyncInstance& si = sync_->at(id);
      const TimePs a = ca.edges->linear_assert(si.ideal_assert, ca.breaks[pass]) +
                       si.assert_offset();
      launch_slack_[id.index()] =
          std::min(launch_slack_[id.index()], req.min() - a);
    }
  }

  // Node timings.
  for (std::uint32_t i = 0; i < cl.nodes.size(); ++i) {
    if (!res.ready.has(i)) continue;
    const RiseFall rdy = res.ready.at(i);
    NodeTiming& nt = node_[cl.nodes[i].index()];
    ++nt.settling_count;
    if (!nt.has_ready) {
      nt.has_ready = true;
      if (!nt.has_constraint) nt.ready = rdy;
    } else if (!nt.has_constraint) {
      nt.ready = rf_max(nt.ready, rdy);
    }
    if (!res.required.has(i)) continue;
    const RiseFall req = res.required.at(i);
    const TimePs pass_slack =
        std::min(req.rise - rdy.rise, req.fall - rdy.fall);
    if (pass_slack < nt.slack) {
      nt.slack = pass_slack;
      nt.ready = rdy;
      nt.required = req;
      nt.has_constraint = true;
    }
  }
}

TimePs SlackEngine::worst_terminal_slack() const {
  TimePs worst = kInfinitePs;
  for (TimePs s : launch_slack_) worst = std::min(worst, s);
  for (TimePs s : capture_slack_) worst = std::min(worst, s);
  return worst;
}

std::size_t SlackEngine::num_passes_total() const {
  std::size_t n = 0;
  for (const ClusterAnalysis& ca : analyses_) n += ca.breaks.size();
  return n;
}

std::size_t SlackEngine::num_requirements(ClusterId c) const {
  const ClusterAnalysis& ca = analyses_.at(c.index());
  return ca.edges ? ca.edges->num_requirements() : 0;
}

std::size_t SlackEngine::assigned_pass(SyncId capture) const {
  return assigned_pass_of_capture_.at(capture.index());
}

}  // namespace hb
