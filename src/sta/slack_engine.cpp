#include "sta/slack_engine.hpp"

#include <algorithm>
#include <functional>

#include "util/faultinject.hpp"
#include "util/thread_pool.hpp"

namespace hb {
namespace {

// SplitMix64 finaliser, used to fold pass results into a checksum.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-sensitive checksum of a cached pass result.  Any bit flip in any
/// ready/required entry (value or presence) changes the sum.
std::uint64_t pass_checksum(const PassResult& res) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  auto feed = [&h](std::uint64_t v) { h = mix64(h ^ v); };
  auto feed_side = [&](const std::vector<std::optional<RiseFall>>& side) {
    feed(side.size());
    for (const auto& e : side) {
      if (e) {
        feed(static_cast<std::uint64_t>(e->rise));
        feed(static_cast<std::uint64_t>(e->fall));
      } else {
        feed(0x5b5e546a6d51a0baULL);  // "absent" sentinel
      }
    }
  };
  feed_side(res.ready);
  feed_side(res.required);
  return h;
}

}  // namespace

SlackEngine::SlackEngine(const TimingGraph& graph, const ClusterSet& clusters,
                         const SyncModel& sync)
    : graph_(&graph), clusters_(&clusters), sync_(&sync) {
  local_of_node_.assign(graph.num_nodes(), 0);
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    const Cluster& cl = clusters.cluster(ClusterId(c));
    for (std::uint32_t i = 0; i < cl.nodes.size(); ++i) {
      local_of_node_[cl.nodes[i].index()] = i;
    }
  }
  analyses_.resize(clusters.num_clusters());
  assigned_pass_of_capture_.assign(sync.num_instances(), 0);
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    prepare_cluster(ClusterId(c));
  }
  dirty_.resize(clusters.num_clusters());
  launch_slack_.assign(sync.num_instances(), kInfinitePs);
  capture_slack_.assign(sync.num_instances(), kInfinitePs);
  node_.assign(graph.num_nodes(), NodeTiming{});
}

void SlackEngine::prepare_cluster(ClusterId c) {
  const Cluster& cl = clusters_->cluster(c);
  ClusterAnalysis& ca = analyses_[c.index()];

  // Capture instances in a fixed order.
  for (TNodeId n : cl.sink_nodes) {
    for (SyncId id : sync_->captures_at(n)) ca.capture_insts.push_back(id);
  }

  if (cl.source_nodes.empty() || ca.capture_insts.empty()) {
    // Pure control cones or unconstrained logic: nothing to analyse.
    ca.breaks.clear();
    return;
  }

  // Edge-graph nodes: every ideal assertion/closure time in this cluster.
  std::vector<TimePs> times;
  for (TNodeId n : cl.source_nodes) {
    for (SyncId id : sync_->launches_at(n)) {
      times.push_back(sync_->at(id).ideal_assert);
    }
  }
  for (SyncId id : ca.capture_insts) times.push_back(sync_->at(id).ideal_close);
  ca.edges = std::make_unique<ClockEdgeGraph>(std::move(times),
                                              sync_->overall_period());

  // Reachability from each source node to the cluster's sink nodes, then one
  // requirement per connected (launch instance, capture instance) pair.
  std::vector<std::uint32_t> sink_pos(graph_->num_nodes(), UINT32_MAX);
  for (std::uint32_t k = 0; k < cl.sink_nodes.size(); ++k) {
    sink_pos[cl.sink_nodes[k].index()] = k;
  }
  std::vector<char> visited(cl.nodes.size(), 0);
  std::vector<TNodeId> stack;
  for (TNodeId src : cl.source_nodes) {
    std::fill(visited.begin(), visited.end(), 0);
    stack.clear();
    stack.push_back(src);
    visited[local_of_node_[src.index()]] = 1;
    std::vector<TNodeId> reached_sinks;
    while (!stack.empty()) {
      const TNodeId n = stack.back();
      stack.pop_back();
      if (sink_pos[n.index()] != UINT32_MAX) reached_sinks.push_back(n);
      const NodeRole role = graph_->node(n).role;
      if (role == NodeRole::kSyncDataIn || role == NodeRole::kSyncControl) continue;
      for (std::uint32_t ai : graph_->fanout(n)) {
        const TNodeId to = graph_->arc(ai).to;
        char& v = visited[local_of_node_[to.index()]];
        if (!v) {
          v = 1;
          stack.push_back(to);
        }
      }
    }
    for (SyncId li : sync_->launches_at(src)) {
      for (TNodeId sink : reached_sinks) {
        for (SyncId cj : sync_->captures_at(sink)) {
          ca.edges->add_requirement(sync_->at(li).ideal_assert,
                                    sync_->at(cj).ideal_close);
        }
      }
    }
  }

  ca.breaks = ca.edges->solve_min_breaks();

  // Assign each capture instance to the pass where its ideal closure time
  // appears closest to the end of the broken-open period.
  ca.assigned.resize(ca.capture_insts.size());
  ca.assigned_mask.assign(ca.breaks.size(),
                          std::vector<bool>(ca.capture_insts.size(), false));
  for (std::uint32_t k = 0; k < ca.capture_insts.size(); ++k) {
    const SyncInstance& si = sync_->at(ca.capture_insts[k]);
    std::size_t best = 0;
    TimePs best_pos = -1;
    for (std::size_t p = 0; p < ca.breaks.size(); ++p) {
      const TimePs pos = ca.edges->linear_close(si.ideal_close, ca.breaks[p]);
      if (pos > best_pos) {
        best_pos = pos;
        best = p;
      }
    }
    ca.assigned[k] = static_cast<std::uint32_t>(best);
    ca.assigned_mask[best][k] = true;
    assigned_pass_of_capture_[ca.capture_insts[k].index()] =
        static_cast<std::uint32_t>(best);
  }
}

void SlackEngine::compute(ThreadPool* pool) {
  ++istats_.full_computes;

  // Evaluate every pass into the cache; passes are independent, so a pool
  // may run them concurrently (each task owns its result slot).
  std::vector<std::function<void()>> tasks;
  for (std::uint32_t c = 0; c < clusters_->num_clusters(); ++c) {
    ClusterAnalysis& ca = analyses_[c];
    ca.cache.resize(ca.breaks.size());
    for (std::size_t p = 0; p < ca.breaks.size(); ++p) {
      ++istats_.passes_evaluated;
      if (pool != nullptr && pool->size() > 1) {
        tasks.push_back([this, c, p] {
          analyses_[c].cache[p] = run_pass(ClusterId(c), p);
        });
      } else {
        ca.cache[p] = run_pass(ClusterId(c), p);
      }
    }
  }
  if (!tasks.empty()) pool->run_batch(tasks);

  for (std::uint32_t c = 0; c < clusters_->num_clusters(); ++c) {
    ClusterAnalysis& ca = analyses_[c];
    ca.checksums.resize(ca.breaks.size());
    for (std::size_t p = 0; p < ca.breaks.size(); ++p) {
      ca.checksums[p] = pass_checksum(ca.cache[p]);
    }
  }

  accumulate_all();
  cache_valid_ = true;
  for (ClusterDirty& d : dirty_) d.clear();
  maybe_corrupt_cache();
}

void SlackEngine::accumulate_all() {
  std::fill(launch_slack_.begin(), launch_slack_.end(), kInfinitePs);
  std::fill(capture_slack_.begin(), capture_slack_.end(), kInfinitePs);
  node_.assign(graph_->num_nodes(), NodeTiming{});
  for (std::uint32_t c = 0; c < clusters_->num_clusters(); ++c) {
    const ClusterAnalysis& ca = analyses_[c];
    for (std::size_t p = 0; p < ca.breaks.size(); ++p) {
      accumulate(ClusterId(c), p, ca.cache[p]);
    }
  }
}

void SlackEngine::invalidate_offsets(SyncId id) {
  const SyncInstance& si = sync_->at(id);
  if (si.data_out.valid()) {
    const ClusterId c = clusters_->cluster_of(si.data_out);
    if (c.valid()) {
      dirty_[c.index()].fwd.push_back(local_of_node_[si.data_out.index()]);
    }
  }
  if (si.data_in.valid()) {
    const ClusterId c = clusters_->cluster_of(si.data_in);
    if (c.valid()) {
      dirty_[c.index()].bwd_of_pass.emplace_back(
          assigned_pass_of_capture_[id.index()],
          local_of_node_[si.data_in.index()]);
    }
  }
}

void SlackEngine::invalidate_offsets(const std::vector<SyncId>& ids) {
  for (SyncId id : ids) invalidate_offsets(id);
}

void SlackEngine::invalidate_node(TNodeId node) {
  const ClusterId c = clusters_->cluster_of(node);
  if (!c.valid()) return;
  ClusterDirty& d = dirty_[c.index()];
  const std::uint32_t li = local_of_node_[node.index()];
  d.fwd.push_back(li);
  d.bwd.push_back(li);
}

void SlackEngine::invalidate_instance(InstId inst) {
  const Design& design = graph_->design();
  const Instance& self = design.top().inst(inst);
  for (std::uint32_t p = 0; p < self.conn.size(); ++p) {
    if (!self.conn[p].valid()) continue;
    invalidate_node(graph_->pin_node(inst, p));
    if (design.target_port_dir(self, p) != PortDirection::kInput) continue;
    // The instance's pin caps load its input nets: the drivers' output-arc
    // delays change with them.  Their output pins seed both cones; the
    // backward closure reaches the drivers' inputs from there.
    for (const PinRef& pin : design.top().net(self.conn[p]).pins) {
      const Instance& other = design.top().inst(pin.inst);
      if (design.target_port_dir(other, pin.port) == PortDirection::kOutput) {
        invalidate_node(graph_->pin_node(pin.inst, pin.port));
      }
    }
  }
}

void SlackEngine::invalidate_all() { cache_valid_ = false; }

bool SlackEngine::has_pending_invalidations() const {
  if (!cache_valid_) return true;
  for (const ClusterDirty& d : dirty_) {
    if (d.any()) return true;
  }
  return false;
}

void SlackEngine::update(ThreadPool* pool) {
  if (cache_valid_ && self_check_) {
    // Paranoid mode: re-verify every cached pass against its write-time
    // checksum before trusting it.  A divergence drops the cache, and the
    // update below degenerates into a (bit-identical) full compute.
    if (!verify_cache()) ++istats_.self_heals;
  }
  if (!cache_valid_) {
    compute(pool);
    return;
  }
  ++istats_.updates;

  // One task per dirty (cluster, pass); each owns its cached result and its
  // scratch, so the pool schedule cannot affect the outcome.
  struct PassTask {
    std::uint32_t cluster;
    std::size_t pass;
    std::vector<std::uint32_t> bwd;  // bwd plus this pass's bwd_of_pass
    PassScratch scratch;
    std::size_t retraced = 0;
  };
  std::vector<PassTask> pass_tasks;
  std::vector<std::uint32_t> dirty_clusters;
  for (std::uint32_t c = 0; c < clusters_->num_clusters(); ++c) {
    ClusterDirty& d = dirty_[c];
    if (!d.any()) continue;
    dirty_clusters.push_back(c);
    const ClusterAnalysis& ca = analyses_[c];
    for (std::size_t p = 0; p < ca.breaks.size(); ++p) {
      PassTask task;
      task.cluster = c;
      task.pass = p;
      task.bwd = d.bwd;
      for (const auto& [pass, li] : d.bwd_of_pass) {
        if (pass == p) task.bwd.push_back(li);
      }
      if (d.fwd.empty() && task.bwd.empty()) continue;
      ++istats_.passes_updated;
      pass_tasks.push_back(std::move(task));
    }
  }
  istats_.passes_reused += num_passes_total() - pass_tasks.size();

  auto run_task = [this](PassTask& task) {
    const Cluster& cl = clusters_->cluster(ClusterId(task.cluster));
    ClusterAnalysis& ca = analyses_[task.cluster];
    task.retraced = update_analysis_pass(
        *graph_, *sync_, cl, local_of_node_, *ca.edges, ca.breaks[task.pass],
        ca.capture_insts, ca.assigned_mask[task.pass], dirty_[task.cluster].fwd,
        task.bwd, ca.cache[task.pass], task.scratch);
  };
  if (pool != nullptr && pool->size() > 1 && pass_tasks.size() > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(pass_tasks.size());
    for (PassTask& task : pass_tasks) {
      tasks.push_back([&run_task, &task] { run_task(task); });
    }
    pool->run_batch(tasks);
  } else {
    for (PassTask& task : pass_tasks) run_task(task);
  }
  for (const PassTask& task : pass_tasks) {
    istats_.nodes_retraced += task.retraced;
    ClusterAnalysis& ca = analyses_[task.cluster];
    ca.checksums[task.pass] = pass_checksum(ca.cache[task.pass]);
  }

  // Accumulation is cluster-local (every terminal and node belongs to
  // exactly one cluster), so only dirty clusters need re-accumulating; the
  // ascending cluster/pass order keeps tie-breaking identical to compute().
  for (std::uint32_t c : dirty_clusters) {
    reset_accumulation(ClusterId(c));
    const ClusterAnalysis& ca = analyses_[c];
    for (std::size_t p = 0; p < ca.breaks.size(); ++p) {
      accumulate(ClusterId(c), p, ca.cache[p]);
    }
    dirty_[c].clear();
  }
  maybe_corrupt_cache();
}

bool SlackEngine::verify_cache() {
  if (!cache_valid_) return true;
  ++istats_.self_checks;
  for (std::uint32_t c = 0; c < clusters_->num_clusters(); ++c) {
    const ClusterAnalysis& ca = analyses_[c];
    for (std::size_t p = 0; p < ca.breaks.size(); ++p) {
      if (pass_checksum(ca.cache[p]) != ca.checksums[p]) {
        cache_valid_ = false;
        return false;
      }
    }
  }
  return true;
}

void SlackEngine::maybe_corrupt_cache() {
  FaultInjector& injector = FaultInjector::instance();
  if (!injector.armed()) return;
  if (!injector.should_fire(FaultSite::kCacheCorrupt)) return;
  // Pick a deterministic cached entry and flip it *after* its checksum was
  // taken, modelling silent corruption of the incremental state.
  const std::size_t total = num_passes_total();
  if (total == 0) return;
  std::size_t target = injector.draw(FaultSite::kCacheCorrupt) % total;
  for (std::uint32_t c = 0; c < clusters_->num_clusters(); ++c) {
    ClusterAnalysis& ca = analyses_[c];
    if (target >= ca.breaks.size()) {
      target -= ca.breaks.size();
      continue;
    }
    PassResult& res = ca.cache[target];
    for (auto& e : res.ready) {
      if (e) {
        e->rise += 1000;  // 1ns of silent error
        return;
      }
    }
    if (!res.ready.empty()) res.ready.front() = RiseFall{0, 0};
    return;
  }
}

void SlackEngine::reset_accumulation(ClusterId c) {
  const Cluster& cl = clusters_->cluster(c);
  for (TNodeId n : cl.source_nodes) {
    for (SyncId id : sync_->launches_at(n)) {
      launch_slack_[id.index()] = kInfinitePs;
    }
  }
  for (TNodeId n : cl.sink_nodes) {
    for (SyncId id : sync_->captures_at(n)) {
      capture_slack_[id.index()] = kInfinitePs;
    }
  }
  for (TNodeId n : cl.nodes) node_[n.index()] = NodeTiming{};
}

PassResult SlackEngine::run_pass(ClusterId c, std::size_t pass) const {
  const ClusterAnalysis& ca = analyses_.at(c.index());
  return run_analysis_pass(*graph_, *sync_, clusters_->cluster(c), local_of_node_,
                           *ca.edges, ca.breaks.at(pass), ca.capture_insts,
                           ca.assigned_mask.at(pass));
}

void SlackEngine::accumulate(ClusterId c, std::size_t pass, const PassResult& res) {
  const Cluster& cl = clusters_->cluster(c);
  const ClusterAnalysis& ca = analyses_[c.index()];

  // Capture terminal slacks (only in the assigned pass).
  for (std::uint32_t k = 0; k < ca.capture_insts.size(); ++k) {
    if (ca.assigned[k] != pass) continue;
    const SyncId id = ca.capture_insts[k];
    const SyncInstance& si = sync_->at(id);
    const auto& rdy = res.ready[local_of_node_[si.data_in.index()]];
    if (!rdy) continue;  // no data cone reaches this input
    const TimePs close = ca.edges->linear_close(si.ideal_close, ca.breaks[pass]) +
                         si.close_offset();
    capture_slack_[id.index()] =
        std::min(capture_slack_[id.index()], close - rdy->max());
  }

  // Launch terminal slacks: min over passes of required - assertion.
  for (TNodeId n : cl.source_nodes) {
    const auto& req = res.required[local_of_node_[n.index()]];
    if (!req) continue;
    for (SyncId id : sync_->launches_at(n)) {
      const SyncInstance& si = sync_->at(id);
      const TimePs a = ca.edges->linear_assert(si.ideal_assert, ca.breaks[pass]) +
                       si.assert_offset();
      launch_slack_[id.index()] =
          std::min(launch_slack_[id.index()], req->min() - a);
    }
  }

  // Node timings.
  for (std::uint32_t i = 0; i < cl.nodes.size(); ++i) {
    const auto& rdy = res.ready[i];
    if (!rdy) continue;
    NodeTiming& nt = node_[cl.nodes[i].index()];
    ++nt.settling_count;
    if (!nt.has_ready) {
      nt.has_ready = true;
      if (!nt.has_constraint) nt.ready = *rdy;
    } else if (!nt.has_constraint) {
      nt.ready = rf_max(nt.ready, *rdy);
    }
    const auto& req = res.required[i];
    if (!req) continue;
    const TimePs pass_slack =
        std::min(req->rise - rdy->rise, req->fall - rdy->fall);
    if (pass_slack < nt.slack) {
      nt.slack = pass_slack;
      nt.ready = *rdy;
      nt.required = *req;
      nt.has_constraint = true;
    }
  }
}

TimePs SlackEngine::worst_terminal_slack() const {
  TimePs worst = kInfinitePs;
  for (TimePs s : launch_slack_) worst = std::min(worst, s);
  for (TimePs s : capture_slack_) worst = std::min(worst, s);
  return worst;
}

std::size_t SlackEngine::num_passes_total() const {
  std::size_t n = 0;
  for (const ClusterAnalysis& ca : analyses_) n += ca.breaks.size();
  return n;
}

std::size_t SlackEngine::num_requirements(ClusterId c) const {
  const ClusterAnalysis& ca = analyses_.at(c.index());
  return ca.edges ? ca.edges->num_requirements() : 0;
}

std::size_t SlackEngine::assigned_pass(SyncId capture) const {
  return assigned_pass_of_capture_.at(capture.index());
}

}  // namespace hb
