// Multi-pass slack computation (paper Section 7).
//
// Pre-processing, done once per design+clock configuration:
//   * per cluster, build the clock-edge graph over the ideal assertion and
//     closure times of its launch/capture instances;
//   * add one ordering requirement per (launch instance, capture instance)
//     pair connected by a combinational path;
//   * solve for the minimum set of break nodes (analysis passes);
//   * assign every capture instance to the pass in which its ideal closure
//     time appears closest to the end of the broken-open period.
//
// compute() then evaluates every pass with the *current* synchronising
// element offsets and produces:
//   * per-instance terminal slacks (inputs of Algorithms 1 and 2);
//   * per-node slack / ready / required times (from the node's critical
//     pass) and settling-time counts — the paper's headline "minimum number
//     of settling times ... evaluated for the nodes".
//
// Incremental re-analysis: the engine caches every pass result and accepts
// invalidations (invalidate_offsets / invalidate_node / invalidate_instance)
// describing local changes.  update() then re-propagates only the affected
// reachability cone of each affected pass and re-accumulates only the
// affected clusters, reproducing compute() bit for bit — see
// docs/ALGORITHMS.md §7 and tests/incremental_test.cpp.  Independent dirty
// passes are evaluated in parallel when a ThreadPool is supplied; the
// schedule never affects results because every pass owns its result slot
// and accumulation stays in cluster/pass order.
#pragma once

#include <functional>
#include <memory>

#include "sta/analysis_pass.hpp"

namespace hb {

class ThreadPool;

struct NodeTiming {
  /// Worst slack over all passes; +inf when unconstrained.
  TimePs slack = kInfinitePs;
  /// Ready/required pair from the critical pass (the coherent window for
  /// re-synthesis constraints).  `ready` falls back to the latest arrival
  /// over all passes when no pass constrains the node.
  RiseFall ready{-kInfinitePs, -kInfinitePs};
  RiseFall required{kInfinitePs, kInfinitePs};
  bool has_ready = false;
  bool has_constraint = false;
  /// Number of analysis passes that evaluated a settling time for the node.
  int settling_count = 0;
};

/// Bookkeeping for the incremental layer (see bench_incremental).
struct IncrementalStats {
  std::uint64_t full_computes = 0;     // compute() calls, fallbacks included
  std::uint64_t updates = 0;           // update() calls served incrementally
  std::uint64_t passes_evaluated = 0;  // passes propagated from scratch
  std::uint64_t passes_updated = 0;    // passes patched over a dirty cone
  std::uint64_t passes_full_swept = 0; // dirty passes the cost model chose to
                                       // re-evaluate with a full levelized
                                       // sweep instead of a cone patch
  std::uint64_t passes_reused = 0;     // cached passes an update left untouched
  std::uint64_t nodes_retraced = 0;    // nodes re-derived by cone updates
  std::uint64_t self_checks = 0;       // cache verifications performed
  std::uint64_t self_heals = 0;        // divergences healed by full recompute
};

class SlackEngine {
 public:
  SlackEngine(const TimingGraph& graph, const ClusterSet& clusters,
              const SyncModel& sync);

  /// Re-evaluate every pass with the current offsets.  With a pool,
  /// independent passes are evaluated concurrently, and passes over large
  /// clusters additionally chunk each level wavefront across the pool
  /// (results byte-identical either way; the two uses of the pool never
  /// nest — batch fan-out first, then the level-parallel passes).  When no
  /// pool is given, falls back to env_analysis_pool() (HB_THREADS).
  /// Also primes the incremental cache and clears pending invalidations.
  void compute(ThreadPool* pool = nullptr);

  // -- Dirty-set API ------------------------------------------------------
  // Record *what changed* between evaluations; update() re-derives exactly
  // the recorded cones.  All three may be mixed freely before one update().

  /// The adjustable/virtual offsets of `id` changed (SyncInstance::shift,
  /// a port-spec edit, a refreshed D_cz/D_dz).  Launch side dirties the
  /// ready cone of every pass of its cluster; capture side dirties the
  /// required cone of its assigned pass.
  void invalidate_offsets(SyncId id);
  void invalidate_offsets(const std::vector<SyncId>& ids);
  /// Delays of arcs incident to `node` changed: dirties the forward and
  /// backward cones from the node in every pass of its cluster.
  void invalidate_node(TNodeId node);
  /// Delays of `inst`'s own component arcs changed (e.g. after
  /// DelayCalculator::adjust_instance).  Covers the instance's pins and the
  /// output pins of the drivers of its input nets, whose load-dependent
  /// delays change with the instance's pin caps.  For an exact footprint
  /// after a cell swap, prefer TimingGraph::update_instance_delays and
  /// invalidate_node on the endpoints of the arcs it reports changed.
  void invalidate_instance(InstId inst);
  /// Drop the cache entirely: the next update() is a full compute().
  void invalidate_all();
  bool has_pending_invalidations() const;

  /// Bring all results up to date with the recorded invalidations.  With a
  /// valid cache this re-propagates only the dirty cones and re-accumulates
  /// only the dirty clusters; otherwise it falls back to compute().  The
  /// result state is bit-identical to a fresh compute() either way.
  void update(ThreadPool* pool = nullptr);

  const IncrementalStats& incremental_stats() const { return istats_; }

  // -- Self-check / self-heal --------------------------------------------
  // Every cached pass result carries a checksum taken when it was written.
  // In self-check (paranoid) mode, update() re-verifies all cached
  // checksums before trusting the cache; on any divergence — memory
  // corruption, a faulty cone patch, or an injected fault — the cache is
  // dropped and the update is served by a full compute(), which is
  // bit-identical by construction.  The event is counted in
  // IncrementalStats::self_heals; analysis results are unaffected.

  void set_self_check(bool on) { self_check_ = on; }
  bool self_check() const { return self_check_; }

  /// Verify all cached pass results against their write-time checksums.
  /// Returns true when consistent (or when there is no cache to verify);
  /// on divergence drops the cache and returns false.
  bool verify_cache();

  /// Terminal slacks (min over passes); +inf when unconstrained.  Valid
  /// after compute().
  TimePs launch_slack(SyncId id) const { return launch_slack_.at(id.index()); }
  TimePs capture_slack(SyncId id) const { return capture_slack_.at(id.index()); }
  /// Worst slack over every synchronising-element terminal.
  TimePs worst_terminal_slack() const;

  const NodeTiming& node_timing(TNodeId id) const { return node_.at(id.index()); }
  /// All node timings, indexed by TNodeId (bulk accessor for snapshots).
  const std::vector<NodeTiming>& node_timings() const { return node_; }

  /// Pre-processing facts.
  std::size_t num_passes_total() const;
  std::size_t num_passes(ClusterId c) const { return analyses_.at(c.index()).breaks.size(); }
  std::size_t num_requirements(ClusterId c) const;
  const std::vector<std::size_t>& breaks(ClusterId c) const {
    return analyses_.at(c.index()).breaks;
  }
  const ClockEdgeGraph& edge_graph(ClusterId c) const {
    return *analyses_.at(c.index()).edges;
  }
  /// Pass index (into breaks(cluster)) a capture instance is assigned to.
  std::size_t assigned_pass(SyncId capture) const;

  /// Re-run a single pass (for path tracing / debugging).
  PassResult run_pass(ClusterId c, std::size_t pass) const;
  /// Same, writing into caller-owned buffers (no steady-state allocation).
  /// With a pool, the sweeps run level-parallel when the cluster is large
  /// enough (see SweepTuning); results are byte-identical either way.
  void run_pass_into(ClusterId c, std::size_t pass, PassResult& out,
                     ThreadPool* pool = nullptr) const;
  /// Cached result of one pass (valid after compute()/update(); exposed for
  /// the determinism sweep tests, which compare caches across thread counts
  /// and kernel variants).
  const PassResult& cached_pass(ClusterId c, std::size_t pass) const {
    return analyses_.at(c.index()).cache.at(pass);
  }

  /// Pre-processing facts exposed for differential harnesses and benches.
  const std::vector<SyncId>& capture_insts(ClusterId c) const {
    return analyses_.at(c.index()).capture_insts;
  }
  const std::vector<bool>& assigned_mask(ClusterId c, std::size_t pass) const {
    return analyses_.at(c.index()).assigned_mask.at(pass);
  }

  const TimingGraph& graph() const { return *graph_; }
  const ClusterSet& clusters() const { return *clusters_; }
  const SyncModel& sync() const { return *sync_; }
  /// Position of a node inside its cluster's node list.
  std::uint32_t local_index(TNodeId n) const { return local_of_node_.at(n.index()); }

 private:
  struct ClusterAnalysis {
    std::unique_ptr<ClockEdgeGraph> edges;
    std::vector<std::size_t> breaks;
    std::vector<SyncId> capture_insts;            // all captures in cluster
    std::vector<std::uint32_t> assigned;          // pass index per capture
    std::vector<std::vector<bool>> assigned_mask; // [pass][capture]
    std::vector<PassResult> cache;                // [pass], valid iff cache_valid_
    std::vector<std::uint64_t> checksums;         // [pass], taken at write time
  };

  /// Pending invalidations of one cluster, in local node indices.
  struct ClusterDirty {
    std::vector<std::uint32_t> fwd;  // ready cones, every pass
    std::vector<std::uint32_t> bwd;  // required cones, every pass
    /// required cones of a single pass (capture offset changes).
    std::vector<std::pair<std::uint32_t, std::uint32_t>> bwd_of_pass;
    bool any() const { return !fwd.empty() || !bwd.empty() || !bwd_of_pass.empty(); }
    void clear() {
      fwd.clear();
      bwd.clear();
      bwd_of_pass.clear();
    }
  };

  /// Cost model for update(): when the union dirty cone of a cluster exceeds
  /// this fraction of the cluster's nodes, all of its dirty passes are
  /// re-evaluated with full levelized sweeps instead of per-pass cone
  /// patches (docs/ALGORITHMS.md §7).  Calibrated with bench_incremental:
  /// a cone re-derivation touches the same per-node work as the full sweep,
  /// so past ~half the cluster the sweep's linear access pattern wins.
  /// When a pool can level-parallelise the full sweep (cluster at least
  /// SweepTuning::min_parallel_nodes), the sweep's wall-clock cost drops by
  /// roughly the worker count while the (serial) cone patch does not, so
  /// the comparison scales the cone side by that factor — the choice only
  /// moves the patch/sweep crossover; both strategies are bit-identical.
  static constexpr std::size_t kFullSweepNum = 1;
  static constexpr std::size_t kFullSweepDen = 2;

  void prepare_cluster(ClusterId c);
  void accumulate(ClusterId c, std::size_t pass, const PassResult& res);
  void reset_accumulation(ClusterId c);
  void accumulate_all();
  /// Fault-injection hook: deterministically perturb one cached entry
  /// *after* its checksum was taken (no-op unless the injector is armed).
  void maybe_corrupt_cache();

  const TimingGraph* graph_;
  const ClusterSet* clusters_;
  const SyncModel* sync_;

  std::vector<std::uint32_t> local_of_node_;
  std::vector<ClusterAnalysis> analyses_;
  std::vector<std::uint32_t> assigned_pass_of_capture_;  // by SyncId

  std::vector<ClusterDirty> dirty_;  // by cluster
  bool cache_valid_ = false;
  bool self_check_ = false;
  IncrementalStats istats_;

  // -- Persistent update()/compute() machinery ----------------------------
  // Task slots, closures and seed buffers are reused across calls (grown,
  // never shrunk), so steady-state updates perform no heap allocation.
  struct UpdateTask {
    std::uint32_t cluster = 0;
    std::uint32_t pass = 0;
    bool full = false;               // cost model: full sweep vs cone patch
    std::vector<std::uint32_t> bwd;  // cone: bwd plus this pass's bwd_of_pass
    PassWorkspace ws;
    std::size_t retraced = 0;
  };
  std::vector<UpdateTask> update_tasks_;
  std::size_t num_update_tasks_ = 0;
  std::vector<std::function<void()>> task_fns_;
  /// (cluster, pass) pairs big enough for level-parallel sweeps; these run
  /// on the calling thread with the pool chunking their wavefronts, after
  /// the batch of small passes (the pool is not re-entrant, so the two
  /// parallelism modes never nest).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> big_passes_;
  std::vector<std::size_t> big_task_ids_;  // update(): tasks run pool-swept
  std::vector<std::uint32_t> dirty_clusters_;
  std::vector<std::uint32_t> probe_bwd_;  // union backward seeds (cost probe)
  PassWorkspace probe_ws_;

  std::vector<TimePs> launch_slack_;
  std::vector<TimePs> capture_slack_;
  std::vector<NodeTiming> node_;
};

}  // namespace hb
