// Multi-pass slack computation (paper Section 7).
//
// Pre-processing, done once per design+clock configuration:
//   * per cluster, build the clock-edge graph over the ideal assertion and
//     closure times of its launch/capture instances;
//   * add one ordering requirement per (launch instance, capture instance)
//     pair connected by a combinational path;
//   * solve for the minimum set of break nodes (analysis passes);
//   * assign every capture instance to the pass in which its ideal closure
//     time appears closest to the end of the broken-open period.
//
// compute() then evaluates every pass with the *current* synchronising
// element offsets and produces:
//   * per-instance terminal slacks (inputs of Algorithms 1 and 2);
//   * per-node slack / ready / required times (from the node's critical
//     pass) and settling-time counts — the paper's headline "minimum number
//     of settling times ... evaluated for the nodes".
#pragma once

#include <memory>
#include <optional>

#include "sta/analysis_pass.hpp"

namespace hb {

struct NodeTiming {
  /// Worst slack over all passes; +inf when unconstrained.
  TimePs slack = kInfinitePs;
  /// Ready/required pair from the critical pass (the coherent window for
  /// re-synthesis constraints).  `ready` falls back to the latest arrival
  /// over all passes when no pass constrains the node.
  RiseFall ready{-kInfinitePs, -kInfinitePs};
  RiseFall required{kInfinitePs, kInfinitePs};
  bool has_ready = false;
  bool has_constraint = false;
  /// Number of analysis passes that evaluated a settling time for the node.
  int settling_count = 0;
};

class SlackEngine {
 public:
  SlackEngine(const TimingGraph& graph, const ClusterSet& clusters,
              const SyncModel& sync);

  /// Re-evaluate every pass with the current offsets.
  void compute();

  /// Terminal slacks (min over passes); +inf when unconstrained.  Valid
  /// after compute().
  TimePs launch_slack(SyncId id) const { return launch_slack_.at(id.index()); }
  TimePs capture_slack(SyncId id) const { return capture_slack_.at(id.index()); }
  /// Worst slack over every synchronising-element terminal.
  TimePs worst_terminal_slack() const;

  const NodeTiming& node_timing(TNodeId id) const { return node_.at(id.index()); }

  /// Pre-processing facts.
  std::size_t num_passes_total() const;
  std::size_t num_passes(ClusterId c) const { return analyses_.at(c.index()).breaks.size(); }
  std::size_t num_requirements(ClusterId c) const;
  const std::vector<std::size_t>& breaks(ClusterId c) const {
    return analyses_.at(c.index()).breaks;
  }
  const ClockEdgeGraph& edge_graph(ClusterId c) const {
    return *analyses_.at(c.index()).edges;
  }
  /// Pass index (into breaks(cluster)) a capture instance is assigned to.
  std::size_t assigned_pass(SyncId capture) const;

  /// Re-run a single pass (for path tracing / debugging).
  PassResult run_pass(ClusterId c, std::size_t pass) const;

  const TimingGraph& graph() const { return *graph_; }
  const ClusterSet& clusters() const { return *clusters_; }
  const SyncModel& sync() const { return *sync_; }
  /// Position of a node inside its cluster's node list.
  std::uint32_t local_index(TNodeId n) const { return local_of_node_.at(n.index()); }

 private:
  struct ClusterAnalysis {
    std::unique_ptr<ClockEdgeGraph> edges;
    std::vector<std::size_t> breaks;
    std::vector<SyncId> capture_insts;            // all captures in cluster
    std::vector<std::uint32_t> assigned;          // pass index per capture
    std::vector<std::vector<bool>> assigned_mask; // [pass][capture]
  };

  void prepare_cluster(ClusterId c);
  void accumulate(ClusterId c, std::size_t pass, const PassResult& res);

  const TimingGraph* graph_;
  const ClusterSet* clusters_;
  const SyncModel* sync_;

  std::vector<std::uint32_t> local_of_node_;
  std::vector<ClusterAnalysis> analyses_;
  std::vector<std::uint32_t> assigned_pass_of_capture_;  // by SyncId

  std::vector<TimePs> launch_slack_;
  std::vector<TimePs> capture_slack_;
  std::vector<NodeTiming> node_;
};

}  // namespace hb
