#include "sta/sync_model.hpp"

#include <algorithm>
#include <optional>
#include <utility>

namespace hb {
namespace {

const std::vector<SyncId> kNoInstances;

}  // namespace

SyncModel::SyncModel(const TimingGraph& graph, const ClockSet& clocks,
                     const DelayCalculator& calc, SyncModelOptions options)
    : graph_(&graph), clocks_(&clocks), options_(std::move(options)) {
  period_ = clocks.overall_period();
  // Guard against near-coprime clock periods: every element clocked at n x
  // the overall frequency expands into n generic instances, so an exploded
  // LCM means an exploded model.  Real synchronous designs stay far below
  // this bound (paper: harmonically related frequencies).
  for (std::uint32_t c = 0; c < clocks.num_clocks(); ++c) {
    const TimePs ratio = period_ / clocks.clock(ClockId(c)).period;
    if (ratio > 64) {
      raise("clock '" + clocks.clock(ClockId(c)).name + "' runs at " +
            std::to_string(ratio) +
            "x the overall frequency; the clock set is (nearly) non-harmonic");
    }
  }
  trace_controls();
  build_element_instances(calc);
  build_port_instances();
  compute_data_cones();
  build_enable_sinks();
  index_instances();
  reset_offsets();
  drain_changed_offsets();  // the initial state is nobody's "change"
}

// Propagate (clock, polarity, delay) from clock ports through combinational
// arcs in topological order.  validate() has already guaranteed every
// control cone is a monotonic function of exactly one clock, so conflicts
// here are internal errors for element control pins; data-side nodes touched
// by clock cones are simply recorded and never queried.
void SyncModel::trace_controls() {
  struct ClockCone {
    ClockId clock;
    int polarity = +1;
    RiseFall delay;
    bool conflict = false;
  };
  std::vector<std::optional<ClockCone>> cone(graph_->num_nodes());

  for (TNodeId n : graph_->topo_order()) {
    const TNode& node = graph_->node(n);
    if (node.role == NodeRole::kClockPort) {
      cone[n.index()] = ClockCone{clocks_->find(graph_->design().top().port(node.port).name),
                                  +1, RiseFall{0, 0}, false};
      if (!cone[n.index()]->clock.valid()) {
        raise("clock port '" + graph_->design().top().port(node.port).name +
              "' has no matching clock definition");
      }
      continue;
    }
    // Merge contributions from fanin arcs.
    for (std::uint32_t ai : graph_->fanin(n)) {
      const TArcRec& arc = graph_->arc(ai);
      const auto& in = cone[arc.from.index()];
      if (!in) continue;
      ClockCone next = *in;
      if (arc.unate == Unate::kNegative) next.polarity = -next.polarity;
      if (arc.unate == Unate::kNone) next.conflict = true;
      // Worst-case control delay: conservative scalar max over transitions.
      const TimePs worst = std::max(in->delay.max() + arc.delay.rise,
                                    in->delay.max() + arc.delay.fall);
      next.delay = {worst, worst};
      auto& slot = cone[n.index()];
      if (!slot) {
        slot = next;
      } else {
        if (slot->clock != next.clock || slot->polarity != next.polarity) {
          slot->conflict = true;
        }
        slot->delay = rf_max(slot->delay, next.delay);
        slot->conflict = slot->conflict || next.conflict;
      }
    }
  }

  for (std::uint32_t i = 0; i < graph_->num_nodes(); ++i) {
    const TNode& node = graph_->node(TNodeId(i));
    if (node.role != NodeRole::kSyncControl) continue;
    const auto& c = cone[i];
    if (!c) {
      raise("control pin " + graph_->node_name(TNodeId(i)) +
            " is not driven by any clock (run validate() first)");
    }
    if (c->conflict) {
      raise("control pin " + graph_->node_name(TNodeId(i)) +
            " is not a monotonic function of one clock (run validate() first)");
    }
    control_[node.inst.value()] = ControlInfo{c->clock, c->polarity, c->delay.max()};
  }
}

void SyncModel::build_element_instances(const DelayCalculator& calc) {
  const Design& design = graph_->design();
  const Module& top = design.top();
  const ModuleId top_id = design.top_id();

  for (std::uint32_t i = 0; i < top.insts().size(); ++i) {
    if (graph_->is_quarantined(InstId(i))) continue;  // degraded mode
    const Instance& inst = top.inst(InstId(i));
    if (!inst.is_cell()) continue;
    const Cell& cell = design.lib().cell(inst.cell);
    if (!cell.is_sequential()) continue;
    const SyncSpec& spec = cell.sync();
    const ControlInfo& ctrl = control_.at(i);

    // The element is *enabled* while its control input is high.  With
    // positive control polarity that is while the clock is high (for an
    // active-high element); inversions flip the interval.
    const bool use_high = (ctrl.polarity > 0) == spec.active_high;
    const std::vector<Interval> pulses = use_high
                                             ? clocks_->high_intervals(ctrl.clock)
                                             : clocks_->low_intervals(ctrl.clock);

    // Element delays, with the load on the output net included.
    TimePs dcz = 0, ddz = 0;
    for (const TimingArc& arc : cell.arcs()) {
      const RiseFall d = calc.arc_delay(top_id, InstId(i), arc);
      if (arc.from_port == spec.control) dcz = std::max(dcz, d.max());
      if (arc.from_port == spec.data_in) ddz = std::max(ddz, d.max());
    }

    const bool transparent = cell.kind() == CellKind::kTransparentLatch ||
                             cell.kind() == CellKind::kTristateDriver;

    for (std::uint32_t p = 0; p < pulses.size(); ++p) {
      const Interval& pulse = pulses[p];
      SyncInstance si;
      si.inst = InstId(i);
      si.pulse = p;
      si.transparent = transparent;
      si.data_in = graph_->pin_node(InstId(i), spec.data_in);
      si.data_out = graph_->pin_node(InstId(i), spec.data_out);
      si.setup = spec.setup;
      si.dcz = dcz;
      si.ddz = transparent ? ddz : 0;
      si.oac = ctrl.delay;
      si.width = pulse.width();
      si.label = inst.name + "#" + std::to_string(p);

      if (cell.kind() == CellKind::kEdgeTriggeredLatch) {
        const TimePs edge = spec.trigger == TriggerEdge::kLeading
                                ? pulse.lead
                                : mod_period(pulse.trail, period_);
        si.ideal_assert = mod_period(edge, period_);
        si.ideal_close = si.ideal_assert;
      } else {
        si.ideal_assert = pulse.lead;  // leading edge asserts the output
        si.ideal_close = mod_period(pulse.trail, period_);  // trailing closes
      }
      add_instance(std::move(si));
    }
  }
}

void SyncModel::build_port_instances() {
  const Module& top = graph_->design().top();

  auto find_spec = [](const std::vector<PortTimingSpec>& specs,
                      const std::string& name) -> const PortTimingSpec* {
    for (const PortTimingSpec& s : specs) {
      if (s.port == name) return &s;
    }
    return nullptr;
  };

  for (std::uint32_t p = 0; p < top.ports().size(); ++p) {
    const ModulePort& port = top.port(p);
    if (port.is_clock) continue;
    const TNodeId node = graph_->top_port_node(p);
    if (port.direction == PortDirection::kInput) {
      const PortTimingSpec* spec = find_spec(options_.input_arrivals, port.name);
      if (spec == nullptr && !options_.constrain_ports) continue;
      SyncInstance si;
      si.is_virtual = true;
      si.data_out = node;
      si.ideal_assert = spec != nullptr ? mod_period(spec->time, period_) : 0;
      si.v_offset = spec != nullptr ? spec->offset : 0;
      si.label = "in:" + port.name;
      add_instance(std::move(si));
    } else {
      const PortTimingSpec* spec = find_spec(options_.output_requireds, port.name);
      if (spec == nullptr && !options_.constrain_ports) continue;
      SyncInstance si;
      si.is_virtual = true;
      si.data_in = node;
      // Default: data must settle by the end of the overall period; time 0
      // linearises to T via the closure mapping.
      si.ideal_close = spec != nullptr ? mod_period(spec->time, period_) : 0;
      si.v_offset = spec != nullptr ? spec->offset : 0;
      si.label = "out:" + port.name;
      add_instance(std::move(si));
    }
  }
}

void SyncModel::compute_data_cones() {
  has_data_cone_.assign(graph_->num_nodes(), false);
  for (const SyncInstance& si : instances_) {
    if (si.data_out.valid()) has_data_cone_[si.data_out.index()] = true;
  }
  for (TNodeId n : graph_->topo_order()) {
    if (!has_data_cone_[n.index()]) continue;
    // Data does not flow *through* synchronising elements combinationally.
    const NodeRole role = graph_->node(n).role;
    if (role == NodeRole::kSyncDataIn || role == NodeRole::kSyncControl) continue;
    for (std::uint32_t ai : graph_->fanout(n)) {
      has_data_cone_[graph_->arc(ai).to.index()] = true;
    }
  }
}

// A control pin partly driven from synchronising-element outputs is an
// enable-path endpoint: the enable logic must settle before the leading edge
// of every control pulse of the element (conservative choice of "which of
// the clock edges is to be enabled/disabled").
void SyncModel::build_enable_sinks() {
  const Design& design = graph_->design();
  const Module& top = design.top();
  for (std::uint32_t i = 0; i < top.insts().size(); ++i) {
    if (graph_->is_quarantined(InstId(i))) continue;  // degraded mode
    const Instance& inst = top.inst(InstId(i));
    if (!inst.is_cell()) continue;
    const Cell& cell = design.lib().cell(inst.cell);
    if (!cell.is_sequential()) continue;
    const TNodeId ctrl_node = graph_->pin_node(InstId(i), cell.sync().control);
    if (!has_data_cone(ctrl_node)) continue;

    const ControlInfo& ctrl = control_.at(i);
    const bool use_high = (ctrl.polarity > 0) == cell.sync().active_high;
    const std::vector<Interval> pulses = use_high
                                             ? clocks_->high_intervals(ctrl.clock)
                                             : clocks_->low_intervals(ctrl.clock);
    for (std::uint32_t p = 0; p < pulses.size(); ++p) {
      SyncInstance si;
      si.is_virtual = true;
      si.inst = InstId(i);
      si.pulse = p;
      si.data_in = ctrl_node;
      si.ideal_close = mod_period(pulses[p].lead, period_);
      si.v_offset = -options_.enable_margin;
      si.label = "enable:" + inst.name + "#" + std::to_string(p);
      add_instance(std::move(si));
    }
  }
}

SyncId SyncModel::add_instance(SyncInstance si) {
  SyncId id(static_cast<std::uint32_t>(instances_.size()));
  instances_.push_back(std::move(si));
  return id;
}

void SyncModel::index_instances() {
  launches_by_node_.assign(graph_->num_nodes(), {});
  captures_by_node_.assign(graph_->num_nodes(), {});
  for (std::uint32_t i = 0; i < instances_.size(); ++i) {
    const SyncInstance& si = instances_[i];
    if (si.data_out.valid()) {
      if (launches_by_node_[si.data_out.index()].empty()) {
        launch_nodes_.push_back(si.data_out);
      }
      launches_by_node_[si.data_out.index()].push_back(SyncId(i));
    }
    if (si.data_in.valid()) {
      if (captures_by_node_[si.data_in.index()].empty()) {
        capture_nodes_.push_back(si.data_in);
      }
      captures_by_node_[si.data_in.index()].push_back(SyncId(i));
    }
  }
}

const std::vector<SyncId>& SyncModel::launches_at(TNodeId node) const {
  const auto& v = launches_by_node_.at(node.index());
  return v.empty() ? kNoInstances : v;
}

const std::vector<SyncId>& SyncModel::captures_at(TNodeId node) const {
  const auto& v = captures_by_node_.at(node.index());
  return v.empty() ? kNoInstances : v;
}

const SyncModel::ControlInfo& SyncModel::control_of(InstId inst) const {
  auto it = control_.find(inst.value());
  if (it == control_.end()) {
    raise("instance has no control information (not a synchronising element?)");
  }
  return it->second;
}

void SyncModel::reset_offsets() {
  for (std::uint32_t i = 0; i < instances_.size(); ++i) {
    SyncInstance& si = instances_[i];
    TimePs odz = 0, ozd = 0;
    if (!si.is_virtual && si.transparent) {
      // End-of-pulse initial state: input closes at the trailing edge
      // (O_dz = -D_dz, its upper bound), output asserts W - ... accordingly.
      odz = -si.ddz;
      ozd = si.width + odz + si.ddz;  // == si.width
    }
    if (si.odz != odz || si.ozd != ozd) {
      si.odz = odz;
      si.ozd = ozd;
      record_changed(SyncId(i));
    }
  }
}

void SyncModel::refresh_element_delays(InstId inst, const DelayCalculator& calc) {
  const Design& design = graph_->design();
  const Instance& top_inst = design.top().inst(inst);
  HB_ASSERT(top_inst.is_cell());
  const Cell& cell = design.lib().cell(top_inst.cell);
  HB_ASSERT(cell.is_sequential());
  const SyncSpec& spec = cell.sync();

  TimePs dcz = 0, ddz = 0;
  for (const TimingArc& arc : cell.arcs()) {
    const RiseFall d = calc.arc_delay(design.top_id(), inst, arc);
    if (arc.from_port == spec.control) dcz = std::max(dcz, d.max());
    if (arc.from_port == spec.data_in) ddz = std::max(ddz, d.max());
  }

  for (std::uint32_t i = 0; i < instances_.size(); ++i) {
    SyncInstance& si = instances_[i];
    if (si.inst != inst || si.is_virtual) continue;
    const TimePs new_ddz = si.transparent ? ddz : 0;
    if (si.dcz == dcz && si.ddz == new_ddz) continue;
    si.dcz = dcz;
    si.ddz = new_ddz;
    if (si.transparent) si.ozd = si.width + si.odz + si.ddz;
    record_changed(SyncId(i));
  }
}

void SyncModel::record_changed(SyncId id) {
  if (changed_flag_.size() != instances_.size()) {
    changed_flag_.assign(instances_.size(), 0);
  }
  char& flag = changed_flag_[id.index()];
  if (!flag) {
    flag = 1;
    changed_.push_back(id);
  }
}

std::vector<SyncId> SyncModel::drain_changed_offsets() {
  for (SyncId id : changed_) changed_flag_[id.index()] = 0;
  return std::exchange(changed_, {});
}

}  // namespace hb
