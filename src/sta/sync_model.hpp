// Generic synchronising-element model (paper Sections 4 and 5).
//
// Every sequential cell instance is expanded into one *generic instance* per
// control pulse within the overall period ("A synchronising element that is
// clocked at a frequency that is a multiple, n, of the overall clock
// frequency is represented by n such elements connected in parallel").
//
// Each generic instance carries the terminal offsets of the simplified model
// of Figure 2(b):
//   O_cc = 0 (constant lower bound on the closure control time),
//   O_dc = -D_setup (constant), so min(O_dc, O_dz) lower-bounds input
//          closure;
//   O_ac = the assertion control arrival = the control path delay (control
//          paths have ideal path constraint exactly zero);
//   O_zc = O_ac + D_cz (constant once control delays are known);
//   O_dz, O_zd = the adjustable data-side pair, coupled for transparent
//          latches by O_zd = W + O_dz + D_dz with O_zd in [0, W'] — these
//          are the degrees of freedom Algorithms 1 and 2 move.
//
// Effective times relative to the ideal ones:
//   input closure offset  = min(O_dc, O_dz)
//   output assertion offset = max(O_zc, O_zd)
//
// Edge-triggered latches pin O_dz = O_zd = 0 (no slack transfer possible);
// transparent latches and clocked tristate drivers may shift the pair within
// the control pulse (cycle stealing).
//
// The model also covers three kinds of *virtual* terminals:
//   * primary-input launches and primary-output captures (arrival/required
//     specifications relative to the overall period), rigid;
//   * enable-path capture points: a synchronising-element control pin that
//     is (partly) driven from synchronising-element outputs must have its
//     enable logic settled before the leading edge of each control pulse
//     (paper Section 4, "enable path"); rigid, with a configurable margin.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "clocks/clock_io.hpp"  // PortTimingSpec
#include "clocks/waveform.hpp"
#include "sta/timing_graph.hpp"

namespace hb {

struct SyncInstance {
  InstId inst;                 // owning sequential instance (invalid if virtual)
  std::uint32_t pulse = 0;     // which control pulse within the overall period
  bool transparent = false;    // may transfer slack (transparent/tristate)
  bool is_virtual = false;     // PI/PO/enable endpoint
  std::string label;           // for reports

  TNodeId data_in;             // capture node (invalid for launch-only)
  TNodeId data_out;            // launch node (invalid for capture-only)

  TimePs ideal_assert = 0;     // ideal output assertion time, in [0, T)
  TimePs ideal_close = 0;      // ideal input closure time, in [0, T)
  TimePs width = 0;            // control pulse width W (transparent only)

  TimePs setup = 0;            // D_setup
  TimePs ddz = 0;              // D_dz (data -> output, transparent only)
  TimePs dcz = 0;              // D_cz (control -> output)
  TimePs oac = 0;              // assertion control arrival (control path delay)

  TimePs odz = 0;              // adjustable pair (see header comment)
  TimePs ozd = 0;
  TimePs v_offset = 0;         // offset for virtual terminals

  /// Offset of the actual output assertion w.r.t. ideal_assert.
  TimePs assert_offset() const {
    if (is_virtual) return v_offset;
    return std::max(oac + dcz, ozd);
  }
  /// Offset of the actual input closure w.r.t. ideal_close.
  TimePs close_offset() const {
    if (is_virtual) return v_offset;
    return std::min(-setup, odz);
  }

  /// Maximum decrease of the (O_dz, O_zd) pair allowed by the element
  /// constraints (forward transfer / snatching headroom).
  TimePs max_decrease() const { return transparent ? ozd : 0; }
  /// Maximum increase allowed (backward headroom): O_dz <= -D_dz.
  TimePs max_increase() const { return transparent ? (-ddz) - odz : 0; }

  /// Shift the adjustable pair; delta < 0 is a forward transfer.
  void shift(TimePs delta) {
    odz += delta;
    ozd += delta;
  }
};

struct SyncModelOptions {
  std::vector<PortTimingSpec> input_arrivals;
  std::vector<PortTimingSpec> output_requireds;
  /// When true, unspecified data ports get default specs: inputs asserted at
  /// time 0, outputs required by the end of the overall period.
  bool constrain_ports = true;
  /// Settling margin required of enable logic before the leading control
  /// edge.
  TimePs enable_margin = 0;
};

class SyncModel {
 public:
  SyncModel(const TimingGraph& graph, const ClockSet& clocks,
            const DelayCalculator& calc, SyncModelOptions options = {});

  const TimingGraph& graph() const { return *graph_; }
  const ClockSet& clocks() const { return *clocks_; }
  TimePs overall_period() const { return period_; }

  std::size_t num_instances() const { return instances_.size(); }
  const SyncInstance& at(SyncId id) const { return instances_.at(id.index()); }
  /// Mutable access conservatively records `id` in the changed-offsets log,
  /// so incremental re-analysis (SlackEngine::update) stays exact no matter
  /// which offsets the caller moves.
  SyncInstance& at_mut(SyncId id) {
    record_changed(id);
    return instances_.at(id.index());
  }

  /// Instances whose offsets may have changed since the last drain
  /// (deduplicated, in first-touch order).  Feed into
  /// SlackEngine::invalidate_offsets and clear with drain_changed_offsets().
  const std::vector<SyncId>& changed_offsets() const { return changed_; }
  std::vector<SyncId> drain_changed_offsets();

  /// Launch instances whose data_out is this node (empty vector if none).
  const std::vector<SyncId>& launches_at(TNodeId node) const;
  /// Capture instances whose data_in is this node.
  const std::vector<SyncId>& captures_at(TNodeId node) const;

  const std::vector<TNodeId>& launch_nodes() const { return launch_nodes_; }
  const std::vector<TNodeId>& capture_nodes() const { return capture_nodes_; }

  /// Control-path facts for a sequential instance.
  struct ControlInfo {
    ClockId clock;
    int polarity = +1;   // +1: control follows the clock; -1: inverted
    TimePs delay = 0;    // worst clock-source-to-control-pin delay
  };
  const ControlInfo& control_of(InstId inst) const;

  /// True if `node` is reachable from any data launch node (used to decide
  /// which control pins are enable-path endpoints).
  bool has_data_cone(TNodeId node) const { return has_data_cone_.at(node.index()); }

  /// Restore all adjustable offsets to the end-of-pulse initial state
  /// (O_zd = W', i.e. input closure at the trailing edge).  Only instances
  /// whose offsets actually move are recorded as changed, so a reset right
  /// after construction (or a previous reset) invalidates nothing.
  void reset_offsets();

  /// Re-derive the load-dependent element delays (D_cz, and D_dz for
  /// transparent elements) of every generic instance of sequential instance
  /// `inst` after the load on its output net changed (e.g. a fanout cell was
  /// resized).  The O_zd = W + O_dz + D_dz coupling is preserved by keeping
  /// O_dz and re-deriving O_zd.  Changed instances land in the
  /// changed-offsets log.  The cell itself must be unchanged (setup, ideal
  /// times and control tracing stay valid).
  void refresh_element_delays(InstId inst, const DelayCalculator& calc);

 private:
  void record_changed(SyncId id);
  void trace_controls();
  void build_element_instances(const DelayCalculator& calc);
  void build_port_instances();
  void build_enable_sinks();
  void compute_data_cones();
  void index_instances();
  SyncId add_instance(SyncInstance si);

  const TimingGraph* graph_;
  const ClockSet* clocks_;
  SyncModelOptions options_;
  TimePs period_ = 0;

  std::vector<SyncInstance> instances_;
  std::unordered_map<std::uint32_t, ControlInfo> control_;  // by InstId
  std::vector<std::vector<SyncId>> launches_by_node_;
  std::vector<std::vector<SyncId>> captures_by_node_;
  std::vector<TNodeId> launch_nodes_;
  std::vector<TNodeId> capture_nodes_;
  std::vector<bool> has_data_cone_;
  std::vector<SyncId> changed_;       // offsets touched since the last drain
  std::vector<char> changed_flag_;    // by SyncId, dedups changed_
};

}  // namespace hb
